// Quickstart: analyze the paper's running example (Figure 2) with the
// public SafeFlow API, print the report, then apply the fix the paper
// suggests and show the system verifying clean.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"strings"

	"safeflow/pkg/safeflow"
)

// The core controller of the inverted-pendulum Simplex system, as in
// Figures 2 and 3 of the paper — including its defect: computeSafety
// derives the fall-back control output from an unmonitored re-read of the
// non-core-writable feedback region.
const coreController = `
typedef struct { double angle; double track; double control; int ready; } SHMData;

SHMData *feedback;
SHMData *noncoreCtrl;
int shmLock;

void initComm()
/***SafeFlow Annotation shminit /***/
{
    int shmid;
    void *shmStart;
    shmid = shmget(1234, 2 * sizeof(SHMData), 0666);
    shmStart = shmat(shmid, 0, 0);
    feedback = (SHMData *) shmStart;
    noncoreCtrl = feedback + 1;
    InitCheck(shmStart, 2 * sizeof(SHMData));
    /***SafeFlow Annotation assume(shmvar(feedback, sizeof(SHMData))) /***/
    /***SafeFlow Annotation assume(shmvar(noncoreCtrl, sizeof(SHMData))) /***/
    /***SafeFlow Annotation assume(noncore(feedback)) /***/
    /***SafeFlow Annotation assume(noncore(noncoreCtrl)) /***/
}

void getFeedback(SHMData *fb)
{
    fb->angle = readSensor(0);
    fb->track = readSensor(1);
}

void computeSafety(SHMData *fb, double *safeOut)
{
    double a;
    double t;
    a = fb->angle;
    t = fb->track;
    *safeOut = -(12.0 * a + 3.0 * t);
}

int checkSafety(SHMData *nc)
/***SafeFlow Annotation assume(core(nc, 0, sizeof(SHMData))) /***/
{
    double u;
    u = nc->control;
    if (u > 4.9) { return 0; }
    if (u < -4.9) { return 0; }
    return 1;
}

double decision(double safeControl, SHMData *nc)
/***SafeFlow Annotation assume(core(nc, 0, sizeof(SHMData))) /***/
{
    if (nc->ready == 0) { return safeControl; }
    if (checkSafety(nc)) { return nc->control; }
    return safeControl;
}

int main()
{
    int k;
    double safeControl;
    double output;
    initComm();
    for (k = 0; k < 2000; k++) {
        Lock(shmLock);
        getFeedback(feedback);
        computeSafety(feedback, &safeControl);
        Unlock(shmLock);
        wait(0.01);
        Lock(shmLock);
        output = decision(safeControl, noncoreCtrl);
        /***SafeFlow Annotation assert(safe(output)) /***/
        writeDA(0, output);
        Unlock(shmLock);
    }
    return 0;
}
`

func main() {
	fmt.Println("### Analyzing the Figure 2 core controller (with its defect)")
	rep, err := safeflow.AnalyzeString("figure2", coreController, safeflow.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
	safeflow.WriteReport(os.Stdout, rep)

	// The paper's fix: the functions that legitimately read the feedback
	// region must monitor it — declare the assumption after verifying the
	// monitor, here modeled by annotating computeSafety as a monitoring
	// function for feedback.
	fixed := strings.Replace(coreController,
		"void computeSafety(SHMData *fb, double *safeOut)\n{",
		"void computeSafety(SHMData *fb, double *safeOut)\n"+
			"/***SafeFlow Annotation assume(core(fb, 0, sizeof(SHMData))) /***/\n{", 1)

	fmt.Println()
	fmt.Println("### After monitoring the feedback read (the paper's suggested fix)")
	rep2, err := safeflow.AnalyzeString("figure2-fixed", fixed, safeflow.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
	safeflow.WriteReport(os.Stdout, rep2)
	if !rep2.Clean() {
		os.Exit(1)
	}
}
