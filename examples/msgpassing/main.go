// msgpassing: the paper's §3.4.3 extension — safe value flow for
// message-passing I/O. A socket descriptor annotated noncore makes every
// recv() on it a source of unsafe data; an assume(core(...)) on the
// receive buffer models a monitored receive.
//
// Run with: go run ./examples/msgpassing
package main

import (
	"fmt"
	"os"

	"safeflow/pkg/safeflow"
)

// A core component receiving setpoints from a non-core planner over a
// socket. The first variant uses the received value unmonitored; the
// second monitors the buffer before use.
const unmonitoredRecv = `
double currentSetpoint;

void receiveSetpoint(int planner)
/***SafeFlow Annotation assume(noncore(planner)) /***/
{
    double buf;
    recv(planner, &buf, sizeof(double), 0);
    currentSetpoint = buf;
}

int main()
{
    int sock;
    double u;
    sock = socket(2, 1, 0);
    connect(sock, 0, 0);
    receiveSetpoint(sock);
    u = 0.5 * currentSetpoint;
    /***SafeFlow Annotation assert(safe(u)) /***/
    writeDA(0, u);
    return 0;
}
`

const monitoredRecv = `
double currentSetpoint;

void receiveSetpoint(int planner)
/***SafeFlow Annotation assume(noncore(planner)) /***/
/***SafeFlow Annotation assume(core(buf, 0, sizeof(double))) /***/
{
    double buf;
    recv(planner, &buf, sizeof(double), 0);
    if (buf > 1.0) { return; }
    if (buf < -1.0) { return; }
    currentSetpoint = buf;
}

int main()
{
    int sock;
    double u;
    sock = socket(2, 1, 0);
    connect(sock, 0, 0);
    receiveSetpoint(sock);
    u = 0.5 * currentSetpoint;
    /***SafeFlow Annotation assert(safe(u)) /***/
    writeDA(0, u);
    return 0;
}
`

func main() {
	fmt.Println("### Unmonitored receive: the setpoint taints the actuator output")
	rep, err := safeflow.AnalyzeString("planner-unmonitored", unmonitoredRecv, safeflow.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msgpassing: %v\n", err)
		os.Exit(1)
	}
	safeflow.WriteReport(os.Stdout, rep)
	if len(rep.ErrorsData) == 0 {
		fmt.Fprintln(os.Stderr, "expected the unmonitored receive to be reported")
		os.Exit(1)
	}

	fmt.Println("\n### Monitored receive: the buffer is range-checked before use")
	rep2, err := safeflow.AnalyzeString("planner-monitored", monitoredRecv, safeflow.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "msgpassing: %v\n", err)
		os.Exit(1)
	}
	safeflow.WriteReport(os.Stdout, rep2)
	if !rep2.Clean() {
		os.Exit(1)
	}
}
