// ipcontrol: the full Figure 1 workflow for the inverted pendulum —
// statically verify the core controller with SafeFlow, then run the
// Simplex closed loop it describes, demonstrating that the run-time
// monitor the annotations name really does contain non-core faults.
//
// Run with: go run ./examples/ipcontrol
package main

import (
	"fmt"
	"os"

	"safeflow/pkg/safeflow"
	"safeflow/pkg/simplexrt"
)

// A corrected IP core controller: every non-core read goes through a
// monitoring function, so the static analysis verifies clean — the state
// the lab systems were believed to be in before the paper's evaluation.
const coreController = `
typedef struct { double angle; double track; double angleVel; double trackVel; int seq; int pad; } SHMData;
typedef struct { double control; double timestamp; int ready; int seq; } SHMCmd;

SHMData *feedback;
SHMCmd  *noncoreCtrl;

double safeGain0;
double safeGain1;

void initComm()
/***SafeFlow Annotation shminit /***/
{
    int shmid;
    void *base;
    shmid = shmget(4660, sizeof(SHMData) + sizeof(SHMCmd), 0666);
    base = shmat(shmid, 0, 0);
    feedback = (SHMData *) base;
    noncoreCtrl = (SHMCmd *) (feedback + 1);
    InitCheck(base, sizeof(SHMData) + sizeof(SHMCmd));
    /***SafeFlow Annotation assume(shmvar(feedback, sizeof(SHMData))) /***/
    /***SafeFlow Annotation assume(shmvar(noncoreCtrl, sizeof(SHMCmd))) /***/
    /***SafeFlow Annotation assume(noncore(feedback)) /***/
    /***SafeFlow Annotation assume(noncore(noncoreCtrl)) /***/
}

double localAngle;
double localTrack;

void sense()
{
    localAngle = readSensor(0);
    localTrack = readSensor(1);
    feedback->angle = localAngle;
    feedback->track = localTrack;
}

double safeControl()
{
    return -(safeGain0 * localAngle + safeGain1 * localTrack);
}

double decision(double safeU)
/***SafeFlow Annotation assume(core(noncoreCtrl, 0, sizeof(SHMCmd))) /***/
{
    double u;
    if (noncoreCtrl->ready == 0) { return safeU; }
    u = noncoreCtrl->control;
    if (u > 5.0) { return safeU; }
    if (u < -5.0) { return safeU; }
    return u;
}

int main()
{
    int k;
    double u;
    initComm();
    for (k = 0; k < 6000; k++) {
        sense();
        u = decision(safeControl());
        /***SafeFlow Annotation assert(safe(u)) /***/
        writeDA(0, u);
        wait(0.01);
    }
    return 0;
}
`

func main() {
	fmt.Println("### Step 1: statically verify the core controller")
	rep, err := safeflow.AnalyzeString("ip-core", coreController, safeflow.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipcontrol: %v\n", err)
		os.Exit(1)
	}
	if rep.Clean() {
		fmt.Println("safe value flow verified: all non-core reads are monitored")
	} else {
		safeflow.WriteReport(os.Stdout, rep)
		os.Exit(1)
	}

	fmt.Println("\n### Step 2: run the Simplex closed loop the controller implements")
	for i, sc := range []struct {
		title string
		cfg   simplexrt.Config
	}{
		{"healthy", simplexrt.Config{Steps: 3000}},
		{"hostile non-core controller (sign flip at t=15s)", simplexrt.Config{
			Steps: 3000, Fault: simplexrt.FaultSignFlip, FaultStep: 1500,
		}},
	} {
		sc.cfg.ShmKey = 0x4100 + i
		tr, err := simplexrt.Run(sc.cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipcontrol: %v\n", err)
			os.Exit(1)
		}
		outcome := "balanced"
		if tr.Diverged {
			outcome = "FELL"
		}
		fmt.Printf("  %-48s complex=%5.1f%% rejected=%4d  %s\n",
			sc.title, 100*tr.FracNonCore(), tr.Rejected, outcome)
	}
	fmt.Println("\nThe monitor the annotations describe is what keeps scenario 2 upright.")
}
