// doubleip: the double inverted pendulum workflow — demonstrate the
// propagation-assumption defect the paper reports for this system (an
// unmonitored tuning value "believed display-only" that actually reaches
// the control output), then run the double-pendulum Simplex loop.
//
// Run with: go run ./examples/doubleip
package main

import (
	"fmt"
	"os"

	"safeflow/pkg/safeflow"
	"safeflow/pkg/simplexrt"
)

// A trimmed double-IP core with the invalid propagation assumption.
const dipCore = `
typedef struct { double a1; double a2; int seq; int pad; } SHMData;
typedef struct { double control; int ready; int pad; } SHMCmd;
typedef struct { double stiffness; double blend; int valid; int pad; } SHMTuning;

SHMData   *feedback;
SHMCmd    *noncoreCmd;
SHMTuning *tuning;

double localA1;
double localA2;
double stiffness;

void initComm()
/***SafeFlow Annotation shminit /***/
{
    int shmid;
    void *base;
    shmid = shmget(4662, sizeof(SHMData) + sizeof(SHMCmd) + sizeof(SHMTuning), 0666);
    base = shmat(shmid, 0, 0);
    feedback = (SHMData *) base;
    noncoreCmd = (SHMCmd *) (feedback + 1);
    tuning = (SHMTuning *) (noncoreCmd + 1);
    InitCheck(base, sizeof(SHMData) + sizeof(SHMCmd) + sizeof(SHMTuning));
    /***SafeFlow Annotation assume(shmvar(feedback, sizeof(SHMData))) /***/
    /***SafeFlow Annotation assume(shmvar(noncoreCmd, sizeof(SHMCmd))) /***/
    /***SafeFlow Annotation assume(shmvar(tuning, sizeof(SHMTuning))) /***/
    /***SafeFlow Annotation assume(noncore(feedback)) /***/
    /***SafeFlow Annotation assume(noncore(noncoreCmd)) /***/
    /***SafeFlow Annotation assume(noncore(tuning)) /***/
}

/* monitorTuning validates the stiffness multiplier before use. */
int monitorTuning()
/***SafeFlow Annotation assume(core(tuning, 0, sizeof(SHMTuning))) /***/
{
    double s;
    if (tuning->valid == 0) { return 0; }
    s = tuning->stiffness;
    if (s < 0.5) { return 0; }
    if (s > 2.0) { return 0; }
    stiffness = s;
    return 1;
}

/* DEFECT: reads the blend factor unmonitored "for the display". */
double displayBlend()
{
    return tuning->blend;
}

double decision(double safeU)
/***SafeFlow Annotation assume(core(noncoreCmd, 0, sizeof(SHMCmd))) /***/
{
    double u;
    if (noncoreCmd->ready == 0) { return safeU; }
    u = noncoreCmd->control;
    if (u > 10.0) { return safeU; }
    if (u < -10.0) { return safeU; }
    return u;
}

int main()
{
    int k;
    double b;
    double safeU;
    double u;
    double output;
    initComm();
    monitorTuning();
    for (k = 0; k < 8000; k++) {
        localA1 = readSensor(0);
        localA2 = readSensor(1);
        safeU = -(stiffness * 40.0 * localA1 + 8.0 * localA2);
        u = decision(safeU);
        b = displayBlend();
        printf("blend=%f\n", b);
        /* The invalid assumption: b was believed display-only, but the
           blended dispatch below carries it into the actuator output. */
        output = (1.0 - b) * safeU + b * u;
        /***SafeFlow Annotation assert(safe(output)) /***/
        writeDA(0, output);
        wait(0.005);
    }
    return 0;
}
`

func main() {
	fmt.Println("### Step 1: SafeFlow invalidates the 'display-only' assumption")
	rep, err := safeflow.AnalyzeString("double-ip-core", dipCore, safeflow.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "doubleip: %v\n", err)
		os.Exit(1)
	}
	safeflow.WriteReport(os.Stdout, rep)
	if len(rep.ErrorsData) == 0 {
		fmt.Fprintln(os.Stderr, "expected the propagation defect to be reported")
		os.Exit(1)
	}

	fmt.Println("\n### Step 2: balance the double inverted pendulum under a non-core fault")
	tr, err := simplexrt.Run(simplexrt.Config{
		Plant:     simplexrt.DefaultDoublePendulum(),
		DT:        0.005,
		Steps:     6000,
		InitState: []float64{0, 0, 0.05, 0, 0.03, 0},
		Fault:     simplexrt.FaultNaN,
		FaultStep: 3000,
		ShmKey:    0x4300,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "doubleip: %v\n", err)
		os.Exit(1)
	}
	outcome := "balanced"
	if tr.Diverged {
		outcome = "FELL"
	}
	fmt.Printf("  double pendulum: complex=%5.1f%% rejected=%4d max|a1|=%.3f max|a2|=%.3f  %s\n",
		100*tr.FracNonCore(), tr.Rejected, tr.MaxAbsState[2], tr.MaxAbsState[4], outcome)
}
