// navdisplay: the paper's opening example — in a passenger jet, the
// navigation system (core) interacts with the passenger entertainment
// system (non-core) to provide distance-to-destination information. Data
// must flow outward freely, but nothing the entertainment subsystem
// writes may reach the navigation computations unmonitored.
//
// Two variants of the navigation core are analyzed:
//
//  1. a defective one where a "display preferences" value from the
//     entertainment region silently reaches the route-progress
//     computation used for fuel management (critical data);
//  2. the corrected one where the only entertainment-facing flow is the
//     outward publication of distance-to-destination.
//
// Run with: go run ./examples/navdisplay
package main

import (
	"fmt"
	"os"
	"strings"

	"safeflow/pkg/safeflow"
)

const navCore = `
typedef struct { double lat; double lon; double dist; int seq; } NavOut;
typedef struct { double unitsFactor; int wantsMetric; int seq; } EntPrefs;

NavOut   *navOut;    /* written by core for the entertainment system */
EntPrefs *entPrefs;  /* written by the entertainment system          */

double routeRemaining;
double fuelPerKm;

void initComm()
/***SafeFlow Annotation shminit /***/
{
	void *base;
	base = shmat(shmget(77, sizeof(NavOut) + sizeof(EntPrefs), 0), 0, 0);
	navOut = (NavOut *) base;
	entPrefs = (EntPrefs *) (navOut + 1);
	InitCheck(base, sizeof(NavOut) + sizeof(EntPrefs));
	/***SafeFlow Annotation assume(shmvar(navOut, sizeof(NavOut))) /***/
	/***SafeFlow Annotation assume(shmvar(entPrefs, sizeof(EntPrefs))) /***/
	/***SafeFlow Annotation assume(noncore(navOut)) /***/
	/***SafeFlow Annotation assume(noncore(entPrefs)) /***/
}

void publishDistance(int seq)
{
	navOut->dist = routeRemaining;
	navOut->seq = seq;
}

double estimateFuel()
{
	double scale;
	/* DEFECT: the display units factor from the entertainment region
	   leaks into the fuel estimate used by the flight-management core. */
	scale = entPrefs->unitsFactor;
	return routeRemaining * scale * fuelPerKm;
}

int main()
{
	int k;
	double fuelNeeded;
	initComm();
	routeRemaining = 1520.0;
	fuelPerKm = 3.1;
	for (k = 0; k < 1000; k++) {
		routeRemaining = routeRemaining - 0.4;
		publishDistance(k);
		fuelNeeded = estimateFuel();
		/***SafeFlow Annotation assert(safe(fuelNeeded)) /***/
		writeDA(0, fuelNeeded);
		wait(1.0);
	}
	return 0;
}
`

func main() {
	fmt.Println("### Navigation core with the entertainment-units leak")
	rep, err := safeflow.AnalyzeString("nav-defective", navCore, safeflow.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "navdisplay: %v\n", err)
		os.Exit(1)
	}
	safeflow.WriteReport(os.Stdout, rep)
	if len(rep.ErrorsData) == 0 {
		fmt.Fprintln(os.Stderr, "expected the units-factor leak to be reported")
		os.Exit(1)
	}

	// The fix: fuel management uses core units only; the conversion for
	// display happens on the outward path (or after monitoring).
	fixed := strings.Replace(navCore, `	double scale;
	/* DEFECT: the display units factor from the entertainment region
	   leaks into the fuel estimate used by the flight-management core. */
	scale = entPrefs->unitsFactor;
	return routeRemaining * scale * fuelPerKm;`,
		`	return routeRemaining * fuelPerKm;`, 1)

	fmt.Println("\n### Corrected core: entertainment data never enters navigation computations")
	rep2, err := safeflow.AnalyzeString("nav-fixed", fixed, safeflow.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "navdisplay: %v\n", err)
		os.Exit(1)
	}
	safeflow.WriteReport(os.Stdout, rep2)
	if !rep2.Clean() {
		os.Exit(1)
	}
	fmt.Println("\nOutward flow (distance-to-destination) is unrestricted; inward flow is monitored or absent.")
}
