// genericsimplex: the configurable-plant Simplex workflow — run the
// Simplex loop on a user-configured linear plant, and demonstrate the
// feedback-rigging defect the paper found in the generic Simplex system:
// the core re-reads its own published feedback from shared memory inside
// the recoverability computation, which a non-core component can rig.
//
// Run with: go run ./examples/genericsimplex
package main

import (
	"fmt"
	"os"

	"safeflow/pkg/safeflow"
	"safeflow/pkg/simplexrt"
)

// A generic Simplex core configured by shared-memory state, carrying the
// paper's feedback-rigging defect in computeSafe().
const genericCore = `
typedef struct { double s0; double s1; int seq; int pad; } SHMData;
typedef struct { double control; int ready; int pad; } SHMCmd;

SHMData *feedback;
SHMCmd  *noncoreCtrl;

double k0;
double k1;
double localS0;
double localS1;

void initComm()
/***SafeFlow Annotation shminit /***/
{
    int shmid;
    void *base;
    shmid = shmget(4661, sizeof(SHMData) + sizeof(SHMCmd), 0666);
    base = shmat(shmid, 0, 0);
    feedback = (SHMData *) base;
    noncoreCtrl = (SHMCmd *) (feedback + 1);
    InitCheck(base, sizeof(SHMData) + sizeof(SHMCmd));
    /***SafeFlow Annotation assume(shmvar(feedback, sizeof(SHMData))) /***/
    /***SafeFlow Annotation assume(shmvar(noncoreCtrl, sizeof(SHMCmd))) /***/
    /***SafeFlow Annotation assume(noncore(feedback)) /***/
    /***SafeFlow Annotation assume(noncore(noncoreCtrl)) /***/
}

void sense()
{
    localS0 = readSensor(0);
    localS1 = readSensor(1);
    feedback->s0 = localS0;
    feedback->s1 = localS1;
}

/* DEFECT: derives the fall-back output from the shared copy of the
 * feedback instead of the core-local one. A faulty or malicious non-core
 * component can overwrite feedback between the write in sense() and this
 * read, rigging the value the core falls back to. */
double computeSafe()
{
    double a;
    double b;
    a = feedback->s0;
    b = feedback->s1;
    return -(k0 * a + k1 * b);
}

double decision(double safeU)
/***SafeFlow Annotation assume(core(noncoreCtrl, 0, sizeof(SHMCmd))) /***/
{
    double u;
    if (noncoreCtrl->ready == 0) { return safeU; }
    u = noncoreCtrl->control;
    if (u > 5.0) { return safeU; }
    if (u < -5.0) { return safeU; }
    return u;
}

int main()
{
    int k;
    double su;
    double u;
    initComm();
    for (k = 0; k < 4000; k++) {
        sense();
        su = computeSafe();
        u = decision(su);
        /***SafeFlow Annotation assert(safe(u)) /***/
        writeDA(0, u);
        wait(0.01);
    }
    return 0;
}
`

func main() {
	fmt.Println("### Step 1: SafeFlow finds the feedback-rigging defect")
	rep, err := safeflow.AnalyzeString("generic-simplex-core", genericCore, safeflow.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "genericsimplex: %v\n", err)
		os.Exit(1)
	}
	safeflow.WriteReport(os.Stdout, rep)
	if rep.Clean() {
		fmt.Fprintln(os.Stderr, "expected the defect to be reported")
		os.Exit(1)
	}

	fmt.Println("\n### Step 2: run the generic Simplex loop on a configured plant")
	// A configurable second-order unstable plant (inverted-pendulum-like
	// pole pair), as the generic Simplex system's configuration file would
	// describe it.
	configured := &simplexrt.LTI{
		A: simplexrt.MatFrom([][]float64{
			{0, 1},
			{9.8, -0.1},
		}),
		B: simplexrt.MatFrom([][]float64{{0}, {1}}),
	}
	tr, err := simplexrt.Run(simplexrt.Config{
		Plant:     configured,
		InitState: []float64{0.08, 0},
		Steps:     3000,
		Fault:     simplexrt.FaultSaturate,
		FaultStep: 1500,
		ShmKey:    0x4200,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "genericsimplex: %v\n", err)
		os.Exit(1)
	}
	outcome := "stabilized"
	if tr.Diverged {
		outcome = "DIVERGED"
	}
	fmt.Printf("  configured plant: complex=%5.1f%% rejected=%4d max|x0|=%.3f  %s\n",
		100*tr.FracNonCore(), tr.Rejected, tr.MaxAbsState[0], outcome)
}
