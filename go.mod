module safeflow

go 1.22
