package corpus

import (
	"testing"

	"safeflow/internal/core"
	"safeflow/internal/pointsto"
)

// TestTable1Counts reproduces Table 1 of the paper: for each prototype
// system, the number of real error dependencies, warnings (unmonitored
// non-core accesses), false positives (control-dependence-only reports),
// and annotation lines.
func TestTable1Counts(t *testing.T) {
	for _, sys := range All() {
		t.Run(sys.Name, func(t *testing.T) {
			rep, err := sys.Analyze(core.Options{})
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			if len(rep.AnnotationErrors) != 0 {
				t.Errorf("annotation errors: %v", rep.AnnotationErrors)
			}
			if len(rep.Violations) != 0 {
				t.Errorf("restriction violations: %v", rep.Violations)
			}
			if got, want := len(rep.ErrorsData), sys.Expected.Errors; got != want {
				for _, e := range rep.ErrorsData {
					t.Logf("  error: %s", e)
				}
				t.Errorf("error dependencies = %d, want %d", got, want)
			}
			if got, want := len(rep.Warnings), sys.Expected.Warnings; got != want {
				for _, w := range rep.Warnings {
					t.Logf("  warning: %s", w)
				}
				t.Errorf("warnings = %d, want %d", got, want)
			}
			if got, want := len(rep.ErrorsControlOnly), sys.Expected.FalsePositives; got != want {
				for _, e := range rep.ErrorsControlOnly {
					t.Logf("  control-only: %s", e)
				}
				t.Errorf("false positives = %d, want %d", got, want)
			}
			if got, want := rep.AnnotationLines, sys.Expected.AnnotLines; got != want {
				t.Errorf("annotation lines = %d, want %d", got, want)
			}
		})
	}
}

// TestKillDefectInEverySystem checks the paper's observation that all
// three systems share the kill-pid error dependency.
func TestKillDefectInEverySystem(t *testing.T) {
	for _, sys := range All() {
		rep, err := sys.Analyze(core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		found := false
		for _, e := range rep.ErrorsData {
			if e.Var == "kill.pid" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no kill.pid error dependency among %d errors", sys.Name, len(rep.ErrorsData))
		}
	}
}

// TestTable1StableAcrossModes checks both alias solvers and the
// exponential phase-3 variant report identical Table 1 counts.
func TestTable1StableAcrossModes(t *testing.T) {
	variants := []struct {
		name string
		opts core.Options
	}{
		{"unify", core.Options{PointsTo: pointsto.ModeUnify}},
		{"exponential", core.Options{Exponential: true}},
	}
	for _, sys := range All() {
		base, err := sys.Analyze(core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		for _, v := range variants {
			rep, err := sys.Analyze(v.opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", sys.Name, v.name, err)
			}
			if len(rep.ErrorsData) != len(base.ErrorsData) ||
				len(rep.ErrorsControlOnly) != len(base.ErrorsControlOnly) ||
				len(rep.Warnings) != len(base.Warnings) {
				t.Errorf("%s/%s: counts diverge from default (E %d/%d, C %d/%d, W %d/%d)",
					sys.Name, v.name,
					len(rep.ErrorsData), len(base.ErrorsData),
					len(rep.ErrorsControlOnly), len(base.ErrorsControlOnly),
					len(rep.Warnings), len(base.Warnings))
			}
		}
	}
}

// TestExponentialCostsMore confirms the ablation premise: the per-call-path
// variant performs at least as many unit solves as the summary-sharing one.
func TestExponentialCostsMore(t *testing.T) {
	sys := DoubleIP()
	fast, err := sys.Analyze(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := sys.Analyze(core.Options{Exponential: true})
	if err != nil {
		t.Fatal(err)
	}
	if slow.UnitsAnalyzed < fast.UnitsAnalyzed {
		t.Errorf("exponential solves %d < summary solves %d", slow.UnitsAnalyzed, fast.UnitsAnalyzed)
	}
}
