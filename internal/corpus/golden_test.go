package corpus

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"safeflow/internal/report"
	"safeflow/pkg/safeflow"
)

var updateGolden = flag.Bool("update", false, "rewrite golden report files")

// TestGoldenReports locks the complete rendered report of each corpus
// system against a golden file — any change to diagnostics, ordering,
// positions, or wording shows up as a diff. The systems are analyzed
// through the public batch API, so this also locks AnalyzeAll's
// concurrent fan-out to the sequential reports. Regenerate intentionally
// with `go test ./internal/corpus -run TestGoldenReports -update`.
func TestGoldenReports(t *testing.T) {
	systems := All()
	jobs := make([]safeflow.Job, len(systems))
	for i, sys := range systems {
		src, err := sys.SourceMap()
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = safeflow.Job{Name: sys.Name, Sources: src, CFiles: sys.CFiles}
	}
	results := safeflow.AnalyzeAll(jobs)
	for i, sys := range systems {
		res := results[i]
		t.Run(sys.Name, func(t *testing.T) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			var sb strings.Builder
			report.Write(&sb, res.Report)
			got := sb.String()

			name := strings.ToLower(strings.ReplaceAll(sys.Name, " ", "_"))
			path := filepath.Join("..", "..", "testdata", "golden", name+".report.txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden file missing (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("report changed for %s:\n--- got ---\n%s\n--- want ---\n%s",
					sys.Name, got, string(want))
			}
		})
	}
}
