// Package corpus embeds the three prototype control systems of the
// paper's evaluation (Table 1) — the inverted-pendulum (IP) Simplex
// controller, the generic Simplex implementation, and the double
// inverted-pendulum controller — reimplemented in SafeFlow's C subset
// with the same seeded defects the paper reports finding:
//
//   - in every system, a kill() whose pid argument comes from an
//     unmonitored non-core shared-memory read (one real error each);
//   - in the generic Simplex, the feedback-rigging defect: the core
//     writes sensor feedback to shared memory and later reads it back
//     into the safety computation (a second real error);
//   - in the double IP, an unmonitored tuning value assumed not to reach
//     critical data but that propagates into the control output (a second
//     real error);
//   - plus the control-dependence flows (mode/ready/config gating) that
//     the paper's manual inspection classified as false positives.
package corpus

import (
	"context"
	"embed"
	"fmt"
	"io/fs"
	"strings"

	"safeflow/internal/core"
	"safeflow/internal/cpp"
)

//go:embed src
var srcFS embed.FS

// Expectation records the Table 1 row the system must reproduce.
type Expectation struct {
	Errors         int // real error dependencies (data-flow)
	Warnings       int // unmonitored non-core accesses
	FalsePositives int // control-dependence-only reports
	AnnotLines     int // SafeFlow annotation lines
	// Paper columns, for the EXPERIMENTS.md comparison.
	PaperLOCTotal int
	PaperLOCCore  int
}

// System is one corpus system.
type System struct {
	Name     string
	Dir      string
	CFiles   []string
	Expected Expectation
}

// IP returns the inverted-pendulum Simplex controller.
func IP() System {
	return System{
		Name:   "IP",
		Dir:    "src/ip",
		CFiles: []string{"init.c", "estimator.c", "control.c", "main.c"},
		Expected: Expectation{
			Errors: 1, Warnings: 7, FalsePositives: 2, AnnotLines: 11,
			PaperLOCTotal: 7079, PaperLOCCore: 820,
		},
	}
}

// GenericSimplex returns the generic (configurable-plant) Simplex system.
func GenericSimplex() System {
	return System{
		Name:   "Generic Simplex",
		Dir:    "src/gsx",
		CFiles: []string{"init.c", "plantlib.c", "channels.c", "main.c"},
		Expected: Expectation{
			Errors: 2, Warnings: 7, FalsePositives: 6, AnnotLines: 22,
			PaperLOCTotal: 8057, PaperLOCCore: 1020,
		},
	}
}

// DoubleIP returns the double inverted-pendulum controller.
func DoubleIP() System {
	return System{
		Name:   "Double IP",
		Dir:    "src/dip",
		CFiles: []string{"init.c", "estimator.c", "control.c", "main.c"},
		Expected: Expectation{
			Errors: 2, Warnings: 8, FalsePositives: 2, AnnotLines: 23,
			PaperLOCTotal: 7188, PaperLOCCore: 929,
		},
	}
}

// All returns the three systems in the paper's Table 1 order.
func All() []System {
	return []System{IP(), GenericSimplex(), DoubleIP()}
}

// Sources returns the system's file tree as a preprocessor source.
func (s System) Sources() (cpp.Source, error) {
	m := cpp.MapSource{}
	err := fs.WalkDir(srcFS, s.Dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := srcFS.ReadFile(path)
		if err != nil {
			return err
		}
		m[strings.TrimPrefix(path, s.Dir+"/")] = string(data)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("corpus: load %s: %w", s.Name, err)
	}
	return m, nil
}

// SourceMap returns the system's file tree as a plain map — the form the
// public batch API (safeflow.AnalyzeAll) takes.
func (s System) SourceMap() (map[string]string, error) {
	src, err := s.Sources()
	if err != nil {
		return nil, err
	}
	return src.(cpp.MapSource), nil
}

// Analyze runs the full SafeFlow pipeline on the system.
func (s System) Analyze(opts core.Options) (*core.Report, error) {
	return s.AnalyzeContext(context.Background(), opts)
}

// AnalyzeContext is Analyze with deadline/cancellation support.
func (s System) AnalyzeContext(ctx context.Context, opts core.Options) (*core.Report, error) {
	src, err := s.Sources()
	if err != nil {
		return nil, err
	}
	return core.AnalyzeSourcesContext(ctx, s.Name, src, s.CFiles, opts)
}
