/*
 * shared.h — shared-memory layout of the double inverted-pendulum (DIP)
 * controller: the IP controller code base extended with a second pendulum
 * link, dual non-core command channels, additional control modes, and an
 * online tuning region staged by the non-core optimizer. Seven
 * shared-memory variables in one SysV segment.
 */
#ifndef DIP_SHARED_H
#define DIP_SHARED_H

#define SHMKEY   4662
#define PERIOD   0.005
#define UMAX     10.0
#define MAXITER  8000
#define ENVELOPE 0.30
#define TUNEMAX  2.0
#define SIGTERM  15
#define SIGKILL  9
#define MODE_BALANCE 0
#define MODE_TRACK   1

/* Plant feedback: cart plus two links. */
typedef struct {
    double track;
    double trackVel;
    double angle1;
    double angleVel1;
    double angle2;
    double angleVel2;
    int    seq;
    int    pad;
} SHMData;

/* One non-core command channel (one per control mode family). */
typedef struct {
    double control;
    double timestamp;
    int    ready;
    int    seq;
} SHMCmd;

/* Non-core subsystem status. */
typedef struct {
    int modeRequest;  /* requested control mode          */
    int heartbeat;
    int iteration;
    int pad;
} SHMStatus;

/* Online tuning staged by the non-core optimizer. */
typedef struct {
    double stiffness;       /* validated by monitorTuning          */
    double damping;         /* validated by monitorTuning          */
    double blend;           /* believed display-only — it is not   */
    double aggressiveness;  /* display-only metric                 */
    int    valid;
    int    pad;
} SHMTuning;

/* Process registry. */
typedef struct {
    int corePid;
    int noncorePid;
    int optimizerPid;
    int pad;
} SHMProcs;

/* Console display scratch (written by core for the console). */
typedef struct {
    double lastOutput1;
    double lastOutput2;
    int    lastMode;
    int    pad;
} SHMDisplay;

extern SHMData    *feedback;
extern SHMCmd     *noncoreCmd1;
extern SHMCmd     *noncoreCmd2;
extern SHMStatus  *status;
extern SHMTuning  *tuning;
extern SHMProcs   *procs;
extern SHMDisplay *display;

/* init.c */
void initComm();
void registerCorePid();

/* estimator.c */
int    dipSelfTest();
void   dipCalibrate();
double filteredAngle1(double raw, double dt);
double filteredAngle2(double raw, double dt);
double swingEnergy();
int    modeUpgradeAllowed();
double slewLimit1(double u);
double slewLimit2(double u);
double trackBias();

/* control.c */
void   senseState();
void   publishFeedback(int seq);
double safeControl1();
double safeControl2();
int    monitorTuning();
double decision1(double safeU, int seq);
double decision2(double safeU, int seq);
void   sendOutputs(double u1, double u2);
double blendFactor();

#endif /* DIP_SHARED_H */
