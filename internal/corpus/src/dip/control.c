/*
 * control.c — sensing, per-link safety control laws, the two decision
 * modules (one per command channel), and the tuning monitor of the DIP
 * core controller.
 *
 * The file carries the system's subtle seeded defect: blendFactor() reads
 * the tuning region's blend parameter unmonitored, under the assumption
 * that it feeds only the operator display. main.c mixes it into the
 * primary control output — the invalid propagation assumption SafeFlow's
 * evaluation reports discovering in this system.
 */
#include "shared.h"

typedef struct {
    double track;
    double trackVel;
    double a1;
    double a1Vel;
    double a2;
    double a2Vel;
} LocalState;

typedef struct {
    double stiffness;
    double damping;
} LocalTuning;

static LocalState st;
static LocalTuning lt;
static double prevTrack;
static double prevA1;
static double prevA2;

/* Conservative LQR gains for the two links (synthesized offline). */
#define K1_TRACK 3.1623
#define K1_TVEL  4.8921
#define K1_ANG   78.4412
#define K1_AVEL  14.0933
#define K2_ANG   41.2284
#define K2_AVEL  7.5517

void senseState()
{
    double x;
    double a1;
    double a2;

    x = readSensor(0) - trackBias();
    a1 = filteredAngle1(readSensor(1), PERIOD);
    a2 = filteredAngle2(readSensor(2), PERIOD);
    st.trackVel = (x - prevTrack) / PERIOD;
    st.a1Vel = (a1 - prevA1) / PERIOD;
    st.a2Vel = (a2 - prevA2) / PERIOD;
    st.track = x;
    st.a1 = a1;
    st.a2 = a2;
    prevTrack = x;
    prevA1 = a1;
    prevA2 = a2;
}

void publishFeedback(int seq)
{
    feedback->track = st.track;
    feedback->trackVel = st.trackVel;
    feedback->angle1 = st.a1;
    feedback->angleVel1 = st.a1Vel;
    feedback->angle2 = st.a2;
    feedback->angleVel2 = st.a2Vel;
    feedback->seq = seq;
}

double safeControl1()
{
    double u;
    u = -(K1_TRACK * st.track + K1_TVEL * st.trackVel
          + lt.stiffness * K1_ANG * st.a1 + lt.damping * K1_AVEL * st.a1Vel);
    if (u > UMAX) {
        u = UMAX;
    }
    if (u < -UMAX) {
        u = -UMAX;
    }
    return u;
}

double safeControl2()
{
    double u;
    u = -(lt.stiffness * K2_ANG * st.a2 + lt.damping * K2_AVEL * st.a2Vel);
    if (u > UMAX) {
        u = UMAX;
    }
    if (u < -UMAX) {
        u = -UMAX;
    }
    return u;
}

/* monitorTuning validates the staged stiffness/damping multipliers before
 * copying them into the core-local tuning set. */
int monitorTuning()
/***SafeFlow Annotation assume(core(tuning, 0, sizeof(SHMTuning))) /***/
{
    double s;
    double d;

    if (tuning->valid == 0) {
        return 0;
    }
    s = tuning->stiffness;
    d = tuning->damping;
    if (s < 0.5) {
        return 0;
    }
    if (s > TUNEMAX) {
        return 0;
    }
    if (d < 0.5) {
        return 0;
    }
    if (d > TUNEMAX) {
        return 0;
    }
    lt.stiffness = s;
    lt.damping = d;
    return 1;
}

/* blendFactor reads the output mixing factor for the console display.
 * DEFECT: the read is unmonitored on the assumption that the value never
 * reaches critical data — but main.c mixes it into output1. */
double blendFactor()
{
    double b;

    b = tuning->blend;
    if (b < 0.0) {
        b = 0.0;
    }
    if (b > 1.0) {
        b = 1.0;
    }
    return b;
}

static int checkEnvelope1(double u)
/***SafeFlow Annotation assume(core(noncoreCmd1, 0, sizeof(SHMCmd))) /***/
{
    double pred;

    if (u > UMAX) {
        return 0;
    }
    if (u < -UMAX) {
        return 0;
    }
    pred = st.a1 + PERIOD * st.a1Vel + PERIOD * PERIOD * 4.0 * u;
    if (fabs(pred) > ENVELOPE) {
        return 0;
    }
    return 1;
}

static int checkEnvelope2(double u)
/***SafeFlow Annotation assume(core(noncoreCmd2, 0, sizeof(SHMCmd))) /***/
{
    double pred;

    if (u > UMAX) {
        return 0;
    }
    if (u < -UMAX) {
        return 0;
    }
    pred = st.a2 + PERIOD * st.a2Vel + PERIOD * PERIOD * 4.0 * u;
    if (fabs(pred) > ENVELOPE) {
        return 0;
    }
    return 1;
}

double decision1(double safeU, int seq)
/***SafeFlow Annotation assume(core(noncoreCmd1, 0, sizeof(SHMCmd))) /***/
{
    double u;

    if (noncoreCmd1->ready == 0) {
        return safeU;
    }
    if (noncoreCmd1->seq != seq) {
        return safeU;
    }
    u = noncoreCmd1->control;
    if (checkEnvelope1(u)) {
        return u;
    }
    return safeU;
}

double decision2(double safeU, int seq)
/***SafeFlow Annotation assume(core(noncoreCmd2, 0, sizeof(SHMCmd))) /***/
{
    double u;

    if (noncoreCmd2->ready == 0) {
        return safeU;
    }
    if (noncoreCmd2->seq != seq) {
        return safeU;
    }
    u = noncoreCmd2->control;
    if (checkEnvelope2(u)) {
        return u;
    }
    return safeU;
}

void sendOutputs(double u1, double u2)
{
    writeDA(0, u1);
    writeDA(1, u2);
    display->lastOutput1 = u1;
    display->lastOutput2 = u2;
}
