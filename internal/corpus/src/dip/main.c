/*
 * main.c — the DIP core controller's periodic loop, mode handling,
 * telemetry, and shutdown.
 *
 * Seeded defects (Table 1's Double IP row):
 *   - output1 mixes in the unmonitored blend factor (real error: the
 *     propagation assumption in control.c is invalid);
 *   - shutdownNonCore() kills the pid read from the unmonitored procs
 *     region (real error);
 *   - output2 is gated on an unmonitored ready pre-check and the control
 *     mode on an unmonitored mode request — the two control-dependence
 *     reports classified as false positives on inspection.
 */
#include "shared.h"

static void logTelemetry(int iter)
{
    int hb;
    int ncIter;
    double aggr;
    double ts;

    hb = status->heartbeat;
    ncIter = status->iteration;
    aggr = tuning->aggressiveness;
    ts = noncoreCmd2->timestamp;
    printf("dip[%d]: hb=%d nc_iter=%d aggr=%f ts=%f\n", iter, hb, ncIter, aggr, ts);
}

static void shutdownNonCore()
{
    int np;

    np = procs->noncorePid;
    if (np > 0) {
        kill(np, SIGKILL);
    }
}

int main()
{
    int iter;
    int req;
    int ctrlMode;
    int r2;
    double safe1;
    double safe2;
    double u1;
    double u2;
    double blend;
    double output1;
    double output2;

    initComm();
    registerCorePid();
    if (dipSelfTest() == 0) {
        fprintf(0, "dip: self-test failed, refusing to start\n");
        exit(1);
    }
    dipCalibrate();
    senseState();
    if (monitorTuning() == 0) {
        printf("dip: staged tuning rejected, keeping defaults\n");
    }

    for (iter = 0; iter < MAXITER; iter++) {
        Lock(0);
        senseState();
        publishFeedback(iter);
        Unlock(0);

        safe1 = safeControl1();
        safe2 = safeControl2();
        wait(PERIOD);

        req = status->modeRequest;
        if (req == MODE_TRACK) {
            if (modeUpgradeAllowed()) {
                ctrlMode = MODE_TRACK;
            } else {
                ctrlMode = MODE_BALANCE;
            }
        } else {
            ctrlMode = MODE_BALANCE;
        }
        /***SafeFlow Annotation assert(safe(ctrlMode)) /***/
        display->lastMode = ctrlMode;

        Lock(0);
        u1 = decision1(safe1, iter);
        blend = blendFactor();
        output1 = (1.0 - blend) * safe1 + blend * u1;
        /***SafeFlow Annotation assert(safe(output1)) /***/

        r2 = noncoreCmd2->ready;
        if (r2 != 0) {
            output2 = decision2(safe2, iter);
        } else {
            output2 = safe2;
        }
        Unlock(0);
        /***SafeFlow Annotation assert(safe(output2)) /***/

        sendOutputs(slewLimit1(output1), slewLimit2(output2));

        if ((iter % 100) == 0) {
            logTelemetry(iter);
        }
    }

    shutdownNonCore();
    return 0;
}
