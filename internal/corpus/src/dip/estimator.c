/*
 * estimator.c — core-local estimation and sequencing for the DIP
 * controller: startup self-test over three sensor channels, per-link
 * complementary filters, a swing-energy estimate used to sequence control
 * modes safely, and a two-channel actuator slew limiter.
 *
 * As with the other systems' core-local libraries, nothing here touches
 * shared memory; the analysis verifies that the entire estimation path is
 * free of non-core influence.
 */
#include "shared.h"

#define CAL_SAMPLES 24
#define FILTER_K    0.97
#define SLEW_LIMIT  1.5
#define ENERGY_MAX  4.0

static double bias0;
static double bias1;
static double bias2;
static double filtA1;
static double filtA1Vel;
static double filtA2;
static double filtA2Vel;
static double lastU1;
static double lastU2;
static int    healthy;

/* dipSelfTest sweeps the three sensor channels and the two actuator
 * channels at zero before the loop starts. */
int dipSelfTest()
{
    int ch;
    double v;

    for (ch = 0; ch < 3; ch++) {
        v = readSensor(ch);
        if (fabs(v) > 10.0) {
            printf("dip: self-test: channel %d out of range (%f)\n", ch, v);
            return 0;
        }
    }
    writeDA(0, 0.0);
    writeDA(1, 0.0);
    healthy = 1;
    return 1;
}

/* dipCalibrate estimates static biases with the plant at rest. */
void dipCalibrate()
{
    int i;
    double s0;
    double s1;
    double s2;

    s0 = 0.0;
    s1 = 0.0;
    s2 = 0.0;
    for (i = 0; i < CAL_SAMPLES; i++) {
        s0 += readSensor(0);
        s1 += readSensor(1);
        s2 += readSensor(2);
        wait(0.002);
    }
    bias0 = s0 / CAL_SAMPLES;
    bias1 = s1 / CAL_SAMPLES;
    bias2 = s2 / CAL_SAMPLES;
}

/* filteredAngle1/2 fuse the raw link angles with their integrated rates
 * (one complementary filter per link). */
double filteredAngle1(double raw, double dt)
{
    double predicted;

    raw = raw - bias1;
    predicted = filtA1 + filtA1Vel * dt;
    filtA1 = FILTER_K * predicted + (1.0 - FILTER_K) * raw;
    filtA1Vel = filtA1Vel + (raw - predicted) * (1.0 - FILTER_K) / dt;
    return filtA1;
}

double filteredAngle2(double raw, double dt)
{
    double predicted;

    raw = raw - bias2;
    predicted = filtA2 + filtA2Vel * dt;
    filtA2 = FILTER_K * predicted + (1.0 - FILTER_K) * raw;
    filtA2Vel = filtA2Vel + (raw - predicted) * (1.0 - FILTER_K) / dt;
    return filtA2;
}

/* swingEnergy is the core's scalar health metric: a weighted sum of link
 * deflections and rates. Mode upgrades are only sequenced while it is
 * small; this gate is computed purely from core data. */
double swingEnergy()
{
    double e1;
    double e2;

    e1 = 9.81 * (1.0 - 1.0 + filtA1 * filtA1 * 0.5) + 0.125 * filtA1Vel * filtA1Vel;
    e2 = 9.81 * (filtA2 * filtA2 * 0.25) + 0.03 * filtA2Vel * filtA2Vel;
    return e1 + e2;
}

/* modeUpgradeAllowed gates control-mode upgrades on the core's own
 * energy estimate, independent of any non-core request. */
int modeUpgradeAllowed()
{
    if (healthy == 0) {
        return 0;
    }
    if (swingEnergy() > ENERGY_MAX) {
        return 0;
    }
    return 1;
}

/* slewLimit bounds per-period output changes on both channels. */
double slewLimit1(double u)
{
    double d;

    d = u - lastU1;
    if (d > SLEW_LIMIT) {
        u = lastU1 + SLEW_LIMIT;
    }
    if (d < -SLEW_LIMIT) {
        u = lastU1 - SLEW_LIMIT;
    }
    lastU1 = u;
    return u;
}

double slewLimit2(double u)
{
    double d;

    d = u - lastU2;
    if (d > SLEW_LIMIT) {
        u = lastU2 + SLEW_LIMIT;
    }
    if (d < -SLEW_LIMIT) {
        u = lastU2 - SLEW_LIMIT;
    }
    lastU2 = u;
    return u;
}

double trackBias()
{
    return bias0;
}
