/*
 * init.c — shared-memory initialization for the DIP core controller.
 */
#include "shared.h"

SHMData    *feedback;
SHMCmd     *noncoreCmd1;
SHMCmd     *noncoreCmd2;
SHMStatus  *status;
SHMTuning  *tuning;
SHMProcs   *procs;
SHMDisplay *display;

void initComm()
/***SafeFlow Annotation shminit /***/
{
    int shmid;
    long total;
    void *base;

    total = sizeof(SHMData) + 2 * sizeof(SHMCmd) + sizeof(SHMStatus)
          + sizeof(SHMTuning) + sizeof(SHMProcs) + sizeof(SHMDisplay);
    shmid = shmget(SHMKEY, total, 0666);
    if (shmid < 0) {
        perror("shmget");
        exit(1);
    }
    base = shmat(shmid, 0, 0);
    feedback    = (SHMData *) base;
    noncoreCmd1 = (SHMCmd *) (feedback + 1);
    noncoreCmd2 = noncoreCmd1 + 1;
    status      = (SHMStatus *) (noncoreCmd2 + 1);
    tuning      = (SHMTuning *) (status + 1);
    procs       = (SHMProcs *) (tuning + 1);
    display     = (SHMDisplay *) (procs + 1);
    if (InitCheck(base, total) == 0) {
        fprintf(0, "dip: shared memory layout invalid\n");
        exit(1);
    }
    /***SafeFlow Annotation assume(shmvar(feedback, sizeof(SHMData))) /***/
    /***SafeFlow Annotation assume(shmvar(noncoreCmd1, sizeof(SHMCmd))) /***/
    /***SafeFlow Annotation assume(shmvar(noncoreCmd2, sizeof(SHMCmd))) /***/
    /***SafeFlow Annotation assume(shmvar(status, sizeof(SHMStatus))) /***/
    /***SafeFlow Annotation assume(shmvar(tuning, sizeof(SHMTuning))) /***/
    /***SafeFlow Annotation assume(shmvar(procs, sizeof(SHMProcs))) /***/
    /***SafeFlow Annotation assume(shmvar(display, sizeof(SHMDisplay))) /***/
    /***SafeFlow Annotation assume(noncore(feedback)) /***/
    /***SafeFlow Annotation assume(noncore(noncoreCmd1)) /***/
    /***SafeFlow Annotation assume(noncore(noncoreCmd2)) /***/
    /***SafeFlow Annotation assume(noncore(status)) /***/
    /***SafeFlow Annotation assume(noncore(tuning)) /***/
    /***SafeFlow Annotation assume(noncore(procs)) /***/
    /***SafeFlow Annotation assume(noncore(display)) /***/
}

void registerCorePid()
{
    procs->corePid = getpid();
}
