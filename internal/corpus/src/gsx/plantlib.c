/*
 * plantlib.c — core-local plant-model library of the generic Simplex
 * implementation: a small gain-schedule table per supported plant type, a
 * discrete one-step predictor used by the recoverability check, watchdog
 * heartbeating on the core side, and output shaping.
 *
 * All computation here is over core-owned data; the staged gains from the
 * configuration tool enter only through the monitored loadGains() path in
 * channels.c.
 */
#include "shared.h"

#define NPLANTS     3
#define NGAINS      4
#define HEARTBEAT_N 10

/* Built-in conservative gain schedules per plant type (row per plant). */
static double builtinGains[NPLANTS][NGAINS];
static double predState0;
static double predState1;
static int    heartbeatCountdown;
static int    plantTypeInUse;

/* initPlantLibrary fills the built-in schedule table; called once at
 * startup before any control output is produced. */
void initPlantLibrary()
{
    int p;
    int g;
    double base;

    for (p = 0; p < NPLANTS; p++) {
        base = 1.0 + 0.5 * p;
        for (g = 0; g < NGAINS; g++) {
            builtinGains[p][g] = base * (g + 1);
        }
    }
    plantTypeInUse = 0;
    heartbeatCountdown = HEARTBEAT_N;
}

/* selectBuiltinGains copies one row of the built-in schedule into the
 * caller's buffer — the fallback when the staged gains fail validation. */
void selectBuiltinGains(int plantType, double *out)
{
    int g;

    if (plantType < 0) {
        plantType = 0;
    }
    if (plantType >= NPLANTS) {
        plantType = NPLANTS - 1;
    }
    plantTypeInUse = plantType;
    for (g = 0; g < NGAINS; g++) {
        out[g] = builtinGains[plantType][g];
    }
}

/* predictStep advances the core's one-step model of the plant under a
 * candidate output: a damped double integrator is the conservative model
 * shared by all supported plants. */
void predictStep(double s0, double s1, double u, double dt)
{
    predState0 = s0 + dt * s1;
    predState1 = s1 * (1.0 - 0.05 * dt) + dt * u;
}

double predictedPos()
{
    return predState0;
}

double predictedVel()
{
    return predState1;
}

/* coreHeartbeat decrements the core-side watchdog counter and refreshes
 * the exported epoch when it expires — the liveness signal the external
 * watchdog process monitors. */
void coreHeartbeat(int iter)
{
    heartbeatCountdown = heartbeatCountdown - 1;
    if (heartbeatCountdown <= 0) {
        watchdog->epoch = iter;
        heartbeatCountdown = HEARTBEAT_N;
    }
}

/* shapeOutput applies a deadband and saturation to the final output so
 * tiny chatter does not reach the actuator. */
double shapeOutput(double u)
{
    if (u < 0.02) {
        if (u > -0.02) {
            return 0.0;
        }
    }
    if (u > UMAX) {
        return UMAX;
    }
    if (u < -UMAX) {
        return -UMAX;
    }
    return u;
}

int activePlantType()
{
    return plantTypeInUse;
}
