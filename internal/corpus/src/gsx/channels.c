/*
 * channels.c — sensing, gain management, per-channel control laws, the
 * decision module, and the output log of the generic Simplex core.
 *
 * This file carries one of the system's two seeded error dependencies:
 * computeSafeOutput() reads the sensor feedback back from shared memory
 * instead of using the core's local copy. Because the feedback region is
 * writable by the non-core subsystem, a faulty or malicious non-core
 * component can replace it with values that rig the recoverability check
 * — exactly the fatal scenario the paper describes for this system.
 */
#include "shared.h"

/* Core-local state and validated gains. */
typedef struct {
    double s0;
    double s1;
    double s2;
    double s3;
} LocalState;

typedef struct {
    double k0;
    double k1;
    double k2;
    double k3;
} LocalGains;

static LocalState st;
static LocalGains lg;
static double pendingLog[LOGN];
static int npending;

void senseAndPublish(int seq)
{
    st.s0 = readSensor(0);
    st.s1 = readSensor(1);
    st.s2 = readSensor(2);
    st.s3 = readSensor(3);
    feedback->state0 = st.s0;
    feedback->state1 = st.s1;
    feedback->state2 = st.s2;
    feedback->state3 = st.s3;
    feedback->seq = seq;
}

/* loadGains is a monitoring function: the staged gains are validated
 * (range-checked against the plant's stability margins) before they are
 * copied into the core-local gain set. */
int loadGains()
/***SafeFlow Annotation assume(core(gains, 0, sizeof(SHMGains))) /***/
{
    double g0;
    double g1;
    double g2;
    double g3;

    if (gains->valid == 0) {
        return 0;
    }
    g0 = gains->k0;
    g1 = gains->k1;
    g2 = gains->k2;
    g3 = gains->k3;
    if (fabs(g0) > GAINMAX) {
        return 0;
    }
    if (fabs(g1) > GAINMAX) {
        return 0;
    }
    if (fabs(g2) > GAINMAX) {
        return 0;
    }
    if (fabs(g3) > GAINMAX) {
        return 0;
    }
    lg.k0 = g0;
    lg.k1 = g1;
    lg.k2 = g2;
    lg.k3 = g3;
    return 1;
}

/* channelOutput computes one channel's control law from the core-local
 * state and the validated gains. */
double channelOutput(int chan)
{
    double u;

    if (chan == 0) {
        u = -(lg.k0 * st.s0 + lg.k1 * st.s1);
    } else {
        u = -(lg.k2 * st.s2 + lg.k3 * st.s3);
    }
    if (u > UMAX) {
        u = UMAX;
    }
    if (u < -UMAX) {
        u = -UMAX;
    }
    return u;
}

/* computeSafeOutput derives the fall-back output — DEFECT: it re-reads
 * the published feedback from shared memory rather than using st. */
double computeSafeOutput()
{
    double s0;
    double s1;
    double u;

    s0 = feedback->state0;
    s1 = feedback->state1;
    u = -(lg.k0 * s0 + lg.k1 * s1);
    if (u > UMAX) {
        u = UMAX;
    }
    if (u < -UMAX) {
        u = -UMAX;
    }
    return u;
}

/* useFallbackGains installs the built-in conservative schedule when the
 * staged gains fail validation. */
void useFallbackGains()
{
    double tmp[4];

    selectBuiltinGains(activePlantType(), tmp);
    lg.k0 = tmp[0];
    lg.k1 = tmp[1];
    lg.k2 = tmp[2];
    lg.k3 = tmp[3];
}

static int checkRecoverable(double u)
{
    if (u > UMAX) {
        return 0;
    }
    if (u < -UMAX) {
        return 0;
    }
    predictStep(st.s0, st.s1, u, 0.01);
    if (fabs(predictedPos()) > 1.0) {
        return 0;
    }
    if (fabs(predictedVel()) > 5.0) {
        return 0;
    }
    return 1;
}

double decision(double safeOut, int seq)
/***SafeFlow Annotation assume(core(noncoreCtrl, 0, sizeof(SHMCmd))) /***/
{
    double u;

    if (noncoreCtrl->ready == 0) {
        return safeOut;
    }
    if (noncoreCtrl->seq != seq) {
        return safeOut;
    }
    u = noncoreCtrl->control;
    if (checkRecoverable(u)) {
        return u;
    }
    return safeOut;
}

/* logOutput stages outputs locally and flushes full windows into the
 * shared log ring for the operator console. */
void logOutput(double u)
{
    int i;

    pendingLog[npending] = u;
    npending = npending + 1;
    if (npending == LOGN) {
        for (i = 0; i < LOGN; i++) {
            logbuf->buf[i] = pendingLog[i];
        }
        logbuf->head = LOGN;
        npending = 0;
    }
}

void sendOutput(int chan, double u)
{
    writeDA(chan, u);
}
