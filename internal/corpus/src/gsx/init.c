/*
 * init.c — shared-memory initialization for the generic Simplex core.
 * Seven shared-memory variables are carved out of one untyped SysV
 * segment; all of them are writable by the non-core subsystem (the
 * configuration tool, the complex controller, and the operator console),
 * so every one is annotated noncore.
 */
#include "shared.h"

SHMData   *feedback;
SHMCmd    *noncoreCtrl;
SHMConfig *config;
SHMStatus *status;
SHMGains  *gains;
SHMLog    *logbuf;
SHMWatch  *watchdog;

void initComm()
/***SafeFlow Annotation shminit /***/
{
    int shmid;
    long total;
    void *base;

    total = sizeof(SHMData) + sizeof(SHMCmd) + sizeof(SHMConfig)
          + sizeof(SHMStatus) + sizeof(SHMGains) + sizeof(SHMLog)
          + sizeof(SHMWatch);
    shmid = shmget(SHMKEY, total, 0666);
    if (shmid < 0) {
        perror("shmget");
        exit(1);
    }
    base = shmat(shmid, 0, 0);
    feedback    = (SHMData *) base;
    noncoreCtrl = (SHMCmd *) (feedback + 1);
    config      = (SHMConfig *) (noncoreCtrl + 1);
    status      = (SHMStatus *) (config + 1);
    gains       = (SHMGains *) (status + 1);
    logbuf      = (SHMLog *) (gains + 1);
    watchdog    = (SHMWatch *) (logbuf + 1);
    if (InitCheck(base, total) == 0) {
        fprintf(0, "gsx: shared memory layout invalid\n");
        exit(1);
    }
    /***SafeFlow Annotation assume(shmvar(feedback, sizeof(SHMData))) /***/
    /***SafeFlow Annotation assume(shmvar(noncoreCtrl, sizeof(SHMCmd))) /***/
    /***SafeFlow Annotation assume(shmvar(config, sizeof(SHMConfig))) /***/
    /***SafeFlow Annotation assume(shmvar(status, sizeof(SHMStatus))) /***/
    /***SafeFlow Annotation assume(shmvar(gains, sizeof(SHMGains))) /***/
    /***SafeFlow Annotation assume(shmvar(logbuf, sizeof(SHMLog))) /***/
    /***SafeFlow Annotation assume(shmvar(watchdog, sizeof(SHMWatch))) /***/
    /***SafeFlow Annotation assume(noncore(feedback)) /***/
    /***SafeFlow Annotation assume(noncore(noncoreCtrl)) /***/
    /***SafeFlow Annotation assume(noncore(config)) /***/
    /***SafeFlow Annotation assume(noncore(status)) /***/
    /***SafeFlow Annotation assume(noncore(gains)) /***/
    /***SafeFlow Annotation assume(noncore(logbuf)) /***/
    /***SafeFlow Annotation assume(noncore(watchdog)) /***/
}
