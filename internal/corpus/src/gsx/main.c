/*
 * main.c — the generic Simplex core's periodic loop, mode management and
 * supervision.
 *
 * Seeded defects and the control-dependence flows found by SafeFlow:
 *
 *   - superviseNonCore() kills the pid read from the unmonitored watchdog
 *     region (real error: the non-core side can point it at the core);
 *   - the channel count, period, operating mode, and both supervision
 *     kills are gated on unmonitored configuration/status reads — the six
 *     control-dependence reports the paper's inspection classified as
 *     false positives (the values themselves are computed safely on every
 *     path).
 */
#include "shared.h"

static int noncoreChildPid;

static int spawnNonCore()
{
    int pid;

    pid = fork();
    if (pid == 0) {
        /* Child: becomes the non-core controller process (modeled). */
        exit(0);
    }
    return pid;
}

/* superviseNonCore restarts the non-core controller when its heartbeat
 * stops. DEFECT: the kill target comes from the unmonitored watchdog
 * region rather than the core's own record of the child pid. */
static void superviseNonCore()
{
    int alive;
    int np;

    alive = status->noncoreAlive;
    if (alive == 0) {
        np = watchdog->noncorePid;
        if (np > 0) {
            kill(np, SIGKILL);
        }
        if (noncoreChildPid > 0) {
            kill(noncoreChildPid, SIGTERM);
        }
        noncoreChildPid = spawnNonCore();
    }
}

static void handleRequests()
{
    int req;
    int mode;

    req = status->request;
    if (req == REQ_UPGRADE) {
        mode = 2;
    } else {
        if (req == REQ_DEGRADE) {
            mode = 1;
        } else {
            mode = 0;
        }
    }
    /***SafeFlow Annotation assert(safe(mode)) /***/
    printf("gsx: operating mode %d\n", mode);

    if (req == REQ_RESTART) {
        kill(noncoreChildPid, SIGTERM);
        noncoreChildPid = spawnNonCore();
    }
}

int main()
{
    int iter;
    int nch;
    int fast;
    double period;
    double safeOut;
    double output;
    double u1;
    double u2;

    initComm();
    initPlantLibrary();
    noncoreChildPid = spawnNonCore();
    if (loadGains() == 0) {
        fprintf(0, "gsx: staged gains invalid, using defaults\n");
        useFallbackGains();
    }

    nch = config->nchannels;
    fast = config->fastMode;
    if (fast != 0) {
        period = 0.005;
    } else {
        period = 0.01;
    }
    /***SafeFlow Annotation assert(safe(period)) /***/

    for (iter = 0; iter < MAXITER; iter++) {
        Lock(0);
        senseAndPublish(iter);
        Unlock(0);

        safeOut = computeSafeOutput();
        wait(period);

        Lock(0);
        output = decision(safeOut, iter);
        Unlock(0);
        /***SafeFlow Annotation assert(safe(output)) /***/
        sendOutput(0, shapeOutput(output));
        logOutput(output);

        u1 = 0.0;
        u2 = 0.0;
        if (nch > 0) {
            u1 = channelOutput(0);
            if (nch > 1) {
                u2 = channelOutput(1);
            }
        }
        /***SafeFlow Annotation assert(safe(u1)) /***/
        /***SafeFlow Annotation assert(safe(u2)) /***/
        sendOutput(1, u1);
        sendOutput(2, u2);

        coreHeartbeat(iter);
        if ((iter % 100) == 0) {
            handleRequests();
            superviseNonCore();
        }
    }
    return 0;
}
