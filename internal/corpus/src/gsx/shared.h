/*
 * shared.h — shared-memory layout of the generic Simplex implementation:
 * a configurable core controller for simple plants, customized through a
 * configuration region written by the (non-core) operator tooling. Seven
 * shared-memory variables sit back to back in one SysV segment.
 */
#ifndef GSX_SHARED_H
#define GSX_SHARED_H

#define SHMKEY    4661
#define MAXITER   4000
#define UMAX      5.0
#define GAINMAX   100.0
#define LOGN      8
#define MAXCHAN   2
#define SIGTERM   15
#define SIGKILL   9
#define REQ_NONE     0
#define REQ_DEGRADE  1
#define REQ_UPGRADE  2
#define REQ_RESTART  3

/* Plant feedback published by the core each period. */
typedef struct {
    double state0;   /* primary plant state (e.g. position)  */
    double state1;   /* derivative state                     */
    double state2;   /* secondary channel state              */
    double state3;   /* secondary derivative                 */
    int    seq;
    int    pad;
} SHMData;

/* Non-core controller's proposed output. */
typedef struct {
    double control;
    double timestamp;
    int    ready;
    int    seq;
} SHMCmd;

/* Operator-tool configuration (written by non-core tooling). */
typedef struct {
    int nchannels;   /* 1 or 2 control channels  */
    int fastMode;    /* halve the control period */
    int plantType;   /* plant model selector     */
    int pad;
} SHMConfig;

/* Non-core subsystem status. */
typedef struct {
    int request;       /* REQ_* mode/restart requests   */
    int noncoreAlive;  /* non-core heartbeat flag       */
    int heartbeat;
    int pad;
} SHMStatus;

/* Plant gains staged by the configuration tool, validated before use. */
typedef struct {
    double k0;
    double k1;
    double k2;
    double k3;
    int    valid;
    int    pad;
} SHMGains;

/* Output log ring exported for the operator console. */
typedef struct {
    double buf[LOGN];
    int    head;
    int    pad;
} SHMLog;

/* Supervision registry. */
typedef struct {
    int noncorePid;
    int watchdogPid;
    int epoch;
    int pad;
} SHMWatch;

extern SHMData   *feedback;
extern SHMCmd    *noncoreCtrl;
extern SHMConfig *config;
extern SHMStatus *status;
extern SHMGains  *gains;
extern SHMLog    *logbuf;
extern SHMWatch  *watchdog;

/* init.c */
void initComm();

/* plantlib.c */
void   initPlantLibrary();
void   selectBuiltinGains(int plantType, double *out);
void   predictStep(double s0, double s1, double u, double dt);
double predictedPos();
double predictedVel();
void   coreHeartbeat(int iter);
double shapeOutput(double u);
int    activePlantType();

/* channels.c */
void   senseAndPublish(int seq);
int    loadGains();
double channelOutput(int chan);
double computeSafeOutput();
double decision(double safeOut, int seq);
void   useFallbackGains();
void   logOutput(double u);
void   sendOutput(int chan, double u);

#endif /* GSX_SHARED_H */
