/*
 * control.c — the IP core controller's sensing, safety control, and the
 * decision module that monitors the non-core controller's proposals.
 *
 * decision() is the monitoring function: its annotation declares the
 * noncoreCtrl shared-memory variable core within it (and within every
 * function it calls), so the envelope check may dereference the proposal
 * safely. All other shared-memory reads in this file go through it.
 */
#include "shared.h"

/* Local (core-owned) estimate of the plant state. */
typedef struct {
    double angle;
    double track;
    double angleVel;
    double trackVel;
} LocalState;

static LocalState st;
static double prevAngle;
static double prevTrack;

/* Safety-controller gains (conservative discrete LQR, synthesized offline
 * for the lab cart-pole: u = -(K.x), actuator-positive = cart-right). */
#define K_TRACK    -0.9512
#define K_TRACKVEL -2.4553
#define K_ANGLE    -32.5483
#define K_ANGLEVEL -8.3048

void senseState()
{
    double a;
    double x;

    a = readSensor(0);
    x = readSensor(1);
    st.angleVel = (a - prevAngle) / PERIOD;
    st.trackVel = (x - prevTrack) / PERIOD;
    st.angle = a;
    st.track = x;
    prevAngle = a;
    prevTrack = x;
}

void publishFeedback(int seq)
{
    feedback->angle = st.angle;
    feedback->track = st.track;
    feedback->angleVel = st.angleVel;
    feedback->trackVel = st.trackVel;
    feedback->seq = seq;
}

double computeSafeControl()
{
    double u;
    u = -(K_TRACK * st.track + K_TRACKVEL * st.trackVel
          + K_ANGLE * st.angle + K_ANGLEVEL * st.angleVel);
    if (u > UMAX) {
        u = UMAX;
    }
    if (u < -UMAX) {
        u = -UMAX;
    }
    return u;
}

/* checkEnvelope predicts the pendulum angle one period ahead under the
 * proposed output and accepts it only inside the recoverability envelope.
 * Called from decision(), so the core assumption on noncoreCtrl is
 * inherited here. */
static int checkEnvelope()
{
    double u;
    double predAngle;

    u = noncoreCtrl->control;
    if (u > UMAX) {
        return 0;
    }
    if (u < -UMAX) {
        return 0;
    }
    predAngle = st.angle + PERIOD * st.angleVel - PERIOD * PERIOD * 1.5 * u;
    if (fabs(predAngle) > ENVELOPE) {
        return 0;
    }
    return 1;
}

double decision(double safeControl, int seq)
/***SafeFlow Annotation assume(core(noncoreCtrl, 0, sizeof(SHMCmd))) /***/
{
    if (noncoreCtrl->ready == 0) {
        return safeControl;
    }
    if (noncoreCtrl->seq != seq) {
        /* Stale proposal: the non-core controller missed a period. */
        return safeControl;
    }
    if (checkEnvelope()) {
        return noncoreCtrl->control;
    }
    return safeControl;
}

void sendControl(double u)
{
    writeDA(0, u);
}
