/*
 * init.c — shared-memory initialization for the IP core controller.
 *
 * The initializing function is annotated shminit: the untyped SysV
 * attachment forces the pointer casts and pointer arithmetic that
 * SafeFlow's restrictions otherwise forbid, and its post-conditions
 * declare the four shared-memory variables, their sizes, and their
 * non-core writability. InitCheck verifies the layout at bootstrap.
 */
#include "shared.h"

SHMData   *feedback;
SHMCmd    *noncoreCtrl;
SHMStatus *status;
SHMPids   *pids;

void initComm()
/***SafeFlow Annotation shminit /***/
{
    int shmid;
    long total;
    void *base;

    total = sizeof(SHMData) + sizeof(SHMCmd) + sizeof(SHMStatus) + sizeof(SHMPids);
    shmid = shmget(SHMKEY, total, 0666);
    if (shmid < 0) {
        perror("shmget");
        exit(1);
    }
    base = shmat(shmid, 0, 0);
    feedback    = (SHMData *) base;
    noncoreCtrl = (SHMCmd *) (feedback + 1);
    status      = (SHMStatus *) (noncoreCtrl + 1);
    pids        = (SHMPids *) (status + 1);
    if (InitCheck(base, total) == 0) {
        fprintf(0, "ip: shared memory layout invalid\n");
        exit(1);
    }
    /***SafeFlow Annotation assume(shmvar(feedback, sizeof(SHMData))) /***/
    /***SafeFlow Annotation assume(shmvar(noncoreCtrl, sizeof(SHMCmd))) /***/
    /***SafeFlow Annotation assume(shmvar(status, sizeof(SHMStatus))) /***/
    /***SafeFlow Annotation assume(shmvar(pids, sizeof(SHMPids))) /***/
    /***SafeFlow Annotation assume(noncore(feedback)) /***/
    /***SafeFlow Annotation assume(noncore(noncoreCtrl)) /***/
    /***SafeFlow Annotation assume(noncore(status)) /***/
    /***SafeFlow Annotation assume(noncore(pids)) /***/
}

void registerCorePid()
{
    pids->corePid = getpid();
}
