/*
 * shared.h — shared-memory layout and constants of the inverted-pendulum
 * (IP) Simplex controller. The core component publishes sensor feedback
 * for the non-core (complex) controller and reads back its proposed
 * control output, status, and process registry through four shared-memory
 * variables laid out back to back in one SysV segment.
 */
#ifndef IP_SHARED_H
#define IP_SHARED_H

#define SHMKEY   4660
#define PERIOD   0.01
#define UMAX     5.0
#define MAXITER  6000
#define ENVELOPE 0.35
#define SIGTERM  15
#define SIGKILL  9

/* Plant feedback published by the core controller each period. */
typedef struct {
    double angle;     /* pendulum angle from upright (rad)  */
    double track;     /* cart position on the track (m)     */
    double angleVel;  /* estimated angular velocity (rad/s) */
    double trackVel;  /* estimated cart velocity (m/s)      */
    int    seq;       /* publication sequence number        */
    int    pad;
} SHMData;

/* Control command published by the non-core complex controller. */
typedef struct {
    double control;    /* proposed actuator output (V)       */
    double timestamp;  /* non-core controller's wallclock    */
    int    ready;      /* nonzero once a proposal is present */
    int    seq;        /* feedback sequence it was based on  */
} SHMCmd;

/* Miscellaneous status exported by the non-core subsystem. */
typedef struct {
    int mode;         /* non-core controller mode            */
    int heartbeat;    /* incremented by the non-core period  */
    int iteration;    /* non-core iteration counter          */
    int shutdownReq;  /* operator console shutdown request   */
    int verbose;      /* console verbosity                   */
    int pad;
} SHMStatus;

/* Process registry for supervision. */
typedef struct {
    int corePid;
    int noncorePid;
    int watchdogPid;
    int pad;
} SHMPids;

/* Shared-memory variables (defined in init.c). */
extern SHMData   *feedback;
extern SHMCmd    *noncoreCtrl;
extern SHMStatus *status;
extern SHMPids   *pids;

/* init.c */
void initComm();
void registerCorePid();

/* estimator.c */
int    selfTest();
void   calibrate();
double debouncedAngle();
double complementaryFilter(double rawAngle, double dt);
double rampLimit(double u);
int    estimatorSpikes();
int    isCalibrated();

/* control.c */
void   senseState();
void   publishFeedback(int seq);
double computeSafeControl();
double decision(double safeControl, int seq);
void   sendControl(double u);

#endif /* IP_SHARED_H */
