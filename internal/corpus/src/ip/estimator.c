/*
 * estimator.c — core-local sensor conditioning for the IP controller:
 * startup self-test, per-channel calibration, a complementary filter for
 * the angle estimate, spike rejection, and an actuator ramp limiter.
 *
 * Everything in this file is core-only computation on values the core
 * itself produced (hardware reads and its own state); it touches no
 * shared memory and therefore contributes nothing to the SafeFlow
 * findings — which is itself part of what the analysis verifies.
 */
#include "shared.h"

#define CAL_SAMPLES   32
#define SPIKE_LIMIT   0.35
#define RAMP_LIMIT    0.8
#define FILTER_GAIN   0.98
#define TEST_CHANNELS 2

static double angleBias;
static double trackBias;
static double filtAngle;
static double filtAngleVel;
static double lastOutput;
static double lastRawAngle;
static int    spikeCount;
static int    calibrated;

/* selfTest exercises both sensor channels and the actuator zero point
 * before the control loop starts; a failure terminates the core before it
 * can command the plant. */
int selfTest()
{
    int ch;
    double v;

    for (ch = 0; ch < TEST_CHANNELS; ch++) {
        v = readSensor(ch);
        if (v > 10.0) {
            printf("ip: self-test: channel %d out of range (%f)\n", ch, v);
            return 0;
        }
        if (v < -10.0) {
            printf("ip: self-test: channel %d out of range (%f)\n", ch, v);
            return 0;
        }
    }
    writeDA(0, 0.0);
    return 1;
}

/* calibrate estimates static sensor biases from a quiet plant. */
void calibrate()
{
    int i;
    double sumA;
    double sumT;

    sumA = 0.0;
    sumT = 0.0;
    for (i = 0; i < CAL_SAMPLES; i++) {
        sumA += readSensor(0);
        sumT += readSensor(1);
        wait(0.002);
    }
    angleBias = sumA / CAL_SAMPLES;
    trackBias = sumT / CAL_SAMPLES;
    calibrated = 1;
    printf("ip: calibrated: angle bias %f, track bias %f\n", angleBias, trackBias);
}

/* debounced reads one channel with single-sample spike rejection: a jump
 * larger than SPIKE_LIMIT against the previous raw sample is discarded in
 * favor of the previous value (hardware glitch filtering). */
double debouncedAngle()
{
    double raw;
    double delta;

    raw = readSensor(0) - angleBias;
    delta = raw - lastRawAngle;
    if (delta > SPIKE_LIMIT) {
        spikeCount = spikeCount + 1;
        raw = lastRawAngle;
    }
    if (delta < -SPIKE_LIMIT) {
        spikeCount = spikeCount + 1;
        raw = lastRawAngle;
    }
    lastRawAngle = raw;
    return raw;
}

/* complementaryFilter fuses the debounced angle with the integrated rate
 * estimate, the classic embedded attitude filter. */
double complementaryFilter(double rawAngle, double dt)
{
    double predicted;

    predicted = filtAngle + filtAngleVel * dt;
    filtAngle = FILTER_GAIN * predicted + (1.0 - FILTER_GAIN) * rawAngle;
    filtAngleVel = (rawAngle - predicted) / dt * (1.0 - FILTER_GAIN) + filtAngleVel;
    return filtAngle;
}

/* rampLimit bounds the actuator slew rate between consecutive periods so
 * a controller switch cannot slam the trolley. */
double rampLimit(double u)
{
    double delta;

    delta = u - lastOutput;
    if (delta > RAMP_LIMIT) {
        u = lastOutput + RAMP_LIMIT;
    }
    if (delta < -RAMP_LIMIT) {
        u = lastOutput - RAMP_LIMIT;
    }
    lastOutput = u;
    return u;
}

/* estimatorStats exposes diagnostics for the operator log. */
int estimatorSpikes()
{
    return spikeCount;
}

int isCalibrated()
{
    return calibrated;
}
