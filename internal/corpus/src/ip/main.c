/*
 * main.c — the IP core controller's periodic loop, operator telemetry,
 * and shutdown path.
 *
 * This file carries the system's seeded defects, the ones SafeFlow's
 * evaluation found in the original lab code:
 *
 *   - shutdownNonCore() kills the process id read from the unmonitored
 *     pids shared-memory variable: the non-core subsystem can overwrite
 *     it with the core's own pid and make the core kill itself (the
 *     kill-pid error dependency reported for every system in Table 1);
 *   - the main loop gates the decision module on an unmonitored read of
 *     noncoreCtrl->ready, and checkShutdownRequest() gates a kill on an
 *     unmonitored status flag — the two control-dependence reports the
 *     paper classifies as false positives after manual inspection.
 */
#include "shared.h"

static void logTelemetry(int iter)
{
    int hb;
    int ncIter;
    int mode;
    double ts;

    hb = status->heartbeat;
    ncIter = status->iteration;
    mode = status->mode;
    ts = noncoreCtrl->timestamp;
    printf("ip[%d]: hb=%d nc_iter=%d mode=%d ts=%f spikes=%d\n",
           iter, hb, ncIter, mode, ts, estimatorSpikes());
}

static void checkShutdownRequest()
{
    int req;

    req = status->shutdownReq;
    if (req != 0) {
        printf("ip: shutdown requested from operator console\n");
        kill(getpid(), SIGTERM);
    }
}

static void shutdownNonCore()
{
    int np;

    np = pids->noncorePid;
    if (np > 0) {
        kill(np, SIGKILL);
    }
}

int main()
{
    int iter;
    int ready;
    double safeControl;
    double output;

    initComm();
    registerCorePid();
    if (selfTest() == 0) {
        fprintf(0, "ip: self-test failed, refusing to start\n");
        exit(1);
    }
    calibrate();
    senseState();

    for (iter = 0; iter < MAXITER; iter++) {
        Lock(0);
        senseState();
        publishFeedback(iter);
        Unlock(0);

        safeControl = computeSafeControl();
        wait(PERIOD);

        Lock(0);
        ready = noncoreCtrl->ready;
        if (ready != 0) {
            output = decision(safeControl, iter);
        } else {
            output = safeControl;
        }
        Unlock(0);

        /***SafeFlow Annotation assert(safe(output)) /***/
        sendControl(rampLimit(output));

        if ((iter % 50) == 0) {
            logTelemetry(iter);
        }
        checkShutdownRequest();
    }

    shutdownNonCore();
    return 0;
}
