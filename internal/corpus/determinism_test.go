package corpus

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sort"
	"testing"
)

// genFingerprint digests one generated system: sorted file names and
// contents. The fuzzing campaign's corpus store keys on exactly this
// byte content, so any drift is a cache-key break.
func genFingerprint(g Generated) string {
	h := sha256.New()
	names := make([]string, 0, len(g.Sources))
	for n := range g.Sources {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "%s\x00%s\x00", n, g.Sources[n])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// pinnedGenHash is the fingerprint of Generate(1, GenConfig{}),
// recorded when the campaign corpus store shipped. It pins the
// generator's output across processes and machines: if an edit to the
// generator changes it, every persisted corpus entry and crasher
// derived from generated systems is invalidated — bump deliberately
// and expect on-disk campaign corpora to regrow.
const pinnedGenHash = "35955a7803b6645239a989af861a9e4a76ab578c3422d0bee2c203f7dc90c50e"

// TestGenerateDeterministic checks byte-identical generation across
// repeated calls, across GOMAXPROCS settings, and against the pinned
// cross-process fingerprint.
func TestGenerateDeterministic(t *testing.T) {
	cfgs := []GenConfig{{}, {Regions: 1, Monitors: 1, Stages: 1, Depth: 1}, {Regions: 3, Monitors: 4, Stages: 5, Depth: 3}}
	for seed := int64(1); seed <= 4; seed++ {
		for _, cfg := range cfgs {
			want := genFingerprint(Generate(seed, cfg))
			for run := 0; run < 3; run++ {
				if got := genFingerprint(Generate(seed, cfg)); got != want {
					t.Fatalf("seed %d cfg %+v run %d: fingerprint drifted", seed, cfg, run)
				}
			}
			prev := runtime.GOMAXPROCS(1)
			got := genFingerprint(Generate(seed, cfg))
			runtime.GOMAXPROCS(prev)
			if got != want {
				t.Errorf("seed %d cfg %+v: fingerprint differs under GOMAXPROCS=1", seed, cfg)
			}
		}
	}
	if genFingerprint(Generate(1, GenConfig{})) == genFingerprint(Generate(2, GenConfig{})) {
		t.Error("distinct seeds produced identical systems")
	}
	if got := genFingerprint(Generate(1, GenConfig{})); got != pinnedGenHash {
		t.Errorf("Generate(1, default) fingerprint drifted from the pinned value:\n got %s\nwant %s\n"+
			"(a deliberate generator change must bump pinnedGenHash; persisted campaign corpora will regrow)",
			got, pinnedGenHash)
	}
}

// TestGenConfigNormalize pins the validated-defaults contract: zero
// and negative counts become the documented defaults, oversized
// shapes clamp, and Generate treats a degenerate config exactly like
// its normalized form.
func TestGenConfigNormalize(t *testing.T) {
	def := GenConfig{Regions: 2, Monitors: 2, Stages: 3, Depth: 2}
	for _, bad := range []GenConfig{{}, {Regions: -3, Monitors: -1, Stages: 0, Depth: -9}} {
		if got := bad.Normalize(); got != def {
			t.Errorf("Normalize(%+v) = %+v, want %+v", bad, got, def)
		}
	}
	huge := GenConfig{Regions: 1 << 20, Monitors: 9999, Stages: 70, Depth: 40}
	want := GenConfig{Regions: 64, Monitors: 64, Stages: 64, Depth: 6}
	if got := huge.Normalize(); got != want {
		t.Errorf("Normalize(%+v) = %+v, want %+v", huge, got, want)
	}
	// Degenerate and normalized configs generate identical systems.
	a := genFingerprint(Generate(7, GenConfig{Regions: -5, Depth: -1}))
	b := genFingerprint(Generate(7, GenConfig{Regions: -5, Depth: -1}.Normalize()))
	if a != b {
		t.Error("Generate differs between a degenerate config and its normalized form")
	}
	// And the normalized output is a valid, analyzable system (the
	// validated-defaults guarantee, end to end).
	g := Generate(7, GenConfig{Regions: -5, Depth: -1})
	for name, text := range g.Sources {
		if len(text) == 0 {
			t.Errorf("generated file %s is empty", name)
		}
	}
}
