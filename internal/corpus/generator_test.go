package corpus

import (
	"testing"

	"safeflow/internal/core"
	"safeflow/internal/cpp"
)

// Determinism of Generate (repeated calls, GOMAXPROCS independence,
// and the pinned cross-process fingerprint) is covered by
// TestGenerateDeterministic in determinism_test.go.

func TestGeneratedSystemsAnalyze(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := Generate(seed, GenConfig{
			Regions:  1 + int(seed)%4,
			Monitors: 1 + int(seed)%3,
			Stages:   2 + int(seed)%4,
		})
		rep, err := core.AnalyzeSources(g.Name, cpp.MapSource(g.Sources), g.CFiles, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: generated system does not analyze: %v", seed, err)
		}
		if len(rep.Internal) > 0 {
			t.Fatalf("seed %d: internal errors: %v", seed, rep.Internal)
		}
		if len(rep.AnnotationErrors) > 0 {
			t.Fatalf("seed %d: annotation errors: %v", seed, rep.AnnotationErrors)
		}
		// Internal consistency: every error dependency's sources must be
		// among the reported warnings.
		warnSet := map[string]bool{}
		for _, w := range rep.Warnings {
			warnSet[w.Pos.String()] = true
		}
		for _, e := range append(rep.ErrorsData, rep.ErrorsControlOnly...) {
			for _, s := range e.SortedSources() {
				if !warnSet[s.Pos.String()] {
					t.Errorf("seed %d: error cites unreported source %s", seed, s)
				}
			}
		}
	}
}
