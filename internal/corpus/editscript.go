// Edit-script generation for incremental-analysis testing: seeded,
// deterministic single-function edits over generated systems. Each edit
// is expressed as a one-occurrence string replacement in one file, so a
// script can be replayed against a source map (or shipped to a session
// as a changed-file batch) and always lands on the function it targeted.

package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// EditKind classifies one generated edit.
type EditKind int

const (
	// EditNoop appends a comment after the last function of the file:
	// the preprocessed text changes (the frontend must recompile the
	// unit) but no function body moves, so an incremental analysis
	// should invalidate nothing.
	EditNoop EditKind = iota
	// EditBodyTweak changes one arithmetic constant inside a single
	// monitor body — a local, semantics-visible edit.
	EditBodyTweak
	// EditAnnotationFlip removes (or restores) one monitor's
	// assume(core(...)) annotation, turning the monitored access
	// unmonitored and back.
	EditAnnotationFlip
	// EditRewrite replaces one stage's body with freshly generated
	// statements under the same signature; the set of callees may
	// change, so the callgraph does too.
	EditRewrite
)

func (k EditKind) String() string {
	switch k {
	case EditNoop:
		return "noop"
	case EditBodyTweak:
		return "body-tweak"
	case EditAnnotationFlip:
		return "annotation-flip"
	case EditRewrite:
		return "rewrite"
	default:
		return fmt.Sprintf("EditKind(%d)", int(k))
	}
}

// Edit is one source edit: replace the first occurrence of Old in File
// with New. Old is anchored on the unique function header emitted by the
// generator, so the replacement cannot land on a different function.
type Edit struct {
	Kind EditKind
	File string
	Desc string
	Old  string
	New  string
}

// Apply returns the edited contents of e.File (the map is not mutated).
// ok is false when the anchor no longer exists — a script replayed
// against sources it was not generated for.
func (e Edit) Apply(sources map[string]string) (string, bool) {
	text, found := sources[e.File]
	if !found || !strings.Contains(text, e.Old) {
		return "", false
	}
	return strings.Replace(text, e.Old, e.New, 1), true
}

// EditScript is a sequence of edits generated against — and meant to be
// applied in order to — one system's sources.
type EditScript []Edit

// ApplyAll applies the script in order to a copy of sources and returns
// the edited tree; ok is false if any edit fails to anchor.
func (s EditScript) ApplyAll(sources map[string]string) (map[string]string, bool) {
	cur := make(map[string]string, len(sources))
	for k, v := range sources {
		cur[k] = v
	}
	for _, e := range s {
		text, ok := e.Apply(cur)
		if !ok {
			return nil, false
		}
		cur[e.File] = text
	}
	return cur, true
}

// GenerateEdits produces a deterministic n-edit script for a generated
// system: identical (g, seed, n) inputs yield identical scripts. Each
// edit is generated against the sources as left by the previous one, so
// the script applies cleanly in sequence.
func GenerateEdits(g Generated, seed int64, n int) EditScript {
	r := rand.New(rand.NewSource(seed))
	cfg := GenConfig{}.Normalize() // the generator's shape defaults
	// Recover the real shape from the header (counts are derivable from
	// the declared prototypes, which Generate always emits).
	cfg.Monitors = strings.Count(g.Sources["gen.h"], "double monitor")
	cfg.Stages = strings.Count(g.Sources["gen.h"], "double stage")
	cfg.Regions = strings.Count(g.Sources["gen.h"], "extern GenRegion")

	cur := make(map[string]string, len(g.Sources))
	for k, v := range g.Sources {
		cur[k] = v
	}
	var script EditScript
	for i := 0; i < n; i++ {
		var e Edit
		switch EditKind(r.Intn(4)) {
		case EditNoop:
			// Anchored on the whole current file so repeated noops stack.
			text := cur["monitors.c"]
			e = Edit{Kind: EditNoop, File: "monitors.c",
				Desc: fmt.Sprintf("touch comment %d", i),
				Old:  text, New: text + fmt.Sprintf("/* touch %d */\n", i)}
		case EditBodyTweak:
			j := r.Intn(cfg.Monitors)
			anchor := fmt.Sprintf("double monitor%d(double x)", j)
			chunk := functionChunk(cur["monitors.c"], anchor)
			if chunk == "" {
				continue
			}
			tweaked := strings.Replace(chunk, "return t + x;",
				fmt.Sprintf("return t + x + %d.0;", r.Intn(5)), 1)
			if tweaked == chunk {
				continue
			}
			e = Edit{Kind: EditBodyTweak, File: "monitors.c",
				Desc: fmt.Sprintf("tweak monitor%d", j), Old: chunk, New: tweaked}
		case EditAnnotationFlip:
			j := r.Intn(cfg.Monitors)
			anchor := fmt.Sprintf("double monitor%d(double x)", j)
			chunk := functionChunk(cur["monitors.c"], anchor)
			if chunk == "" {
				continue
			}
			k := j % cfg.Regions
			annot := fmt.Sprintf("/***SafeFlow Annotation assume(core(reg%d, 0, sizeof(GenRegion))) /***/\n", k)
			var flipped string
			if strings.Contains(chunk, annot) {
				flipped = strings.Replace(chunk, annot, "", 1)
			} else {
				flipped = strings.Replace(chunk, anchor+"\n", anchor+"\n"+annot, 1)
			}
			if flipped == chunk {
				continue
			}
			e = Edit{Kind: EditAnnotationFlip, File: "monitors.c",
				Desc: fmt.Sprintf("flip core annotation on monitor%d", j), Old: chunk, New: flipped}
		case EditRewrite:
			j := r.Intn(cfg.Stages)
			anchor := fmt.Sprintf("double stage%d(double x)", j)
			chunk := functionChunk(cur["stages.c"], anchor)
			if chunk == "" {
				continue
			}
			sg := &sysGen{r: rand.New(rand.NewSource(seed ^ int64(i+1)<<8)), cfg: cfg}
			body := indent(sg.stmts(cfg.Depth, j, []string{"t", "s", "x"}), "    ")
			rewritten := fmt.Sprintf(
				"%s\n{\n    double t;\n    double s;\n\n    t = x;\n    s = 0.0;\n%s    return t + s;\n}\n",
				anchor, body)
			if rewritten == chunk {
				continue
			}
			e = Edit{Kind: EditRewrite, File: "stages.c",
				Desc: fmt.Sprintf("rewrite stage%d", j), Old: chunk, New: rewritten}
		}
		if e.Old == "" {
			continue
		}
		text, ok := e.Apply(cur)
		if !ok {
			continue
		}
		cur[e.File] = text
		script = append(script, e)
	}
	return script
}

// functionChunk extracts the text of one generated function: from its
// (unique) header line through the first unindented closing brace.
func functionChunk(text, header string) string {
	start := strings.Index(text, header)
	if start < 0 {
		return ""
	}
	end := strings.Index(text[start:], "\n}\n")
	if end < 0 {
		return ""
	}
	return text[start : start+end+len("\n}\n")]
}
