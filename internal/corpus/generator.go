// Seeded pseudo-random system generator for stress and cancellation
// tests: Generate emits a complete multi-file control system in
// SafeFlow's C subset — N shared-memory regions laid out back to back in
// one segment (the corpus init.c idiom), a set of monitoring functions
// with assume(core(...)) facts, a chain of helper stages wired through
// random statement bodies, and a main loop with an assert(safe(...))
// sink and a seeded kill() defect. The same (seed, config) always yields
// byte-identical sources, so stress runs are reproducible.
//
// Every generated program is valid by construction: the statement
// grammar is the one the robustness fuzz tests established for the
// subset, and call chains are acyclic (a stage only calls lower stages
// and monitors).

package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenConfig bounds the generated system's shape. Zero and negative
// fields take the defaults noted on each; values beyond the caps are
// clamped. Generate always runs on the Normalize'd form, so degenerate
// configurations (negative counts, absurd sizes) cannot produce
// malformed systems or runaway output — they produce the documented
// defaults.
type GenConfig struct {
	Regions  int // shared-memory regions (default 2, min 1, max 64)
	Monitors int // monitored accessor functions (default 2, min 1, max 64)
	Stages   int // chained helper stages (default 3, min 1, max 64)
	Depth    int // statement nesting depth (default 2, min 1, max 6)
}

// Shape caps: a generated system is a test input, not a stress corpus;
// anything past these bounds would only slow campaigns down without
// reaching new analyzer behavior.
const (
	maxGenCount = 64 // Regions, Monitors, Stages
	maxGenDepth = 6
)

// Normalize returns the validated configuration Generate actually
// runs: non-positive fields replaced by their defaults, oversized
// fields clamped to the caps. Corpus stores that key on (seed, config)
// should persist the normalized form, since two configurations that
// normalize equal generate byte-identical systems.
func (c GenConfig) Normalize() GenConfig {
	clamp := func(v, def, max int) int {
		switch {
		case v <= 0:
			return def
		case v > max:
			return max
		}
		return v
	}
	c.Regions = clamp(c.Regions, 2, maxGenCount)
	c.Monitors = clamp(c.Monitors, 2, maxGenCount)
	c.Stages = clamp(c.Stages, 3, maxGenCount)
	c.Depth = clamp(c.Depth, 2, maxGenDepth)
	return c
}

// Generated is one generator output, in the form the batch API takes.
type Generated struct {
	Name    string
	Sources map[string]string
	CFiles  []string
}

// sysGen carries the rng and shape of one generated system.
type sysGen struct {
	r   *rand.Rand
	cfg GenConfig
}

// Generate emits the system for one seed. Identical (seed, cfg) inputs
// produce identical sources.
func Generate(seed int64, cfg GenConfig) Generated {
	g := &sysGen{r: rand.New(rand.NewSource(seed)), cfg: cfg.Normalize()}
	return Generated{
		Name: fmt.Sprintf("gen-%d", seed),
		Sources: map[string]string{
			"gen.h":      g.header(),
			"init.c":     g.initFile(),
			"monitors.c": g.monitorsFile(),
			"stages.c":   g.stagesFile(),
			"main.c":     g.mainFile(),
		},
		CFiles: []string{"init.c", "monitors.c", "stages.c", "main.c"},
	}
}

func (g *sysGen) header() string {
	var sb strings.Builder
	sb.WriteString("#ifndef GEN_H\n#define GEN_H\n\n")
	sb.WriteString("typedef struct { double a; double b; int flag; int pad; } GenRegion;\n\n")
	for k := 0; k < g.cfg.Regions; k++ {
		fmt.Fprintf(&sb, "extern GenRegion *reg%d;\n", k)
	}
	sb.WriteString("\nvoid initComm();\n")
	for j := 0; j < g.cfg.Monitors; j++ {
		fmt.Fprintf(&sb, "double monitor%d(double x);\n", j)
	}
	for j := 0; j < g.cfg.Stages; j++ {
		fmt.Fprintf(&sb, "double stage%d(double x);\n", j)
	}
	sb.WriteString("\n#endif\n")
	return sb.String()
}

func (g *sysGen) initFile() string {
	var sb strings.Builder
	sb.WriteString("#include \"gen.h\"\n\n")
	for k := 0; k < g.cfg.Regions; k++ {
		fmt.Fprintf(&sb, "GenRegion *reg%d;\n", k)
	}
	sb.WriteString("\nvoid initComm()\n/***SafeFlow Annotation shminit /***/\n{\n")
	sb.WriteString("    long total;\n    void *base;\n\n")
	fmt.Fprintf(&sb, "    total = %d * sizeof(GenRegion);\n", g.cfg.Regions)
	sb.WriteString("    base = shmat(shmget(9, total, 0), 0, 0);\n")
	sb.WriteString("    reg0 = (GenRegion *) base;\n")
	for k := 1; k < g.cfg.Regions; k++ {
		fmt.Fprintf(&sb, "    reg%d = (GenRegion *) (reg%d + 1);\n", k, k-1)
	}
	sb.WriteString("    InitCheck(base, total);\n")
	for k := 0; k < g.cfg.Regions; k++ {
		fmt.Fprintf(&sb, "    /***SafeFlow Annotation assume(shmvar(reg%d, sizeof(GenRegion))) /***/\n", k)
	}
	for k := 0; k < g.cfg.Regions; k++ {
		fmt.Fprintf(&sb, "    /***SafeFlow Annotation assume(noncore(reg%d)) /***/\n", k)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// monitorsFile emits the monitored accessors: monitor j covers region
// j mod Regions with a core assumption and clamps the value it reads.
func (g *sysGen) monitorsFile() string {
	var sb strings.Builder
	sb.WriteString("#include \"gen.h\"\n")
	for j := 0; j < g.cfg.Monitors; j++ {
		k := j % g.cfg.Regions
		field := g.pick("a", "b")
		bound := fmt.Sprintf("%d.%d", 1+g.r.Intn(8), g.r.Intn(10))
		fmt.Fprintf(&sb, `
double monitor%d(double x)
/***SafeFlow Annotation assume(core(reg%d, 0, sizeof(GenRegion))) /***/
{
    double t;

    t = reg%d->%s;
    if (t > %s) {
        t = %s;
    }
    if (t < -%s) {
        t = -%s;
    }
    return t + x;
}
`, j, k, k, field, bound, bound, bound, bound)
	}
	return sb.String()
}

// stagesFile emits the helper chain: stage j's random body may call
// monitors and strictly lower stages, so the callgraph is a DAG with
// chains up to Stages deep.
func (g *sysGen) stagesFile() string {
	var sb strings.Builder
	sb.WriteString("#include \"gen.h\"\n")
	for j := 0; j < g.cfg.Stages; j++ {
		fmt.Fprintf(&sb, `
double stage%d(double x)
{
    double t;
    double s;

    t = x;
    s = 0.0;
%s    return t + s;
}
`, j, indent(g.stmts(g.cfg.Depth, j, []string{"t", "s", "x"}), "    "))
	}
	return sb.String()
}

func (g *sysGen) mainFile() string {
	var sb strings.Builder
	sb.WriteString("#include \"gen.h\"\n\n")
	sb.WriteString("int main()\n{\n")
	sb.WriteString("    double u;\n    double v;\n    int iter;\n\n")
	sb.WriteString("    initComm();\n    u = 0.0;\n    v = 1.0;\n")
	fmt.Fprintf(&sb, "    for (iter = 0; iter < %d; iter++) {\n", 2+g.r.Intn(8))
	fmt.Fprintf(&sb, "        u = stage%d(u);\n", g.cfg.Stages-1)
	sb.WriteString(indent(g.stmts(g.cfg.Depth, g.cfg.Stages, []string{"u", "v"}), "        "))
	sb.WriteString("    }\n")
	// A control dependence on an unmonitored flag — the paper's
	// false-positive class — on about half the systems.
	if g.r.Intn(2) == 0 {
		fmt.Fprintf(&sb, "    if (reg%d->flag != 0) {\n        v = monitor0(v);\n    }\n", g.r.Intn(g.cfg.Regions))
	}
	sb.WriteString("    /***SafeFlow Annotation assert(safe(u)) /***/\n")
	sb.WriteString("    writeDA(0, u);\n")
	// The seeded kill defect every corpus system carries: the pid comes
	// from an unmonitored non-core read.
	if g.r.Intn(2) == 0 {
		fmt.Fprintf(&sb, "    kill(reg%d->flag, 15);\n", g.r.Intn(g.cfg.Regions))
	}
	sb.WriteString("    return 0;\n}\n")
	return sb.String()
}

// ---------------------------------------------------------------------------
// Statement / expression grammar (the robustness-fuzz subset)

func (g *sysGen) pick(options ...string) string { return options[g.r.Intn(len(options))] }

// expr builds a random double expression over vars, region reads, and
// calls to monitors and to stages below maxStage.
func (g *sysGen) expr(depth, maxStage int, vars []string) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d.%d", g.r.Intn(10), g.r.Intn(10))
		case 1:
			return vars[g.r.Intn(len(vars))]
		case 2:
			return fmt.Sprintf("reg%d->%s", g.r.Intn(g.cfg.Regions), g.pick("a", "b"))
		default:
			return fmt.Sprintf("monitor%d(%s)", g.r.Intn(g.cfg.Monitors), vars[g.r.Intn(len(vars))])
		}
	}
	if maxStage > 0 && g.r.Intn(4) == 0 {
		return fmt.Sprintf("stage%d(%s)", g.r.Intn(maxStage), g.expr(depth-1, maxStage, vars))
	}
	op := g.pick("+", "-", "*")
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1, maxStage, vars), op, g.expr(depth-1, maxStage, vars))
}

func (g *sysGen) cond(maxStage int, vars []string) string {
	return fmt.Sprintf("%s %s %s",
		g.expr(1, maxStage, vars), g.pick("<", ">", "<=", ">=", "==", "!="), g.expr(1, maxStage, vars))
}

func (g *sysGen) stmts(depth, maxStage int, vars []string) string {
	var sb strings.Builder
	n := 1 + g.r.Intn(3)
	for i := 0; i < n; i++ {
		v := vars[g.r.Intn(len(vars))]
		switch g.r.Intn(5) {
		case 0:
			fmt.Fprintf(&sb, "%s = %s;\n", v, g.expr(depth, maxStage, vars))
		case 1:
			if depth > 0 {
				fmt.Fprintf(&sb, "if (%s) {\n%s} else {\n%s}\n",
					g.cond(maxStage, vars),
					indent(g.stmts(depth-1, maxStage, vars), "    "),
					indent(g.stmts(depth-1, maxStage, vars), "    "))
			}
		case 2:
			if depth > 0 {
				fmt.Fprintf(&sb, "{ int qi; for (qi = 0; qi < %d; qi++) { %s = %s + 1.0; } }\n",
					1+g.r.Intn(5), v, v)
			}
		case 3:
			fmt.Fprintf(&sb, "printf(\"v=%%f\\n\", %s);\n", g.expr(1, maxStage, vars))
		default:
			fmt.Fprintf(&sb, "%s = monitor%d(%s);\n", v, g.r.Intn(g.cfg.Monitors), g.expr(1, maxStage, vars))
		}
	}
	return sb.String()
}

func indent(s, prefix string) string {
	if s == "" {
		return s
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = prefix + l
		}
	}
	return strings.Join(lines, "\n") + "\n"
}
