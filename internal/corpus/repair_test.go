package corpus

import (
	"strings"
	"testing"

	"safeflow/internal/core"
	"safeflow/internal/cpp"
)

// patch applies ordered textual replacements to one file of a system's
// source tree, failing if any pattern is missing (so repairs stay in sync
// with the corpus).
func patch(t *testing.T, source cpp.Source, file string, replacements [][2]string) cpp.MapSource {
	t.Helper()
	src, ok := source.(cpp.MapSource)
	if !ok {
		t.Fatalf("corpus sources are not a MapSource")
	}
	out := cpp.MapSource{}
	for k, v := range src {
		out[k] = v
	}
	text, present := out[file]
	if !present {
		t.Fatalf("no file %q", file)
	}
	for _, r := range replacements {
		if !strings.Contains(text, r[0]) {
			t.Fatalf("pattern not found in %s: %q", file, r[0])
		}
		text = strings.Replace(text, r[0], r[1], 1)
	}
	out[file] = text
	return out
}

// TestIPRepairedIsClean repairs every defect SafeFlow found in the IP
// system — the closing step of the paper's workflow — and verifies the
// repaired system analyzes clean:
//
//   - the kill target comes from a core-recorded pid instead of the
//     unmonitored registry;
//   - telemetry reads go through a monitoring function;
//   - the redundant unmonitored ready pre-check is removed (decision
//     already checks it under its core assumption);
//   - the shutdown request is read through a monitoring function.
func TestIPRepairedIsClean(t *testing.T) {
	sys := IP()
	src, err := sys.Sources()
	if err != nil {
		t.Fatal(err)
	}

	repaired := patch(t, src, "main.c", [][2]string{
		// Record the non-core pid on the core side at spawn time (modeled
		// by a core global) and kill that instead of the shm registry.
		{
			"#include \"shared.h\"",
			"#include \"shared.h\"\n\nstatic int recordedNonCorePid;\n",
		},
		// Telemetry becomes a monitoring function for status+noncoreCtrl.
		{
			"static void logTelemetry(int iter)\n{",
			"static void logTelemetry(int iter)\n" +
				"/***SafeFlow Annotation assume(core(status, 0, sizeof(SHMStatus))) /***/\n" +
				"/***SafeFlow Annotation assume(core(noncoreCtrl, 0, sizeof(SHMCmd))) /***/\n{",
		},
		{
			"static void checkShutdownRequest()\n{",
			"static void checkShutdownRequest()\n" +
				"/***SafeFlow Annotation assume(core(status, 0, sizeof(SHMStatus))) /***/\n{",
		},
		{
			"    np = pids->noncorePid;\n    if (np > 0) {\n        kill(np, SIGKILL);\n    }",
			"    np = recordedNonCorePid;\n    if (np > 0) {\n        kill(np, SIGKILL);\n    }",
		},
		// Drop the unmonitored ready pre-check; decision handles staleness.
		{
			"        ready = noncoreCtrl->ready;\n        if (ready != 0) {\n            output = decision(safeControl, iter);\n        } else {\n            output = safeControl;\n        }",
			"        output = decision(safeControl, iter);",
		},
		{
			"    int iter;\n    int ready;",
			"    int iter;",
		},
	})

	rep, err := core.AnalyzeSources("IP-repaired", repaired, sys.CFiles, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) != 0 {
		for _, w := range rep.Warnings {
			t.Logf("warning: %s", w)
		}
		t.Errorf("repaired IP still has %d warnings", len(rep.Warnings))
	}
	if rep.TotalErrors() != 0 {
		for _, e := range rep.ErrorsData {
			t.Logf("error: %s", e)
		}
		for _, e := range rep.ErrorsControlOnly {
			t.Logf("ctrl: %s", e)
		}
		t.Errorf("repaired IP still has %d error reports", rep.TotalErrors())
	}
	if len(rep.Violations) != 0 {
		t.Errorf("repaired IP has violations: %v", rep.Violations)
	}
}

// TestGenericSimplexFeedbackRepair fixes only the feedback-rigging defect
// (using the core-local state instead of re-reading shared memory) and
// checks precisely that error disappears while the others persist — the
// analysis distinguishes the defects.
func TestGenericSimplexFeedbackRepair(t *testing.T) {
	sys := GenericSimplex()
	src, err := sys.Sources()
	if err != nil {
		t.Fatal(err)
	}
	repaired := patch(t, src, "channels.c", [][2]string{
		{
			"    s0 = feedback->state0;\n    s1 = feedback->state1;",
			"    s0 = st.s0;\n    s1 = st.s1;",
		},
	})
	rep, err := core.AnalyzeSources("gsx-feedback-fixed", repaired, sys.CFiles, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The output error disappears; the kill-pid error remains.
	if len(rep.ErrorsData) != 1 {
		for _, e := range rep.ErrorsData {
			t.Logf("error: %s", e)
		}
		t.Errorf("data errors = %d, want 1 (kill-pid only)", len(rep.ErrorsData))
	}
	if len(rep.ErrorsData) == 1 && rep.ErrorsData[0].Var != "kill.pid" {
		t.Errorf("remaining error = %s, want kill.pid", rep.ErrorsData[0])
	}
	// Two fewer warnings (the re-reads are gone).
	if len(rep.Warnings) != sys.Expected.Warnings-2 {
		t.Errorf("warnings = %d, want %d", len(rep.Warnings), sys.Expected.Warnings-2)
	}
	// The control-dependence reports are untouched.
	if len(rep.ErrorsControlOnly) != sys.Expected.FalsePositives {
		t.Errorf("control reports = %d, want %d", len(rep.ErrorsControlOnly), sys.Expected.FalsePositives)
	}
}

// TestDoubleIPBlendRepair routes the blend factor through the tuning
// monitor, eliminating the propagation error.
func TestDoubleIPBlendRepair(t *testing.T) {
	sys := DoubleIP()
	src, err := sys.Sources()
	if err != nil {
		t.Fatal(err)
	}
	repaired := patch(t, src, "control.c", [][2]string{
		{
			"double blendFactor()\n{",
			"double blendFactor()\n/***SafeFlow Annotation assume(core(tuning, 0, sizeof(SHMTuning))) /***/\n{",
		},
	})
	rep, err := core.AnalyzeSources("dip-blend-fixed", repaired, sys.CFiles, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ErrorsData) != 1 {
		for _, e := range rep.ErrorsData {
			t.Logf("error: %s", e)
		}
		t.Errorf("data errors = %d, want 1 (kill-pid only)", len(rep.ErrorsData))
	}
	if len(rep.Warnings) != sys.Expected.Warnings-1 {
		t.Errorf("warnings = %d, want %d", len(rep.Warnings), sys.Expected.Warnings-1)
	}
}
