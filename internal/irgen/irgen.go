// Package irgen lowers the type-checked C program (csema.Program) into
// SafeFlow IR (package ir), mirroring the paper's use of LLVM bytecode:
// every local gets an alloca, expressions become loads/stores/GEPs, and a
// follow-up mem2reg pass (Promote, in this package) rewrites scalar
// allocas into SSA registers.
//
// SafeFlow annotations are lowered the way the paper describes its
// pre-processing pass: assert(safe(x)) becomes a call to the external
// dummy function __safeflow_assert_safe with the current value of x;
// assume facts (core/shmvar/noncore/shminit) are function-level and are
// attached to the ir.Function as *annot.FuncFacts.
package irgen

import (
	"fmt"

	"safeflow/internal/annot"
	"safeflow/internal/cast"
	"safeflow/internal/csema"
	"safeflow/internal/ctoken"
	"safeflow/internal/ctypes"
	"safeflow/internal/ir"
)

// AssertIntrinsic is the dummy function assert(safe(x)) lowers to.
const AssertIntrinsic = "__safeflow_assert_safe"

// Result is the outcome of lowering.
type Result struct {
	Module *ir.Module
	Prog   *csema.Program
	// SemaFunc maps IR functions back to their semantic declarations.
	SemaFunc map[*ir.Function]*csema.Function
	// AssertVars maps each assert intrinsic call to the annotated variable
	// name (for diagnostics).
	AssertVars map[*ir.Call]string
	// Errors holds annotation parsing errors (the program itself must have
	// type-checked before lowering).
	Errors []error
}

// Build lowers prog into a new module.
func Build(name string, prog *csema.Program) *Result {
	g := &generator{
		res: &Result{
			Module:     ir.NewModule(name),
			Prog:       prog,
			SemaFunc:   make(map[*ir.Function]*csema.Function),
			AssertVars: make(map[*ir.Call]string),
		},
		prog:    prog,
		allocas: make(map[csema.Object]ir.Value),
	}
	g.run()
	for _, f := range g.res.Module.Funcs {
		if !f.IsDecl {
			f.NumberValues()
		}
	}
	return g.res
}

type generator struct {
	res  *Result
	prog *csema.Program

	fn       *ir.Function
	cur      *ir.Block
	allocas  map[csema.Object]ir.Value // LocalVar/ParamVar -> alloca
	scopes   []map[string]ir.Value     // name -> address, for annotation lookup
	breaks   []*ir.Block
	conts    []*ir.Block
	labels   map[string]*ir.Block
	facts    *annot.FuncFacts
	declObjs map[*cast.VarDecl]csema.Object
}

func (g *generator) errf(pos ctoken.Pos, format string, args ...any) {
	g.res.Errors = append(g.res.Errors, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// SizeofType implements annot.TypeSizer against the program's types.
func (g *generator) SizeofType(name string) (int64, bool) {
	switch name {
	case "void":
		return 0, false
	case "char", "unsigned char":
		return 1, true
	case "short", "unsigned short":
		return 2, true
	case "int", "unsigned int", "unsigned", "float":
		return 4, true
	case "long", "unsigned long", "double":
		return 8, true
	}
	if t, ok := g.prog.Typedefs[name]; ok {
		return t.Size(), true
	}
	tag := name
	if len(name) > 7 && name[:7] == "struct " {
		tag = name[7:]
	}
	if s, ok := g.prog.Structs[tag]; ok {
		return s.Size(), true
	}
	return 0, false
}

func (g *generator) run() {
	m := g.res.Module

	// Globals.
	for _, gv := range g.prog.Globals {
		irg := &ir.Global{
			Name:    gv.Name,
			Elem:    gv.Type,
			HasInit: gv.Decl != nil && gv.Decl.Init != nil,
			Pos:     gv.Decl.NamePos,
		}
		m.AddGlobal(irg)
	}

	// Function shells (declarations and definitions) so calls resolve.
	for _, fn := range g.prog.Funcs {
		irf := &ir.Function{
			Name:   fn.Name,
			Sig:    fn.Type,
			IsDecl: !fn.IsDefined,
		}
		if fn.Decl != nil {
			irf.Pos = fn.Decl.NamePos
		}
		for i, p := range fn.Params {
			irf.Params = append(irf.Params, &ir.Param{Name: paramName(p.Name, i), Ty: p.Type, Index: i, Fn: irf})
		}
		m.AddFunc(irf)
		g.res.SemaFunc[irf] = fn
	}
	// The assert intrinsic.
	if m.FuncByName(AssertIntrinsic) == nil {
		m.AddFunc(&ir.Function{
			Name:   AssertIntrinsic,
			Sig:    &ctypes.Func{Result: ctypes.VoidType, Variadic: true},
			IsDecl: true,
		})
	}

	// Bodies.
	for _, fn := range g.prog.Funcs {
		if fn.IsDefined {
			g.lowerFunc(fn)
		}
	}
}

func paramName(name string, i int) string {
	if name == "" {
		return fmt.Sprintf("arg%d", i)
	}
	return name
}

// ---------------------------------------------------------------------------
// Function lowering

func (g *generator) lowerFunc(fn *csema.Function) {
	irf := g.res.Module.FuncByName(fn.Name)
	g.fn = irf
	g.cur = irf.NewBlock("entry")
	g.labels = make(map[string]*ir.Block)
	g.facts = &annot.FuncFacts{}
	g.scopes = []map[string]ir.Value{make(map[string]ir.Value)}

	// Function-level annotations.
	for _, a := range fn.Annotations {
		facts, err := annot.Parse(a.Body, g)
		if err != nil {
			g.errf(a.AtPos, "%v", err)
			continue
		}
		ff, err := annot.Collect(facts)
		if err != nil {
			g.errf(a.AtPos, "%v", err)
			continue
		}
		g.mergeFacts(ff)
	}

	// Spill parameters into allocas so they behave like ordinary locals.
	for i, p := range fn.Params {
		a := &ir.Alloca{Elem: p.Type, VarName: paramName(p.Name, i) + ".addr"}
		g.cur.Append(a)
		g.cur.Append(&ir.Store{Val: irf.Params[i], Addr: a})
		g.allocas[p] = a
		g.bind(p.Name, a)
	}

	g.lowerStmt(fn.Decl.Body)

	// Terminate any fall-off-the-end block.
	for _, b := range irf.Blocks {
		if b.Term() == nil {
			if ctypes.IsVoid(irf.Sig.Result) {
				ir.Terminate(b, &ir.Ret{})
			} else {
				ir.Terminate(b, &ir.Ret{X: zeroValue(irf.Sig.Result)})
			}
		}
	}
	pruneUnreachable(irf)
	irf.Facts = g.facts
	g.fn = nil
	g.cur = nil
	g.allocas = make(map[csema.Object]ir.Value)
}

func (g *generator) mergeFacts(ff *annot.FuncFacts) {
	if ff.IsShmInit {
		g.facts.IsShmInit = true
	}
	g.facts.Core = append(g.facts.Core, ff.Core...)
	g.facts.ShmVars = append(g.facts.ShmVars, ff.ShmVars...)
	g.facts.NonCore = append(g.facts.NonCore, ff.NonCore...)
}

func (g *generator) bind(name string, addr ir.Value) {
	if name == "" {
		return
	}
	g.scopes[len(g.scopes)-1][name] = addr
}

func (g *generator) lookupName(name string) ir.Value {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if v, ok := g.scopes[i][name]; ok {
			return v
		}
	}
	if gv := g.res.Module.GlobalByName(name); gv != nil {
		return gv
	}
	return nil
}

func (g *generator) pushScope() { g.scopes = append(g.scopes, make(map[string]ir.Value)) }
func (g *generator) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

// deadBlock starts a fresh block for statements following a terminator.
func (g *generator) deadBlock() {
	g.cur = g.fn.NewBlock("dead")
}

// ---------------------------------------------------------------------------
// Statements

func (g *generator) lowerStmt(s cast.Stmt) {
	switch st := s.(type) {
	case *cast.BlockStmt:
		g.pushScope()
		for _, sub := range st.List {
			g.lowerStmt(sub)
		}
		g.popScope()
	case *cast.DeclStmt:
		for _, vd := range st.Decls {
			g.lowerLocalDecl(vd)
		}
	case *cast.ExprStmt:
		g.lowerExpr(st.X)
	case *cast.EmptyStmt:
	case *cast.IfStmt:
		g.lowerIf(st)
	case *cast.WhileStmt:
		g.lowerWhile(st)
	case *cast.DoWhileStmt:
		g.lowerDoWhile(st)
	case *cast.ForStmt:
		g.lowerFor(st)
	case *cast.ReturnStmt:
		var v ir.Value
		if st.X != nil {
			v = g.lowerExpr(st.X)
			v = g.convert(v, g.fn.Sig.Result, st.RetPos)
		}
		r := &ir.Ret{X: v}
		r.SetPos(st.RetPos)
		ir.Terminate(g.cur, r)
		g.deadBlock()
	case *cast.BreakStmt:
		if len(g.breaks) == 0 {
			g.errf(st.KwPos, "break outside loop or switch")
			return
		}
		br := &ir.Br{Then: g.breaks[len(g.breaks)-1]}
		br.SetPos(st.KwPos)
		ir.Terminate(g.cur, br)
		g.deadBlock()
	case *cast.ContinueStmt:
		if len(g.conts) == 0 {
			g.errf(st.KwPos, "continue outside loop")
			return
		}
		br := &ir.Br{Then: g.conts[len(g.conts)-1]}
		br.SetPos(st.KwPos)
		ir.Terminate(g.cur, br)
		g.deadBlock()
	case *cast.SwitchStmt:
		g.lowerSwitch(st)
	case *cast.LabeledStmt:
		blk := g.labelBlock(st.Name)
		ir.Terminate(g.cur, &ir.Br{Then: blk})
		g.cur = blk
		g.lowerStmt(st.Stmt)
	case *cast.GotoStmt:
		blk := g.labelBlock(st.Name)
		br := &ir.Br{Then: blk}
		br.SetPos(st.KwPos)
		ir.Terminate(g.cur, br)
		g.deadBlock()
	case *cast.AnnotatedStmt:
		g.lowerAnnotations(st.Annotations)
		g.lowerStmt(st.Stmt)
	default:
		g.errf(s.Pos(), "irgen: unhandled statement %T", s)
	}
}

func (g *generator) labelBlock(name string) *ir.Block {
	if b, ok := g.labels[name]; ok {
		return b
	}
	b := g.fn.NewBlock("label_" + name)
	g.labels[name] = b
	return b
}

func (g *generator) lowerAnnotations(annots []cast.Annotation) {
	for _, a := range annots {
		facts, err := annot.Parse(a.Body, g)
		if err != nil {
			g.errf(a.AtPos, "%v", err)
			continue
		}
		for _, f := range facts {
			switch x := f.(type) {
			case *annot.AssertSafeFact:
				g.lowerAssert(x, a.AtPos)
			case *annot.CoreFact:
				g.facts.Core = append(g.facts.Core, x)
			case *annot.ShmVarFact:
				g.facts.ShmVars = append(g.facts.ShmVars, x)
			case *annot.NonCoreFact:
				g.facts.NonCore = append(g.facts.NonCore, x)
			case *annot.ShmInitFact:
				g.facts.IsShmInit = true
			}
		}
	}
}

func (g *generator) lowerAssert(f *annot.AssertSafeFact, pos ctoken.Pos) {
	addr := g.lookupName(f.Var)
	if addr == nil {
		g.errf(pos, "assert(safe(%s)): no variable %q in scope", f.Var, f.Var)
		return
	}
	ld := &ir.Load{Addr: addr}
	ld.SetPos(pos)
	g.cur.Append(ld)
	call := &ir.Call{Callee: g.res.Module.FuncByName(AssertIntrinsic), Args: []ir.Value{ld}}
	call.SetPos(pos)
	g.cur.Append(call)
	g.res.AssertVars[call] = f.Var
}

func (g *generator) lowerLocalDecl(vd *cast.VarDecl) {
	obj := g.objectFor(vd)
	var t ctypes.Type
	if obj != nil {
		t = obj.ObjType()
	} else {
		t = ctypes.IntType
	}
	a := &ir.Alloca{Elem: t, VarName: vd.Name}
	a.SetPos(vd.NamePos)
	g.cur.Append(a)
	if obj != nil {
		g.allocas[obj] = a
	}
	g.bind(vd.Name, a)
	if vd.Init != nil {
		g.lowerInitInto(a, t, vd.Init)
	}
}

// objectFor finds the csema object for a declaration by matching the Decl
// pointer (csema stores Uses keyed by idents; declarations we find by
// scanning — the object is reachable via ExprTypes only for expressions,
// so we reconstruct through a side table built lazily).
func (g *generator) objectFor(vd *cast.VarDecl) csema.Object {
	// csema.LocalVar embeds its Decl; search Uses values once and cache.
	if g.declObjs == nil {
		g.declObjs = make(map[*cast.VarDecl]csema.Object)
		for _, obj := range g.prog.Uses {
			if lv, ok := obj.(*csema.LocalVar); ok {
				g.declObjs[lv.Decl] = lv
			}
		}
	}
	if obj, ok := g.declObjs[vd]; ok {
		return obj
	}
	// Unused local: build a fresh object-equivalent.
	return nil
}

func (g *generator) lowerInitInto(addr ir.Value, t ctypes.Type, init cast.Expr) {
	if call, ok := init.(*cast.CallExpr); ok {
		if id, ok2 := call.Fun.(*cast.Ident); ok2 && id.Name == "__initlist" {
			switch tt := t.(type) {
			case *ctypes.Array:
				for i, e := range call.Args {
					elemAddr := &ir.GEP{
						Base:    addr,
						Indices: []ir.GEPIndex{{Index: constInt(int64(i))}},
						ResultT: &ctypes.Pointer{Elem: tt.Elem},
					}
					elemAddr.SetPos(e.Pos())
					g.cur.Append(elemAddr)
					g.lowerInitInto(elemAddr, tt.Elem, e)
				}
			case *ctypes.Struct:
				for i, e := range call.Args {
					if i >= len(tt.Fields) {
						break
					}
					fAddr := &ir.GEP{
						Base:    addr,
						Indices: []ir.GEPIndex{{Field: i}},
						ResultT: &ctypes.Pointer{Elem: tt.Fields[i].Type},
					}
					fAddr.SetPos(e.Pos())
					g.cur.Append(fAddr)
					g.lowerInitInto(fAddr, tt.Fields[i].Type, e)
				}
			default:
				if len(call.Args) == 1 {
					g.lowerInitInto(addr, t, call.Args[0])
				}
			}
			return
		}
	}
	v := g.lowerExpr(init)
	v = g.convert(v, t, init.Pos())
	st := &ir.Store{Val: v, Addr: addr}
	st.SetPos(init.Pos())
	g.cur.Append(st)
}

func (g *generator) lowerIf(st *cast.IfStmt) {
	thenB := g.fn.NewBlock("if_then")
	endB := g.fn.NewBlock("if_end")
	elseB := endB
	if st.Else != nil {
		elseB = g.fn.NewBlock("if_else")
	}
	g.lowerCondBranch(st.Cond, thenB, elseB)
	g.cur = thenB
	g.lowerStmt(st.Then)
	ir.Terminate(g.cur, &ir.Br{Then: endB})
	if st.Else != nil {
		g.cur = elseB
		g.lowerStmt(st.Else)
		ir.Terminate(g.cur, &ir.Br{Then: endB})
	}
	g.cur = endB
}

func (g *generator) lowerWhile(st *cast.WhileStmt) {
	condB := g.fn.NewBlock("while_cond")
	bodyB := g.fn.NewBlock("while_body")
	endB := g.fn.NewBlock("while_end")
	ir.Terminate(g.cur, &ir.Br{Then: condB})
	g.cur = condB
	g.lowerCondBranch(st.Cond, bodyB, endB)
	g.breaks = append(g.breaks, endB)
	g.conts = append(g.conts, condB)
	g.cur = bodyB
	g.lowerStmt(st.Body)
	ir.Terminate(g.cur, &ir.Br{Then: condB})
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.conts = g.conts[:len(g.conts)-1]
	g.cur = endB
}

func (g *generator) lowerDoWhile(st *cast.DoWhileStmt) {
	bodyB := g.fn.NewBlock("do_body")
	condB := g.fn.NewBlock("do_cond")
	endB := g.fn.NewBlock("do_end")
	ir.Terminate(g.cur, &ir.Br{Then: bodyB})
	g.breaks = append(g.breaks, endB)
	g.conts = append(g.conts, condB)
	g.cur = bodyB
	g.lowerStmt(st.Body)
	ir.Terminate(g.cur, &ir.Br{Then: condB})
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.conts = g.conts[:len(g.conts)-1]
	g.cur = condB
	g.lowerCondBranch(st.Cond, bodyB, endB)
	g.cur = endB
}

func (g *generator) lowerFor(st *cast.ForStmt) {
	g.pushScope()
	if st.Init != nil {
		g.lowerStmt(st.Init)
	}
	condB := g.fn.NewBlock("for_cond")
	bodyB := g.fn.NewBlock("for_body")
	postB := g.fn.NewBlock("for_post")
	endB := g.fn.NewBlock("for_end")
	ir.Terminate(g.cur, &ir.Br{Then: condB})
	g.cur = condB
	if st.Cond != nil {
		g.lowerCondBranch(st.Cond, bodyB, endB)
	} else {
		ir.Terminate(g.cur, &ir.Br{Then: bodyB})
	}
	g.breaks = append(g.breaks, endB)
	g.conts = append(g.conts, postB)
	g.cur = bodyB
	g.lowerStmt(st.Body)
	ir.Terminate(g.cur, &ir.Br{Then: postB})
	g.cur = postB
	if st.Post != nil {
		g.lowerExpr(st.Post)
	}
	ir.Terminate(g.cur, &ir.Br{Then: condB})
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.conts = g.conts[:len(g.conts)-1]
	g.cur = endB
	g.popScope()
}

func (g *generator) lowerSwitch(st *cast.SwitchStmt) {
	tag := g.lowerExpr(st.Tag)
	endB := g.fn.NewBlock("switch_end")

	// Pre-create one body block per clause.
	bodies := make([]*ir.Block, len(st.Body))
	var defaultB *ir.Block
	for i, cl := range st.Body {
		bodies[i] = g.fn.NewBlock(fmt.Sprintf("case%d", i))
		if cl.Values == nil {
			defaultB = bodies[i]
		}
	}
	if defaultB == nil {
		defaultB = endB
	}

	// Comparison chain.
	for i, cl := range st.Body {
		for _, v := range cl.Values {
			val := g.lowerExpr(v)
			cmp := &ir.Cmp{Op: ir.EQ, X: tag, Y: val}
			cmp.SetPos(v.Pos())
			g.cur.Append(cmp)
			next := g.fn.NewBlock("switch_test")
			br := &ir.Br{Cond: cmp, Then: bodies[i], Else: next}
			br.SetPos(v.Pos())
			ir.Terminate(g.cur, br)
			g.cur = next
		}
	}
	ir.Terminate(g.cur, &ir.Br{Then: defaultB})

	// Clause bodies, with fallthrough into the next body.
	g.breaks = append(g.breaks, endB)
	for i, cl := range st.Body {
		g.cur = bodies[i]
		g.pushScope()
		for _, sub := range cl.Body {
			g.lowerStmt(sub)
		}
		g.popScope()
		if g.cur.Term() == nil {
			if i+1 < len(bodies) {
				ir.Terminate(g.cur, &ir.Br{Then: bodies[i+1]})
			} else {
				ir.Terminate(g.cur, &ir.Br{Then: endB})
			}
		}
	}
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.cur = endB
}

// ---------------------------------------------------------------------------
// Conditions

// lowerCondBranch lowers e as a branch condition with short-circuiting.
func (g *generator) lowerCondBranch(e cast.Expr, thenB, elseB *ir.Block) {
	switch x := cast.Unparen(e).(type) {
	case *cast.BinaryExpr:
		switch x.Op {
		case ctoken.LAND:
			mid := g.fn.NewBlock("and_rhs")
			g.lowerCondBranch(x.X, mid, elseB)
			g.cur = mid
			g.lowerCondBranch(x.Y, thenB, elseB)
			return
		case ctoken.LOR:
			mid := g.fn.NewBlock("or_rhs")
			g.lowerCondBranch(x.X, thenB, mid)
			g.cur = mid
			g.lowerCondBranch(x.Y, thenB, elseB)
			return
		}
	case *cast.UnaryExpr:
		if x.Op == ctoken.NOT {
			g.lowerCondBranch(x.X, elseB, thenB)
			return
		}
	}
	v := g.lowerExpr(e)
	cond := g.truthy(v, e.Pos())
	br := &ir.Br{Cond: cond, Then: thenB, Else: elseB}
	br.SetPos(e.Pos())
	ir.Terminate(g.cur, br)
}

// truthy converts a scalar to a 0/1 condition value.
func (g *generator) truthy(v ir.Value, pos ctoken.Pos) ir.Value {
	if c, ok := v.(*ir.Cmp); ok {
		return c
	}
	var zero ir.Value
	switch {
	case ctypes.IsFloat(v.Type()):
		zero = &ir.ConstFloat{Val: 0, Ty: v.Type()}
	default:
		zero = &ir.ConstInt{Val: 0, Ty: v.Type()}
	}
	cmp := &ir.Cmp{Op: ir.NE, X: v, Y: zero}
	cmp.SetPos(pos)
	g.cur.Append(cmp)
	return cmp
}

// ---------------------------------------------------------------------------
// Expressions

func constInt(v int64) *ir.ConstInt { return &ir.ConstInt{Val: v, Ty: ctypes.IntType} }

func zeroValue(t ctypes.Type) ir.Value {
	if ctypes.IsFloat(t) {
		return &ir.ConstFloat{Val: 0, Ty: t}
	}
	return &ir.ConstInt{Val: 0, Ty: t}
}

// lowerExpr lowers e as an rvalue.
func (g *generator) lowerExpr(e cast.Expr) ir.Value {
	switch x := e.(type) {
	case *cast.IntLit:
		return &ir.ConstInt{Val: x.Value, Ty: g.typeOf(e)}
	case *cast.FloatLit:
		return &ir.ConstFloat{Val: x.Value, Ty: g.typeOf(e)}
	case *cast.StrLit:
		return &ir.ConstStr{Val: x.Value}
	case *cast.ParenExpr:
		return g.lowerExpr(x.X)
	case *cast.Ident:
		return g.lowerIdent(x)
	case *cast.UnaryExpr:
		return g.lowerUnary(x)
	case *cast.PostfixExpr:
		return g.lowerPostfix(x)
	case *cast.BinaryExpr:
		return g.lowerBinary(x)
	case *cast.AssignExpr:
		return g.lowerAssign(x)
	case *cast.CondExpr:
		return g.lowerTernary(x)
	case *cast.CallExpr:
		return g.lowerCall(x)
	case *cast.IndexExpr, *cast.MemberExpr:
		return g.loadLvalue(e)
	case *cast.CastExpr:
		return g.lowerCast(x)
	case *cast.SizeofExpr:
		return g.lowerSizeof(x)
	default:
		g.errf(e.Pos(), "irgen: unhandled expression %T", e)
		return constInt(0)
	}
}

func (g *generator) typeOf(e cast.Expr) ctypes.Type {
	if t := g.prog.TypeOf(e); t != nil {
		return t
	}
	return ctypes.IntType
}

func (g *generator) lowerIdent(x *cast.Ident) ir.Value {
	obj := g.prog.Uses[x]
	switch o := obj.(type) {
	case *csema.EnumConst:
		return &ir.ConstInt{Val: o.Value, Ty: ctypes.IntType}
	case *csema.Function:
		g.errf(x.NamePos, "function %q used as a value (function pointers are outside the subset)", x.Name)
		return constInt(0)
	}
	return g.loadLvalue(x)
}

// loadLvalue computes the address of an lvalue and loads from it; arrays
// decay to element pointers instead of loading.
func (g *generator) loadLvalue(e cast.Expr) ir.Value {
	addr := g.lowerAddr(e)
	pointee := ctypes.Deref(addr.Type())
	if arr, ok := pointee.(*ctypes.Array); ok {
		// Array decay: &a[0].
		gep := &ir.GEP{
			Base:    addr,
			Indices: []ir.GEPIndex{{Index: constInt(0)}},
			ResultT: &ctypes.Pointer{Elem: arr.Elem},
		}
		gep.SetPos(e.Pos())
		g.cur.Append(gep)
		return gep
	}
	ld := &ir.Load{Addr: addr}
	ld.SetPos(e.Pos())
	g.cur.Append(ld)
	return ld
}

// lowerAddr computes the address of an lvalue expression.
func (g *generator) lowerAddr(e cast.Expr) ir.Value {
	switch x := cast.Unparen(e).(type) {
	case *cast.Ident:
		obj := g.prog.Uses[x]
		switch o := obj.(type) {
		case *csema.GlobalVar:
			if gv := g.res.Module.GlobalByName(o.Name); gv != nil {
				return gv
			}
		case *csema.LocalVar, *csema.ParamVar:
			if a, ok := g.allocas[obj]; ok {
				return a
			}
		}
		// Fall back to name lookup (annotation-introduced or recovery).
		if v := g.lookupName(x.Name); v != nil {
			return v
		}
		g.errf(x.NamePos, "irgen: no storage for %q", x.Name)
		a := &ir.Alloca{Elem: g.typeOf(x), VarName: x.Name + ".synthetic"}
		g.cur.Append(a)
		return a
	case *cast.UnaryExpr:
		if x.Op == ctoken.STAR {
			return g.lowerExpr(x.X)
		}
	case *cast.IndexExpr:
		return g.lowerIndexAddr(x)
	case *cast.MemberExpr:
		return g.lowerMemberAddr(x)
	}
	g.errf(e.Pos(), "irgen: expression is not an lvalue")
	a := &ir.Alloca{Elem: g.typeOf(e), VarName: "bad.lvalue"}
	g.cur.Append(a)
	return a
}

func (g *generator) lowerIndexAddr(x *cast.IndexExpr) ir.Value {
	baseT := g.typeOf(x.X)
	idx := g.lowerExpr(x.Index)
	switch bt := baseT.(type) {
	case *ctypes.Array:
		base := g.lowerAddr(x.X) // pointer to array
		gep := &ir.GEP{
			Base:    base,
			Indices: []ir.GEPIndex{{Index: idx}},
			ResultT: &ctypes.Pointer{Elem: bt.Elem},
		}
		gep.SetPos(x.LbrackPos)
		g.cur.Append(gep)
		return gep
	case *ctypes.Pointer:
		base := g.lowerExpr(x.X) // pointer value
		gep := &ir.GEP{
			Base:    base,
			Indices: []ir.GEPIndex{{Index: idx}},
			ResultT: base.Type(),
		}
		gep.SetPos(x.LbrackPos)
		g.cur.Append(gep)
		return gep
	default:
		g.errf(x.LbrackPos, "irgen: indexing non-array type %s", baseT)
		return g.lowerAddr(x.X)
	}
}

func (g *generator) lowerMemberAddr(x *cast.MemberExpr) ir.Value {
	var base ir.Value
	var st *ctypes.Struct
	if x.Arrow {
		base = g.lowerExpr(x.X)
		if p, ok := base.Type().(*ctypes.Pointer); ok {
			st, _ = p.Elem.(*ctypes.Struct)
		}
	} else {
		base = g.lowerAddr(x.X)
		if p, ok := base.Type().(*ctypes.Pointer); ok {
			st, _ = p.Elem.(*ctypes.Struct)
		}
	}
	if st == nil {
		g.errf(x.DotPos, "irgen: member access on non-struct")
		return base
	}
	fieldIdx := -1
	var ft ctypes.Type = ctypes.IntType
	for i, f := range st.Fields {
		if f.Name == x.Name {
			fieldIdx = i
			ft = f.Type
			break
		}
	}
	if fieldIdx < 0 {
		g.errf(x.DotPos, "irgen: no field %q", x.Name)
		return base
	}
	gep := &ir.GEP{
		Base:    base,
		Indices: []ir.GEPIndex{{Field: fieldIdx}},
		ResultT: &ctypes.Pointer{Elem: ft},
	}
	gep.SetPos(x.DotPos)
	g.cur.Append(gep)
	return gep
}

func (g *generator) lowerUnary(x *cast.UnaryExpr) ir.Value {
	switch x.Op {
	case ctoken.MINUS:
		v := g.lowerExpr(x.X)
		op := &ir.BinOp{Op: ir.Sub, X: zeroValue(v.Type()), Y: v, Ty: v.Type()}
		op.SetPos(x.OpPos)
		g.cur.Append(op)
		return op
	case ctoken.TILDE:
		v := g.lowerExpr(x.X)
		op := &ir.BinOp{Op: ir.Xor, X: v, Y: &ir.ConstInt{Val: -1, Ty: v.Type()}, Ty: v.Type()}
		op.SetPos(x.OpPos)
		g.cur.Append(op)
		return op
	case ctoken.NOT:
		v := g.lowerExpr(x.X)
		cmp := &ir.Cmp{Op: ir.EQ, X: v, Y: zeroValue(v.Type())}
		cmp.SetPos(x.OpPos)
		g.cur.Append(cmp)
		return cmp
	case ctoken.STAR:
		addr := g.lowerExpr(x.X)
		ld := &ir.Load{Addr: addr}
		ld.SetPos(x.OpPos)
		g.cur.Append(ld)
		return ld
	case ctoken.AMP:
		return g.lowerAddr(x.X)
	case ctoken.INC, ctoken.DEC:
		// Prefix: value after update.
		addr := g.lowerAddr(x.X)
		return g.incDec(addr, x.Op == ctoken.INC, true, x.OpPos)
	default:
		g.errf(x.OpPos, "irgen: unhandled unary %s", x.Op)
		return constInt(0)
	}
}

func (g *generator) lowerPostfix(x *cast.PostfixExpr) ir.Value {
	addr := g.lowerAddr(x.X)
	return g.incDec(addr, x.Op == ctoken.INC, false, x.OpPos)
}

func (g *generator) incDec(addr ir.Value, inc, prefix bool, pos ctoken.Pos) ir.Value {
	ld := &ir.Load{Addr: addr}
	ld.SetPos(pos)
	g.cur.Append(ld)
	t := ld.Type()
	var updated ir.Value
	if ctypes.IsPointer(t) {
		delta := int64(1)
		if !inc {
			delta = -1
		}
		gep := &ir.GEP{Base: ld, Indices: []ir.GEPIndex{{Index: constInt(delta)}}, ResultT: t}
		gep.SetPos(pos)
		g.cur.Append(gep)
		updated = gep
	} else {
		var one ir.Value
		if ctypes.IsFloat(t) {
			one = &ir.ConstFloat{Val: 1, Ty: t}
		} else {
			one = &ir.ConstInt{Val: 1, Ty: t}
		}
		op := ir.Add
		if !inc {
			op = ir.Sub
		}
		bo := &ir.BinOp{Op: op, X: ld, Y: one, Ty: t}
		bo.SetPos(pos)
		g.cur.Append(bo)
		updated = bo
	}
	st := &ir.Store{Val: updated, Addr: addr}
	st.SetPos(pos)
	g.cur.Append(st)
	if prefix {
		return updated
	}
	return ld
}

var binOps = map[ctoken.Kind]ir.BinKind{
	ctoken.PLUS: ir.Add, ctoken.MINUS: ir.Sub, ctoken.STAR: ir.Mul,
	ctoken.SLASH: ir.Div, ctoken.PERCENT: ir.Rem, ctoken.AMP: ir.And,
	ctoken.PIPE: ir.Or, ctoken.CARET: ir.Xor, ctoken.SHL: ir.Shl, ctoken.SHR: ir.Shr,
}

var cmpOps = map[ctoken.Kind]ir.CmpKind{
	ctoken.EQ: ir.EQ, ctoken.NE: ir.NE, ctoken.LT: ir.LT,
	ctoken.LE: ir.LE, ctoken.GT: ir.GT, ctoken.GE: ir.GE,
}

func (g *generator) lowerBinary(x *cast.BinaryExpr) ir.Value {
	switch x.Op {
	case ctoken.LAND, ctoken.LOR:
		return g.lowerShortCircuit(x)
	}
	if ck, ok := cmpOps[x.Op]; ok {
		lv := g.lowerExpr(x.X)
		rv := g.lowerExpr(x.Y)
		lv, rv = g.unify(lv, rv, x.OpPos)
		cmp := &ir.Cmp{Op: ck, X: lv, Y: rv}
		cmp.SetPos(x.OpPos)
		g.cur.Append(cmp)
		return cmp
	}
	bk, ok := binOps[x.Op]
	if !ok {
		g.errf(x.OpPos, "irgen: unhandled binary %s", x.Op)
		return constInt(0)
	}
	lv := g.lowerExpr(x.X)
	rv := g.lowerExpr(x.Y)

	// Pointer arithmetic lowers to GEP; pointer difference to ptrtoint+sub.
	lp := ctypes.IsPointer(lv.Type())
	rp := ctypes.IsPointer(rv.Type())
	switch {
	case lp && rp && bk == ir.Sub:
		ca := &ir.Cast{Kind: ir.PtrToInt, X: lv, To: ctypes.LongType}
		ca.SetPos(x.OpPos)
		g.cur.Append(ca)
		cb := &ir.Cast{Kind: ir.PtrToInt, X: rv, To: ctypes.LongType}
		cb.SetPos(x.OpPos)
		g.cur.Append(cb)
		op := &ir.BinOp{Op: ir.Sub, X: ca, Y: cb, Ty: ctypes.LongType}
		op.SetPos(x.OpPos)
		g.cur.Append(op)
		return op
	case lp && (bk == ir.Add || bk == ir.Sub):
		idx := rv
		if bk == ir.Sub {
			neg := &ir.BinOp{Op: ir.Sub, X: zeroValue(rv.Type()), Y: rv, Ty: rv.Type()}
			neg.SetPos(x.OpPos)
			g.cur.Append(neg)
			idx = neg
		}
		gep := &ir.GEP{Base: lv, Indices: []ir.GEPIndex{{Index: idx}}, ResultT: lv.Type()}
		gep.SetPos(x.OpPos)
		g.cur.Append(gep)
		return gep
	case rp && bk == ir.Add:
		gep := &ir.GEP{Base: rv, Indices: []ir.GEPIndex{{Index: lv}}, ResultT: rv.Type()}
		gep.SetPos(x.OpPos)
		g.cur.Append(gep)
		return gep
	}

	lv, rv = g.unify(lv, rv, x.OpPos)
	t := g.typeOf(x)
	op := &ir.BinOp{Op: bk, X: lv, Y: rv, Ty: t}
	op.SetPos(x.OpPos)
	g.cur.Append(op)
	return op
}

// unify inserts numeric conversions so both operands share a type.
func (g *generator) unify(a, b ir.Value, pos ctoken.Pos) (ir.Value, ir.Value) {
	ta, tb := a.Type(), b.Type()
	if ta.Equal(tb) || ctypes.IsPointer(ta) || ctypes.IsPointer(tb) {
		return a, b
	}
	af, bf := ctypes.IsFloat(ta), ctypes.IsFloat(tb)
	switch {
	case af && !bf:
		return a, g.cast(ir.IntToFp, b, ta, pos)
	case bf && !af:
		return g.cast(ir.IntToFp, a, tb, pos), b
	case af && bf:
		if ta.Size() >= tb.Size() {
			return a, g.cast(ir.FpCast, b, ta, pos)
		}
		return g.cast(ir.FpCast, a, tb, pos), b
	default:
		if ta.Size() >= tb.Size() {
			return a, g.cast(ir.Ext, b, ta, pos)
		}
		return g.cast(ir.Ext, a, tb, pos), b
	}
}

func (g *generator) cast(k ir.CastKind, v ir.Value, to ctypes.Type, pos ctoken.Pos) ir.Value {
	c := &ir.Cast{Kind: k, X: v, To: to}
	c.SetPos(pos)
	g.cur.Append(c)
	return c
}

func (g *generator) lowerShortCircuit(x *cast.BinaryExpr) ir.Value {
	thenB := g.fn.NewBlock("sc_true")
	elseB := g.fn.NewBlock("sc_false")
	endB := g.fn.NewBlock("sc_end")
	g.lowerCondBranch(x, thenB, elseB)
	g.cur = thenB
	ir.Terminate(g.cur, &ir.Br{Then: endB})
	g.cur = elseB
	ir.Terminate(g.cur, &ir.Br{Then: endB})
	g.cur = endB
	phi := &ir.Phi{
		Edges: []ir.PhiEdge{
			{Val: constInt(1), Pred: thenB},
			{Val: constInt(0), Pred: elseB},
		},
		Ty: ctypes.IntType,
	}
	phi.SetPos(x.OpPos)
	// Phis must lead the block.
	endB.Instrs = append([]ir.Instr{phi}, endB.Instrs...)
	phiSetParent(phi, endB)
	return phi
}

func phiSetParent(p *ir.Phi, b *ir.Block) {
	// Append normally tracks parents; since we spliced at the front, set it
	// via a zero-cost helper on the embedded base.
	p.SetParentBlock(b)
}

func (g *generator) lowerTernary(x *cast.CondExpr) ir.Value {
	thenB := g.fn.NewBlock("cond_then")
	elseB := g.fn.NewBlock("cond_else")
	endB := g.fn.NewBlock("cond_end")
	g.lowerCondBranch(x.Cond, thenB, elseB)

	g.cur = thenB
	tv := g.lowerExpr(x.Then)
	thenOut := g.cur
	ir.Terminate(g.cur, &ir.Br{Then: endB})

	g.cur = elseB
	ev := g.lowerExpr(x.Else)
	elseOut := g.cur
	ir.Terminate(g.cur, &ir.Br{Then: endB})

	g.cur = endB
	t := g.typeOf(x)
	phi := &ir.Phi{
		Edges: []ir.PhiEdge{{Val: tv, Pred: thenOut}, {Val: ev, Pred: elseOut}},
		Ty:    t,
	}
	phi.SetPos(x.QPos)
	endB.Instrs = append([]ir.Instr{phi}, endB.Instrs...)
	phiSetParent(phi, endB)
	return phi
}

func (g *generator) lowerAssign(x *cast.AssignExpr) ir.Value {
	addr := g.lowerAddr(x.LHS)
	lhsT := g.typeOf(x.LHS)
	if x.Op == ctoken.ASSIGN {
		v := g.lowerExpr(x.RHS)
		v = g.convert(v, lhsT, x.OpPos)
		st := &ir.Store{Val: v, Addr: addr}
		st.SetPos(x.OpPos)
		g.cur.Append(st)
		return v
	}
	// Compound assignment.
	ld := &ir.Load{Addr: addr}
	ld.SetPos(x.OpPos)
	g.cur.Append(ld)
	rv := g.lowerExpr(x.RHS)

	var compound = map[ctoken.Kind]ir.BinKind{
		ctoken.ADDASSIGN: ir.Add, ctoken.SUBASSIGN: ir.Sub,
		ctoken.MULASSIGN: ir.Mul, ctoken.DIVASSIGN: ir.Div,
		ctoken.MODASSIGN: ir.Rem, ctoken.ANDASSIGN: ir.And,
		ctoken.ORASSIGN: ir.Or, ctoken.XORASSIGN: ir.Xor,
		ctoken.SHLASSIGN: ir.Shl, ctoken.SHRASSIGN: ir.Shr,
	}
	bk := compound[x.Op]
	var updated ir.Value
	if ctypes.IsPointer(lhsT) {
		idx := rv
		if bk == ir.Sub {
			neg := &ir.BinOp{Op: ir.Sub, X: zeroValue(rv.Type()), Y: rv, Ty: rv.Type()}
			neg.SetPos(x.OpPos)
			g.cur.Append(neg)
			idx = neg
		}
		gep := &ir.GEP{Base: ld, Indices: []ir.GEPIndex{{Index: idx}}, ResultT: lhsT}
		gep.SetPos(x.OpPos)
		g.cur.Append(gep)
		updated = gep
	} else {
		lv2, rv2 := g.unify(ld, rv, x.OpPos)
		op := &ir.BinOp{Op: bk, X: lv2, Y: rv2, Ty: lv2.Type()}
		op.SetPos(x.OpPos)
		g.cur.Append(op)
		updated = g.convert(op, lhsT, x.OpPos)
	}
	st := &ir.Store{Val: updated, Addr: addr}
	st.SetPos(x.OpPos)
	g.cur.Append(st)
	return updated
}

// convert coerces v to type t, inserting a cast when needed.
func (g *generator) convert(v ir.Value, t ctypes.Type, pos ctoken.Pos) ir.Value {
	vt := v.Type()
	if vt.Equal(t) || ctypes.IsVoid(t) {
		return v
	}
	switch {
	case ctypes.IsPointer(vt) && ctypes.IsPointer(t):
		return g.cast(ir.Bitcast, v, t, pos)
	case ctypes.IsPointer(t) && ctypes.IsInteger(vt):
		return g.cast(ir.IntToPtr, v, t, pos)
	case ctypes.IsInteger(t) && ctypes.IsPointer(vt):
		return g.cast(ir.PtrToInt, v, t, pos)
	case ctypes.IsFloat(t) && ctypes.IsInteger(vt):
		return g.cast(ir.IntToFp, v, t, pos)
	case ctypes.IsInteger(t) && ctypes.IsFloat(vt):
		return g.cast(ir.FpToInt, v, t, pos)
	case ctypes.IsFloat(t) && ctypes.IsFloat(vt):
		return g.cast(ir.FpCast, v, t, pos)
	case ctypes.IsInteger(t) && ctypes.IsInteger(vt):
		if t.Size() < vt.Size() {
			return g.cast(ir.Trunc, v, t, pos)
		}
		return g.cast(ir.Ext, v, t, pos)
	default:
		return v // aggregate assignment: leave as-is
	}
}

func (g *generator) lowerCall(x *cast.CallExpr) ir.Value {
	id, ok := cast.Unparen(x.Fun).(*cast.Ident)
	if !ok {
		g.errf(x.Fun.Pos(), "irgen: indirect call")
		return constInt(0)
	}
	callee := g.res.Module.FuncByName(id.Name)
	if callee == nil {
		g.errf(id.NamePos, "irgen: call to unknown function %q", id.Name)
		return constInt(0)
	}
	var args []ir.Value
	for i, a := range x.Args {
		v := g.lowerExpr(a)
		if i < len(callee.Sig.Params) {
			v = g.convert(v, callee.Sig.Params[i], a.Pos())
		}
		args = append(args, v)
	}
	call := &ir.Call{Callee: callee, Args: args}
	call.SetPos(x.LparenPos)
	g.cur.Append(call)

	// Calls to exit/abort end control flow.
	if id.Name == "exit" || id.Name == "abort" {
		ir.Terminate(g.cur, &ir.Unreachable{})
		g.deadBlock()
	}
	return call
}

func (g *generator) lowerCast(x *cast.CastExpr) ir.Value {
	v := g.lowerExpr(x.X)
	t := g.typeOf(x)
	if v.Type().Equal(t) {
		return v
	}
	return g.convert(v, t, x.LparenPos)
}

func (g *generator) lowerSizeof(x *cast.SizeofExpr) ir.Value {
	var sz int64
	if x.Type != nil {
		if v, ok := g.prog.ConstEval(x); ok {
			sz = v
		}
	} else if t := g.prog.TypeOf(x.X); t != nil {
		sz = t.Size()
	}
	return &ir.ConstInt{Val: sz, Ty: ctypes.ULongType}
}

// ---------------------------------------------------------------------------
// Unreachable-block pruning

// pruneUnreachable removes blocks with no path from entry, maintaining
// pred/succ lists and phi edges.
func pruneUnreachable(f *ir.Function) {
	if len(f.Blocks) == 0 {
		return
	}
	reachable := make(map[*ir.Block]bool)
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		if reachable[b] {
			return
		}
		reachable[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(f.Blocks[0])

	var kept []*ir.Block
	for _, b := range f.Blocks {
		if reachable[b] {
			kept = append(kept, b)
		}
	}
	for _, b := range kept {
		var preds []*ir.Block
		for _, p := range b.Preds {
			if reachable[p] {
				preds = append(preds, p)
			}
		}
		b.Preds = preds
		var succs []*ir.Block
		for _, s := range b.Succs {
			if reachable[s] {
				succs = append(succs, s)
			}
		}
		b.Succs = succs
		for _, in := range b.Instrs {
			if phi, ok := in.(*ir.Phi); ok {
				var edges []ir.PhiEdge
				for _, e := range phi.Edges {
					if reachable[e.Pred] {
						edges = append(edges, e)
					}
				}
				phi.Edges = edges
			}
		}
	}
	f.Blocks = kept
	f.RenumberBlocks()
}
