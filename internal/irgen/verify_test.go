package irgen

import (
	"testing"

	"safeflow/internal/ctypes"
	"safeflow/internal/ir"
)

// TestVerifyAcceptsLoweredPrograms runs the verifier over a program using
// every construct the lowering handles, before and after promotion.
func TestVerifyAcceptsLoweredPrograms(t *testing.T) {
	src := `
typedef struct { double a; double b[4]; int n; } S;
S box;
S *p;

double helper(S *s, int k)
{
	double acc;
	int i;
	acc = 0.0;
	for (i = 0; i < k; i++) {
		acc += s->b[i] * (i % 2 == 0 ? 1.0 : -1.0);
	}
	switch (k) {
	case 0:
		acc = -1.0;
		break;
	case 1:
	case 2:
		acc *= 2.0;
	default:
		acc += 1.0;
	}
	while (acc > 100.0) {
		acc /= 2.0;
	}
	return acc;
}

int main()
{
	double r;
	int tries;
	tries = 0;
retry:
	r = helper(&box, 3);
	if (r < 0.0 && tries < 3) {
		tries++;
		goto retry;
	}
	return (int) r;
}
`
	res := build(t, src, false)
	if errs := Verify(res.Module); len(errs) > 0 {
		t.Fatalf("pre-promotion verify: %v", errs)
	}
	Promote(res.Module)
	if errs := Verify(res.Module); len(errs) > 0 {
		t.Fatalf("post-promotion verify: %v", errs)
	}
}

func TestVerifyCorpusShapedProgram(t *testing.T) {
	src := `
typedef struct { double v; int flag; int pad; } R;
R *region;
void initComm()
/***SafeFlow Annotation shminit /***/
{
	region = (R *) shmat(shmget(1, sizeof(R), 0), 0, 0);
	/***SafeFlow Annotation assume(shmvar(region, sizeof(R))) /***/
	/***SafeFlow Annotation assume(noncore(region)) /***/
}
double monitor()
/***SafeFlow Annotation assume(core(region, 0, sizeof(R))) /***/
{
	if (region->flag == 0) { return 0.0; }
	return region->v;
}
int main()
{
	double u;
	initComm();
	u = monitor();
	/***SafeFlow Annotation assert(safe(u)) /***/
	writeDA(0, u);
	return 0;
}
`
	res := build(t, src, true)
	if errs := Verify(res.Module); len(errs) > 0 {
		t.Fatalf("verify: %v", errs)
	}
}

// TestVerifyCatchesBrokenIR corrupts hand-built functions and checks the
// verifier reports each corruption class.
func TestVerifyCatchesBrokenIR(t *testing.T) {
	mk := func() (*ir.Module, *ir.Function, *ir.Block, *ir.Block) {
		m := ir.NewModule("t")
		f := &ir.Function{Name: "f", Sig: &ctypes.Func{Result: ctypes.IntType}}
		m.AddFunc(f)
		b0 := f.NewBlock("entry")
		b1 := f.NewBlock("next")
		ir.Terminate(b0, &ir.Br{Then: b1})
		ir.Terminate(b1, &ir.Ret{X: &ir.ConstInt{Ty: ctypes.IntType}})
		return m, f, b0, b1
	}

	t.Run("valid baseline", func(t *testing.T) {
		m, _, _, _ := mk()
		if errs := Verify(m); len(errs) != 0 {
			t.Fatalf("baseline invalid: %v", errs)
		}
	})

	t.Run("unterminated block", func(t *testing.T) {
		m, _, _, b1 := mk()
		b1.Instrs = b1.Instrs[:0]
		if errs := Verify(m); len(errs) == 0 {
			t.Error("empty block accepted")
		}
	})

	t.Run("phi pred mismatch", func(t *testing.T) {
		m, f, b0, b1 := mk()
		_ = b0
		ghost := f.NewBlock("ghost")
		ir.Terminate(ghost, &ir.Ret{X: &ir.ConstInt{Ty: ctypes.IntType}})
		phi := &ir.Phi{
			Edges: []ir.PhiEdge{{Val: &ir.ConstInt{Val: 1, Ty: ctypes.IntType}, Pred: ghost}},
			Ty:    ctypes.IntType,
		}
		phi.SetParentBlock(b1)
		b1.Instrs = append([]ir.Instr{phi}, b1.Instrs...)
		if errs := Verify(m); len(errs) == 0 {
			t.Error("phi with non-pred edge accepted")
		}
	})

	t.Run("use before def", func(t *testing.T) {
		m, _, b0, b1 := mk()
		// An op in b0 uses a value defined in b1 (which does not dominate b0).
		late := &ir.BinOp{Op: ir.Add, X: &ir.ConstInt{Ty: ctypes.IntType}, Y: &ir.ConstInt{Ty: ctypes.IntType}, Ty: ctypes.IntType}
		late.SetParentBlock(b1)
		b1.Instrs = append([]ir.Instr{late}, b1.Instrs...)
		early := &ir.BinOp{Op: ir.Add, X: late, Y: &ir.ConstInt{Ty: ctypes.IntType}, Ty: ctypes.IntType}
		early.SetParentBlock(b0)
		b0.Instrs = append([]ir.Instr{early}, b0.Instrs...)
		if errs := Verify(m); len(errs) == 0 {
			t.Error("use-before-def accepted")
		}
	})

	t.Run("asymmetric edge", func(t *testing.T) {
		m, _, _, b1 := mk()
		b1.Preds = nil // break the mirror
		if errs := Verify(m); len(errs) == 0 {
			t.Error("asymmetric CFG edge accepted")
		}
	})
}
