package irgen

import (
	"strings"
	"testing"

	"safeflow/internal/cast"
	"safeflow/internal/clex"
	"safeflow/internal/cparse"
	"safeflow/internal/csema"
	"safeflow/internal/ctypes"
	"safeflow/internal/ir"
)

func build(t *testing.T, src string, promote bool) *Result {
	t.Helper()
	l := clex.New("t.c", src)
	toks := l.All()
	if errs := l.Errors(); len(errs) > 0 {
		t.Fatalf("lex: %v", errs)
	}
	p := cparse.New("t.c", toks)
	f, err := p.ParseFile()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := csema.Analyze([]*cast.File{f})
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	res := Build("t", prog)
	if len(res.Errors) > 0 {
		t.Fatalf("irgen: %v", res.Errors)
	}
	if promote {
		Promote(res.Module)
	}
	return res
}

func countInstr[T ir.Instr](f *ir.Function) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if _, ok := in.(T); ok {
				n++
			}
		}
	}
	return n
}

func TestStraightLineLowering(t *testing.T) {
	res := build(t, `
int add(int a, int b) { return a + b; }
`, false)
	f := res.Module.FuncByName("add")
	if f == nil || len(f.Blocks) == 0 {
		t.Fatal("add not lowered")
	}
	if n := countInstr[*ir.Alloca](f); n != 2 {
		t.Errorf("allocas = %d, want 2 (param spills)", n)
	}
	if n := countInstr[*ir.BinOp](f); n != 1 {
		t.Errorf("binops = %d, want 1", n)
	}
	if _, ok := f.Blocks[len(f.Blocks)-1].Term().(*ir.Ret); !ok {
		t.Error("missing return terminator")
	}
}

func TestMem2RegPromotesScalars(t *testing.T) {
	res := build(t, `
int count(int n)
{
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < n; i++) {
		acc += i;
	}
	return acc;
}
`, true)
	f := res.Module.FuncByName("count")
	if n := countInstr[*ir.Alloca](f); n != 0 {
		t.Errorf("allocas after promotion = %d, want 0:\n%s", n, f)
	}
	if n := countInstr[*ir.Phi](f); n < 2 {
		t.Errorf("phis after promotion = %d, want >= 2 (i and acc):\n%s", n, f)
	}
	if n := countInstr[*ir.Load](f); n != 0 {
		t.Errorf("loads after promotion = %d, want 0:\n%s", n, f)
	}
}

func TestAddressTakenNotPromoted(t *testing.T) {
	res := build(t, `
void setter(double *out) { *out = 1.5; }
double fn()
{
	double v;
	setter(&v);
	return v;
}
`, true)
	f := res.Module.FuncByName("fn")
	if n := countInstr[*ir.Alloca](f); n != 1 {
		t.Errorf("allocas = %d, want 1 (v escapes):\n%s", n, f)
	}
	if n := countInstr[*ir.Load](f); n != 1 {
		t.Errorf("loads = %d, want 1 (re-read of v):\n%s", n, f)
	}
}

func TestAggregatesNotPromoted(t *testing.T) {
	res := build(t, `
typedef struct { int a; int b; } S;
int fn()
{
	S s;
	int arr[4];
	s.a = 1;
	arr[2] = 5;
	return s.a + arr[2];
}
`, true)
	f := res.Module.FuncByName("fn")
	if n := countInstr[*ir.Alloca](f); n != 2 {
		t.Errorf("allocas = %d, want 2 (struct + array):\n%s", n, f)
	}
	if n := countInstr[*ir.GEP](f); n < 4 {
		t.Errorf("GEPs = %d, want >= 4:\n%s", n, f)
	}
}

func TestShortCircuitLowering(t *testing.T) {
	res := build(t, `
int both(int a, int b) { return a && b; }
`, true)
	f := res.Module.FuncByName("both")
	// Short circuit requires control flow: > 1 block and a phi.
	if len(f.Blocks) < 3 {
		t.Errorf("blocks = %d, want >= 3:\n%s", len(f.Blocks), f)
	}
	if n := countInstr[*ir.Phi](f); n != 1 {
		t.Errorf("phis = %d, want 1:\n%s", n, f)
	}
}

func TestTernaryLowering(t *testing.T) {
	res := build(t, `
int pick(int c, int a, int b) { return c ? a : b; }
`, true)
	f := res.Module.FuncByName("pick")
	if n := countInstr[*ir.Phi](f); n != 1 {
		t.Errorf("phis = %d, want 1:\n%s", n, f)
	}
}

func TestSwitchLowering(t *testing.T) {
	res := build(t, `
int classify(int n)
{
	int r;
	switch (n) {
	case 0:
		r = 10;
		break;
	case 1:
	case 2:
		r = 20;
		break;
	default:
		r = 30;
	}
	return r;
}
`, true)
	f := res.Module.FuncByName("classify")
	// Three comparisons: n==0, n==1, n==2.
	if n := countInstr[*ir.Cmp](f); n != 3 {
		t.Errorf("cmps = %d, want 3:\n%s", n, f)
	}
	if n := countInstr[*ir.Phi](f); n < 1 {
		t.Errorf("phi for r missing:\n%s", f)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	res := build(t, `
int fall(int n)
{
	int r;
	r = 0;
	switch (n) {
	case 0:
		r += 1;
	case 1:
		r += 2;
		break;
	default:
		r = 9;
	}
	return r;
}
`, false)
	f := res.Module.FuncByName("fall")
	// case0's body must branch into case1's body block (fallthrough), which
	// therefore has two predecessors.
	var case1 *ir.Block
	for _, b := range f.Blocks {
		if strings.HasPrefix(b.Label, "case1") {
			case1 = b
		}
	}
	if case1 == nil {
		t.Fatalf("case1 block missing:\n%s", f)
	}
	if len(case1.Preds) < 2 {
		t.Errorf("case1 preds = %d, want >= 2 (fallthrough + dispatch):\n%s", len(case1.Preds), f)
	}
}

func TestGotoLowering(t *testing.T) {
	res := build(t, `
int fn(int n)
{
	int acc;
	acc = 0;
again:
	acc += n;
	if (acc < 10) {
		goto again;
	}
	return acc;
}
`, true)
	f := res.Module.FuncByName("fn")
	var label *ir.Block
	for _, b := range f.Blocks {
		if strings.Contains(b.Label, "again") {
			label = b
		}
	}
	if label == nil {
		t.Fatalf("label block missing:\n%s", f)
	}
	if len(label.Preds) < 2 {
		t.Errorf("label preds = %d, want >= 2 (entry + back edge)", len(label.Preds))
	}
}

func TestPointerArithmeticBecomesGEP(t *testing.T) {
	res := build(t, `
double take(double *p, int i) { return *(p + i); }
`, true)
	f := res.Module.FuncByName("take")
	if n := countInstr[*ir.GEP](f); n != 1 {
		t.Errorf("GEPs = %d, want 1:\n%s", n, f)
	}
}

func TestCastKinds(t *testing.T) {
	res := build(t, `
typedef struct { int v; } S;
void fn(void *p, double d)
{
	S *sp;
	int i;
	long l;
	sp = (S *) p;
	i = (int) d;
	d = (double) i;
	l = (long) sp;
}
`, false)
	f := res.Module.FuncByName("fn")
	kinds := map[ir.CastKind]int{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Cast); ok {
				kinds[c.Kind]++
			}
		}
	}
	if kinds[ir.Bitcast] != 1 {
		t.Errorf("bitcasts = %d, want 1", kinds[ir.Bitcast])
	}
	if kinds[ir.FpToInt] != 1 || kinds[ir.IntToFp] != 1 {
		t.Errorf("float casts = %v", kinds)
	}
	if kinds[ir.PtrToInt] != 1 {
		t.Errorf("ptrtoint = %d, want 1", kinds[ir.PtrToInt])
	}
}

func TestExitTerminatesFlow(t *testing.T) {
	res := build(t, `
int main()
{
	int fd;
	fd = shmget(1, 8, 0);
	if (fd < 0) {
		exit(1);
	}
	return fd;
}
`, true)
	f := res.Module.FuncByName("main")
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && c.Callee.Name == "exit" {
				if _, isUnreachable := b.Term().(*ir.Unreachable); !isUnreachable {
					t.Errorf("exit block terminator = %v", b.Term())
				}
			}
		}
	}
}

func TestIncDecSemantics(t *testing.T) {
	res := build(t, `
int fn()
{
	int i;
	int a;
	int b;
	i = 5;
	a = i++;
	b = ++i;
	return a + b;
}
`, false)
	f := res.Module.FuncByName("fn")
	// Both forms store the updated value; the difference is the returned
	// one. Just assert the adds exist and the function lowers.
	if n := countInstr[*ir.BinOp](f); n < 3 {
		t.Errorf("binops = %d, want >= 3:\n%s", n, f)
	}
}

func TestAssertIntrinsicValue(t *testing.T) {
	res := build(t, `
int main()
{
	double u;
	u = 1.5;
	/***SafeFlow Annotation assert(safe(u)) /***/
	writeDA(0, u);
	return 0;
}
`, true)
	f := res.Module.FuncByName("main")
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			c, ok := in.(*ir.Call)
			if !ok || c.Callee.Name != AssertIntrinsic {
				continue
			}
			found = true
			if res.AssertVars[c] != "u" {
				t.Errorf("assert var = %q", res.AssertVars[c])
			}
			if len(c.Args) != 1 || !ctypes.IsFloat(c.Args[0].Type()) {
				t.Errorf("assert arg = %#v", c.Args)
			}
			// After mem2reg the argument must be the constant 1.5, not a load.
			if cf, ok := c.Args[0].(*ir.ConstFloat); !ok || cf.Val != 1.5 {
				t.Errorf("assert arg after promotion = %s, want 1.5", c.Args[0].Ident())
			}
		}
	}
	if !found {
		t.Fatalf("assert intrinsic missing:\n%s", f)
	}
}

func TestInitializerListLowering(t *testing.T) {
	res := build(t, `
int fn()
{
	int a[3] = {1, 2, 3};
	return a[1];
}
`, false)
	f := res.Module.FuncByName("fn")
	if n := countInstr[*ir.Store](f); n < 3 {
		t.Errorf("stores = %d, want >= 3 for the init list:\n%s", n, f)
	}
}

func TestUnreachableBlocksPruned(t *testing.T) {
	res := build(t, `
int fn(int n)
{
	if (n > 0) {
		return 1;
	} else {
		return 2;
	}
	return 3;
}
`, true)
	f := res.Module.FuncByName("fn")
	for _, b := range f.Blocks {
		if b != f.Entry() && len(b.Preds) == 0 {
			t.Errorf("unreachable block %s survived pruning:\n%s", b.Label, f)
		}
	}
}

func TestFuncFactsAttached(t *testing.T) {
	res := build(t, `
typedef struct { double v; } T;
T *region;
void init()
/***SafeFlow Annotation shminit /***/
{
	/***SafeFlow Annotation assume(shmvar(region, sizeof(T))) /***/
	/***SafeFlow Annotation assume(noncore(region)) /***/
}
`, false)
	f := res.Module.FuncByName("init")
	facts, ok := f.Facts.(interface{ Empty() bool })
	if !ok || facts.Empty() {
		t.Fatalf("facts = %#v", f.Facts)
	}
}
