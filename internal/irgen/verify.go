// IR verifier: structural validity checks on lowered modules, used by the
// front-end tests and the pipeline fuzzers to catch lowering bugs at the
// point of introduction rather than as analysis misbehavior downstream.

package irgen

import (
	"fmt"

	"safeflow/internal/cfgraph"
	"safeflow/internal/ir"
)

// Verify checks every defined function of m for structural validity:
//
//   - every block is terminated, exactly once, at the end;
//   - pred/succ lists are symmetric and match the terminators;
//   - phis lead their blocks and carry exactly one edge per predecessor;
//   - every instruction operand is a constant, global, parameter of the
//     same function, or an instruction whose definition dominates the use.
func Verify(m *ir.Module) []error {
	var errs []error
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		errs = append(errs, verifyFunc(f)...)
	}
	return errs
}

func verifyFunc(f *ir.Function) []error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("%s: %s", f.Name, fmt.Sprintf(format, args...)))
	}

	if len(f.Blocks) == 0 {
		bad("no blocks")
		return errs
	}

	inFunc := make(map[*ir.Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFunc[b] = true
	}

	// Block structure.
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			bad("block %s is empty", b.Label)
			continue
		}
		if b.Term() == nil {
			bad("block %s is not terminated", b.Label)
		}
		seenNonPhi := false
		for i, in := range b.Instrs {
			if in.Parent() != b {
				bad("block %s instruction %d has wrong parent", b.Label, i)
			}
			switch x := in.(type) {
			case *ir.Phi:
				if seenNonPhi {
					bad("block %s: phi %s after non-phi instructions", b.Label, x.Ident())
				}
			case *ir.Br, *ir.Ret, *ir.Unreachable:
				if i != len(b.Instrs)-1 {
					bad("block %s: terminator at position %d of %d", b.Label, i, len(b.Instrs))
				}
			default:
				seenNonPhi = true
			}
		}

		// Terminator/successor agreement.
		switch t := b.Term().(type) {
		case *ir.Br:
			want := map[*ir.Block]bool{t.Then: true}
			if t.Else != nil {
				want[t.Else] = true
			}
			for _, s := range b.Succs {
				if !want[s] {
					bad("block %s: successor %s not named by terminator", b.Label, s.Label)
				}
				if !inFunc[s] {
					bad("block %s: successor %s outside function", b.Label, s.Label)
				}
			}
			for s := range want {
				if !containsBlock(b.Succs, s) {
					bad("block %s: terminator target %s missing from successors", b.Label, s.Label)
				}
			}
		case *ir.Ret, *ir.Unreachable:
			if len(b.Succs) != 0 {
				bad("block %s: exits with %d successors", b.Label, len(b.Succs))
			}
		}
		for _, s := range b.Succs {
			if !containsBlock(s.Preds, b) {
				bad("edge %s->%s not mirrored in preds", b.Label, s.Label)
			}
		}
		for _, p := range b.Preds {
			if !containsBlock(p.Succs, b) {
				bad("pred edge %s->%s not mirrored in succs", p.Label, b.Label)
			}
		}
	}

	// Phi edges match predecessors exactly.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			phi, ok := in.(*ir.Phi)
			if !ok {
				continue
			}
			if len(phi.Edges) != len(b.Preds) {
				bad("block %s: phi %s has %d edges for %d preds", b.Label, phi.Ident(), len(phi.Edges), len(b.Preds))
				continue
			}
			seen := map[*ir.Block]bool{}
			for _, e := range phi.Edges {
				if seen[e.Pred] {
					bad("block %s: phi %s duplicates pred %s", b.Label, phi.Ident(), e.Pred.Label)
				}
				seen[e.Pred] = true
				if !containsBlock(b.Preds, e.Pred) {
					bad("block %s: phi %s edge from non-pred %s", b.Label, phi.Ident(), e.Pred.Label)
				}
			}
		}
	}

	// SSA dominance of operand uses.
	dt := cfgraph.NewDomTree(f)
	defBlock := make(map[ir.Value]*ir.Block)
	defIndex := make(map[ir.Value]int)
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if v, isVal := in.(ir.Value); isVal {
				defBlock[v] = b
				defIndex[v] = i
			}
		}
	}
	paramSet := make(map[ir.Value]bool, len(f.Params))
	for _, p := range f.Params {
		paramSet[p] = true
	}
	validOperand := func(useB *ir.Block, useIdx int, op ir.Value, isPhi bool, phiPred *ir.Block) bool {
		switch op.(type) {
		case *ir.ConstInt, *ir.ConstFloat, *ir.ConstStr, *ir.Global, *ir.Function:
			return true
		}
		if paramSet[op] {
			return true
		}
		db, defined := defBlock[op]
		if !defined {
			return false
		}
		if isPhi {
			// A phi use is logically at the end of the incoming edge.
			return dt.Dominates(db, phiPred)
		}
		if db == useB {
			return defIndex[op] < useIdx
		}
		return dt.Dominates(db, useB)
	}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if phi, ok := in.(*ir.Phi); ok {
				for _, e := range phi.Edges {
					if !validOperand(b, i, e.Val, true, e.Pred) {
						bad("block %s: phi %s edge value %s does not dominate pred %s",
							b.Label, phi.Ident(), e.Val.Ident(), e.Pred.Label)
					}
				}
				continue
			}
			for _, op := range in.Operands() {
				if !validOperand(b, i, op, false, nil) {
					bad("block %s: operand %s of %q does not dominate its use",
						b.Label, op.Ident(), in.String())
				}
			}
		}
	}
	return errs
}

func containsBlock(list []*ir.Block, b *ir.Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}
