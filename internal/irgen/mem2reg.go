// mem2reg: promotion of scalar allocas to SSA registers, following the
// classic Cytron et al. construction — phi insertion at iterated dominance
// frontiers followed by a renaming walk over the dominator tree. This is
// the same transformation LLVM's -mem2reg performs on the bytecode the
// paper analyzes.

package irgen

import (
	"safeflow/internal/cfgraph"
	"safeflow/internal/ctypes"
	"safeflow/internal/ir"
)

// Promote rewrites promotable allocas in every defined function of m into
// SSA values. An alloca is promotable when it holds a scalar (integer,
// float, or pointer) and its address is used only as the operand of loads
// and the address operand of stores — i.e. it never escapes.
func Promote(m *ir.Module) {
	for _, f := range m.Funcs {
		if !f.IsDecl {
			promoteFunc(f)
			// Phi insertion and load/store removal invalidate the dense
			// numbering assigned at lowering time.
			f.NumberValues()
		}
	}
}

func promoteFunc(f *ir.Function) {
	allocas := promotableAllocas(f)
	if len(allocas) == 0 {
		return
	}
	dt := cfgraph.NewDomTree(f)
	df := dt.Frontiers()

	// Phase 1: insert phis at iterated dominance frontiers of defs.
	phiFor := make(map[*ir.Phi]*ir.Alloca)
	for _, a := range allocas {
		defBlocks := make(map[*ir.Block]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if st, ok := in.(*ir.Store); ok && st.Addr == a {
					defBlocks[b] = true
				}
			}
		}
		hasPhi := make(map[*ir.Block]bool)
		work := make([]*ir.Block, 0, len(defBlocks))
		for b := range defBlocks {
			work = append(work, b)
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fb := range df[b] {
				if hasPhi[fb] {
					continue
				}
				hasPhi[fb] = true
				phi := &ir.Phi{Ty: a.Elem, Var: a.VarName}
				phi.SetPos(a.Pos())
				phi.SetParentBlock(fb)
				fb.Instrs = append([]ir.Instr{phi}, fb.Instrs...)
				phiFor[phi] = a
				if !defBlocks[fb] {
					defBlocks[fb] = true
					work = append(work, fb)
				}
			}
		}
	}

	// Phase 2: renaming walk over the dominator tree.
	type frame struct {
		block *ir.Block
		stack map[*ir.Alloca]ir.Value // incoming values (copied lazily)
	}
	promoted := make(map[*ir.Alloca]bool, len(allocas))
	for _, a := range allocas {
		promoted[a] = true
	}
	replacement := make(map[ir.Value]ir.Value) // load -> current value

	var rename func(b *ir.Block, incoming map[*ir.Alloca]ir.Value)
	rename = func(b *ir.Block, incoming map[*ir.Alloca]ir.Value) {
		cur := make(map[*ir.Alloca]ir.Value, len(incoming))
		for k, v := range incoming {
			cur[k] = v
		}
		var kept []ir.Instr
		for _, in := range b.Instrs {
			switch x := in.(type) {
			case *ir.Phi:
				if a, ok := phiFor[x]; ok {
					cur[a] = x
				}
				kept = append(kept, in)
			case *ir.Alloca:
				if promoted[x] {
					cur[x] = undefFor(x.Elem)
					continue // drop the alloca
				}
				kept = append(kept, in)
			case *ir.Load:
				if a, ok := x.Addr.(*ir.Alloca); ok && promoted[a] {
					v := cur[a]
					if v == nil {
						v = undefFor(a.Elem)
					}
					replacement[x] = v
					continue // drop the load
				}
				kept = append(kept, in)
			case *ir.Store:
				if a, ok := x.Addr.(*ir.Alloca); ok && promoted[a] {
					cur[a] = resolve(replacement, x.Val)
					continue // drop the store
				}
				kept = append(kept, in)
			default:
				kept = append(kept, in)
			}
		}
		b.Instrs = kept

		// Fill successor phi edges.
		for _, s := range b.Succs {
			for _, in := range s.Instrs {
				phi, ok := in.(*ir.Phi)
				if !ok {
					break // phis lead the block
				}
				a, isProm := phiFor[phi]
				if !isProm {
					continue
				}
				v := cur[a]
				if v == nil {
					v = undefFor(a.Elem)
				}
				phi.Edges = append(phi.Edges, ir.PhiEdge{Val: resolve(replacement, v), Pred: b})
			}
		}

		for _, child := range dt.Children(b) {
			rename(child, cur)
		}
	}
	rename(f.Entry(), make(map[*ir.Alloca]ir.Value))

	// Phase 3: rewrite remaining operand references to dropped loads.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			rewriteOperands(in, replacement)
		}
	}

	// Drop trivial phis (all edges identical) for cleanliness.
	simplifyPhis(f, phiFor)
}

// resolve chases replacement chains (load -> value that may itself be a
// dropped load).
func resolve(repl map[ir.Value]ir.Value, v ir.Value) ir.Value {
	for {
		next, ok := repl[v]
		if !ok {
			return v
		}
		v = next
	}
}

func undefFor(t ctypes.Type) ir.Value {
	if ctypes.IsFloat(t) {
		return &ir.ConstFloat{Val: 0, Ty: t}
	}
	return &ir.ConstInt{Val: 0, Ty: t}
}

// promotableAllocas lists allocas that hold scalars and never escape.
func promotableAllocas(f *ir.Function) []*ir.Alloca {
	escaped := make(map[*ir.Alloca]bool)
	var all []*ir.Alloca
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if a, ok := in.(*ir.Alloca); ok {
				if ctypes.IsScalar(a.Elem) {
					all = append(all, a)
				} else {
					escaped[a] = true
				}
			}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch x := in.(type) {
			case *ir.Load:
				// Using an alloca as a load address is fine.
			case *ir.Store:
				// The address operand is fine; storing the alloca's address
				// itself escapes it.
				if a, ok := x.Val.(*ir.Alloca); ok {
					escaped[a] = true
				}
			default:
				for _, op := range in.Operands() {
					if a, ok := op.(*ir.Alloca); ok {
						escaped[a] = true
					}
				}
				_ = x
			}
		}
	}
	var out []*ir.Alloca
	for _, a := range all {
		if !escaped[a] {
			out = append(out, a)
		}
	}
	return out
}

// rewriteOperands replaces dropped-load operands in place.
func rewriteOperands(in ir.Instr, repl map[ir.Value]ir.Value) {
	switch x := in.(type) {
	case *ir.Load:
		x.Addr = resolve(repl, x.Addr)
	case *ir.Store:
		x.Val = resolve(repl, x.Val)
		x.Addr = resolve(repl, x.Addr)
	case *ir.GEP:
		x.Base = resolve(repl, x.Base)
		for i := range x.Indices {
			if x.Indices[i].Index != nil {
				x.Indices[i].Index = resolve(repl, x.Indices[i].Index)
			}
		}
	case *ir.BinOp:
		x.X = resolve(repl, x.X)
		x.Y = resolve(repl, x.Y)
	case *ir.Cmp:
		x.X = resolve(repl, x.X)
		x.Y = resolve(repl, x.Y)
	case *ir.Cast:
		x.X = resolve(repl, x.X)
	case *ir.Call:
		for i := range x.Args {
			x.Args[i] = resolve(repl, x.Args[i])
		}
	case *ir.Phi:
		for i := range x.Edges {
			x.Edges[i].Val = resolve(repl, x.Edges[i].Val)
		}
	case *ir.Ret:
		if x.X != nil {
			x.X = resolve(repl, x.X)
		}
	case *ir.Br:
		if x.Cond != nil {
			x.Cond = resolve(repl, x.Cond)
		}
	}
}

// simplifyPhis removes phis whose incoming values are all the same value
// (or the phi itself), replacing uses with that value. Runs to a fixpoint.
func simplifyPhis(f *ir.Function, phiFor map[*ir.Phi]*ir.Alloca) {
	for {
		repl := make(map[ir.Value]ir.Value)
		for _, b := range f.Blocks {
			var kept []ir.Instr
			for _, in := range b.Instrs {
				phi, ok := in.(*ir.Phi)
				if !ok {
					kept = append(kept, in)
					continue
				}
				if _, isProm := phiFor[phi]; !isProm {
					kept = append(kept, in)
					continue
				}
				var uniq ir.Value
				trivial := true
				for _, e := range phi.Edges {
					if e.Val == phi {
						continue
					}
					if uniq == nil {
						uniq = e.Val
					} else if uniq != e.Val {
						trivial = false
						break
					}
				}
				if trivial && uniq != nil {
					repl[phi] = uniq
					continue // drop
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if len(repl) == 0 {
			return
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				rewriteOperands(in, repl)
			}
		}
	}
}
