// Package callgraph builds the (direct-call) call graph of an IR module,
// computes its strongly connected components with Tarjan's algorithm, and
// provides the bottom-up and top-down SCC orders that SafeFlow's
// interprocedural phases walk (paper §3.3).
package callgraph

import (
	"safeflow/internal/ir"
)

// Graph is a call graph over the defined functions of a module.
type Graph struct {
	Module *ir.Module
	// Callees lists, per function, the distinct defined functions it calls.
	Callees map[*ir.Function][]*ir.Function
	// Callers is the reverse relation.
	Callers map[*ir.Function][]*ir.Function
	// Sites lists every call instruction per caller (including calls to
	// external declarations).
	Sites map[*ir.Function][]*ir.Call

	sccs  []*SCC
	sccOf map[*ir.Function]*SCC
}

// SCC is one strongly connected component of the call graph.
type SCC struct {
	Funcs []*ir.Function
	Index int // topological index: callees have smaller Index than callers
}

// Recursive reports whether the SCC contains a cycle (more than one
// function, or a self-call).
func (s *SCC) Recursive(g *Graph) bool {
	if len(s.Funcs) > 1 {
		return true
	}
	f := s.Funcs[0]
	for _, c := range g.Callees[f] {
		if c == f {
			return true
		}
	}
	return false
}

// New builds the call graph of m.
func New(m *ir.Module) *Graph {
	g := &Graph{
		Module:  m,
		Callees: make(map[*ir.Function][]*ir.Function),
		Callers: make(map[*ir.Function][]*ir.Function),
		Sites:   make(map[*ir.Function][]*ir.Call),
		sccOf:   make(map[*ir.Function]*SCC),
	}
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		seen := make(map[*ir.Function]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				call, ok := in.(*ir.Call)
				if !ok {
					continue
				}
				g.Sites[f] = append(g.Sites[f], call)
				callee := call.Callee
				if callee.IsDecl || seen[callee] {
					continue
				}
				seen[callee] = true
				g.Callees[f] = append(g.Callees[f], callee)
				g.Callers[callee] = append(g.Callers[callee], f)
			}
		}
	}
	g.tarjan()
	return g
}

// tarjan computes SCCs; the discovery order of Tarjan's algorithm emits
// components in reverse topological order (callees first), which is
// exactly the bottom-up order.
func (g *Graph) tarjan() {
	index := 0
	indices := make(map[*ir.Function]int)
	low := make(map[*ir.Function]int)
	onStack := make(map[*ir.Function]bool)
	var stack []*ir.Function

	var strong func(f *ir.Function)
	strong = func(f *ir.Function) {
		indices[f] = index
		low[f] = index
		index++
		stack = append(stack, f)
		onStack[f] = true
		for _, c := range g.Callees[f] {
			if _, seen := indices[c]; !seen {
				strong(c)
				if low[c] < low[f] {
					low[f] = low[c]
				}
			} else if onStack[c] && indices[c] < low[f] {
				low[f] = indices[c]
			}
		}
		if low[f] == indices[f] {
			scc := &SCC{Index: len(g.sccs)}
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				scc.Funcs = append(scc.Funcs, top)
				g.sccOf[top] = scc
				if top == f {
					break
				}
			}
			g.sccs = append(g.sccs, scc)
		}
	}

	for _, f := range g.Module.Funcs {
		if f.IsDecl {
			continue
		}
		if _, seen := indices[f]; !seen {
			strong(f)
		}
	}
}

// SCCOf returns the component containing f (nil for declarations).
func (g *Graph) SCCOf(f *ir.Function) *SCC { return g.sccOf[f] }

// BottomUp returns SCCs in bottom-up order: every callee SCC appears
// before its callers.
func (g *Graph) BottomUp() []*SCC { return g.sccs }

// TopDown returns SCCs in top-down order: callers before callees.
func (g *Graph) TopDown() []*SCC {
	out := make([]*SCC, len(g.sccs))
	for i, s := range g.sccs {
		out[len(g.sccs)-1-i] = s
	}
	return out
}

// ReachableFrom returns the set of defined functions reachable from the
// named roots (used to scope analysis to the core component's entry).
func (g *Graph) ReachableFrom(roots ...*ir.Function) map[*ir.Function]bool {
	seen := make(map[*ir.Function]bool)
	var visit func(f *ir.Function)
	visit = func(f *ir.Function) {
		if f == nil || f.IsDecl || seen[f] {
			return
		}
		seen[f] = true
		for _, c := range g.Callees[f] {
			visit(c)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}
