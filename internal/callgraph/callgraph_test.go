package callgraph

import (
	"testing"

	"safeflow/internal/ctypes"
	"safeflow/internal/ir"
)

// buildModule creates defined functions with the given call edges.
func buildModule(names []string, calls [][2]int) (*ir.Module, []*ir.Function) {
	m := ir.NewModule("t")
	fns := make([]*ir.Function, len(names))
	for i, n := range names {
		f := &ir.Function{Name: n, Sig: &ctypes.Func{Result: ctypes.VoidType}}
		m.AddFunc(f)
		fns[i] = f
	}
	blocks := make([]*ir.Block, len(names))
	for i, f := range fns {
		blocks[i] = f.NewBlock("entry")
	}
	for _, c := range calls {
		blocks[c[0]].Append(&ir.Call{Callee: fns[c[1]]})
	}
	for _, b := range blocks {
		ir.Terminate(b, &ir.Ret{})
	}
	return m, fns
}

func TestCallEdges(t *testing.T) {
	m, fns := buildModule([]string{"main", "a", "b"}, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	g := New(m)
	if len(g.Callees[fns[0]]) != 2 {
		t.Errorf("main callees = %v", g.Callees[fns[0]])
	}
	if len(g.Callers[fns[2]]) != 2 {
		t.Errorf("b callers = %v", g.Callers[fns[2]])
	}
	if len(g.Sites[fns[0]]) != 2 {
		t.Errorf("main call sites = %d", len(g.Sites[fns[0]]))
	}
}

func TestDuplicateCallsDeduped(t *testing.T) {
	m, fns := buildModule([]string{"main", "a"}, [][2]int{{0, 1}, {0, 1}, {0, 1}})
	g := New(m)
	if len(g.Callees[fns[0]]) != 1 {
		t.Errorf("callees = %v, want deduped to 1", g.Callees[fns[0]])
	}
	if len(g.Sites[fns[0]]) != 3 {
		t.Errorf("sites = %d, want all 3", len(g.Sites[fns[0]]))
	}
}

func TestBottomUpOrder(t *testing.T) {
	// main -> a -> b: bottom-up must yield b before a before main.
	m, fns := buildModule([]string{"main", "a", "b"}, [][2]int{{0, 1}, {1, 2}})
	g := New(m)
	order := g.BottomUp()
	pos := map[*ir.Function]int{}
	for i, scc := range order {
		for _, f := range scc.Funcs {
			pos[f] = i
		}
	}
	if !(pos[fns[2]] < pos[fns[1]] && pos[fns[1]] < pos[fns[0]]) {
		t.Errorf("bottom-up positions: main=%d a=%d b=%d", pos[fns[0]], pos[fns[1]], pos[fns[2]])
	}
	td := g.TopDown()
	if td[0].Funcs[0] != fns[0] {
		t.Errorf("top-down first = %v", td[0].Funcs[0].Name)
	}
}

func TestSCCCycle(t *testing.T) {
	// a <-> b form one SCC; main above them.
	m, fns := buildModule([]string{"main", "a", "b"}, [][2]int{{0, 1}, {1, 2}, {2, 1}})
	g := New(m)
	sa, sb := g.SCCOf(fns[1]), g.SCCOf(fns[2])
	if sa != sb {
		t.Fatal("mutually recursive functions in different SCCs")
	}
	if len(sa.Funcs) != 2 {
		t.Errorf("SCC size = %d, want 2", len(sa.Funcs))
	}
	if !sa.Recursive(g) {
		t.Error("cycle SCC not marked recursive")
	}
	if g.SCCOf(fns[0]).Recursive(g) {
		t.Error("main wrongly recursive")
	}
}

func TestSelfRecursion(t *testing.T) {
	m, fns := buildModule([]string{"f"}, [][2]int{{0, 0}})
	g := New(m)
	if !g.SCCOf(fns[0]).Recursive(g) {
		t.Error("self-recursive function not marked recursive")
	}
}

func TestExternalCalleesExcluded(t *testing.T) {
	m := ir.NewModule("t")
	ext := &ir.Function{Name: "printf", Sig: &ctypes.Func{Result: ctypes.IntType, Variadic: true}, IsDecl: true}
	m.AddFunc(ext)
	f := &ir.Function{Name: "main", Sig: &ctypes.Func{Result: ctypes.VoidType}}
	m.AddFunc(f)
	b := f.NewBlock("entry")
	b.Append(&ir.Call{Callee: ext})
	ir.Terminate(b, &ir.Ret{})
	g := New(m)
	if len(g.Callees[f]) != 0 {
		t.Errorf("external callee in graph: %v", g.Callees[f])
	}
	if len(g.Sites[f]) != 1 {
		t.Errorf("external call site missing")
	}
}

func TestReachableFrom(t *testing.T) {
	m, fns := buildModule([]string{"main", "a", "b", "dead"}, [][2]int{{0, 1}, {1, 2}})
	g := New(m)
	reach := g.ReachableFrom(fns[0])
	if !reach[fns[0]] || !reach[fns[1]] || !reach[fns[2]] {
		t.Errorf("reachable set incomplete: %v", reach)
	}
	if reach[fns[3]] {
		t.Error("dead function marked reachable")
	}
}
