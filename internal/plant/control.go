// Controller synthesis for the Simplex architecture: zero-order-hold
// discretization, the discrete-time LQR (iterated Riccati recursion) used
// to derive both the conservative safety controller and the aggressive
// complex controller, and the discrete Lyapunov equation whose solution P
// defines the stability envelope xᵀPx ≤ c that the decision module's
// recoverability monitor checks (the Simplex architecture's monitor [22]).

package plant

import (
	"fmt"
	"math"
)

// Discretize converts ẋ = Ax + Bu to x⁺ = Ad x + Bd u under a zero-order
// hold of period dt, using the scaled truncated series for the matrix
// exponential (ample accuracy for the well-conditioned lab plants).
func Discretize(A, B Mat, dt float64) (Ad, Bd Mat) {
	n := A.R
	// Scale so the series converges quickly: A*dt / 2^s small.
	norm := 0.0
	for _, v := range A.A {
		norm += math.Abs(v)
	}
	s := 0
	for norm*dt > 0.5 && s < 30 {
		dt2 := dt / math.Pow(2, float64(s))
		if norm*dt2 <= 0.5 {
			break
		}
		s++
	}
	h := dt / math.Pow(2, float64(s))

	// exp(A h) and ∫exp(A t)dt over [0, h] by truncated series.
	Ad = Eye(n)
	intA := Eye(n).Scale(h) // ∫ = h*I + h²A/2 + ...
	term := Eye(n)
	intTerm := Eye(n).Scale(h)
	for k := 1; k <= 16; k++ {
		term = term.Mul(A).Scale(h / float64(k))
		Ad = Ad.Add(term)
		intTerm = intTerm.Mul(A).Scale(h / float64(k+1))
		intA = intA.Add(intTerm)
	}
	Bd = intA.Mul(B)

	// Undo scaling: squaring steps with Bd' = (Ad+I)Bd... exact relation:
	// over 2h, Ad2 = Ad², Bd2 = Ad·Bd + Bd.
	for i := 0; i < s; i++ {
		Bd = Ad.Mul(Bd).Add(Bd)
		Ad = Ad.Mul(Ad)
	}
	return Ad, Bd
}

// DLQR solves the infinite-horizon discrete LQR problem for a single
// input by iterating the Riccati recursion to convergence, returning the
// feedback gain row K with u = -K·x.
func DLQR(Ad, Bd, Q Mat, R float64) ([]float64, error) {
	n := Ad.R
	P := Q.Clone()
	At := Ad.T()
	Bt := Bd.T()
	for iter := 0; iter < 10000; iter++ {
		// K = (R + BᵀPB)⁻¹ BᵀPA  (scalar denominator for single input)
		BtP := Bt.Mul(P)
		den := R + BtP.Mul(Bd).At(0, 0)
		if math.Abs(den) < 1e-15 {
			return nil, fmt.Errorf("plant: DLQR denominator vanished")
		}
		KMat := BtP.Mul(Ad).Scale(1 / den) // 1×n
		// P' = Q + Aᵀ P (A - B K)
		AcL := Ad.Sub(Bd.Mul(KMat))
		Pn := Q.Add(At.Mul(P).Mul(AcL))
		diff := Pn.MaxAbsDiff(P)
		P = Pn
		if diff < 1e-12 {
			K := make([]float64, n)
			for j := 0; j < n; j++ {
				K[j] = KMat.At(0, j)
			}
			return K, nil
		}
	}
	return nil, fmt.Errorf("plant: DLQR Riccati iteration did not converge")
}

// DLyap solves the discrete Lyapunov equation P = Acl' P Acl + Q for a
// stable closed-loop Acl by fixed-point iteration, returning P. The level
// set {x : xᵀPx ≤ c} is the Simplex stability envelope.
func DLyap(Acl, Q Mat) (Mat, error) {
	At := Acl.T()
	P := Q.Clone()
	for iter := 0; iter < 20000; iter++ {
		Pn := Q.Add(At.Mul(P).Mul(Acl))
		diff := Pn.MaxAbsDiff(P)
		P = Pn
		if diff < 1e-12 {
			return P, nil
		}
		if diff > 1e12 {
			return Mat{}, fmt.Errorf("plant: DLyap diverged — closed loop unstable")
		}
	}
	return Mat{}, fmt.Errorf("plant: DLyap did not converge")
}

// SpectralRadius estimates the spectral radius of M by power iteration
// with per-step growth averaging over the tail iterations (Gelfand's
// formula ρ = lim ‖Mᵏ‖^{1/k}); used to confirm synthesized closed loops
// are stable (ρ < 1).
func SpectralRadius(M Mat, iters int) float64 {
	n := M.R
	x := make([]float64, n)
	for i := range x {
		// A fixed, component-diverse start vector avoids landing in an
		// invariant subspace for the structured matrices seen here.
		x[i] = 1 + float64(i)*0.37
	}
	norm := math.Sqrt(Dot(x, x))
	x = VecScale(1/norm, x)

	logSum := 0.0
	counted := 0
	for k := 0; k < iters; k++ {
		y := M.MulVec(x)
		g := math.Sqrt(Dot(y, y))
		if g == 0 {
			return 0
		}
		x = VecScale(1/g, y)
		if k >= iters/2 { // average growth over the settled tail
			logSum += math.Log(g)
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return math.Exp(logSum / float64(counted))
}
