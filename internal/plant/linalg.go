// Dense linear algebra for the plant models and the Simplex controller
// synthesis: the small fixed-size systems here (≤ 6 states) need only
// straightforward dense routines.

package plant

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	A    []float64
}

// NewMat returns an R×C zero matrix.
func NewMat(r, c int) Mat { return Mat{R: r, C: c, A: make([]float64, r*c)} }

// MatFrom builds a matrix from rows (which must be rectangular).
func MatFrom(rows [][]float64) Mat {
	r := len(rows)
	if r == 0 {
		return Mat{}
	}
	c := len(rows[0])
	m := NewMat(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("plant: ragged matrix row %d: %d != %d", i, len(row), c))
		}
		copy(m.A[i*c:], row)
	}
	return m
}

// Eye returns the n×n identity.
func Eye(n int) Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m Mat) At(i, j int) float64 { return m.A[i*m.C+j] }

// Set assigns element (i, j).
func (m Mat) Set(i, j int, v float64) { m.A[i*m.C+j] = v }

// Clone copies the matrix.
func (m Mat) Clone() Mat {
	out := NewMat(m.R, m.C)
	copy(out.A, m.A)
	return out
}

// Add returns m + n.
func (m Mat) Add(n Mat) Mat {
	mustSameShape(m, n)
	out := NewMat(m.R, m.C)
	for i := range m.A {
		out.A[i] = m.A[i] + n.A[i]
	}
	return out
}

// Sub returns m - n.
func (m Mat) Sub(n Mat) Mat {
	mustSameShape(m, n)
	out := NewMat(m.R, m.C)
	for i := range m.A {
		out.A[i] = m.A[i] - n.A[i]
	}
	return out
}

// Scale returns k*m.
func (m Mat) Scale(k float64) Mat {
	out := NewMat(m.R, m.C)
	for i := range m.A {
		out.A[i] = k * m.A[i]
	}
	return out
}

// Mul returns m*n.
func (m Mat) Mul(n Mat) Mat {
	if m.C != n.R {
		panic(fmt.Sprintf("plant: dimension mismatch %dx%d * %dx%d", m.R, m.C, n.R, n.C))
	}
	out := NewMat(m.R, n.C)
	for i := 0; i < m.R; i++ {
		for k := 0; k < m.C; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < n.C; j++ {
				out.A[i*out.C+j] += a * n.At(k, j)
			}
		}
	}
	return out
}

// T returns the transpose.
func (m Mat) T() Mat {
	out := NewMat(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MulVec returns m*x.
func (m Mat) MulVec(x []float64) []float64 {
	if m.C != len(x) {
		panic(fmt.Sprintf("plant: dimension mismatch %dx%d * vec%d", m.R, m.C, len(x)))
	}
	out := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		s := 0.0
		for j := 0; j < m.C; j++ {
			s += m.At(i, j) * x[j]
		}
		out[i] = s
	}
	return out
}

// Inv returns the inverse via Gauss–Jordan elimination with partial
// pivoting, or an error for singular matrices.
func (m Mat) Inv() (Mat, error) {
	if m.R != m.C {
		return Mat{}, fmt.Errorf("plant: cannot invert %dx%d matrix", m.R, m.C)
	}
	n := m.R
	aug := NewMat(n, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			aug.Set(i, j, m.At(i, j))
		}
		aug.Set(i, n+i, 1)
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return Mat{}, fmt.Errorf("plant: singular matrix (pivot %g at column %d)", best, col)
		}
		if pivot != col {
			for j := 0; j < 2*n; j++ {
				a, b := aug.At(col, j), aug.At(pivot, j)
				aug.Set(col, j, b)
				aug.Set(pivot, j, a)
			}
		}
		p := aug.At(col, col)
		for j := 0; j < 2*n; j++ {
			aug.Set(col, j, aug.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				aug.Set(r, j, aug.At(r, j)-f*aug.At(col, j))
			}
		}
	}
	out := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, aug.At(i, n+j))
		}
	}
	return out, nil
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func (m Mat) MaxAbsDiff(n Mat) float64 {
	mustSameShape(m, n)
	max := 0.0
	for i := range m.A {
		if d := math.Abs(m.A[i] - n.A[i]); d > max {
			max = d
		}
	}
	return max
}

func mustSameShape(m, n Mat) {
	if m.R != n.R || m.C != n.C {
		panic(fmt.Sprintf("plant: shape mismatch %dx%d vs %dx%d", m.R, m.C, n.R, n.C))
	}
}

// Quad computes the quadratic form xᵀ M x.
func (m Mat) Quad(x []float64) float64 {
	y := m.MulVec(x)
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// VecAdd returns a + b.
func VecAdd(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// VecScale returns k*a.
func VecScale(k float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = k * a[i]
	}
	return out
}

// Dot returns aᵀb.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
