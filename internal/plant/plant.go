// Package plant provides the physical-plant substrate of the paper's
// evaluation systems: the inverted pendulum on a cart (Figure 1), the
// double inverted pendulum, and a generic linear plant configurable like
// the "generic Simplex" system, together with numerical integrators and
// the controller-synthesis routines (discrete LQR, discrete Lyapunov)
// that the Simplex architecture's safety controller and recoverability
// monitor are built from.
package plant

import (
	"fmt"
	"math"
)

// Dynamics is a continuous-time dynamical system ẋ = f(x, u) with a
// single control input.
type Dynamics interface {
	// Derive returns dx/dt at state x under control u.
	Derive(x []float64, u float64) []float64
	// Dim returns the state dimension.
	Dim() int
}

// Linearizable exposes a linearization around the upright equilibrium.
type Linearizable interface {
	Dynamics
	// Linearize returns (A, B) with ẋ ≈ Ax + Bu near the equilibrium.
	Linearize() (A, B Mat)
}

// ---------------------------------------------------------------------------
// Integrators

// RK4 advances x one step of size dt under constant control u using the
// classical fourth-order Runge–Kutta method.
func RK4(d Dynamics, x []float64, u, dt float64) []float64 {
	k1 := d.Derive(x, u)
	k2 := d.Derive(VecAdd(x, VecScale(dt/2, k1)), u)
	k3 := d.Derive(VecAdd(x, VecScale(dt/2, k2)), u)
	k4 := d.Derive(VecAdd(x, VecScale(dt, k3)), u)
	sum := VecAdd(VecAdd(k1, VecScale(2, k2)), VecAdd(VecScale(2, k3), k4))
	return VecAdd(x, VecScale(dt/6, sum))
}

// Euler advances x one explicit-Euler step (the cheap integrator the
// embedded controllers themselves use for prediction).
func Euler(d Dynamics, x []float64, u, dt float64) []float64 {
	return VecAdd(x, VecScale(dt, d.Derive(x, u)))
}

// ---------------------------------------------------------------------------
// Inverted pendulum on a cart (Figure 1)

// Pendulum is the nonlinear cart-pole: state [track, trackVel, angle,
// angleVel], control = horizontal force on the cart (the paper's ±5 V
// actuator maps linearly to force).
type Pendulum struct {
	MCart   float64 // cart mass (kg)
	MPole   float64 // pole mass (kg)
	Length  float64 // pole half-length (m)
	Gravity float64 // m/s^2
}

// DefaultPendulum returns the lab-scale parameters used throughout the
// examples and benchmarks.
func DefaultPendulum() *Pendulum {
	return &Pendulum{MCart: 1.0, MPole: 0.1, Length: 0.5, Gravity: 9.81}
}

// Dim implements Dynamics.
func (p *Pendulum) Dim() int { return 4 }

// Derive implements Dynamics (standard cart-pole equations, angle measured
// from upright).
func (p *Pendulum) Derive(x []float64, u float64) []float64 {
	_, dv, th, dth := x[0], x[1], x[2], x[3]
	_ = dv
	sin, cos := math.Sin(th), math.Cos(th)
	total := p.MCart + p.MPole
	ml := p.MPole * p.Length

	den := total - p.MPole*cos*cos
	ddth := (total*p.Gravity*sin - cos*(u+ml*dth*dth*sin)) / (p.Length * (4.0/3.0*total - p.MPole*cos*cos))
	ddx := (u + ml*(dth*dth*sin-ddth*cos)) / total
	_ = den
	return []float64{x[1], ddx, x[3], ddth}
}

// Linearize implements Linearizable (small-angle upright equilibrium).
func (p *Pendulum) Linearize() (Mat, Mat) {
	total := p.MCart + p.MPole
	l := p.Length
	g := p.Gravity
	den := l * (4.0/3.0*total - p.MPole)
	a23 := -p.MPole * g / (4.0/3.0*total - p.MPole)
	a43 := total * g / den
	b2 := (1 + p.MPole/(4.0/3.0*total-p.MPole)) / total
	b4 := -1 / den
	A := MatFrom([][]float64{
		{0, 1, 0, 0},
		{0, 0, a23, 0},
		{0, 0, 0, 1},
		{0, 0, a43, 0},
	})
	B := MatFrom([][]float64{{0}, {b2}, {0}, {b4}})
	return A, B
}

// ---------------------------------------------------------------------------
// Double inverted pendulum on a cart

// DoublePendulum is the serial double inverted pendulum on a cart,
// linearized about the upright equilibrium (the nonlinear simulation uses
// the linearized model plus a saturation — adequate for the control-mode
// behaviors the double-IP corpus system exercises). State: [track,
// trackVel, angle1, angleVel1, angle2, angleVel2].
type DoublePendulum struct {
	MCart   float64
	M1, M2  float64 // link masses
	L1, L2  float64 // link half-lengths
	Gravity float64
}

// DefaultDoublePendulum returns lab-scale parameters.
func DefaultDoublePendulum() *DoublePendulum {
	return &DoublePendulum{MCart: 1.5, M1: 0.5, M2: 0.25, L1: 0.5, L2: 0.25, Gravity: 9.81}
}

// Dim implements Dynamics.
func (d *DoublePendulum) Dim() int { return 6 }

// Linearize implements Linearizable using the standard mass-matrix
// formulation: M q̈ = K q + F u with q = [track, angle1, angle2].
func (d *DoublePendulum) Linearize() (Mat, Mat) {
	m0, m1, m2 := d.MCart, d.M1, d.M2
	l1, l2 := d.L1, d.L2
	g := d.Gravity

	// Mass matrix (about the upright equilibrium).
	M := MatFrom([][]float64{
		{m0 + m1 + m2, (m1/2 + m2) * l1, m2 * l2 / 2},
		{(m1/2 + m2) * l1, (m1/3 + m2) * l1 * l1, m2 * l1 * l2 / 2},
		{m2 * l2 / 2, m2 * l1 * l2 / 2, m2 * l2 * l2 / 3},
	})
	// Gravity stiffness.
	K := MatFrom([][]float64{
		{0, 0, 0},
		{0, (m1/2 + m2) * l1 * g, 0},
		{0, 0, m2 * l2 * g / 2},
	})
	F := MatFrom([][]float64{{1}, {0}, {0}})

	Minv, err := M.Inv()
	if err != nil {
		panic(fmt.Sprintf("plant: double-pendulum mass matrix singular: %v", err))
	}
	MK := Minv.Mul(K)
	MF := Minv.Mul(F)

	A := NewMat(6, 6)
	B := NewMat(6, 1)
	// Positions: x0=track, x2=angle1, x4=angle2; velocities interleaved.
	for qi := 0; qi < 3; qi++ {
		A.Set(2*qi, 2*qi+1, 1)
		for qj := 0; qj < 3; qj++ {
			A.Set(2*qi+1, 2*qj, MK.At(qi, qj))
		}
		B.Set(2*qi+1, 0, MF.At(qi, 0))
	}
	return A, B
}

// Derive implements Dynamics via the linearized model (sufficient near
// upright, where the Simplex monitor keeps the system).
func (d *DoublePendulum) Derive(x []float64, u float64) []float64 {
	A, B := d.Linearize()
	dx := A.MulVec(x)
	bu := B.MulVec([]float64{u})
	return VecAdd(dx, bu)
}

// ---------------------------------------------------------------------------
// Generic configurable LTI plant (the "generic Simplex" substrate)

// LTI is a linear plant ẋ = Ax + Bu defined by a configuration, as used
// by the generic Simplex implementation ("a configuration file that can
// be customized for different plants").
type LTI struct {
	A Mat
	B Mat
}

// Dim implements Dynamics.
func (p *LTI) Dim() int { return p.A.R }

// Derive implements Dynamics.
func (p *LTI) Derive(x []float64, u float64) []float64 {
	return VecAdd(p.A.MulVec(x), p.B.MulVec([]float64{u}))
}

// Linearize implements Linearizable (an LTI is its own linearization).
func (p *LTI) Linearize() (Mat, Mat) { return p.A, p.B }

// Validate checks the configuration shapes.
func (p *LTI) Validate() error {
	if p.A.R != p.A.C {
		return fmt.Errorf("plant: A must be square, got %dx%d", p.A.R, p.A.C)
	}
	if p.B.R != p.A.R || p.B.C != 1 {
		return fmt.Errorf("plant: B must be %dx1, got %dx%d", p.A.R, p.B.R, p.B.C)
	}
	return nil
}
