package plant

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatInv(t *testing.T) {
	m := MatFrom([][]float64{
		{4, 7, 2},
		{3, 6, 1},
		{2, 5, 3},
	})
	inv, err := m.Inv()
	if err != nil {
		t.Fatalf("Inv: %v", err)
	}
	prod := m.Mul(inv)
	if d := prod.MaxAbsDiff(Eye(3)); d > 1e-9 {
		t.Errorf("M*M^-1 differs from I by %g", d)
	}
}

func TestMatInvSingular(t *testing.T) {
	m := MatFrom([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := m.Inv(); err == nil {
		t.Error("expected error inverting singular matrix")
	}
}

// Property: for random well-conditioned diagonal-dominant matrices,
// inversion round-trips.
func TestQuickMatInvRoundTrip(t *testing.T) {
	f := func(a, b, c, d int8) bool {
		m := MatFrom([][]float64{
			{float64(a)/16 + 8, float64(b) / 32},
			{float64(c) / 32, float64(d)/16 + 8},
		})
		inv, err := m.Inv()
		if err != nil {
			return false
		}
		return m.Mul(inv).MaxAbsDiff(Eye(2)) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiscretizeDoubleIntegrator(t *testing.T) {
	// ẋ = v, v̇ = u has an exact ZOH discretization:
	// Ad = [1 dt; 0 1], Bd = [dt²/2; dt].
	A := MatFrom([][]float64{{0, 1}, {0, 0}})
	B := MatFrom([][]float64{{0}, {1}})
	dt := 0.01
	Ad, Bd := Discretize(A, B, dt)
	if math.Abs(Ad.At(0, 1)-dt) > 1e-12 || math.Abs(Ad.At(0, 0)-1) > 1e-12 {
		t.Errorf("Ad = %+v", Ad)
	}
	if math.Abs(Bd.At(0, 0)-dt*dt/2) > 1e-12 || math.Abs(Bd.At(1, 0)-dt) > 1e-12 {
		t.Errorf("Bd = %+v", Bd)
	}
}

func TestDLQRStabilizesPendulum(t *testing.T) {
	p := DefaultPendulum()
	A, B := p.Linearize()
	dt := 0.01
	Ad, Bd := Discretize(A, B, dt)
	Q := Eye(4)
	Q.Set(2, 2, 10) // weight the angle
	K, err := DLQR(Ad, Bd, Q, 0.1)
	if err != nil {
		t.Fatalf("DLQR: %v", err)
	}

	// The closed loop must be stable.
	KMat := NewMat(1, 4)
	for j, k := range K {
		KMat.Set(0, j, k)
	}
	Acl := Ad.Sub(Bd.Mul(KMat))
	if rho := SpectralRadius(Acl, 500); rho >= 1.0 {
		t.Fatalf("closed-loop spectral radius %g >= 1", rho)
	}

	// Simulating the nonlinear plant from a 0.2 rad tilt must balance it.
	x := []float64{0, 0, 0.2, 0}
	for step := 0; step < 3000; step++ {
		u := -Dot(K, x)
		if u > 20 {
			u = 20
		}
		if u < -20 {
			u = -20
		}
		x = RK4(p, x, u, dt)
	}
	if math.Abs(x[2]) > 0.01 {
		t.Errorf("pendulum angle after 30s = %g rad, not balanced", x[2])
	}
}

func TestDLyapEnvelope(t *testing.T) {
	p := DefaultPendulum()
	A, B := p.Linearize()
	Ad, Bd := Discretize(A, B, 0.01)
	K, err := DLQR(Ad, Bd, Eye(4), 0.1)
	if err != nil {
		t.Fatalf("DLQR: %v", err)
	}
	KMat := NewMat(1, 4)
	for j, k := range K {
		KMat.Set(0, j, k)
	}
	Acl := Ad.Sub(Bd.Mul(KMat))
	P, err := DLyap(Acl, Eye(4))
	if err != nil {
		t.Fatalf("DLyap: %v", err)
	}

	// P must satisfy the Lyapunov property: V decreases along closed-loop
	// trajectories. Check V(Acl x) < V(x) for sample states.
	for _, x := range [][]float64{
		{0.1, 0, 0.05, 0},
		{-0.2, 0.1, -0.03, 0.02},
		{0, 0, 0.1, -0.1},
	} {
		v0 := P.Quad(x)
		x1 := Acl.MulVec(x)
		v1 := P.Quad(x1)
		if v1 >= v0 {
			t.Errorf("V not decreasing: V=%g then %g for x=%v", v0, v1, x)
		}
	}
}

func TestDoublePendulumLinearization(t *testing.T) {
	d := DefaultDoublePendulum()
	A, B := d.Linearize()
	if A.R != 6 || A.C != 6 || B.R != 6 || B.C != 1 {
		t.Fatalf("shapes: A %dx%d, B %dx%d", A.R, A.C, B.R, B.C)
	}
	// Upright equilibrium is unstable: gravity terms must be positive on
	// the angle accelerations' own angles.
	if A.At(3, 2) <= 0 {
		t.Errorf("A[3][2] = %g, want positive (unstable upright)", A.At(3, 2))
	}
	// And DLQR must still stabilize it.
	Ad, Bd := Discretize(A, B, 0.005)
	Q := Eye(6)
	Q.Set(2, 2, 20)
	Q.Set(4, 4, 20)
	K, err := DLQR(Ad, Bd, Q, 0.05)
	if err != nil {
		t.Fatalf("DLQR: %v", err)
	}
	KMat := NewMat(1, 6)
	for j, k := range K {
		KMat.Set(0, j, k)
	}
	Acl := Ad.Sub(Bd.Mul(KMat))
	if rho := SpectralRadius(Acl, 800); rho >= 1.0 {
		t.Errorf("double-IP closed-loop spectral radius %g >= 1", rho)
	}
}

func TestRK4MatchesExactLinear(t *testing.T) {
	// ẋ = -x has exact solution e^{-t}; RK4 with dt=0.1 should be accurate
	// to ~1e-6 over one unit of time.
	sys := &LTI{A: MatFrom([][]float64{{-1}}), B: MatFrom([][]float64{{0}})}
	x := []float64{1}
	for i := 0; i < 10; i++ {
		x = RK4(sys, x, 0, 0.1)
	}
	want := math.Exp(-1)
	if math.Abs(x[0]-want) > 1e-6 {
		t.Errorf("RK4 result %g, want %g", x[0], want)
	}
}

func TestLTIValidate(t *testing.T) {
	bad := &LTI{A: MatFrom([][]float64{{0, 1}}), B: MatFrom([][]float64{{1}})}
	if err := bad.Validate(); err == nil {
		t.Error("expected validation error for non-square A")
	}
	good := &LTI{A: Eye(2), B: MatFrom([][]float64{{0}, {1}})}
	if err := good.Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}
