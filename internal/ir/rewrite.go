package ir

// RewriteOperands replaces instruction operands in place throughout fn:
// every operand v becomes repl(v) when repl returns non-nil. Block
// references (branch targets, phi predecessors) are intra-function and
// are left untouched. The incremental frontend's fragment linker uses
// this to rewire per-fragment function and global references onto the
// linked module's canonical objects.
func RewriteOperands(fn *Function, repl func(Value) Value) {
	sub := func(v Value) Value {
		if v == nil {
			return nil
		}
		if n := repl(v); n != nil {
			return n
		}
		return v
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch x := in.(type) {
			case *Load:
				x.Addr = sub(x.Addr)
			case *Store:
				x.Val = sub(x.Val)
				x.Addr = sub(x.Addr)
			case *GEP:
				x.Base = sub(x.Base)
				for i := range x.Indices {
					if x.Indices[i].Index != nil {
						x.Indices[i].Index = sub(x.Indices[i].Index)
					}
				}
			case *BinOp:
				x.X = sub(x.X)
				x.Y = sub(x.Y)
			case *Cmp:
				x.X = sub(x.X)
				x.Y = sub(x.Y)
			case *Cast:
				x.X = sub(x.X)
			case *Call:
				if nf, ok := sub(x.Callee).(*Function); ok {
					x.Callee = nf
				}
				for i := range x.Args {
					x.Args[i] = sub(x.Args[i])
				}
			case *Phi:
				for i := range x.Edges {
					x.Edges[i].Val = sub(x.Edges[i].Val)
				}
			case *Ret:
				x.X = sub(x.X)
			case *Br:
				x.Cond = sub(x.Cond)
			}
		}
	}
}
