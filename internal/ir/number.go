// Dense per-function value and instruction numbering. The analyses index
// their fact tables and worklists by these numbers (slice storage instead
// of map storage on the solver hot path); irgen assigns the numbering
// after lowering and refreshes it after mem2reg, so analysis passes can
// rely on it without recomputing.

package ir

// NumberValues assigns the function's dense numbering: parameters take
// 0..len(Params)-1 (their Index), every value-producing instruction takes
// the next number in block order, and every instruction (value-producing
// or not) additionally gets a dense instruction index. It returns the
// number of numbered values. Safe to call again after the block or
// instruction lists change; not safe concurrently with readers.
func (f *Function) NumberValues() int {
	nv := len(f.Params)
	ni := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			in.setInstrIndex(ni)
			ni++
			if _, isVal := in.(Value); !isVal {
				in.setValueNum(-1)
				continue
			}
			in.setValueNum(nv)
			nv++
		}
	}
	f.numValues = nv
	f.numInstrs = ni
	return nv
}

// NumValues returns the size of the value numbering assigned by
// NumberValues (0 if never assigned).
func (f *Function) NumValues() int { return f.numValues }

// NumInstrs returns the number of instructions indexed by NumberValues.
func (f *Function) NumInstrs() int { return f.numInstrs }

// ValueNum returns v's dense value number within its function, or -1 for
// values outside the numbering (constants, globals, function references,
// or instructions of a function that was never numbered).
func ValueNum(v Value) int {
	switch x := v.(type) {
	case *Param:
		return x.Index
	case Instr:
		return x.valueNum()
	}
	return -1
}

// InstrIndex returns in's dense instruction index within its function, or
// -1 if the function was never numbered.
func InstrIndex(in Instr) int { return in.instrIndex() }
