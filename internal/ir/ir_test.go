package ir

import (
	"strings"
	"testing"

	"safeflow/internal/ctypes"
)

func TestModuleRegistry(t *testing.T) {
	m := NewModule("t")
	g := &Global{Name: "g", Elem: ctypes.DoubleType}
	m.AddGlobal(g)
	if m.GlobalByName("g") != g || m.GlobalByName("missing") != nil {
		t.Error("global registry broken")
	}
	f := &Function{Name: "f", Sig: &ctypes.Func{Result: ctypes.VoidType}}
	m.AddFunc(f)
	if m.FuncByName("f") != f || f.Module != m {
		t.Error("function registry broken")
	}
}

func TestValueTypes(t *testing.T) {
	ci := &ConstInt{Val: 42, Ty: ctypes.IntType}
	if ci.Ident() != "42" || ci.Type() != ctypes.IntType {
		t.Error("ConstInt")
	}
	cf := &ConstFloat{Val: 1.5, Ty: ctypes.DoubleType}
	if cf.Ident() != "1.5" {
		t.Errorf("ConstFloat ident = %q", cf.Ident())
	}
	cs := &ConstStr{Val: "hi"}
	if !ctypes.IsPointer(cs.Type()) {
		t.Error("ConstStr must be char*")
	}
	g := &Global{Name: "g", Elem: ctypes.IntType}
	if g.Ident() != "@g" || !ctypes.IsPointer(g.Type()) {
		t.Error("Global value semantics: the value is the address")
	}
}

func TestBlockAppendAndTerminate(t *testing.T) {
	f := &Function{Name: "f", Sig: &ctypes.Func{Result: ctypes.VoidType}}
	b0 := f.NewBlock("entry")
	b1 := f.NewBlock("next")
	if b0.Term() != nil {
		t.Error("fresh block has a terminator")
	}
	Terminate(b0, &Br{Then: b1})
	if b0.Term() == nil {
		t.Error("terminator missing")
	}
	if len(b0.Succs) != 1 || b0.Succs[0] != b1 || len(b1.Preds) != 1 {
		t.Error("CFG edges not wired")
	}
	// Terminating twice is a no-op (if/else arms both returning).
	Terminate(b0, &Ret{})
	if _, ok := b0.Term().(*Br); !ok {
		t.Error("second terminator replaced the first")
	}
}

func TestAppendToTerminatedPanics(t *testing.T) {
	f := &Function{Name: "f", Sig: &ctypes.Func{Result: ctypes.VoidType}}
	b := f.NewBlock("entry")
	Terminate(b, &Ret{})
	defer func() {
		if recover() == nil {
			t.Error("append to terminated block did not panic")
		}
	}()
	b.Append(&BinOp{Op: Add, X: &ConstInt{Ty: ctypes.IntType}, Y: &ConstInt{Ty: ctypes.IntType}, Ty: ctypes.IntType})
}

func TestInstrTypesAndOperands(t *testing.T) {
	f := &Function{Name: "f", Sig: &ctypes.Func{Result: ctypes.IntType}}
	b := f.NewBlock("entry")

	al := &Alloca{Elem: ctypes.DoubleType, VarName: "x"}
	b.Append(al)
	if !ctypes.IsPointer(al.Type()) || al.Ident() != "%x" {
		t.Error("alloca value")
	}

	st := &Store{Val: &ConstFloat{Val: 1, Ty: ctypes.DoubleType}, Addr: al}
	b.Append(st)
	if len(st.Operands()) != 2 {
		t.Error("store operands")
	}

	ld := &Load{Addr: al}
	b.Append(ld)
	if !ld.Type().Equal(ctypes.DoubleType) {
		t.Errorf("load type = %v", ld.Type())
	}

	bo := &BinOp{Op: Mul, X: ld, Y: ld, Ty: ctypes.DoubleType}
	b.Append(bo)
	if bo.String() == "" || len(bo.Operands()) != 2 {
		t.Error("binop")
	}

	cmp := &Cmp{Op: LT, X: ld, Y: ld}
	b.Append(cmp)
	if !cmp.Type().Equal(ctypes.IntType) {
		t.Error("cmp yields int")
	}

	ca := &Cast{Kind: FpToInt, X: ld, To: ctypes.IntType}
	b.Append(ca)
	if !ca.Type().Equal(ctypes.IntType) {
		t.Error("cast type")
	}

	Terminate(b, &Ret{X: ca})
	text := f.String()
	for _, want := range []string{"alloca", "store", "load", "mul", "cmp lt", "fptoint", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("printed function missing %q:\n%s", want, text)
		}
	}
}

func TestGEPTypeWalk(t *testing.T) {
	s := ctypes.NewStruct("S", false, []ctypes.Field{
		{Name: "a", Type: ctypes.DoubleType},
		{Name: "arr", Type: &ctypes.Array{Elem: ctypes.IntType, Len: 4}},
	})
	f := &Function{Name: "f", Sig: &ctypes.Func{Result: ctypes.VoidType}}
	b := f.NewBlock("entry")
	base := &Alloca{Elem: s, VarName: "s"}
	b.Append(base)
	gep := &GEP{
		Base:    base,
		Indices: []GEPIndex{{Field: 1}},
		ResultT: &ctypes.Pointer{Elem: &ctypes.Array{Elem: ctypes.IntType, Len: 4}},
	}
	b.Append(gep)
	if len(gep.Operands()) != 1 {
		t.Errorf("field-only GEP operands = %d", len(gep.Operands()))
	}
	idx := &ConstInt{Val: 2, Ty: ctypes.IntType}
	gep2 := &GEP{
		Base:    gep,
		Indices: []GEPIndex{{Index: idx}},
		ResultT: &ctypes.Pointer{Elem: ctypes.IntType},
	}
	b.Append(gep2)
	ops := gep2.Operands()
	if len(ops) != 2 || ops[1] != Value(idx) {
		t.Errorf("GEP operands = %v", ops)
	}
}

func TestPhiPrinting(t *testing.T) {
	f := &Function{Name: "f", Sig: &ctypes.Func{Result: ctypes.IntType}}
	a := f.NewBlock("a")
	bb := f.NewBlock("b")
	m := f.NewBlock("m")
	Terminate(a, &Br{Then: m})
	Terminate(bb, &Br{Then: m})
	phi := &Phi{
		Edges: []PhiEdge{
			{Val: &ConstInt{Val: 1, Ty: ctypes.IntType}, Pred: a},
			{Val: &ConstInt{Val: 2, Ty: ctypes.IntType}, Pred: bb},
		},
		Ty: ctypes.IntType,
	}
	phi.SetParentBlock(m)
	m.Instrs = append([]Instr{phi}, m.Instrs...)
	Terminate(m, &Ret{X: phi})
	s := phi.String()
	if !strings.Contains(s, "phi int") || !strings.Contains(s, "[1, %a0]") {
		t.Errorf("phi string = %q", s)
	}
	if len(phi.Operands()) != 2 {
		t.Error("phi operands")
	}
}

func TestCallPrinting(t *testing.T) {
	m := NewModule("t")
	void := &Function{Name: "side", Sig: &ctypes.Func{Result: ctypes.VoidType}, IsDecl: true}
	val := &Function{Name: "get", Sig: &ctypes.Func{Result: ctypes.IntType}, IsDecl: true}
	m.AddFunc(void)
	m.AddFunc(val)
	f := &Function{Name: "f", Sig: &ctypes.Func{Result: ctypes.VoidType}}
	m.AddFunc(f)
	b := f.NewBlock("entry")
	c1 := &Call{Callee: void}
	b.Append(c1)
	c2 := &Call{Callee: val, Args: []Value{&ConstInt{Val: 3, Ty: ctypes.IntType}}}
	b.Append(c2)
	Terminate(b, &Ret{})
	if strings.Contains(c1.String(), "=") {
		t.Errorf("void call prints a result: %q", c1.String())
	}
	if !strings.Contains(c2.String(), "= call @get(3)") {
		t.Errorf("call string = %q", c2.String())
	}
}

func TestRenumberBlocks(t *testing.T) {
	f := &Function{Name: "f", Sig: &ctypes.Func{Result: ctypes.VoidType}}
	b0 := f.NewBlock("a")
	b1 := f.NewBlock("b")
	f.Blocks = []*Block{b1, b0}
	f.RenumberBlocks()
	if b1.Index != 0 || b0.Index != 1 {
		t.Error("renumber failed")
	}
}
