// Package ir defines SafeFlow's typed intermediate representation — a
// deliberately LLVM-like SSA form (the paper implements its analysis on
// LLVM bytecode): functions of basic blocks holding instructions such as
// alloca, load, store, getelementptr, phi, and direct calls.
//
// Programs are first lowered with explicit allocas for every local; the
// mem2reg pass (irgen.Promote) then rewrites scalar allocas into SSA
// registers using iterated dominance frontiers, exactly as LLVM's -mem2reg
// does. SafeFlow's analyses consume the promoted form.
package ir

import (
	"fmt"
	"strings"

	"safeflow/internal/ctoken"
	"safeflow/internal/ctypes"
)

// Value is an SSA value: instruction results, constants, globals,
// parameters, and function references.
type Value interface {
	// Type returns the value's type.
	Type() ctypes.Type
	// Ident returns the value's printable identifier (%t3, @g, 42).
	Ident() string
}

// ---------------------------------------------------------------------------
// Non-instruction values

// ConstInt is an integer constant.
type ConstInt struct {
	Val int64
	Ty  ctypes.Type
}

// Type implements Value.
func (c *ConstInt) Type() ctypes.Type { return c.Ty }

// Ident implements Value.
func (c *ConstInt) Ident() string { return fmt.Sprintf("%d", c.Val) }

// ConstFloat is a floating constant.
type ConstFloat struct {
	Val float64
	Ty  ctypes.Type
}

// Type implements Value.
func (c *ConstFloat) Type() ctypes.Type { return c.Ty }

// Ident implements Value.
func (c *ConstFloat) Ident() string { return fmt.Sprintf("%g", c.Val) }

// ConstStr is a string literal (pointer to static storage).
type ConstStr struct {
	Val string
}

// Type implements Value.
func (c *ConstStr) Type() ctypes.Type { return &ctypes.Pointer{Elem: ctypes.CharType} }

// Ident implements Value.
func (c *ConstStr) Ident() string { return fmt.Sprintf("%q", c.Val) }

// Global is a module-level variable; its value is the *address* of the
// storage, so its type is a pointer to the declared type.
type Global struct {
	Name     string
	Elem     ctypes.Type // declared (pointee) type
	HasInit  bool
	InitInts []int64 // flattened constant initializer when present
	Pos      ctoken.Pos
}

// Type implements Value.
func (g *Global) Type() ctypes.Type { return &ctypes.Pointer{Elem: g.Elem} }

// Ident implements Value.
func (g *Global) Ident() string { return "@" + g.Name }

// Param is a function parameter.
type Param struct {
	Name  string
	Ty    ctypes.Type
	Index int
	Fn    *Function
}

// Type implements Value.
func (p *Param) Type() ctypes.Type { return p.Ty }

// Ident implements Value.
func (p *Param) Ident() string { return "%" + p.Name }

// ---------------------------------------------------------------------------
// Module and functions

// Module is one whole program in IR form.
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Function

	globalMap map[string]*Global
	funcMap   map[string]*Function
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:      name,
		globalMap: make(map[string]*Global),
		funcMap:   make(map[string]*Function),
	}
}

// AddGlobal registers a global variable.
func (m *Module) AddGlobal(g *Global) {
	m.Globals = append(m.Globals, g)
	m.globalMap[g.Name] = g
}

// GlobalByName returns the named global, or nil.
func (m *Module) GlobalByName(name string) *Global { return m.globalMap[name] }

// AddFunc registers a function.
func (m *Module) AddFunc(f *Function) {
	f.Module = m
	m.Funcs = append(m.Funcs, f)
	m.funcMap[f.Name] = f
}

// FuncByName returns the named function, or nil.
func (m *Module) FuncByName(name string) *Function { return m.funcMap[name] }

// AnnotationFacts carries the SafeFlow facts attached to a function by the
// annotation pass; the concrete fact types live in package annot and are
// stored here as opaque values to avoid an import cycle.
type AnnotationFacts any

// Function is a function definition (Blocks non-empty) or declaration.
type Function struct {
	Name      string
	Sig       *ctypes.Func
	Params    []*Param
	Blocks    []*Block
	Module    *Module
	Pos       ctoken.Pos
	IsDecl    bool // external declaration, no body
	Facts     AnnotationFacts
	nextName  int
	numValues int
	numInstrs int
}

// Type implements Value (a function used as a callee operand).
func (f *Function) Type() ctypes.Type { return f.Sig }

// Ident implements Value.
func (f *Function) Ident() string { return "@" + f.Name }

// Entry returns the entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock appends a new basic block with a label hint.
func (f *Function) NewBlock(hint string) *Block {
	b := &Block{
		Label: fmt.Sprintf("%s%d", hint, len(f.Blocks)),
		Fn:    f,
		Index: len(f.Blocks),
	}
	f.Blocks = append(f.Blocks, b)
	return b
}

func (f *Function) nextID() int {
	f.nextName++
	return f.nextName
}

// RenumberBlocks refreshes Block.Index after block list edits.
func (f *Function) RenumberBlocks() {
	for i, b := range f.Blocks {
		b.Index = i
	}
}

// Block is a basic block: a label, instructions, and a terminator as the
// final instruction.
type Block struct {
	Label  string
	Fn     *Function
	Index  int
	Instrs []Instr
	Preds  []*Block
	Succs  []*Block
}

// Ident returns the block's printable label.
func (b *Block) Ident() string { return "%" + b.Label }

// Term returns the block's terminator, or nil if the block is unterminated.
func (b *Block) Term() Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.isTerminator() {
		return last
	}
	return nil
}

// Append adds an instruction; panics if the block is already terminated
// (an irgen bug, not a user error).
func (b *Block) Append(in Instr) {
	if b.Term() != nil {
		panic(fmt.Sprintf("ir: append %T to terminated block %s", in, b.Label))
	}
	in.setParent(b)
	b.Instrs = append(b.Instrs, in)
}

func addEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// ---------------------------------------------------------------------------
// Instructions

// Instr is one IR instruction. Instructions producing a value also
// implement Value.
type Instr interface {
	// Parent returns the containing block.
	Parent() *Block
	// Operands returns the instruction's value operands (for def-use scans).
	Operands() []Value
	// Pos returns the originating source position.
	Pos() ctoken.Pos
	// String renders the instruction in LLVM-ish syntax.
	String() string

	setParent(*Block)
	isTerminator() bool
	setValueNum(int)
	valueNum() int
	setInstrIndex(int)
	instrIndex() int
}

// instrBase provides shared bookkeeping for all instructions. vnum and
// iidx hold the dense numbering of NumberValues, offset by one so the
// zero value means "unassigned" (-1).
type instrBase struct {
	parent *Block
	pos    ctoken.Pos
	id     int
	vnum   int32
	iidx   int32
}

func (i *instrBase) Parent() *Block        { return i.parent }
func (i *instrBase) setParent(b *Block)    { i.parent = b }
func (i *instrBase) Pos() ctoken.Pos       { return i.pos }
func (i *instrBase) isTerminator() bool    { return false }
func (i *instrBase) SetPos(pos ctoken.Pos) { i.pos = pos }
func (i *instrBase) setValueNum(n int)     { i.vnum = int32(n) + 1 }
func (i *instrBase) valueNum() int         { return int(i.vnum) - 1 }
func (i *instrBase) setInstrIndex(n int)   { i.iidx = int32(n) + 1 }
func (i *instrBase) instrIndex() int       { return int(i.iidx) - 1 }

// SetParentBlock sets the parent block; exported for passes that splice
// instructions (e.g. inserting phis at a block's front) without Append.
func (i *instrBase) SetParentBlock(b *Block) { i.parent = b }

// ident assigns and formats the SSA name.
func (i *instrBase) identIn(f *Function) string {
	if i.id == 0 && f != nil {
		i.id = f.nextID()
	}
	return fmt.Sprintf("%%t%d", i.id)
}

// Alloca reserves stack storage for one object of Elem type; the result is
// a pointer to it.
type Alloca struct {
	instrBase
	Elem    ctypes.Type
	VarName string // source-level variable name (for diagnostics/asserts)
}

// Type implements Value.
func (a *Alloca) Type() ctypes.Type { return &ctypes.Pointer{Elem: a.Elem} }

// Ident implements Value.
func (a *Alloca) Ident() string {
	if a.VarName != "" {
		return "%" + a.VarName
	}
	return a.identIn(fnOf(a.parent))
}

// Operands implements Instr.
func (a *Alloca) Operands() []Value { return nil }

// String implements Instr.
func (a *Alloca) String() string {
	return fmt.Sprintf("%s = alloca %s", a.Ident(), a.Elem)
}

// Load reads from memory.
type Load struct {
	instrBase
	Addr Value
}

// Type implements Value.
func (l *Load) Type() ctypes.Type {
	if p, ok := l.Addr.Type().(*ctypes.Pointer); ok {
		return p.Elem
	}
	return ctypes.IntType
}

// Ident implements Value.
func (l *Load) Ident() string { return l.identIn(fnOf(l.parent)) }

// Operands implements Instr.
func (l *Load) Operands() []Value { return []Value{l.Addr} }

// String implements Instr.
func (l *Load) String() string {
	return fmt.Sprintf("%s = load %s, %s", l.Ident(), l.Type(), l.Addr.Ident())
}

// Store writes Val to memory at Addr.
type Store struct {
	instrBase
	Val  Value
	Addr Value
}

// Operands implements Instr.
func (s *Store) Operands() []Value { return []Value{s.Val, s.Addr} }

// String implements Instr.
func (s *Store) String() string {
	return fmt.Sprintf("store %s %s, %s", s.Val.Type(), s.Val.Ident(), s.Addr.Ident())
}

// GEPIndex is one step of a getelementptr: either a struct field (by
// number) or an array/pointer element index (a Value).
type GEPIndex struct {
	Field int   // valid when Index == nil
	Index Value // nil for struct fields
}

// GEP computes an address from a base pointer plus indices, like LLVM's
// getelementptr. The first index steps the base pointer itself (pointer
// arithmetic); subsequent indices walk into aggregates.
type GEP struct {
	instrBase
	Base    Value
	Indices []GEPIndex
	ResultT ctypes.Type // pointer type of the result
}

// Type implements Value.
func (g *GEP) Type() ctypes.Type { return g.ResultT }

// Ident implements Value.
func (g *GEP) Ident() string { return g.identIn(fnOf(g.parent)) }

// Operands implements Instr.
func (g *GEP) Operands() []Value {
	ops := []Value{g.Base}
	for _, ix := range g.Indices {
		if ix.Index != nil {
			ops = append(ops, ix.Index)
		}
	}
	return ops
}

// String implements Instr.
func (g *GEP) String() string {
	var parts []string
	for _, ix := range g.Indices {
		if ix.Index != nil {
			parts = append(parts, ix.Index.Ident())
		} else {
			parts = append(parts, fmt.Sprintf("field %d", ix.Field))
		}
	}
	return fmt.Sprintf("%s = getelementptr %s, [%s]", g.Ident(), g.Base.Ident(), strings.Join(parts, ", "))
}

// BinKind is a binary arithmetic/logical operator.
type BinKind int

// Binary operator kinds.
const (
	Add BinKind = iota + 1
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
)

var binNames = map[BinKind]string{
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
}

// String returns the operator mnemonic.
func (k BinKind) String() string { return binNames[k] }

// BinOp is a binary arithmetic operation.
type BinOp struct {
	instrBase
	Op   BinKind
	X, Y Value
	Ty   ctypes.Type
}

// Type implements Value.
func (b *BinOp) Type() ctypes.Type { return b.Ty }

// Ident implements Value.
func (b *BinOp) Ident() string { return b.identIn(fnOf(b.parent)) }

// Operands implements Instr.
func (b *BinOp) Operands() []Value { return []Value{b.X, b.Y} }

// String implements Instr.
func (b *BinOp) String() string {
	return fmt.Sprintf("%s = %s %s %s, %s", b.Ident(), b.Op, b.Ty, b.X.Ident(), b.Y.Ident())
}

// CmpKind is a comparison predicate.
type CmpKind int

// Comparison predicates.
const (
	EQ CmpKind = iota + 1
	NE
	LT
	LE
	GT
	GE
)

var cmpNames = map[CmpKind]string{EQ: "eq", NE: "ne", LT: "lt", LE: "le", GT: "gt", GE: "ge"}

// String returns the predicate mnemonic.
func (k CmpKind) String() string { return cmpNames[k] }

// Cmp compares two values, yielding an int (0/1).
type Cmp struct {
	instrBase
	Op   CmpKind
	X, Y Value
}

// Type implements Value.
func (c *Cmp) Type() ctypes.Type { return ctypes.IntType }

// Ident implements Value.
func (c *Cmp) Ident() string { return c.identIn(fnOf(c.parent)) }

// Operands implements Instr.
func (c *Cmp) Operands() []Value { return []Value{c.X, c.Y} }

// String implements Instr.
func (c *Cmp) String() string {
	return fmt.Sprintf("%s = cmp %s %s, %s", c.Ident(), c.Op, c.X.Ident(), c.Y.Ident())
}

// CastKind classifies conversions; the distinction matters to restriction
// P3 (pointer casts and pointer<->integer casts on shared memory).
type CastKind int

// Cast kinds.
const (
	Bitcast  CastKind = iota + 1 // pointer -> pointer
	PtrToInt                     // pointer -> integer
	IntToPtr                     // integer -> pointer
	Trunc                        // numeric narrowing
	Ext                          // numeric widening
	FpToInt                      // float -> int
	IntToFp                      // int -> float
	FpCast                       // float width change
)

var castNames = map[CastKind]string{
	Bitcast: "bitcast", PtrToInt: "ptrtoint", IntToPtr: "inttoptr",
	Trunc: "trunc", Ext: "ext", FpToInt: "fptoint", IntToFp: "inttofp", FpCast: "fpcast",
}

// String returns the cast mnemonic.
func (k CastKind) String() string { return castNames[k] }

// Cast converts X to type To.
type Cast struct {
	instrBase
	Kind CastKind
	X    Value
	To   ctypes.Type
}

// Type implements Value.
func (c *Cast) Type() ctypes.Type { return c.To }

// Ident implements Value.
func (c *Cast) Ident() string { return c.identIn(fnOf(c.parent)) }

// Operands implements Instr.
func (c *Cast) Operands() []Value { return []Value{c.X} }

// String implements Instr.
func (c *Cast) String() string {
	return fmt.Sprintf("%s = %s %s to %s", c.Ident(), c.Kind, c.X.Ident(), c.To)
}

// Call invokes Callee with Args. Only direct calls exist in the subset.
type Call struct {
	instrBase
	Callee *Function
	Args   []Value
}

// Type implements Value.
func (c *Call) Type() ctypes.Type { return c.Callee.Sig.Result }

// Ident implements Value.
func (c *Call) Ident() string { return c.identIn(fnOf(c.parent)) }

// Operands implements Instr.
func (c *Call) Operands() []Value { return c.Args }

// String implements Instr.
func (c *Call) String() string {
	var args []string
	for _, a := range c.Args {
		args = append(args, a.Ident())
	}
	res := ""
	if !ctypes.IsVoid(c.Callee.Sig.Result) {
		res = c.Ident() + " = "
	}
	return fmt.Sprintf("%scall %s(%s)", res, c.Callee.Ident(), strings.Join(args, ", "))
}

// PhiEdge is one incoming (value, predecessor) pair of a phi.
type PhiEdge struct {
	Val  Value
	Pred *Block
}

// Phi merges values at control-flow joins.
type Phi struct {
	instrBase
	Edges []PhiEdge
	Ty    ctypes.Type
	Var   string // promoted variable name, for diagnostics
}

// Type implements Value.
func (p *Phi) Type() ctypes.Type { return p.Ty }

// Ident implements Value.
func (p *Phi) Ident() string { return p.identIn(fnOf(p.parent)) }

// Operands implements Instr.
func (p *Phi) Operands() []Value {
	var ops []Value
	for _, e := range p.Edges {
		ops = append(ops, e.Val)
	}
	return ops
}

// String implements Instr.
func (p *Phi) String() string {
	var parts []string
	for _, e := range p.Edges {
		parts = append(parts, fmt.Sprintf("[%s, %s]", e.Val.Ident(), e.Pred.Ident()))
	}
	return fmt.Sprintf("%s = phi %s %s", p.Ident(), p.Ty, strings.Join(parts, ", "))
}

// Ret returns from the function; X is nil for void returns.
type Ret struct {
	instrBase
	X Value
}

// Operands implements Instr.
func (r *Ret) Operands() []Value {
	if r.X == nil {
		return nil
	}
	return []Value{r.X}
}

// String implements Instr.
func (r *Ret) String() string {
	if r.X == nil {
		return "ret void"
	}
	return fmt.Sprintf("ret %s %s", r.X.Type(), r.X.Ident())
}

func (r *Ret) isTerminator() bool { return true }

// Br is a conditional (Cond non-nil) or unconditional branch.
type Br struct {
	instrBase
	Cond Value // nil for unconditional
	Then *Block
	Else *Block // nil for unconditional
}

// Operands implements Instr.
func (b *Br) Operands() []Value {
	if b.Cond == nil {
		return nil
	}
	return []Value{b.Cond}
}

// String implements Instr.
func (b *Br) String() string {
	if b.Cond == nil {
		return fmt.Sprintf("br %s", b.Then.Ident())
	}
	return fmt.Sprintf("br %s, %s, %s", b.Cond.Ident(), b.Then.Ident(), b.Else.Ident())
}

func (b *Br) isTerminator() bool { return true }

// Unreachable marks dead control flow (e.g. after exit()).
type Unreachable struct {
	instrBase
}

// Operands implements Instr.
func (u *Unreachable) Operands() []Value { return nil }

// String implements Instr.
func (u *Unreachable) String() string { return "unreachable" }

func (u *Unreachable) isTerminator() bool { return true }

func fnOf(b *Block) *Function {
	if b == nil {
		return nil
	}
	return b.Fn
}

// ---------------------------------------------------------------------------
// Builder helpers

// Terminate appends a terminator and wires CFG edges.
func Terminate(b *Block, t Instr) {
	if b.Term() != nil {
		return // already terminated (e.g. return inside both if arms)
	}
	b.Append(t)
	switch tt := t.(type) {
	case *Br:
		addEdge(b, tt.Then)
		if tt.Else != nil {
			addEdge(b, tt.Else)
		}
	}
}

// ---------------------------------------------------------------------------
// Printing

// String renders the whole module.
func (m *Module) String() string {
	var sb strings.Builder
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global %s : %s\n", g.Ident(), g.Elem)
	}
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String renders one function.
func (f *Function) String() string {
	var sb strings.Builder
	var ps []string
	for _, p := range f.Params {
		ps = append(ps, fmt.Sprintf("%s %s", p.Ty, p.Ident()))
	}
	fmt.Fprintf(&sb, "func %s(%s) %s {\n", f.Ident(), strings.Join(ps, ", "), f.Sig.Result)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:", b.Label)
		if len(b.Preds) > 0 {
			var pl []string
			for _, p := range b.Preds {
				pl = append(pl, p.Label)
			}
			fmt.Fprintf(&sb, "    ; preds: %s", strings.Join(pl, " "))
		}
		sb.WriteByte('\n')
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in.String())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
