// Package clex implements the lexer for SafeFlow's C subset.
//
// Beyond ordinary C tokenization it recognizes SafeFlow annotation
// comments — block comments whose body begins with the marker string
// "SafeFlow Annotation" (the paper writes them as
// "/***SafeFlow Annotation ... /***/") — and emits them as ANNOTATION
// tokens so the parser can attach them to the following declaration or
// statement. All other comments are skipped.
package clex

import (
	"fmt"
	"strings"

	"safeflow/internal/ctoken"
)

// Marker is the string that distinguishes a SafeFlow annotation comment
// from an ordinary block comment.
const Marker = "SafeFlow Annotation"

// Error is a lexical error at a source position.
type Error struct {
	Pos ctoken.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer tokenizes a single preprocessed source buffer.
//
// Line directives of the form "#line N \"file\"" (emitted by package cpp)
// are honored so positions refer to original files.
type Lexer struct {
	src    string
	file   string
	off    int
	line   int
	col    int
	errors []error
}

// New returns a lexer over src, attributing positions to file.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errors }

func (l *Lexer) errorf(pos ctoken.Pos, format string, args ...any) {
	l.errors = append(l.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) pos() ctoken.Pos {
	return ctoken.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	ch := l.src[l.off]
	l.off++
	if ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return ch
}

// All lexes the entire buffer, always ending with an EOF token.
func (l *Lexer) All() []ctoken.Token {
	var toks []ctoken.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == ctoken.EOF {
			return toks
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() ctoken.Token {
	for {
		l.skipSpace()
		if l.off >= len(l.src) {
			return ctoken.Token{Kind: ctoken.EOF, Pos: l.pos()}
		}
		start := l.pos()
		ch := l.peek()

		switch {
		case ch == '#':
			l.lineDirective()
			continue
		case isIdentStart(ch):
			return l.ident(start)
		case isDigit(ch) || (ch == '.' && isDigit(l.peekAt(1))):
			return l.number(start)
		case ch == '"':
			return l.stringLit(start)
		case ch == '\'':
			return l.charLit(start)
		case ch == '/' && l.peekAt(1) == '/':
			l.skipLineComment()
			continue
		case ch == '/' && l.peekAt(1) == '*':
			if tok, isAnnot := l.blockComment(start); isAnnot {
				return tok
			}
			continue
		default:
			return l.operator(start)
		}
	}
}

func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		switch l.peek() {
		case ' ', '\t', '\r', '\n', '\v', '\f':
			l.advance()
		default:
			return
		}
	}
}

// lineDirective consumes "#line N \"file\"" or "# N \"file\"" directives
// emitted by the preprocessor, updating the position bookkeeping. Any other
// '#'-line is consumed and reported as an error (the preprocessor should
// have removed it).
func (l *Lexer) lineDirective() {
	pos := l.pos()
	lineStart := l.off
	for l.off < len(l.src) && l.peek() != '\n' {
		l.advance()
	}
	text := l.src[lineStart:l.off]
	var n int
	var f string
	if _, err := fmt.Sscanf(text, "#line %d %q", &n, &f); err == nil {
		l.line = n
		l.col = 1
		l.file = f
		if l.off < len(l.src) {
			l.off++ // consume the newline without advancing l.line past n
		}
		return
	}
	if _, err := fmt.Sscanf(text, "# %d %q", &n, &f); err == nil {
		l.line = n
		l.col = 1
		l.file = f
		if l.off < len(l.src) {
			l.off++
		}
		return
	}
	l.errorf(pos, "unexpected preprocessor directive %q (input not preprocessed?)", text)
}

func (l *Lexer) ident(start ctoken.Pos) ctoken.Token {
	begin := l.off
	for l.off < len(l.src) && isIdentPart(l.peek()) {
		l.advance()
	}
	text := l.src[begin:l.off]
	if kw, ok := ctoken.Keywords[text]; ok {
		return ctoken.Token{Kind: kw, Text: text, Pos: start}
	}
	return ctoken.Token{Kind: ctoken.IDENT, Text: text, Pos: start}
}

func (l *Lexer) number(start ctoken.Pos) ctoken.Token {
	begin := l.off
	isFloat := false
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' {
			isFloat = true
			l.advance()
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			next := l.peekAt(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peekAt(2))) {
				isFloat = true
				l.advance() // e
				if l.peek() == '+' || l.peek() == '-' {
					l.advance()
				}
				for l.off < len(l.src) && isDigit(l.peek()) {
					l.advance()
				}
			}
		}
	}
	// Suffixes: u, U, l, L, f, F in any reasonable combination.
	for l.off < len(l.src) {
		switch l.peek() {
		case 'u', 'U', 'l', 'L':
			l.advance()
		case 'f', 'F':
			isFloat = true
			l.advance()
		default:
			goto done
		}
	}
done:
	text := l.src[begin:l.off]
	kind := ctoken.INTLIT
	if isFloat {
		kind = ctoken.FLOATLIT
	}
	return ctoken.Token{Kind: kind, Text: text, Pos: start}
}

func (l *Lexer) stringLit(start ctoken.Pos) ctoken.Token {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.off >= len(l.src) || l.peek() == '\n' {
			l.errorf(start, "unterminated string literal")
			break
		}
		ch := l.advance()
		if ch == '"' {
			break
		}
		if ch == '\\' && l.off < len(l.src) {
			sb.WriteByte(unescape(l.advance()))
			continue
		}
		sb.WriteByte(ch)
	}
	return ctoken.Token{Kind: ctoken.STRLIT, Text: sb.String(), Pos: start}
}

func (l *Lexer) charLit(start ctoken.Pos) ctoken.Token {
	l.advance() // opening quote
	var val byte
	if l.off < len(l.src) {
		ch := l.advance()
		if ch == '\\' && l.off < len(l.src) {
			val = unescape(l.advance())
		} else {
			val = ch
		}
	}
	if l.off < len(l.src) && l.peek() == '\'' {
		l.advance()
	} else {
		l.errorf(start, "unterminated character literal")
	}
	return ctoken.Token{Kind: ctoken.INTLIT, Text: fmt.Sprintf("%d", val), Pos: start}
}

func unescape(ch byte) byte {
	switch ch {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	default:
		return ch
	}
}

func (l *Lexer) skipLineComment() {
	for l.off < len(l.src) && l.peek() != '\n' {
		l.advance()
	}
}

// blockComment consumes a /* ... */ comment. If the comment body (after
// stripping leading '*'s and whitespace) begins with Marker, it is returned
// as an ANNOTATION token whose Text is the body following the marker. The
// paper's closing sequence "/***/" is handled naturally: the comment ends
// at the first "*/".
func (l *Lexer) blockComment(start ctoken.Pos) (ctoken.Token, bool) {
	l.advance() // '/'
	l.advance() // '*'
	begin := l.off
	for {
		if l.off+1 >= len(l.src) {
			l.errorf(start, "unterminated block comment")
			l.off = len(l.src)
			return ctoken.Token{}, false
		}
		if l.peek() == '*' && l.peekAt(1) == '/' {
			break
		}
		l.advance()
	}
	body := l.src[begin:l.off]
	l.advance() // '*'
	l.advance() // '/'

	trimmed := strings.TrimLeft(body, "* \t\r\n")
	if rest, ok := strings.CutPrefix(trimmed, Marker); ok {
		// Strip a trailing "/**" left by the paper's "/***/" terminator
		// convention, plus decoration.
		rest = strings.TrimRight(rest, "* \t\r\n/")
		rest = strings.TrimSpace(rest)
		return ctoken.Token{Kind: ctoken.ANNOTATION, Text: rest, Pos: start}, true
	}
	return ctoken.Token{}, false
}

func (l *Lexer) operator(start ctoken.Pos) ctoken.Token {
	two := func(k ctoken.Kind, text string) ctoken.Token {
		l.advance()
		l.advance()
		return ctoken.Token{Kind: k, Text: text, Pos: start}
	}
	three := func(k ctoken.Kind, text string) ctoken.Token {
		l.advance()
		l.advance()
		l.advance()
		return ctoken.Token{Kind: k, Text: text, Pos: start}
	}
	one := func(k ctoken.Kind) ctoken.Token {
		ch := l.advance()
		return ctoken.Token{Kind: k, Text: string(ch), Pos: start}
	}

	a, b, c := l.peek(), l.peekAt(1), l.peekAt(2)
	switch a {
	case '(':
		return one(ctoken.LPAREN)
	case ')':
		return one(ctoken.RPAREN)
	case '{':
		return one(ctoken.LBRACE)
	case '}':
		return one(ctoken.RBRACE)
	case '[':
		return one(ctoken.LBRACKET)
	case ']':
		return one(ctoken.RBRACKET)
	case ',':
		return one(ctoken.COMMA)
	case ';':
		return one(ctoken.SEMI)
	case ':':
		return one(ctoken.COLON)
	case '?':
		return one(ctoken.QUESTION)
	case '~':
		return one(ctoken.TILDE)
	case '.':
		if b == '.' && c == '.' {
			return three(ctoken.ELLIPSIS, "...")
		}
		return one(ctoken.DOT)
	case '+':
		switch b {
		case '+':
			return two(ctoken.INC, "++")
		case '=':
			return two(ctoken.ADDASSIGN, "+=")
		}
		return one(ctoken.PLUS)
	case '-':
		switch b {
		case '-':
			return two(ctoken.DEC, "--")
		case '=':
			return two(ctoken.SUBASSIGN, "-=")
		case '>':
			return two(ctoken.ARROW, "->")
		}
		return one(ctoken.MINUS)
	case '*':
		if b == '=' {
			return two(ctoken.MULASSIGN, "*=")
		}
		return one(ctoken.STAR)
	case '/':
		if b == '=' {
			return two(ctoken.DIVASSIGN, "/=")
		}
		return one(ctoken.SLASH)
	case '%':
		if b == '=' {
			return two(ctoken.MODASSIGN, "%=")
		}
		return one(ctoken.PERCENT)
	case '&':
		switch b {
		case '&':
			return two(ctoken.LAND, "&&")
		case '=':
			return two(ctoken.ANDASSIGN, "&=")
		}
		return one(ctoken.AMP)
	case '|':
		switch b {
		case '|':
			return two(ctoken.LOR, "||")
		case '=':
			return two(ctoken.ORASSIGN, "|=")
		}
		return one(ctoken.PIPE)
	case '^':
		if b == '=' {
			return two(ctoken.XORASSIGN, "^=")
		}
		return one(ctoken.CARET)
	case '!':
		if b == '=' {
			return two(ctoken.NE, "!=")
		}
		return one(ctoken.NOT)
	case '=':
		if b == '=' {
			return two(ctoken.EQ, "==")
		}
		return one(ctoken.ASSIGN)
	case '<':
		switch b {
		case '<':
			if c == '=' {
				return three(ctoken.SHLASSIGN, "<<=")
			}
			return two(ctoken.SHL, "<<")
		case '=':
			return two(ctoken.LE, "<=")
		}
		return one(ctoken.LT)
	case '>':
		switch b {
		case '>':
			if c == '=' {
				return three(ctoken.SHRASSIGN, ">>=")
			}
			return two(ctoken.SHR, ">>")
		case '=':
			return two(ctoken.GE, ">=")
		}
		return one(ctoken.GT)
	default:
		pos := l.pos()
		ch := l.advance()
		l.errorf(pos, "illegal character %q", ch)
		return ctoken.Token{Kind: ctoken.ILLEGAL, Text: string(ch), Pos: start}
	}
}

func isIdentStart(ch byte) bool {
	return ch == '_' || ('a' <= ch && ch <= 'z') || ('A' <= ch && ch <= 'Z')
}

func isIdentPart(ch byte) bool { return isIdentStart(ch) || isDigit(ch) }

func isDigit(ch byte) bool { return '0' <= ch && ch <= '9' }

func isHexDigit(ch byte) bool {
	return isDigit(ch) || ('a' <= ch && ch <= 'f') || ('A' <= ch && ch <= 'F')
}
