package clex

import (
	"strings"
	"testing"
	"testing/quick"

	"safeflow/internal/ctoken"
)

func kinds(toks []ctoken.Token) []ctoken.Kind {
	out := make([]ctoken.Kind, 0, len(toks))
	for _, t := range toks {
		out = append(out, t.Kind)
	}
	return out
}

func lexAll(t *testing.T, src string) []ctoken.Token {
	t.Helper()
	l := New("test.c", src)
	toks := l.All()
	if errs := l.Errors(); len(errs) > 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	return toks
}

func TestKeywordsAndIdents(t *testing.T) {
	toks := lexAll(t, "int foo while whileX _x x1")
	want := []ctoken.Kind{
		ctoken.KwInt, ctoken.IDENT, ctoken.KwWhile, ctoken.IDENT,
		ctoken.IDENT, ctoken.IDENT, ctoken.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[3].Text != "whileX" {
		t.Errorf("token 3 text = %q", toks[3].Text)
	}
}

func TestNumberLiterals(t *testing.T) {
	tests := []struct {
		src  string
		kind ctoken.Kind
	}{
		{"0", ctoken.INTLIT},
		{"42", ctoken.INTLIT},
		{"0x7fF", ctoken.INTLIT},
		{"42u", ctoken.INTLIT},
		{"42UL", ctoken.INTLIT},
		{"1.5", ctoken.FLOATLIT},
		{".5", ctoken.FLOATLIT},
		{"2e10", ctoken.FLOATLIT},
		{"2E-3", ctoken.FLOATLIT},
		{"1.5e+2", ctoken.FLOATLIT},
		{"3f", ctoken.FLOATLIT},
		{"1.0F", ctoken.FLOATLIT},
	}
	for _, tc := range tests {
		t.Run(tc.src, func(t *testing.T) {
			toks := lexAll(t, tc.src)
			if toks[0].Kind != tc.kind {
				t.Errorf("%q lexed as %v, want %v", tc.src, toks[0].Kind, tc.kind)
			}
			if toks[0].Text != tc.src {
				t.Errorf("%q text = %q", tc.src, toks[0].Text)
			}
		})
	}
}

func TestDotVsFloat(t *testing.T) {
	toks := lexAll(t, "a.b 1.5 s . f")
	want := []ctoken.Kind{
		ctoken.IDENT, ctoken.DOT, ctoken.IDENT,
		ctoken.FLOATLIT,
		ctoken.IDENT, ctoken.DOT, ctoken.IDENT, ctoken.EOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", got, want)
		}
	}
}

func TestOperators(t *testing.T) {
	src := "+ - * / % ++ -- += -= *= /= %= == != <= >= < > << >> <<= >>= && || & | ^ ~ ! = -> . ? : ..."
	want := []ctoken.Kind{
		ctoken.PLUS, ctoken.MINUS, ctoken.STAR, ctoken.SLASH, ctoken.PERCENT,
		ctoken.INC, ctoken.DEC, ctoken.ADDASSIGN, ctoken.SUBASSIGN,
		ctoken.MULASSIGN, ctoken.DIVASSIGN, ctoken.MODASSIGN,
		ctoken.EQ, ctoken.NE, ctoken.LE, ctoken.GE, ctoken.LT, ctoken.GT,
		ctoken.SHL, ctoken.SHR, ctoken.SHLASSIGN, ctoken.SHRASSIGN,
		ctoken.LAND, ctoken.LOR, ctoken.AMP, ctoken.PIPE, ctoken.CARET,
		ctoken.TILDE, ctoken.NOT, ctoken.ASSIGN, ctoken.ARROW, ctoken.DOT,
		ctoken.QUESTION, ctoken.COLON, ctoken.ELLIPSIS, ctoken.EOF,
	}
	got := kinds(lexAll(t, src))
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStringLiterals(t *testing.T) {
	toks := lexAll(t, `"hello\nworld" "a\"b"`)
	if toks[0].Kind != ctoken.STRLIT || toks[0].Text != "hello\nworld" {
		t.Errorf("first string = %q", toks[0].Text)
	}
	if toks[1].Kind != ctoken.STRLIT || toks[1].Text != `a"b` {
		t.Errorf("second string = %q", toks[1].Text)
	}
}

func TestCharLiterals(t *testing.T) {
	toks := lexAll(t, `'a' '\n' '\0'`)
	wantVals := []string{"97", "10", "0"}
	for i, w := range wantVals {
		if toks[i].Kind != ctoken.INTLIT || toks[i].Text != w {
			t.Errorf("char %d = (%v, %q), want (INTLIT, %q)", i, toks[i].Kind, toks[i].Text, w)
		}
	}
}

func TestCommentsSkipped(t *testing.T) {
	src := `
a // line comment with * and /*
b /* block
comment */ c
`
	got := kinds(lexAll(t, src))
	want := []ctoken.Kind{ctoken.IDENT, ctoken.IDENT, ctoken.IDENT, ctoken.EOF}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
}

func TestAnnotationCapture(t *testing.T) {
	src := `
int x;
/***SafeFlow Annotation assume(core(p, 0, sizeof(T))) /***/
int y;
/* SafeFlow Annotation assert(safe(v)) */
int z;
/* ordinary comment */
`
	toks := lexAll(t, src)
	var annots []ctoken.Token
	for _, tk := range toks {
		if tk.Kind == ctoken.ANNOTATION {
			annots = append(annots, tk)
		}
	}
	if len(annots) != 2 {
		t.Fatalf("annotations = %d, want 2", len(annots))
	}
	if annots[0].Text != "assume(core(p, 0, sizeof(T)))" {
		t.Errorf("annotation 0 body = %q", annots[0].Text)
	}
	if annots[1].Text != "assert(safe(v))" {
		t.Errorf("annotation 1 body = %q", annots[1].Text)
	}
}

func TestLineDirectives(t *testing.T) {
	src := "#line 10 \"orig.c\"\nint x;\nint y;\n"
	toks := lexAll(t, src)
	if toks[0].Pos.File != "orig.c" || toks[0].Pos.Line != 10 {
		t.Errorf("first token at %v, want orig.c:10", toks[0].Pos)
	}
	// y is declared on the next line.
	if toks[3].Pos.Line != 11 {
		t.Errorf("second decl at line %d, want 11", toks[3].Pos.Line)
	}
}

func TestPositions(t *testing.T) {
	toks := lexAll(t, "a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"illegal char", "int @ x;", "illegal character"},
		{"unterminated string", "\"abc\nint x;", "unterminated string"},
		{"unterminated comment", "/* abc", "unterminated block comment"},
		{"unterminated char", "'a", "unterminated character"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			l := New("t.c", tc.src)
			l.All()
			errs := l.Errors()
			if len(errs) == 0 {
				t.Fatalf("expected an error for %q", tc.src)
			}
			if !strings.Contains(errs[0].Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", errs[0], tc.want)
			}
		})
	}
}

// Property: lexing always terminates with EOF and never panics on
// arbitrary printable input.
func TestQuickLexTotal(t *testing.T) {
	f := func(raw []byte) bool {
		// Restrict to printable ASCII plus whitespace so error noise stays
		// meaningful.
		var sb strings.Builder
		for _, b := range raw {
			c := b%95 + 32
			sb.WriteByte(c)
		}
		l := New("q.c", sb.String())
		toks := l.All()
		return len(toks) > 0 && toks[len(toks)-1].Kind == ctoken.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: token texts of idents and numbers concatenate back to
// substrings of the input (no invented characters).
func TestQuickTokensFromInput(t *testing.T) {
	f := func(words []uint16) bool {
		var parts []string
		for _, w := range words {
			parts = append(parts, "x"+strings.Repeat("y", int(w%5)))
		}
		src := strings.Join(parts, " ")
		l := New("q.c", src)
		for _, tok := range l.All() {
			if tok.Kind == ctoken.IDENT && !strings.Contains(src, tok.Text) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
