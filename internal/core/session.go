package core

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"

	"safeflow/internal/cpp"
	"safeflow/internal/frontend"
	"safeflow/internal/irgen"
	"safeflow/internal/metrics"
	"safeflow/internal/vfg"
)

// Session holds a system open for incremental re-analysis. OpenSession
// runs the full pipeline once and captures per-function state; Update
// recompiles only the translation units whose preprocessed contents
// changed (fragment compiler) and re-solves only the invalidated
// functions plus their transitive caller cone (incremental vfg). The
// patched report is byte-identical to a from-scratch analysis of the
// edited sources at every worker count; any input the fast path cannot
// represent exactly falls back to a from-scratch run transparently.
//
// A Session is safe for concurrent use; updates are serialized (the
// fragment cache and captured state are single-writer).
type Session struct {
	mu      sync.Mutex
	closed  bool
	name    string
	opts    Options
	sources map[string]string
	cFiles  []string
	fc      *frontend.FragmentCompiler
	fragOK  bool
	incr    *vfg.IncrState
	locMemo map[string]*locEntry
	last    *Report
	// lastRes is the linked module the last good report was computed
	// for (or, after open, the module whose analysis the open report is
	// byte-identical to). When an update's compile returns the same
	// result object — every fragment reused or adopted — the previous
	// report is still exact and the downstream phases are skipped.
	lastRes *irgen.Result
	stats   UpdateStats
}

// UpdateStats describes how one Update was executed.
type UpdateStats struct {
	// Incremental is true when the update took the fast path (fragment
	// recompilation + incremental phase 3); false means a transparent
	// from-scratch fallback.
	Incremental bool
	// FuncsInvalidated / FuncsReused partition the defined functions:
	// the invalidation cone versus the summaries reused in place.
	FuncsInvalidated int
	FuncsReused      int
	// UnitsReplayed / UnitsSolved partition the (function, context)
	// closure of the incremental solve.
	UnitsReplayed int
	UnitsSolved   int
	// Restarts counts verification-triggered cone expansions.
	Restarts int
}

// OpenSession analyzes the system from scratch and opens it for
// incremental updates. The sources map is copied; cFiles order is
// preserved (it determines report identity).
func OpenSession(ctx context.Context, name string, sources map[string]string, cFiles []string, opts Options) (*Session, *Report, error) {
	s := &Session{
		name:    name,
		opts:    opts,
		sources: make(map[string]string, len(sources)),
		cFiles:  append([]string(nil), cFiles...),
		locMemo: make(map[string]*locEntry),
	}
	for k, v := range sources {
		s.sources[k] = v
	}
	// Incremental mode and the summary cache are mutually exclusive (a
	// session replays its own records instead).
	s.opts.DisableCache = true
	s.opts.CacheKey = ""
	fopts := frontend.Options{
		Defines:           s.opts.Defines,
		Workers:           s.opts.Workers,
		DisableParseCache: s.opts.DisableParseCache,
		DiskCache:         s.opts.DiskCache,
	}
	s.fc = frontend.NewFragmentCompiler(name, fopts, vfg.HashFunctionBody)

	// Warm the fragment cache and take its body hashes as the session's
	// fingerprint baseline, so the state captured now is comparable with
	// the hashes later updates compute.
	fres, hashes, fok := s.fc.Compile(ctx, cpp.MapSource(s.sources), s.cFiles)
	s.fragOK = fok
	if !fok {
		hashes = nil
	}

	openOpts := s.opts
	openOpts.incrOpts = &vfg.IncrOptions{BodyHashes: hashes}
	rep, err := AnalyzeSourcesContext(ctx, name, cpp.MapSource(s.sources), s.cFiles, openOpts)
	if err != nil {
		return nil, nil, err
	}
	s.incr = rep.incrState
	s.last = rep
	if fok && !rep.Degraded && len(rep.Internal) == 0 {
		s.lastRes = fres
	}
	return s, rep, nil
}

// Update applies source edits and re-analyzes. changed maps file names
// to new contents (new .c files are appended to the unit list in sorted
// order); removed names files to delete. It returns the patched report —
// byte-identical to a from-scratch analysis of the edited sources — and
// the execution stats.
func (s *Session) Update(ctx context.Context, changed map[string]string, removed ...string) (*Report, UpdateStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, UpdateStats{}, ErrSessionClosed
	}

	var added []string
	for f, text := range changed {
		if _, existed := s.sources[f]; !existed && strings.HasSuffix(f, ".c") {
			added = append(added, f)
		}
		s.sources[f] = text
	}
	sort.Strings(added)
	s.cFiles = append(s.cFiles, added...)
	for _, f := range removed {
		delete(s.sources, f)
		for i, cf := range s.cFiles {
			if cf == f {
				s.cFiles = append(s.cFiles[:i], s.cFiles[i+1:]...)
				break
			}
		}
	}

	rep, stats, err := s.update(ctx)
	if err != nil {
		return nil, UpdateStats{}, err
	}
	s.last = rep
	s.stats = stats
	return rep, stats, nil
}

func (s *Session) update(ctx context.Context) (*Report, UpdateStats, error) {
	src := cpp.MapSource(s.sources)
	if s.fragOK || s.incr != nil {
		var col *metrics.Collector
		if s.opts.Stats {
			col = metrics.NewCollector()
			col.SetTranslationUnits(len(s.cFiles))
		}
		done := col.Phase("frontend")
		res, hashes, ok := s.fc.Compile(ctx, src, s.cFiles)
		done()
		if ok && res == s.lastRes && s.last != nil {
			// Every fragment was reused or adopted: the module is the one
			// the last report was computed for, so that report is still
			// exact. Re-count the source stats (comments move them) and
			// mirror a full run's metric shape — phase list and SCC count
			// survive canonicalization and must match a fresh analysis.
			s.fragOK = true
			for _, ph := range []string{"shmflow", "restrict", "pointsto", "vfg"} {
				col.Phase(ph)()
			}
			reused := len(hashes)
			if col != nil {
				if m := s.last.Metrics; m != nil {
					col.SetPhase3(m.SCCs, 0, 0, 0, 0)
				}
				col.SetIncremental(0, reused, 0, 0)
			}
			rep := *s.last
			rep.LinesOfCode, rep.AnnotationLines = s.countStats()
			// Comment-only edits can move safeflow:ignore directives
			// without changing the module: re-apply suppression from the
			// raw findings so the patched report stays byte-identical to a
			// from-scratch run.
			rep.finishReport(activePolicy(s.opts), scanSourceSuppressions(src, s.cFiles))
			rep.Metrics = col.Finish()
			return &rep, UpdateStats{Incremental: true, FuncsReused: reused}, nil
		}
		if ok {
			s.fragOK = true
			opts := s.opts
			opts.incrOpts = &vfg.IncrOptions{Prev: s.incr, BodyHashes: hashes}
			rep, err := analyzeModuleWith(ctx, s.name, res, opts, col, nil)
			if err != nil {
				return nil, UpdateStats{}, err
			}
			rep.LinesOfCode, rep.AnnotationLines = s.countStats()
			rep.finishReport(activePolicy(s.opts), scanSourceSuppressions(src, s.cFiles))
			rep.Metrics = col.Finish()
			if rep.incrState != nil {
				// A run that crashed or was cancelled captures no state;
				// keep the last good checkpoint (the next update's
				// fingerprint diff is taken against it, which is sound —
				// anything changed since then is invalidated).
				s.incr = rep.incrState
			}
			s.lastRes = nil
			if !rep.Degraded && len(rep.Internal) == 0 {
				s.lastRes = res
			}
			st := UpdateStats{Incremental: true}
			if rep.incrStats != nil {
				st.FuncsInvalidated = rep.incrStats.FuncsInvalidated
				st.FuncsReused = rep.incrStats.FuncsReused
				st.UnitsReplayed = rep.incrStats.UnitsReplayed
				st.UnitsSolved = rep.incrStats.UnitsSolved
				st.Restarts = rep.incrStats.Restarts
			}
			return rep, st, nil
		}
		if ctx.Err() != nil {
			return nil, UpdateStats{}, ctx.Err()
		}
	}

	// Fallback: from-scratch analysis. Capture fresh state when the run
	// allows it (non-degraded); a degraded run keeps the old checkpoint.
	s.fragOK = false
	s.lastRes = nil
	fullOpts := s.opts
	fullOpts.incrOpts = &vfg.IncrOptions{}
	rep, err := AnalyzeSourcesContext(ctx, s.name, src, s.cFiles, fullOpts)
	if err != nil {
		return nil, UpdateStats{}, err
	}
	if rep.incrState != nil {
		s.incr = rep.incrState
	}
	return rep, UpdateStats{}, nil
}

// ErrSessionClosed is returned by Update on a session Close has torn
// down.
var ErrSessionClosed = errors.New("safeflow: session is closed")

// Close tears the session down: it waits for any in-flight Update to
// finish — a session is never interrupted mid-update — then marks the
// session closed and releases the captured per-function state. Further
// Updates fail with ErrSessionClosed; Last and CFiles keep answering
// from the final state. Closing twice is a no-op.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.fc = nil
	s.incr = nil
	s.lastRes = nil
	s.locMemo = nil
}

// Last returns the most recent report (the open report until the first
// update), and the stats of the most recent update.
func (s *Session) Last() (*Report, UpdateStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last, s.stats
}

// CFiles returns a copy of the current translation-unit list.
func (s *Session) CFiles() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.cFiles...)
}

// locEntry memoizes one file's contribution to countSourceStats: its
// line counts and the quoted includes it pulls in, keyed by content.
type locEntry struct {
	content  string
	loc      int
	annots   int
	includes []string
}

// countStats reproduces countSourceStats over the session's sources,
// recounting only files whose contents changed since the last update.
func (s *Session) countStats() (loc, annots int) {
	seen := make(map[string]bool)
	var visit func(name string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		text, ok := s.sources[name]
		if !ok {
			return
		}
		e := s.locMemo[name]
		if e == nil || e.content != text {
			e = &locEntry{content: text}
			for _, line := range strings.Split(text, "\n") {
				trimmed := strings.TrimSpace(line)
				if trimmed != "" {
					e.loc++
				}
				if strings.Contains(line, "SafeFlow Annotation") {
					e.annots++
				}
				if strings.HasPrefix(trimmed, "#include") {
					if i := strings.IndexByte(trimmed, '"'); i >= 0 {
						rest := trimmed[i+1:]
						if j := strings.IndexByte(rest, '"'); j > 0 {
							e.includes = append(e.includes, rest[:j])
						}
					}
				}
			}
			s.locMemo[name] = e
		}
		loc += e.loc
		annots += e.annots
		for _, inc := range e.includes {
			visit(inc)
		}
	}
	for _, f := range s.cFiles {
		visit(f)
	}
	return loc, annots
}
