package core_test

// Acceptance tests for graceful degradation at the pipeline level: a
// deliberately broken translation unit yields a degraded report (not an
// error), calls into its definitions taint conservatively, and the
// degraded report is byte-identical at every worker count.

import (
	"runtime"
	"strings"
	"testing"

	"safeflow/internal/core"
	"safeflow/internal/corpus"
	"safeflow/internal/cpp"
	"safeflow/internal/diag"
	"safeflow/internal/report"
)

// A call into a function whose defining unit was skipped must be treated
// as an unknown-taint source: the assert depending on it is reported
// even though nothing observable in the surviving units taints it.
func TestRecoverConservativeMissingDefTaint(t *testing.T) {
	sources := map[string]string{
		"helper.c": "double getval() { return 0.5; }\nint oops( {\n", // parse error: unit skipped
		"main.c": `
double getval();
int main()
{
	double u;
	u = getval();
	/***SafeFlow Annotation assert(safe(u)) /***/
	writeDA(0, u);
	return 0;
}
`,
	}
	rep, err := core.AnalyzeSources("missing-def", cpp.MapSource(sources),
		[]string{"helper.c", "main.c"}, core.Options{Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("report not degraded")
	}
	if len(rep.ErrorsData) == 0 {
		var sb strings.Builder
		report.Write(&sb, rep)
		t.Fatalf("assert fed by a skipped definition not reported:\n%s", sb.String())
	}
	var sb strings.Builder
	report.Write(&sb, rep)
	text := sb.String()
	if !strings.Contains(text, "whose defining unit was skipped") {
		t.Errorf("witness does not name the skipped definition:\n%s", text)
	}
	if !strings.Contains(text, "analysis DEGRADED") {
		t.Errorf("text report missing the degraded verdict line:\n%s", text)
	}

	// The same system in strict mode fails outright.
	if _, err := core.AnalyzeSources("missing-def", cpp.MapSource(sources),
		[]string{"helper.c", "main.c"}, core.Options{}); err == nil {
		t.Error("strict mode accepted the broken unit")
	}
}

// A degraded report never claims Clean, even when the surviving units
// alone have nothing to flag.
func TestRecoverDegradedNeverClean(t *testing.T) {
	sources := map[string]string{
		"broken.c": "int bad( {\n",
		"main.c":   "int main() { return 0; }\n",
	}
	rep, err := core.AnalyzeSources("degraded-clean", cpp.MapSource(sources),
		[]string{"broken.c", "main.c"}, core.Options{Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings)+rep.TotalErrors()+len(rep.Violations) != 0 {
		t.Fatalf("surviving unit flagged unexpectedly")
	}
	if rep.Clean() {
		t.Error("degraded report claims Clean")
	}
}

// The ISSUE acceptance scenario: a real corpus system with one broken
// translation unit still produces verdicts for the surviving units, and
// the degraded report is byte-identical at workers 1, 2, GOMAXPROCS.
func TestCorpusBrokenUnitDegradedDeterministic(t *testing.T) {
	sys := corpus.IP()
	src, err := sys.SourceMap()
	if err != nil {
		t.Fatal(err)
	}
	src["control.c"] += "\nint __broken( {\n"

	var firstText, firstJSON string
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		rep, err := core.AnalyzeSources(sys.Name, cpp.MapSource(src), sys.CFiles,
			core.Options{Recover: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: analysis failed outright: %v", workers, err)
		}
		if !rep.Degraded {
			t.Fatalf("workers=%d: not degraded", workers)
		}
		units := diag.Units(rep.Diagnostics)
		if len(units) != 1 || units[0] != "control.c" {
			t.Fatalf("workers=%d: diagnostic units = %v, want [control.c]", workers, units)
		}
		// The unaffected units' verdicts survive: init.c's regions and
		// the unmonitored accesses outside control.c are still reported.
		if len(rep.Regions) == 0 || len(rep.Warnings) == 0 {
			t.Fatalf("workers=%d: surviving verdicts missing (regions=%d warnings=%d)",
				workers, len(rep.Regions), len(rep.Warnings))
		}
		var text, js strings.Builder
		report.Write(&text, rep)
		if err := report.WriteJSON(&js, rep); err != nil {
			t.Fatal(err)
		}
		if firstText == "" {
			firstText, firstJSON = text.String(), js.String()
			continue
		}
		if text.String() != firstText {
			t.Errorf("workers=%d: text report differs from workers=1", workers)
		}
		if js.String() != firstJSON {
			t.Errorf("workers=%d: JSON report differs from workers=1", workers)
		}
	}
	if !strings.Contains(firstText, "Degraded analysis") {
		t.Errorf("degraded section missing:\n%s", firstText)
	}
}
