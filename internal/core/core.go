// Package core orchestrates the complete SafeFlow analysis — the paper's
// three phases over the compiled IR of a core component:
//
//  1. shared-memory region and pointer identification (internal/shmflow),
//  2. language-restriction enforcement P1–P3/A1–A2 (internal/restrict),
//  3. unmonitored-access warnings and critical-data dependency errors
//     (internal/vfg), backed by the alias analysis (internal/pointsto).
//
// The Report it produces carries everything Table 1 of the paper reports
// per system: annotation counts, warnings, error dependencies, and the
// control-only dependencies that the paper's experience maps to false
// positives requiring manual inspection.
package core

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"safeflow/internal/callgraph"
	"safeflow/internal/cpp"
	"safeflow/internal/ctoken"
	"safeflow/internal/diag"
	"safeflow/internal/diskcache"
	"safeflow/internal/frontend"
	"safeflow/internal/guard"
	"safeflow/internal/ir"
	"safeflow/internal/irgen"
	"safeflow/internal/metrics"
	"safeflow/internal/pointsto"
	"safeflow/internal/policy"
	"safeflow/internal/restrict"
	"safeflow/internal/shmflow"
	"safeflow/internal/vfg"
)

// phaseHook, when non-nil, runs at the start of every pipeline phase
// with the phase and system names. It exists for fault-injection and
// cancellation tests (a hook that panics exercises the phase isolation;
// one that cancels a context exercises mid-run cancellation) and must
// stay nil in production use.
var (
	phaseHookMu sync.RWMutex
	phaseHook   func(phase, system string)
)

// SetPhaseHook installs (or, with nil, removes) the test-only phase
// hook. Tests that install a hook must remove it before finishing and
// must not run in parallel with other analyses.
func SetPhaseHook(f func(phase, system string)) {
	phaseHookMu.Lock()
	phaseHook = f
	phaseHookMu.Unlock()
}

// firePhaseHook invokes the hook inside the phase's panic-isolation
// scope, so an injected panic is indistinguishable from a real one.
func firePhaseHook(phase, system string) {
	phaseHookMu.RLock()
	f := phaseHook
	phaseHookMu.RUnlock()
	if f != nil {
		f(phase, system)
	}
}

// Options tune the analysis.
type Options struct {
	// PointsTo selects the alias-analysis solver (default ModeSubset, the
	// field-sensitive inclusion solver).
	PointsTo pointsto.Mode
	// Exponential switches phase 3 to the paper's unoptimized per-call-path
	// analysis (ablation A-2).
	Exponential bool
	// Roots names entry functions for phase 3 (default: functions without
	// callers). Names that do not resolve to a defined function are
	// reported as AnnotationErrors.
	Roots []string
	// Defines predefines preprocessor macros.
	Defines map[string]string
	// Workers bounds the concurrency of the frontend (translation units)
	// and of phase 3 (callgraph SCCs). 0 means runtime.GOMAXPROCS(0);
	// 1 runs sequentially. Reports are byte-identical at every setting.
	Workers int
	// CacheKey enables the phase-3 summary cache across repeated analyses
	// of identical input. AnalyzeSources derives it from the source
	// contents and options when empty; direct AnalyzeModule callers must
	// set it themselves (it must fingerprint the module contents) or leave
	// it empty to disable caching.
	CacheKey string
	// DisableCache turns the summary cache off entirely (cold-run
	// benchmarks, memory-constrained batch runs).
	DisableCache bool
	// DisableParseCache turns the frontend's content-keyed parse cache
	// off, forcing every translation unit through lex + parse even when
	// its preprocessed contents are unchanged from a prior run.
	DisableParseCache bool
	// DiskCache, when non-nil, adds a persistent content-addressed tier
	// below both in-memory caches: parsed ASTs (parse cache) and
	// converged module summaries (vfg cache) are written to the store and
	// read back across process restarts, so CLI warm starts and daemon
	// workers skip work a previous process already did. Every entry is
	// integrity-checked on read; a damaged entry is evicted and
	// recomputed (cache_corrupt_evictions), never trusted. Degraded runs
	// keep the existing contract: they neither seed from nor store to the
	// summary tier.
	DiskCache diskcache.CacheBackend
	// Stats collects run metrics (per-phase wall times, pipeline shape
	// counters, cache hit rates, peak goroutines) into Report.Metrics,
	// which the JSON report embeds under its versioned "metrics" key.
	Stats bool
	// Policy selects the compiled taint policy that drives phase 3's
	// seeding and sink checking (see internal/policy). Nil runs the
	// default simplex-shm policy and renders reports byte-identically to
	// builds that predate configurable policies; a non-nil policy adds
	// per-rule attribution to the text and JSON reports. The policy's
	// name and fingerprint join the summary-cache key, so two policies
	// never share cache entries.
	Policy *policy.Compiled
	// Recover enables graceful degradation: translation units that fail
	// to preprocess, lex, parse, or type-check are skipped with
	// structured diagnostics (Report.Diagnostics) instead of failing the
	// whole analysis, calls into their definitions are treated as
	// unknown-taint sources, and the report is marked Degraded (never
	// Clean). Off by default: the zero Options preserve the fail-stop
	// behavior library callers rely on; the safeflow CLI enables it
	// unless -strict is given.
	Recover bool

	// incrOpts, when non-nil, runs phase 3 incrementally against a
	// previous run's captured state (Session.Update sets it). Unexported:
	// the state is only valid for the exact module the session built, so
	// outside callers go through Session.
	incrOpts *vfg.IncrOptions
}

// Report is the complete analysis output for one system.
type Report struct {
	Name    string
	Module  *ir.Module
	Regions []*shmflow.Region

	// AnnotationErrors are malformed or unresolvable annotations (phase 1).
	AnnotationErrors []error
	// Violations are restriction violations (phase 2).
	Violations []restrict.Violation
	// Warnings are unmonitored non-core value accesses (phase 3a) — the
	// paper reports these contain no false positives or negatives.
	Warnings []*vfg.Source
	// ErrorsData are critical-data dependencies with at least one data-flow
	// path from an unmonitored value (the paper's real error dependencies).
	ErrorsData []*vfg.ErrorDep
	// ErrorsControlOnly are dependencies established only through control
	// flow — the paper's false-positive class, flagged for manual
	// inspection with their value-flow traces.
	ErrorsControlOnly []*vfg.ErrorDep
	// Internal are panics recovered by the pipeline's isolation layer
	// (*guard.InternalError values carrying phase, unit, and stack). A
	// report with internal errors is never Clean: the crashed phase's
	// results may be partial, everything else is complete.
	Internal []error
	// Diagnostics are the structured front-end failures of a recovering
	// run (Options.Recover): one entry per lex/parse/typecheck/lower
	// error, attributed to the translation unit that was skipped because
	// of it. Sorted by (unit, phase, position, message).
	Diagnostics []diag.Diagnostic
	// Degraded marks a run in which one or more translation units were
	// skipped: the verdicts cover only the surviving units (with calls
	// into skipped definitions treated conservatively), so the report
	// never claims Clean.
	Degraded bool
	// Metrics is the run's instrumentation snapshot (Options.Stats);
	// nil when stats collection was off.
	Metrics *metrics.RunMetrics

	// PolicyName and PolicyFingerprint identify the taint policy the run
	// used (the default simplex-shm policy when Options.Policy was nil).
	PolicyName        string
	PolicyFingerprint string
	// PolicyExplicit marks a run with an explicitly configured policy.
	// Rule attribution appears in the text and JSON formats only then,
	// keeping default-run reports byte-identical to historic output;
	// SARIF (a new format) always attributes rules.
	PolicyExplicit bool
	// PolicyRules is the active policy's rule metadata, in stable order
	// (drives the SARIF rules array).
	PolicyRules []policy.RuleMeta
	// Suppressed is the audit trail of findings matched by inline
	// `// safeflow:ignore <rule-id> <reason>` directives: suppressed
	// findings move here instead of being dropped silently.
	Suppressed []SuppressedFinding
	// SuppressionIssues diagnoses directives that are malformed or
	// reference a rule id the active policy does not define. A report
	// with suppression issues is never Clean (and `safeflow -strict`
	// exits 3 on them).
	SuppressionIssues []SuppressionIssue

	// LinesOfCode counts non-blank source lines across the analyzed files.
	LinesOfCode int
	// AnnotationLines counts SafeFlow annotation comments.
	AnnotationLines int
	// UnitsAnalyzed is the number of (function, context) solves phase 3
	// performed (the A-2 ablation metric).
	UnitsAnalyzed int

	// Raw (pre-suppression) findings, captured the first time
	// finishReport runs so re-application — session fast paths re-run it
	// after comment-only edits move directives — always starts from the
	// original finding set.
	rawCaptured          bool
	rawWarnings          []*vfg.Source
	rawErrorsData        []*vfg.ErrorDep
	rawErrorsControlOnly []*vfg.ErrorDep

	// incrState is phase 3's captured per-function state for the next
	// incremental update; incrStats describes how much of this run was
	// reused. Both are nil on non-session runs. Unexported: Session owns
	// the lifecycle.
	incrState *vfg.IncrState
	incrStats *vfg.IncrStats
}

// SuppressedFinding is one finding matched by an inline safeflow:ignore
// directive: recorded with the directive's justification instead of
// silently dropped, so suppressions stay auditable in every format.
type SuppressedFinding struct {
	Rule   string
	Reason string
	File   string
	Line   int
	// Kind classifies the suppressed finding: "warning", "error" or
	// "control-only".
	Kind string
	// Text is the finding's rendered one-line form.
	Text string
}

// SuppressionIssue is a structured diagnostic for a suppression
// directive the analysis cannot honor: a missing rule id, or a rule id
// the active policy does not define.
type SuppressionIssue struct {
	File string
	// Line is the directive's own line.
	Line int
	Rule string
	Msg  string
}

func (i SuppressionIssue) String() string {
	return fmt.Sprintf("%s:%d: %s", i.File, i.Line, i.Msg)
}

// TotalErrors returns all reported error dependencies (data + control).
func (r *Report) TotalErrors() int { return len(r.ErrorsData) + len(r.ErrorsControlOnly) }

// Clean reports whether the analysis found nothing to flag. A degraded
// run is never clean: skipped units mean the verdict is incomplete.
func (r *Report) Clean() bool {
	return len(r.AnnotationErrors) == 0 && len(r.Violations) == 0 &&
		len(r.Warnings) == 0 && r.TotalErrors() == 0 && len(r.Internal) == 0 &&
		!r.Degraded && len(r.Diagnostics) == 0 && len(r.SuppressionIssues) == 0
}

// AnalyzeSources compiles and analyzes the translation units named by
// cFiles against the given source tree.
func AnalyzeSources(name string, sources cpp.Source, cFiles []string, opts Options) (*Report, error) {
	return AnalyzeSourcesContext(context.Background(), name, sources, cFiles, opts)
}

// AnalyzeSourcesContext is AnalyzeSources with cancellation: a cancelled
// context stops the pipeline between translation units (frontend) and
// between analysis units (phase-3 SCC waves) and returns ctx.Err().
// Every phase runs panic-isolated — a crash is converted into a
// *guard.InternalError in Report.Internal instead of unwinding the
// caller, so one bad system in a batch fails alone.
func AnalyzeSourcesContext(ctx context.Context, name string, sources cpp.Source, cFiles []string, opts Options) (*Report, error) {
	var col *metrics.Collector
	if opts.Stats {
		col = metrics.NewCollector()
		col.SetTranslationUnits(len(cFiles))
	}

	var (
		res     *irgen.Result
		diags   []diag.Diagnostic
		missing map[string]bool
	)
	fopts := frontend.Options{
		Defines:           opts.Defines,
		Workers:           opts.Workers,
		DisableParseCache: opts.DisableParseCache,
		DiskCache:         opts.DiskCache,
		Metrics:           col,
	}
	done := col.Phase("frontend")
	err := guard.Run("frontend", name, func() error {
		firePhaseHook("frontend", name)
		if opts.Recover {
			rr, cerr := frontend.CompileRecoverContext(ctx, name, sources, cFiles, fopts)
			if cerr != nil {
				return cerr
			}
			res, diags, missing = rr.Res, rr.Diags, rr.MissingDefs
			return nil
		}
		var cerr error
		res, cerr = frontend.CompileContext(ctx, name, sources, cFiles, fopts)
		return cerr
	})
	done()
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var ie *guard.InternalError
		if errors.As(err, &ie) {
			// A frontend crash leaves no module to analyze: report the
			// isolated failure for this system and let the batch go on.
			rep := &Report{Name: name, Internal: []error{err}}
			rep.Metrics = col.Finish()
			return rep, nil
		}
		return nil, fmt.Errorf("safeflow: %w", err)
	}
	degraded := len(diags) > 0
	if degraded {
		// A degraded module must never publish to (or seed from) the
		// summary cache: its fingerprint describes the full source set,
		// not the surviving subset.
		opts.DisableCache = true
		opts.CacheKey = ""
		// And it must not be analyzed incrementally either: skipped-def
		// summaries are conservative placeholders and are never reused.
		opts.incrOpts = nil
	}
	if opts.CacheKey == "" && !opts.DisableCache {
		opts.CacheKey = fingerprintSources(name, sources, cFiles, opts)
	}
	rep, err := analyzeModuleWith(ctx, name, res, opts, col, missing)
	if err != nil {
		return nil, err
	}
	rep.Diagnostics = diags
	rep.Degraded = degraded
	rep.LinesOfCode, rep.AnnotationLines = countSourceStats(sources, cFiles)
	rep.finishReport(activePolicy(opts), scanSourceSuppressions(sources, cFiles))
	rep.Metrics = col.Finish()
	return rep, nil
}

// AnalyzeString analyzes a single-buffer program (quickstart, tests).
func AnalyzeString(name, src string, opts Options) (*Report, error) {
	return AnalyzeSources(name, cpp.MapSource{"main.c": src}, []string{"main.c"}, opts)
}

// AnalyzeModule runs phases 1–3 on an already-compiled module.
func AnalyzeModule(name string, res *irgen.Result, opts Options) *Report {
	rep, _ := analyzeModuleWith(context.Background(), name, res, opts, nil, nil)
	return rep
}

// AnalyzeModuleContext is AnalyzeModule with cancellation; it returns
// ctx.Err() when the run was cancelled between phases or analysis units.
func AnalyzeModuleContext(ctx context.Context, name string, res *irgen.Result, opts Options) (*Report, error) {
	return analyzeModuleWith(ctx, name, res, opts, nil, nil)
}

// analyzeModuleWith drives phases 1–3, each wrapped in panic isolation
// and separated by cancellation checks; col (may be nil) collects
// metrics, and missing (may be nil) names the functions whose defining
// units the recovering front end skipped.
func analyzeModuleWith(ctx context.Context, name string, res *irgen.Result, opts Options, col *metrics.Collector, missing map[string]bool) (*Report, error) {
	mode := opts.PointsTo
	if mode == 0 {
		mode = pointsto.ModeSubset
	}
	m := res.Module
	rep := &Report{Name: name, Module: m}
	pol := activePolicy(opts)
	rep.PolicyName = pol.Name
	rep.PolicyFingerprint = pol.Fingerprint()
	rep.PolicyExplicit = opts.Policy != nil
	rep.PolicyRules = pol.Rules

	// Phase 1: shared-memory regions (and the callgraph it needs).
	var cg *callgraph.Graph
	var sf *shmflow.Result
	done := col.Phase("shmflow")
	err := guard.Run("shmflow", name, func() error {
		firePhaseHook("shmflow", name)
		cg = callgraph.New(m)
		sf = shmflow.Analyze(m, cg)
		return nil
	})
	done()
	if err != nil {
		// Without region facts neither restriction checking nor the
		// value-flow analysis is meaningful: fail this system alone.
		rep.Internal = append(rep.Internal, err)
		rep.Metrics = col.Finish()
		return rep, nil
	}
	rep.Regions = sf.Regions
	rep.AnnotationErrors = sf.Errors
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}

	// Phase 2.
	done = col.Phase("restrict")
	err = guard.Run("restrict", name, func() error {
		firePhaseHook("restrict", name)
		rep.Violations = restrict.Check(m, sf)
		return nil
	})
	done()
	if err != nil {
		// Phase 3 does not consume phase-2 results: record and continue.
		rep.Internal = append(rep.Internal, err)
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}

	// Phase 3: alias analysis, then the value-flow fixpoint.
	var pts *pointsto.Result
	done = col.Phase("pointsto")
	err = guard.Run("pointsto", name, func() error {
		firePhaseHook("pointsto", name)
		pts = pointsto.Analyze(m, mode)
		return nil
	})
	done()
	if err != nil {
		rep.Internal = append(rep.Internal, err)
		rep.Metrics = col.Finish()
		return rep, nil
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}

	if opts.DisableCache {
		opts.CacheKey = ""
	}
	var roots []*ir.Function
	var rootErrs []error
	for _, r := range opts.Roots {
		f := m.FuncByName(r)
		switch {
		case f == nil:
			rootErrs = append(rootErrs, fmt.Errorf(
				"root function %q not found in %s (analysis entry ignored)", r, name))
		case f.IsDecl:
			rootErrs = append(rootErrs, fmt.Errorf(
				"root function %q is declared but not defined in %s (analysis entry ignored)", r, name))
		default:
			roots = append(roots, f)
		}
	}
	var v *vfg.Result
	done = col.Phase("vfg")
	err = guard.Run("vfg", name, func() error {
		firePhaseHook("vfg", name)
		v = vfg.Run(vfg.Config{
			Module:      m,
			CG:          cg,
			SF:          sf,
			PTS:         pts,
			AssertVars:  res.AssertVars,
			Roots:       roots,
			Exponential: opts.Exponential,
			Workers:     opts.Workers,
			CacheKey:    opts.CacheKey,
			DiskCache:   opts.DiskCache,
			Ctx:         ctx,
			Metrics:     col,
			MissingDefs: missing,
			Incr:        opts.incrOpts,
			Policy:      opts.Policy,
		})
		return nil
	})
	done()
	if err != nil {
		rep.Internal = append(rep.Internal, err)
		rep.Metrics = col.Finish()
		return rep, nil
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	rep.Internal = append(rep.Internal, v.Internal...)
	col.SetPhase3(v.SCCs, v.Rounds, v.UnitsAnalyzed, v.CacheHits, v.CacheMisses)
	rep.incrState = v.NextIncr
	rep.incrStats = v.Incr
	if v.Incr != nil {
		col.SetIncremental(v.Incr.FuncsInvalidated, v.Incr.FuncsReused, v.Incr.UnitsReplayed, v.Incr.Restarts)
	}

	rep.Warnings = v.Warnings
	rep.UnitsAnalyzed = v.UnitsAnalyzed
	rep.AnnotationErrors = append(rep.AnnotationErrors, rootErrs...)

	// The paper inserts the InitCheck run-time verification into every
	// initializing function; since we analyze rather than rewrite, verify
	// it is present wherever shared-memory variables are declared.
	// Iterate in module function order (not map order) so the error list
	// is deterministic.
	for _, initFn := range m.Funcs {
		if !sf.InitFuncs[initFn] {
			continue
		}
		if len(sf.Regions) == 0 {
			break
		}
		declaresHere := false
		for _, r := range sf.Regions {
			if r.Init == initFn {
				declaresHere = true
			}
		}
		if !declaresHere {
			continue
		}
		if !callsInitCheck(initFn) {
			rep.AnnotationErrors = append(rep.AnnotationErrors, fmt.Errorf(
				"%s: initializing function %q declares shared-memory variables but never calls InitCheck (overlap verification missing)",
				initFn.Pos, initFn.Name))
		}
	}
	for _, e := range v.Errors {
		if e.ControlOnly {
			rep.ErrorsControlOnly = append(rep.ErrorsControlOnly, e)
		} else {
			rep.ErrorsData = append(rep.ErrorsData, e)
		}
	}
	return rep, nil
}

// callsInitCheck reports whether the function (directly) calls InitCheck.
func callsInitCheck(f *ir.Function) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && c.Callee.Name == "InitCheck" {
				return true
			}
		}
	}
	return false
}

// fingerprintSources derives a summary-cache key covering every analysis
// input: the source files reachable through quoted includes (same
// traversal as countSourceStats), the macro defines, and the options that
// change phase-3 results. Two analyses with equal fingerprints see
// identical modules, which is what the vfg cache's soundness relies on.
func fingerprintSources(name string, sources cpp.Source, cFiles []string, opts Options) string {
	h := sha256.New()
	put := func(parts ...string) {
		for _, p := range parts {
			fmt.Fprintf(h, "%d:%s;", len(p), p)
		}
	}
	put("v2", name)
	put(fmt.Sprintf("mode=%d exp=%v", opts.PointsTo, opts.Exponential))
	// The policy changes phase-3 seeding, sink checking and rule
	// attribution, all of which are encoded in cached summaries: fold its
	// identity in so differing policies never share entries at any tier.
	pol := activePolicy(opts)
	put("policy="+pol.Name, pol.Fingerprint())
	put(opts.Roots...)
	defs := make([]string, 0, len(opts.Defines))
	for k, v := range opts.Defines {
		defs = append(defs, k+"="+v)
	}
	sort.Strings(defs)
	put(defs...)

	seen := make(map[string]bool)
	var visit func(file string)
	visit = func(file string) {
		if seen[file] {
			return
		}
		seen[file] = true
		text, err := sources.ReadFile(file)
		if err != nil {
			put(file, "<unreadable>")
			return
		}
		put(file, text)
		for _, line := range strings.Split(text, "\n") {
			trimmed := strings.TrimSpace(line)
			if !strings.HasPrefix(trimmed, "#include") {
				continue
			}
			if i := strings.IndexByte(trimmed, '"'); i >= 0 {
				rest := trimmed[i+1:]
				if j := strings.IndexByte(rest, '"'); j > 0 {
					visit(rest[:j])
				}
			}
		}
	}
	for _, f := range cFiles {
		visit(f)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// countSourceStats counts non-blank lines and annotation comments across
// the program's files (headers included once each).
func countSourceStats(sources cpp.Source, cFiles []string) (loc, annots int) {
	seen := make(map[string]bool)
	var visit func(name string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		text, err := sources.ReadFile(name)
		if err != nil {
			return
		}
		for _, line := range strings.Split(text, "\n") {
			trimmed := strings.TrimSpace(line)
			if trimmed != "" {
				loc++
			}
			if strings.Contains(line, "SafeFlow Annotation") {
				annots++
			}
			if strings.HasPrefix(trimmed, "#include") {
				if i := strings.IndexByte(trimmed, '"'); i >= 0 {
					rest := trimmed[i+1:]
					if j := strings.IndexByte(rest, '"'); j > 0 {
						visit(rest[:j])
					}
				}
			}
		}
	}
	for _, f := range cFiles {
		visit(f)
	}
	return loc, annots
}

// activePolicy resolves the policy the run analyzes under: the
// configured one, or the default simplex-shm policy when Options.Policy
// is nil.
func activePolicy(opts Options) *policy.Compiled {
	if opts.Policy != nil {
		return opts.Policy
	}
	return policy.Default()
}

// scanSourceSuppressions collects inline safeflow:ignore directives from
// every file reachable through quoted includes (same traversal as
// countSourceStats, so the scan sees exactly the analyzed program).
func scanSourceSuppressions(sources cpp.Source, cFiles []string) []policy.Suppression {
	var out []policy.Suppression
	seen := make(map[string]bool)
	var visit func(name string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		text, err := sources.ReadFile(name)
		if err != nil {
			return
		}
		out = append(out, policy.ScanSuppressions(name, text)...)
		for _, line := range strings.Split(text, "\n") {
			trimmed := strings.TrimSpace(line)
			if !strings.HasPrefix(trimmed, "#include") {
				continue
			}
			if i := strings.IndexByte(trimmed, '"'); i >= 0 {
				rest := trimmed[i+1:]
				if j := strings.IndexByte(rest, '"'); j > 0 {
					visit(rest[:j])
				}
			}
		}
	}
	for _, f := range cFiles {
		visit(f)
	}
	return out
}

// finishReport applies the scanned suppression directives to the
// report: findings whose position and rule id match a directive move
// from Warnings/Errors to the Suppressed audit trail, and directives
// with a missing or unknown rule id become SuppressionIssues. It is
// idempotent — the pre-suppression finding slices are captured on first
// call and every application restarts from them — because session fast
// paths re-run it after comment-only edits move directives around.
func (r *Report) finishReport(pol *policy.Compiled, sups []policy.Suppression) {
	if !r.rawCaptured {
		r.rawCaptured = true
		r.rawWarnings = r.Warnings
		r.rawErrorsData = r.ErrorsData
		r.rawErrorsControlOnly = r.ErrorsControlOnly
	}
	r.Warnings = r.rawWarnings
	r.ErrorsData = r.rawErrorsData
	r.ErrorsControlOnly = r.rawErrorsControlOnly
	r.Suppressed = nil
	r.SuppressionIssues = nil

	// Index valid directives by file:line:rule; diagnose the rest.
	type supKey struct {
		file string
		line int
		rule string
	}
	byKey := make(map[supKey]policy.Suppression, len(sups))
	for _, s := range sups {
		switch {
		case s.Rule == "":
			r.SuppressionIssues = append(r.SuppressionIssues, SuppressionIssue{
				File: s.File, Line: s.CommentLine,
				Msg: "safeflow:ignore directive is missing a rule id",
			})
		case !pol.KnownRule(s.Rule):
			r.SuppressionIssues = append(r.SuppressionIssues, SuppressionIssue{
				File: s.File, Line: s.CommentLine, Rule: s.Rule,
				Msg: fmt.Sprintf("safeflow:ignore references rule %q, which policy %q does not define", s.Rule, pol.Name),
			})
		default:
			byKey[supKey{s.File, s.Line, s.Rule}] = s
		}
	}
	sort.Slice(r.SuppressionIssues, func(i, j int) bool {
		a, b := r.SuppressionIssues[i], r.SuppressionIssues[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	})
	if len(byKey) == 0 {
		return
	}

	match := func(pos ctoken.Pos, rule string) (policy.Suppression, bool) {
		s, ok := byKey[supKey{pos.File, pos.Line, rule}]
		return s, ok
	}
	suppress := func(s policy.Suppression, kind, text string) {
		r.Suppressed = append(r.Suppressed, SuppressedFinding{
			Rule: s.Rule, Reason: s.Reason, File: s.File, Line: s.Line,
			Kind: kind, Text: text,
		})
	}

	var warns []*vfg.Source
	for _, w := range r.rawWarnings {
		if s, ok := match(w.Pos, w.Rule); ok {
			suppress(s, "warning", w.String())
			continue
		}
		warns = append(warns, w)
	}
	r.Warnings = warns
	var errsData []*vfg.ErrorDep
	for _, e := range r.rawErrorsData {
		if s, ok := match(e.Pos, e.Rule); ok {
			suppress(s, "error", e.String())
			continue
		}
		errsData = append(errsData, e)
	}
	r.ErrorsData = errsData
	var errsCtrl []*vfg.ErrorDep
	for _, e := range r.rawErrorsControlOnly {
		if s, ok := match(e.Pos, e.Rule); ok {
			suppress(s, "control-only", e.String())
			continue
		}
		errsCtrl = append(errsCtrl, e)
	}
	r.ErrorsControlOnly = errsCtrl
	sort.Slice(r.Suppressed, func(i, j int) bool {
		a, b := r.Suppressed[i], r.Suppressed[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Text < b.Text
	})
}
