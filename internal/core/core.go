// Package core orchestrates the complete SafeFlow analysis — the paper's
// three phases over the compiled IR of a core component:
//
//  1. shared-memory region and pointer identification (internal/shmflow),
//  2. language-restriction enforcement P1–P3/A1–A2 (internal/restrict),
//  3. unmonitored-access warnings and critical-data dependency errors
//     (internal/vfg), backed by the alias analysis (internal/pointsto).
//
// The Report it produces carries everything Table 1 of the paper reports
// per system: annotation counts, warnings, error dependencies, and the
// control-only dependencies that the paper's experience maps to false
// positives requiring manual inspection.
package core

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"safeflow/internal/callgraph"
	"safeflow/internal/cpp"
	"safeflow/internal/frontend"
	"safeflow/internal/ir"
	"safeflow/internal/irgen"
	"safeflow/internal/pointsto"
	"safeflow/internal/restrict"
	"safeflow/internal/shmflow"
	"safeflow/internal/vfg"
)

// Options tune the analysis.
type Options struct {
	// PointsTo selects the alias-analysis solver (default ModeSubset, the
	// field-sensitive inclusion solver).
	PointsTo pointsto.Mode
	// Exponential switches phase 3 to the paper's unoptimized per-call-path
	// analysis (ablation A-2).
	Exponential bool
	// Roots names entry functions for phase 3 (default: functions without
	// callers). Names that do not resolve to a defined function are
	// reported as AnnotationErrors.
	Roots []string
	// Defines predefines preprocessor macros.
	Defines map[string]string
	// Workers bounds the concurrency of the frontend (translation units)
	// and of phase 3 (callgraph SCCs). 0 means runtime.GOMAXPROCS(0);
	// 1 runs sequentially. Reports are byte-identical at every setting.
	Workers int
	// CacheKey enables the phase-3 summary cache across repeated analyses
	// of identical input. AnalyzeSources derives it from the source
	// contents and options when empty; direct AnalyzeModule callers must
	// set it themselves (it must fingerprint the module contents) or leave
	// it empty to disable caching.
	CacheKey string
	// DisableCache turns the summary cache off entirely (cold-run
	// benchmarks, memory-constrained batch runs).
	DisableCache bool
}

// Report is the complete analysis output for one system.
type Report struct {
	Name    string
	Module  *ir.Module
	Regions []*shmflow.Region

	// AnnotationErrors are malformed or unresolvable annotations (phase 1).
	AnnotationErrors []error
	// Violations are restriction violations (phase 2).
	Violations []restrict.Violation
	// Warnings are unmonitored non-core value accesses (phase 3a) — the
	// paper reports these contain no false positives or negatives.
	Warnings []*vfg.Source
	// ErrorsData are critical-data dependencies with at least one data-flow
	// path from an unmonitored value (the paper's real error dependencies).
	ErrorsData []*vfg.ErrorDep
	// ErrorsControlOnly are dependencies established only through control
	// flow — the paper's false-positive class, flagged for manual
	// inspection with their value-flow traces.
	ErrorsControlOnly []*vfg.ErrorDep

	// LinesOfCode counts non-blank source lines across the analyzed files.
	LinesOfCode int
	// AnnotationLines counts SafeFlow annotation comments.
	AnnotationLines int
	// UnitsAnalyzed is the number of (function, context) solves phase 3
	// performed (the A-2 ablation metric).
	UnitsAnalyzed int
}

// TotalErrors returns all reported error dependencies (data + control).
func (r *Report) TotalErrors() int { return len(r.ErrorsData) + len(r.ErrorsControlOnly) }

// Clean reports whether the analysis found nothing to flag.
func (r *Report) Clean() bool {
	return len(r.AnnotationErrors) == 0 && len(r.Violations) == 0 &&
		len(r.Warnings) == 0 && r.TotalErrors() == 0
}

// AnalyzeSources compiles and analyzes the translation units named by
// cFiles against the given source tree.
func AnalyzeSources(name string, sources cpp.Source, cFiles []string, opts Options) (*Report, error) {
	res, err := frontend.Compile(name, sources, cFiles, frontend.Options{
		Defines: opts.Defines,
		Workers: opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("safeflow: %w", err)
	}
	if opts.CacheKey == "" && !opts.DisableCache {
		opts.CacheKey = fingerprintSources(name, sources, cFiles, opts)
	}
	rep := AnalyzeModule(name, res, opts)
	rep.LinesOfCode, rep.AnnotationLines = countSourceStats(sources, cFiles)
	return rep, nil
}

// AnalyzeString analyzes a single-buffer program (quickstart, tests).
func AnalyzeString(name, src string, opts Options) (*Report, error) {
	return AnalyzeSources(name, cpp.MapSource{"main.c": src}, []string{"main.c"}, opts)
}

// AnalyzeModule runs phases 1–3 on an already-compiled module.
func AnalyzeModule(name string, res *irgen.Result, opts Options) *Report {
	mode := opts.PointsTo
	if mode == 0 {
		mode = pointsto.ModeSubset
	}
	m := res.Module
	cg := callgraph.New(m)

	// Phase 1.
	sf := shmflow.Analyze(m, cg)

	// Phase 2.
	violations := restrict.Check(m, sf)

	// Phase 3.
	pts := pointsto.Analyze(m, mode)
	if opts.DisableCache {
		opts.CacheKey = ""
	}
	var roots []*ir.Function
	var rootErrs []error
	for _, r := range opts.Roots {
		f := m.FuncByName(r)
		switch {
		case f == nil:
			rootErrs = append(rootErrs, fmt.Errorf(
				"root function %q not found in %s (analysis entry ignored)", r, name))
		case f.IsDecl:
			rootErrs = append(rootErrs, fmt.Errorf(
				"root function %q is declared but not defined in %s (analysis entry ignored)", r, name))
		default:
			roots = append(roots, f)
		}
	}
	v := vfg.Run(vfg.Config{
		Module:      m,
		CG:          cg,
		SF:          sf,
		PTS:         pts,
		AssertVars:  res.AssertVars,
		Roots:       roots,
		Exponential: opts.Exponential,
		Workers:     opts.Workers,
		CacheKey:    opts.CacheKey,
	})

	rep := &Report{
		Name:             name,
		Module:           m,
		Regions:          sf.Regions,
		AnnotationErrors: sf.Errors,
		Violations:       violations,
		Warnings:         v.Warnings,
		UnitsAnalyzed:    v.UnitsAnalyzed,
	}
	rep.AnnotationErrors = append(rep.AnnotationErrors, rootErrs...)

	// The paper inserts the InitCheck run-time verification into every
	// initializing function; since we analyze rather than rewrite, verify
	// it is present wherever shared-memory variables are declared.
	// Iterate in module function order (not map order) so the error list
	// is deterministic.
	for _, initFn := range m.Funcs {
		if !sf.InitFuncs[initFn] {
			continue
		}
		if len(sf.Regions) == 0 {
			break
		}
		declaresHere := false
		for _, r := range sf.Regions {
			if r.Init == initFn {
				declaresHere = true
			}
		}
		if !declaresHere {
			continue
		}
		if !callsInitCheck(initFn) {
			rep.AnnotationErrors = append(rep.AnnotationErrors, fmt.Errorf(
				"%s: initializing function %q declares shared-memory variables but never calls InitCheck (overlap verification missing)",
				initFn.Pos, initFn.Name))
		}
	}
	for _, e := range v.Errors {
		if e.ControlOnly {
			rep.ErrorsControlOnly = append(rep.ErrorsControlOnly, e)
		} else {
			rep.ErrorsData = append(rep.ErrorsData, e)
		}
	}
	return rep
}

// callsInitCheck reports whether the function (directly) calls InitCheck.
func callsInitCheck(f *ir.Function) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && c.Callee.Name == "InitCheck" {
				return true
			}
		}
	}
	return false
}

// fingerprintSources derives a summary-cache key covering every analysis
// input: the source files reachable through quoted includes (same
// traversal as countSourceStats), the macro defines, and the options that
// change phase-3 results. Two analyses with equal fingerprints see
// identical modules, which is what the vfg cache's soundness relies on.
func fingerprintSources(name string, sources cpp.Source, cFiles []string, opts Options) string {
	h := sha256.New()
	put := func(parts ...string) {
		for _, p := range parts {
			fmt.Fprintf(h, "%d:%s;", len(p), p)
		}
	}
	put("v1", name)
	put(fmt.Sprintf("mode=%d exp=%v", opts.PointsTo, opts.Exponential))
	put(opts.Roots...)
	defs := make([]string, 0, len(opts.Defines))
	for k, v := range opts.Defines {
		defs = append(defs, k+"="+v)
	}
	sort.Strings(defs)
	put(defs...)

	seen := make(map[string]bool)
	var visit func(file string)
	visit = func(file string) {
		if seen[file] {
			return
		}
		seen[file] = true
		text, err := sources.ReadFile(file)
		if err != nil {
			put(file, "<unreadable>")
			return
		}
		put(file, text)
		for _, line := range strings.Split(text, "\n") {
			trimmed := strings.TrimSpace(line)
			if !strings.HasPrefix(trimmed, "#include") {
				continue
			}
			if i := strings.IndexByte(trimmed, '"'); i >= 0 {
				rest := trimmed[i+1:]
				if j := strings.IndexByte(rest, '"'); j > 0 {
					visit(rest[:j])
				}
			}
		}
	}
	for _, f := range cFiles {
		visit(f)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// countSourceStats counts non-blank lines and annotation comments across
// the program's files (headers included once each).
func countSourceStats(sources cpp.Source, cFiles []string) (loc, annots int) {
	seen := make(map[string]bool)
	var visit func(name string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		text, err := sources.ReadFile(name)
		if err != nil {
			return
		}
		for _, line := range strings.Split(text, "\n") {
			trimmed := strings.TrimSpace(line)
			if trimmed != "" {
				loc++
			}
			if strings.Contains(line, "SafeFlow Annotation") {
				annots++
			}
			if strings.HasPrefix(trimmed, "#include") {
				if i := strings.IndexByte(trimmed, '"'); i >= 0 {
					rest := trimmed[i+1:]
					if j := strings.IndexByte(rest, '"'); j > 0 {
						visit(rest[:j])
					}
				}
			}
		}
	}
	for _, f := range cFiles {
		visit(f)
	}
	return loc, annots
}
