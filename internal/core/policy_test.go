package core

import (
	"context"
	"crypto/sha256"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"safeflow/internal/cpp"
	"safeflow/internal/diskcache"
	"safeflow/internal/policy"
	"safeflow/internal/remotecache"
	"safeflow/internal/vfg"
)

// credSrc carries a credential from getpass straight into the log — one
// error under the credential-leak policy, clean under pii-to-log.
const credSrc = `
void serve()
{
    int pwd;
    pwd = getpass();
    log_msg(pwd);
}
`

func mustBuiltin(t *testing.T, name string) *policy.Compiled {
	t.Helper()
	pol, ok := policy.Builtin(name)
	if !ok {
		t.Fatalf("builtin policy %q missing", name)
	}
	return pol
}

func analyzeCred(t *testing.T, src string, opts Options) *Report {
	t.Helper()
	rep, err := AnalyzeSources("credsys", cpp.MapSource{"main.c": src}, []string{"main.c"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestPolicyFingerprintDistinct pins that differing policies produce
// differing source fingerprints (and therefore cache keys), while the
// nil policy and the explicit default share one — they analyze
// identically, so sharing summaries is sound and wanted.
func TestPolicyFingerprintDistinct(t *testing.T) {
	src := cpp.MapSource{"main.c": credSrc}
	files := []string{"main.c"}
	base := fingerprintSources("s", src, files, Options{})
	def := fingerprintSources("s", src, files, Options{Policy: policy.Default()})
	cred := fingerprintSources("s", src, files, Options{Policy: mustBuiltin(t, "credential-leak")})
	pii := fingerprintSources("s", src, files, Options{Policy: mustBuiltin(t, "pii-to-log")})
	if base != def {
		t.Errorf("nil policy and explicit default must share a cache key: %s vs %s", base, def)
	}
	if base == cred || base == pii || cred == pii {
		t.Errorf("distinct policies share a cache key: default=%s cred=%s pii=%s", base, cred, pii)
	}
}

// TestPolicyCacheIsolationMemory runs the same system under two
// policies and asserts the in-memory summary cache holds two separate
// entries — neither run saw the other's summaries.
func TestPolicyCacheIsolationMemory(t *testing.T) {
	vfg.ResetSummaryCache()
	t.Cleanup(vfg.ResetSummaryCache)
	rep := analyzeCred(t, credSrc, Options{Policy: mustBuiltin(t, "credential-leak")})
	if len(rep.ErrorsData) != 1 {
		t.Fatalf("credential-leak: got %d errors, want 1", len(rep.ErrorsData))
	}
	rep = analyzeCred(t, credSrc, Options{Policy: mustBuiltin(t, "pii-to-log")})
	if len(rep.ErrorsData) != 0 {
		t.Fatalf("pii-to-log: got %d errors, want 0", len(rep.ErrorsData))
	}
	keys := vfg.SummaryCacheKeys()
	if len(keys) != 2 {
		t.Fatalf("summary cache holds %d keys, want 2 (one per policy): %v", len(keys), keys)
	}
}

// recordingCache is a CacheBackend that remembers every key written.
type recordingCache struct {
	mu   sync.Mutex
	puts map[string][][sha256.Size]byte
}

func (r *recordingCache) Get(ns string, version uint32, key [sha256.Size]byte) ([]byte, bool, bool) {
	return nil, false, false
}

func (r *recordingCache) Put(ns string, version uint32, key [sha256.Size]byte, data []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.puts == nil {
		r.puts = make(map[string][][sha256.Size]byte)
	}
	r.puts[ns] = append(r.puts[ns], key)
}

func (r *recordingCache) summaryKeys() map[[sha256.Size]byte]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[[sha256.Size]byte]bool)
	for _, k := range r.puts["summary"] {
		out[k] = true
	}
	return out
}

// TestPolicyCacheIsolationDisk asserts the disk tier writes disjoint
// summary keys for runs differing only in policy.
func TestPolicyCacheIsolationDisk(t *testing.T) {
	vfg.ResetSummaryCache()
	t.Cleanup(vfg.ResetSummaryCache)
	var _ diskcache.CacheBackend = (*recordingCache)(nil)

	run := func(pol *policy.Compiled) map[[sha256.Size]byte]bool {
		vfg.ResetSummaryCache()
		rc := &recordingCache{}
		analyzeCred(t, credSrc, Options{Policy: pol, DiskCache: rc})
		keys := rc.summaryKeys()
		if len(keys) == 0 {
			t.Fatal("no summary keys written to the disk tier")
		}
		return keys
	}
	credKeys := run(mustBuiltin(t, "credential-leak"))
	piiKeys := run(mustBuiltin(t, "pii-to-log"))
	for k := range credKeys {
		if piiKeys[k] {
			t.Fatalf("disk tier key %x shared between policies", k)
		}
	}
}

// TestPolicyCacheIsolationRemote drives the remote tier against a
// recording HTTP server and asserts the two policies touch disjoint
// entry URLs.
func TestPolicyCacheIsolationRemote(t *testing.T) {
	vfg.ResetSummaryCache()
	t.Cleanup(vfg.ResetSummaryCache)

	var mu sync.Mutex
	paths := make(map[string]map[string]bool) // run label -> URL path set
	var label string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		if paths[label] == nil {
			paths[label] = make(map[string]bool)
		}
		paths[label][r.URL.Path] = true
		mu.Unlock()
		if r.Method == http.MethodGet {
			http.NotFound(w, r)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	client, err := remotecache.New(remotecache.Config{BaseURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	run := func(l string, pol *policy.Compiled) {
		vfg.ResetSummaryCache()
		mu.Lock()
		label = l
		mu.Unlock()
		analyzeCred(t, credSrc, Options{Policy: pol, DiskCache: client})
	}
	run("cred", mustBuiltin(t, "credential-leak"))
	run("pii", mustBuiltin(t, "pii-to-log"))

	mu.Lock()
	defer mu.Unlock()
	if len(paths["cred"]) == 0 || len(paths["pii"]) == 0 {
		t.Fatalf("remote tier saw no traffic: cred=%d pii=%d", len(paths["cred"]), len(paths["pii"]))
	}
	for p := range paths["cred"] {
		if !strings.Contains(p, "/v1/e/") {
			t.Fatalf("unexpected remote path %q", p)
		}
		if paths["pii"][p] {
			t.Fatalf("remote tier path %q shared between policies", p)
		}
	}
}

// TestSuppressionAuditTrail pins the audit-trail semantics end to end:
// a matching directive moves the finding out of the error list and into
// Suppressed with its justification; a trailing-comment directive and a
// directive-only line both bind to the right finding line.
func TestSuppressionAuditTrail(t *testing.T) {
	src := `
void serve()
{
    int pwd;
    int tok;
    pwd = getpass();
    tok = read_secret();
    log_msg(pwd); // safeflow:ignore cred-leak-log reviewed in SEC-9
    // safeflow:ignore cred-leak-log second one reviewed too
    log_msg(tok);
}
`
	rep := analyzeCred(t, src, Options{Policy: mustBuiltin(t, "credential-leak")})
	if len(rep.ErrorsData) != 0 {
		t.Fatalf("errors not suppressed: %v", rep.ErrorsData)
	}
	if len(rep.Suppressed) != 2 {
		t.Fatalf("got %d suppressed findings, want 2: %+v", len(rep.Suppressed), rep.Suppressed)
	}
	first := rep.Suppressed[0]
	if first.Rule != "cred-leak-log" || first.Reason != "reviewed in SEC-9" || first.Line != 8 || first.Kind != "error" {
		t.Errorf("audit entry wrong: %+v", first)
	}
	if rep.Suppressed[1].Reason != "second one reviewed too" || rep.Suppressed[1].Line != 10 {
		t.Errorf("directive-only-line entry wrong: %+v", rep.Suppressed[1])
	}
	if len(rep.SuppressionIssues) != 0 {
		t.Errorf("unexpected suppression issues: %+v", rep.SuppressionIssues)
	}
}

// TestSuppressionUnknownRule pins the structured diagnostic for
// directives the analysis cannot honor: the finding stays, the report
// is not clean, and the issue names the bad rule id and the policy.
func TestSuppressionUnknownRule(t *testing.T) {
	src := `
void serve()
{
    int pwd;
    pwd = getpass();
    log_msg(pwd); // safeflow:ignore not-a-rule never checked
}
`
	rep := analyzeCred(t, src, Options{Policy: mustBuiltin(t, "credential-leak")})
	if len(rep.ErrorsData) != 1 {
		t.Fatalf("finding must survive an unknown-rule directive: %d errors", len(rep.ErrorsData))
	}
	if len(rep.SuppressionIssues) != 1 {
		t.Fatalf("got %d suppression issues, want 1", len(rep.SuppressionIssues))
	}
	is := rep.SuppressionIssues[0]
	if is.Rule != "not-a-rule" || is.File != "main.c" || is.Line != 6 {
		t.Errorf("issue fields wrong: %+v", is)
	}
	if !strings.Contains(is.Msg, `"not-a-rule"`) || !strings.Contains(is.Msg, "credential-leak") {
		t.Errorf("issue message must name the rule and the policy: %q", is.Msg)
	}
	if rep.Clean() {
		t.Error("a report with suppression issues must not be clean")
	}

	// A directive with no rule id at all is also diagnosed.
	rep = analyzeCred(t, strings.Replace(src, "// safeflow:ignore not-a-rule never checked", "// safeflow:ignore", 1),
		Options{Policy: mustBuiltin(t, "credential-leak")})
	if len(rep.SuppressionIssues) != 1 || !strings.Contains(rep.SuppressionIssues[0].Msg, "missing a rule id") {
		t.Errorf("missing-rule-id directive not diagnosed: %+v", rep.SuppressionIssues)
	}
}

// TestSessionSuppressionByteIdentity pins the incremental fast paths:
// a comment-only edit that adds or moves a safeflow:ignore directive
// leaves the module unchanged (the session shortcut path), yet the
// patched report must match a from-scratch analysis of the edited
// sources exactly — including the suppression audit trail.
func TestSessionSuppressionByteIdentity(t *testing.T) {
	base := map[string]string{"main.c": credSrc}
	opts := Options{Policy: mustBuiltin(t, "credential-leak")}
	s, rep, err := OpenSession(context.Background(), "credsys", base, []string{"main.c"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if len(rep.ErrorsData) != 1 || len(rep.Suppressed) != 0 {
		t.Fatalf("open report wrong: %d errors, %d suppressed", len(rep.ErrorsData), len(rep.Suppressed))
	}

	edited := strings.Replace(credSrc, "log_msg(pwd);", "log_msg(pwd); // safeflow:ignore cred-leak-log reviewed", 1)
	got, stats, err := s.Update(context.Background(), map[string]string{"main.c": edited})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Incremental {
		t.Fatal("comment-only edit did not take the incremental path")
	}
	want, err := AnalyzeSources("credsys", cpp.MapSource{"main.c": edited}, []string{"main.c"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Suppressed) != 1 || got.Suppressed[0].Reason != "reviewed" {
		t.Fatalf("session update missed the new directive: %+v", got.Suppressed)
	}
	compareReports(t, got, want)

	// Removing the directive restores the finding.
	got, _, err = s.Update(context.Background(), map[string]string{"main.c": credSrc})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ErrorsData) != 1 || len(got.Suppressed) != 0 {
		t.Fatalf("directive removal not applied: %d errors, %d suppressed", len(got.ErrorsData), len(got.Suppressed))
	}
}

// compareReports asserts the finding-bearing surfaces of two reports
// are equal (the session invariant the text/JSON/SARIF formats render).
func compareReports(t *testing.T, got, want *Report) {
	t.Helper()
	check := func(field string, g, w any) {
		if !reflect.DeepEqual(fmt.Sprint(g), fmt.Sprint(w)) {
			t.Errorf("%s diverged:\n got: %v\nwant: %v", field, g, w)
		}
	}
	check("Warnings", got.Warnings, want.Warnings)
	check("ErrorsData", got.ErrorsData, want.ErrorsData)
	check("ErrorsControlOnly", got.ErrorsControlOnly, want.ErrorsControlOnly)
	check("Suppressed", got.Suppressed, want.Suppressed)
	check("SuppressionIssues", got.SuppressionIssues, want.SuppressionIssues)
	check("PolicyName", got.PolicyName, want.PolicyName)
	check("PolicyFingerprint", got.PolicyFingerprint, want.PolicyFingerprint)
}
