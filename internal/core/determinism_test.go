package core_test

// Determinism under concurrency: the parallel pipeline (frontend workers,
// phase-3 SCC scheduling, summary-cache warm starts) must never change a
// report. Each corpus system is analyzed repeatedly at several worker
// counts, with the cache cold and warm, and every rendered report — text
// and JSON — must be byte-identical to the first.

import (
	"runtime"
	"strings"
	"testing"

	"safeflow/internal/core"
	"safeflow/internal/corpus"
	"safeflow/internal/report"
)

const determinismRuns = 8

func renderBoth(t *testing.T, rep *core.Report) (string, string) {
	t.Helper()
	var text, js strings.Builder
	report.Write(&text, rep)
	if err := report.WriteJSON(&js, rep); err != nil {
		t.Fatal(err)
	}
	return text.String(), js.String()
}

func TestDeterministicReports(t *testing.T) {
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, sys := range corpus.All() {
		t.Run(sys.Name, func(t *testing.T) {
			var wantText, wantJSON string
			run := 0
			for _, workers := range workerCounts {
				for i := 0; i < determinismRuns; i++ {
					// Odd runs disable the summary cache so both the cold
					// and the warm phase-3 paths are exercised; either way
					// the bytes must not move.
					rep, err := sys.Analyze(core.Options{
						Workers:      workers,
						DisableCache: i%2 == 1,
					})
					if err != nil {
						t.Fatal(err)
					}
					text, js := renderBoth(t, rep)
					if run == 0 {
						wantText, wantJSON = text, js
						run++
						continue
					}
					run++
					if text != wantText {
						t.Fatalf("text report diverged (workers=%d run=%d):\n--- got ---\n%s\n--- want ---\n%s",
							workers, run, text, wantText)
					}
					if js != wantJSON {
						t.Fatalf("JSON report diverged (workers=%d run=%d):\n--- got ---\n%s\n--- want ---\n%s",
							workers, run, js, wantJSON)
					}
				}
			}
		})
	}
}

// TestDeterministicReportsWithMetrics covers the reports-with-metrics
// path: with Options.Stats the rendered JSON embeds the "metrics" key,
// whose volatile fields necessarily differ between runs — but after
// Canonicalize the full report, text and JSON, must be byte-identical
// across worker counts and cache temperatures, exactly like the plain
// determinism contract above.
func TestDeterministicReportsWithMetrics(t *testing.T) {
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, sys := range corpus.All() {
		t.Run(sys.Name, func(t *testing.T) {
			var wantText, wantJSON string
			run := 0
			for _, workers := range workerCounts {
				for i := 0; i < determinismRuns/2; i++ {
					rep, err := sys.Analyze(core.Options{
						Workers:      workers,
						Stats:        true,
						DisableCache: i%2 == 1,
					})
					if err != nil {
						t.Fatal(err)
					}
					if rep.Metrics == nil {
						t.Fatal("Options.Stats set but Report.Metrics is nil")
					}
					rep.Metrics.Canonicalize()
					text, js := renderBoth(t, rep)
					if !strings.Contains(js, `"metrics"`) {
						t.Fatal("JSON report does not embed the metrics key")
					}
					if run == 0 {
						wantText, wantJSON = text, js
						run++
						continue
					}
					run++
					if text != wantText {
						t.Fatalf("text report diverged (workers=%d run=%d):\n--- got ---\n%s\n--- want ---\n%s",
							workers, run, text, wantText)
					}
					if js != wantJSON {
						t.Fatalf("JSON report diverged (workers=%d run=%d):\n--- got ---\n%s\n--- want ---\n%s",
							workers, run, js, wantJSON)
					}
				}
			}
		})
	}
}
