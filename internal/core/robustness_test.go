package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"safeflow/internal/irgen"
)

// progGen emits random programs in the SafeFlow C subset: a shared-memory
// region, a few helper functions with random expression/statement bodies,
// and a main that wires them together with random monitoring annotations.
// The property under test is total robustness: whatever the generator
// produces, the pipeline must terminate without panicking and classify
// every non-core read consistently.
type progGen struct {
	r  *rand.Rand
	sb strings.Builder
}

func (g *progGen) pick(options ...string) string { return options[g.r.Intn(len(options))] }

func (g *progGen) expr(depth int, vars []string) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d.%d", g.r.Intn(10), g.r.Intn(10))
		case 1:
			if len(vars) > 0 {
				return vars[g.r.Intn(len(vars))]
			}
			return "1.0"
		default:
			return g.pick("region->a", "region->b")
		}
	}
	op := g.pick("+", "-", "*")
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1, vars), op, g.expr(depth-1, vars))
}

func (g *progGen) cond(vars []string) string {
	return fmt.Sprintf("%s %s %s", g.expr(1, vars), g.pick("<", ">", "<=", ">=", "==", "!="), g.expr(1, vars))
}

func (g *progGen) stmts(depth int, vars []string) string {
	var sb strings.Builder
	n := 1 + g.r.Intn(3)
	for i := 0; i < n; i++ {
		switch g.r.Intn(5) {
		case 0:
			if len(vars) > 0 {
				fmt.Fprintf(&sb, "%s = %s;\n", vars[g.r.Intn(len(vars))], g.expr(depth, vars))
			}
		case 1:
			if depth > 0 {
				fmt.Fprintf(&sb, "if (%s) {\n%s} else {\n%s}\n",
					g.cond(vars), g.stmts(depth-1, vars), g.stmts(depth-1, vars))
			}
		case 2:
			if depth > 0 && len(vars) > 0 {
				v := vars[g.r.Intn(len(vars))]
				fmt.Fprintf(&sb, "{ int qi; for (qi = 0; qi < %d; qi++) { %s = %s + 1.0; } }\n",
					1+g.r.Intn(5), v, v)
			}
		case 3:
			fmt.Fprintf(&sb, "printf(\"v=%%f\\n\", %s);\n", g.expr(1, vars))
		default:
			if len(vars) > 0 {
				fmt.Fprintf(&sb, "%s = helper%d(%s);\n",
					vars[g.r.Intn(len(vars))], g.r.Intn(3), g.expr(1, vars))
			}
		}
	}
	return sb.String()
}

func (g *progGen) generate() string {
	g.sb.Reset()
	g.sb.WriteString(`
typedef struct { double a; double b; int flag; int pad; } Region;
Region *region;

void initComm()
/***SafeFlow Annotation shminit /***/
{
	region = (Region *) shmat(shmget(9, sizeof(Region), 0), 0, 0);
	InitCheck(region, sizeof(Region));
	/***SafeFlow Annotation assume(shmvar(region, sizeof(Region))) /***/
	/***SafeFlow Annotation assume(noncore(region)) /***/
}
`)
	for i := 0; i < 3; i++ {
		monitored := g.r.Intn(2) == 0
		annot := ""
		if monitored {
			annot = "/***SafeFlow Annotation assume(core(region, 0, sizeof(Region))) /***/\n"
		}
		fmt.Fprintf(&g.sb, `
double helper%d(double x)
%s{
	double t;
	t = x;
	%s
	return t;
}
`, i, annot, g.stmts(2, []string{"t", "x"}))
	}
	fmt.Fprintf(&g.sb, `
int main()
{
	double u;
	double v;
	initComm();
	u = 0.0;
	v = 0.0;
	%s
	/***SafeFlow Annotation assert(safe(u)) /***/
	writeDA(0, u);
	return 0;
}
`, g.stmts(3, []string{"u", "v"}))
	return g.sb.String()
}

// TestPipelineRobustness runs many random programs through the full
// pipeline. The analysis must terminate, never panic, and obey the
// monitoring invariant: with every helper monitored and no direct region
// reads in main, there can be no warnings.
func TestPipelineRobustness(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := &progGen{r: rand.New(rand.NewSource(seed))}
		src := g.generate()
		rep, err := AnalyzeString(fmt.Sprintf("fuzz-%d", seed), src, Options{})
		if err != nil {
			t.Fatalf("seed %d: pipeline error: %v\nprogram:\n%s", seed, err, src)
		}
		// Structural validity of the lowered SSA.
		if verrs := irgen.Verify(rep.Module); len(verrs) > 0 {
			t.Fatalf("seed %d: invalid IR: %v\nprogram:\n%s", seed, verrs[0], src)
		}
		// Internal consistency: every error's sources must be among the
		// reported warnings.
		warnSet := map[string]bool{}
		for _, w := range rep.Warnings {
			warnSet[w.Pos.String()] = true
		}
		for _, e := range rep.ErrorsData {
			for _, s := range e.SortedSources() {
				if !warnSet[s.Pos.String()] {
					t.Errorf("seed %d: error cites unreported source %s", seed, s)
				}
			}
		}
		for _, e := range rep.ErrorsControlOnly {
			for _, s := range e.SortedSources() {
				if !warnSet[s.Pos.String()] {
					t.Errorf("seed %d: control report cites unreported source %s", seed, s)
				}
			}
		}
		// Monotonicity: the exponential variant agrees on counts (checked
		// on a sample; it is the expensive mode by design).
		if seed%4 != 0 {
			continue
		}
		rep2, err := AnalyzeString(fmt.Sprintf("fuzz-%d-exp", seed), src, Options{Exponential: true})
		if err != nil {
			t.Fatalf("seed %d: exponential error: %v", seed, err)
		}
		if len(rep2.Warnings) != len(rep.Warnings) ||
			rep2.TotalErrors() != rep.TotalErrors() {
			t.Errorf("seed %d: modes disagree (W %d/%d, E %d/%d)\nprogram:\n%s",
				seed, len(rep.Warnings), len(rep2.Warnings),
				rep.TotalErrors(), rep2.TotalErrors(), src)
		}
	}
}
