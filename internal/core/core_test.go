package core

import (
	"os"
	"strings"
	"testing"

	"safeflow/internal/cpp"
	"safeflow/internal/pointsto"
)

func analyzeFile(t *testing.T, path string, opts Options) *Report {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	rep, err := AnalyzeSources("test", cpp.MapSource{"main.c": string(src)}, []string{"main.c"}, opts)
	if err != nil {
		t.Fatalf("analyze %s: %v", path, err)
	}
	return rep
}

// TestFigure2Report reproduces the paper's running-example findings
// (Figure 2): the unmonitored feedback dereferences are warnings, and the
// critical output fails its assert(safe(output)) with a data dependency.
func TestFigure2Report(t *testing.T) {
	rep := analyzeFile(t, "../../testdata/figure2.c", Options{})

	if len(rep.AnnotationErrors) != 0 {
		t.Fatalf("annotation errors: %v", rep.AnnotationErrors)
	}
	if len(rep.Regions) != 2 {
		t.Fatalf("regions = %v, want feedback and noncoreCtrl", rep.Regions)
	}
	for _, r := range rep.Regions {
		if !r.NonCore {
			t.Errorf("region %s should be noncore", r.Name)
		}
		if r.Size != 32 {
			t.Errorf("region %s size = %d, want 32", r.Name, r.Size)
		}
	}
	if len(rep.Violations) != 0 {
		t.Errorf("restriction violations: %v", rep.Violations)
	}

	// Three unmonitored reads of feedback: fb->angle and fb->track in
	// computeSafety, f->angle in checkSafety.
	if len(rep.Warnings) != 3 {
		for _, w := range rep.Warnings {
			t.Logf("warning: %s", w)
		}
		t.Fatalf("warnings = %d, want 3", len(rep.Warnings))
	}
	for _, w := range rep.Warnings {
		if w.Region == nil || w.Region.Name != "feedback" {
			t.Errorf("warning %s: region should be feedback", w)
		}
	}

	// One error dependency: assert(safe(output)) — a data dependency via
	// safeControl computed from the unmonitored feedback.
	if len(rep.ErrorsData) != 1 {
		for _, e := range rep.ErrorsData {
			t.Logf("data error: %s", e)
		}
		for _, e := range rep.ErrorsControlOnly {
			t.Logf("ctrl error: %s", e)
		}
		t.Fatalf("data errors = %d, want 1", len(rep.ErrorsData))
	}
	e := rep.ErrorsData[0]
	if e.Var != "output" {
		t.Errorf("error var = %q, want output", e.Var)
	}
	if len(e.Sources) == 0 {
		t.Errorf("error should cite its unsafe sources")
	}
}

// TestFigure2Monitored checks the fix the paper suggests (§3.4.2): adding
// assume(core(feedback, ...)) to the reading functions removes the
// warnings and the error.
func TestFigure2Monitored(t *testing.T) {
	src, err := os.ReadFile("../../testdata/figure2.c")
	if err != nil {
		t.Fatal(err)
	}
	patched := string(src)
	// Declare feedback core inside both reading functions.
	patched = replaceOnce(t, patched,
		"void computeSafety(SHMData *fb, double *safeOut)\n{",
		"void computeSafety(SHMData *fb, double *safeOut)\n/***SafeFlow Annotation assume(core(fb, 0, sizeof(SHMData))) /***/\n{")
	patched = replaceOnce(t, patched,
		"/***SafeFlow Annotation assume(core(nc, 0, sizeof(SHMData))) /***/\n{\n    double u;",
		"/***SafeFlow Annotation assume(core(nc, 0, sizeof(SHMData))) /***/\n/***SafeFlow Annotation assume(core(f, 0, sizeof(SHMData))) /***/\n{\n    double u;")

	rep, err := AnalyzeSources("patched", cpp.MapSource{"main.c": patched}, []string{"main.c"}, Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(rep.Warnings) != 0 {
		for _, w := range rep.Warnings {
			t.Logf("warning: %s", w)
		}
		t.Errorf("patched program should have no warnings, got %d", len(rep.Warnings))
	}
	if rep.TotalErrors() != 0 {
		t.Errorf("patched program should have no errors, got %d", rep.TotalErrors())
	}
}

func replaceOnce(t *testing.T, s, old, new string) string {
	t.Helper()
	i := indexOf(s, old)
	if i < 0 {
		t.Fatalf("pattern not found: %q", old)
	}
	return s[:i] + new + s[i+len(old):]
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestFigure2BothModes checks both alias solvers agree on the running
// example (the subset solver must not be less sound than unify).
func TestFigure2BothModes(t *testing.T) {
	subset := analyzeFile(t, "../../testdata/figure2.c", Options{PointsTo: pointsto.ModeSubset})
	unify := analyzeFile(t, "../../testdata/figure2.c", Options{PointsTo: pointsto.ModeUnify})
	if len(subset.Warnings) != len(unify.Warnings) {
		t.Errorf("warning counts differ: subset %d, unify %d", len(subset.Warnings), len(unify.Warnings))
	}
	if subset.TotalErrors() > unify.TotalErrors() {
		t.Errorf("unify (coarser) found fewer errors than subset: %d < %d",
			unify.TotalErrors(), subset.TotalErrors())
	}
}

// TestFigure2Exponential checks the unoptimized per-call-path variant
// produces the same findings at higher cost.
func TestFigure2Exponential(t *testing.T) {
	fast := analyzeFile(t, "../../testdata/figure2.c", Options{})
	slow := analyzeFile(t, "../../testdata/figure2.c", Options{Exponential: true})
	if len(fast.Warnings) != len(slow.Warnings) || fast.TotalErrors() != slow.TotalErrors() {
		t.Errorf("exponential variant diverges: warnings %d vs %d, errors %d vs %d",
			len(fast.Warnings), len(slow.Warnings), fast.TotalErrors(), slow.TotalErrors())
	}
}

// TestSourceStats sanity-checks the Table 1 bookkeeping columns.
// TestUnknownRootReported checks that Options.Roots entries that do not
// resolve to a defined function surface as annotation errors instead of
// being silently skipped, and that valid roots still drive the analysis.
func TestUnknownRootReported(t *testing.T) {
	rep := analyzeFile(t, "../../testdata/figure2.c", Options{Roots: []string{"main", "noSuchFn"}})

	found := false
	for _, e := range rep.AnnotationErrors {
		if strings.Contains(e.Error(), `root function "noSuchFn" not found`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("unknown root not reported; annotation errors: %v", rep.AnnotationErrors)
	}
	if len(rep.Warnings) != 3 {
		t.Errorf("valid root should still be analyzed: warnings = %d, want 3", len(rep.Warnings))
	}

	rep = analyzeFile(t, "../../testdata/figure2.c", Options{Roots: []string{"shmat"}})
	found = false
	for _, e := range rep.AnnotationErrors {
		if strings.Contains(e.Error(), `root function "shmat" is declared but not defined`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("declared-only root not reported; annotation errors: %v", rep.AnnotationErrors)
	}
}

func TestSourceStats(t *testing.T) {
	rep := analyzeFile(t, "../../testdata/figure2.c", Options{})
	if rep.LinesOfCode < 80 {
		t.Errorf("LinesOfCode = %d, suspiciously low", rep.LinesOfCode)
	}
	if rep.AnnotationLines != 8 {
		t.Errorf("AnnotationLines = %d, want 8", rep.AnnotationLines)
	}
}
