package core_test

// Golden test for the versioned "metrics" JSON schema. The snapshot's
// execution-dependent fields (timings, cache temperature, goroutine
// peaks, solve counters) vary run to run, so the golden comparison works
// on the canonicalized form, which keeps only the fields that are
// deterministic functions of the analyzed input. Any schema change —
// field added, renamed, or re-keyed — shows up as a golden diff.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"safeflow/internal/core"
	"safeflow/internal/corpus"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func analyzeIPWithStats(t *testing.T, opts core.Options) *core.Report {
	t.Helper()
	opts.Stats = true
	rep, err := corpus.IP().Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil {
		t.Fatal("Options.Stats set but Report.Metrics is nil")
	}
	return rep
}

func TestMetricsGolden(t *testing.T) {
	rep := analyzeIPWithStats(t, core.Options{Workers: 2})
	m := rep.Metrics

	// Volatile fields must be live before canonicalization — a golden
	// test against all-zero metrics would pass with a dead collector.
	if m.WallNS <= 0 {
		t.Errorf("WallNS = %d, want > 0", m.WallNS)
	}
	if m.PeakGoroutines <= 0 {
		t.Errorf("PeakGoroutines = %d, want > 0", m.PeakGoroutines)
	}
	if m.UnitsSolved <= 0 {
		t.Errorf("UnitsSolved = %d, want > 0", m.UnitsSolved)
	}
	for _, p := range m.Phases {
		if p.WallNS < 0 {
			t.Errorf("phase %s: negative wall time %d", p.Name, p.WallNS)
		}
	}

	m.Canonicalize()
	got, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("..", "..", "testdata", "golden", "metrics.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("metrics schema changed:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestMetricsCanonicalStable pins the Canonicalize contract the
// determinism layer depends on: runs at different worker counts and
// cache temperatures canonicalize to identical bytes.
func TestMetricsCanonicalStable(t *testing.T) {
	var first []byte
	for i, opts := range []core.Options{
		{Workers: 1, DisableCache: true},
		{Workers: 2},
		{Workers: runtime.GOMAXPROCS(0)}, // warm cache by now
	} {
		m := analyzeIPWithStats(t, opts).Metrics
		m.Canonicalize()
		got, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = got
			continue
		}
		if !bytes.Equal(got, first) {
			t.Errorf("run %d (workers=%d cache=%v): canonical metrics diverged:\n got %s\nwant %s",
				i, opts.Workers, !opts.DisableCache, got, first)
		}
	}
}
