package core_test

// Differential testing of the static analysis against concrete execution:
// every program in the repository (the three corpus systems and the
// paper's running example) is both analyzed and run under the
// taint-tracking interpreter, and every critical sink that observes
// dynamically tainted data at run time must appear in the static
// data-flow error report. Dynamic taint is an under-approximation
// (one schedule, exact pointers, data flow only), so the inclusion
// dynamic ⊆ static is exactly the soundness direction the paper claims.

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"safeflow/internal/callgraph"
	"safeflow/internal/core"
	"safeflow/internal/corpus"
	"safeflow/internal/ctoken"
	"safeflow/internal/frontend"
	"safeflow/internal/interp"
	"safeflow/internal/irgen"
	"safeflow/internal/shmflow"
)

// diffWorld is a minimal environment: a constant sensor reading, no
// actuator, no time. rig, when set, plays the hostile non-core side at
// each period boundary (writing into shared memory through the segment's
// raw bytes) so the guarded defect paths actually execute.
type diffWorld struct {
	sensor float64
	m      *interp.Machine
	rig    func(m *interp.Machine)
}

func (w *diffWorld) ReadSensor(ch int) float64 { return w.sensor }
func (w *diffWorld) WriteDA(ch int, v float64) {}
func (w *diffWorld) Wait(seconds float64) {
	if w.rig != nil {
		w.rig(w.m)
	}
}

// runDifferential executes the compiled program under taint tracking and
// checks every dynamically tainted sink against the static report.
func runDifferential(t *testing.T, res *irgen.Result, sensor float64, rig func(m *interp.Machine)) {
	t.Helper()

	rep := core.AnalyzeModule(t.Name(), res, core.Options{})
	staticData := make(map[ctoken.Pos]bool)
	for _, e := range rep.ErrorsData {
		staticData[e.Pos] = true
	}

	w := &diffWorld{sensor: sensor, rig: rig}
	m := interp.New(res.Module, w)
	w.m = m
	m.MaxSteps = 20_000_000
	tr := m.EnableTaint(shmflow.Analyze(res.Module, callgraph.New(res.Module)))
	if _, err := m.RunMain(); err != nil {
		// Traps and step-budget exhaustion are tolerated: the sinks
		// observed up to that point are still valid evidence.
		t.Logf("execution ended early: %v", err)
	}

	asserts, kills := tr.TaintedAsserts(), tr.TaintedKills()
	if len(asserts)+len(kills) == 0 {
		t.Fatal("no critical sink executed — differential check is vacuous")
	}
	tainted := 0
	check := func(sink string, sites map[ctoken.Pos]bool) {
		for pos, hot := range sites {
			if !hot {
				continue
			}
			tainted++
			if !staticData[pos] {
				t.Errorf("dynamically tainted %s at %s missing from static data-flow errors", sink, pos)
			}
		}
	}
	check("assert", asserts)
	check("kill", kills)
	if tainted == 0 {
		t.Error("no sink observed tainted data — execution did not exercise a defect")
	}
	t.Logf("sinks: %d assert / %d kill sites, %d tainted, %d static data errors",
		len(asserts), len(kills), tainted, len(rep.ErrorsData))
}

// TestDifferentialCorpus runs each corpus system (with a shortened
// mission) against its own static report.
func TestDifferentialCorpus(t *testing.T) {
	// The IP defect (kill of a pid read from the unmonitored registry) is
	// guarded by pid > 0, so the world must poison the registry for the
	// path to run: pids.noncorePid lives at byte 92 of the key-4660
	// segment (see src/ip/shared.h).
	rigs := map[string]func(m *interp.Machine){
		"IP": func(m *interp.Machine) {
			if seg := m.Segment(4660); seg != nil {
				binary.LittleEndian.PutUint32(seg[92:], 7777)
			}
		},
	}
	for _, sys := range corpus.All() {
		t.Run(sys.Name, func(t *testing.T) {
			src, err := sys.Sources()
			if err != nil {
				t.Fatal(err)
			}
			res, err := frontend.Compile(sys.Name, src, sys.CFiles, frontend.Options{
				Defines: map[string]string{"MAXITER": "200"},
			})
			if err != nil {
				t.Fatal(err)
			}
			runDifferential(t, res, 0.02, rigs[sys.Name])
		})
	}
}

// TestDifferentialFigure2 runs the paper's running example. The sensor
// reads 1.0 — past the safety threshold — so checkSafety rejects the
// (empty) complex proposal and the control output flows from the
// unmonitored feedback read-back, tainting the assert dynamically.
func TestDifferentialFigure2(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "figure2.c"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := frontend.CompileString("figure2", string(data), frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	runDifferential(t, res, 1.0, nil)
}
