package core_test

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"safeflow/internal/core"
	"safeflow/internal/corpus"
	"safeflow/internal/cpp"
	"safeflow/internal/report"
)

// renderAll renders the forms whose byte-identity the incremental
// analysis guarantees: the standard text report plus the JSON report
// with execution-dependent metrics canonicalized away.
func renderAll(t *testing.T, rep *core.Report) string {
	t.Helper()
	var buf bytes.Buffer
	report.Write(&buf, rep)
	rep.Metrics.Canonicalize()
	if err := report.WriteJSON(&buf, rep); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.String()
}

// fresh runs the from-scratch pipeline the session must reproduce.
func fresh(t *testing.T, name string, sources map[string]string, cFiles []string, opts core.Options) *core.Report {
	t.Helper()
	rep, err := core.AnalyzeSourcesContext(context.Background(), name, cpp.MapSource(sources), cFiles, opts)
	if err != nil {
		t.Fatalf("fresh analyze: %v", err)
	}
	return rep
}

func sessionWorkerCounts() []int {
	counts := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n > 2 {
		counts = append(counts, n)
	}
	return counts
}

// TestSessionGeneratedLifecycle drives a seeded edit script through a
// session at several worker counts and checks every patched report is
// byte-identical to a from-scratch analysis of the edited sources.
func TestSessionGeneratedLifecycle(t *testing.T) {
	g := corpus.Generate(7, corpus.GenConfig{Regions: 3, Monitors: 4, Stages: 5})
	script := corpus.GenerateEdits(g, 11, 8)
	if len(script) < 4 {
		t.Fatalf("edit script too short: %d", len(script))
	}
	for _, w := range sessionWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			opts := core.Options{Workers: w, Stats: true, DisableCache: true}
			s, rep, err := core.OpenSession(context.Background(), g.Name, g.Sources, g.CFiles, opts)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			cur := map[string]string{}
			for k, v := range g.Sources {
				cur[k] = v
			}
			want := renderAll(t, fresh(t, g.Name, cur, g.CFiles, opts))
			if got := renderAll(t, rep); got != want {
				t.Fatalf("open report differs from fresh analysis:\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
			for i, e := range script {
				text, ok := e.Apply(cur)
				if !ok {
					t.Fatalf("edit %d (%s) does not anchor", i, e.Desc)
				}
				cur[e.File] = text
				rep, stats, err := s.Update(context.Background(), map[string]string{e.File: text})
				if err != nil {
					t.Fatalf("update %d (%s): %v", i, e.Desc, err)
				}
				want := renderAll(t, fresh(t, g.Name, cur, g.CFiles, opts))
				if got := renderAll(t, rep); got != want {
					t.Fatalf("update %d (%s): report differs from fresh analysis\n--- got ---\n%s\n--- want ---\n%s",
						i, e.Desc, got, want)
				}
				if !stats.Incremental {
					t.Errorf("update %d (%s): fell back to from-scratch analysis", i, e.Desc)
				}
				switch e.Kind {
				case corpus.EditNoop, corpus.EditBodyTweak:
					if stats.Incremental && stats.FuncsReused == 0 {
						t.Errorf("update %d (%s): local edit reused no functions (invalidated=%d)",
							i, e.Desc, stats.FuncsInvalidated)
					}
				}
			}
		})
	}
}

// TestSessionCorpusSystems opens each embedded Table 1 system and checks
// a local edit patches to the exact from-scratch report.
func TestSessionCorpusSystems(t *testing.T) {
	edits := map[string][2]string{
		"IP":              {"estimator.c", "SPIKE_LIMIT   0.35"},
		"Generic Simplex": {"plantlib.c", ""},
		"Double IP":       {"control.c", ""},
	}
	for _, sys := range corpus.All() {
		t.Run(sys.Name, func(t *testing.T) {
			sources, err := sys.SourceMap()
			if err != nil {
				t.Fatal(err)
			}
			opts := core.Options{Workers: 2, Stats: true, DisableCache: true}
			s, _, err := core.OpenSession(context.Background(), sys.Name, sources, sys.CFiles, opts)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			// A trailing comment: preprocessed text changes, no function
			// moves, so nothing should be invalidated.
			file := edits[sys.Name][0]
			edited := sources[file] + "\n/* session touch */\n"
			sources[file] = edited
			rep, stats, err := s.Update(context.Background(), map[string]string{file: edited})
			if err != nil {
				t.Fatalf("update: %v", err)
			}
			want := renderAll(t, fresh(t, sys.Name, sources, sys.CFiles, opts))
			if got := renderAll(t, rep); got != want {
				t.Fatalf("no-op update: report differs from fresh analysis")
			}
			if stats.Incremental && stats.FuncsInvalidated != 0 {
				t.Errorf("no-op edit invalidated %d functions", stats.FuncsInvalidated)
			}
			if stats.Incremental && stats.FuncsReused == 0 {
				t.Errorf("no-op edit reused no functions")
			}
			// A real local edit, when the system has one registered.
			if anchor := edits[sys.Name][1]; anchor != "" && strings.Contains(sources[file], anchor) {
				edited = strings.Replace(sources[file], anchor, "SPIKE_LIMIT   0.40", 1)
				sources[file] = edited
				rep, stats, err = s.Update(context.Background(), map[string]string{file: edited})
				if err != nil {
					t.Fatalf("edit update: %v", err)
				}
				want = renderAll(t, fresh(t, sys.Name, sources, sys.CFiles, opts))
				if got := renderAll(t, rep); got != want {
					t.Fatalf("local edit: report differs from fresh analysis")
				}
				if stats.Incremental && stats.FuncsReused == 0 {
					t.Errorf("local edit reused no functions")
				}
			}
		})
	}
}

// TestSessionDegradedThenFixed introduces a parse error (degraded run
// under Recover), then fixes it, checking the session matches the
// from-scratch report at every step and recovers its fast path.
func TestSessionDegradedThenFixed(t *testing.T) {
	g := corpus.Generate(3, corpus.GenConfig{})
	opts := core.Options{Workers: 2, Stats: true, Recover: true, DisableCache: true}
	s, _, err := core.OpenSession(context.Background(), g.Name, g.Sources, g.CFiles, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	cur := map[string]string{}
	for k, v := range g.Sources {
		cur[k] = v
	}
	good := cur["stages.c"]

	broken := good + "\ndouble brokenFn(double x) { return x + ; }\n"
	cur["stages.c"] = broken
	rep, _, err := s.Update(context.Background(), map[string]string{"stages.c": broken})
	if err != nil {
		t.Fatalf("degraded update: %v", err)
	}
	if !rep.Degraded {
		t.Fatalf("expected a degraded report after breaking stages.c")
	}
	want := renderAll(t, fresh(t, g.Name, cur, g.CFiles, opts))
	if got := renderAll(t, rep); got != want {
		t.Fatalf("degraded report differs from fresh analysis\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	cur["stages.c"] = good
	rep, stats, err := s.Update(context.Background(), map[string]string{"stages.c": good})
	if err != nil {
		t.Fatalf("fixed update: %v", err)
	}
	if rep.Degraded {
		t.Fatalf("report still degraded after the fix")
	}
	want = renderAll(t, fresh(t, g.Name, cur, g.CFiles, opts))
	if got := renderAll(t, rep); got != want {
		t.Fatalf("fixed report differs from fresh analysis")
	}
	if !stats.Incremental {
		t.Errorf("session did not recover its incremental fast path after the fix")
	}
}

// TestSessionAddRemoveFile adds a new translation unit, then removes it,
// comparing against from-scratch runs with the same unit list.
func TestSessionAddRemoveFile(t *testing.T) {
	g := corpus.Generate(5, corpus.GenConfig{})
	opts := core.Options{Workers: 2, Stats: true, DisableCache: true}
	s, _, err := core.OpenSession(context.Background(), g.Name, g.Sources, g.CFiles, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	cur := map[string]string{}
	for k, v := range g.Sources {
		cur[k] = v
	}

	extra := "#include \"gen.h\"\n\ndouble extraStage(double x)\n{\n    return monitor0(x) + 1.0;\n}\n"
	cur["extra.c"] = extra
	rep, _, err := s.Update(context.Background(), map[string]string{"extra.c": extra})
	if err != nil {
		t.Fatalf("add update: %v", err)
	}
	wantFiles := append(append([]string(nil), g.CFiles...), "extra.c")
	want := renderAll(t, fresh(t, g.Name, cur, wantFiles, opts))
	if got := renderAll(t, rep); got != want {
		t.Fatalf("report after adding extra.c differs from fresh analysis\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	delete(cur, "extra.c")
	rep, _, err = s.Update(context.Background(), nil, "extra.c")
	if err != nil {
		t.Fatalf("remove update: %v", err)
	}
	want = renderAll(t, fresh(t, g.Name, cur, g.CFiles, opts))
	if got := renderAll(t, rep); got != want {
		t.Fatalf("report after removing extra.c differs from fresh analysis")
	}
}
