// Package frontend chains SafeFlow's C front end: preprocess, lex, parse,
// type-check, lower to IR, and promote to SSA. It is the single entry
// point used by the analysis pipeline, the CLI, and tests.
package frontend

import (
	"fmt"
	"sort"

	"safeflow/internal/cast"
	"safeflow/internal/clex"
	"safeflow/internal/cparse"
	"safeflow/internal/cpp"
	"safeflow/internal/csema"
	"safeflow/internal/irgen"
)

// Options configure compilation.
type Options struct {
	// Defines predefines object-like macros (as with -D).
	Defines map[string]string
	// SkipPromote leaves the IR in pre-mem2reg form (used by tests that
	// inspect the unpromoted program).
	SkipPromote bool
}

// Compile builds the translation units named by cFiles (each preprocessed
// independently against sources) into one typed, SSA-promoted module.
func Compile(name string, sources cpp.Source, cFiles []string, opts Options) (*irgen.Result, error) {
	var files []*cast.File
	for _, cf := range cFiles {
		pp := cpp.New(sources)
		keys := make([]string, 0, len(opts.Defines))
		for k := range opts.Defines {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			pp.Define(k, opts.Defines[k])
		}
		text, err := pp.Expand(cf)
		if err != nil {
			return nil, fmt.Errorf("preprocess %s: %w", cf, err)
		}
		lx := clex.New(cf, text)
		toks := lx.All()
		if errs := lx.Errors(); len(errs) > 0 {
			return nil, fmt.Errorf("lex %s: %w", cf, errs[0])
		}
		p := cparse.New(cf, toks)
		f, err := p.ParseFile()
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", cf, err)
		}
		files = append(files, f)
	}

	prog, err := csema.Analyze(files)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}

	res := irgen.Build(name, prog)
	if len(res.Errors) > 0 {
		return res, fmt.Errorf("lower: %w", res.Errors[0])
	}
	if !opts.SkipPromote {
		irgen.Promote(res.Module)
	}
	return res, nil
}

// CompileString is a convenience for single-buffer programs (tests,
// quickstart examples).
func CompileString(name, src string, opts Options) (*irgen.Result, error) {
	return Compile(name, cpp.MapSource{"main.c": src}, []string{"main.c"}, opts)
}
