// Package frontend chains SafeFlow's C front end: preprocess, lex, parse,
// type-check, lower to IR, and promote to SSA. It is the single entry
// point used by the analysis pipeline, the CLI, and tests.
//
// Translation units are independent until the type checker merges them, so
// Compile preprocesses, lexes and parses them concurrently on a bounded
// worker pool (Options.Workers, default GOMAXPROCS). Results are merged in
// the caller's file order and the first error — in that same stable order,
// not in completion order — is the one reported, so compilation output is
// identical at every worker count.
//
// CompileContext additionally honors cancellation between translation
// units, and every unit is panic-isolated: a crash while compiling one
// file surfaces as a guard.InternalError for that file while the other
// units finish normally.
//
// CompileRecover is the graceful-degradation entry point: instead of
// failing the whole system on the first broken translation unit it skips
// the units that cannot be compiled, records one structured
// diag.Diagnostic per failure, and builds the module from the survivors.
// Type checking runs a drop-and-retry loop — errors are attributed to the
// unit whose declarations produced them, that unit is dropped with its
// diagnostics, and the remaining units are re-checked — so one broken
// file (or a cascade it causes) never hides the verdicts of the rest.
package frontend

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"safeflow/internal/cast"
	"safeflow/internal/clex"
	"safeflow/internal/cparse"
	"safeflow/internal/cpp"
	"safeflow/internal/csema"
	"safeflow/internal/diag"
	"safeflow/internal/diskcache"
	"safeflow/internal/guard"
	"safeflow/internal/irgen"
	"safeflow/internal/metrics"
)

// Options configure compilation.
type Options struct {
	// Defines predefines object-like macros (as with -D).
	Defines map[string]string
	// SkipPromote leaves the IR in pre-mem2reg form (used by tests that
	// inspect the unpromoted program).
	SkipPromote bool
	// Workers bounds the number of translation units compiled concurrently.
	// 0 means runtime.GOMAXPROCS(0); 1 compiles sequentially.
	Workers int
	// DisableParseCache turns off the content-keyed parse cache, forcing
	// every translation unit through lex + parse (cold-run benchmarks,
	// memory-constrained batch runs).
	DisableParseCache bool
	// DiskCache, when non-nil, adds a persistent tier below the in-memory
	// parse cache: on a memory miss the unit's AST is loaded from the
	// content-addressed store, and freshly parsed units are written back,
	// so unchanged units survive process restarts. Integrity-checked on
	// read; a damaged entry degrades to a miss (cache_corrupt_evictions).
	DiskCache diskcache.CacheBackend
	// Metrics, when non-nil, receives goroutine observations from the
	// worker pool (peak-concurrency instrumentation) and parse-cache
	// hit/miss counts. Nil-safe.
	Metrics *metrics.Collector
}

// workerCount resolves the effective pool size for n independent tasks.
func workerCount(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// unitOutcome is one translation unit's front-half (preprocess, lex,
// parse) result.
type unitOutcome struct {
	file *cast.File // non-nil iff the unit compiled cleanly
	// partial is the best-effort AST of a failed unit (the recovering
	// parser returns what it could resynchronize); used only to harvest
	// the names of functions whose definitions are now unavailable.
	partial *cast.File
	diags   []diag.Diagnostic
}

// compileUnitDiags runs the per-TU front half: preprocess, lex, parse.
// Every failure is recorded as a structured diagnostic — all lexer
// errors, all parser errors after resynchronization — never just the
// first one.
func compileUnitDiags(sources cpp.Source, cf string, opts Options) unitOutcome {
	pp := cpp.New(sources)
	keys := make([]string, 0, len(opts.Defines))
	for k := range opts.Defines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pp.Define(k, opts.Defines[k])
	}
	text, err := pp.Expand(cf)
	if err != nil {
		return unitOutcome{diags: []diag.Diagnostic{{
			Unit: cf, Phase: diag.PhasePreprocess, Msg: err.Error(),
		}}}
	}
	var key [32]byte
	if !opts.DisableParseCache {
		key = parseCacheKey(cf, text)
		if f := parseCacheGet(key, opts.Metrics); f != nil {
			opts.Metrics.AddFrontendCache(1, 0)
			return unitOutcome{file: f}
		}
		if opts.DiskCache != nil {
			if f := parseDiskGet(opts.DiskCache, key, cf, opts.Metrics); f != nil {
				// Promote to the in-memory tier so siblings in this run
				// (and later runs in this process) share the decoded AST.
				parseCachePut(key, f)
				opts.Metrics.AddFrontendCache(1, 0)
				return unitOutcome{file: f}
			}
		}
	}
	lx := clex.New(cf, text)
	toks := lx.All()
	if errs := lx.Errors(); len(errs) > 0 {
		out := unitOutcome{}
		for _, e := range errs {
			var le *clex.Error
			if errors.As(e, &le) {
				out.diags = append(out.diags, diag.Diagnostic{
					Unit: cf, Pos: le.Pos, Phase: diag.PhaseLex, Msg: le.Msg,
				})
			} else {
				out.diags = append(out.diags, diag.Diagnostic{
					Unit: cf, Phase: diag.PhaseLex, Msg: e.Error(),
				})
			}
		}
		// Parse the (partially bogus) token stream anyway: the recovering
		// parser's best-effort AST tells us which function definitions the
		// skipped unit would have provided.
		out.partial, _ = cparse.New(cf, toks).ParseFile()
		return out
	}
	p := cparse.New(cf, toks)
	f, err := p.ParseFile()
	if err != nil {
		out := unitOutcome{partial: f}
		var el cparse.ErrorList
		if errors.As(err, &el) {
			for _, e := range el {
				out.diags = append(out.diags, diag.Diagnostic{
					Unit: cf, Pos: e.Pos, Phase: diag.PhaseParse, Msg: e.Msg,
				})
			}
		} else {
			out.diags = append(out.diags, diag.Diagnostic{
				Unit: cf, Phase: diag.PhaseParse, Msg: err.Error(),
			})
		}
		return out
	}
	if !opts.DisableParseCache {
		// Only fully parsed units are stored, so a failed, cancelled or
		// panicking compilation never publishes a partial entry.
		parseCachePut(key, f)
		if opts.DiskCache != nil {
			parseDiskPut(opts.DiskCache, key, f)
		}
		opts.Metrics.AddFrontendCache(0, 1)
	}
	return unitOutcome{file: f}
}

// compileUnit is the fail-stop wrapper: any diagnostic fails the unit
// with an error carrying every recorded failure (not just the first).
func compileUnit(sources cpp.Source, cf string, opts Options) (*cast.File, error) {
	out := compileUnitDiags(sources, cf, opts)
	if len(out.diags) > 0 {
		return nil, diagsError(cf, out.diags)
	}
	return out.file, nil
}

// diagsError folds a unit's diagnostics into one error in the classic
// fail-stop format ("lex file.c: ..."), joining every message.
func diagsError(cf string, ds []diag.Diagnostic) error {
	msgs := make([]string, len(ds))
	for i, d := range ds {
		if d.Pos.IsValid() {
			msgs[i] = fmt.Sprintf("%s: %s", d.Pos, d.Msg)
		} else {
			msgs[i] = d.Msg
		}
	}
	return fmt.Errorf("%s %s: %s", ds[0].Phase, cf, strings.Join(msgs, "\n\t"))
}

// compileUnitSafe isolates one translation unit: a panic anywhere in its
// preprocess/lex/parse chain becomes that unit's error, not a process
// crash, so the other units of the batch still complete.
func compileUnitSafe(sources cpp.Source, cf string, opts Options) (f *cast.File, err error) {
	err = guard.Run("frontend", cf, func() error {
		var uerr error
		f, uerr = compileUnit(sources, cf, opts)
		return uerr
	})
	return f, err
}

// compileUnitRecover isolates one unit in recovering mode: a panic is
// recorded as an "internal" diagnostic for the unit instead of an error,
// so the unit is skipped like any other broken one.
func compileUnitRecover(sources cpp.Source, cf string, opts Options) (out unitOutcome) {
	err := guard.Run("frontend", cf, func() error {
		out = compileUnitDiags(sources, cf, opts)
		return nil
	})
	if err != nil {
		out = unitOutcome{diags: []diag.Diagnostic{{
			Unit: cf, Phase: diag.PhaseInternal, Msg: err.Error(),
		}}}
	}
	return out
}

// runUnitPool compiles the n translation units through work(i) on a
// bounded worker pool, honoring cancellation between units. work is
// called at most once per index; indices skipped due to cancellation are
// reported through the returned cancelled slice.
func runUnitPool(ctx context.Context, n int, opts Options, work func(i int)) {
	workers := workerCount(opts.Workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			work(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain so the feeder never blocks
				}
				opts.Metrics.ObserveGoroutines()
				work(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
}

// Compile builds the translation units named by cFiles (each preprocessed
// independently against sources) into one typed, SSA-promoted module.
func Compile(name string, sources cpp.Source, cFiles []string, opts Options) (*irgen.Result, error) {
	return CompileContext(context.Background(), name, sources, cFiles, opts)
}

// CompileContext is Compile with cancellation: a cancelled context stops
// the worker pool between translation units (never mid-unit) and returns
// ctx.Err() promptly with no goroutines left behind.
func CompileContext(ctx context.Context, name string, sources cpp.Source, cFiles []string, opts Options) (*irgen.Result, error) {
	files := make([]*cast.File, len(cFiles))
	errs := make([]error, len(cFiles))
	runUnitPool(ctx, len(cFiles), opts, func(i int) {
		files[i], errs[i] = compileUnitSafe(sources, cFiles[i], opts)
	})
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// First error in stable file order, regardless of completion order.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	prog, err := csema.Analyze(files)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}

	res := irgen.Build(name, prog)
	if len(res.Errors) > 0 {
		return res, fmt.Errorf("lower: %w", res.Errors[0])
	}
	if !opts.SkipPromote {
		irgen.Promote(res.Module)
	}
	return res, nil
}

// RecoverResult is the output of the graceful-degradation compile path.
type RecoverResult struct {
	// Res is the module built from the translation units that survived.
	Res *irgen.Result
	// Diags records every failure, sorted by (unit, phase, position,
	// message); empty means the compile was not degraded.
	Diags []diag.Diagnostic
	// MissingDefs names the functions whose definitions are unavailable
	// in the degraded module: functions defined in (or declared by) a
	// skipped unit, plus every declared-but-undefined non-builtin
	// function once any unit was skipped. The value-flow analysis treats
	// calls to them as unknown-taint sources. Nil when nothing was
	// skipped.
	MissingDefs map[string]bool
}

// Degraded reports whether any translation unit was skipped.
func (r *RecoverResult) Degraded() bool { return len(r.Diags) > 0 }

// CompileRecover is Compile with graceful degradation: translation units
// that fail to preprocess, lex, parse, or type-check are skipped with
// structured diagnostics instead of failing the whole system, and the
// module is built from the survivors.
func CompileRecover(name string, sources cpp.Source, cFiles []string, opts Options) (*RecoverResult, error) {
	return CompileRecoverContext(context.Background(), name, sources, cFiles, opts)
}

// CompileRecoverContext is CompileRecover with cancellation. The result
// is deterministic at every worker count: diagnostics carry a total sort
// order and units are dropped in stable file order.
func CompileRecoverContext(ctx context.Context, name string, sources cpp.Source, cFiles []string, opts Options) (*RecoverResult, error) {
	outs := make([]unitOutcome, len(cFiles))
	runUnitPool(ctx, len(cFiles), opts, func(i int) {
		outs[i] = compileUnitRecover(sources, cFiles[i], opts)
	})
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}

	type tu struct {
		name string
		file *cast.File
	}
	var (
		diags       []diag.Diagnostic
		live        []tu
		skippedDefs = make(map[string]bool)
	)
	for i, o := range outs {
		diags = append(diags, o.diags...)
		if o.file != nil {
			live = append(live, tu{cFiles[i], o.file})
		} else {
			harvestDefs(o.partial, skippedDefs)
		}
	}

	// Multi-diagnostic recovery loop: type-check the surviving units,
	// attribute every error to the unit whose declarations produced it,
	// drop the culprits, and retry with the rest. Each iteration drops at
	// least one unit (or finishes), so the loop terminates; cascades —
	// a unit failing only because a dropped unit's typedefs are gone —
	// resolve in later iterations.
	var prog *csema.Program
	for {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		files := make([]*cast.File, len(live))
		for i, u := range live {
			files[i] = u.file
		}
		p, perFile := csema.AnalyzeUnits(files)
		var next []tu
		dropped := false
		for i, errs := range perFile {
			if len(errs) == 0 {
				next = append(next, live[i])
				continue
			}
			dropped = true
			for _, e := range errs {
				diags = append(diags, diag.Diagnostic{
					Unit: live[i].name, Pos: e.Pos, Phase: diag.PhaseTypecheck, Msg: e.Msg,
				})
			}
			harvestDefs(live[i].file, skippedDefs)
		}
		live = next
		if !dropped {
			prog = p
			break
		}
	}

	// Lowering: annotation errors are attributed to units by position and
	// resolved with the same drop-and-retry scheme. An error that cannot
	// be attributed to a surviving unit (e.g. a malformed annotation in a
	// shared header) is unrecoverable.
	var res *irgen.Result
	for {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		res = irgen.Build(name, prog)
		if len(res.Errors) == 0 {
			break
		}
		drop := make(map[string]bool)
		for _, e := range res.Errors {
			unit := ""
			for _, u := range live {
				if strings.HasPrefix(e.Error(), u.name+":") {
					unit = u.name
					break
				}
			}
			if unit == "" {
				return nil, fmt.Errorf("lower: %w", e)
			}
			drop[unit] = true
			diags = append(diags, diag.Diagnostic{
				Unit: unit, Phase: diag.PhaseLower, Msg: e.Error(),
			})
		}
		var next []tu
		for _, u := range live {
			if drop[u.name] {
				harvestDefs(u.file, skippedDefs)
			} else {
				next = append(next, u)
			}
		}
		live = next
		// Re-run the type-check loop over the reduced unit set.
		for {
			files := make([]*cast.File, len(live))
			for i, u := range live {
				files[i] = u.file
			}
			p, perFile := csema.AnalyzeUnits(files)
			var nxt []tu
			dropped := false
			for i, errs := range perFile {
				if len(errs) == 0 {
					nxt = append(nxt, live[i])
					continue
				}
				dropped = true
				for _, e := range errs {
					diags = append(diags, diag.Diagnostic{
						Unit: live[i].name, Pos: e.Pos, Phase: diag.PhaseTypecheck, Msg: e.Msg,
					})
				}
				harvestDefs(live[i].file, skippedDefs)
			}
			live = nxt
			if !dropped {
				prog = p
				break
			}
		}
	}
	if !opts.SkipPromote {
		irgen.Promote(res.Module)
	}

	out := &RecoverResult{Res: res}
	diag.Sort(diags)
	out.Diags = diags
	if len(diags) > 0 {
		missing := make(map[string]bool)
		for fname := range skippedDefs {
			if fn := prog.FuncByName[fname]; fn == nil || !fn.IsDefined {
				missing[fname] = true
			}
		}
		// Once any unit is gone we no longer know which prototypes it
		// would have defined: treat every declared-but-undefined
		// non-builtin function as missing too.
		for fname, fn := range prog.FuncByName {
			if !fn.IsDefined && !fn.IsBuiltin {
				missing[fname] = true
			}
		}
		out.MissingDefs = missing
	}
	return out, nil
}

// harvestDefs records the function definitions a skipped unit's
// (possibly partial) AST would have provided.
func harvestDefs(f *cast.File, into map[string]bool) {
	if f == nil {
		return
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
			into[fd.Name] = true
		}
	}
}

// CompileString is a convenience for single-buffer programs (tests,
// quickstart examples).
func CompileString(name, src string, opts Options) (*irgen.Result, error) {
	return Compile(name, cpp.MapSource{"main.c": src}, []string{"main.c"}, opts)
}
