// Package frontend chains SafeFlow's C front end: preprocess, lex, parse,
// type-check, lower to IR, and promote to SSA. It is the single entry
// point used by the analysis pipeline, the CLI, and tests.
//
// Translation units are independent until the type checker merges them, so
// Compile preprocesses, lexes and parses them concurrently on a bounded
// worker pool (Options.Workers, default GOMAXPROCS). Results are merged in
// the caller's file order and the first error — in that same stable order,
// not in completion order — is the one reported, so compilation output is
// identical at every worker count.
//
// CompileContext additionally honors cancellation between translation
// units, and every unit is panic-isolated: a crash while compiling one
// file surfaces as a guard.InternalError for that file while the other
// units finish normally.
package frontend

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"safeflow/internal/cast"
	"safeflow/internal/clex"
	"safeflow/internal/cparse"
	"safeflow/internal/cpp"
	"safeflow/internal/csema"
	"safeflow/internal/guard"
	"safeflow/internal/irgen"
	"safeflow/internal/metrics"
)

// Options configure compilation.
type Options struct {
	// Defines predefines object-like macros (as with -D).
	Defines map[string]string
	// SkipPromote leaves the IR in pre-mem2reg form (used by tests that
	// inspect the unpromoted program).
	SkipPromote bool
	// Workers bounds the number of translation units compiled concurrently.
	// 0 means runtime.GOMAXPROCS(0); 1 compiles sequentially.
	Workers int
	// DisableParseCache turns off the content-keyed parse cache, forcing
	// every translation unit through lex + parse (cold-run benchmarks,
	// memory-constrained batch runs).
	DisableParseCache bool
	// Metrics, when non-nil, receives goroutine observations from the
	// worker pool (peak-concurrency instrumentation) and parse-cache
	// hit/miss counts. Nil-safe.
	Metrics *metrics.Collector
}

// workerCount resolves the effective pool size for n independent tasks.
func workerCount(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// compileUnit runs the per-TU front half: preprocess, lex, parse.
func compileUnit(sources cpp.Source, cf string, opts Options) (*cast.File, error) {
	pp := cpp.New(sources)
	keys := make([]string, 0, len(opts.Defines))
	for k := range opts.Defines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pp.Define(k, opts.Defines[k])
	}
	text, err := pp.Expand(cf)
	if err != nil {
		return nil, fmt.Errorf("preprocess %s: %w", cf, err)
	}
	var key [32]byte
	if !opts.DisableParseCache {
		key = parseCacheKey(cf, text)
		if f := parseCacheGet(key); f != nil {
			opts.Metrics.AddFrontendCache(1, 0)
			return f, nil
		}
	}
	lx := clex.New(cf, text)
	toks := lx.All()
	if errs := lx.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("lex %s: %w", cf, errs[0])
	}
	p := cparse.New(cf, toks)
	f, err := p.ParseFile()
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", cf, err)
	}
	if !opts.DisableParseCache {
		// Only fully parsed units are stored, so a failed, cancelled or
		// panicking compilation never publishes a partial entry.
		parseCachePut(key, f)
		opts.Metrics.AddFrontendCache(0, 1)
	}
	return f, nil
}

// compileUnitSafe isolates one translation unit: a panic anywhere in its
// preprocess/lex/parse chain becomes that unit's error, not a process
// crash, so the other units of the batch still complete.
func compileUnitSafe(sources cpp.Source, cf string, opts Options) (f *cast.File, err error) {
	err = guard.Run("frontend", cf, func() error {
		var uerr error
		f, uerr = compileUnit(sources, cf, opts)
		return uerr
	})
	return f, err
}

// Compile builds the translation units named by cFiles (each preprocessed
// independently against sources) into one typed, SSA-promoted module.
func Compile(name string, sources cpp.Source, cFiles []string, opts Options) (*irgen.Result, error) {
	return CompileContext(context.Background(), name, sources, cFiles, opts)
}

// CompileContext is Compile with cancellation: a cancelled context stops
// the worker pool between translation units (never mid-unit) and returns
// ctx.Err() promptly with no goroutines left behind.
func CompileContext(ctx context.Context, name string, sources cpp.Source, cFiles []string, opts Options) (*irgen.Result, error) {
	files := make([]*cast.File, len(cFiles))
	errs := make([]error, len(cFiles))

	workers := workerCount(opts.Workers, len(cFiles))
	if workers <= 1 {
		for i, cf := range cFiles {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			files[i], errs[i] = compileUnitSafe(sources, cf, opts)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					if ctx.Err() != nil {
						errs[i] = ctx.Err()
						continue // drain so the feeder never blocks
					}
					opts.Metrics.ObserveGoroutines()
					files[i], errs[i] = compileUnitSafe(sources, cFiles[i], opts)
				}
			}()
		}
	feed:
		for i := range cFiles {
			select {
			case jobs <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(jobs)
		wg.Wait()
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// First error in stable file order, regardless of completion order.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	prog, err := csema.Analyze(files)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}

	res := irgen.Build(name, prog)
	if len(res.Errors) > 0 {
		return res, fmt.Errorf("lower: %w", res.Errors[0])
	}
	if !opts.SkipPromote {
		irgen.Promote(res.Module)
	}
	return res, nil
}

// CompileString is a convenience for single-buffer programs (tests,
// quickstart examples).
func CompileString(name, src string, opts Options) (*irgen.Result, error) {
	return Compile(name, cpp.MapSource{"main.c": src}, []string{"main.c"}, opts)
}
