// Package frontend chains SafeFlow's C front end: preprocess, lex, parse,
// type-check, lower to IR, and promote to SSA. It is the single entry
// point used by the analysis pipeline, the CLI, and tests.
//
// Translation units are independent until the type checker merges them, so
// Compile preprocesses, lexes and parses them concurrently on a bounded
// worker pool (Options.Workers, default GOMAXPROCS). Results are merged in
// the caller's file order and the first error — in that same stable order,
// not in completion order — is the one reported, so compilation output is
// identical at every worker count.
package frontend

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"safeflow/internal/cast"
	"safeflow/internal/clex"
	"safeflow/internal/cparse"
	"safeflow/internal/cpp"
	"safeflow/internal/csema"
	"safeflow/internal/irgen"
)

// Options configure compilation.
type Options struct {
	// Defines predefines object-like macros (as with -D).
	Defines map[string]string
	// SkipPromote leaves the IR in pre-mem2reg form (used by tests that
	// inspect the unpromoted program).
	SkipPromote bool
	// Workers bounds the number of translation units compiled concurrently.
	// 0 means runtime.GOMAXPROCS(0); 1 compiles sequentially.
	Workers int
}

// workerCount resolves the effective pool size for n independent tasks.
func workerCount(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// compileUnit runs the per-TU front half: preprocess, lex, parse.
func compileUnit(sources cpp.Source, cf string, opts Options) (*cast.File, error) {
	pp := cpp.New(sources)
	keys := make([]string, 0, len(opts.Defines))
	for k := range opts.Defines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pp.Define(k, opts.Defines[k])
	}
	text, err := pp.Expand(cf)
	if err != nil {
		return nil, fmt.Errorf("preprocess %s: %w", cf, err)
	}
	lx := clex.New(cf, text)
	toks := lx.All()
	if errs := lx.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("lex %s: %w", cf, errs[0])
	}
	p := cparse.New(cf, toks)
	f, err := p.ParseFile()
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", cf, err)
	}
	return f, nil
}

// Compile builds the translation units named by cFiles (each preprocessed
// independently against sources) into one typed, SSA-promoted module.
func Compile(name string, sources cpp.Source, cFiles []string, opts Options) (*irgen.Result, error) {
	files := make([]*cast.File, len(cFiles))
	errs := make([]error, len(cFiles))

	workers := workerCount(opts.Workers, len(cFiles))
	if workers <= 1 {
		for i, cf := range cFiles {
			files[i], errs[i] = compileUnit(sources, cf, opts)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					files[i], errs[i] = compileUnit(sources, cFiles[i], opts)
				}
			}()
		}
		for i := range cFiles {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	// First error in stable file order, regardless of completion order.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	prog, err := csema.Analyze(files)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}

	res := irgen.Build(name, prog)
	if len(res.Errors) > 0 {
		return res, fmt.Errorf("lower: %w", res.Errors[0])
	}
	if !opts.SkipPromote {
		irgen.Promote(res.Module)
	}
	return res, nil
}

// CompileString is a convenience for single-buffer programs (tests,
// quickstart examples).
func CompileString(name, src string, opts Options) (*irgen.Result, error) {
	return Compile(name, cpp.MapSource{"main.c": src}, []string{"main.c"}, opts)
}
