package frontend

import (
	"strings"
	"testing"

	"safeflow/internal/annot"
	"safeflow/internal/ir"
)

func TestCompileSmoke(t *testing.T) {
	src := `
typedef struct { double angle; double track; double control; int ready; } SHMData;

SHMData *noncoreCtrl;
SHMData *feedback;
int shmLock;

double fabs(double);

int checkSafety(SHMData *f, SHMData *c) {
	if (fabs(c->control) > 4.9) {
		return 0;
	}
	return 1;
}

double decision(SHMData *f, double safeControl, SHMData *nc)
/***SafeFlow Annotation assume(core(nc, 0, sizeof(SHMData))) /***/
{
	if (checkSafety(f, nc)) {
		return nc->control;
	}
	return safeControl;
}

int main() {
	double safeControl;
	double output;
	int i;
	safeControl = 0.0;
	for (i = 0; i < 10; i++) {
		output = decision(feedback, safeControl, noncoreCtrl);
		/***SafeFlow Annotation assert(safe(output)) /***/
		safeControl = output * 0.5;
	}
	return 0;
}
`
	res, err := CompileString("smoke", src, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := res.Module

	decision := m.FuncByName("decision")
	if decision == nil || decision.IsDecl {
		t.Fatalf("decision not lowered")
	}
	facts, ok := decision.Facts.(*annot.FuncFacts)
	if !ok || len(facts.Core) != 1 {
		t.Fatalf("decision facts = %#v, want one core fact", decision.Facts)
	}
	if facts.Core[0].Ptr != "nc" || facts.Core[0].Size != 32 {
		t.Errorf("core fact = %+v, want nc size 32", facts.Core[0])
	}

	mainFn := m.FuncByName("main")
	if mainFn == nil {
		t.Fatal("main not found")
	}
	var asserts int
	for _, b := range mainFn.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && c.Callee.Name == "__safeflow_assert_safe" {
				asserts++
				if res.AssertVars[c] != "output" {
					t.Errorf("assert var = %q, want output", res.AssertVars[c])
				}
			}
		}
	}
	if asserts != 1 {
		t.Fatalf("found %d assert intrinsics, want 1:\n%s", asserts, mainFn.String())
	}

	// After mem2reg the loop induction variable must be a phi, not a load.
	text := mainFn.String()
	if !strings.Contains(text, "phi") {
		t.Errorf("expected phis after promotion:\n%s", text)
	}
	for _, b := range mainFn.Blocks {
		for _, in := range b.Instrs {
			if a, ok := in.(*ir.Alloca); ok && a.VarName == "i" {
				t.Errorf("alloca for scalar %q survived promotion", a.VarName)
			}
		}
	}
}

func TestCompileIncludeAndDefine(t *testing.T) {
	sources := map[string]string{
		"defs.h": `
#ifndef DEFS_H
#define DEFS_H
#define MAXLEN 8
typedef struct { int buf[MAXLEN]; int n; } Ring;
#endif
`,
		"main.c": `
#include "defs.h"
Ring ring;
int sum() {
	int i;
	int total;
	total = 0;
	for (i = 0; i < MAXLEN; i++) {
		total += ring.buf[i];
	}
	return total;
}
int main() { return sum(); }
`,
	}
	res, err := Compile("inc", toSource(sources), []string{"main.c"}, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if res.Module.FuncByName("sum") == nil {
		t.Fatal("sum missing")
	}
	g := res.Module.GlobalByName("ring")
	if g == nil {
		t.Fatal("global ring missing")
	}
	if g.Elem.Size() != 8*4+4 {
		t.Errorf("ring size = %d, want 36", g.Elem.Size())
	}
}

func TestCompileErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"undeclared", `int main() { return x; }`, "undeclared identifier"},
		{"badcall", `void f(int a) {} int main() { f(); return 0; }`, "want 1"},
		{"badfield", `struct S { int a; }; int main() { struct S s; return s.b; }`, `no field "b"`},
		{"badannot", "int main()\n/***SafeFlow Annotation assume(bogus(x)) /***/\n{ return 0; }", "unknown assume fact"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := CompileString(tc.name, tc.src, Options{})
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func toSource(m map[string]string) mapSource { return mapSource(m) }

type mapSource map[string]string

func (m mapSource) ReadFile(name string) (string, error) {
	if s, ok := m[name]; ok {
		return s, nil
	}
	return "", errNotFound(name)
}

type errNotFound string

func (e errNotFound) Error() string { return "not found: " + string(e) }
