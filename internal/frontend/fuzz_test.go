package frontend_test

import (
	"os"
	"path/filepath"
	"testing"

	"safeflow/internal/core"
	"safeflow/internal/corpus"
	"safeflow/internal/cpp"
	"safeflow/internal/frontend"
	"safeflow/internal/fuzzcamp"
)

// campaignSeedTexts is the shared seed frontier with the sffuzz
// campaign (fuzzcamp.SeedInputs): the same generated systems seed both
// `go test -fuzz` and the mutation campaign, so a corpus file found
// interesting by one explores from the other's starting line.
func campaignSeedTexts() []string {
	var texts []string
	for _, in := range fuzzcamp.SeedInputs(1, 4) {
		for _, name := range in.Files() {
			texts = append(texts, in.Sources[name])
		}
	}
	return texts
}

// FuzzCompile feeds arbitrary C-subset sources through the whole
// pipeline: compilation and then full analysis. Both must reject bad
// input with an error — panics are the only failure mode. Seeded with
// every real program in the repository.
func FuzzCompile(f *testing.F) {
	if data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "figure2.c")); err == nil {
		f.Add(string(data))
	}
	for _, sys := range corpus.All() {
		src, err := sys.SourceMap()
		if err != nil {
			f.Fatal(err)
		}
		for _, text := range src {
			f.Add(text)
		}
	}
	for _, text := range campaignSeedTexts() {
		f.Add(text)
	}
	for _, seed := range []string{
		"int main() { return 0; }",
		"double *p; int main() { return *p > 0.0; }",
		"/***SafeFlow Annotation shminit /***/ void f() {}",
		"int main() { /***SafeFlow Annotation assert(safe(x)) /***/ return 0; }",
		"struct S { int a; };",
		"#define X 1\nint main() { return X; }",
		"int f(", "}{", "", "\x00", "int a[;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		res, err := frontend.CompileString("fuzz", src, frontend.Options{})
		if err == nil && res == nil {
			t.Fatal("nil result without error")
		}
		rep, err := core.AnalyzeString("fuzz", src, core.Options{})
		if err == nil && rep == nil {
			t.Fatal("nil report without error")
		}
	})
}

// FuzzParseRecovery feeds arbitrary sources through the recovering
// front end. The recovering path must never panic, and its structured
// diagnostics must be byte-stable: two compilations of the same input
// produce identical diagnostic lists (the degraded-report determinism
// guarantee starts here).
func FuzzParseRecovery(f *testing.F) {
	for _, text := range campaignSeedTexts() {
		f.Add(text)
	}
	for _, seed := range []string{
		"int main() { return 0; }",
		"int main( { return 0; }",
		"char *s = \"unterminated;\nint x = @;",
		"double f() { return g; }\nint main() { return 0; }",
		"void v() { return 1.0; }",
		"int f(", "}{", "", "\x00", "int a[;",
		"/***SafeFlow Annotation assume(bogus(x)) /***/ void f() {}",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		render := func() string {
			rr, err := frontend.CompileRecover("fuzz", cpp.MapSource{"main.c": src}, []string{"main.c"},
				frontend.Options{DisableParseCache: true})
			if err != nil {
				return "error: " + err.Error()
			}
			if rr.Res == nil {
				t.Fatal("nil result without error")
			}
			out := ""
			for _, d := range rr.Diags {
				out += d.String() + "\n"
			}
			return out
		}
		first, second := render(), render()
		if first != second {
			t.Fatalf("recovering diagnostics unstable across runs:\n--- first:\n%s\n--- second:\n%s", first, second)
		}
	})
}
