package frontend

import (
	"strings"
	"testing"

	"safeflow/internal/cpp"
	"safeflow/internal/diag"
)

// All lexical errors must be surfaced — historically only errs[0]
// reached the caller. The fail-stop error carries every message.
func TestLexReportsAllErrors(t *testing.T) {
	src := "int a = @;\nchar *s = \"unterminated;\n"
	_, err := CompileString("lexerrs", src, Options{DisableParseCache: true})
	if err == nil {
		t.Fatal("expected lex errors")
	}
	for _, want := range []string{"illegal character", "unterminated string literal"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func recoverCompile(t *testing.T, sources map[string]string, cFiles []string) *RecoverResult {
	t.Helper()
	rr, err := CompileRecover("recover", cpp.MapSource(sources), cFiles,
		Options{DisableParseCache: true})
	if err != nil {
		t.Fatalf("CompileRecover: %v", err)
	}
	return rr
}

// A unit that fails to parse is skipped: its diagnostics are recorded,
// the surviving units build normally, and the functions its partial AST
// defines are reported missing.
func TestRecoverSkipsBrokenUnit(t *testing.T) {
	rr := recoverCompile(t, map[string]string{
		"good.c":   "int used() { return 1; }\nint main() { return used() + helper(); }\n",
		"broken.c": "double helper() { return 0.5; }\nint oops( {\n",
	}, []string{"broken.c", "good.c"})

	if !rr.Degraded() {
		t.Fatal("broken unit did not degrade the compile")
	}
	units := diag.Units(rr.Diags)
	if len(units) != 1 || units[0] != "broken.c" {
		t.Fatalf("diagnostic units = %v, want [broken.c]", units)
	}
	for _, d := range rr.Diags {
		if d.Phase != diag.PhaseParse {
			t.Errorf("diag phase = %s, want parse (%s)", d.Phase, d)
		}
	}
	if rr.Res.Module.FuncByName("main") == nil || rr.Res.Module.FuncByName("used") == nil {
		t.Error("surviving unit's functions missing from the module")
	}
	if !rr.MissingDefs["helper"] {
		t.Errorf("helper (defined in skipped unit) not in MissingDefs: %v", rr.MissingDefs)
	}
	if rr.MissingDefs["used"] || rr.MissingDefs["main"] {
		t.Errorf("surviving definitions wrongly reported missing: %v", rr.MissingDefs)
	}
}

// A unit that parses but fails the type checker is dropped by the
// drop-and-retry loop, and the remaining units are re-checked clean.
func TestRecoverTypecheckDropAndRetry(t *testing.T) {
	rr := recoverCompile(t, map[string]string{
		"bad.c":  "double helper() { return missing_symbol; }\n",
		"main.c": "int main() { return 0; }\n",
	}, []string{"bad.c", "main.c"})

	if !rr.Degraded() {
		t.Fatal("type error did not degrade the compile")
	}
	var sawTypecheck bool
	for _, d := range rr.Diags {
		if d.Unit == "bad.c" && d.Phase == diag.PhaseTypecheck &&
			strings.Contains(d.Msg, "missing_symbol") {
			sawTypecheck = true
		}
	}
	if !sawTypecheck {
		t.Errorf("no typecheck diagnostic for bad.c: %v", rr.Diags)
	}
	if rr.Res.Module.FuncByName("main") == nil {
		t.Error("main lost while dropping bad.c")
	}
	if !rr.MissingDefs["helper"] {
		t.Errorf("helper not in MissingDefs: %v", rr.MissingDefs)
	}
}

// The resynchronizing parser accumulates several diagnostics for one
// unit — recovery reports them all, in a deterministic order.
func TestRecoverMultipleDiagnosticsPerUnit(t *testing.T) {
	src := "int f() { return 1 + ; }\nint g() { return ( ; }\nint main() { return 0; }\n"
	rr := recoverCompile(t, map[string]string{
		"multi.c": src,
		"ok.c":    "int other() { return 2; }\n",
	}, []string{"multi.c", "ok.c"})

	if !rr.Degraded() {
		t.Fatal("expected degradation")
	}
	n := 0
	for _, d := range rr.Diags {
		if d.Unit == "multi.c" && d.Phase == diag.PhaseParse {
			n++
		}
	}
	if n < 2 {
		t.Errorf("parse diagnostics for multi.c = %d, want >= 2:\n%v", n, rr.Diags)
	}
	if rr.Res.Module.FuncByName("other") == nil {
		t.Error("surviving unit lost")
	}
	for i := 1; i < len(rr.Diags); i++ {
		if diag.Less(rr.Diags[i], rr.Diags[i-1]) {
			t.Errorf("diagnostics not sorted: %v before %v", rr.Diags[i-1], rr.Diags[i])
		}
	}
}

// A fully healthy compile through the recovering path is not degraded
// and reports no missing definitions.
func TestRecoverCleanRun(t *testing.T) {
	rr := recoverCompile(t, map[string]string{
		"a.c": "int helper() { return 1; }\n",
		"b.c": "int main() { return helper(); }\n",
	}, []string{"a.c", "b.c"})
	if rr.Degraded() || len(rr.Diags) != 0 || rr.MissingDefs != nil {
		t.Errorf("clean run degraded: diags=%v missing=%v", rr.Diags, rr.MissingDefs)
	}
}
