// Incremental frontend: per-translation-unit fragment compilation with a
// content-keyed fragment cache and a module linker.
//
// A session's FragmentCompiler keeps, per .c file, the fully lowered and
// promoted single-TU module ("fragment") keyed by the TU's preprocessed
// text. On an update only the TUs whose expansion changed are recompiled;
// unchanged fragments are reused as-is — including their per-function
// body hashes, which feed the value-flow scheduler's dependency graph.
// The fragments are then linked: one canonical function and global is
// chosen per name (first appearance wins the module slot, a definition
// replaces a declaration in place) and every operand is rewired onto the
// canonical objects, reproducing the whole-module compile's declaration
// order so downstream reports stay byte-identical.
//
// The linker is deliberately conservative: any situation the whole-module
// pipeline would handle differently from naive per-TU merging — duplicate
// definitions, signature or global-type mismatches, conflicting struct
// layouts, conflicting initializers, or any compile diagnostic at all —
// fails the fragment path, and the caller falls back to the full
// pipeline (which reproduces the proper error or degraded report).
package frontend

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"safeflow/internal/cast"
	"safeflow/internal/clex"
	"safeflow/internal/cparse"
	"safeflow/internal/cpp"
	"safeflow/internal/csema"
	"safeflow/internal/ctypes"
	"safeflow/internal/guard"
	"safeflow/internal/ir"
	"safeflow/internal/irgen"
)

// HashFunc fingerprints one lowered function body (supplied by the
// caller to avoid a frontend→vfg dependency).
type HashFunc func(fn *ir.Function, assertVars map[*ir.Call]string) uint64

// fragment is one translation unit's lowered, promoted module plus the
// content hashes of the functions it defines. Body hashes are stored
// with the fragment (not per session-update) so a reused fragment's
// hints are intrinsically consistent with its IR.
type fragment struct {
	key        [sha256.Size]byte
	res        *irgen.Result
	bodyHashes map[string]uint64
	structs    map[string]*ctypes.Struct
}

// FragmentCompiler compiles translation units independently and links
// them into one module, recompiling only the units whose preprocessed
// content changed. One compiler serves one session: fragments are
// mutated during linking (operand rewiring) and must not be shared.
type FragmentCompiler struct {
	name       string
	opts       Options
	hashFn     HashFunc
	frags      map[string]*fragment
	expansions map[string]*expansion
	// fpMemo caches structural type fingerprints per type object. Types
	// are immutable once built and reused fragments carry the same type
	// pointers into every link, so the memo turns the per-link symbol
	// gates into map lookups.
	fpMemo map[ctypes.Type]string
	// The previous link, returned verbatim when the fragment list is
	// unchanged (pointer-for-pointer, in order) — the comment-only-edit
	// case, where rebuilt fragments were adopted back into their
	// semantically identical predecessors.
	lastFrags  []*fragment
	lastRes    *irgen.Result
	lastHashes map[string]uint64
}

// NewFragmentCompiler returns a compiler for one session. hashFn may be
// nil, in which case no body hashes are produced.
func NewFragmentCompiler(name string, opts Options, hashFn HashFunc) *FragmentCompiler {
	return &FragmentCompiler{
		name: name, opts: opts, hashFn: hashFn,
		frags:      make(map[string]*fragment),
		expansions: make(map[string]*expansion),
		fpMemo:     make(map[ctypes.Type]string),
	}
}

// expansion caches one unit's preprocessed text together with the exact
// files the preprocessor read to produce it. The cache is fresh while
// every dependency's current content is unchanged — unchanged files in
// a session keep their identical string values, so the comparison hits
// the pointer-equality fast path.
type expansion struct {
	text string
	deps map[string]string
}

func (e *expansion) fresh(sources cpp.Source) bool {
	for name, prev := range e.deps {
		cur, err := sources.ReadFile(name)
		if err != nil || cur != prev {
			return false
		}
	}
	return true
}

// recordingSource logs every file the preprocessor reads.
type recordingSource struct {
	src  cpp.Source
	deps map[string]string
}

func (r *recordingSource) ReadFile(name string) (string, error) {
	text, err := r.src.ReadFile(name)
	if err == nil {
		r.deps[name] = text
	}
	return text, err
}

// Compile builds (or reuses) one fragment per cFile and links them.
// ok=false means the fragment path cannot represent this input (compile
// diagnostics, link conflicts, cancellation) and the caller must fall
// back to the full pipeline.
func (fc *FragmentCompiler) Compile(ctx context.Context, sources cpp.Source, cFiles []string) (res *irgen.Result, bodyHashes map[string]uint64, ok bool) {
	// Panic-isolate the whole fragment path: a crash anywhere inside it
	// degrades to the full pipeline instead of taking the session down.
	err := guard.Run("frontend", "fragments", func() error {
		res, bodyHashes, ok = fc.compile(ctx, sources, cFiles)
		return nil
	})
	if err != nil {
		return nil, nil, false
	}
	return res, bodyHashes, ok
}

func (fc *FragmentCompiler) compile(ctx context.Context, sources cpp.Source, cFiles []string) (*irgen.Result, map[string]uint64, bool) {
	live := make(map[string]bool, len(cFiles))
	frags := make([]*fragment, 0, len(cFiles))
	for _, cf := range cFiles {
		if ctx.Err() != nil {
			return nil, nil, false
		}
		live[cf] = true
		text, ok := fc.expand(sources, cf)
		if !ok {
			return nil, nil, false
		}
		key := parseCacheKey(cf, text)
		if f := fc.frags[cf]; f != nil && f.key == key {
			frags = append(frags, f)
			continue
		}
		f, ok := fc.build(cf, text, key)
		if !ok {
			delete(fc.frags, cf) // a stale fragment must not outlive its source
			return nil, nil, false
		}
		// A rebuild that is semantically identical to the old fragment —
		// same symbols, layouts, body hashes (which cover positions and
		// annotation facts) — adopts the old fragment's IR under the new
		// content key, keeping its identity stable for link reuse.
		if old := fc.frags[cf]; old != nil && fc.sameFragment(old, f) {
			old.key = f.key
			frags = append(frags, old)
			continue
		}
		fc.frags[cf] = f
		frags = append(frags, f)
	}
	// Drop fragments and cached expansions of removed files.
	for cf := range fc.frags {
		if !live[cf] {
			delete(fc.frags, cf)
		}
	}
	for cf := range fc.expansions {
		if !live[cf] {
			delete(fc.expansions, cf)
		}
	}
	if fc.sameLink(frags) {
		return fc.lastRes, fc.lastHashes, true
	}
	res, hashes, ok := fc.link(frags)
	if ok {
		fc.lastFrags = append(fc.lastFrags[:0], frags...)
		fc.lastRes, fc.lastHashes = res, hashes
	} else {
		fc.lastFrags, fc.lastRes, fc.lastHashes = nil, nil, nil
	}
	return res, hashes, ok
}

// sameLink reports whether frags is exactly the previous link's input —
// same fragment objects in the same order — so its output is reusable.
func (fc *FragmentCompiler) sameLink(frags []*fragment) bool {
	if fc.lastRes == nil || len(frags) != len(fc.lastFrags) {
		return false
	}
	for i, f := range frags {
		if fc.lastFrags[i] != f {
			return false
		}
	}
	return true
}

// sameFragment reports whether two compiles of one unit are semantically
// interchangeable: identical symbol lists (names, order, kind), identical
// signature and layout fingerprints, and identical body hashes — which
// cover instruction positions, assert variables, and annotation facts,
// so adopted IR renders byte-identical reports.
func (fc *FragmentCompiler) sameFragment(a, b *fragment) bool {
	if fc.hashFn == nil {
		return false // without body hashes there is no semantic signal
	}
	am, bm := a.res.Module, b.res.Module
	if len(am.Funcs) != len(bm.Funcs) || len(am.Globals) != len(bm.Globals) ||
		len(a.structs) != len(b.structs) || len(a.bodyHashes) != len(b.bodyHashes) {
		return false
	}
	// Definitions must match pairwise in order; declarations are compared
	// as a set — csema emits builtin declarations in nondeterministic
	// order, and declaration order is already proven not to affect report
	// bytes (the whole-module pipeline has the same nondeterminism and
	// passes byte-determinism).
	decls := make(map[string]*ir.Function)
	var aDefs []*ir.Function
	for _, fn := range am.Funcs {
		if fn.IsDecl {
			decls[fn.Name] = fn
		} else {
			aDefs = append(aDefs, fn)
		}
	}
	var bDefs []*ir.Function
	for _, fn := range bm.Funcs {
		if fn.IsDecl {
			o, ok := decls[fn.Name]
			if !ok || o.Pos != fn.Pos || fc.fp(o.Sig) != fc.fp(fn.Sig) {
				return false
			}
			delete(decls, fn.Name)
		} else {
			bDefs = append(bDefs, fn)
		}
	}
	if len(decls) != 0 || len(aDefs) != len(bDefs) {
		return false
	}
	for i, fn := range aDefs {
		o := bDefs[i]
		if fn.Name != o.Name || fn.Pos != o.Pos || fc.fp(fn.Sig) != fc.fp(o.Sig) {
			return false
		}
	}
	for i, g := range am.Globals {
		o := bm.Globals[i]
		if g.Name != o.Name || g.HasInit != o.HasInit || g.Pos != o.Pos ||
			len(g.InitInts) != len(o.InitInts) || fc.fp(g.Elem) != fc.fp(o.Elem) {
			return false
		}
		for j, v := range g.InitInts {
			if o.InitInts[j] != v {
				return false
			}
		}
	}
	for tag, st := range a.structs {
		ost, ok := b.structs[tag]
		if !ok || fc.fp(st) != fc.fp(ost) {
			return false
		}
	}
	for name, h := range a.bodyHashes {
		oh, ok := b.bodyHashes[name]
		if !ok || h != oh {
			return false
		}
	}
	return true
}

// expand preprocesses one unit exactly as compileUnitDiags does,
// skipping the preprocessor entirely while the unit's recorded include
// closure is unchanged.
func (fc *FragmentCompiler) expand(sources cpp.Source, cf string) (string, bool) {
	if e := fc.expansions[cf]; e != nil && e.fresh(sources) {
		return e.text, true
	}
	rec := &recordingSource{src: sources, deps: make(map[string]string)}
	pp := cpp.New(rec)
	keys := make([]string, 0, len(fc.opts.Defines))
	for k := range fc.opts.Defines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pp.Define(k, fc.opts.Defines[k])
	}
	text, err := pp.Expand(cf)
	if err != nil {
		delete(fc.expansions, cf)
		return "", false
	}
	fc.expansions[cf] = &expansion{text: text, deps: rec.deps}
	return text, true
}

// build compiles one fragment: parse (through the shared parse cache),
// single-file type-check, lower, promote, hash. Any diagnostic fails the
// fragment path.
func (fc *FragmentCompiler) build(cf, text string, key [sha256.Size]byte) (*fragment, bool) {
	var file *cast.File
	if !fc.opts.DisableParseCache {
		if f := parseCacheGet(key, fc.opts.Metrics); f != nil {
			fc.opts.Metrics.AddFrontendCache(1, 0)
			file = f
		} else if fc.opts.DiskCache != nil {
			if f := parseDiskGet(fc.opts.DiskCache, key, cf, fc.opts.Metrics); f != nil {
				parseCachePut(key, f)
				fc.opts.Metrics.AddFrontendCache(1, 0)
				file = f
			}
		}
	}
	if file == nil {
		lx := clex.New(cf, text)
		toks := lx.All()
		if len(lx.Errors()) > 0 {
			return nil, false
		}
		f, err := cparse.New(cf, toks).ParseFile()
		if err != nil {
			return nil, false
		}
		if !fc.opts.DisableParseCache {
			parseCachePut(key, f)
			if fc.opts.DiskCache != nil {
				parseDiskPut(fc.opts.DiskCache, key, f)
			}
			fc.opts.Metrics.AddFrontendCache(0, 1)
		}
		file = f
	}

	prog, err := csema.Analyze([]*cast.File{file})
	if err != nil {
		return nil, false
	}
	res := irgen.Build(fc.name, prog)
	if len(res.Errors) > 0 {
		return nil, false
	}
	if !fc.opts.SkipPromote {
		irgen.Promote(res.Module)
	}
	frag := &fragment{key: key, res: res, structs: prog.Structs}
	if fc.hashFn != nil {
		frag.bodyHashes = make(map[string]uint64)
		for _, fn := range res.Module.Funcs {
			if !fn.IsDecl {
				frag.bodyHashes[fn.Name] = fc.hashFn(fn, res.AssertVars)
			}
		}
	}
	return frag, true
}

// link merges the fragments into one module in first-appearance order,
// mirroring the whole-module type checker's declaration-order semantics.
func (fc *FragmentCompiler) link(frags []*fragment) (*irgen.Result, map[string]uint64, bool) {
	// Struct layouts must agree across fragments: the whole-module check
	// would have merged (or rejected) them, and the analysis depends on
	// field offsets and sizes baked in during per-fragment lowering.
	structFPs := make(map[string]string)
	for _, f := range frags {
		for tag, st := range f.structs {
			fp := fc.fp(st)
			if prev, ok := structFPs[tag]; ok && prev != fp {
				return nil, nil, false
			}
			structFPs[tag] = fp
		}
	}

	nFuncs, nGlobals, nAsserts := 0, 0, 0
	for _, f := range frags {
		nFuncs += len(f.res.Module.Funcs)
		nGlobals += len(f.res.Module.Globals)
		nAsserts += len(f.res.AssertVars)
	}
	var (
		fnSlot  = make(map[string]int, nFuncs)
		fnOrder = make([]*ir.Function, 0, nFuncs)
		gSlot   = make(map[string]int, nGlobals)
		gOrder  = make([]*ir.Global, 0, nGlobals)
	)
	for _, f := range frags {
		for _, g := range f.res.Module.Globals {
			i, seen := gSlot[g.Name]
			if !seen {
				gSlot[g.Name] = len(gOrder)
				gOrder = append(gOrder, g)
				continue
			}
			prev := gOrder[i]
			if fc.fp(prev.Elem) != fc.fp(g.Elem) {
				return nil, nil, false
			}
			if g.HasInit {
				if prev.HasInit {
					return nil, nil, false // conflicting initializers
				}
				gOrder[i] = g // the initializing declaration wins the slot
			}
		}
		for _, fn := range f.res.Module.Funcs {
			i, seen := fnSlot[fn.Name]
			if !seen {
				fnSlot[fn.Name] = len(fnOrder)
				fnOrder = append(fnOrder, fn)
				continue
			}
			prev := fnOrder[i]
			if fc.fp(prev.Sig) != fc.fp(fn.Sig) {
				return nil, nil, false
			}
			if !fn.IsDecl {
				if !prev.IsDecl {
					return nil, nil, false // duplicate definition
				}
				fnOrder[i] = fn // the definition wins the slot
			}
		}
	}

	m := ir.NewModule(fc.name)
	for _, g := range gOrder {
		m.AddGlobal(g)
	}
	for _, fn := range fnOrder {
		m.AddFunc(fn)
	}
	repl := func(v ir.Value) ir.Value {
		switch x := v.(type) {
		case *ir.Function:
			if c := m.FuncByName(x.Name); c != nil && c != x {
				return c
			}
		case *ir.Global:
			if c := m.GlobalByName(x.Name); c != nil && c != x {
				return c
			}
		}
		return nil
	}
	// Rewire every function on every link: a reused fragment's operands
	// still point at the previous link's canonical objects.
	for _, fn := range fnOrder {
		if !fn.IsDecl {
			ir.RewriteOperands(fn, repl)
		}
	}

	merged := &irgen.Result{Module: m, AssertVars: make(map[*ir.Call]string, nAsserts)}
	bodyHashes := make(map[string]uint64, len(fnOrder))
	for _, f := range frags {
		for c, v := range f.res.AssertVars {
			merged.AssertVars[c] = v
		}
		for name, h := range f.bodyHashes {
			bodyHashes[name] = h
		}
	}
	return merged, bodyHashes, true
}

// fp is the memoizing entry point for typeFP. Recompiled fragments
// allocate fresh type objects, so the memo is rebuilt if it ever grows
// pathological.
func (fc *FragmentCompiler) fp(t ctypes.Type) string {
	if s, ok := fc.fpMemo[t]; ok {
		return s
	}
	if len(fc.fpMemo) > 1<<16 {
		fc.fpMemo = make(map[ctypes.Type]string)
	}
	s := typeFP(t, nil)
	fc.fpMemo[t] = s
	return s
}

// typeFP renders a type to a structural fingerprint. ctypes structs are
// nominal (pointer equality), but fragments re-create identical struct
// types per TU, so cross-fragment comparisons must be structural. A
// struct already being expanded renders as its tag (cycle cut).
func typeFP(t ctypes.Type, expanding map[*ctypes.Struct]bool) string {
	switch x := t.(type) {
	case nil:
		return "<nil>"
	case *ctypes.Basic:
		return x.String()
	case *ctypes.Pointer:
		return "*" + typeFP(x.Elem, expanding)
	case *ctypes.Array:
		return fmt.Sprintf("[%d]%s", x.Len, typeFP(x.Elem, expanding))
	case *ctypes.Struct:
		kw := "struct"
		if x.IsUnion {
			kw = "union"
		}
		if expanding[x] {
			return kw + " " + x.Tag
		}
		if expanding == nil {
			expanding = make(map[*ctypes.Struct]bool)
		}
		expanding[x] = true
		var b strings.Builder
		b.WriteString(kw)
		b.WriteByte(' ')
		b.WriteString(x.Tag)
		b.WriteByte('{')
		for _, fld := range x.Fields {
			fmt.Fprintf(&b, "%s@%d:%s;", fld.Name, fld.Offset, typeFP(fld.Type, expanding))
		}
		b.WriteByte('}')
		delete(expanding, x)
		return b.String()
	case *ctypes.Func:
		var b strings.Builder
		b.WriteString("func(")
		for _, p := range x.Params {
			b.WriteString(typeFP(p, expanding))
			b.WriteByte(',')
		}
		if x.Variadic {
			b.WriteString("...")
		}
		b.WriteByte(')')
		b.WriteString(typeFP(x.Result, expanding))
		return b.String()
	default:
		return fmt.Sprintf("%T", t)
	}
}
