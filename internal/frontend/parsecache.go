// Content-keyed parse cache. Lex + parse dominate warm end-to-end runs
// (the analysis phases are cached separately by the vfg summary cache), so
// repeated compilations of unchanged translation units — sfbench
// iterations, watch-mode workloads, AnalyzeAll batches sharing headers —
// reuse the parsed AST instead of re-deriving it.
//
// The key is the SHA-256 of the file name and its fully preprocessed text,
// so any edit to the unit or to a header it includes changes the key (the
// preprocessor has already expanded includes and macros by the time the
// key is computed). Sharing parsed files is safe because nothing
// downstream mutates the AST: the type checker records its results in
// side tables and the IR lowering builds separate ir nodes. Entries are
// stored only after a fully successful parse, so a cancelled or crashed
// compilation can never poison the cache.

package frontend

import (
	"crypto/sha256"
	"sync"

	"safeflow/internal/cast"
)

// maxParseEntries bounds the process-global cache; eviction is arbitrary
// (the cache is an accelerator, not a store of record).
const maxParseEntries = 256

var parseCache = struct {
	sync.Mutex
	files map[[sha256.Size]byte]*cast.File
}{files: make(map[[sha256.Size]byte]*cast.File)}

func parseCacheKey(filename, expanded string) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(filename))
	h.Write([]byte{0})
	h.Write([]byte(expanded))
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

func parseCacheGet(key [sha256.Size]byte) *cast.File {
	parseCache.Lock()
	defer parseCache.Unlock()
	return parseCache.files[key]
}

func parseCachePut(key [sha256.Size]byte, f *cast.File) {
	parseCache.Lock()
	defer parseCache.Unlock()
	if _, have := parseCache.files[key]; !have && len(parseCache.files) >= maxParseEntries {
		for k := range parseCache.files {
			delete(parseCache.files, k)
			break
		}
	}
	parseCache.files[key] = f
}

// ResetParseCache empties the parse cache (cold-run benchmarks and cache
// tests).
func ResetParseCache() {
	parseCache.Lock()
	defer parseCache.Unlock()
	parseCache.files = make(map[[sha256.Size]byte]*cast.File)
}
