// Content-keyed parse cache. Lex + parse dominate warm end-to-end runs
// (the analysis phases are cached separately by the vfg summary cache), so
// repeated compilations of unchanged translation units — sfbench
// iterations, watch-mode workloads, AnalyzeAll batches sharing headers —
// reuse the parsed AST instead of re-deriving it.
//
// The key is the SHA-256 of the file name and its fully preprocessed text,
// so any edit to the unit or to a header it includes changes the key (the
// preprocessor has already expanded includes and macros by the time the
// key is computed). Sharing parsed files is safe because nothing
// downstream mutates the AST: the type checker records its results in
// side tables and the IR lowering builds separate ir nodes. Entries are
// stored only after a fully successful parse, so a cancelled or crashed
// compilation can never poison the cache.
//
// Entries are self-checking: each carries an echo of the file name and
// declaration count recorded at store time, verified on every hit. An
// entry that no longer matches its echo (memory corruption, a buggy
// mutation of a shared AST) is evicted and recompiled — a corrupt entry
// degrades to a miss, never to a wrong module — and the eviction is
// counted in run metrics as cache_corrupt_evictions.

package frontend

import (
	"crypto/sha256"
	"sync"

	"safeflow/internal/cast"
	"safeflow/internal/diskcache"
	"safeflow/internal/metrics"
)

// maxParseEntries bounds the process-global cache; eviction is arbitrary
// (the cache is an accelerator, not a store of record).
const maxParseEntries = 256

// parseEntry is one cached AST with its integrity echo.
type parseEntry struct {
	file *cast.File
	// Integrity echo, recorded at store time and verified on every get.
	name  string // file.Name at store time
	decls int    // len(file.Decls) at store time
}

// valid reports whether the entry still matches its integrity echo.
func (e *parseEntry) valid() bool {
	return e != nil && e.file != nil && e.file.Name == e.name && len(e.file.Decls) == e.decls
}

var parseCache = struct {
	sync.Mutex
	files map[[sha256.Size]byte]*parseEntry
}{files: make(map[[sha256.Size]byte]*parseEntry)}

func parseCacheKey(filename, expanded string) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(filename))
	h.Write([]byte{0})
	h.Write([]byte(expanded))
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// parseCacheGet returns the cached AST for key, or nil. A corrupted or
// truncated entry is evicted, counted (col is nil-safe), and reported as
// a miss so the unit is recompiled from source.
func parseCacheGet(key [sha256.Size]byte, col *metrics.Collector) *cast.File {
	parseCache.Lock()
	defer parseCache.Unlock()
	e, ok := parseCache.files[key]
	if !ok {
		return nil
	}
	if !e.valid() {
		delete(parseCache.files, key)
		col.AddCacheCorruptEvictions(1)
		return nil
	}
	return e.file
}

func parseCachePut(key [sha256.Size]byte, f *cast.File) {
	parseCache.Lock()
	defer parseCache.Unlock()
	if _, have := parseCache.files[key]; !have && len(parseCache.files) >= maxParseEntries {
		for k := range parseCache.files {
			delete(parseCache.files, k)
			break
		}
	}
	e := &parseEntry{file: f}
	if f != nil {
		e.name = f.Name
		e.decls = len(f.Decls)
	}
	parseCache.files[key] = e
}

// ResetParseCache empties the parse cache (cold-run benchmarks and cache
// tests).
func ResetParseCache() {
	parseCache.Lock()
	defer parseCache.Unlock()
	parseCache.files = make(map[[sha256.Size]byte]*parseEntry)
}

// ParseCacheLen reports the number of cached entries (test hook for the
// fault-injection harness's no-cache-writes invariant).
func ParseCacheLen() int {
	parseCache.Lock()
	defer parseCache.Unlock()
	return len(parseCache.files)
}

// ---------------------------------------------------------------------------
// Disk tier. When Options.DiskCache is set, parsed ASTs are also
// persisted to the content-addressed store (namespace "parse", payload =
// cast.Encode bytes), so the next process — a CLI warm start, an sfbench
// iteration, a safeflowd worker after a restart — skips lex + parse for
// unchanged preprocessed units. The store verifies a SHA-256 of every
// payload on read and evicts on mismatch; on top of that the decoded AST
// is checked against the unit name it was stored for, so a disk hit can
// only ever produce the same AST a fresh parse would.

// parseDiskNS is the store namespace for parse entries.
const parseDiskNS = "parse"

// parseDiskVersion versions the payload encoding; it tracks
// cast.CodecVersion so an AST shape change invalidates old entries
// instead of decoding them with the wrong codec.
const parseDiskVersion = cast.CodecVersion

// parseDiskGet consults the persistent tier after an in-memory miss.
// Any integrity failure — store checksum, undecodable payload, unit-name
// echo mismatch — degrades to a miss and is counted as a corrupt
// eviction (col is nil-safe).
func parseDiskGet(dc diskcache.CacheBackend, key [sha256.Size]byte, cf string, col *metrics.Collector) *cast.File {
	data, ok, corrupt := dc.Get(parseDiskNS, parseDiskVersion, key)
	if corrupt {
		col.AddCacheCorruptEvictions(1)
	}
	if !ok {
		col.AddDiskCache(0, 1)
		return nil
	}
	f, err := cast.Decode(data)
	if err != nil || f == nil || f.Name != cf {
		// The payload passed the store's checksum but does not decode to
		// an AST for this unit (codec bug or stale entry written without
		// a version bump): treat as corrupt. The recomputed entry is
		// re-stored, healing it.
		col.AddCacheCorruptEvictions(1)
		col.AddDiskCache(0, 1)
		return nil
	}
	col.AddDiskCache(1, 0)
	return f
}

// parseDiskPut persists a freshly parsed unit; encoding failures just
// skip the store (the cache is an accelerator, not a store of record).
func parseDiskPut(dc diskcache.CacheBackend, key [sha256.Size]byte, f *cast.File) {
	data, err := cast.Encode(f)
	if err != nil {
		return
	}
	dc.Put(parseDiskNS, parseDiskVersion, key, data)
}

// CorruptParseCache damages up to n cached entries in place (test hook
// for the fault-injection harness) and returns how many were corrupted.
// The next get of a damaged entry must evict and recompile it.
func CorruptParseCache(n int) int {
	parseCache.Lock()
	defer parseCache.Unlock()
	corrupted := 0
	for _, e := range parseCache.files {
		if corrupted >= n {
			break
		}
		e.decls = e.decls + 1 // break the integrity echo
		corrupted++
	}
	return corrupted
}
