package frontend

import (
	"context"
	"testing"

	"safeflow/internal/metrics"
)

const cacheTestSrc = `
int add(int a, int b) { return a + b; }
int main() { return add(1, 2); }
`

// compileCounting compiles main.c from the given sources and returns the
// frontend cache hit/miss counts the run recorded.
func compileCounting(t *testing.T, sources map[string]string, opts Options) (hits, misses int) {
	t.Helper()
	col := metrics.NewCollector()
	opts.Metrics = col
	if _, err := Compile("cachetest", toSource(sources), []string{"main.c"}, opts); err != nil {
		t.Fatalf("compile: %v", err)
	}
	snap := col.Finish()
	return snap.FrontendCacheHits, snap.FrontendCacheMisses
}

func TestParseCacheReuse(t *testing.T) {
	ResetParseCache()
	sources := map[string]string{"main.c": cacheTestSrc}

	if hits, misses := compileCounting(t, sources, Options{}); hits != 0 || misses != 1 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/1", hits, misses)
	}
	if hits, misses := compileCounting(t, sources, Options{}); hits != 1 || misses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want 1/0", hits, misses)
	}
}

// Editing a file (or a header it includes) must change the content key and
// force a fresh parse — the path alone is never the key.
func TestParseCacheContentKey(t *testing.T) {
	ResetParseCache()
	sources := map[string]string{
		"defs.h": "#define ANSWER 1\n",
		"main.c": "#include \"defs.h\"\nint main() { return ANSWER; }\n",
	}
	if hits, misses := compileCounting(t, sources, Options{}); hits != 0 || misses != 1 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/1", hits, misses)
	}

	// Same path, edited header: the preprocessed text differs → miss.
	sources["defs.h"] = "#define ANSWER 2\n"
	if hits, misses := compileCounting(t, sources, Options{}); hits != 0 || misses != 1 {
		t.Fatalf("edited run: hits=%d misses=%d, want 0/1", hits, misses)
	}

	// The edited parse must reflect the new contents, not the cached AST.
	res, err := Compile("edited", toSource(sources), []string{"main.c"}, Options{})
	if err != nil {
		t.Fatalf("compile after edit: %v", err)
	}
	if res.Module.FuncByName("main") == nil {
		t.Fatal("main missing after edit")
	}

	// Defines change the expanded text the same way an edit does.
	ResetParseCache()
	base := map[string]string{"main.c": "int main() { return X; }\n"}
	if _, misses := compileCounting(t, base, Options{Defines: map[string]string{"X": "1"}}); misses != 1 {
		t.Fatal("first define run should miss")
	}
	if hits, _ := compileCounting(t, base, Options{Defines: map[string]string{"X": "2"}}); hits != 0 {
		t.Fatal("changed define must not hit the cache")
	}
}

func TestParseCacheDisable(t *testing.T) {
	ResetParseCache()
	sources := map[string]string{"main.c": cacheTestSrc}
	if hits, misses := compileCounting(t, sources, Options{DisableParseCache: true}); hits != 0 || misses != 0 {
		t.Fatalf("disabled run counted hits=%d misses=%d, want 0/0", hits, misses)
	}
	// A disabled run must not have populated the cache either.
	if hits, _ := compileCounting(t, sources, Options{}); hits != 0 {
		t.Fatal("disabled run leaked an entry into the cache")
	}
}

// A failed parse must never publish an entry: the next compile of the same
// contents has to re-parse and fail again, not hit a poisoned cache.
func TestParseCacheNoPoisonOnError(t *testing.T) {
	ResetParseCache()
	bad := map[string]string{"main.c": "int main( { return 0; }\n"}
	for i := 0; i < 2; i++ {
		col := metrics.NewCollector()
		if _, err := Compile("bad", toSource(bad), []string{"main.c"}, Options{Metrics: col}); err == nil {
			t.Fatalf("run %d: expected parse error", i)
		}
		snap := col.Finish()
		if snap.FrontendCacheHits != 0 {
			t.Fatalf("run %d: failed parse hit the cache (hits=%d)", i, snap.FrontendCacheHits)
		}
	}
}

// Cancellation stops the worker pool between units; units that never
// parsed must not appear in the cache, so a later un-cancelled run still
// parses (and counts) every unit.
func TestParseCacheNoPoisonOnCancel(t *testing.T) {
	ResetParseCache()
	sources := map[string]string{"main.c": cacheTestSrc}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompileContext(ctx, "cancelled", toSource(sources), []string{"main.c"}, Options{}); err != context.Canceled {
		t.Fatalf("cancelled compile err = %v, want context.Canceled", err)
	}
	if hits, misses := compileCounting(t, sources, Options{}); hits != 0 || misses != 1 {
		t.Fatalf("post-cancel run: hits=%d misses=%d, want 0/1 (cache must be empty)", hits, misses)
	}
}

// The cache stays bounded: inserting more than maxParseEntries distinct
// units evicts rather than grows.
func TestParseCacheBounded(t *testing.T) {
	ResetParseCache()
	defer ResetParseCache()
	for i := 0; i < maxParseEntries+16; i++ {
		key := parseCacheKey("main.c", string(rune('a'+i%26))+string(rune(i)))
		parseCachePut(key, nil)
	}
	parseCache.Lock()
	n := len(parseCache.files)
	parseCache.Unlock()
	if n > maxParseEntries {
		t.Fatalf("cache grew to %d entries, bound is %d", n, maxParseEntries)
	}
}
