package policy

import (
	"strings"
)

// A Suppression is one inline `// safeflow:ignore <rule-id> <reason>`
// directive found in a source file. A directive on a line of its own
// targets the next line; a trailing directive targets its own line.
// Suppressed findings are never dropped silently — they move to the
// report's audit trail with the directive's reason.
type Suppression struct {
	File string
	// Line is the source line the directive targets (the line whose
	// findings it suppresses).
	Line int
	// CommentLine is the line the directive itself appears on.
	CommentLine int
	Rule        string
	Reason      string
}

const ignoreMarker = "safeflow:ignore"

// ScanSuppressions extracts every safeflow:ignore directive from one
// source file. Malformed directives (no rule id after the marker) are
// returned with an empty Rule so the caller can diagnose them instead
// of ignoring them.
func ScanSuppressions(file, src string) []Suppression {
	var out []Suppression
	lines := strings.Split(src, "\n")
	for i, line := range lines {
		idx := strings.Index(line, "//")
		if idx < 0 {
			continue
		}
		comment := line[idx+2:]
		m := strings.Index(comment, ignoreMarker)
		if m < 0 {
			continue
		}
		rest := strings.TrimSpace(comment[m+len(ignoreMarker):])
		rule, reason := rest, ""
		if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
			rule, reason = rest[:sp], strings.TrimSpace(rest[sp+1:])
		}
		s := Suppression{
			File:        file,
			CommentLine: i + 1,
			Rule:        rule,
			Reason:      reason,
		}
		if strings.TrimSpace(line[:idx]) == "" {
			// Directive-only line: targets the following line.
			s.Line = i + 2
		} else {
			// Trailing directive: targets its own line.
			s.Line = i + 1
		}
		out = append(out, s)
	}
	return out
}
