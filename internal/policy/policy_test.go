package policy

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuiltins(t *testing.T) {
	names := BuiltinNames()
	want := []string{"credential-leak", "pii-to-log", "simplex-shm"}
	if len(names) != len(want) {
		t.Fatalf("BuiltinNames() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("BuiltinNames() = %v, want %v", names, want)
		}
	}
	if Default().Name != "simplex-shm" {
		t.Fatalf("Default().Name = %q", Default().Name)
	}
	if !Default().Shm {
		t.Fatal("default policy must enable shm rules")
	}
	if _, ok := Builtin("nope"); ok {
		t.Fatal("Builtin(nope) should miss")
	}
}

func TestCompileLookups(t *testing.T) {
	c, ok := Builtin("credential-leak")
	if !ok {
		t.Fatal("missing builtin")
	}
	if r, ok := c.SourceCall("getpass"); !ok || r.ID != "cred-source-getpass" {
		t.Fatalf("SourceCall(getpass) = %+v, %v", r, ok)
	}
	if _, ok := c.SourceCall("main"); ok {
		t.Fatal("SourceCall(main) should miss")
	}
	if r, ok := c.Sink("net_send"); !ok || len(r.Args) != 1 || r.Args[0] != 1 {
		t.Fatalf("Sink(send) = %+v, %v", r, ok)
	}
	if !c.IsSanitizer("redact") || c.IsSanitizer("net_send") {
		t.Fatal("sanitizer lookup wrong")
	}
	if !c.KnownRule("cred-leak-send") || !c.KnownRule(RuleAssertSafe) || c.KnownRule("bogus") {
		t.Fatal("KnownRule wrong")
	}
	// Engine rules lead, configured rules follow sorted by id.
	ids := make([]string, len(c.Rules))
	for i, r := range c.Rules {
		ids[i] = r.ID
	}
	wantIDs := []string{RuleAssertSafe, RuleSkippedDef, "cred-leak-log", "cred-leak-send", "cred-source-getpass", "cred-source-read-secret"}
	if strings.Join(ids, ",") != strings.Join(wantIDs, ",") {
		t.Fatalf("Rules order = %v, want %v", ids, wantIDs)
	}

	pii, _ := Builtin("pii-to-log")
	if rs := pii.ParamSources("handle_request"); len(rs) != 1 || rs[0].Param != 0 {
		t.Fatalf("ParamSources(handle_request) = %+v", rs)
	}
	if r, ok := pii.Propagator("copy_buf"); !ok || r.To != 0 || len(r.From) != 1 || r.From[0] != 1 {
		t.Fatalf("Propagator(copy_buf) = %+v, %v", r, ok)
	}
}

func TestCompileRejections(t *testing.T) {
	cases := []struct {
		name string
		pol  Policy
		want string
	}{
		{"no name", Policy{}, "no name"},
		{"dup rule id", Policy{Name: "p", Sources: []SourceRule{
			{ID: "r", Kind: "call", Function: "a"},
			{ID: "r", Kind: "call", Function: "b"},
		}}, `duplicate rule id "r"`},
		{"engine id collision", Policy{Name: "p", Sources: []SourceRule{
			{ID: RuleAssertSafe, Kind: "call", Function: "a"},
		}}, `duplicate rule id "assert-safe"`},
		{"bad kind", Policy{Name: "p", Sources: []SourceRule{
			{ID: "r", Kind: "ret", Function: "a"},
		}}, `unknown kind "ret"`},
		{"sanitizer and sink", Policy{Name: "p",
			Sinks:      []SinkRule{{ID: "s", Function: "f"}},
			Sanitizers: []SanitizerRule{{Function: "f"}},
		}, "both a sanitizer and a sink"},
		{"negative sink arg", Policy{Name: "p",
			Sinks: []SinkRule{{ID: "s", Function: "f", Args: []int{-1}}},
		}, "negative argument index"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.pol)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Compile = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestFingerprint(t *testing.T) {
	base := Policy{Name: "p", Sources: []SourceRule{{ID: "r", Kind: "call", Function: "f"}}}
	c1, err := Compile(base)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := Compile(base)
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	if len(c1.Fingerprint()) != 64 {
		t.Fatalf("fingerprint %q is not hex sha256", c1.Fingerprint())
	}
	variants := []Policy{
		{Name: "q", Sources: base.Sources},
		{Name: "p", Shm: true, Sources: base.Sources},
		{Name: "p", Sources: []SourceRule{{ID: "r", Kind: "call", Function: "g"}}},
		{Name: "p", Sources: []SourceRule{{ID: "r2", Kind: "call", Function: "f"}}},
		{Name: "p", Sources: base.Sources, Sinks: []SinkRule{{ID: "s", Function: "h"}}},
		{Name: "p", Sources: base.Sources, Sanitizers: []SanitizerRule{{Function: "w"}}},
	}
	for i, v := range variants {
		cv, err := Compile(v)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if cv.Fingerprint() == c1.Fingerprint() {
			t.Fatalf("variant %d shares the base fingerprint", i)
		}
	}
	// Rule order within a section must not matter (canonical sort).
	two := Policy{Name: "p", Sanitizers: []SanitizerRule{{Function: "a"}, {Function: "b"}}}
	rev := Policy{Name: "p", Sanitizers: []SanitizerRule{{Function: "b"}, {Function: "a"}}}
	ct, _ := Compile(two)
	cr, _ := Compile(rev)
	if ct.Fingerprint() != cr.Fingerprint() {
		t.Fatal("fingerprint depends on declaration order")
	}
}

func TestParseValid(t *testing.T) {
	src := `{
  "version": 1,
  "policies": [
    {
      "name": "leak",
      "description": "d",
      "sources": [
        {"id": "s1", "kind": "call", "function": "getpass"},
        {"id": "s2", "kind": "param", "function": "handler", "param": 1, "message": "m"}
      ],
      "sinks": [{"id": "k1", "function": "send", "args": [1, 2]}],
      "sanitizers": [{"function": "redact"}],
      "propagators": [{"function": "cp", "from": [1], "to": 0}]
    },
    {"name": "shm-only", "shm": true}
  ]
}`
	f, err := Parse("p.json", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.Version != 1 || len(f.Policies) != 2 {
		t.Fatalf("parsed %+v", f)
	}
	p := f.Policies[0]
	if p.Name != "leak" || len(p.Sources) != 2 || p.Sources[1].Param != 1 ||
		len(p.Sinks) != 1 || len(p.Sinks[0].Args) != 2 ||
		len(p.Sanitizers) != 1 || len(p.Propagators) != 1 {
		t.Fatalf("policy = %+v", p)
	}
	if !f.Policies[1].Shm {
		t.Fatal("shm flag lost")
	}
}

// TestParseRejections pins the schema rejection messages, positions
// included: precise line:col anchors are part of the contract.
func TestParseRejections(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"version type", "{\n  \"version\": \"1\",\n  \"policies\": []\n}",
			`p.json:2:14: "version": expected number, got string "1"`},
		{"version value", "{\n  \"version\": 2,\n  \"policies\": [{\"name\": \"x\"}]\n}",
			`p.json:2:14: "version": unsupported config version 2 (this build supports 1)`},
		{"unknown top key", "{\n  \"version\": 1,\n  \"polices\": []\n}",
			`p.json:3:3: policy file: unknown key "polices"`},
		{"unknown policy key", "{\"version\": 1, \"policies\": [{\"name\": \"x\", \"sniks\": []}]}",
			`p.json:1:43: policy: unknown key "sniks"`},
		{"missing name", `{"version": 1, "policies": [{"shm": true}]}`,
			`missing required key "name"`},
		{"missing source id", `{"version": 1, "policies": [{"name": "x", "sources": [{"kind": "call", "function": "f"}]}]}`,
			`source rule: missing required key "id"`},
		{"bad kind", `{"version": 1, "policies": [{"name": "x", "sources": [{"id": "r", "kind": "ret", "function": "f"}]}]}`,
			`"kind": expected "call" or "param", got "ret"`},
		{"param without index", `{"version": 1, "policies": [{"name": "x", "sources": [{"id": "r", "kind": "param", "function": "f"}]}]}`,
			`kind "param" requires a "param" index`},
		{"negative sink arg", `{"version": 1, "policies": [{"name": "x", "sinks": [{"id": "r", "function": "f", "args": [-1]}]}]}`,
			`"args": must be non-negative argument indices`},
		{"dup policy name", `{"version": 1, "policies": [{"name": "x"}, {"name": "x"}]}`,
			`duplicate policy name "x"`},
		{"dup rule id", `{"version": 1, "policies": [{"name": "x", "sources": [{"id": "r", "kind": "call", "function": "f"}], "sinks": [{"id": "r", "function": "g"}]}]}`,
			`duplicate rule id "r"`},
		{"missing version", `{"policies": [{"name": "x"}]}`,
			`missing required key "version"`},
		{"empty policies", `{"version": 1, "policies": []}`,
			`missing or empty "policies"`},
		{"trailing garbage", "{\"version\": 1, \"policies\": [{\"name\": \"x\"}]}\n{}",
			`unexpected "{" after end of document`},
		{"array for object", `{"version": 1, "policies": [[]]}`,
			`policy: expected "{"`},
		{"propagator missing to", `{"version": 1, "policies": [{"name": "x", "propagators": [{"function": "f", "from": [0]}]}]}`,
			`propagator rule f: missing required key "to"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("p.json", []byte(tc.src))
			if err == nil {
				t.Fatalf("Parse accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want substring %q", err.Error(), tc.want)
			}
		})
	}
}

func TestParsePositionExact(t *testing.T) {
	src := "{\n  \"version\": 1,\n  \"policies\": [\n    {\"name\": 42}\n  ]\n}"
	_, err := Parse("cfg.json", []byte(src))
	se, ok := err.(*SchemaError)
	if !ok {
		t.Fatalf("err = %T %v, want *SchemaError", err, err)
	}
	if se.File != "cfg.json" || se.Line != 4 || se.Col != 14 {
		t.Fatalf("position = %s:%d:%d, want cfg.json:4:14", se.File, se.Line, se.Col)
	}
}

func TestSelectAndLoad(t *testing.T) {
	dir := t.TempDir()
	multi := filepath.Join(dir, "multi.json")
	os.WriteFile(multi, []byte(`{"version": 1, "policies": [{"name": "a"}, {"name": "b", "shm": true}]}`), 0o644)
	single := filepath.Join(dir, "single.json")
	os.WriteFile(single, []byte(`{"version": 1, "policies": [{"name": "only"}]}`), 0o644)

	if c, err := Load("credential-leak"); err != nil || c.Name != "credential-leak" {
		t.Fatalf("Load(builtin) = %v, %v", c, err)
	}
	if c, err := Load(single); err != nil || c.Name != "only" {
		t.Fatalf("Load(single) = %v, %v", c, err)
	}
	if _, err := Load(multi); err == nil || !strings.Contains(err.Error(), "select one by name") {
		t.Fatalf("Load(multi) = %v", err)
	}
	if c, err := Load(multi + "#b"); err != nil || c.Name != "b" || !c.Shm {
		t.Fatalf("Load(multi#b) = %v, %v", c, err)
	}
	if _, err := Load(multi + "#zzz"); err == nil || !strings.Contains(err.Error(), `no policy named "zzz"`) {
		t.Fatalf("Load(multi#zzz) = %v", err)
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil || !strings.Contains(err.Error(), "neither a built-in") {
		t.Fatalf("Load(absent) = %v", err)
	}
}

func TestScanSuppressions(t *testing.T) {
	src := strings.Join([]string{
		"int x;",
		"// safeflow:ignore assert-safe reviewed: monitored upstream",
		"int y = read();",
		"int z = read(); // safeflow:ignore shm-unmonitored-read ticket-123",
		"/* not a line comment safeflow:ignore nope */",
		"  // safeflow:ignore bad-rule",
		"int w;",
		"// safeflow:ignore",
	}, "\n")
	got := ScanSuppressions("a.c", src)
	want := []Suppression{
		{File: "a.c", Line: 3, CommentLine: 2, Rule: "assert-safe", Reason: "reviewed: monitored upstream"},
		{File: "a.c", Line: 4, CommentLine: 4, Rule: "shm-unmonitored-read", Reason: "ticket-123"},
		{File: "a.c", Line: 7, CommentLine: 6, Rule: "bad-rule", Reason: ""},
		{File: "a.c", Line: 9, CommentLine: 8, Rule: "", Reason: ""},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d suppressions %+v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("suppression %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
