// Package policy defines SafeFlow's configurable taint policies: named
// sets of source, sink, sanitizer and propagator rules that drive the
// phase-3 value-flow engine instead of (or in addition to) the paper's
// hard-wired Simplex shared-memory policy.
//
// A policy arrives either as a built-in (simplex-shm, credential-leak,
// pii-to-log) or as a versioned `.safeflow-policy.json` file validated
// with precise error positions (see schema.go). Compile turns the
// declarative form into a Compiled policy with O(1) rule lookups and a
// content-hashed fingerprint; the fingerprint joins the analysis cache
// keys so two runs under different policies can never share summaries.
//
// The engine's own findings keep stable rule ids (RuleShmRead and
// friends), so suppression comments and SARIF attribution work uniformly
// across built-in and configured rules.
package policy

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Engine rule ids: the findings the phase-3 engine produces on its own.
// RuleAssertSafe and RuleSkippedDef are active under every policy;
// the other three belong to the Simplex shared-memory policy (Shm).
const (
	// RuleShmRead flags an unmonitored read of non-core shared memory.
	RuleShmRead = "shm-unmonitored-read"
	// RuleNonCoreRecv flags data received on a noncore socket descriptor.
	RuleNonCoreRecv = "noncore-recv"
	// RuleSkippedDef flags conservative taint from a call into a function
	// whose defining translation unit was skipped by the recovering
	// front end.
	RuleSkippedDef = "skipped-def"
	// RuleAssertSafe flags critical data (assert(safe(x))) depending on
	// tainted values.
	RuleAssertSafe = "assert-safe"
	// RuleKillPid flags a kill() whose pid argument depends on tainted
	// values (the paper's implicit critical system-call argument).
	RuleKillPid = "kill-pid"
)

// Version is the config format version accepted by Parse.
const Version = 1

// File is the top level of a .safeflow-policy.json document.
type File struct {
	Version  int
	Policies []Policy
}

// Policy is one named taint policy in declarative form.
type Policy struct {
	Name        string
	Description string
	// Shm enables the built-in Simplex shared-memory rules (unmonitored
	// region reads, noncore receives, the kill-pid sink).
	Shm         bool
	Sources     []SourceRule
	Sinks       []SinkRule
	Sanitizers  []SanitizerRule
	Propagators []PropagatorRule
}

// SourceRule marks values produced by a function as tainted. Kind "call"
// taints the function's return value at every call site; kind "param"
// taints the named function's parameter with index Param when that
// function is analyzed.
type SourceRule struct {
	ID       string
	Kind     string // "call" | "param"
	Function string
	Param    int
	Message  string
}

// SinkRule checks taint arriving at a function call's arguments. Args
// lists the argument indices to check; empty checks every argument.
type SinkRule struct {
	ID       string
	Function string
	Args     []int
	Message  string
}

// SanitizerRule declares a function whose result (and effects) are clean
// regardless of its arguments' taint.
type SanitizerRule struct {
	Function string
}

// PropagatorRule models a declared function that copies taint from the
// From argument indices into the memory reachable through argument To.
type PropagatorRule struct {
	Function string
	From     []int
	To       int
}

// RuleMeta is one rule's reporting metadata (SARIF rules array, report
// attribution).
type RuleMeta struct {
	ID          string
	Description string
}

// Compiled is a policy compiled for the engine: O(1) rule lookups plus a
// content-hashed identity.
type Compiled struct {
	Name        string
	Description string
	Shm         bool
	// Rules lists every rule id the policy can attribute a finding to,
	// in stable order (engine rules first, then configured rules sorted
	// by id).
	Rules []RuleMeta

	sourceCalls map[string]SourceRule
	paramSrcs   map[string][]SourceRule
	sinks       map[string]SinkRule
	sanitizers  map[string]bool
	propagators map[string]PropagatorRule
	known       map[string]bool
	fingerprint string
}

// Compile validates the declarative policy (duplicate rule ids, bad rule
// kinds, argument indices) and builds the lookup tables.
func Compile(p Policy) (*Compiled, error) {
	if p.Name == "" {
		return nil, fmt.Errorf("policy: policy has no name")
	}
	c := &Compiled{
		Name:        p.Name,
		Description: p.Description,
		Shm:         p.Shm,
		sourceCalls: make(map[string]SourceRule),
		paramSrcs:   make(map[string][]SourceRule),
		sinks:       make(map[string]SinkRule),
		sanitizers:  make(map[string]bool),
		propagators: make(map[string]PropagatorRule),
		known:       make(map[string]bool),
	}
	addMeta := func(id, desc string) error {
		if c.known[id] {
			return fmt.Errorf("policy %s: duplicate rule id %q", p.Name, id)
		}
		c.known[id] = true
		c.Rules = append(c.Rules, RuleMeta{ID: id, Description: desc})
		return nil
	}
	// Engine rules first: always-on, then the shm family when enabled.
	addMeta(RuleAssertSafe, "critical data depends on unmonitored non-core values")
	addMeta(RuleSkippedDef, "conservative taint from a skipped translation unit")
	if p.Shm {
		addMeta(RuleShmRead, "unmonitored read of non-core shared memory")
		addMeta(RuleNonCoreRecv, "unmonitored message data received on a noncore descriptor")
		addMeta(RuleKillPid, "kill() pid argument depends on unmonitored non-core values")
	}
	var cfgMeta []RuleMeta
	for _, r := range p.Sources {
		if r.ID == "" || r.Function == "" {
			return nil, fmt.Errorf("policy %s: source rule needs id and function", p.Name)
		}
		switch r.Kind {
		case "call":
			if _, dup := c.sourceCalls[r.Function]; dup {
				return nil, fmt.Errorf("policy %s: duplicate call-source rule for function %q", p.Name, r.Function)
			}
			c.sourceCalls[r.Function] = r
		case "param":
			if r.Param < 0 {
				return nil, fmt.Errorf("policy %s: source rule %s: negative param index", p.Name, r.ID)
			}
			c.paramSrcs[r.Function] = append(c.paramSrcs[r.Function], r)
		default:
			return nil, fmt.Errorf("policy %s: source rule %s: unknown kind %q (want \"call\" or \"param\")", p.Name, r.ID, r.Kind)
		}
		if c.known[r.ID] {
			return nil, fmt.Errorf("policy %s: duplicate rule id %q", p.Name, r.ID)
		}
		c.known[r.ID] = true
		cfgMeta = append(cfgMeta, RuleMeta{ID: r.ID, Description: ruleDesc(r.Message, "tainted value from "+r.Function)})
	}
	for _, r := range p.Sinks {
		if r.ID == "" || r.Function == "" {
			return nil, fmt.Errorf("policy %s: sink rule needs id and function", p.Name)
		}
		if _, dup := c.sinks[r.Function]; dup {
			return nil, fmt.Errorf("policy %s: duplicate sink rule for function %q", p.Name, r.Function)
		}
		for _, i := range r.Args {
			if i < 0 {
				return nil, fmt.Errorf("policy %s: sink rule %s: negative argument index", p.Name, r.ID)
			}
		}
		c.sinks[r.Function] = r
		if c.known[r.ID] {
			return nil, fmt.Errorf("policy %s: duplicate rule id %q", p.Name, r.ID)
		}
		c.known[r.ID] = true
		cfgMeta = append(cfgMeta, RuleMeta{ID: r.ID, Description: ruleDesc(r.Message, "tainted value reaches "+r.Function)})
	}
	for _, r := range p.Sanitizers {
		if r.Function == "" {
			return nil, fmt.Errorf("policy %s: sanitizer rule needs a function", p.Name)
		}
		c.sanitizers[r.Function] = true
	}
	for _, r := range p.Propagators {
		if r.Function == "" {
			return nil, fmt.Errorf("policy %s: propagator rule needs a function", p.Name)
		}
		if r.To < 0 {
			return nil, fmt.Errorf("policy %s: propagator %s: negative \"to\" index", p.Name, r.Function)
		}
		for _, i := range r.From {
			if i < 0 {
				return nil, fmt.Errorf("policy %s: propagator %s: negative \"from\" index", p.Name, r.Function)
			}
		}
		if _, dup := c.propagators[r.Function]; dup {
			return nil, fmt.Errorf("policy %s: duplicate propagator rule for function %q", p.Name, r.Function)
		}
		c.propagators[r.Function] = r
	}
	// A function cannot be both sanitizer and source/sink/propagator: the
	// engine would have to pick one silently.
	for fn := range c.sanitizers {
		if _, ok := c.sourceCalls[fn]; ok {
			return nil, fmt.Errorf("policy %s: function %q is both a sanitizer and a source", p.Name, fn)
		}
		if _, ok := c.sinks[fn]; ok {
			return nil, fmt.Errorf("policy %s: function %q is both a sanitizer and a sink", p.Name, fn)
		}
		if _, ok := c.propagators[fn]; ok {
			return nil, fmt.Errorf("policy %s: function %q is both a sanitizer and a propagator", p.Name, fn)
		}
	}
	sort.Slice(cfgMeta, func(i, j int) bool { return cfgMeta[i].ID < cfgMeta[j].ID })
	c.Rules = append(c.Rules, cfgMeta...)
	c.fingerprint = c.computeFingerprint(p)
	return c, nil
}

func ruleDesc(msg, fallback string) string {
	if msg != "" {
		return msg
	}
	return fallback
}

// computeFingerprint hashes a canonical rendering of the policy: every
// field of every rule, in sorted order, length-prefixed. Two policies
// with equal fingerprints drive the engine identically.
func (c *Compiled) computeFingerprint(p Policy) string {
	h := sha256.New()
	put := func(parts ...string) {
		for _, s := range parts {
			fmt.Fprintf(h, "%d:%s;", len(s), s)
		}
	}
	ints := func(xs []int) string {
		parts := make([]string, len(xs))
		for i, x := range xs {
			parts[i] = strconv.Itoa(x)
		}
		return strings.Join(parts, ",")
	}
	put("policy-v1", p.Name, strconv.FormatBool(p.Shm))
	var lines []string
	for _, r := range p.Sources {
		lines = append(lines, strings.Join([]string{"source", r.ID, r.Kind, r.Function, strconv.Itoa(r.Param), r.Message}, "\x00"))
	}
	for _, r := range p.Sinks {
		lines = append(lines, strings.Join([]string{"sink", r.ID, r.Function, ints(r.Args), r.Message}, "\x00"))
	}
	for _, r := range p.Sanitizers {
		lines = append(lines, "sanitizer\x00"+r.Function)
	}
	for _, r := range p.Propagators {
		lines = append(lines, strings.Join([]string{"propagator", r.Function, ints(r.From), strconv.Itoa(r.To)}, "\x00"))
	}
	sort.Strings(lines)
	put(lines...)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Fingerprint returns the policy's content hash (hex sha256).
func (c *Compiled) Fingerprint() string { return c.fingerprint }

// SourceCall returns the call-source rule for a callee, if any.
func (c *Compiled) SourceCall(fn string) (SourceRule, bool) {
	r, ok := c.sourceCalls[fn]
	return r, ok
}

// ParamSources returns the param-source rules targeting a function.
func (c *Compiled) ParamSources(fn string) []SourceRule { return c.paramSrcs[fn] }

// Sink returns the sink rule for a callee, if any.
func (c *Compiled) Sink(fn string) (SinkRule, bool) {
	r, ok := c.sinks[fn]
	return r, ok
}

// IsSanitizer reports whether calls to fn launder their arguments clean.
func (c *Compiled) IsSanitizer(fn string) bool { return c.sanitizers[fn] }

// Propagator returns the propagator rule for a callee, if any.
func (c *Compiled) Propagator(fn string) (PropagatorRule, bool) {
	r, ok := c.propagators[fn]
	return r, ok
}

// KnownRule reports whether id names a rule this policy can produce
// (suppression comments referencing anything else are diagnosed).
func (c *Compiled) KnownRule(id string) bool { return c.known[id] }

// ---------------------------------------------------------------------------
// Built-ins

var builtins = []Policy{
	{
		Name:        "simplex-shm",
		Description: "the paper's Simplex shared-memory policy: unmonitored non-core shared memory must not reach critical data",
		Shm:         true,
	},
	{
		Name:        "credential-leak",
		Description: "credentials read from secret stores must not reach network sends or the log",
		Sources: []SourceRule{
			{ID: "cred-source-getpass", Kind: "call", Function: "getpass", Message: "credential returned by getpass"},
			{ID: "cred-source-read-secret", Kind: "call", Function: "read_secret", Message: "credential returned by read_secret"},
		},
		Sinks: []SinkRule{
			{ID: "cred-leak-send", Function: "net_send", Args: []int{1}, Message: "credential reaches a network send"},
			{ID: "cred-leak-log", Function: "log_msg", Message: "credential reaches the log"},
		},
		Sanitizers: []SanitizerRule{
			{Function: "hash_secret"},
			{Function: "redact"},
		},
	},
	{
		Name:        "pii-to-log",
		Description: "personally identifiable record data must be anonymized before it reaches the log",
		Sources: []SourceRule{
			{ID: "pii-source-record", Kind: "call", Function: "read_user_record", Message: "PII returned by read_user_record"},
			{ID: "pii-source-request", Kind: "param", Function: "handle_request", Param: 0, Message: "PII arriving in the request parameter"},
		},
		Sinks: []SinkRule{
			{ID: "pii-to-log", Function: "log_msg", Message: "PII reaches the log"},
		},
		Sanitizers: []SanitizerRule{
			{Function: "anonymize"},
		},
		Propagators: []PropagatorRule{
			{Function: "copy_buf", From: []int{1}, To: 0},
		},
	},
}

var compiledBuiltins = func() map[string]*Compiled {
	out := make(map[string]*Compiled, len(builtins))
	for _, p := range builtins {
		c, err := Compile(p)
		if err != nil {
			panic("policy: bad builtin " + p.Name + ": " + err.Error())
		}
		out[p.Name] = c
	}
	return out
}()

// Default returns the compiled simplex-shm policy — the behavior every
// analysis gets when no policy is configured.
func Default() *Compiled { return compiledBuiltins["simplex-shm"] }

// Builtin returns a compiled built-in policy by name.
func Builtin(name string) (*Compiled, bool) {
	c, ok := compiledBuiltins[name]
	return c, ok
}

// BuiltinNames lists the built-in policy names, sorted.
func BuiltinNames() []string {
	names := make([]string, 0, len(compiledBuiltins))
	for n := range compiledBuiltins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
