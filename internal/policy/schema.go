package policy

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// A SchemaError is a config-file validation failure with the exact
// position (1-based line and column) of the offending token.
type SchemaError struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *SchemaError) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

// Parse validates and decodes a .safeflow-policy.json document. Every
// rejection — wrong type, unknown key, missing required field, bad
// version, duplicate name — carries the line:column of the token that
// caused it.
//
// The format (version 1):
//
//	{
//	  "version": 1,
//	  "policies": [
//	    {
//	      "name": "credential-leak",
//	      "description": "...",            // optional
//	      "shm": false,                    // optional; enable Simplex shm rules
//	      "sources": [
//	        {"id": "r1", "kind": "call", "function": "getpass", "message": "..."},
//	        {"id": "r2", "kind": "param", "function": "handler", "param": 0}
//	      ],
//	      "sinks": [
//	        {"id": "r3", "function": "send", "args": [1], "message": "..."}
//	      ],
//	      "sanitizers": [{"function": "redact"}],
//	      "propagators": [{"function": "copy_buf", "from": [1], "to": 0}]
//	    }
//	  ]
//	}
func Parse(filename string, data []byte) (*File, error) {
	p := &parser{
		file: filename,
		data: data,
		dec:  json.NewDecoder(strings.NewReader(string(data))),
	}
	f, err := p.parseFile()
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ParseFile reads and parses the config file at path.
func ParseFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("policy: %w", err)
	}
	return Parse(path, data)
}

// Select returns the named policy from a parsed file; an empty name
// selects the file's single policy and is an error when it defines more
// than one.
func Select(f *File, name string) (Policy, error) {
	if name == "" {
		if len(f.Policies) == 1 {
			return f.Policies[0], nil
		}
		names := make([]string, len(f.Policies))
		for i, p := range f.Policies {
			names[i] = p.Name
		}
		return Policy{}, fmt.Errorf("policy: file defines %d policies (%s); select one by name", len(f.Policies), strings.Join(names, ", "))
	}
	for _, p := range f.Policies {
		if p.Name == name {
			return p, nil
		}
	}
	return Policy{}, fmt.Errorf("policy: no policy named %q in file", name)
}

// Load resolves a -policy argument: a built-in policy name, a config
// file path, or "path#name" to pick one policy out of a multi-policy
// file — parsed, validated, and compiled.
func Load(arg string) (*Compiled, error) {
	if c, ok := Builtin(arg); ok {
		return c, nil
	}
	path, name := arg, ""
	if i := strings.LastIndex(arg, "#"); i >= 0 {
		path, name = arg[:i], arg[i+1:]
	}
	if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("policy: %q is neither a built-in policy (%s) nor a readable config file: %w",
			arg, strings.Join(BuiltinNames(), ", "), err)
	}
	f, err := ParseFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Select(f, name)
	if err != nil {
		return nil, err
	}
	return Compile(p)
}

// ---------------------------------------------------------------------------
// Token-walking parser with position tracking.

type parser struct {
	file string
	data []byte
	dec  *json.Decoder
	// pos of the most recently read token's first byte.
	line, col int
}

// next reads one token and records its position. json.Decoder reports
// the offset *after* the token, so the token start is found by skipping
// JSON whitespace and separators forward from the offset recorded
// before the read.
func (p *parser) next() (json.Token, error) {
	pre := p.dec.InputOffset()
	tok, err := p.dec.Token()
	if err != nil {
		p.line, p.col = offsetPos(p.data, pre)
		return nil, err
	}
	start := pre
	for start < int64(len(p.data)) {
		switch p.data[start] {
		case ' ', '\t', '\n', '\r', ',', ':':
			start++
			continue
		}
		break
	}
	p.line, p.col = offsetPos(p.data, start)
	return tok, nil
}

func offsetPos(data []byte, off int64) (line, col int) {
	line, col = 1, 1
	for i := int64(0); i < off && i < int64(len(data)); i++ {
		if data[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &SchemaError{File: p.file, Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func tokenDesc(tok json.Token) string {
	switch v := tok.(type) {
	case json.Delim:
		return fmt.Sprintf("%q", v.String())
	case string:
		return fmt.Sprintf("string %q", v)
	case float64:
		return fmt.Sprintf("number %v", v)
	case bool:
		return fmt.Sprintf("boolean %v", v)
	case nil:
		return "null"
	}
	return fmt.Sprintf("%v", tok)
}

func (p *parser) expectDelim(d rune, what string) error {
	tok, err := p.next()
	if err != nil {
		return p.errf("%s: expected %q, got %v", what, string(d), err)
	}
	if delim, ok := tok.(json.Delim); !ok || rune(delim) != d {
		return p.errf("%s: expected %q, got %s", what, string(d), tokenDesc(tok))
	}
	return nil
}

// object walks {"key": value, ...}, dispatching each key to field.
// Unknown keys are rejected with the key token's position.
func (p *parser) object(what string, known []string, field func(key string) error) error {
	if err := p.expectDelim('{', what); err != nil {
		return err
	}
	for p.dec.More() {
		tok, err := p.next()
		if err != nil {
			return p.errf("%s: %v", what, err)
		}
		key, ok := tok.(string)
		if !ok {
			return p.errf("%s: expected object key, got %s", what, tokenDesc(tok))
		}
		found := false
		for _, k := range known {
			if k == key {
				found = true
				break
			}
		}
		if !found {
			return p.errf("%s: unknown key %q (known keys: %s)", what, key, strings.Join(known, ", "))
		}
		if err := field(key); err != nil {
			return err
		}
	}
	return p.expectDelim('}', what)
}

// array walks [elem, ...], calling elem for each element.
func (p *parser) array(what string, elem func() error) error {
	if err := p.expectDelim('[', what); err != nil {
		return err
	}
	for p.dec.More() {
		if err := elem(); err != nil {
			return err
		}
	}
	return p.expectDelim(']', what)
}

func (p *parser) stringVal(what string) (string, error) {
	tok, err := p.next()
	if err != nil {
		return "", p.errf("%s: %v", what, err)
	}
	s, ok := tok.(string)
	if !ok {
		return "", p.errf("%s: expected string, got %s", what, tokenDesc(tok))
	}
	return s, nil
}

func (p *parser) intVal(what string) (int, error) {
	tok, err := p.next()
	if err != nil {
		return 0, p.errf("%s: %v", what, err)
	}
	f, ok := tok.(float64)
	if !ok {
		return 0, p.errf("%s: expected number, got %s", what, tokenDesc(tok))
	}
	n := int(f)
	if float64(n) != f {
		return 0, p.errf("%s: expected integer, got %v", what, f)
	}
	return n, nil
}

func (p *parser) boolVal(what string) (bool, error) {
	tok, err := p.next()
	if err != nil {
		return false, p.errf("%s: %v", what, err)
	}
	b, ok := tok.(bool)
	if !ok {
		return false, p.errf("%s: expected boolean, got %s", what, tokenDesc(tok))
	}
	return b, nil
}

func (p *parser) intArray(what string) ([]int, error) {
	var out []int
	err := p.array(what, func() error {
		n, err := p.intVal(what + " element")
		if err != nil {
			return err
		}
		out = append(out, n)
		return nil
	})
	return out, err
}

func (p *parser) parseFile() (*File, error) {
	f := &File{Version: -1}
	err := p.object("policy file", []string{"version", "policies"}, func(key string) error {
		switch key {
		case "version":
			v, err := p.intVal(`"version"`)
			if err != nil {
				return err
			}
			if v != Version {
				return p.errf(`"version": unsupported config version %d (this build supports %d)`, v, Version)
			}
			f.Version = v
		case "policies":
			return p.array(`"policies"`, func() error {
				pol, err := p.parsePolicy()
				if err != nil {
					return err
				}
				for _, prev := range f.Policies {
					if prev.Name == pol.Name {
						return p.errf("duplicate policy name %q", pol.Name)
					}
				}
				f.Policies = append(f.Policies, pol)
				return nil
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Trailing garbage after the document is a config error too.
	if tok, err := p.next(); err != io.EOF {
		if err == nil {
			return nil, p.errf("unexpected %s after end of document", tokenDesc(tok))
		}
		return nil, p.errf("%v", err)
	}
	if f.Version == -1 {
		p.line, p.col = 1, 1
		return nil, p.errf(`missing required key "version"`)
	}
	if len(f.Policies) == 0 {
		p.line, p.col = 1, 1
		return nil, p.errf(`missing or empty "policies"`)
	}
	return f, nil
}

func (p *parser) parsePolicy() (Policy, error) {
	var pol Policy
	nameLine, nameCol := 0, 0
	err := p.object("policy", []string{"name", "description", "shm", "sources", "sinks", "sanitizers", "propagators"}, func(key string) error {
		var err error
		switch key {
		case "name":
			pol.Name, err = p.stringVal(`"name"`)
			nameLine, nameCol = p.line, p.col
			if err == nil && pol.Name == "" {
				return p.errf(`"name": must not be empty`)
			}
		case "description":
			pol.Description, err = p.stringVal(`"description"`)
		case "shm":
			pol.Shm, err = p.boolVal(`"shm"`)
		case "sources":
			err = p.array(`"sources"`, func() error {
				r, err := p.parseSource()
				if err != nil {
					return err
				}
				pol.Sources = append(pol.Sources, r)
				return nil
			})
		case "sinks":
			err = p.array(`"sinks"`, func() error {
				r, err := p.parseSink()
				if err != nil {
					return err
				}
				pol.Sinks = append(pol.Sinks, r)
				return nil
			})
		case "sanitizers":
			err = p.array(`"sanitizers"`, func() error {
				r, err := p.parseSanitizer()
				if err != nil {
					return err
				}
				pol.Sanitizers = append(pol.Sanitizers, r)
				return nil
			})
		case "propagators":
			err = p.array(`"propagators"`, func() error {
				r, err := p.parsePropagator()
				if err != nil {
					return err
				}
				pol.Propagators = append(pol.Propagators, r)
				return nil
			})
		}
		return err
	})
	if err != nil {
		return Policy{}, err
	}
	if pol.Name == "" {
		return Policy{}, p.errf(`policy: missing required key "name"`)
	}
	// Validate cross-field constraints through Compile so the position
	// of the policy's name anchors the diagnostic.
	if _, cerr := Compile(pol); cerr != nil {
		p.line, p.col = nameLine, nameCol
		return Policy{}, p.errf("%v", strings.TrimPrefix(cerr.Error(), "policy: "))
	}
	return pol, nil
}

func (p *parser) parseSource() (SourceRule, error) {
	var r SourceRule
	r.Param = -1
	seenParam := false
	err := p.object("source rule", []string{"id", "kind", "function", "param", "message"}, func(key string) error {
		var err error
		switch key {
		case "id":
			r.ID, err = p.stringVal(`"id"`)
		case "kind":
			r.Kind, err = p.stringVal(`"kind"`)
			if err == nil && r.Kind != "call" && r.Kind != "param" {
				return p.errf(`"kind": expected "call" or "param", got %q`, r.Kind)
			}
		case "function":
			r.Function, err = p.stringVal(`"function"`)
		case "param":
			r.Param, err = p.intVal(`"param"`)
			seenParam = err == nil
			if err == nil && r.Param < 0 {
				return p.errf(`"param": must be a non-negative argument index`)
			}
		case "message":
			r.Message, err = p.stringVal(`"message"`)
		}
		return err
	})
	if err != nil {
		return SourceRule{}, err
	}
	if r.ID == "" {
		return SourceRule{}, p.errf(`source rule: missing required key "id"`)
	}
	if r.Kind == "" {
		return SourceRule{}, p.errf(`source rule %s: missing required key "kind"`, r.ID)
	}
	if r.Function == "" {
		return SourceRule{}, p.errf(`source rule %s: missing required key "function"`, r.ID)
	}
	if r.Kind == "param" && !seenParam {
		return SourceRule{}, p.errf(`source rule %s: kind "param" requires a "param" index`, r.ID)
	}
	if r.Kind == "call" {
		r.Param = 0
	}
	return r, nil
}

func (p *parser) parseSink() (SinkRule, error) {
	var r SinkRule
	err := p.object("sink rule", []string{"id", "function", "args", "message"}, func(key string) error {
		var err error
		switch key {
		case "id":
			r.ID, err = p.stringVal(`"id"`)
		case "function":
			r.Function, err = p.stringVal(`"function"`)
		case "args":
			r.Args, err = p.intArray(`"args"`)
			if err == nil {
				for _, i := range r.Args {
					if i < 0 {
						return p.errf(`"args": must be non-negative argument indices`)
					}
				}
			}
		case "message":
			r.Message, err = p.stringVal(`"message"`)
		}
		return err
	})
	if err != nil {
		return SinkRule{}, err
	}
	if r.ID == "" {
		return SinkRule{}, p.errf(`sink rule: missing required key "id"`)
	}
	if r.Function == "" {
		return SinkRule{}, p.errf(`sink rule %s: missing required key "function"`, r.ID)
	}
	return r, nil
}

func (p *parser) parseSanitizer() (SanitizerRule, error) {
	var r SanitizerRule
	err := p.object("sanitizer rule", []string{"function"}, func(key string) error {
		var err error
		r.Function, err = p.stringVal(`"function"`)
		return err
	})
	if err != nil {
		return SanitizerRule{}, err
	}
	if r.Function == "" {
		return SanitizerRule{}, p.errf(`sanitizer rule: missing required key "function"`)
	}
	return r, nil
}

func (p *parser) parsePropagator() (PropagatorRule, error) {
	r := PropagatorRule{To: -1}
	err := p.object("propagator rule", []string{"function", "from", "to"}, func(key string) error {
		var err error
		switch key {
		case "function":
			r.Function, err = p.stringVal(`"function"`)
		case "from":
			r.From, err = p.intArray(`"from"`)
		case "to":
			r.To, err = p.intVal(`"to"`)
		}
		return err
	})
	if err != nil {
		return PropagatorRule{}, err
	}
	if r.Function == "" {
		return PropagatorRule{}, p.errf(`propagator rule: missing required key "function"`)
	}
	if len(r.From) == 0 {
		return PropagatorRule{}, p.errf(`propagator rule %s: missing required key "from"`, r.Function)
	}
	if r.To < 0 {
		return PropagatorRule{}, p.errf(`propagator rule %s: missing required key "to"`, r.Function)
	}
	return r, nil
}
