// Package shm emulates the SysV shared-memory substrate the paper's lab
// systems communicate through: named segments of raw bytes attached by
// multiple (simulated) components, typed variable views at byte offsets,
// advisory locks, and the InitCheck run-time verification that SafeFlow
// inserts into initializing functions (paper §3.2.1) to confirm that the
// annotated shared-memory variables do not overlap and lie within the
// segment.
//
// The emulation is deliberately faithful to the failure modes the paper
// cares about: any component holding an attachment can write any byte at
// any time (there is no hardware protection), so a "read-only" convention
// on a region is exactly as unenforced as it is on real SysV segments.
package shm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Segment is one emulated shared-memory segment.
type Segment struct {
	key  int
	data []byte
	mu   sync.Mutex // the advisory lock (Lock/Unlock)
}

// registry emulates the kernel's key -> segment table.
type registry struct {
	mu   sync.Mutex
	segs map[int]*Segment
}

var _segments = &registry{segs: make(map[int]*Segment)}

// Get returns the segment for key, creating it with the given size when
// absent (shmget semantics with IPC_CREAT). Getting an existing segment
// with a larger size fails, as it does on SysV.
func Get(key int, size int) (*Segment, error) {
	if size <= 0 {
		return nil, fmt.Errorf("shm: invalid segment size %d", size)
	}
	_segments.mu.Lock()
	defer _segments.mu.Unlock()
	if s, ok := _segments.segs[key]; ok {
		if size > len(s.data) {
			return nil, fmt.Errorf("shm: segment %d exists with size %d < requested %d", key, len(s.data), size)
		}
		return s, nil
	}
	s := &Segment{key: key, data: make([]byte, size)}
	_segments.segs[key] = s
	return s, nil
}

// Remove destroys the segment (shmctl IPC_RMID).
func Remove(key int) {
	_segments.mu.Lock()
	defer _segments.mu.Unlock()
	delete(_segments.segs, key)
}

// Reset clears all segments (between tests/simulations).
func Reset() {
	_segments.mu.Lock()
	defer _segments.mu.Unlock()
	_segments.segs = make(map[int]*Segment)
}

// Size returns the segment size in bytes.
func (s *Segment) Size() int { return len(s.data) }

// Key returns the segment's key.
func (s *Segment) Key() int { return s.key }

// Lock acquires the segment's advisory lock.
func (s *Segment) Lock() { s.mu.Lock() }

// Unlock releases the segment's advisory lock.
func (s *Segment) Unlock() { s.mu.Unlock() }

// ---------------------------------------------------------------------------
// Raw accessors (unsynchronized, like real shared memory)

func (s *Segment) check(off, n int) error {
	if off < 0 || off+n > len(s.data) {
		return fmt.Errorf("shm: access [%d,%d) outside segment of %d bytes", off, off+n, len(s.data))
	}
	return nil
}

// ReadFloat64 reads a float64 at the byte offset.
func (s *Segment) ReadFloat64(off int) (float64, error) {
	if err := s.check(off, 8); err != nil {
		return 0, err
	}
	bits := binary.LittleEndian.Uint64(s.data[off:])
	return math.Float64frombits(bits), nil
}

// WriteFloat64 writes a float64 at the byte offset.
func (s *Segment) WriteFloat64(off int, v float64) error {
	if err := s.check(off, 8); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(s.data[off:], math.Float64bits(v))
	return nil
}

// ReadInt32 reads an int32 at the byte offset.
func (s *Segment) ReadInt32(off int) (int32, error) {
	if err := s.check(off, 4); err != nil {
		return 0, err
	}
	return int32(binary.LittleEndian.Uint32(s.data[off:])), nil
}

// WriteInt32 writes an int32 at the byte offset.
func (s *Segment) WriteInt32(off int, v int32) error {
	if err := s.check(off, 4); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(s.data[off:], uint32(v))
	return nil
}

// ---------------------------------------------------------------------------
// Typed variable views

// Var is a typed window into a segment — the Go analogue of a shared
// memory pointer declared by shmvar(ptr, size).
type Var struct {
	Seg    *Segment
	Name   string
	Offset int
	Size   int
}

// NewVar creates a variable view after bounds-checking it.
func NewVar(seg *Segment, name string, offset, size int) (*Var, error) {
	if err := seg.check(offset, size); err != nil {
		return nil, fmt.Errorf("shm: variable %q: %w", name, err)
	}
	return &Var{Seg: seg, Name: name, Offset: offset, Size: size}, nil
}

// Float64At reads the float64 at byte offset off within the variable.
func (v *Var) Float64At(off int) (float64, error) {
	if off < 0 || off+8 > v.Size {
		return 0, fmt.Errorf("shm: %s: access %d outside variable of %d bytes", v.Name, off, v.Size)
	}
	return v.Seg.ReadFloat64(v.Offset + off)
}

// SetFloat64At writes the float64 at byte offset off within the variable.
func (v *Var) SetFloat64At(off int, x float64) error {
	if off < 0 || off+8 > v.Size {
		return fmt.Errorf("shm: %s: access %d outside variable of %d bytes", v.Name, off, v.Size)
	}
	return v.Seg.WriteFloat64(v.Offset+off, x)
}

// Int32At reads the int32 at byte offset off within the variable.
func (v *Var) Int32At(off int) (int32, error) {
	if off < 0 || off+4 > v.Size {
		return 0, fmt.Errorf("shm: %s: access %d outside variable of %d bytes", v.Name, off, v.Size)
	}
	return v.Seg.ReadInt32(v.Offset + off)
}

// SetInt32At writes the int32 at byte offset off within the variable.
func (v *Var) SetInt32At(off int, x int32) error {
	if off < 0 || off+4 > v.Size {
		return fmt.Errorf("shm: %s: access %d outside variable of %d bytes", v.Name, off, v.Size)
	}
	return v.Seg.WriteInt32(v.Offset+off, x)
}

// ---------------------------------------------------------------------------
// InitCheck

// InitCheck verifies, once at bootstrap, that the declared shared-memory
// variables (the shmvar annotations of an initializing function) are
// pairwise non-overlapping and each lies entirely within the segment —
// the run-time check the paper auto-inserts to validate the programmer's
// size annotations. A failure must terminate the core component before it
// starts; callers are expected to treat the returned error as fatal.
func InitCheck(seg *Segment, vars ...*Var) error {
	if seg == nil {
		return fmt.Errorf("shm: InitCheck: nil segment")
	}
	sorted := make([]*Var, len(vars))
	copy(sorted, vars)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Offset < sorted[j].Offset })
	for i, v := range sorted {
		if v.Seg != seg {
			return fmt.Errorf("shm: InitCheck: variable %q belongs to a different segment", v.Name)
		}
		if v.Size <= 0 {
			return fmt.Errorf("shm: InitCheck: variable %q has non-positive size %d", v.Name, v.Size)
		}
		if v.Offset < 0 || v.Offset+v.Size > seg.Size() {
			return fmt.Errorf("shm: InitCheck: variable %q [%d,%d) outside segment of %d bytes",
				v.Name, v.Offset, v.Offset+v.Size, seg.Size())
		}
		if i > 0 {
			prev := sorted[i-1]
			if prev.Offset+prev.Size > v.Offset {
				return fmt.Errorf("shm: InitCheck: variables %q [%d,%d) and %q [%d,%d) overlap",
					prev.Name, prev.Offset, prev.Offset+prev.Size,
					v.Name, v.Offset, v.Offset+v.Size)
			}
		}
	}
	return nil
}
