package shm

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestGetCreateAndReuse(t *testing.T) {
	Reset()
	s1, err := Get(100, 64)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Get(100, 32) // smaller request attaches to the same segment
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("same key returned different segments")
	}
	if _, err := Get(100, 128); err == nil {
		t.Error("larger request on existing segment should fail")
	}
	if _, err := Get(101, 0); err == nil {
		t.Error("zero-size segment should fail")
	}
	Remove(100)
	s3, err := Get(100, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Error("segment survived Remove")
	}
}

func TestTypedAccess(t *testing.T) {
	Reset()
	s, _ := Get(1, 64)
	if err := s.WriteFloat64(8, 3.25); err != nil {
		t.Fatal(err)
	}
	v, err := s.ReadFloat64(8)
	if err != nil || v != 3.25 {
		t.Errorf("ReadFloat64 = %v, %v", v, err)
	}
	if err := s.WriteInt32(0, -7); err != nil {
		t.Fatal(err)
	}
	n, err := s.ReadInt32(0)
	if err != nil || n != -7 {
		t.Errorf("ReadInt32 = %v, %v", n, err)
	}
}

func TestOutOfBoundsAccess(t *testing.T) {
	Reset()
	s, _ := Get(1, 16)
	if err := s.WriteFloat64(12, 1); err == nil {
		t.Error("write past end accepted")
	}
	if _, err := s.ReadFloat64(-1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := s.ReadInt32(16); err == nil {
		t.Error("read at end accepted")
	}
}

func TestVarViews(t *testing.T) {
	Reset()
	s, _ := Get(1, 64)
	v, err := NewVar(s, "fb", 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.SetFloat64At(0, 2.5); err != nil {
		t.Fatal(err)
	}
	// The variable's offset 0 is segment offset 16.
	raw, _ := s.ReadFloat64(16)
	if raw != 2.5 {
		t.Errorf("segment view = %v", raw)
	}
	if err := v.SetFloat64At(32, 1); err == nil {
		t.Error("write past variable end accepted")
	}
	if err := v.SetInt32At(30, 1); err == nil {
		t.Error("int write crossing variable end accepted")
	}
	if _, err := NewVar(s, "bad", 60, 16); err == nil {
		t.Error("variable outside segment accepted")
	}
}

func TestInitCheckValid(t *testing.T) {
	Reset()
	s, _ := Get(1, 64)
	a, _ := NewVar(s, "a", 0, 32)
	b, _ := NewVar(s, "b", 32, 32)
	if err := InitCheck(s, a, b); err != nil {
		t.Errorf("valid layout rejected: %v", err)
	}
	// Order independence.
	if err := InitCheck(s, b, a); err != nil {
		t.Errorf("valid layout rejected in reverse order: %v", err)
	}
	if err := InitCheck(s); err != nil {
		t.Errorf("empty layout rejected: %v", err)
	}
}

func TestInitCheckOverlap(t *testing.T) {
	Reset()
	s, _ := Get(1, 64)
	a, _ := NewVar(s, "a", 0, 40)
	b, _ := NewVar(s, "b", 32, 32)
	if err := InitCheck(s, a, b); err == nil {
		t.Error("overlap accepted")
	}
}

func TestInitCheckForeignSegment(t *testing.T) {
	Reset()
	s1, _ := Get(1, 64)
	s2, _ := Get(2, 64)
	a, _ := NewVar(s2, "a", 0, 8)
	if err := InitCheck(s1, a); err == nil {
		t.Error("variable from another segment accepted")
	}
	if err := InitCheck(nil); err == nil {
		t.Error("nil segment accepted")
	}
}

func TestLockExcludes(t *testing.T) {
	Reset()
	s, _ := Get(1, 16)
	var wg sync.WaitGroup
	counter := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Lock()
				counter++
				s.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Errorf("counter = %d, want 8000 (lock not exclusive)", counter)
	}
}

// Property: float round-trips exactly at any valid aligned offset.
func TestQuickFloatRoundTrip(t *testing.T) {
	Reset()
	s, _ := Get(1, 128)
	f := func(off uint8, val float64) bool {
		o := int(off) % 120
		if err := s.WriteFloat64(o, val); err != nil {
			return false
		}
		got, err := s.ReadFloat64(o)
		if err != nil {
			return false
		}
		return got == val || (val != val && got != got) // NaN round-trips too
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: InitCheck accepts any non-overlapping ascending layout and
// rejects any layout where a variable is shrunk into its neighbor.
func TestQuickInitCheckLayouts(t *testing.T) {
	Reset()
	seg, _ := Get(9, 4096)
	f := func(sizes []uint8) bool {
		if len(sizes) > 16 {
			sizes = sizes[:16]
		}
		var vars []*Var
		off := 0
		for i, raw := range sizes {
			size := int(raw)%32 + 1
			if off+size > seg.Size() {
				break
			}
			v, err := NewVar(seg, string(rune('a'+i%26)), off, size)
			if err != nil {
				return false
			}
			vars = append(vars, v)
			off += size
		}
		if InitCheck(seg, vars...) != nil {
			return false
		}
		if len(vars) >= 2 {
			// Introduce an overlap: grow the first variable into the second.
			bad := *vars[0]
			bad.Size = vars[1].Offset - vars[0].Offset + 1
			tampered := append([]*Var{&bad}, vars[1:]...)
			if InitCheck(seg, tampered...) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
