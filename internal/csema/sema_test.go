package csema

import (
	"strings"
	"testing"

	"safeflow/internal/cast"
	"safeflow/internal/clex"
	"safeflow/internal/cparse"
	"safeflow/internal/ctypes"
)

func analyze(t *testing.T, src string) (*Program, error) {
	t.Helper()
	l := clex.New("t.c", src)
	toks := l.All()
	if errs := l.Errors(); len(errs) > 0 {
		t.Fatalf("lex: %v", errs)
	}
	p := cparse.New("t.c", toks)
	f, err := p.ParseFile()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze([]*cast.File{f})
}

func mustAnalyze(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := analyze(t, src)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return prog
}

func TestGlobalAndFunctionCollection(t *testing.T) {
	prog := mustAnalyze(t, `
typedef struct { double a; int b; } S;
S shared;
S *ptr;
int helper(S *s, double d);
int helper(S *s, double d) { return s->b + (int) d; }
int main() { return helper(&shared, 1.5); }
`)
	if prog.GlobalMap["shared"] == nil || prog.GlobalMap["ptr"] == nil {
		t.Fatal("globals missing")
	}
	h := prog.FuncByName["helper"]
	if h == nil || !h.IsDefined {
		t.Fatal("helper missing or undefined")
	}
	if len(h.Params) != 2 || h.Params[0].Name != "s" {
		t.Errorf("helper params = %#v", h.Params)
	}
	if h.Type.Result != ctypes.IntType {
		t.Errorf("helper result = %v", h.Type.Result)
	}
}

func TestTypeOfExpressions(t *testing.T) {
	prog := mustAnalyze(t, `
typedef struct { double d; int i; } S;
S g;
double fn(S *p, int n)
{
	double x;
	x = p->d + n;
	return x * g.d;
}
`)
	// Every checked binary expr involving doubles must type as double.
	found := 0
	for e, ty := range prog.ExprTypes {
		if be, ok := e.(*cast.BinaryExpr); ok {
			_ = be
			if ctypes.IsFloat(ty) {
				found++
			}
		}
	}
	if found == 0 {
		t.Error("no float-typed binary expressions recorded")
	}
}

func TestUsesResolution(t *testing.T) {
	prog := mustAnalyze(t, `
int g;
int fn(int g) { return g; }
int main() { return g + fn(1); }
`)
	// The g inside fn must resolve to the parameter, the one in main to
	// the global.
	var paramUse, globalUse bool
	for id, obj := range prog.Uses {
		if id.Name != "g" {
			continue
		}
		switch obj.(type) {
		case *ParamVar:
			paramUse = true
		case *GlobalVar:
			globalUse = true
		}
	}
	if !paramUse || !globalUse {
		t.Errorf("shadowing resolution: param=%v global=%v", paramUse, globalUse)
	}
}

func TestEnumConstants(t *testing.T) {
	prog := mustAnalyze(t, `
enum { A, B = 10, C };
int x = C;
`)
	if prog.Enums["A"].Value != 0 || prog.Enums["B"].Value != 10 || prog.Enums["C"].Value != 11 {
		t.Errorf("enum values: A=%d B=%d C=%d", prog.Enums["A"].Value, prog.Enums["B"].Value, prog.Enums["C"].Value)
	}
}

func TestBuiltinsAvailable(t *testing.T) {
	prog := mustAnalyze(t, `
int main()
{
	void *p;
	int id;
	id = shmget(1, 64, 0);
	p = shmat(id, 0, 0);
	printf("%d\n", id);
	kill(getpid(), 9);
	return 0;
}
`)
	if prog.FuncByName["shmat"] == nil || !prog.FuncByName["shmat"].IsBuiltin {
		t.Error("shmat builtin missing")
	}
}

func TestImplicitDeclarationWarns(t *testing.T) {
	prog := mustAnalyze(t, `int main() { mystery(1, 2); return 0; }`)
	found := false
	for _, w := range prog.Warnings {
		if strings.Contains(w, "implicit declaration") && strings.Contains(w, "mystery") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings = %v, want implicit declaration of mystery", prog.Warnings)
	}
}

func TestUserOverridesBuiltin(t *testing.T) {
	prog := mustAnalyze(t, `
void Lock(int which) { }
int main() { Lock(3); return 0; }
`)
	fn := prog.FuncByName["Lock"]
	if fn == nil || fn.IsBuiltin || !fn.IsDefined {
		t.Errorf("user definition did not override the builtin: %#v", fn)
	}
}

func TestStructDedupAcrossFiles(t *testing.T) {
	header := `
#line 1 "shared.h"
typedef struct { double v; int n; } Shared;
`
	mk := func(body string) *cast.File {
		l := clex.New("x.c", header+body)
		p := cparse.New("x.c", l.All())
		f, err := p.ParseFile()
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return f
	}
	f1 := mk("Shared g;\n")
	f2 := mk("extern Shared g;\nint use() { return g.n; }\n")
	prog, err := Analyze([]*cast.File{f1, f2})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if prog.GlobalMap["g"] == nil {
		t.Fatal("global g missing")
	}
}

func TestConstEval(t *testing.T) {
	prog := mustAnalyze(t, `
typedef struct { double a; double b; } Pair;
int arr[2 * 4 + 1];
`)
	g := prog.GlobalMap["arr"]
	at, ok := g.Type.(*ctypes.Array)
	if !ok || at.Len != 9 {
		t.Fatalf("arr type = %v", g.Type)
	}
}

func TestSemanticErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"undeclared", "int main() { return nope; }", "undeclared identifier"},
		{"bad field", "typedef struct { int a; } S; int main() { S s; return s.b; }", `no field "b"`},
		{"arrow on struct", "typedef struct { int a; } S; int main() { S s; return s->a; }", "-> on non-pointer"},
		{"dot on pointer", "typedef struct { int a; } S; int main() { S *s; return s.a; }", ". on non-struct"},
		{"deref non-pointer", "int main() { int x; return *x; }", "dereference non-pointer"},
		{"arg count", "void f(int a, int b); int main() { f(1); return 0; }", "want 2"},
		{"arg type", "void f(int *p); int main() { double d; f(d); return 0; }", "cannot pass"},
		{"return in void", "void f() { return 3; }", "return with value"},
		{"assign mismatch", "typedef struct { int a; } S; int main() { S s; int *p; p = s; return 0; }", "cannot assign"},
		{"redecl local", "int main() { int x; int x; return 0; }", "redeclaration"},
		{"bad switch tag", "int main() { double d; switch (d) { case 1: break; } return 0; }", "switch tag"},
		{"nonconst case", "int main(int v) { switch (v) { case v: break; } return 0; }", "constant"},
		{"conflicting global", "int g; double g;", "conflicting declarations"},
		{"function redefined", "int f() { return 0; } int f() { return 1; }", "redefinition"},
		{"not lvalue", "int main() { 3 = 4; return 0; }", "not an lvalue"},
		{"bad array len", "int a[-2];", "positive constant"},
		{"pointer compound assign", "int main() { int *p; p *= 2; return 0; }", "compound assignment to pointer"},
		{"two pointers added", "int main() { int *p; int *q; long r; r = (long)(p + q); return 0; }", "add two pointers"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := analyze(t, tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestUsualArithConversions(t *testing.T) {
	prog := mustAnalyze(t, `
double mix(int i, double d, float f, long l)
{
	return i + d + f + l;
}
`)
	fn := prog.FuncByName["mix"]
	ret := fn.Decl.Body.List[0].(*cast.ReturnStmt)
	if ty := prog.TypeOf(ret.X); !ctypes.IsFloat(ty) {
		t.Errorf("mixed arithmetic type = %v, want floating", ty)
	}
}

func TestPointerArithmeticTypes(t *testing.T) {
	prog := mustAnalyze(t, `
typedef struct { double v; } S;
long fn(S *a, S *b, int n)
{
	S *c;
	c = a + n;
	return b - a;
}
`)
	fn := prog.FuncByName["fn"]
	assign := fn.Decl.Body.List[1].(*cast.ExprStmt).X.(*cast.AssignExpr)
	if ty := prog.TypeOf(assign.RHS); !ctypes.IsPointer(ty) {
		t.Errorf("a+n type = %v, want pointer", ty)
	}
	ret := fn.Decl.Body.List[2].(*cast.ReturnStmt)
	if ty := prog.TypeOf(ret.X); !ctypes.IsInteger(ty) {
		t.Errorf("b-a type = %v, want integer", ty)
	}
}
