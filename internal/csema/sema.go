// Package csema performs semantic analysis of parsed SafeFlow C: name
// resolution, type resolution and checking, constant evaluation, and the
// construction of the typed program that irgen lowers to IR.
package csema

import (
	"fmt"
	"strings"

	"safeflow/internal/cast"
	"safeflow/internal/ctoken"
	"safeflow/internal/ctypes"
)

// Error is a semantic error at a position.
type Error struct {
	Pos ctoken.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a list of semantic errors implementing error.
type ErrorList []*Error

// Error implements the error interface.
func (l ErrorList) Error() string {
	var sb strings.Builder
	for i, e := range l {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(e.Error())
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Objects

// Object is a named program entity bound by name resolution.
type Object interface {
	ObjName() string
	ObjType() ctypes.Type
}

// GlobalVar is a file-scope variable.
type GlobalVar struct {
	Name string
	Type ctypes.Type
	Decl *cast.VarDecl
}

// LocalVar is a block-scope variable.
type LocalVar struct {
	Name string
	Type ctypes.Type
	Decl *cast.VarDecl
	Fn   *Function
}

// ParamVar is a function parameter.
type ParamVar struct {
	Name  string
	Type  ctypes.Type
	Index int
	Fn    *Function
}

// Function is a declared or defined function.
type Function struct {
	Name        string
	Type        *ctypes.Func
	Decl        *cast.FuncDecl // the definition if one exists, else first decl
	Params      []*ParamVar
	Annotations []cast.Annotation
	IsDefined   bool
	IsBuiltin   bool // predeclared external (libc / shm library / SafeFlow runtime)
}

// EnumConst is an enumerator.
type EnumConst struct {
	Name  string
	Value int64
}

// ObjName/ObjType implementations.
func (o *GlobalVar) ObjName() string { return o.Name }

// ObjType implements Object.
func (o *GlobalVar) ObjType() ctypes.Type { return o.Type }

// ObjName implements Object.
func (o *LocalVar) ObjName() string { return o.Name }

// ObjType implements Object.
func (o *LocalVar) ObjType() ctypes.Type { return o.Type }

// ObjName implements Object.
func (o *ParamVar) ObjName() string { return o.Name }

// ObjType implements Object.
func (o *ParamVar) ObjType() ctypes.Type { return o.Type }

// ObjName implements Object.
func (o *Function) ObjName() string { return o.Name }

// ObjType implements Object.
func (o *Function) ObjType() ctypes.Type { return o.Type }

// ObjName implements Object.
func (o *EnumConst) ObjName() string { return o.Name }

// ObjType implements Object.
func (o *EnumConst) ObjType() ctypes.Type { return ctypes.IntType }

// ---------------------------------------------------------------------------
// Program

// Program is the typed output of semantic analysis over one or more files.
type Program struct {
	Files      []*cast.File
	Structs    map[string]*ctypes.Struct
	Typedefs   map[string]ctypes.Type
	Globals    []*GlobalVar
	GlobalMap  map[string]*GlobalVar
	Funcs      []*Function
	FuncByName map[string]*Function
	ExprTypes  map[cast.Expr]ctypes.Type
	Uses       map[*cast.Ident]Object
	Enums      map[string]*EnumConst
	Warnings   []string
}

// TypeOf returns the resolved type of an expression (nil if unchecked).
func (p *Program) TypeOf(e cast.Expr) ctypes.Type { return p.ExprTypes[e] }

// checker carries analysis state.
type checker struct {
	prog   *Program
	errs   ErrorList
	scopes []map[string]Object
	curFn  *Function
}

// Analyze type-checks the files as one program.
func Analyze(files []*cast.File) (*Program, error) {
	prog, perFile := AnalyzeUnits(files)
	var all ErrorList
	for _, errs := range perFile {
		all = append(all, errs...)
	}
	if len(all) > 0 {
		return prog, all
	}
	return prog, nil
}

// AnalyzeUnits is Analyze with per-unit error attribution: the i-th
// returned list holds the errors produced while checking files[i]'s
// declarations (pass 1) and bodies (pass 2); it is empty when the file
// checked cleanly. The recovering front end uses the attribution to drop
// exactly the failing translation units and retry with the rest.
func AnalyzeUnits(files []*cast.File) (*Program, []ErrorList) {
	prog := &Program{
		Files:      files,
		Structs:    make(map[string]*ctypes.Struct),
		Typedefs:   make(map[string]ctypes.Type),
		GlobalMap:  make(map[string]*GlobalVar),
		FuncByName: make(map[string]*Function),
		ExprTypes:  make(map[cast.Expr]ctypes.Type),
		Uses:       make(map[*cast.Ident]Object),
		Enums:      make(map[string]*EnumConst),
	}
	c := &checker{prog: prog}
	c.declareBuiltins()

	perFile := make([]ErrorList, len(files))
	// attribute appends the errors accumulated since mark to files[i].
	attribute := func(i, mark int) int {
		if len(c.errs) > mark {
			perFile[i] = append(perFile[i], c.errs[mark:]...)
		}
		return len(c.errs)
	}

	// Pass 1: collect typedefs, structs, enums, globals, function
	// signatures across all files so order doesn't matter.
	mark := 0
	for i, f := range files {
		for _, d := range f.Decls {
			c.collectDecl(d)
		}
		mark = attribute(i, mark)
	}
	// Pass 2: check function bodies and global initializers.
	for i, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
				c.checkFuncBody(fd)
			}
		}
		mark = attribute(i, mark)
	}
	return prog, perFile
}

func (c *checker) errorf(pos ctoken.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) warnf(pos ctoken.Pos, format string, args ...any) {
	c.prog.Warnings = append(c.prog.Warnings, fmt.Sprintf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// ---------------------------------------------------------------------------
// Builtins

// builtinSignatures predeclares the external functions the corpus systems
// call: SysV shared memory, POSIX process/IPC primitives, libc math and
// I/O, sockets (for the message-passing extension), and the SafeFlow
// runtime check InitCheck. Signatures use the subset's type vocabulary.
func (c *checker) declareBuiltins() {
	voidp := &ctypes.Pointer{Elem: ctypes.VoidType}
	charp := &ctypes.Pointer{Elem: ctypes.CharType}
	intT := ctypes.IntType
	longT := ctypes.LongType
	dblT := ctypes.DoubleType

	sig := func(res ctypes.Type, params ...ctypes.Type) *ctypes.Func {
		return &ctypes.Func{Result: res, Params: params}
	}
	vsig := func(res ctypes.Type, params ...ctypes.Type) *ctypes.Func {
		return &ctypes.Func{Result: res, Params: params, Variadic: true}
	}

	builtins := map[string]*ctypes.Func{
		// SysV shared memory.
		"shmget": sig(intT, intT, longT, intT),
		"shmat":  sig(voidp, intT, voidp, intT),
		"shmdt":  sig(intT, voidp),
		"shmctl": sig(intT, intT, intT, voidp),
		// Process control and signals.
		"kill":   sig(intT, intT, intT),
		"getpid": sig(intT),
		"fork":   sig(intT),
		"exit":   sig(ctypes.VoidType, intT),
		"abort":  sig(ctypes.VoidType),
		// Semaphores / locking (lab-system wrappers).
		"semget":    sig(intT, intT, intT, intT),
		"semop":     sig(intT, intT, voidp, intT),
		"Lock":      sig(ctypes.VoidType, intT),
		"Unlock":    sig(ctypes.VoidType, intT),
		"sem_wait":  sig(intT, voidp),
		"sem_post":  sig(intT, voidp),
		"wait":      sig(intT, dblT),
		"usleep":    sig(intT, longT),
		"sleep":     sig(intT, intT),
		"nanosleep": sig(intT, voidp, voidp),
		// Stdio.
		"printf":  vsig(intT, charp),
		"fprintf": vsig(intT, voidp, charp),
		"sprintf": vsig(intT, charp, charp),
		"sscanf":  vsig(intT, charp, charp),
		"fscanf":  vsig(intT, voidp, charp),
		"fopen":   sig(voidp, charp, charp),
		"fclose":  sig(intT, voidp),
		"fgets":   sig(charp, charp, intT, voidp),
		"puts":    sig(intT, charp),
		"perror":  sig(ctypes.VoidType, charp),
		// String/memory.
		"strcmp":  sig(intT, charp, charp),
		"strncmp": sig(intT, charp, charp, longT),
		"strcpy":  sig(charp, charp, charp),
		"strncpy": sig(charp, charp, charp, longT),
		"strlen":  sig(longT, charp),
		"memset":  sig(voidp, voidp, intT, longT),
		"memcpy":  sig(voidp, voidp, voidp, longT),
		"atoi":    sig(intT, charp),
		"atof":    sig(dblT, charp),
		// Math.
		"fabs":  sig(dblT, dblT),
		"sqrt":  sig(dblT, dblT),
		"sin":   sig(dblT, dblT),
		"cos":   sig(dblT, dblT),
		"tan":   sig(dblT, dblT),
		"atan2": sig(dblT, dblT, dblT),
		"pow":   sig(dblT, dblT, dblT),
		"exp":   sig(dblT, dblT),
		"log":   sig(dblT, dblT),
		"floor": sig(dblT, dblT),
		"ceil":  sig(dblT, dblT),
		// Sockets (message-passing extension, §3.4.3).
		"socket":  sig(intT, intT, intT, intT),
		"bind":    sig(intT, intT, voidp, intT),
		"connect": sig(intT, intT, voidp, intT),
		"recv":    sig(longT, intT, voidp, longT, intT),
		"send":    sig(longT, intT, voidp, longT, intT),
		"close":   sig(intT, intT),
		"read":    sig(longT, intT, voidp, longT),
		"write":   sig(longT, intT, voidp, longT),
		// Hardware interface stubs used by the corpus.
		"readSensor":  sig(dblT, intT),
		"writeDA":     sig(ctypes.VoidType, intT, dblT),
		"gettimeofus": sig(longT),
		// SafeFlow runtime.
		"InitCheck": vsig(intT, voidp, longT),
	}
	for name, t := range builtins {
		fn := &Function{Name: name, Type: t, IsBuiltin: true}
		c.prog.Funcs = append(c.prog.Funcs, fn)
		c.prog.FuncByName[name] = fn
	}
}

// ---------------------------------------------------------------------------
// Scope helpers

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]Object)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declareLocal(name string, obj Object, pos ctoken.Pos) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		c.errorf(pos, "redeclaration of %q", name)
	}
	top[name] = obj
}

func (c *checker) lookup(name string) Object {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if obj, ok := c.scopes[i][name]; ok {
			return obj
		}
	}
	if ec, ok := c.prog.Enums[name]; ok {
		return ec
	}
	if g, ok := c.prog.GlobalMap[name]; ok {
		return g
	}
	if f, ok := c.prog.FuncByName[name]; ok {
		return f
	}
	return nil
}

// ---------------------------------------------------------------------------
// Type resolution

// structKey gives anonymous tags unique names per position.
func structKey(st *cast.StructType) string {
	if st.Tag != "" {
		return st.Tag
	}
	return fmt.Sprintf("@anon_%s_%d_%d", st.Keyword.File, st.Keyword.Line, st.Keyword.Col)
}

func (c *checker) resolveType(te cast.TypeExpr) ctypes.Type {
	switch t := te.(type) {
	case *cast.BaseType:
		return c.resolveBase(t)
	case *cast.NamedType:
		if ty, ok := c.prog.Typedefs[t.Name]; ok {
			return ty
		}
		c.errorf(t.NamePos, "unknown type name %q", t.Name)
		return ctypes.IntType
	case *cast.StructType:
		return c.resolveStruct(t)
	case *cast.EnumType:
		c.resolveEnum(t)
		return ctypes.IntType
	case *cast.PointerType:
		return &ctypes.Pointer{Elem: c.resolveType(t.Elem)}
	case *cast.ArrayType:
		elem := c.resolveType(t.Elem)
		var n int64 = 0
		if t.Len != nil {
			v, ok := c.constEval(t.Len)
			if !ok || v <= 0 {
				c.errorf(t.Len.Pos(), "array length must be a positive constant")
				v = 1
			}
			n = v
		}
		return &ctypes.Array{Elem: elem, Len: n}
	case *cast.FuncType:
		ft := &ctypes.Func{Result: c.resolveType(t.Result), Variadic: t.Variadic}
		for _, p := range t.Params {
			ft.Params = append(ft.Params, c.resolveType(p.Type))
		}
		return ft
	default:
		return ctypes.IntType
	}
}

func (c *checker) resolveBase(t *cast.BaseType) ctypes.Type {
	switch t.Name {
	case "void":
		return ctypes.VoidType
	case "char":
		return ctypes.CharType
	case "unsigned char":
		return ctypes.UCharType
	case "short":
		return ctypes.ShortType
	case "unsigned short":
		return ctypes.UShortType
	case "int":
		return ctypes.IntType
	case "unsigned", "unsigned int":
		return ctypes.UIntType
	case "long":
		return ctypes.LongType
	case "unsigned long":
		return ctypes.ULongType
	case "float":
		return ctypes.FloatType
	case "double", "long double":
		return ctypes.DoubleType
	default:
		c.errorf(t.NamePos, "unsupported base type %q", t.Name)
		return ctypes.IntType
	}
}

func (c *checker) resolveStruct(st *cast.StructType) ctypes.Type {
	key := structKey(st)
	if !st.Defined {
		if s, ok := c.prog.Structs[key]; ok {
			return s
		}
		// Forward reference: create an empty placeholder that the later
		// definition fills in (our corpus always defines before use through
		// headers, but pointer-to-forward-struct must work).
		s := ctypes.NewStruct(key, st.IsUnion, nil)
		c.prog.Structs[key] = s
		return s
	}
	var fields []ctypes.Field
	for _, f := range st.Fields {
		fields = append(fields, ctypes.Field{Name: f.Name, Type: c.resolveType(f.Type)})
	}
	s := ctypes.NewStruct(key, st.IsUnion, fields)
	if prev, ok := c.prog.Structs[key]; ok {
		if len(prev.Fields) == 0 {
			// Fill the forward placeholder in place so earlier pointers
			// resolve to the completed type.
			*prev = *s
			return prev
		}
		// The same header definition re-parsed in another translation
		// unit: reuse the existing nominal type when structurally equal.
		if structurallyEqual(prev, s) {
			return prev
		}
		c.errorf(st.Keyword, "conflicting definitions of %s", s)
	}
	c.prog.Structs[key] = s
	return s
}

// structurallyEqual compares struct definitions by field names, offsets
// and rendered types — sufficient to recognize the same header definition
// parsed in different translation units.
func structurallyEqual(a, b *ctypes.Struct) bool {
	if a.IsUnion != b.IsUnion || len(a.Fields) != len(b.Fields) || a.Size() != b.Size() {
		return false
	}
	for i := range a.Fields {
		fa, fb := a.Fields[i], b.Fields[i]
		if fa.Name != fb.Name || fa.Offset != fb.Offset || fa.Type.String() != fb.Type.String() {
			return false
		}
	}
	return true
}

func (c *checker) resolveEnum(et *cast.EnumType) {
	if !et.Defined {
		return
	}
	var next int64
	for _, m := range et.Members {
		if m.Value != nil {
			if v, ok := c.constEval(m.Value); ok {
				next = v
			} else {
				c.errorf(m.Value.Pos(), "enumerator value must be constant")
			}
		}
		c.prog.Enums[m.Name] = &EnumConst{Name: m.Name, Value: next}
		next++
	}
}

// ---------------------------------------------------------------------------
// Constant evaluation (array sizes, enum values, case labels)

func (c *checker) constEval(e cast.Expr) (int64, bool) {
	switch x := cast.Unparen(e).(type) {
	case *cast.IntLit:
		return x.Value, true
	case *cast.Ident:
		if ec, ok := c.prog.Enums[x.Name]; ok {
			return ec.Value, true
		}
		return 0, false
	case *cast.SizeofExpr:
		if x.Type != nil {
			return c.resolveType(x.Type).Size(), true
		}
		if t := c.prog.ExprTypes[x.X]; t != nil {
			return t.Size(), true
		}
		return 0, false
	case *cast.UnaryExpr:
		v, ok := c.constEval(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case ctoken.MINUS:
			return -v, true
		case ctoken.TILDE:
			return ^v, true
		case ctoken.NOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *cast.BinaryExpr:
		a, ok1 := c.constEval(x.X)
		b, ok2 := c.constEval(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case ctoken.PLUS:
			return a + b, true
		case ctoken.MINUS:
			return a - b, true
		case ctoken.STAR:
			return a * b, true
		case ctoken.SLASH:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case ctoken.PERCENT:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case ctoken.SHL:
			return a << uint(b), true
		case ctoken.SHR:
			return a >> uint(b), true
		case ctoken.AMP:
			return a & b, true
		case ctoken.PIPE:
			return a | b, true
		case ctoken.CARET:
			return a ^ b, true
		}
		return 0, false
	case *cast.CastExpr:
		return c.constEval(x.X)
	default:
		return 0, false
	}
}

// ConstEval exposes constant evaluation for downstream passes (annotations
// use sizeof in offsets/sizes).
func (p *Program) ConstEval(e cast.Expr) (int64, bool) {
	c := &checker{prog: p}
	return c.constEval(e)
}

// ---------------------------------------------------------------------------
// Declaration collection

func (c *checker) collectDecl(d cast.Decl) {
	switch dd := d.(type) {
	case *cast.TypedefDecl:
		c.prog.Typedefs[dd.Name] = c.resolveType(dd.Type)
	case *cast.RecordDecl:
		c.resolveType(dd.Type)
	case *cast.VarDecl:
		t := c.resolveType(dd.Type)
		if prev, ok := c.prog.GlobalMap[dd.Name]; ok {
			if !prev.Type.Equal(t) {
				c.errorf(dd.NamePos, "conflicting declarations of global %q", dd.Name)
			}
			if dd.Init != nil {
				prev.Decl = dd
			}
			return
		}
		g := &GlobalVar{Name: dd.Name, Type: t, Decl: dd}
		c.prog.Globals = append(c.prog.Globals, g)
		c.prog.GlobalMap[dd.Name] = g
	case *cast.FuncDecl:
		ft, params := c.resolveFuncType(dd)
		prev, exists := c.prog.FuncByName[dd.Name]
		if exists {
			if prev.IsBuiltin {
				// User definition overrides the builtin signature.
				prev.IsBuiltin = false
				prev.Type = ft
			} else if !prev.Type.Equal(ft) {
				c.errorf(dd.NamePos, "conflicting declarations of function %q", dd.Name)
			}
			prev.Annotations = append(prev.Annotations, dd.Annotations...)
			if dd.Body != nil {
				if prev.IsDefined {
					c.errorf(dd.NamePos, "redefinition of function %q", dd.Name)
				}
				prev.IsDefined = true
				prev.Decl = dd
				prev.Params = params
				for _, p := range params {
					p.Fn = prev
				}
			}
			return
		}
		fn := &Function{
			Name:        dd.Name,
			Type:        ft,
			Decl:        dd,
			Params:      params,
			Annotations: dd.Annotations,
			IsDefined:   dd.Body != nil,
		}
		for _, p := range params {
			p.Fn = fn
		}
		c.prog.Funcs = append(c.prog.Funcs, fn)
		c.prog.FuncByName[dd.Name] = fn
	}
}

func (c *checker) resolveFuncType(fd *cast.FuncDecl) (*ctypes.Func, []*ParamVar) {
	ft := &ctypes.Func{Result: c.resolveType(fd.Type.Result), Variadic: fd.Type.Variadic}
	var params []*ParamVar
	for i, p := range fd.Type.Params {
		pt := c.resolveType(p.Type)
		ft.Params = append(ft.Params, pt)
		params = append(params, &ParamVar{Name: p.Name, Type: pt, Index: i})
	}
	return ft, params
}

// ---------------------------------------------------------------------------
// Body checking

func (c *checker) checkFuncBody(fd *cast.FuncDecl) {
	fn := c.prog.FuncByName[fd.Name]
	if fn == nil || fn.Decl != fd {
		return
	}
	c.curFn = fn
	c.pushScope()
	for _, p := range fn.Params {
		if p.Name != "" {
			c.declareLocal(p.Name, p, fd.NamePos)
		}
	}
	c.checkStmt(fd.Body)
	c.popScope()
	c.curFn = nil
}

func (c *checker) checkStmt(s cast.Stmt) {
	switch st := s.(type) {
	case *cast.BlockStmt:
		c.pushScope()
		for _, sub := range st.List {
			c.checkStmt(sub)
		}
		c.popScope()
	case *cast.DeclStmt:
		for _, vd := range st.Decls {
			t := c.resolveType(vd.Type)
			lv := &LocalVar{Name: vd.Name, Type: t, Decl: vd, Fn: c.curFn}
			c.declareLocal(vd.Name, lv, vd.NamePos)
			if vd.Init != nil {
				c.checkInit(t, vd.Init)
			}
		}
	case *cast.ExprStmt:
		c.checkExpr(st.X)
	case *cast.EmptyStmt:
	case *cast.IfStmt:
		c.checkCond(st.Cond)
		c.checkStmt(st.Then)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}
	case *cast.WhileStmt:
		c.checkCond(st.Cond)
		c.checkStmt(st.Body)
	case *cast.DoWhileStmt:
		c.checkStmt(st.Body)
		c.checkCond(st.Cond)
	case *cast.ForStmt:
		c.pushScope()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			c.checkCond(st.Cond)
		}
		if st.Post != nil {
			c.checkExpr(st.Post)
		}
		c.checkStmt(st.Body)
		c.popScope()
	case *cast.ReturnStmt:
		want := c.curFn.Type.Result
		if st.X != nil {
			got := c.checkExpr(st.X)
			if ctypes.IsVoid(want) {
				c.errorf(st.RetPos, "return with value in void function %q", c.curFn.Name)
			} else if got != nil && !assignable(want, got) {
				c.errorf(st.RetPos, "cannot return %s from function returning %s", got, want)
			}
		} else if !ctypes.IsVoid(want) {
			c.warnf(st.RetPos, "return without value in function %q returning %s", c.curFn.Name, want)
		}
	case *cast.BreakStmt, *cast.ContinueStmt, *cast.GotoStmt:
	case *cast.SwitchStmt:
		t := c.checkExpr(st.Tag)
		if t != nil && !ctypes.IsInteger(t) {
			c.errorf(st.Tag.Pos(), "switch tag must be an integer, have %s", t)
		}
		for _, cl := range st.Body {
			for _, v := range cl.Values {
				if _, ok := c.constEval(v); !ok {
					c.errorf(v.Pos(), "case label must be a constant expression")
				}
				c.checkExpr(v)
			}
			c.pushScope()
			for _, sub := range cl.Body {
				c.checkStmt(sub)
			}
			c.popScope()
		}
	case *cast.LabeledStmt:
		c.checkStmt(st.Stmt)
	case *cast.AnnotatedStmt:
		c.checkStmt(st.Stmt)
	default:
		c.errorf(s.Pos(), "unhandled statement %T", s)
	}
}

func (c *checker) checkCond(e cast.Expr) {
	t := c.checkExpr(e)
	if t != nil && !ctypes.IsScalar(t) {
		c.errorf(e.Pos(), "condition must be scalar, have %s", t)
	}
}

func (c *checker) checkInit(want ctypes.Type, init cast.Expr) {
	if call, ok := init.(*cast.CallExpr); ok {
		if id, ok := call.Fun.(*cast.Ident); ok && id.Name == "__initlist" {
			// Braced initializer: check each element against the element or
			// field type.
			switch wt := want.(type) {
			case *ctypes.Array:
				for _, a := range call.Args {
					c.checkInit(wt.Elem, a)
				}
			case *ctypes.Struct:
				for i, a := range call.Args {
					if i < len(wt.Fields) {
						c.checkInit(wt.Fields[i].Type, a)
					} else {
						c.errorf(a.Pos(), "too many initializers for %s", wt)
					}
				}
			default:
				if len(call.Args) == 1 {
					c.checkInit(want, call.Args[0])
				} else {
					c.errorf(init.Pos(), "scalar initializer list with %d elements", len(call.Args))
				}
			}
			c.prog.ExprTypes[init] = want
			return
		}
	}
	got := c.checkExpr(init)
	if got != nil && !assignable(want, got) {
		c.errorf(init.Pos(), "cannot initialize %s with %s", want, got)
	}
}

// assignable implements the subset's assignment compatibility: identical
// types, arithmetic conversions, pointer = compatible pointer, pointer =
// integer constant 0 handled at call sites (we accept int -> pointer with
// a warning elsewhere; keep strict here but allow void* wildcards).
func assignable(dst, src ctypes.Type) bool {
	if dst.Equal(src) {
		return true
	}
	if (ctypes.IsInteger(dst) || ctypes.IsFloat(dst)) && (ctypes.IsInteger(src) || ctypes.IsFloat(src)) {
		return true
	}
	if ctypes.IsPointer(dst) && ctypes.IsPointer(src) {
		return ctypes.Compatible(dst, src)
	}
	// Integer to pointer (NULL as 0) — accepted; restriction P3 polices the
	// shared-memory cases.
	if ctypes.IsPointer(dst) && ctypes.IsInteger(src) {
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Expression checking

func (c *checker) checkExpr(e cast.Expr) ctypes.Type {
	t := c.typeExpr(e)
	if t != nil {
		c.prog.ExprTypes[e] = t
	}
	return t
}

func (c *checker) typeExpr(e cast.Expr) ctypes.Type {
	switch x := e.(type) {
	case *cast.Ident:
		obj := c.lookup(x.Name)
		if obj == nil {
			c.errorf(x.NamePos, "undeclared identifier %q", x.Name)
			return ctypes.IntType
		}
		c.prog.Uses[x] = obj
		t := obj.ObjType()
		// Arrays decay to pointers in expression context; IndexExpr handles
		// the array case explicitly by looking at the undecayed type.
		return t
	case *cast.IntLit:
		return ctypes.IntType
	case *cast.FloatLit:
		return ctypes.DoubleType
	case *cast.StrLit:
		return &ctypes.Pointer{Elem: ctypes.CharType}
	case *cast.ParenExpr:
		return c.checkExpr(x.X)
	case *cast.UnaryExpr:
		return c.typeUnary(x)
	case *cast.PostfixExpr:
		t := c.checkExpr(x.X)
		c.requireLvalue(x.X)
		return t
	case *cast.BinaryExpr:
		return c.typeBinary(x)
	case *cast.AssignExpr:
		return c.typeAssign(x)
	case *cast.CondExpr:
		c.checkCond(x.Cond)
		t1 := c.checkExpr(x.Then)
		t2 := c.checkExpr(x.Else)
		if t1 != nil && t2 != nil {
			return usualArith(t1, t2)
		}
		return t1
	case *cast.CallExpr:
		return c.typeCall(x)
	case *cast.IndexExpr:
		return c.typeIndex(x)
	case *cast.MemberExpr:
		return c.typeMember(x)
	case *cast.CastExpr:
		c.checkExpr(x.X)
		return c.resolveType(x.Type)
	case *cast.SizeofExpr:
		if x.X != nil {
			c.checkExpr(x.X)
		}
		return ctypes.ULongType
	default:
		c.errorf(e.Pos(), "unhandled expression %T", e)
		return ctypes.IntType
	}
}

func (c *checker) typeUnary(x *cast.UnaryExpr) ctypes.Type {
	t := c.checkExpr(x.X)
	if t == nil {
		return nil
	}
	switch x.Op {
	case ctoken.MINUS, ctoken.TILDE:
		if !ctypes.IsInteger(t) && !ctypes.IsFloat(t) {
			c.errorf(x.OpPos, "invalid operand type %s for unary %s", t, x.Op)
		}
		return t
	case ctoken.NOT:
		return ctypes.IntType
	case ctoken.STAR:
		if arr, ok := t.(*ctypes.Array); ok {
			return arr.Elem
		}
		p, ok := t.(*ctypes.Pointer)
		if !ok {
			c.errorf(x.OpPos, "cannot dereference non-pointer type %s", t)
			return ctypes.IntType
		}
		return p.Elem
	case ctoken.AMP:
		c.requireLvalue(x.X)
		return &ctypes.Pointer{Elem: t}
	case ctoken.INC, ctoken.DEC:
		c.requireLvalue(x.X)
		return t
	default:
		c.errorf(x.OpPos, "unhandled unary operator %s", x.Op)
		return t
	}
}

func (c *checker) typeBinary(x *cast.BinaryExpr) ctypes.Type {
	lt := c.checkExpr(x.X)
	rt := c.checkExpr(x.Y)
	if lt == nil || rt == nil {
		return ctypes.IntType
	}
	lt = decay(lt)
	rt = decay(rt)
	switch x.Op {
	case ctoken.PLUS, ctoken.MINUS:
		lp, lIsP := lt.(*ctypes.Pointer)
		rp, rIsP := rt.(*ctypes.Pointer)
		switch {
		case lIsP && rIsP:
			if x.Op == ctoken.MINUS {
				return ctypes.LongType
			}
			c.errorf(x.OpPos, "cannot add two pointers")
			return lt
		case lIsP:
			if !ctypes.IsInteger(rt) {
				c.errorf(x.OpPos, "pointer arithmetic requires integer offset, have %s", rt)
			}
			_ = lp
			return lt
		case rIsP:
			if x.Op == ctoken.MINUS {
				c.errorf(x.OpPos, "cannot subtract pointer from integer")
			}
			_ = rp
			return rt
		default:
			return usualArith(lt, rt)
		}
	case ctoken.STAR, ctoken.SLASH:
		if !(isArith(lt) && isArith(rt)) {
			c.errorf(x.OpPos, "invalid operands %s and %s for %s", lt, rt, x.Op)
		}
		return usualArith(lt, rt)
	case ctoken.PERCENT, ctoken.AMP, ctoken.PIPE, ctoken.CARET, ctoken.SHL, ctoken.SHR:
		if !(ctypes.IsInteger(lt) && ctypes.IsInteger(rt)) {
			c.errorf(x.OpPos, "operator %s requires integer operands, have %s and %s", x.Op, lt, rt)
		}
		return usualArith(lt, rt)
	case ctoken.LT, ctoken.GT, ctoken.LE, ctoken.GE, ctoken.EQ, ctoken.NE,
		ctoken.LAND, ctoken.LOR:
		return ctypes.IntType
	default:
		c.errorf(x.OpPos, "unhandled binary operator %s", x.Op)
		return ctypes.IntType
	}
}

func (c *checker) typeAssign(x *cast.AssignExpr) ctypes.Type {
	lt := c.checkExpr(x.LHS)
	rt := c.checkExpr(x.RHS)
	c.requireLvalue(x.LHS)
	if lt == nil || rt == nil {
		return lt
	}
	if x.Op == ctoken.ASSIGN {
		if !assignable(lt, decay(rt)) {
			c.errorf(x.OpPos, "cannot assign %s to %s", rt, lt)
		}
		return lt
	}
	// Compound assignments require arithmetic (or ptr += int).
	if p, ok := lt.(*ctypes.Pointer); ok {
		_ = p
		if (x.Op == ctoken.ADDASSIGN || x.Op == ctoken.SUBASSIGN) && ctypes.IsInteger(rt) {
			return lt
		}
		c.errorf(x.OpPos, "invalid compound assignment to pointer")
		return lt
	}
	if !(isArith(lt) && isArith(decay(rt))) {
		c.errorf(x.OpPos, "invalid compound assignment operands %s and %s", lt, rt)
	}
	return lt
}

func (c *checker) typeCall(x *cast.CallExpr) ctypes.Type {
	id, ok := cast.Unparen(x.Fun).(*cast.Ident)
	if !ok {
		c.errorf(x.Fun.Pos(), "indirect calls are outside the SafeFlow subset (direct calls only)")
		for _, a := range x.Args {
			c.checkExpr(a)
		}
		return ctypes.IntType
	}
	fn, exists := c.prog.FuncByName[id.Name]
	if !exists {
		// Implicit declaration: legacy C; accept as variadic int with a
		// warning so old corpus code parses.
		c.warnf(id.NamePos, "implicit declaration of function %q", id.Name)
		fn = &Function{
			Name:      id.Name,
			Type:      &ctypes.Func{Result: ctypes.IntType, Variadic: true},
			IsBuiltin: true,
		}
		c.prog.Funcs = append(c.prog.Funcs, fn)
		c.prog.FuncByName[id.Name] = fn
	}
	c.prog.Uses[id] = fn
	for i, a := range x.Args {
		at := c.checkExpr(a)
		if i < len(fn.Type.Params) && at != nil {
			want := fn.Type.Params[i]
			if !assignable(want, decay(at)) {
				c.errorf(a.Pos(), "argument %d to %q: cannot pass %s as %s", i+1, fn.Name, at, want)
			}
		}
	}
	if !fn.Type.Variadic && len(x.Args) != len(fn.Type.Params) {
		c.errorf(x.LparenPos, "call to %q with %d args, want %d", fn.Name, len(x.Args), len(fn.Type.Params))
	}
	if fn.Type.Variadic && len(x.Args) < len(fn.Type.Params) {
		c.errorf(x.LparenPos, "call to %q with %d args, want at least %d", fn.Name, len(x.Args), len(fn.Type.Params))
	}
	return fn.Type.Result
}

func (c *checker) typeIndex(x *cast.IndexExpr) ctypes.Type {
	bt := c.checkExpr(x.X)
	it := c.checkExpr(x.Index)
	if it != nil && !ctypes.IsInteger(it) {
		c.errorf(x.Index.Pos(), "array index must be an integer, have %s", it)
	}
	switch t := bt.(type) {
	case *ctypes.Array:
		return t.Elem
	case *ctypes.Pointer:
		return t.Elem
	default:
		if bt != nil {
			c.errorf(x.X.Pos(), "cannot index non-array type %s", bt)
		}
		return ctypes.IntType
	}
}

func (c *checker) typeMember(x *cast.MemberExpr) ctypes.Type {
	bt := c.checkExpr(x.X)
	if bt == nil {
		return nil
	}
	var st *ctypes.Struct
	if x.Arrow {
		p, ok := bt.(*ctypes.Pointer)
		if !ok {
			c.errorf(x.DotPos, "-> on non-pointer type %s", bt)
			return ctypes.IntType
		}
		st, ok = p.Elem.(*ctypes.Struct)
		if !ok {
			c.errorf(x.DotPos, "-> on pointer to non-struct type %s", bt)
			return ctypes.IntType
		}
	} else {
		var ok bool
		st, ok = bt.(*ctypes.Struct)
		if !ok {
			c.errorf(x.DotPos, ". on non-struct type %s", bt)
			return ctypes.IntType
		}
	}
	f, ok := st.FieldByName(x.Name)
	if !ok {
		c.errorf(x.DotPos, "no field %q in %s", x.Name, st)
		return ctypes.IntType
	}
	return f.Type
}

func (c *checker) requireLvalue(e cast.Expr) {
	switch x := cast.Unparen(e).(type) {
	case *cast.Ident:
		if _, isFn := c.prog.Uses[x].(*Function); isFn {
			c.errorf(x.NamePos, "function %q is not an lvalue", x.Name)
		}
	case *cast.IndexExpr, *cast.MemberExpr:
	case *cast.UnaryExpr:
		if x.Op != ctoken.STAR {
			c.errorf(e.Pos(), "expression is not an lvalue")
		}
	default:
		c.errorf(e.Pos(), "expression is not an lvalue")
	}
}

// decay converts array types to pointers for rvalue contexts.
func decay(t ctypes.Type) ctypes.Type {
	if a, ok := t.(*ctypes.Array); ok {
		return &ctypes.Pointer{Elem: a.Elem}
	}
	return t
}

func isArith(t ctypes.Type) bool { return ctypes.IsInteger(t) || ctypes.IsFloat(t) }

// usualArith implements the usual arithmetic conversions (simplified).
func usualArith(a, b ctypes.Type) ctypes.Type {
	rank := func(t ctypes.Type) int {
		bt, ok := t.(*ctypes.Basic)
		if !ok {
			return 0
		}
		switch bt.Kind {
		case ctypes.Double:
			return 10
		case ctypes.Float:
			return 9
		case ctypes.ULong:
			return 8
		case ctypes.Long:
			return 7
		case ctypes.UInt:
			return 6
		default:
			return 5 // int and narrower promote to int
		}
	}
	ra, rb := rank(a), rank(b)
	if ra == 0 || rb == 0 {
		if ra >= rb {
			return a
		}
		return b
	}
	hi := a
	if rb > ra {
		hi = b
	}
	if rank(hi) <= 5 {
		return ctypes.IntType
	}
	return hi
}
