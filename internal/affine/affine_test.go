package affine

import (
	"testing"
	"testing/quick"
)

func TestExprArithmetic(t *testing.T) {
	x, y := Var(1), Var(2)
	e := NewVarExpr(x).Scale(2).Add(NewVarExpr(y)).Add(NewExpr(3)) // 2x+y+3
	f := e.Sub(NewVarExpr(y))                                      // 2x+3
	if f.coef(y) != 0 {
		t.Errorf("y coefficient = %d, want 0", f.coef(y))
	}
	if f.coef(x) != 2 || f.Const != 3 {
		t.Errorf("got %v, want 2*x1+3", f)
	}
}

func TestInfeasibleSimple(t *testing.T) {
	x := Var(1)
	tests := []struct {
		name string
		sys  func() *System
		want bool // infeasible?
	}{
		{
			"x>=0 and x<=-1", func() *System {
				s := &System{}
				s.Add(GE(NewVarExpr(x), NewExpr(0)))
				s.Add(LE(NewVarExpr(x), NewExpr(-1)))
				return s
			}, true,
		},
		{
			"x>=0 and x<=10", func() *System {
				s := &System{}
				s.Add(GE(NewVarExpr(x), NewExpr(0)))
				s.Add(LE(NewVarExpr(x), NewExpr(10)))
				return s
			}, false,
		},
		{
			"0<=x<10 and x>=10", func() *System {
				s := &System{}
				s.Add(GE(NewVarExpr(x), NewExpr(0)))
				s.Add(LT(NewVarExpr(x), NewExpr(10)))
				s.Add(GE(NewVarExpr(x), NewExpr(10)))
				return s
			}, true,
		},
		{
			"constant contradiction", func() *System {
				s := &System{}
				s.Add(LE(NewExpr(5), NewExpr(3)))
				return s
			}, true,
		},
		{
			"empty system", func() *System { return &System{} }, false,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.sys().Infeasible(); got != tc.want {
				t.Errorf("Infeasible() = %v, want %v (system: %s)", got, tc.want, tc.sys())
			}
		})
	}
}

// TestInfeasibleTwoVars exercises elimination with coupled variables:
// i in [0,9], j = i+1, j >= 11 is impossible; j >= 10 is possible.
func TestInfeasibleTwoVars(t *testing.T) {
	i, j := Var(1), Var(2)
	base := func() *System {
		s := &System{}
		s.Add(GE(NewVarExpr(i), NewExpr(0)))
		s.Add(LE(NewVarExpr(i), NewExpr(9)))
		s.Add(EQ(NewVarExpr(j), NewVarExpr(i).Add(NewExpr(1)))...)
		return s
	}
	s1 := base()
	s1.Add(GE(NewVarExpr(j), NewExpr(11)))
	if !s1.Infeasible() {
		t.Errorf("j=i+1, i<=9, j>=11 should be infeasible")
	}
	s2 := base()
	s2.Add(GE(NewVarExpr(j), NewExpr(10)))
	if s2.Infeasible() {
		t.Errorf("j=i+1, i<=9, j>=10 should be feasible (i=9)")
	}
}

// TestIntegerTightening checks the gcd/floor normalization: 2x <= 1 and
// 2x >= 1 has the rational solution x=1/2 but no integer solution.
func TestIntegerTightening(t *testing.T) {
	x := Var(1)
	s := &System{}
	s.Add(LE(NewVarExpr(x).Scale(2), NewExpr(1)))
	s.Add(GE(NewVarExpr(x).Scale(2), NewExpr(1)))
	if !s.Infeasible() {
		t.Errorf("2x=1 should have no integer solution")
	}
}

// TestArrayBoundsPattern mirrors the A1/A2 use: access a[i+k] in a loop
// 0<=i<n with n<=N-k is safe; without the n bound it is not provably safe.
func TestArrayBoundsPattern(t *testing.T) {
	i, n := Var(1), Var(2)
	const N, k = 16, 4
	guard := func() *System {
		s := &System{}
		s.Add(GE(NewVarExpr(i), NewExpr(0)))
		s.Add(LT(NewVarExpr(i), NewVarExpr(n)))
		return s
	}
	idx := NewVarExpr(i).Add(NewExpr(k))

	// With n <= N-k: idx >= N must be infeasible.
	s := guard()
	s.Add(LE(NewVarExpr(n), NewExpr(N-k)))
	s.Add(GE(idx, NewExpr(N)))
	if !s.Infeasible() {
		t.Errorf("guarded access should be provably in bounds")
	}

	// Without the n bound: idx >= N is feasible — a potential violation.
	s2 := guard()
	s2.Add(GE(idx, NewExpr(N)))
	if s2.Infeasible() {
		t.Errorf("unguarded access must not be provably in bounds")
	}
}

// Property: a box system 0<=x<=hi is feasible for hi>=0 and infeasible for
// hi<0, no matter how the bound is scaled.
func TestQuickBoxFeasibility(t *testing.T) {
	f := func(hiRaw int16, scaleRaw uint8) bool {
		hi := int64(hiRaw)
		scale := int64(scaleRaw%7) + 1
		x := Var(1)
		s := &System{}
		s.Add(GE(NewVarExpr(x).Scale(scale), NewExpr(0)))
		s.Add(LE(NewVarExpr(x).Scale(scale), NewExpr(hi*scale)))
		return s.Infeasible() == (hi < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adding constraints never turns an infeasible system feasible.
func TestQuickMonotonicity(t *testing.T) {
	f := func(a, b int8) bool {
		x := Var(1)
		s := &System{}
		s.Add(GE(NewVarExpr(x), NewExpr(int64(a))))
		s.Add(LE(NewVarExpr(x), NewExpr(int64(a)-1))) // always infeasible
		s.Add(LE(NewVarExpr(x), NewExpr(int64(b))))
		return s.Infeasible()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
