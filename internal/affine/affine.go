// Package affine implements the linear-constraint machinery behind
// SafeFlow's array restrictions A1/A2 (paper §3.2): affine expressions
// over symbolic variables, inequality systems, and a Fourier–Motzkin
// eliminator with integer tightening standing in for the Omega solver the
// paper uses.
//
// Soundness direction: Infeasible() returning true is exact (the integer
// system has no solution, so the guarded access cannot go out of bounds);
// returning false is conservative (rational feasibility does not always
// imply an integer point, so the checker may report a violation that
// cannot actually occur — a false positive, never a false negative).
package affine

import (
	"fmt"
	"sort"
	"strings"
)

// Var identifies a symbolic integer variable.
type Var int

// Expr is an affine expression: sum of coefficient*variable plus a
// constant. The zero value is the constant 0.
type Expr struct {
	Coef  map[Var]int64
	Const int64
}

// NewExpr returns the constant expression c.
func NewExpr(c int64) Expr { return Expr{Const: c} }

// NewVarExpr returns the expression 1*v.
func NewVarExpr(v Var) Expr { return Expr{Coef: map[Var]int64{v: 1}} }

// clone copies the expression.
func (e Expr) clone() Expr {
	out := Expr{Const: e.Const}
	if len(e.Coef) > 0 {
		out.Coef = make(map[Var]int64, len(e.Coef))
		for v, c := range e.Coef {
			out.Coef[v] = c
		}
	}
	return out
}

// Add returns e + f.
func (e Expr) Add(f Expr) Expr {
	out := e.clone()
	out.Const += f.Const
	for v, c := range f.Coef {
		out.setCoef(v, out.coef(v)+c)
	}
	return out
}

// Sub returns e - f.
func (e Expr) Sub(f Expr) Expr { return e.Add(f.Scale(-1)) }

// Scale returns k*e.
func (e Expr) Scale(k int64) Expr {
	out := Expr{Const: e.Const * k}
	if len(e.Coef) > 0 {
		out.Coef = make(map[Var]int64, len(e.Coef))
		for v, c := range e.Coef {
			if c*k != 0 {
				out.Coef[v] = c * k
			}
		}
	}
	return out
}

func (e Expr) coef(v Var) int64 { return e.Coef[v] }

func (e *Expr) setCoef(v Var, c int64) {
	if e.Coef == nil {
		e.Coef = make(map[Var]int64)
	}
	if c == 0 {
		delete(e.Coef, v)
		return
	}
	e.Coef[v] = c
}

// IsConst reports whether the expression has no variables.
func (e Expr) IsConst() bool { return len(e.Coef) == 0 }

// Vars returns the variables with nonzero coefficients, sorted.
func (e Expr) Vars() []Var {
	out := make([]Var, 0, len(e.Coef))
	for v := range e.Coef {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the expression.
func (e Expr) String() string {
	var sb strings.Builder
	for i, v := range e.Vars() {
		c := e.Coef[v]
		if i > 0 && c >= 0 {
			sb.WriteByte('+')
		}
		if c == 1 {
			fmt.Fprintf(&sb, "x%d", v)
		} else if c == -1 {
			fmt.Fprintf(&sb, "-x%d", v)
		} else {
			fmt.Fprintf(&sb, "%d*x%d", c, v)
		}
	}
	if sb.Len() == 0 {
		return fmt.Sprintf("%d", e.Const)
	}
	if e.Const > 0 {
		fmt.Fprintf(&sb, "+%d", e.Const)
	} else if e.Const < 0 {
		fmt.Fprintf(&sb, "%d", e.Const)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Systems

// Constraint asserts Expr <= 0 over the integers.
type Constraint struct {
	E Expr
}

// String renders the constraint.
func (c Constraint) String() string { return c.E.String() + " <= 0" }

// LE builds the constraint a <= b, i.e. a-b <= 0.
func LE(a, b Expr) Constraint { return Constraint{E: a.Sub(b)} }

// LT builds a < b over the integers, i.e. a-b+1 <= 0.
func LT(a, b Expr) Constraint {
	e := a.Sub(b)
	e.Const++
	return Constraint{E: e}
}

// GE builds a >= b.
func GE(a, b Expr) Constraint { return LE(b, a) }

// GT builds a > b.
func GT(a, b Expr) Constraint { return LT(b, a) }

// EQ builds a == b as the pair a<=b, b<=a.
func EQ(a, b Expr) []Constraint { return []Constraint{LE(a, b), LE(b, a)} }

// System is a conjunction of constraints.
type System struct {
	Cons []Constraint
}

// Add appends constraints.
func (s *System) Add(cs ...Constraint) { s.Cons = append(s.Cons, cs...) }

// Clone copies the system.
func (s *System) Clone() *System {
	out := &System{Cons: make([]Constraint, len(s.Cons))}
	for i, c := range s.Cons {
		out.Cons[i] = Constraint{E: c.E.clone()}
	}
	return out
}

// String renders the system.
func (s *System) String() string {
	var parts []string
	for _, c := range s.Cons {
		parts = append(parts, c.String())
	}
	return strings.Join(parts, " && ")
}

// maxConstraints bounds Fourier–Motzkin blowup; systems beyond the bound
// are conservatively reported feasible.
const maxConstraints = 4096

// Infeasible reports whether the system has no integer solution. True is
// exact; false is conservative (see the package comment).
func (s *System) Infeasible() bool {
	cons := make([]Expr, 0, len(s.Cons))
	for _, c := range s.Cons {
		cons = append(cons, normalize(c.E))
	}

	for {
		// Constant contradictions?
		vars := map[Var]bool{}
		for _, e := range cons {
			if e.IsConst() {
				if e.Const > 0 {
					return true
				}
				continue
			}
			for v := range e.Coef {
				vars[v] = true
			}
		}
		if len(vars) == 0 {
			return false
		}
		// Pick the variable appearing in the fewest upper×lower products.
		best, bestCost := Var(-1), int(^uint(0)>>1)
		for v := range vars {
			up, lo := 0, 0
			for _, e := range cons {
				switch {
				case e.coef(v) > 0:
					up++
				case e.coef(v) < 0:
					lo++
				}
			}
			cost := up * lo
			if cost < bestCost || (cost == bestCost && v < best) {
				best, bestCost = v, cost
			}
		}
		cons = eliminate(cons, best)
		if len(cons) > maxConstraints {
			return false // give up conservatively
		}
	}
}

// eliminate removes variable v by Fourier–Motzkin combination.
func eliminate(cons []Expr, v Var) []Expr {
	var uppers, lowers, rest []Expr
	for _, e := range cons {
		switch {
		case e.coef(v) > 0:
			uppers = append(uppers, e) // a*v + r <= 0, a>0 → v <= -r/a
		case e.coef(v) < 0:
			lowers = append(lowers, e) // -b*v + r <= 0, b>0 → v >= r/b
		default:
			rest = append(rest, e)
		}
	}
	out := rest
	for _, up := range uppers {
		a := up.coef(v)
		for _, lo := range lowers {
			b := -lo.coef(v)
			// b*up + a*lo eliminates v: b*(a v + ru) + a*(-b v + rl) <= 0.
			combined := up.Scale(b).Add(lo.Scale(a))
			combined.setCoef(v, 0)
			out = append(out, normalize(combined))
		}
	}
	return out
}

// normalize divides by the gcd of the variable coefficients and floors the
// constant — the integer tightening that makes FM exact on the unit-
// coefficient systems array subscripts produce.
func normalize(e Expr) Expr {
	g := int64(0)
	for _, c := range e.Coef {
		g = gcd(g, abs(c))
	}
	if g <= 1 {
		return e
	}
	out := Expr{Coef: make(map[Var]int64, len(e.Coef))}
	for v, c := range e.Coef {
		out.Coef[v] = c / g
	}
	// e' * g + const <= 0  →  e' <= floor(-const/g)  →  e' + ceil(const/g) <= 0.
	out.Const = ceilDiv(e.Const, g)
	return out
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b > 0 {
		q++
	}
	return q
}
