// Package cfgraph provides control-flow-graph analyses over ir functions:
// reverse postorder, dominator trees (Cooper–Harvey–Kennedy), dominance
// frontiers (for SSA construction), post-dominators, and control
// dependence (post-dominance frontiers) used to classify the paper's
// control-dependence false positives.
package cfgraph

import (
	"safeflow/internal/ir"
)

// DomTree is the dominator tree of a function (or its reverse CFG when
// built with NewPostDomTree).
type DomTree struct {
	fn      *ir.Function
	order   []*ir.Block // reverse postorder (forward or reverse CFG)
	rpoNum  map[*ir.Block]int
	idom    map[*ir.Block]*ir.Block
	childs  map[*ir.Block][]*ir.Block
	reverse bool
	// virtualExit is non-nil for post-dominator trees: a synthetic sink that
	// post-dominates every return block.
	virtualExit *ir.Block
}

// NewDomTree computes the dominator tree from the entry block.
func NewDomTree(fn *ir.Function) *DomTree {
	t := &DomTree{fn: fn, reverse: false}
	t.build()
	return t
}

// NewPostDomTree computes the post-dominator tree (dominators of the
// reverse CFG, rooted at a virtual exit that all Ret/Unreachable blocks
// reach).
func NewPostDomTree(fn *ir.Function) *DomTree {
	t := &DomTree{fn: fn, reverse: true}
	t.virtualExit = &ir.Block{Label: "@exit", Fn: fn, Index: -1}
	t.build()
	return t
}

func (t *DomTree) succs(b *ir.Block) []*ir.Block {
	if b == t.virtualExit {
		if t.reverse {
			return t.exitBlocks()
		}
		return nil
	}
	if !t.reverse {
		return b.Succs
	}
	// Reverse CFG: successors are CFG predecessors; exit blocks gain the
	// virtual exit as a predecessor (i.e. preds in reverse orientation).
	return b.Preds
}

func (t *DomTree) preds(b *ir.Block) []*ir.Block {
	if !t.reverse {
		return b.Preds
	}
	out := b.Succs
	if t.isExit(b) {
		out = append(append([]*ir.Block{}, out...), t.virtualExit)
	}
	return out
}

func (t *DomTree) isExit(b *ir.Block) bool {
	switch b.Term().(type) {
	case *ir.Ret, *ir.Unreachable:
		return true
	case nil:
		return true // malformed/unterminated; treat as exit for robustness
	}
	// Infinite loops never reach an exit; they're handled by also treating
	// blocks with no path to a return as exits during build (see below).
	return false
}

func (t *DomTree) exitBlocks() []*ir.Block {
	var out []*ir.Block
	for _, b := range t.fn.Blocks {
		if t.isExit(b) {
			out = append(out, b)
		}
	}
	return out
}

func (t *DomTree) root() *ir.Block {
	if t.reverse {
		return t.virtualExit
	}
	return t.fn.Entry()
}

// build runs the Cooper–Harvey–Kennedy iterative algorithm.
func (t *DomTree) build() {
	root := t.root()
	t.order = t.reversePostorder(root)
	t.rpoNum = make(map[*ir.Block]int, len(t.order))
	for i, b := range t.order {
		t.rpoNum[b] = i
	}

	// For post-dominance with infinite loops, some blocks are unreachable
	// from the virtual exit in the reverse CFG; connect them by treating
	// loop headers of unreachable cycles as extra exits. Simpler and sound
	// for control dependence: append any unvisited block directly under the
	// root.
	t.idom = map[*ir.Block]*ir.Block{root: root}
	changed := true
	for changed {
		changed = false
		for _, b := range t.order {
			if b == root {
				continue
			}
			var newIdom *ir.Block
			for _, p := range t.preds(b) {
				if _, ok := t.idom[p]; !ok {
					continue
				}
				if _, seen := t.rpoNum[p]; !seen {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom == nil {
				continue
			}
			if t.idom[b] != newIdom {
				t.idom[b] = newIdom
				changed = true
			}
		}
	}

	// Any block not reached (unreachable code, or no path to exit in the
	// reverse graph) hangs off the root.
	for _, b := range t.fn.Blocks {
		if _, ok := t.idom[b]; !ok {
			t.idom[b] = root
		}
	}

	t.childs = make(map[*ir.Block][]*ir.Block)
	for b, d := range t.idom {
		if b != d {
			t.childs[d] = append(t.childs[d], b)
		}
	}
}

func (t *DomTree) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		na, aok := t.rpoNum[a]
		nb, bok := t.rpoNum[b]
		if !aok || !bok {
			return t.root()
		}
		for na > nb {
			a = t.idom[a]
			na = t.rpoNum[a]
		}
		for nb > na {
			b = t.idom[b]
			nb = t.rpoNum[b]
		}
	}
	return a
}

func (t *DomTree) reversePostorder(root *ir.Block) []*ir.Block {
	var order []*ir.Block
	seen := make(map[*ir.Block]bool)
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		seen[b] = true
		for _, s := range t.succs(b) {
			if !seen[s] {
				visit(s)
			}
		}
		order = append(order, b)
	}
	if root != nil {
		visit(root)
	}
	// Reverse to get reverse postorder.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// IDom returns the immediate dominator of b (or b itself for the root).
func (t *DomTree) IDom(b *ir.Block) *ir.Block { return t.idom[b] }

// Children returns the dominator-tree children of b.
func (t *DomTree) Children(b *ir.Block) []*ir.Block { return t.childs[b] }

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		next := t.idom[b]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// RPO returns the blocks in reverse postorder of the (possibly reverse)
// CFG, excluding any virtual exit.
func (t *DomTree) RPO() []*ir.Block {
	var out []*ir.Block
	for _, b := range t.order {
		if b != t.virtualExit {
			out = append(out, b)
		}
	}
	return out
}

// Frontiers computes the dominance frontier of every block (Cytron et
// al.), used for phi placement during mem2reg.
func (t *DomTree) Frontiers() map[*ir.Block][]*ir.Block {
	df := make(map[*ir.Block][]*ir.Block)
	add := func(b, f *ir.Block) {
		for _, x := range df[b] {
			if x == f {
				return
			}
		}
		df[b] = append(df[b], f)
	}
	for _, b := range t.fn.Blocks {
		preds := t.preds(b)
		if len(preds) < 2 {
			continue
		}
		for _, p := range preds {
			runner := p
			for runner != nil && runner != t.idom[b] {
				add(runner, b)
				next := t.idom[runner]
				if next == runner {
					break
				}
				runner = next
			}
		}
	}
	return df
}

// ControlDeps computes control dependence: ControlDeps(fn)[B] lists the
// (branch block, condition value) pairs B is control dependent on, via the
// classic Ferrante–Ottenstein–Warren construction on the post-dominator
// tree: B is control dependent on A iff A has a successor S such that B
// post-dominates S but B does not post-dominate A.
type ControlDep struct {
	Branch *ir.Block // the block whose conditional branch controls execution
	Cond   ir.Value  // the branch condition
}

// ControlDeps computes the control-dependence relation for fn.
func ControlDeps(fn *ir.Function) map[*ir.Block][]ControlDep {
	pdt := NewPostDomTree(fn)
	deps := make(map[*ir.Block][]ControlDep)
	for _, a := range fn.Blocks {
		br, ok := a.Term().(*ir.Br)
		if !ok || br.Cond == nil {
			continue
		}
		for _, s := range a.Succs {
			// Walk up the post-dominator tree from s to (exclusive) the
			// post-dominator of a; every node on the way is control
			// dependent on a.
			runner := s
			for runner != nil && runner != pdt.IDom(a) && runner != pdt.virtualExit {
				if runner != a || true { // a may be control dependent on itself (loops)
					deps[runner] = appendDep(deps[runner], ControlDep{Branch: a, Cond: br.Cond})
				}
				next := pdt.IDom(runner)
				if next == runner {
					break
				}
				runner = next
			}
		}
	}
	return deps
}

func appendDep(list []ControlDep, d ControlDep) []ControlDep {
	for _, x := range list {
		if x.Branch == d.Branch {
			return list
		}
	}
	return append(list, d)
}
