package cfgraph

import (
	"testing"

	"safeflow/internal/ctypes"
	"safeflow/internal/ir"
)

// buildCFG constructs a function with the given block labels and edges.
func buildCFG(labels []string, edges [][2]int, terminators map[int]string) (*ir.Function, []*ir.Block) {
	fn := &ir.Function{Name: "t", Sig: &ctypes.Func{Result: ctypes.VoidType}}
	blocks := make([]*ir.Block, len(labels))
	for i, l := range labels {
		b := fn.NewBlock(l)
		blocks[i] = b
	}
	succs := make(map[int][]int)
	for _, e := range edges {
		succs[e[0]] = append(succs[e[0]], e[1])
	}
	for i, b := range blocks {
		out := succs[i]
		switch len(out) {
		case 0:
			ir.Terminate(b, &ir.Ret{})
		case 1:
			ir.Terminate(b, &ir.Br{Then: blocks[out[0]]})
		case 2:
			cond := &ir.Cmp{Op: ir.NE, X: &ir.ConstInt{Val: 1, Ty: ctypes.IntType}, Y: &ir.ConstInt{Ty: ctypes.IntType}}
			b.Append(cond)
			ir.Terminate(b, &ir.Br{Cond: cond, Then: blocks[out[0]], Else: blocks[out[1]]})
		}
	}
	_ = terminators
	return fn, blocks
}

// Diamond: 0 -> 1,2 -> 3.
func diamond() (*ir.Function, []*ir.Block) {
	return buildCFG(
		[]string{"entry", "then", "els", "merge"},
		[][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
		nil,
	)
}

func TestDomTreeDiamond(t *testing.T) {
	fn, b := diamond()
	dt := NewDomTree(fn)
	if dt.IDom(b[1]) != b[0] || dt.IDom(b[2]) != b[0] {
		t.Errorf("idom(then)=%v idom(else)=%v, want entry", dt.IDom(b[1]).Label, dt.IDom(b[2]).Label)
	}
	if dt.IDom(b[3]) != b[0] {
		t.Errorf("idom(merge) = %v, want entry", dt.IDom(b[3]).Label)
	}
	if !dt.Dominates(b[0], b[3]) {
		t.Error("entry must dominate merge")
	}
	if dt.Dominates(b[1], b[3]) {
		t.Error("then must not dominate merge")
	}
	if !dt.Dominates(b[3], b[3]) {
		t.Error("domination is reflexive")
	}
}

func TestDomFrontierDiamond(t *testing.T) {
	fn, b := diamond()
	df := NewDomTree(fn).Frontiers()
	hasMerge := func(blk *ir.Block) bool {
		for _, f := range df[blk] {
			if f == b[3] {
				return true
			}
		}
		return false
	}
	if !hasMerge(b[1]) || !hasMerge(b[2]) {
		t.Errorf("DF(then)=%v DF(else)=%v, want both to contain merge", df[b[1]], df[b[2]])
	}
	if len(df[b[3]]) != 0 {
		t.Errorf("DF(merge) = %v, want empty", df[b[3]])
	}
}

// Loop: 0 -> 1; 1 -> 2,3; 2 -> 1; 3 exits.
func loopCFG() (*ir.Function, []*ir.Block) {
	return buildCFG(
		[]string{"entry", "header", "body", "exit"},
		[][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 1}},
		nil,
	)
}

func TestDomTreeLoop(t *testing.T) {
	fn, b := loopCFG()
	dt := NewDomTree(fn)
	if dt.IDom(b[2]) != b[1] || dt.IDom(b[3]) != b[1] {
		t.Errorf("loop idoms wrong: body<-%s exit<-%s", dt.IDom(b[2]).Label, dt.IDom(b[3]).Label)
	}
	// The header is its own frontier (back edge).
	df := dt.Frontiers()
	found := false
	for _, f := range df[b[2]] {
		if f == b[1] {
			found = true
		}
	}
	if !found {
		t.Errorf("DF(body) = %v, want header", df[b[2]])
	}
}

func TestPostDomDiamond(t *testing.T) {
	fn, b := diamond()
	pdt := NewPostDomTree(fn)
	// merge post-dominates everything.
	if pdt.IDom(b[1]) != b[3] || pdt.IDom(b[2]) != b[3] {
		t.Errorf("postdom: then<-%s else<-%s, want merge", pdt.IDom(b[1]).Label, pdt.IDom(b[2]).Label)
	}
	if pdt.IDom(b[0]) != b[3] {
		t.Errorf("postdom(entry) = %s, want merge", pdt.IDom(b[0]).Label)
	}
}

func TestControlDepsDiamond(t *testing.T) {
	fn, b := diamond()
	deps := ControlDeps(fn)
	for _, arm := range []*ir.Block{b[1], b[2]} {
		if len(deps[arm]) != 1 || deps[arm][0].Branch != b[0] {
			t.Errorf("deps(%s) = %v, want [entry]", arm.Label, deps[arm])
		}
	}
	if len(deps[b[3]]) != 0 {
		t.Errorf("deps(merge) = %v, want none (it post-dominates the branch)", deps[b[3]])
	}
}

func TestControlDepsLoop(t *testing.T) {
	fn, b := loopCFG()
	deps := ControlDeps(fn)
	// The body and the header itself are control dependent on the header's
	// branch (classic loop self-dependence).
	if len(deps[b[2]]) == 0 {
		t.Errorf("loop body has no control deps")
	}
	foundSelf := false
	for _, d := range deps[b[1]] {
		if d.Branch == b[1] {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Errorf("loop header not control dependent on itself: %v", deps[b[1]])
	}
	if len(deps[b[0]]) != 0 {
		t.Errorf("entry has control deps: %v", deps[b[0]])
	}
}

// Triangle: 0 -> 1,2; 1 -> 2.
func TestControlDepsTriangle(t *testing.T) {
	fn, b := buildCFG(
		[]string{"entry", "then", "join"},
		[][2]int{{0, 1}, {0, 2}, {1, 2}},
		nil,
	)
	deps := ControlDeps(fn)
	if len(deps[b[1]]) != 1 {
		t.Errorf("deps(then) = %v, want the entry branch", deps[b[1]])
	}
	if len(deps[b[2]]) != 0 {
		t.Errorf("deps(join) = %v, want none", deps[b[2]])
	}
}

func TestInfiniteLoopPostDom(t *testing.T) {
	// 0 -> 1; 1 -> 1 (no exit). Post-dominator computation must not hang
	// or crash; every block hangs off the virtual exit.
	fn := &ir.Function{Name: "inf", Sig: &ctypes.Func{Result: ctypes.VoidType}}
	b0 := fn.NewBlock("entry")
	b1 := fn.NewBlock("spin")
	ir.Terminate(b0, &ir.Br{Then: b1})
	ir.Terminate(b1, &ir.Br{Then: b1})
	pdt := NewPostDomTree(fn)
	if pdt.IDom(b1) == nil {
		t.Error("no idom for spinning block")
	}
	deps := ControlDeps(fn)
	_ = deps // must simply terminate
}

func TestRPOOrder(t *testing.T) {
	fn, b := diamond()
	dt := NewDomTree(fn)
	order := dt.RPO()
	pos := map[*ir.Block]int{}
	for i, blk := range order {
		pos[blk] = i
	}
	if pos[b[0]] != 0 {
		t.Errorf("entry not first in RPO")
	}
	if pos[b[3]] != len(order)-1 {
		t.Errorf("merge not last in RPO: %v", pos)
	}
}
