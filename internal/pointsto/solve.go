// Solvers for the points-to constraint system: an inclusion-based
// (Andersen) fixpoint and a unification-based (Steensgaard/DSA-style)
// union-find pass.

package pointsto

import (
	"safeflow/internal/ir"
)

// ---------------------------------------------------------------------------
// Subset (Andersen) solver — field-sensitive.

func (a *analyzer) solveSubset() *Result {
	res := &Result{
		mode:    ModeSubset,
		objects: a.objects,
		valPts:  make(map[ir.Value]map[Ref]bool),
		cellPts: make(map[Ref]map[Ref]bool),
		unknown: a.unknown,
	}
	// The unknown object's contents are unknown.
	res.addCell(Ref{Obj: a.unknown, Off: UnknownOffset}, Ref{Obj: a.unknown, Off: UnknownOffset})
	res.addVal(unknownVal{a.unknown}, Ref{Obj: a.unknown, Off: UnknownOffset})

	// Round-robin to fixpoint; constraint counts in the corpus are small
	// enough that the simple strategy is fast and obviously correct.
	for changed := true; changed; {
		changed = false
		for _, c := range a.cons {
			switch c.kind {
			case cAddr:
				changed = res.addVal(c.dst, c.ref) || changed
			case cCopy:
				for r := range res.valPts[c.src] {
					changed = res.addVal(c.dst, r) || changed
				}
			case cGEP:
				for r := range res.valPts[c.src] {
					changed = res.addVal(c.dst, shiftRef(r, c.delta)) || changed
				}
			case cLoad:
				for addr := range res.valPts[c.src] {
					for _, content := range res.cellContents(addr) {
						changed = res.addVal(c.dst, content) || changed
					}
				}
			case cStore:
				for addr := range res.valPts[c.dst] {
					for v := range res.valPts[c.src] {
						changed = res.addCell(addr, v) || changed
					}
				}
			}
		}
	}
	return res
}

func (r *Result) addVal(v ir.Value, ref Ref) bool {
	set, ok := r.valPts[v]
	if !ok {
		set = make(map[Ref]bool)
		r.valPts[v] = set
	}
	if set[ref] {
		return false
	}
	set[ref] = true
	return true
}

func (r *Result) addCell(addr, content Ref) bool {
	set, ok := r.cellPts[addr]
	if !ok {
		set = make(map[Ref]bool)
		r.cellPts[addr] = set
	}
	if set[content] {
		return false
	}
	set[content] = true
	return true
}

// cellContents reads the cell(s) named by addr: an exact offset reads its
// own cell plus the object's summary cell; an unknown offset reads every
// cell of the object.
func (r *Result) cellContents(addr Ref) []Ref {
	var out []Ref
	if addr.Off != UnknownOffset {
		for c := range r.cellPts[addr] {
			out = append(out, c)
		}
		for c := range r.cellPts[Ref{Obj: addr.Obj, Off: UnknownOffset}] {
			out = append(out, c)
		}
		return out
	}
	for cellAddr, set := range r.cellPts {
		if cellAddr.Obj != addr.Obj {
			continue
		}
		for c := range set {
			out = append(out, c)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Unification (Steensgaard) solver — field-insensitive, near-linear.

type node struct {
	parent  *node
	pointee *node
	objs    []*Object
}

func find(n *node) *node {
	for n.parent != n {
		n.parent = n.parent.parent
		n = n.parent
	}
	return n
}

type unifier struct {
	valNode map[ir.Value]*node
	objNode map[*Object]*node
}

func (u *unifier) fresh() *node {
	n := &node{}
	n.parent = n
	return n
}

func (u *unifier) nodeOfVal(v ir.Value) *node {
	if n, ok := u.valNode[v]; ok {
		return find(n)
	}
	n := u.fresh()
	u.valNode[v] = n
	return n
}

func (u *unifier) nodeOfObj(o *Object) *node {
	if n, ok := u.objNode[o]; ok {
		return find(n)
	}
	n := u.fresh()
	n.objs = []*Object{o}
	u.objNode[o] = n
	return n
}

// pointeeOf lazily materializes the pointee class of a node.
func (u *unifier) pointeeOf(n *node) *node {
	n = find(n)
	if n.pointee == nil {
		n.pointee = u.fresh()
	}
	return find(n.pointee)
}

// union merges two classes (and recursively their pointees — Steensgaard's
// conditional unification).
func (u *unifier) union(a, b *node) {
	a, b = find(a), find(b)
	if a == b {
		return
	}
	// Merge b into a.
	b.parent = a
	a.objs = append(a.objs, b.objs...)
	b.objs = nil
	switch {
	case a.pointee == nil:
		a.pointee = b.pointee
	case b.pointee != nil:
		pa, pb := find(a.pointee), find(b.pointee)
		if pa != pb {
			u.union(pa, pb)
		}
	}
}

func (a *analyzer) solveUnify() *Result {
	u := &unifier{
		valNode: make(map[ir.Value]*node),
		objNode: make(map[*Object]*node),
	}
	for _, c := range a.cons {
		switch c.kind {
		case cAddr:
			u.union(u.pointeeOf(u.nodeOfVal(c.dst)), u.nodeOfObj(c.ref.Obj))
		case cCopy, cGEP: // field-insensitive: GEP is a copy
			u.union(u.pointeeOf(u.nodeOfVal(c.dst)), u.pointeeOf(u.nodeOfVal(c.src)))
		case cLoad:
			srcPointee := u.pointeeOf(u.nodeOfVal(c.src))
			u.union(u.pointeeOf(u.nodeOfVal(c.dst)), u.pointeeOf(srcPointee))
		case cStore:
			dstPointee := u.pointeeOf(u.nodeOfVal(c.dst))
			u.union(u.pointeeOf(dstPointee), u.pointeeOf(u.nodeOfVal(c.src)))
		}
	}

	res := &Result{
		mode:    ModeUnify,
		objects: a.objects,
		valPts:  make(map[ir.Value]map[Ref]bool),
		cellPts: make(map[Ref]map[Ref]bool),
		unknown: a.unknown,
	}
	// Extract: pts(v) = objects in class(pointee(v)); cells likewise, all
	// at the summary offset (the unify mode is field-insensitive).
	for v := range u.valNode {
		pointee := u.pointeeOf(u.nodeOfVal(v))
		for _, o := range pointee.objs {
			res.addVal(v, Ref{Obj: o, Off: UnknownOffset})
		}
	}
	for o := range u.objNode {
		cellClass := u.pointeeOf(u.nodeOfObj(o))
		for _, content := range cellClass.objs {
			res.addCell(Ref{Obj: o, Off: UnknownOffset}, Ref{Obj: content, Off: UnknownOffset})
		}
	}
	res.addCell(Ref{Obj: a.unknown, Off: UnknownOffset}, Ref{Obj: a.unknown, Off: UnknownOffset})
	return res
}
