// Package pointsto implements SafeFlow's alias analysis. The paper uses
// Data Structure Analysis (DSA): a unification-based, field-sensitive,
// flow-insensitive points-to analysis. We provide the same sensitivity
// trade-off space with two interchangeable solvers over one constraint
// generator:
//
//   - ModeUnify (default): unification-based like DSA/Steensgaard — each
//     points-to set collapses into equivalence classes; near-linear time.
//   - ModeSubset: inclusion-based (Andersen) — more precise, slower; used
//     by the precision ablation benchmarks.
//
// Both are field-sensitive: abstract objects carry per-byte-offset cells,
// with a summary cell for statically-unknown offsets. The analysis is
// flow-insensitive (like DSA); context sensitivity in SafeFlow's phase 3
// comes from the value-flow summaries, not from aliasing, which the P2
// restriction keeps simple in the analyzed subset.
package pointsto

import (
	"fmt"
	"sort"

	"safeflow/internal/ctypes"
	"safeflow/internal/ir"
)

// Mode selects the solver.
type Mode int

// Solver modes.
const (
	ModeUnify Mode = iota + 1
	ModeSubset
)

// ObjKind classifies abstract memory objects.
type ObjKind int

// Object kinds.
const (
	ObjGlobal  ObjKind = iota + 1 // module global storage
	ObjStack                      // alloca site
	ObjShm                        // shared-memory attachment (shmat result)
	ObjOpaque                     // storage behind an external call's pointer result
	ObjString                     // string literal storage
	ObjUnknown                    // the conservative unknown object
)

var objKindNames = map[ObjKind]string{
	ObjGlobal: "global", ObjStack: "stack", ObjShm: "shm",
	ObjOpaque: "opaque", ObjString: "string", ObjUnknown: "unknown",
}

// Object is one abstract memory object.
type Object struct {
	Kind   ObjKind
	Name   string       // diagnostic label
	Global *ir.Global   // for ObjGlobal
	Site   ir.Instr     // allocation site (alloca/call)
	Fn     *ir.Function // owning function for stack objects
	id     int
}

// String implements fmt.Stringer.
func (o *Object) String() string { return fmt.Sprintf("%s:%s", objKindNames[o.Kind], o.Name) }

// UnknownOffset marks a statically-unresolved byte offset.
const UnknownOffset = int64(-1)

// Ref is a reference to an object at a byte offset (UnknownOffset for the
// whole-object summary).
type Ref struct {
	Obj *Object
	Off int64
}

// String implements fmt.Stringer.
func (r Ref) String() string {
	if r.Off == UnknownOffset {
		return r.Obj.String() + "+?"
	}
	return fmt.Sprintf("%s+%d", r.Obj, r.Off)
}

// ---------------------------------------------------------------------------
// Result

// Result exposes the analysis output.
type Result struct {
	mode    Mode
	objects []*Object
	valPts  map[ir.Value]map[Ref]bool
	cellPts map[Ref]map[Ref]bool
	unknown *Object
}

// Objects returns every abstract object (deterministically ordered).
func (r *Result) Objects() []*Object { return r.objects }

// PointsTo returns the refs a pointer value may reference.
func (r *Result) PointsTo(v ir.Value) []Ref { return sortRefs(r.valPts[v]) }

// CellPointsTo returns what the memory cell at ref may contain.
func (r *Result) CellPointsTo(ref Ref) []Ref { return sortRefs(r.cellPts[ref]) }

// MayAlias reports whether two pointer values may reference overlapping
// storage.
func (r *Result) MayAlias(a, b ir.Value) bool {
	pa, pb := r.valPts[a], r.valPts[b]
	for ra := range pa {
		for rb := range pb {
			if ra.Obj != rb.Obj {
				continue
			}
			if ra.Off == UnknownOffset || rb.Off == UnknownOffset || ra.Off == rb.Off {
				return true
			}
		}
	}
	return false
}

// PointsToUnknown reports whether v may reference the unknown object.
func (r *Result) PointsToUnknown(v ir.Value) bool {
	for ref := range r.valPts[v] {
		if ref.Obj.Kind == ObjUnknown {
			return true
		}
	}
	return false
}

func sortRefs(set map[Ref]bool) []Ref {
	out := make([]Ref, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj.id != out[j].Obj.id {
			return out[i].Obj.id < out[j].Obj.id
		}
		return out[i].Off < out[j].Off
	})
	return out
}

// ---------------------------------------------------------------------------
// Constraint generation

type constraintKind int

const (
	cAddr  constraintKind = iota + 1 // dst ⊇ {ref}
	cCopy                            // dst ⊇ src
	cGEP                             // dst ⊇ shift(src, delta)
	cLoad                            // dst ⊇ *src
	cStore                           // *dst ⊇ src
)

type constraint struct {
	kind  constraintKind
	dst   ir.Value
	src   ir.Value
	ref   Ref
	delta int64 // byte delta for cGEP; UnknownOffset if not static
}

type analyzer struct {
	m       *ir.Module
	mode    Mode
	cons    []constraint
	objects []*Object
	objFor  map[any]*Object // keyed by *ir.Global or ir.Instr
	unknown *Object
	strObj  *Object
}

// Analyze runs the analysis over the module.
func Analyze(m *ir.Module, mode Mode) *Result {
	a := &analyzer{m: m, mode: mode, objFor: make(map[any]*Object)}
	a.unknown = a.newObject(ObjUnknown, "?", nil, nil, nil)
	a.strObj = a.newObject(ObjString, "strings", nil, nil, nil)
	a.generate()
	if mode == ModeSubset {
		return a.solveSubset()
	}
	return a.solveUnify()
}

func (a *analyzer) newObject(kind ObjKind, name string, g *ir.Global, site ir.Instr, fn *ir.Function) *Object {
	o := &Object{Kind: kind, Name: name, Global: g, Site: site, Fn: fn, id: len(a.objects)}
	a.objects = append(a.objects, o)
	return o
}

func (a *analyzer) objForGlobal(g *ir.Global) *Object {
	if o, ok := a.objFor[g]; ok {
		return o
	}
	o := a.newObject(ObjGlobal, g.Name, g, nil, nil)
	a.objFor[g] = o
	return o
}

func (a *analyzer) objForSite(kind ObjKind, name string, site ir.Instr, fn *ir.Function) *Object {
	if o, ok := a.objFor[site]; ok {
		return o
	}
	o := a.newObject(kind, name, nil, site, fn)
	a.objFor[site] = o
	return o
}

// externReturnsFreshPointer lists external functions whose pointer result
// names fresh storage; shmat specifically names shared memory.
var externFresh = map[string]ObjKind{
	"shmat": ObjShm,
	"fopen": ObjOpaque,
	"fgets": ObjOpaque,
}

// externBenign lists externals that neither capture nor overwrite pointer
// arguments in ways that matter to aliasing.
var externBenign = map[string]bool{
	"printf": true, "fprintf": true, "sprintf": true, "sscanf": true,
	"fscanf": true, "puts": true, "perror": true, "fclose": true,
	"strcmp": true, "strncmp": true, "strlen": true, "atoi": true, "atof": true,
	"fabs": true, "sqrt": true, "sin": true, "cos": true, "tan": true,
	"atan2": true, "pow": true, "exp": true, "log": true, "floor": true, "ceil": true,
	"kill": true, "getpid": true, "exit": true, "abort": true, "fork": true,
	"Lock": true, "Unlock": true, "wait": true, "usleep": true, "sleep": true,
	"shmget": true, "shmdt": true, "shmctl": true, "semget": true, "semop": true,
	"socket": true, "bind": true, "connect": true, "close": true,
	"recv": true, "send": true, "read": true, "write": true,
	"readSensor": true, "writeDA": true, "gettimeofus": true,
	"memset": true, "strcpy": true, "strncpy": true,
	"InitCheck": true, "__safeflow_assert_safe": true,
	"sem_wait": true, "sem_post": true, "nanosleep": true,
}

func (a *analyzer) generate() {
	for _, f := range a.m.Funcs {
		if f.IsDecl {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				a.genInstr(f, in)
			}
		}
	}
}

func (a *analyzer) genInstr(f *ir.Function, in ir.Instr) {
	switch x := in.(type) {
	case *ir.Alloca:
		obj := a.objForSite(ObjStack, f.Name+"."+x.VarName, x, f)
		a.cons = append(a.cons, constraint{kind: cAddr, dst: x, ref: Ref{Obj: obj, Off: 0}})
	case *ir.Load:
		a.genAddrBase(x.Addr)
		if pointerish(x.Type()) {
			a.cons = append(a.cons, constraint{kind: cLoad, dst: x, src: x.Addr})
		}
	case *ir.Store:
		a.genAddrBase(x.Addr)
		a.genAddrBase(x.Val)
		if pointerish(x.Val.Type()) {
			a.cons = append(a.cons, constraint{kind: cStore, dst: x.Addr, src: x.Val})
		}
	case *ir.GEP:
		a.genAddrBase(x.Base)
		a.cons = append(a.cons, constraint{kind: cGEP, dst: x, src: x.Base, delta: gepDelta(x)})
	case *ir.Cast:
		if pointerish(x.To) {
			switch x.Kind {
			case ir.Bitcast:
				a.genAddrBase(x.X)
				a.cons = append(a.cons, constraint{kind: cCopy, dst: x, src: x.X})
			case ir.IntToPtr:
				// Integer-born pointers reference the unknown object unless
				// they are the literal null constant.
				if c, ok := x.X.(*ir.ConstInt); !ok || c.Val != 0 {
					a.cons = append(a.cons, constraint{kind: cAddr, dst: x, ref: Ref{Obj: a.unknown, Off: UnknownOffset}})
				}
			}
		}
	case *ir.Phi:
		if pointerish(x.Ty) {
			for _, e := range x.Edges {
				a.genAddrBase(e.Val)
				a.cons = append(a.cons, constraint{kind: cCopy, dst: x, src: e.Val})
			}
		}
	case *ir.Call:
		a.genCall(f, x)
	case *ir.Ret:
		if x.X != nil && pointerish(x.X.Type()) {
			a.genAddrBase(x.X)
			// ret edges are wired in genCall via a per-function return var;
			// model the return value as a copy into a synthetic value keyed
			// by the function itself.
			a.cons = append(a.cons, constraint{kind: cCopy, dst: retVar{f}, src: x.X})
		}
	}
}

// retVar is a synthetic ir.Value standing for "the return value of fn".
type retVar struct{ fn *ir.Function }

// Type implements ir.Value.
func (r retVar) Type() ctypes.Type { return r.fn.Sig.Result }

// Ident implements ir.Value.
func (r retVar) Ident() string { return "@ret." + r.fn.Name }

// genAddrBase introduces address-of constraints for direct global and
// string operands (they are values, not instructions, so no genInstr case
// sees them).
func (a *analyzer) genAddrBase(v ir.Value) {
	switch x := v.(type) {
	case *ir.Global:
		obj := a.objForGlobal(x)
		a.cons = append(a.cons, constraint{kind: cAddr, dst: x, ref: Ref{Obj: obj, Off: 0}})
	case *ir.ConstStr:
		a.cons = append(a.cons, constraint{kind: cAddr, dst: x, ref: Ref{Obj: a.strObj, Off: UnknownOffset}})
	}
}

func (a *analyzer) genCall(f *ir.Function, call *ir.Call) {
	callee := call.Callee
	for _, arg := range call.Args {
		a.genAddrBase(arg)
	}
	if callee.IsDecl {
		if kind, fresh := externFresh[callee.Name]; fresh {
			obj := a.objForSite(kind, callee.Name+"@"+call.Pos().String(), call, f)
			a.cons = append(a.cons, constraint{kind: cAddr, dst: call, ref: Ref{Obj: obj, Off: 0}})
			return
		}
		if externBenign[callee.Name] {
			return
		}
		// Unknown external: pointer args may be captured and overwritten;
		// pointer results are unknown.
		for _, arg := range call.Args {
			if pointerish(arg.Type()) {
				a.cons = append(a.cons, constraint{kind: cStore, dst: arg, src: unknownVal{a.unknown}})
			}
		}
		if pointerish(call.Type()) {
			a.cons = append(a.cons, constraint{kind: cAddr, dst: call, ref: Ref{Obj: a.unknown, Off: UnknownOffset}})
		}
		return
	}
	// Defined callee: parameter and return plumbing (context-insensitive).
	for i, arg := range call.Args {
		if i < len(callee.Params) && pointerish(arg.Type()) {
			a.cons = append(a.cons, constraint{kind: cCopy, dst: callee.Params[i], src: arg})
		}
	}
	if pointerish(call.Type()) {
		a.cons = append(a.cons, constraint{kind: cCopy, dst: call, src: retVar{callee}})
	}
}

// unknownVal is a synthetic value whose points-to set is {unknown}.
type unknownVal struct{ obj *Object }

// Type implements ir.Value.
func (u unknownVal) Type() ctypes.Type { return &ctypes.Pointer{Elem: ctypes.VoidType} }

// Ident implements ir.Value.
func (u unknownVal) Ident() string { return "@unknown" }

// pointerish reports whether a type can carry a pointer (pointers and
// aggregates containing them are handled; plain scalars are not tracked).
func pointerish(t ctypes.Type) bool {
	switch tt := t.(type) {
	case *ctypes.Pointer:
		return true
	case *ctypes.Array:
		return pointerish(tt.Elem)
	case *ctypes.Struct:
		for _, f := range tt.Fields {
			if pointerish(f.Type) {
				return true
			}
		}
	}
	return false
}

// gepDelta computes the static byte offset of a GEP, or UnknownOffset.
func gepDelta(g *ir.GEP) int64 {
	cur := g.Base.Type()
	var delta int64
	for _, ix := range g.Indices {
		p, ok := cur.(*ctypes.Pointer)
		if !ok {
			return UnknownOffset
		}
		if ix.Index == nil {
			st, ok := p.Elem.(*ctypes.Struct)
			if !ok || ix.Field >= len(st.Fields) {
				return UnknownOffset
			}
			delta += st.Fields[ix.Field].Offset
			cur = &ctypes.Pointer{Elem: st.Fields[ix.Field].Type}
			continue
		}
		c, isConst := ix.Index.(*ir.ConstInt)
		if arr, isArr := p.Elem.(*ctypes.Array); isArr {
			if !isConst {
				return UnknownOffset
			}
			delta += c.Val * arr.Elem.Size()
			cur = &ctypes.Pointer{Elem: arr.Elem}
			continue
		}
		// Pointer step.
		if !isConst {
			return UnknownOffset
		}
		delta += c.Val * p.Elem.Size()
	}
	return delta
}

func shiftRef(r Ref, delta int64) Ref {
	if r.Off == UnknownOffset || delta == UnknownOffset {
		return Ref{Obj: r.Obj, Off: UnknownOffset}
	}
	return Ref{Obj: r.Obj, Off: r.Off + delta}
}
