package pointsto

import (
	"testing"

	"safeflow/internal/frontend"
	"safeflow/internal/ir"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	res, err := frontend.CompileString("t", src, frontend.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res.Module
}

// findLoadOfGlobalField returns the first load whose address is a GEP on a
// value loaded from the named global.
func findStore(m *ir.Module, fnName string) *ir.Store {
	f := m.FuncByName(fnName)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if st, ok := in.(*ir.Store); ok {
				return st
			}
		}
	}
	return nil
}

func modes() []Mode { return []Mode{ModeSubset, ModeUnify} }

func TestGlobalAddressOf(t *testing.T) {
	m := compile(t, `
double g;
void set() { g = 1.5; }
`)
	for _, mode := range modes() {
		r := Analyze(m, mode)
		st := findStore(m, "set")
		refs := r.PointsTo(st.Addr)
		if len(refs) != 1 || refs[0].Obj.Kind != ObjGlobal || refs[0].Obj.Name != "g" {
			t.Errorf("mode %v: store target refs = %v", mode, refs)
		}
	}
}

func TestParamAliasing(t *testing.T) {
	m := compile(t, `
double a;
double b;
void write(double *p) { *p = 1.0; }
void caller() { write(&a); write(&b); }
`)
	for _, mode := range modes() {
		r := Analyze(m, mode)
		st := findStore(m, "write")
		refs := r.PointsTo(st.Addr)
		names := map[string]bool{}
		for _, ref := range refs {
			names[ref.Obj.Name] = true
		}
		if !names["a"] || !names["b"] {
			t.Errorf("mode %v: write target = %v, want both a and b", mode, refs)
		}
	}
}

func TestFieldSensitivitySubset(t *testing.T) {
	m := compile(t, `
typedef struct { double x; double y; } P;
P g;
void setx() { g.x = 1.0; }
void sety() { g.y = 2.0; }
`)
	r := Analyze(m, ModeSubset)
	stx := findStore(m, "setx")
	sty := findStore(m, "sety")
	if r.MayAlias(stx.Addr, sty.Addr) {
		t.Errorf("subset mode: distinct fields alias: %v vs %v",
			r.PointsTo(stx.Addr), r.PointsTo(sty.Addr))
	}
	// The unify mode is field-insensitive: same-object fields may alias.
	ru := Analyze(m, ModeUnify)
	if !ru.MayAlias(stx.Addr, sty.Addr) {
		t.Errorf("unify mode should conservatively alias same-object fields")
	}
}

func TestHeapThroughPointerChain(t *testing.T) {
	m := compile(t, `
typedef struct { double v; } T;
T *tp;
void init()
{
	void *base;
	base = shmat(0, 0, 0);
	tp = (T *) base;
}
double read()
{
	return tp->v;
}
`)
	for _, mode := range modes() {
		r := Analyze(m, mode)
		f := m.FuncByName("read")
		var load *ir.Load
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if ld, ok := in.(*ir.Load); ok {
					if _, isF := ld.Type().(interface{ IsFloat() bool }); isF {
						_ = isF
					}
					load = ld // last load reads tp->v
				}
			}
		}
		refs := r.PointsTo(load.Addr)
		foundShm := false
		for _, ref := range refs {
			if ref.Obj.Kind == ObjShm {
				foundShm = true
			}
		}
		if !foundShm {
			t.Errorf("mode %v: tp->v refs = %v, want an shm object", mode, refs)
		}
	}
}

func TestReturnValuePlumbing(t *testing.T) {
	m := compile(t, `
double g;
double *which() { return &g; }
void set() { *which() = 3.0; }
`)
	for _, mode := range modes() {
		r := Analyze(m, mode)
		st := findStore(m, "set")
		refs := r.PointsTo(st.Addr)
		found := false
		for _, ref := range refs {
			if ref.Obj.Name == "g" {
				found = true
			}
		}
		if !found {
			t.Errorf("mode %v: return-value aliasing lost: %v", mode, refs)
		}
	}
}

func TestUnknownExternal(t *testing.T) {
	m := compile(t, `
double *mystery();
void use()
{
	double *p;
	p = mystery();
	*p = 1.0;
}
`)
	r := Analyze(m, ModeSubset)
	st := findStore(m, "use")
	if !r.PointsToUnknown(st.Addr) {
		t.Errorf("pointer from unknown external should reference the unknown object: %v",
			r.PointsTo(st.Addr))
	}
}

func TestPhiMerge(t *testing.T) {
	m := compile(t, `
double a;
double b;
void set(int c)
{
	double *p;
	if (c) { p = &a; } else { p = &b; }
	*p = 9.0;
}
`)
	for _, mode := range modes() {
		r := Analyze(m, mode)
		st := findStore(m, "set")
		names := map[string]bool{}
		for _, ref := range r.PointsTo(st.Addr) {
			names[ref.Obj.Name] = true
		}
		if !names["a"] || !names["b"] {
			t.Errorf("mode %v: phi points-to = %v, want {a, b}", mode, r.PointsTo(st.Addr))
		}
	}
}

func TestSubsetMorePreciseThanUnify(t *testing.T) {
	// x only ever points to a; y only to b. Unification may merge their
	// classes through the shared helper, subset must not.
	m := compile(t, `
double a;
double b;
void touch(double *p) { *p = 1.0; }
void fx() { double *x; x = &a; touch(x); *x = 2.0; }
void fy() { double *y; y = &b; touch(y); *y = 3.0; }
`)
	rs := Analyze(m, ModeSubset)
	st := findStore(m, "fx") // first store in fx is *x (after the call? order: call then store) — find all
	_ = st
	f := m.FuncByName("fx")
	var direct *ir.Store
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if s, ok := in.(*ir.Store); ok {
				direct = s // last store is *x = 2.0
			}
		}
	}
	refs := rs.PointsTo(direct.Addr)
	for _, ref := range refs {
		if ref.Obj.Name == "b" {
			t.Errorf("subset mode: x spuriously points to b: %v", refs)
		}
	}
}

func TestCellPointsTo(t *testing.T) {
	m := compile(t, `
double target;
double *holder;
void init() { holder = &target; }
void use() { *holder = 2.0; }
`)
	r := Analyze(m, ModeSubset)
	st := findStore(m, "use")
	names := map[string]bool{}
	for _, ref := range r.PointsTo(st.Addr) {
		names[ref.Obj.Name] = true
	}
	if !names["target"] {
		t.Errorf("load-through-global aliasing lost: %v", r.PointsTo(st.Addr))
	}
}

func TestObjectsDeterministic(t *testing.T) {
	m := compile(t, `
double a; double b; double c;
void f() { a = 1; b = 2; c = 3; }
`)
	r1 := Analyze(m, ModeSubset)
	r2 := Analyze(m, ModeSubset)
	o1, o2 := r1.Objects(), r2.Objects()
	if len(o1) != len(o2) {
		t.Fatalf("object counts differ: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i].Name != o2[i].Name || o1[i].Kind != o2[i].Kind {
			t.Errorf("object %d differs: %v vs %v", i, o1[i], o2[i])
		}
	}
}
