// The closed-loop simulation harness for Figure 1: synthesize both
// controllers, build the monitor, and run the plant with the core and
// non-core components exchanging state and control through shared memory.

package simplex

import (
	"fmt"
	"math"

	"safeflow/internal/plant"
	"safeflow/internal/shm"
)

// Config describes one closed-loop experiment.
type Config struct {
	Plant plant.Linearizable
	// DT is the control period in seconds (100 Hz default).
	DT float64
	// Steps is the number of control periods to simulate.
	Steps int
	// InitState is the initial plant state (defaults to a small tilt for
	// pendulum-shaped plants).
	InitState []float64
	// UMax is the actuator limit (the paper's ±5 V).
	UMax float64
	// AngleWeight boosts the Q weight on odd-position states for the
	// safety controller (conservative tuning); the complex controller uses
	// a performance-oriented tuning automatically.
	AngleWeight float64
	// EnvelopeMargin scales the Lyapunov level set (default 4x the initial
	// condition's V).
	EnvelopeMargin float64
	// Fault configures the non-core controller's failure.
	Fault     FaultMode
	FaultStep int
	// ShmKey selects the shared-memory segment (unique per experiment).
	ShmKey int
	// Unmonitored bypasses the decision module, applying the non-core
	// output directly — the failure SafeFlow exists to prevent. For
	// demonstration only.
	Unmonitored bool
}

// StepRecord is one control period's outcome.
type StepRecord struct {
	T           float64
	State       []float64
	U           float64
	UsedNonCore bool
}

// Trace is the result of a closed-loop run.
type Trace struct {
	Steps       []StepRecord
	Switches    int // transitions between controllers
	NonCoreUsed int // periods where the complex output was admitted
	Rejected    int // periods where the monitor rejected the proposal
	MaxAbsState []float64
	Diverged    bool // plant left the safe state space
	DivergedAt  int
}

// FracNonCore returns the fraction of periods driven by the complex
// controller.
func (t *Trace) FracNonCore() float64 {
	if len(t.Steps) == 0 {
		return 0
	}
	return float64(t.NonCoreUsed) / float64(len(t.Steps))
}

// Run executes the experiment.
func Run(cfg Config) (*Trace, error) {
	if cfg.Plant == nil {
		cfg.Plant = plant.DefaultPendulum()
	}
	if cfg.DT == 0 {
		cfg.DT = 0.01
	}
	if cfg.Steps == 0 {
		cfg.Steps = 2000
	}
	if cfg.UMax == 0 {
		cfg.UMax = 20
	}
	if cfg.AngleWeight == 0 {
		cfg.AngleWeight = 10
	}
	if cfg.EnvelopeMargin == 0 {
		cfg.EnvelopeMargin = 4
	}
	if cfg.FaultStep == 0 {
		cfg.FaultStep = cfg.Steps / 2
	}
	if cfg.Fault == 0 {
		cfg.Fault = FaultNone
	}
	n := cfg.Plant.Dim()
	if cfg.InitState == nil {
		cfg.InitState = make([]float64, n)
		if n >= 3 {
			cfg.InitState[2] = 0.1 // small tilt
		}
	}
	if len(cfg.InitState) != n {
		return nil, fmt.Errorf("simplex: init state has %d values, plant has %d", len(cfg.InitState), n)
	}

	// Controller synthesis.
	A, B := cfg.Plant.Linearize()
	Ad, Bd := plant.Discretize(A, B, cfg.DT)

	qSafe := plant.Eye(n)
	for i := 2; i < n; i += 2 {
		qSafe.Set(i, i, cfg.AngleWeight)
	}
	kSafe, err := plant.DLQR(Ad, Bd, qSafe, 1.0)
	if err != nil {
		return nil, fmt.Errorf("simplex: safety controller synthesis: %w", err)
	}
	// The complex controller is tuned for performance: cheap control,
	// aggressive tracking.
	qPerf := plant.Eye(n)
	for i := 2; i < n; i += 2 {
		qPerf.Set(i, i, cfg.AngleWeight*5)
	}
	kPerf, err := plant.DLQR(Ad, Bd, qPerf, 0.05)
	if err != nil {
		return nil, fmt.Errorf("simplex: complex controller synthesis: %w", err)
	}

	// Monitor: Lyapunov envelope of the safety loop.
	kMat := plant.NewMat(1, n)
	for j, k := range kSafe {
		kMat.Set(0, j, k)
	}
	acl := Ad.Sub(Bd.Mul(kMat))
	p, err := plant.DLyap(acl, plant.Eye(n))
	if err != nil {
		return nil, fmt.Errorf("simplex: Lyapunov envelope: %w", err)
	}
	c := p.Quad(cfg.InitState) * cfg.EnvelopeMargin
	monitor := &DecisionModule{Ad: Ad, Bd: Bd, P: p, C: c, UMax: cfg.UMax}

	// Shared memory.
	key := cfg.ShmKey
	if key == 0 {
		key = 0x5afe
	}
	shm.Remove(key)
	shared, err := NewSharedState(key, n)
	if err != nil {
		return nil, err
	}

	safety := &LQRController{Label: "safety", K: kSafe}
	complexCtl := &ComplexController{
		Inner:     &LQRController{Label: "lqr-perf", K: kPerf},
		Fault:     cfg.Fault,
		FaultStep: cfg.FaultStep,
		UMax:      cfg.UMax,
	}

	// Closed loop.
	trace := &Trace{MaxAbsState: make([]float64, n)}
	x := append([]float64(nil), cfg.InitState...)
	prevNonCore := false
	for step := 0; step < cfg.Steps; step++ {
		shared.Seg.Lock()
		if err := shared.PublishState(x, int32(step)); err != nil {
			shared.Seg.Unlock()
			return nil, err
		}
		shared.Seg.Unlock()

		// Non-core component period: read feedback, propose control.
		shared.Seg.Lock()
		fbState, _, err := shared.ReadState()
		if err != nil {
			shared.Seg.Unlock()
			return nil, err
		}
		if err := shared.ProposeControl(complexCtl.Output(fbState)); err != nil {
			shared.Seg.Unlock()
			return nil, err
		}
		shared.Seg.Unlock()

		// Core component period: read proposal, monitor, dispatch.
		shared.Seg.Lock()
		proposal, ready, err := shared.ReadProposal()
		shared.Seg.Unlock()
		if err != nil {
			return nil, err
		}
		safeU := clamp(safety.Output(x), cfg.UMax)
		var u float64
		usedNonCore := false
		switch {
		case cfg.Unmonitored && ready:
			u = proposal // the defect: unmonitored non-core value flow
			usedNonCore = true
		case ready:
			u, usedNonCore = monitor.Decide(x, proposal, safeU)
			if !usedNonCore {
				trace.Rejected++
			}
		default:
			u = safeU
		}
		if usedNonCore {
			trace.NonCoreUsed++
		}
		if usedNonCore != prevNonCore && step > 0 {
			trace.Switches++
		}
		prevNonCore = usedNonCore

		x = plant.RK4(cfg.Plant, x, u, cfg.DT)
		for i, v := range x {
			if a := math.Abs(v); a > trace.MaxAbsState[i] {
				trace.MaxAbsState[i] = a
			}
		}
		trace.Steps = append(trace.Steps, StepRecord{
			T: float64(step) * cfg.DT, State: append([]float64(nil), x...),
			U: u, UsedNonCore: usedNonCore,
		})
		if !trace.Diverged && stateDiverged(x) {
			trace.Diverged = true
			trace.DivergedAt = step
		}
	}
	return trace, nil
}

func clamp(u, limit float64) float64 {
	if u > limit {
		return limit
	}
	if u < -limit {
		return -limit
	}
	return u
}

// stateDiverged reports whether the plant has left any plausible safe
// state space (angles beyond ~0.7 rad or NaN).
func stateDiverged(x []float64) bool {
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		if i >= 2 && i%2 == 0 && math.Abs(v) > 0.7 {
			return true
		}
	}
	return false
}
