// Package simplex implements the Simplex architecture runtime of Figure 1:
// a core (safety) controller and a non-core (complex, high-performance)
// controller communicating through emulated shared memory, with the
// decision module's Lyapunov-envelope recoverability monitor guarding
// every non-core control output before it reaches the actuator.
//
// This is the run-time counterpart of what SafeFlow verifies statically:
// the monitor here is the "monitoring function" the annotations describe,
// and the fault-injection hooks demonstrate why the core component must
// never use non-core values without it.
package simplex

import (
	"fmt"
	"math"

	"safeflow/internal/plant"
	"safeflow/internal/shm"
)

// Shared-memory layout (byte offsets).
//
// The feedback region carries the published plant state (up to MaxState
// float64 values plus a sequence number); the command region carries the
// non-core controller's proposed output and a ready flag. The layout
// mirrors the C corpus systems' SHMData structures.
const (
	// MaxState is the largest supported state dimension.
	MaxState = 8
	// feedback region: MaxState float64 + int32 seq (padded to 8).
	feedbackSize = MaxState*8 + 8
	// command region: float64 control + int32 ready (padded to 8).
	commandSize = 16

	offControl = 0
	offReady   = 8
)

// SharedState wires two typed variables over one segment and validates
// them with InitCheck, exactly as an initializing function does.
type SharedState struct {
	Seg      *shm.Segment
	Feedback *shm.Var
	Command  *shm.Var
	dim      int
}

// NewSharedState attaches (creating) the segment for the given key and
// lays out the two regions.
func NewSharedState(key, dim int) (*SharedState, error) {
	if dim <= 0 || dim > MaxState {
		return nil, fmt.Errorf("simplex: state dimension %d outside [1,%d]", dim, MaxState)
	}
	seg, err := shm.Get(key, feedbackSize+commandSize)
	if err != nil {
		return nil, err
	}
	fb, err := shm.NewVar(seg, "feedback", 0, feedbackSize)
	if err != nil {
		return nil, err
	}
	cmd, err := shm.NewVar(seg, "noncoreCtrl", feedbackSize, commandSize)
	if err != nil {
		return nil, err
	}
	if err := shm.InitCheck(seg, fb, cmd); err != nil {
		return nil, err
	}
	return &SharedState{Seg: seg, Feedback: fb, Command: cmd, dim: dim}, nil
}

// PublishState writes the plant state into the feedback region.
func (s *SharedState) PublishState(x []float64, seq int32) error {
	for i, v := range x {
		if err := s.Feedback.SetFloat64At(i*8, v); err != nil {
			return err
		}
	}
	return s.Feedback.SetInt32At(MaxState*8, seq)
}

// ReadState reads the plant state from the feedback region.
func (s *SharedState) ReadState() ([]float64, int32, error) {
	x := make([]float64, s.dim)
	for i := range x {
		v, err := s.Feedback.Float64At(i * 8)
		if err != nil {
			return nil, 0, err
		}
		x[i] = v
	}
	seq, err := s.Feedback.Int32At(MaxState * 8)
	return x, seq, err
}

// ProposeControl writes the non-core controller's output.
func (s *SharedState) ProposeControl(u float64) error {
	if err := s.Command.SetFloat64At(offControl, u); err != nil {
		return err
	}
	return s.Command.SetInt32At(offReady, 1)
}

// ReadProposal reads the non-core control output and ready flag.
func (s *SharedState) ReadProposal() (float64, bool, error) {
	u, err := s.Command.Float64At(offControl)
	if err != nil {
		return 0, false, err
	}
	ready, err := s.Command.Int32At(offReady)
	return u, ready != 0, err
}

// ---------------------------------------------------------------------------
// Controllers

// Controller computes one control output from a state.
type Controller interface {
	Name() string
	Output(x []float64) float64
}

// LQRController is a linear state-feedback controller u = -K·x.
type LQRController struct {
	Label string
	K     []float64
}

// Name implements Controller.
func (c *LQRController) Name() string { return c.Label }

// Output implements Controller.
func (c *LQRController) Output(x []float64) float64 { return -plant.Dot(c.K, x) }

// FaultMode selects the failure the non-core controller injects.
type FaultMode int

// Fault modes for the complex controller.
const (
	FaultNone     FaultMode = iota + 1
	FaultSignFlip           // output with inverted sign (destabilizing)
	FaultSaturate           // slam the actuator limit
	FaultNaN                // emit NaN (crash-adjacent garbage)
	FaultFreeze             // stop updating (stale value)
)

// String implements fmt.Stringer.
func (m FaultMode) String() string {
	switch m {
	case FaultSignFlip:
		return "sign-flip"
	case FaultSaturate:
		return "saturate"
	case FaultNaN:
		return "nan"
	case FaultFreeze:
		return "freeze"
	default:
		return "none"
	}
}

// ComplexController is the non-core high-performance controller with a
// fault-injection hook.
type ComplexController struct {
	Inner     Controller
	Fault     FaultMode
	FaultStep int // step at which the fault begins
	UMax      float64

	step   int
	frozen float64
}

// Name implements Controller.
func (c *ComplexController) Name() string { return "complex(" + c.Inner.Name() + ")" }

// Output implements Controller.
func (c *ComplexController) Output(x []float64) float64 {
	u := c.Inner.Output(x)
	faulting := c.Fault != FaultNone && c.Fault != 0 && c.step >= c.FaultStep
	switch {
	case !faulting:
		c.frozen = u
	case c.Fault == FaultSignFlip:
		u = -2 * u
	case c.Fault == FaultSaturate:
		u = math.Copysign(c.UMax*10, u)
	case c.Fault == FaultNaN:
		u = math.NaN()
	case c.Fault == FaultFreeze:
		u = c.frozen
	}
	c.step++
	return u
}

// ---------------------------------------------------------------------------
// Decision module

// DecisionModule is the run-time monitor: it admits a non-core control
// output only if it is finite, within actuator limits, and keeps the
// one-step-ahead state inside the Lyapunov stability envelope
// {x : xᵀPx ≤ C} of the safety controller (the Simplex recoverability
// check [22] the paper's annotations describe).
type DecisionModule struct {
	Ad, Bd plant.Mat
	P      plant.Mat
	C      float64
	UMax   float64
}

// Recoverable reports whether applying u at state x keeps the system
// recoverable by the safety controller.
func (d *DecisionModule) Recoverable(x []float64, u float64) bool {
	if math.IsNaN(u) || math.IsInf(u, 0) {
		return false
	}
	if math.Abs(u) > d.UMax {
		return false
	}
	xn := plant.VecAdd(d.Ad.MulVec(x), d.Bd.MulVec([]float64{u}))
	return d.P.Quad(xn) <= d.C
}

// Decide implements Figure 2's decision(): the non-core output when the
// monitor admits it, otherwise the safety controller's output.
func (d *DecisionModule) Decide(x []float64, noncoreU, safeU float64) (u float64, usedNonCore bool) {
	if d.Recoverable(x, noncoreU) {
		return noncoreU, true
	}
	return safeU, false
}
