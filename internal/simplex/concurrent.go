// Truly concurrent execution of the Simplex architecture: the core and
// non-core controllers run as separate goroutines sharing one emulated
// shared-memory segment under its advisory lock, exactly the process
// structure of the paper's lab systems. Unlike Run (which steps both
// components synchronously for deterministic traces), RunConcurrent
// exhibits the real phenomena the paper's conservative non-core model
// exists for: stale proposals, missed periods, and interleavings the core
// cannot assume away — which is why the monitor checks every proposal and
// a sequence number detects staleness.

package simplex

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"safeflow/internal/plant"
	"safeflow/internal/shm"
)

// ConcurrentTrace summarizes a concurrent closed-loop run.
type ConcurrentTrace struct {
	Steps        int
	NonCoreUsed  int // periods driven by an admitted non-core proposal
	StaleSkipped int // proposals ignored for stale sequence numbers
	Rejected     int // proposals the monitor refused
	MaxAbsState  []float64
	Diverged     bool
	NonCoreIters int64 // non-core controller loop iterations completed
}

// RunConcurrent executes cfg with the non-core controller in its own
// goroutine. The trace is not step-for-step deterministic (that is the
// point); its safety properties are: under a monitored run the plant
// never leaves the recoverable envelope regardless of interleaving.
func RunConcurrent(cfg Config) (*ConcurrentTrace, error) {
	if cfg.Plant == nil {
		cfg.Plant = plant.DefaultPendulum()
	}
	if cfg.DT == 0 {
		cfg.DT = 0.01
	}
	if cfg.Steps == 0 {
		cfg.Steps = 2000
	}
	if cfg.UMax == 0 {
		cfg.UMax = 20
	}
	if cfg.AngleWeight == 0 {
		cfg.AngleWeight = 10
	}
	if cfg.EnvelopeMargin == 0 {
		cfg.EnvelopeMargin = 4
	}
	if cfg.Fault == 0 {
		cfg.Fault = FaultNone
	}
	if cfg.FaultStep == 0 {
		cfg.FaultStep = cfg.Steps / 2
	}
	n := cfg.Plant.Dim()
	if cfg.InitState == nil {
		cfg.InitState = make([]float64, n)
		if n >= 3 {
			cfg.InitState[2] = 0.1
		}
	}
	if len(cfg.InitState) != n {
		return nil, fmt.Errorf("simplex: init state has %d values, plant has %d", len(cfg.InitState), n)
	}

	A, B := cfg.Plant.Linearize()
	ad, bd := plant.Discretize(A, B, cfg.DT)
	qSafe := plant.Eye(n)
	for i := 2; i < n; i += 2 {
		qSafe.Set(i, i, cfg.AngleWeight)
	}
	kSafe, err := plant.DLQR(ad, bd, qSafe, 1.0)
	if err != nil {
		return nil, fmt.Errorf("simplex: safety synthesis: %w", err)
	}
	qPerf := plant.Eye(n)
	for i := 2; i < n; i += 2 {
		qPerf.Set(i, i, cfg.AngleWeight*5)
	}
	kPerf, err := plant.DLQR(ad, bd, qPerf, 0.05)
	if err != nil {
		return nil, fmt.Errorf("simplex: complex synthesis: %w", err)
	}
	kMat := plant.NewMat(1, n)
	for j, k := range kSafe {
		kMat.Set(0, j, k)
	}
	p, err := plant.DLyap(ad.Sub(bd.Mul(kMat)), plant.Eye(n))
	if err != nil {
		return nil, fmt.Errorf("simplex: envelope: %w", err)
	}
	monitor := &DecisionModule{
		Ad: ad, Bd: bd, P: p,
		C:    p.Quad(cfg.InitState) * cfg.EnvelopeMargin,
		UMax: cfg.UMax,
	}

	key := cfg.ShmKey
	if key == 0 {
		key = 0x5afec
	}
	shm.Remove(key)
	shared, err := NewSharedState(key, n)
	if err != nil {
		return nil, err
	}

	safety := &LQRController{Label: "safety", K: kSafe}
	complexCtl := &ComplexController{
		Inner:     &LQRController{Label: "lqr-perf", K: kPerf},
		Fault:     cfg.Fault,
		FaultStep: cfg.FaultStep,
		UMax:      cfg.UMax,
	}

	var stop atomic.Bool
	var ncIters atomic.Int64
	var wg sync.WaitGroup

	// Non-core component: reacts to each newly published feedback (its own
	// period is driven by the core's publications, like the lab systems
	// where both are released at the same rate).
	wg.Add(1)
	go func() {
		defer wg.Done()
		lastSeq := int32(-1)
		for !stop.Load() {
			shared.Seg.Lock()
			x, seq, err := shared.ReadState()
			fresh := err == nil && seq != lastSeq
			if fresh {
				lastSeq = seq
				u := complexCtl.Output(x)
				_ = shared.Command.SetFloat64At(offControl, u)
				_ = shared.Command.SetInt32At(offReady, 1)
				_ = shared.Command.SetInt32At(12, seq) // proposal's base seq
			}
			shared.Seg.Unlock()
			if fresh {
				ncIters.Add(1)
			} else {
				runtime.Gosched()
			}
		}
	}()

	trace := &ConcurrentTrace{Steps: cfg.Steps, MaxAbsState: make([]float64, n)}
	x := append([]float64(nil), cfg.InitState...)
	for step := 0; step < cfg.Steps; step++ {
		shared.Seg.Lock()
		if err := shared.PublishState(x, int32(step)); err != nil {
			shared.Seg.Unlock()
			stop.Store(true)
			wg.Wait()
			return nil, err
		}
		shared.Seg.Unlock()

		// The real core sleeps out its period here (Figure 2's wait call);
		// yielding models that and gives the non-core loop its slot.
		runtime.Gosched()

		// The core's period: whatever proposal is present right now.
		shared.Seg.Lock()
		proposal, ready, _ := shared.ReadProposal()
		baseSeq, _ := shared.Command.Int32At(12)
		shared.Seg.Unlock()

		safeU := clamp(safety.Output(x), cfg.UMax)
		u := safeU
		switch {
		case !ready:
			// no proposal yet; fall back
		case baseSeq+int32(2) < int32(step):
			trace.StaleSkipped++
		case monitor.Recoverable(x, proposal):
			u = proposal
			trace.NonCoreUsed++
		default:
			trace.Rejected++
		}

		x = plant.RK4(cfg.Plant, x, u, cfg.DT)
		for i, v := range x {
			if a := math.Abs(v); a > trace.MaxAbsState[i] {
				trace.MaxAbsState[i] = a
			}
		}
		if stateDiverged(x) {
			trace.Diverged = true
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	trace.NonCoreIters = ncIters.Load()
	return trace, nil
}
