package simplex

import (
	"math"
	"testing"

	"safeflow/internal/plant"
	"safeflow/internal/shm"
)

func TestHealthyComplexControllerRuns(t *testing.T) {
	tr, err := Run(Config{Steps: 2000, ShmKey: 0x1001})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tr.Diverged {
		t.Fatalf("healthy system diverged at step %d", tr.DivergedAt)
	}
	// A healthy complex controller should drive almost every period.
	if f := tr.FracNonCore(); f < 0.9 {
		t.Errorf("non-core usage fraction = %g, want >= 0.9", f)
	}
	// And the pendulum must end up balanced.
	last := tr.Steps[len(tr.Steps)-1].State
	if math.Abs(last[2]) > 0.02 {
		t.Errorf("final angle %g rad, not balanced", last[2])
	}
}

func TestMonitorCatchesFaults(t *testing.T) {
	for _, fault := range []FaultMode{FaultSignFlip, FaultSaturate, FaultNaN} {
		t.Run(fault.String(), func(t *testing.T) {
			tr, err := Run(Config{
				Steps: 3000, Fault: fault, FaultStep: 1000, ShmKey: 0x1100 + int(fault),
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if tr.Diverged {
				t.Fatalf("monitored system diverged at step %d under %s", tr.DivergedAt, fault)
			}
			if tr.Rejected == 0 {
				t.Errorf("monitor rejected nothing under fault %s", fault)
			}
			last := tr.Steps[len(tr.Steps)-1].State
			if math.Abs(last[2]) > 0.05 {
				t.Errorf("final angle %g rad under %s, not recovered", last[2], fault)
			}
		})
	}
}

// TestUnmonitoredFaultDiverges demonstrates the failure SafeFlow prevents:
// without the monitor, a faulty non-core output destabilizes the plant.
func TestUnmonitoredFaultDiverges(t *testing.T) {
	tr, err := Run(Config{
		Steps: 3000, Fault: FaultSignFlip, FaultStep: 1000,
		Unmonitored: true, ShmKey: 0x1200,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !tr.Diverged {
		t.Fatal("unmonitored sign-flip fault should destabilize the pendulum")
	}
	if tr.DivergedAt < 1000 {
		t.Errorf("diverged at %d, before the fault at 1000", tr.DivergedAt)
	}
}

func TestDoublePendulumSimplex(t *testing.T) {
	tr, err := Run(Config{
		Plant: plant.DefaultDoublePendulum(),
		DT:    0.005, Steps: 4000,
		InitState: []float64{0, 0, 0.05, 0, 0.03, 0},
		Fault:     FaultSaturate, FaultStep: 2000,
		ShmKey: 0x1300,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tr.Diverged {
		t.Fatalf("double pendulum diverged at %d", tr.DivergedAt)
	}
	if tr.Rejected == 0 {
		t.Error("monitor rejected nothing after the saturate fault")
	}
}

func TestSharedStateRoundTrip(t *testing.T) {
	shm.Remove(0x1400)
	s, err := NewSharedState(0x1400, 4)
	if err != nil {
		t.Fatalf("NewSharedState: %v", err)
	}
	x := []float64{0.1, -0.2, 0.3, -0.4}
	if err := s.PublishState(x, 7); err != nil {
		t.Fatal(err)
	}
	got, seq, err := s.ReadState()
	if err != nil || seq != 7 {
		t.Fatalf("ReadState: %v seq=%d", err, seq)
	}
	for i := range x {
		if got[i] != x[i] {
			t.Errorf("state[%d] = %g, want %g", i, got[i], x[i])
		}
	}
	if err := s.ProposeControl(2.5); err != nil {
		t.Fatal(err)
	}
	u, ready, err := s.ReadProposal()
	if err != nil || !ready || u != 2.5 {
		t.Errorf("ReadProposal = (%g, %v, %v), want (2.5, true, nil)", u, ready, err)
	}
}

func TestInitCheckRejectsOverlap(t *testing.T) {
	shm.Remove(0x1500)
	seg, err := shm.Get(0x1500, 64)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := shm.NewVar(seg, "a", 0, 40)
	b, _ := shm.NewVar(seg, "b", 32, 32)
	if err := shm.InitCheck(seg, a, b); err == nil {
		t.Error("InitCheck should reject overlapping variables")
	}
	c, _ := shm.NewVar(seg, "c", 0, 32)
	d, _ := shm.NewVar(seg, "d", 32, 32)
	if err := shm.InitCheck(seg, c, d); err != nil {
		t.Errorf("InitCheck rejected a valid layout: %v", err)
	}
}

func TestDecisionModuleRejectsNonFinite(t *testing.T) {
	d := &DecisionModule{
		Ad: plant.Eye(2), Bd: plant.MatFrom([][]float64{{0}, {0.01}}),
		P: plant.Eye(2), C: 100, UMax: 5,
	}
	x := []float64{0, 0}
	if d.Recoverable(x, math.NaN()) {
		t.Error("NaN admitted")
	}
	if d.Recoverable(x, math.Inf(1)) {
		t.Error("Inf admitted")
	}
	if d.Recoverable(x, 6) {
		t.Error("over-limit output admitted")
	}
	if !d.Recoverable(x, 1) {
		t.Error("benign output rejected")
	}
}
