package simplex

import (
	"testing"
)

// TestConcurrentHealthy runs the two components as real goroutines. The
// trace is nondeterministic; the asserted properties are interleaving-
// independent: the plant never diverges and the non-core loop makes
// progress.
func TestConcurrentHealthy(t *testing.T) {
	tr, err := RunConcurrent(Config{Steps: 2000, ShmKey: 0x1600})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Diverged {
		t.Fatal("healthy concurrent run diverged")
	}
	if tr.NonCoreIters == 0 {
		t.Error("non-core goroutine never ran")
	}
	if tr.NonCoreUsed+tr.Rejected+tr.StaleSkipped > tr.Steps {
		t.Errorf("accounting overflow: used=%d rejected=%d stale=%d steps=%d",
			tr.NonCoreUsed, tr.Rejected, tr.StaleSkipped, tr.Steps)
	}
}

// TestConcurrentFaultContained checks the safety property that must hold
// under EVERY interleaving: with the monitor in place, a hostile non-core
// controller cannot destabilize the plant.
func TestConcurrentFaultContained(t *testing.T) {
	for _, fault := range []FaultMode{FaultSignFlip, FaultSaturate, FaultNaN} {
		t.Run(fault.String(), func(t *testing.T) {
			tr, err := RunConcurrent(Config{
				Steps: 2500, Fault: fault, FaultStep: 500, ShmKey: 0x1700 + int(fault),
			})
			if err != nil {
				t.Fatal(err)
			}
			if tr.Diverged {
				t.Fatalf("fault %s escaped the monitor under concurrency", fault)
			}
			if tr.MaxAbsState[2] > 0.5 {
				t.Errorf("fault %s: max angle %g too large", fault, tr.MaxAbsState[2])
			}
		})
	}
}
