// AST pretty-printer: renders cast trees back to C-like source. Used for
// front-end debugging, error reporting, and round-trip testing of the
// parser (parse → print → parse must converge).

package cast

import (
	"fmt"
	"strings"

	"safeflow/internal/ctoken"
)

// Print renders a whole file.
func Print(f *File) string {
	p := &printer{}
	for _, d := range f.Decls {
		p.decl(d)
		p.nl()
	}
	return p.sb.String()
}

// PrintExpr renders one expression.
func PrintExpr(e Expr) string {
	p := &printer{}
	p.expr(e)
	return p.sb.String()
}

// PrintStmt renders one statement.
func PrintStmt(s Stmt) string {
	p := &printer{}
	p.stmt(s)
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) w(format string, args ...any) { fmt.Fprintf(&p.sb, format, args...) }

func (p *printer) nl() {
	p.sb.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("    ")
	}
}

// ---------------------------------------------------------------------------
// Declarations

func (p *printer) decl(d Decl) {
	switch x := d.(type) {
	case *VarDecl:
		p.storage(x.Storage)
		p.declarator(x.Type, x.Name)
		if x.Init != nil {
			p.w(" = ")
			p.expr(x.Init)
		}
		p.w(";")
	case *FuncDecl:
		p.storage(x.Storage)
		p.declarator(x.Type.Result, "")
		p.w(" %s(", x.Name)
		for i, prm := range x.Type.Params {
			if i > 0 {
				p.w(", ")
			}
			p.declarator(prm.Type, prm.Name)
		}
		if x.Type.Variadic {
			if len(x.Type.Params) > 0 {
				p.w(", ")
			}
			p.w("...")
		}
		p.w(")")
		for _, a := range x.Annotations {
			p.nl()
			p.w("/***SafeFlow Annotation %s /***/", a.Body)
		}
		if x.Body == nil {
			p.w(";")
			return
		}
		p.nl()
		p.block(x.Body)
	case *TypedefDecl:
		p.w("typedef ")
		p.declarator(x.Type, x.Name)
		p.w(";")
	case *RecordDecl:
		p.typeExpr(x.Type)
		p.w(";")
	default:
		p.w("/* unhandled decl %T */", d)
	}
}

func (p *printer) storage(s StorageClass) {
	switch s {
	case StorageExtern:
		p.w("extern ")
	case StorageStatic:
		p.w("static ")
	}
}

// declarator prints type+name in C declarator syntax (arrays bind to the
// name, pointers to the type).
func (p *printer) declarator(t TypeExpr, name string) {
	switch x := t.(type) {
	case *ArrayType:
		p.declaratorArray(x, name)
	case *PointerType:
		p.typeExpr(x.Elem)
		p.w(" *")
		p.w("%s", name)
	default:
		p.typeExpr(t)
		if name != "" {
			p.w(" %s", name)
		}
	}
}

func (p *printer) declaratorArray(t *ArrayType, name string) {
	// Collect nested array dimensions.
	var dims []Expr
	var elem TypeExpr = t
	for {
		at, ok := elem.(*ArrayType)
		if !ok {
			break
		}
		dims = append(dims, at.Len)
		elem = at.Elem
	}
	p.declarator(elem, name)
	for _, d := range dims {
		p.w("[")
		if d != nil {
			p.expr(d)
		}
		p.w("]")
	}
}

func (p *printer) typeExpr(t TypeExpr) {
	switch x := t.(type) {
	case *BaseType:
		p.w("%s", x.Name)
	case *NamedType:
		p.w("%s", x.Name)
	case *PointerType:
		p.typeExpr(x.Elem)
		p.w("*")
	case *ArrayType:
		p.typeExpr(x.Elem)
		p.w("[")
		if x.Len != nil {
			p.expr(x.Len)
		}
		p.w("]")
	case *StructType:
		kw := "struct"
		if x.IsUnion {
			kw = "union"
		}
		p.w("%s", kw)
		if x.Tag != "" {
			p.w(" %s", x.Tag)
		}
		if x.Defined {
			p.w(" {")
			p.indent++
			for _, f := range x.Fields {
				p.nl()
				p.declarator(f.Type, f.Name)
				p.w(";")
			}
			p.indent--
			p.nl()
			p.w("}")
		}
	case *EnumType:
		p.w("enum")
		if x.Tag != "" {
			p.w(" %s", x.Tag)
		}
		if x.Defined {
			p.w(" { ")
			for i, m := range x.Members {
				if i > 0 {
					p.w(", ")
				}
				p.w("%s", m.Name)
				if m.Value != nil {
					p.w(" = ")
					p.expr(m.Value)
				}
			}
			p.w(" }")
		}
	case *FuncType:
		p.typeExpr(x.Result)
		p.w(" (*)(...)")
	default:
		p.w("/* type %T */", t)
	}
}

// ---------------------------------------------------------------------------
// Statements

func (p *printer) block(b *BlockStmt) {
	p.w("{")
	p.indent++
	for _, s := range b.List {
		p.nl()
		p.stmt(s)
	}
	p.indent--
	p.nl()
	p.w("}")
}

func (p *printer) stmt(s Stmt) {
	switch x := s.(type) {
	case *BlockStmt:
		p.block(x)
	case *DeclStmt:
		for i, vd := range x.Decls {
			if i > 0 {
				p.nl()
			}
			p.decl(vd)
		}
	case *ExprStmt:
		p.expr(x.X)
		p.w(";")
	case *EmptyStmt:
		p.w(";")
	case *IfStmt:
		p.w("if (")
		p.expr(x.Cond)
		p.w(") ")
		p.stmtAsBlock(x.Then)
		if x.Else != nil {
			p.w(" else ")
			p.stmtAsBlock(x.Else)
		}
	case *WhileStmt:
		p.w("while (")
		p.expr(x.Cond)
		p.w(") ")
		p.stmtAsBlock(x.Body)
	case *DoWhileStmt:
		p.w("do ")
		p.stmtAsBlock(x.Body)
		p.w(" while (")
		p.expr(x.Cond)
		p.w(");")
	case *ForStmt:
		p.w("for (")
		if x.Init != nil {
			switch init := x.Init.(type) {
			case *ExprStmt:
				p.expr(init.X)
			case *DeclStmt:
				for _, vd := range init.Decls {
					p.declarator(vd.Type, vd.Name)
					if vd.Init != nil {
						p.w(" = ")
						p.expr(vd.Init)
					}
				}
			}
		}
		p.w("; ")
		if x.Cond != nil {
			p.expr(x.Cond)
		}
		p.w("; ")
		if x.Post != nil {
			p.expr(x.Post)
		}
		p.w(") ")
		p.stmtAsBlock(x.Body)
	case *ReturnStmt:
		p.w("return")
		if x.X != nil {
			p.w(" ")
			p.expr(x.X)
		}
		p.w(";")
	case *BreakStmt:
		p.w("break;")
	case *ContinueStmt:
		p.w("continue;")
	case *SwitchStmt:
		p.w("switch (")
		p.expr(x.Tag)
		p.w(") {")
		for _, c := range x.Body {
			p.nl()
			if c.Values == nil {
				p.w("default:")
			} else {
				for i, v := range c.Values {
					if i > 0 {
						p.nl()
					}
					p.w("case ")
					p.expr(v)
					p.w(":")
				}
			}
			p.indent++
			for _, sub := range c.Body {
				p.nl()
				p.stmt(sub)
			}
			p.indent--
		}
		p.nl()
		p.w("}")
	case *LabeledStmt:
		p.w("%s:", x.Name)
		p.nl()
		p.stmt(x.Stmt)
	case *GotoStmt:
		p.w("goto %s;", x.Name)
	case *AnnotatedStmt:
		for _, a := range x.Annotations {
			p.w("/***SafeFlow Annotation %s /***/", a.Body)
			p.nl()
		}
		p.stmt(x.Stmt)
	default:
		p.w("/* unhandled stmt %T */", s)
	}
}

func (p *printer) stmtAsBlock(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		p.block(b)
		return
	}
	p.w("{")
	p.indent++
	p.nl()
	p.stmt(s)
	p.indent--
	p.nl()
	p.w("}")
}

// ---------------------------------------------------------------------------
// Expressions

func (p *printer) expr(e Expr) {
	switch x := e.(type) {
	case *Ident:
		p.w("%s", x.Name)
	case *IntLit:
		p.w("%d", x.Value)
	case *FloatLit:
		if x.Text != "" {
			p.w("%s", x.Text)
		} else {
			p.w("%g", x.Value)
		}
	case *StrLit:
		p.w("%q", x.Value)
	case *ParenExpr:
		p.w("(")
		p.expr(x.X)
		p.w(")")
	case *UnaryExpr:
		p.w("%s", unaryToken(x.Op))
		p.exprParen(x.X)
	case *PostfixExpr:
		p.exprParen(x.X)
		p.w("%s", x.Op)
	case *BinaryExpr:
		p.exprParen(x.X)
		p.w(" %s ", x.Op)
		p.exprParen(x.Y)
	case *AssignExpr:
		p.expr(x.LHS)
		p.w(" %s ", x.Op)
		p.expr(x.RHS)
	case *CondExpr:
		p.exprParen(x.Cond)
		p.w(" ? ")
		p.expr(x.Then)
		p.w(" : ")
		p.expr(x.Else)
	case *CallExpr:
		p.expr(x.Fun)
		p.w("(")
		for i, a := range x.Args {
			if i > 0 {
				p.w(", ")
			}
			p.expr(a)
		}
		p.w(")")
	case *IndexExpr:
		p.exprParen(x.X)
		p.w("[")
		p.expr(x.Index)
		p.w("]")
	case *MemberExpr:
		p.exprParen(x.X)
		if x.Arrow {
			p.w("->")
		} else {
			p.w(".")
		}
		p.w("%s", x.Name)
	case *CastExpr:
		p.w("(")
		p.typeExpr(x.Type)
		p.w(") ")
		p.exprParen(x.X)
	case *SizeofExpr:
		p.w("sizeof(")
		if x.Type != nil {
			p.typeExpr(x.Type)
		} else {
			p.expr(x.X)
		}
		p.w(")")
	default:
		p.w("/* expr %T */", e)
	}
}

// exprParen wraps composite subexpressions in parentheses so the printed
// form is unambiguous regardless of the original precedence context.
func (p *printer) exprParen(e Expr) {
	switch e.(type) {
	case *Ident, *IntLit, *FloatLit, *StrLit, *ParenExpr, *CallExpr, *IndexExpr, *MemberExpr:
		p.expr(e)
	default:
		p.w("(")
		p.expr(e)
		p.w(")")
	}
}

func unaryToken(k ctoken.Kind) string {
	switch k {
	case ctoken.MINUS:
		return "-"
	case ctoken.NOT:
		return "!"
	case ctoken.TILDE:
		return "~"
	case ctoken.STAR:
		return "*"
	case ctoken.AMP:
		return "&"
	case ctoken.INC:
		return "++"
	case ctoken.DEC:
		return "--"
	default:
		return k.String()
	}
}
