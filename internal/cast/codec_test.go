package cast_test

import (
	"reflect"
	"testing"

	"safeflow/internal/cast"
	"safeflow/internal/clex"
	"safeflow/internal/cparse"
)

const codecSrc = `
typedef struct { double v; int flags[4]; } R;
enum mode { IDLE, RUN = 5 };
R *region;
static unsigned int counter;

double monitor(double lo, double hi, double x);

void initComm()
/***SafeFlow Annotation shminit /***/
{
	region = (R *) shmat(shmget(7, sizeof(R), 0), 0, 0);
	InitCheck(region, sizeof(R));
	/***SafeFlow Annotation assume(shmvar(region, sizeof(R))) /***/
}

int main()
{
	double u = 0.0;
	int i;
	for (i = 0; i < 4; i++) {
		if (region->flags[i] > 0 && i != 2)
			u += region->v;
		else
			u -= 1.0;
	}
	while (u > 10.0) { u = u / 2.0; }
	do { u++; } while (u < 0.0);
	switch ((int) u) {
	case 0:
		u = -u;
		break;
	default:
		goto out;
	}
out:
	return u > 0.0 ? 1 : 0;
}
`

func parseCodecFile(t *testing.T) *cast.File {
	t.Helper()
	lx := clex.New("main.c", codecSrc)
	toks := lx.All()
	if errs := lx.Errors(); len(errs) > 0 {
		t.Fatalf("lex: %v", errs)
	}
	f, err := cparse.New("main.c", toks).ParseFile()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestCodecRoundTrip(t *testing.T) {
	f := parseCodecFile(t)
	data, err := cast.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cast.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded tree must be structurally identical — same source
	// rendering and same deep structure (positions, annotations, values).
	if cast.Print(got) != cast.Print(f) {
		t.Fatalf("decoded tree prints differently:\n--- got ---\n%s\n--- want ---\n%s",
			cast.Print(got), cast.Print(f))
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatal("decoded tree is not deeply equal to the original")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := cast.Decode([]byte("not a gob stream")); err == nil {
		t.Fatal("Decode accepted garbage")
	}
}
