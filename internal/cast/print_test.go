package cast_test

import (
	"strings"
	"testing"

	"safeflow/internal/cast"
	"safeflow/internal/clex"
	"safeflow/internal/cparse"
)

func parse(t *testing.T, src string) *cast.File {
	t.Helper()
	l := clex.New("t.c", src)
	toks := l.All()
	if errs := l.Errors(); len(errs) > 0 {
		t.Fatalf("lex: %v", errs)
	}
	p := cparse.New("t.c", toks)
	f, err := p.ParseFile()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestPrintContainsConstructs(t *testing.T) {
	src := `
typedef struct { double a; int n; } S;
S *shared;
static int counter;

int helper(S *p, int k)
/***SafeFlow Annotation assume(core(p, 0, sizeof(S))) /***/
{
	int i;
	double acc;
	acc = 0.0;
	for (i = 0; i < k; i++) {
		acc += p->a * 2.0;
	}
	if (acc > 10.0) {
		return 1;
	} else {
		return 0;
	}
}

int main()
{
	int r;
	r = helper(shared, counter > 0 ? counter : 1);
	/***SafeFlow Annotation assert(safe(r)) /***/
	switch (r) {
	case 0:
		printf("zero\n");
		break;
	default:
		printf("other\n");
	}
	while (r > 0) {
		r--;
	}
	return r;
}
`
	out := cast.Print(parse(t, src))
	for _, want := range []string{
		"typedef struct",
		"S *shared;",
		"static int counter;",
		"/***SafeFlow Annotation assume(core(p, 0, sizeof(S))) /***/",
		"for (i = 0; ",
		"acc += ",
		"switch (r) {",
		"default:",
		"while (",
		"? counter : 1",
		"assert(safe(r))",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q:\n%s", want, out)
		}
	}
}

// TestPrintRoundTrip checks the printer emits parseable C that reprints to
// the same text (parse → print → parse → print is a fixpoint).
func TestPrintRoundTrip(t *testing.T) {
	src := `
typedef struct { double x[4]; int used; } Buf;
Buf ring;
double take(Buf *b, int i)
{
	double v;
	v = b->x[i] + ring.x[0];
	b->used = b->used - 1;
	return -v * 2.0;
}
int main()
{
	int j;
	double total;
	total = 0.0;
	for (j = 0; j < 4; j++) {
		total += take(&ring, j);
	}
	do {
		j--;
	} while (j > 0);
	return (int) total;
}
`
	first := cast.Print(parse(t, src))
	second := cast.Print(parse(t, first))
	if first != second {
		t.Errorf("print not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

func TestPrintExprPrecedenceExplicit(t *testing.T) {
	f := parse(t, "int x = 1 + 2 * 3;")
	vd := f.Decls[0].(*cast.VarDecl)
	out := cast.PrintExpr(vd.Init)
	if out != "1 + (2 * 3)" {
		t.Errorf("printed expr = %q", out)
	}
}
