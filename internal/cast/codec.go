// Binary (de)serialization of parsed translation units, used by the
// persistent parse cache to share ASTs across process restarts. The
// encoding is gob with every concrete node type registered; the AST is a
// pure tree of exported fields (csema keeps its resolution results in
// side tables), so a decoded File is behaviorally identical to a freshly
// parsed one.
//
// CodecVersion names the encoding. The disk cache stores it with every
// entry and invalidates entries written under a different version, so
// this constant MUST be bumped whenever a node type gains, loses, or
// re-types a field — gob would otherwise silently drop the difference.

package cast

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// CodecVersion versions the Encode/Decode byte format (see above).
const CodecVersion = 1

func init() {
	// Register every concrete type that can appear behind the Decl,
	// Stmt, Expr, and TypeExpr interfaces.
	for _, v := range []interface{}{
		// Types.
		&BaseType{}, &NamedType{}, &StructType{}, &EnumType{},
		&PointerType{}, &ArrayType{}, &FuncType{},
		// Declarations.
		&VarDecl{}, &FieldDecl{}, &ParamDecl{}, &FuncDecl{},
		&TypedefDecl{}, &RecordDecl{},
		// Statements.
		&BlockStmt{}, &DeclStmt{}, &ExprStmt{}, &EmptyStmt{}, &IfStmt{},
		&WhileStmt{}, &DoWhileStmt{}, &ForStmt{}, &ReturnStmt{},
		&BreakStmt{}, &ContinueStmt{}, &SwitchStmt{}, &CaseClause{},
		&LabeledStmt{}, &GotoStmt{}, &AnnotatedStmt{},
		// Expressions.
		&Ident{}, &IntLit{}, &FloatLit{}, &StrLit{}, &ParenExpr{},
		&UnaryExpr{}, &PostfixExpr{}, &BinaryExpr{}, &AssignExpr{},
		&CondExpr{}, &CallExpr{}, &IndexExpr{}, &MemberExpr{},
		&CastExpr{}, &SizeofExpr{},
	} {
		gob.Register(v)
	}
}

// Encode serializes a parsed file for the persistent parse cache.
func Encode(f *File) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("cast: encode %s: %w", f.Name, err)
	}
	return buf.Bytes(), nil
}

// Decode reconstructs a file serialized by Encode.
func Decode(data []byte) (*File, error) {
	f := new(File)
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(f); err != nil {
		return nil, fmt.Errorf("cast: decode: %w", err)
	}
	return f, nil
}
