// Package cast defines the abstract syntax tree for SafeFlow's C subset.
//
// The tree is deliberately close to the C grammar: declarations carry
// declarator-resolved types expressed as TypeExpr trees which the semantic
// analyzer (package csema) resolves into ctypes.Type values. SafeFlow
// annotations lexed from comments are attached to the nearest following
// function definition or statement.
package cast

import "safeflow/internal/ctoken"

// Node is implemented by every AST node.
type Node interface {
	Pos() ctoken.Pos
}

// File is one translation unit after preprocessing.
type File struct {
	Name  string
	Decls []Decl
}

// Pos implements Node.
func (f *File) Pos() ctoken.Pos {
	if len(f.Decls) > 0 {
		return f.Decls[0].Pos()
	}
	return ctoken.Pos{File: f.Name, Line: 1, Col: 1}
}

// ---------------------------------------------------------------------------
// Type expressions

// TypeExpr is a syntactic type, resolved by csema.
type TypeExpr interface {
	Node
	typeExpr()
}

// BaseType is a builtin type name possibly with signedness qualifiers
// already folded in (e.g. "unsigned int" -> Name "unsigned int").
type BaseType struct {
	NamePos ctoken.Pos
	Name    string // void, char, int, long, float, double, unsigned int, ...
}

// NamedType refers to a typedef name.
type NamedType struct {
	NamePos ctoken.Pos
	Name    string
}

// StructType is struct/union tag usage or inline definition.
type StructType struct {
	Keyword ctoken.Pos
	IsUnion bool
	Tag     string       // may be empty for anonymous definitions
	Fields  []*FieldDecl // nil when this is a bare reference to a tag
	Defined bool         // true when Fields were written here (even if empty)
}

// EnumType is an enum usage or inline definition.
type EnumType struct {
	Keyword ctoken.Pos
	Tag     string
	Members []EnumMember
	Defined bool
}

// EnumMember is one enumerator, with an optional explicit value.
type EnumMember struct {
	NamePos ctoken.Pos
	Name    string
	Value   Expr // nil for implicit
}

// PointerType is a pointer to an element type.
type PointerType struct {
	StarPos ctoken.Pos
	Elem    TypeExpr
}

// ArrayType is an array of Elem with an optional constant length.
type ArrayType struct {
	LbrackPos ctoken.Pos
	Elem      TypeExpr
	Len       Expr // nil for unsized ("[]")
}

// FuncType is a function type (used for declarators).
type FuncType struct {
	LparenPos ctoken.Pos
	Result    TypeExpr
	Params    []*ParamDecl
	Variadic  bool
}

// Pos implementations.
func (t *BaseType) Pos() ctoken.Pos    { return t.NamePos }
func (t *NamedType) Pos() ctoken.Pos   { return t.NamePos }
func (t *StructType) Pos() ctoken.Pos  { return t.Keyword }
func (t *EnumType) Pos() ctoken.Pos    { return t.Keyword }
func (t *PointerType) Pos() ctoken.Pos { return t.StarPos }
func (t *ArrayType) Pos() ctoken.Pos   { return t.LbrackPos }
func (t *FuncType) Pos() ctoken.Pos    { return t.LparenPos }

func (*BaseType) typeExpr()    {}
func (*NamedType) typeExpr()   {}
func (*StructType) typeExpr()  {}
func (*EnumType) typeExpr()    {}
func (*PointerType) typeExpr() {}
func (*ArrayType) typeExpr()   {}
func (*FuncType) typeExpr()    {}

// ---------------------------------------------------------------------------
// Declarations

// Decl is a top-level or block-level declaration.
type Decl interface {
	Node
	decl()
}

// StorageClass describes the storage-class specifier of a declaration.
type StorageClass int

// Storage classes. None means no explicit specifier.
const (
	StorageNone StorageClass = iota + 1
	StorageExtern
	StorageStatic
	StorageTypedef
)

// VarDecl declares one variable (file- or block-scope).
type VarDecl struct {
	NamePos ctoken.Pos
	Name    string
	Type    TypeExpr
	Storage StorageClass
	Init    Expr // nil if absent
}

// FieldDecl is a struct/union member.
type FieldDecl struct {
	NamePos ctoken.Pos
	Name    string
	Type    TypeExpr
}

// ParamDecl is one function parameter.
type ParamDecl struct {
	NamePos ctoken.Pos
	Name    string // may be empty in prototypes
	Type    TypeExpr
}

// FuncDecl is a function definition or prototype (Body nil for prototypes).
type FuncDecl struct {
	NamePos     ctoken.Pos
	Name        string
	Type        *FuncType
	Storage     StorageClass
	Body        *BlockStmt // nil for prototypes
	Annotations []Annotation
}

// TypedefDecl binds a name to a type.
type TypedefDecl struct {
	NamePos ctoken.Pos
	Name    string
	Type    TypeExpr
}

// RecordDecl is a standalone struct/union/enum definition ("struct S {...};").
type RecordDecl struct {
	Type TypeExpr // *StructType or *EnumType with Defined=true
}

// Pos implementations.
func (d *VarDecl) Pos() ctoken.Pos     { return d.NamePos }
func (d *FieldDecl) Pos() ctoken.Pos   { return d.NamePos }
func (d *ParamDecl) Pos() ctoken.Pos   { return d.NamePos }
func (d *FuncDecl) Pos() ctoken.Pos    { return d.NamePos }
func (d *TypedefDecl) Pos() ctoken.Pos { return d.NamePos }
func (d *RecordDecl) Pos() ctoken.Pos  { return d.Type.Pos() }

func (*VarDecl) decl()     {}
func (*FieldDecl) decl()   {}
func (*ParamDecl) decl()   {}
func (*FuncDecl) decl()    {}
func (*TypedefDecl) decl() {}
func (*RecordDecl) decl()  {}

// ---------------------------------------------------------------------------
// Annotations

// Annotation is one parsed SafeFlow annotation comment, still in raw form;
// package annot interprets the body.
type Annotation struct {
	AtPos ctoken.Pos
	Body  string
}

// Pos implements Node.
func (a Annotation) Pos() ctoken.Pos { return a.AtPos }

// ---------------------------------------------------------------------------
// Statements

// Stmt is a statement.
type Stmt interface {
	Node
	stmt()
}

// BlockStmt is a braced statement list; block-scope declarations appear as
// DeclStmt items.
type BlockStmt struct {
	LbracePos ctoken.Pos
	List      []Stmt
}

// DeclStmt wraps block-scope declarations.
type DeclStmt struct {
	Decls []*VarDecl
}

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	X Expr
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct {
	SemiPos ctoken.Pos
}

// IfStmt is if/else.
type IfStmt struct {
	IfPos ctoken.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // nil if absent
}

// WhileStmt is a while loop.
type WhileStmt struct {
	WhilePos ctoken.Pos
	Cond     Expr
	Body     Stmt
}

// DoWhileStmt is a do { } while loop.
type DoWhileStmt struct {
	DoPos ctoken.Pos
	Body  Stmt
	Cond  Expr
}

// ForStmt is a for loop; Init may be a DeclStmt or ExprStmt.
type ForStmt struct {
	ForPos ctoken.Pos
	Init   Stmt // nil if absent
	Cond   Expr // nil if absent
	Post   Expr // nil if absent
	Body   Stmt
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	RetPos ctoken.Pos
	X      Expr // nil for bare return
}

// BreakStmt breaks a loop or switch.
type BreakStmt struct{ KwPos ctoken.Pos }

// ContinueStmt continues a loop.
type ContinueStmt struct{ KwPos ctoken.Pos }

// SwitchStmt is a switch over an integer expression.
type SwitchStmt struct {
	SwitchPos ctoken.Pos
	Tag       Expr
	Body      []*CaseClause
}

// CaseClause is one case or default arm (fallthrough is preserved: the arm
// lists only its own statements and Fallthrough says whether control
// continues into the next arm).
type CaseClause struct {
	CasePos     ctoken.Pos
	Values      []Expr // nil => default
	Body        []Stmt
	Fallthrough bool
}

// LabeledStmt is "name: stmt" (goto targets).
type LabeledStmt struct {
	NamePos ctoken.Pos
	Name    string
	Stmt    Stmt
}

// GotoStmt is "goto name;".
type GotoStmt struct {
	KwPos ctoken.Pos
	Name  string
}

// AnnotatedStmt attaches annotations to the statement that follows them.
type AnnotatedStmt struct {
	Annotations []Annotation
	Stmt        Stmt
}

// Pos implementations.
func (s *BlockStmt) Pos() ctoken.Pos   { return s.LbracePos }
func (s *DeclStmt) Pos() ctoken.Pos    { return s.Decls[0].Pos() }
func (s *ExprStmt) Pos() ctoken.Pos    { return s.X.Pos() }
func (s *EmptyStmt) Pos() ctoken.Pos   { return s.SemiPos }
func (s *IfStmt) Pos() ctoken.Pos      { return s.IfPos }
func (s *WhileStmt) Pos() ctoken.Pos   { return s.WhilePos }
func (s *DoWhileStmt) Pos() ctoken.Pos { return s.DoPos }
func (s *ForStmt) Pos() ctoken.Pos     { return s.ForPos }
func (s *ReturnStmt) Pos() ctoken.Pos  { return s.RetPos }
func (s *BreakStmt) Pos() ctoken.Pos   { return s.KwPos }
func (s *ContinueStmt) Pos() ctoken.Pos {
	return s.KwPos
}
func (s *SwitchStmt) Pos() ctoken.Pos  { return s.SwitchPos }
func (s *CaseClause) Pos() ctoken.Pos  { return s.CasePos }
func (s *LabeledStmt) Pos() ctoken.Pos { return s.NamePos }
func (s *GotoStmt) Pos() ctoken.Pos    { return s.KwPos }
func (s *AnnotatedStmt) Pos() ctoken.Pos {
	if len(s.Annotations) > 0 {
		return s.Annotations[0].AtPos
	}
	return s.Stmt.Pos()
}

func (*BlockStmt) stmt()     {}
func (*DeclStmt) stmt()      {}
func (*ExprStmt) stmt()      {}
func (*EmptyStmt) stmt()     {}
func (*IfStmt) stmt()        {}
func (*WhileStmt) stmt()     {}
func (*DoWhileStmt) stmt()   {}
func (*ForStmt) stmt()       {}
func (*ReturnStmt) stmt()    {}
func (*BreakStmt) stmt()     {}
func (*ContinueStmt) stmt()  {}
func (*SwitchStmt) stmt()    {}
func (*CaseClause) stmt()    {}
func (*LabeledStmt) stmt()   {}
func (*GotoStmt) stmt()      {}
func (*AnnotatedStmt) stmt() {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is an expression.
type Expr interface {
	Node
	expr()
}

// Ident is a name use.
type Ident struct {
	NamePos ctoken.Pos
	Name    string
}

// IntLit is an integer literal (value already decoded).
type IntLit struct {
	LitPos ctoken.Pos
	Value  int64
	Text   string
}

// FloatLit is a floating literal.
type FloatLit struct {
	LitPos ctoken.Pos
	Value  float64
	Text   string
}

// StrLit is a string literal (unescaped contents).
type StrLit struct {
	LitPos ctoken.Pos
	Value  string
}

// ParenExpr preserves explicit parentheses.
type ParenExpr struct {
	LparenPos ctoken.Pos
	X         Expr
}

// UnaryExpr is a prefix unary operation: - ! ~ * & ++ -- (prefix).
type UnaryExpr struct {
	OpPos ctoken.Pos
	Op    ctoken.Kind
	X     Expr
}

// PostfixExpr is x++ or x--.
type PostfixExpr struct {
	OpPos ctoken.Pos
	Op    ctoken.Kind // INC or DEC
	X     Expr
}

// BinaryExpr is a binary operation (arithmetic, comparison, logical).
type BinaryExpr struct {
	OpPos ctoken.Pos
	Op    ctoken.Kind
	X, Y  Expr
}

// AssignExpr is assignment, possibly compound (+= etc.).
type AssignExpr struct {
	OpPos ctoken.Pos
	Op    ctoken.Kind // ASSIGN..SHRASSIGN
	LHS   Expr
	RHS   Expr
}

// CondExpr is the ternary conditional.
type CondExpr struct {
	QPos ctoken.Pos
	Cond Expr
	Then Expr
	Else Expr
}

// CallExpr is a function call. Only direct calls by name are supported —
// the SafeFlow subset forbids function pointers, matching the paper's
// restriction that the analyzed core components use direct calls.
type CallExpr struct {
	LparenPos ctoken.Pos
	Fun       Expr // usually *Ident
	Args      []Expr
}

// IndexExpr is array indexing a[i].
type IndexExpr struct {
	LbrackPos ctoken.Pos
	X         Expr
	Index     Expr
}

// MemberExpr is x.f (Arrow false) or p->f (Arrow true).
type MemberExpr struct {
	DotPos ctoken.Pos
	X      Expr
	Name   string
	Arrow  bool
}

// CastExpr is (T)x.
type CastExpr struct {
	LparenPos ctoken.Pos
	Type      TypeExpr
	X         Expr
}

// SizeofExpr is sizeof(T) or sizeof expr.
type SizeofExpr struct {
	KwPos ctoken.Pos
	Type  TypeExpr // non-nil for sizeof(type)
	X     Expr     // non-nil for sizeof expr
}

// Pos implementations.
func (e *Ident) Pos() ctoken.Pos       { return e.NamePos }
func (e *IntLit) Pos() ctoken.Pos      { return e.LitPos }
func (e *FloatLit) Pos() ctoken.Pos    { return e.LitPos }
func (e *StrLit) Pos() ctoken.Pos      { return e.LitPos }
func (e *ParenExpr) Pos() ctoken.Pos   { return e.LparenPos }
func (e *UnaryExpr) Pos() ctoken.Pos   { return e.OpPos }
func (e *PostfixExpr) Pos() ctoken.Pos { return e.X.Pos() }
func (e *BinaryExpr) Pos() ctoken.Pos  { return e.X.Pos() }
func (e *AssignExpr) Pos() ctoken.Pos  { return e.LHS.Pos() }
func (e *CondExpr) Pos() ctoken.Pos    { return e.Cond.Pos() }
func (e *CallExpr) Pos() ctoken.Pos    { return e.Fun.Pos() }
func (e *IndexExpr) Pos() ctoken.Pos   { return e.X.Pos() }
func (e *MemberExpr) Pos() ctoken.Pos  { return e.X.Pos() }
func (e *CastExpr) Pos() ctoken.Pos    { return e.LparenPos }
func (e *SizeofExpr) Pos() ctoken.Pos  { return e.KwPos }

func (*Ident) expr()       {}
func (*IntLit) expr()      {}
func (*FloatLit) expr()    {}
func (*StrLit) expr()      {}
func (*ParenExpr) expr()   {}
func (*UnaryExpr) expr()   {}
func (*PostfixExpr) expr() {}
func (*BinaryExpr) expr()  {}
func (*AssignExpr) expr()  {}
func (*CondExpr) expr()    {}
func (*CallExpr) expr()    {}
func (*IndexExpr) expr()   {}
func (*MemberExpr) expr()  {}
func (*CastExpr) expr()    {}
func (*SizeofExpr) expr()  {}

// Unparen strips any number of ParenExpr wrappers.
func Unparen(e Expr) Expr {
	for {
		p, ok := e.(*ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
