package daemon

// Service-level acceptance tests, run entirely in-process via httptest:
// the daemon's response body must be byte-identical to the CLI JSON
// writer on the same inputs — disk cache cold and warm, concurrency 1
// and 8 — backpressure must reject with 429 + Retry-After once the
// worker pool and queue are full, and a corrupted disk entry must be
// evicted and recomputed without changing the report.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"safeflow/internal/corpus"
	"safeflow/internal/diskcache"
	"safeflow/internal/frontend"
	"safeflow/internal/vfg"
	"safeflow/pkg/safeflow"
)

func resetMemoryCaches() {
	frontend.ResetParseCache()
	vfg.ResetSummaryCache()
}

func figure2(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../testdata/figure2.c")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postAnalyze(t *testing.T, url string, req AnalyzeRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// cliJSON renders the report exactly as `safeflow -json` would.
func cliJSON(t *testing.T, name string, sources map[string]string, cFiles []string, opts safeflow.Options) []byte {
	t.Helper()
	rep, err := safeflow.Analyze(name, sources, cFiles, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := safeflow.WriteReportJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAnalyzeMatchesCLIColdAndWarm(t *testing.T) {
	resetMemoryCaches()
	defer resetMemoryCaches()

	src := figure2(t)
	sources := map[string]string{"figure2.c": src}

	// The CLI reference report, computed with no disk cache at all.
	want := cliJSON(t, "figure2", sources, []string{"figure2.c"}, safeflow.Options{})

	dc, err := diskcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: dc})

	req := AnalyzeRequest{Name: "figure2", Sources: sources}
	for _, temp := range []string{"cold", "disk-warm", "memory-warm"} {
		if temp != "memory-warm" {
			resetMemoryCaches()
		}
		resp, got := postAnalyze(t, ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", temp, resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: daemon body diverged from CLI JSON\n got: %s\nwant: %s", temp, got, want)
		}
		if exit := resp.Header.Get("X-Safeflow-Exit"); exit != "1" {
			t.Errorf("%s: X-Safeflow-Exit = %q, want 1 (figure2 has findings)", temp, exit)
		}
	}
}

func TestAnalyzeConcurrentRequestsDeterministic(t *testing.T) {
	resetMemoryCaches()
	defer resetMemoryCaches()

	src := figure2(t)
	sources := map[string]string{"figure2.c": src}
	want := cliJSON(t, "figure2", sources, []string{"figure2.c"}, safeflow.Options{})

	dc, err := diskcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: dc, Concurrency: 8, QueueDepth: 64})

	const n = 16
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(AnalyzeRequest{Name: "figure2", Sources: sources})
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			got, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, got)
				return
			}
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("concurrent response diverged from CLI JSON")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// The acceptance bar, per corpus system: the daemon's bytes equal the
// CLI writer's with the disk cache cold and warm.
func TestAnalyzeCorpusMatchesCLI(t *testing.T) {
	resetMemoryCaches()
	defer resetMemoryCaches()

	dc, err := diskcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: dc})

	for _, sys := range corpus.All() {
		src, err := sys.SourceMap()
		if err != nil {
			t.Fatal(err)
		}
		want := cliJSON(t, sys.Name, src, sys.CFiles, safeflow.Options{})
		req := AnalyzeRequest{Name: sys.Name, Sources: src, CFiles: sys.CFiles}
		for _, temp := range []string{"cold", "disk-warm"} {
			resetMemoryCaches()
			resp, got := postAnalyze(t, ts.URL, req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s %s: status %d: %s", sys.Name, temp, resp.StatusCode, got)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s %s: daemon body diverged from CLI JSON", sys.Name, temp)
			}
		}
	}
}

func TestCorruptDiskEntryHealsWithoutChangingReport(t *testing.T) {
	resetMemoryCaches()
	defer resetMemoryCaches()

	src := figure2(t)
	sources := map[string]string{"figure2.c": src}

	dc, err := diskcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: dc})
	req := AnalyzeRequest{Name: "figure2", Sources: sources}

	_, want := postAnalyze(t, ts.URL, req)
	if dc.Len("parse") == 0 || dc.Len("summary") == 0 {
		t.Fatalf("no disk entries after first request: parse=%d summary=%d",
			dc.Len("parse"), dc.Len("summary"))
	}
	if n := dc.Corrupt("parse", 100) + dc.Corrupt("summary", 100); n == 0 {
		t.Fatal("Corrupt damaged nothing")
	}
	resetMemoryCaches() // force the daemon back onto the (damaged) disk tier

	resp, got := postAnalyze(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after corruption: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Error("report changed after disk-cache corruption")
	}

	// The evictions must surface in the daemon's aggregated metrics.
	mresp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.CacheCorruptEvictions == 0 {
		t.Error("corrupted entries not surfaced in /metricsz cache_corrupt_evictions")
	}
	if m.RequestsOK != 2 {
		t.Errorf("requests_ok = %d, want 2", m.RequestsOK)
	}
}

func TestBackpressureRejectsWith429(t *testing.T) {
	s, ts := newTestServer(t, Config{Concurrency: 1, QueueDepth: 1})

	// Occupy the single worker slot and the single queue position so the
	// next request has nowhere to go.
	s.sem <- struct{}{}
	s.queued.Store(1)
	defer func() { <-s.sem; s.queued.Store(0) }()

	resp, body := postAnalyze(t, ts.URL, AnalyzeRequest{
		Name:    "x",
		Sources: map[string]string{"x.c": "int main(void) { return 0; }\n"},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	mresp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.RequestsRejected != 1 {
		t.Errorf("requests_rejected = %d, want 1", m.RequestsRejected)
	}
}

func TestQueueAdmitsWhenSlotFrees(t *testing.T) {
	s, ts := newTestServer(t, Config{Concurrency: 1, QueueDepth: 4})

	// Hold the only slot briefly; the request should queue, then run.
	s.sem <- struct{}{}
	go func() {
		time.Sleep(50 * time.Millisecond)
		<-s.sem
	}()
	resp, body := postAnalyze(t, ts.URL, AnalyzeRequest{
		Name:    "tiny",
		Sources: map[string]string{"tiny.c": "int main(void) { return 0; }\n"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queued request failed: status %d: %s", resp.StatusCode, body)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", resp.StatusCode)
	}

	s.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}

	r2, body := postAnalyze(t, ts.URL, AnalyzeRequest{
		Name:    "x",
		Sources: map[string]string{"x.c": "int main(void) { return 0; }\n"},
	})
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining analyze status %d, want 503: %s", r2.StatusCode, body)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{}) // local paths disabled

	cases := []struct {
		name string
		req  AnalyzeRequest
		want string
	}{
		{"missing name", AnalyzeRequest{Sources: map[string]string{"a.c": "int x;"}}, "name is required"},
		{"no input form", AnalyzeRequest{Name: "x"}, "exactly one of"},
		{"two input forms", AnalyzeRequest{Name: "x", Sources: map[string]string{"a.c": "int x;"}, Dir: "/tmp"}, "exactly one of"},
		{"local paths disabled", AnalyzeRequest{Name: "x", Dir: "/tmp"}, "without -local-paths"},
		{"c_files without sources", AnalyzeRequest{Name: "x", Paths: []string{"/tmp/a.c"}, CFiles: []string{"a.c"}}, "c_files"},
		{"bad alias", AnalyzeRequest{Name: "x", Sources: map[string]string{"a.c": "int x;"}, Options: AnalyzeOptions{Alias: "steensgaard"}}, "unknown alias"},
		{"no .c sources", AnalyzeRequest{Name: "x", Sources: map[string]string{"a.h": "int x;"}}, "no .c files"},
	}
	for _, tc := range cases {
		resp, body := postAnalyze(t, ts.URL, tc.req)
		wantStatus := http.StatusBadRequest
		if tc.name == "no .c sources" {
			wantStatus = http.StatusUnprocessableEntity
		}
		if resp.StatusCode != wantStatus {
			t.Errorf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, wantStatus, body)
			continue
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: body %q does not mention %q", tc.name, body, tc.want)
		}
	}

	// Unknown top-level fields are rejected, not silently ignored.
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"name":"x","sourcez":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400: %s", resp.StatusCode, body)
	}

	// GET on the analyze endpoint is a method error.
	resp, err = http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze: status %d, want 405", resp.StatusCode)
	}
}

func TestLocalPathsForm(t *testing.T) {
	resetMemoryCaches()
	defer resetMemoryCaches()

	dir := t.TempDir()
	src := figure2(t)
	path := dir + "/figure2.c"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	want := cliJSON(t, "fig2", map[string]string{"figure2.c": src}, []string{"figure2.c"}, safeflow.Options{})

	_, ts := newTestServer(t, Config{AllowLocalPaths: true})
	for _, req := range []AnalyzeRequest{
		{Name: "fig2", Dir: dir},
		{Name: "fig2", Paths: []string{path}},
	} {
		resp, got := postAnalyze(t, ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Error("local-path response diverged from inline-sources CLI JSON")
		}
	}
}

func TestStatsOptionControlsMetricsInBody(t *testing.T) {
	resetMemoryCaches()
	defer resetMemoryCaches()

	_, ts := newTestServer(t, Config{})
	sources := map[string]string{"figure2.c": figure2(t)}

	_, plain := postAnalyze(t, ts.URL, AnalyzeRequest{Name: "figure2", Sources: sources})
	if bytes.Contains(plain, []byte(`"metrics"`)) {
		t.Error("body includes metrics without options.stats")
	}
	_, stats := postAnalyze(t, ts.URL, AnalyzeRequest{
		Name: "figure2", Sources: sources, Options: AnalyzeOptions{Stats: true},
	})
	if !bytes.Contains(stats, []byte(`"metrics"`)) {
		t.Error("body missing metrics despite options.stats")
	}
}

func TestResolveOptionsTimeoutClamp(t *testing.T) {
	s := New(Config{DefaultTimeout: time.Second, MaxTimeout: 2 * time.Second})

	_, timeout, err := s.resolveOptions(AnalyzeOptions{})
	if err != nil || timeout != time.Second {
		t.Fatalf("default timeout = %v, %v; want 1s", timeout, err)
	}
	_, timeout, err = s.resolveOptions(AnalyzeOptions{TimeoutMS: 500})
	if err != nil || timeout != 500*time.Millisecond {
		t.Fatalf("explicit timeout = %v, %v; want 500ms", timeout, err)
	}
	_, timeout, err = s.resolveOptions(AnalyzeOptions{TimeoutMS: 60_000})
	if err != nil || timeout != 2*time.Second {
		t.Fatalf("oversized timeout = %v, %v; want clamp to 2s", timeout, err)
	}
}
