package daemon

// Session endpoint tests: a /v1/update response must be byte-identical
// to a /v1/analyze of the full edited system, the session store must
// stay within its eviction bound, and the incremental counters must
// surface in /metricsz.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"safeflow/internal/corpus"
)

func postUpdate(t *testing.T, url string, req UpdateRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestUpdateMatchesAnalyze(t *testing.T) {
	resetMemoryCaches()
	defer resetMemoryCaches()

	g := corpus.Generate(21, corpus.GenConfig{Regions: 2, Monitors: 3, Stages: 4})
	script := corpus.GenerateEdits(g, 4, 5)
	if len(script) == 0 {
		t.Fatal("empty edit script")
	}
	_, ts := newTestServer(t, Config{})

	resp, got := postUpdate(t, ts.URL, UpdateRequest{
		Session: "s1", Name: g.Name, Sources: g.Sources, CFiles: g.CFiles,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open: status %d: %s", resp.StatusCode, got)
	}
	if h := resp.Header.Get("X-Safeflow-Session"); h != "opened" {
		t.Fatalf("open: X-Safeflow-Session = %q, want opened", h)
	}
	cur := map[string]string{}
	for k, v := range g.Sources {
		cur[k] = v
	}
	if want, _ := postAnalyzeBody(t, ts.URL, g.Name, cur, g.CFiles); !bytes.Equal(got, want) {
		t.Fatalf("open body diverged from /v1/analyze\n got: %s\nwant: %s", got, want)
	}

	for i, e := range script {
		text, ok := e.Apply(cur)
		if !ok {
			t.Fatalf("edit %d (%s) does not anchor", i, e.Desc)
		}
		cur[e.File] = text
		resp, got := postUpdate(t, ts.URL, UpdateRequest{
			Session: "s1", Sources: map[string]string{e.File: text},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update %d (%s): status %d: %s", i, e.Desc, resp.StatusCode, got)
		}
		if h := resp.Header.Get("X-Safeflow-Session"); h != "updated" {
			t.Fatalf("update %d: X-Safeflow-Session = %q, want updated", i, h)
		}
		want, wantExit := postAnalyzeBody(t, ts.URL, g.Name, cur, g.CFiles)
		if !bytes.Equal(got, want) {
			t.Errorf("update %d (%s): body diverged from /v1/analyze of the edited system\n got: %s\nwant: %s",
				i, e.Desc, got, want)
		}
		if exit := resp.Header.Get("X-Safeflow-Exit"); exit != wantExit {
			t.Errorf("update %d: X-Safeflow-Exit = %q, want %q", i, exit, wantExit)
		}
		if h := resp.Header.Get("X-Safeflow-Incremental"); h != "true" {
			t.Errorf("update %d (%s): X-Safeflow-Incremental = %q, want true", i, e.Desc, h)
		}
	}
}

// postAnalyzeBody fetches the /v1/analyze body for the full system — the
// reference every /v1/update response must match byte for byte.
func postAnalyzeBody(t *testing.T, url, name string, sources map[string]string, cFiles []string) ([]byte, string) {
	t.Helper()
	snap := map[string]string{}
	for k, v := range sources {
		snap[k] = v
	}
	resp, body := postAnalyze(t, url, AnalyzeRequest{Name: name, Sources: snap, CFiles: cFiles})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/analyze reference: status %d: %s", resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Safeflow-Exit")
}

func TestSessionEvictionBound(t *testing.T) {
	resetMemoryCaches()
	defer resetMemoryCaches()

	s, ts := newTestServer(t, Config{MaxSessions: 2})
	for i := 0; i < 5; i++ {
		g := corpus.Generate(int64(100+i), corpus.GenConfig{Regions: 1, Monitors: 1, Stages: 1})
		resp, body := postUpdate(t, ts.URL, UpdateRequest{
			Session: fmt.Sprintf("sess-%d", i), Name: g.Name, Sources: g.Sources, CFiles: g.CFiles,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("open %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	s.sessMu.Lock()
	n := len(s.sessions)
	s.sessMu.Unlock()
	if n > 2 {
		t.Fatalf("session store holds %d entries, bound is 2", n)
	}

	// An evicted session re-opens when the full tree is resent…
	g := corpus.Generate(100, corpus.GenConfig{Regions: 1, Monitors: 1, Stages: 1})
	resp, _ := postUpdate(t, ts.URL, UpdateRequest{
		Session: "sess-0", Name: g.Name, Sources: g.Sources, CFiles: g.CFiles,
	})
	if h := resp.Header.Get("X-Safeflow-Session"); h != "opened" {
		t.Fatalf("evicted session did not re-open: X-Safeflow-Session = %q", h)
	}
	// …but a delta-only request for an unknown id is rejected, not
	// silently analyzed as a one-file system.
	resp, body := postUpdate(t, ts.URL, UpdateRequest{
		Session: "sess-1", Sources: map[string]string{"main.c": "int main() { return 0; }\n"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("delta to evicted session: status %d (want 400): %s", resp.StatusCode, body)
	}
}

func TestMetricszIncrementalCounters(t *testing.T) {
	resetMemoryCaches()
	defer resetMemoryCaches()

	g := corpus.Generate(33, corpus.GenConfig{})
	_, ts := newTestServer(t, Config{})
	resp, body := postUpdate(t, ts.URL, UpdateRequest{
		Session: "m", Name: g.Name, Sources: g.Sources, CFiles: g.CFiles,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open: status %d: %s", resp.StatusCode, body)
	}
	edited := g.Sources["monitors.c"] + "\n/* touch */\n"
	resp, body = postUpdate(t, ts.URL, UpdateRequest{
		Session: "m", Sources: map[string]string{"monitors.c": edited},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d: %s", resp.StatusCode, body)
	}

	mresp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.IncrSessions != 1 {
		t.Errorf("incr_sessions = %d, want 1", m.IncrSessions)
	}
	if m.IncrUpdateNS <= 0 {
		t.Errorf("incr_update_ns = %d, want > 0", m.IncrUpdateNS)
	}
	if m.IncrFuncsReused <= 0 {
		t.Errorf("incr_funcs_reused = %d, want > 0 (no-op edit)", m.IncrFuncsReused)
	}
	if m.IncrFuncsInvalidated != 0 {
		t.Errorf("incr_funcs_invalidated = %d, want 0 (no-op edit)", m.IncrFuncsInvalidated)
	}
	if m.IncrFallbacks != 0 {
		t.Errorf("incr_fallbacks = %d, want 0", m.IncrFallbacks)
	}
}
