package daemon

// Single-flight and load-shedding tests: a stampede of identical
// in-flight requests must collapse to one pipeline execution with every
// client receiving byte-identical bytes, the Retry-After hint must
// track the daemon's observed load rather than a constant, and the
// predictive shedder must refuse requests whose queue wait already
// exceeds their own deadline.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

func readAllBody(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func TestAnalyzeKeyDistinguishesRequests(t *testing.T) {
	base := AnalyzeRequest{Name: "x", Sources: map[string]string{"x.c": "int x;"}}
	same := AnalyzeRequest{Name: "x", Sources: map[string]string{"x.c": "int x;"}}
	if analyzeKey(&base) != analyzeKey(&same) {
		t.Error("identical requests produced different keys")
	}
	cases := map[string]AnalyzeRequest{
		"name":    {Name: "y", Sources: map[string]string{"x.c": "int x;"}},
		"source":  {Name: "x", Sources: map[string]string{"x.c": "int y;"}},
		"file":    {Name: "x", Sources: map[string]string{"y.c": "int x;"}},
		"options": {Name: "x", Sources: map[string]string{"x.c": "int x;"}, Options: AnalyzeOptions{Alias: "unify"}},
		"stats":   {Name: "x", Sources: map[string]string{"x.c": "int x;"}, Options: AnalyzeOptions{Stats: true}},
	}
	for what, req := range cases {
		if analyzeKey(&base) == analyzeKey(&req) {
			t.Errorf("requests differing in %s share a key", what)
		}
	}
}

// The stampede shape: N identical requests concurrently in flight run
// the pipeline once. Every response is 200 with the same bytes,
// dedup_hits records N−1, and the aggregated run metrics show exactly
// one analysis (figure2 is a single translation unit).
func TestStampedeCollapsesToOneAnalysis(t *testing.T) {
	resetMemoryCaches()
	defer resetMemoryCaches()

	s, ts := newTestServer(t, Config{Concurrency: 1, QueueDepth: 4})
	req := AnalyzeRequest{Name: "figure2", Sources: map[string]string{"figure2.c": figure2(t)}}

	// Hold the only worker slot so the leader blocks in the admission
	// queue while the rest of the stampede arrives and joins its flight.
	s.sem <- struct{}{}

	const n = 8
	type reply struct {
		status int
		body   []byte
	}
	replies := make(chan reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			data, _ := readAllBody(resp)
			replies <- reply{resp.StatusCode, data}
		}()
	}

	// Wait until all n requests share the one flight (the leader is a
	// waiter too), then release the worker slot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.flightMu.Lock()
		var waiters int64
		flights := len(s.flights)
		for _, f := range s.flights {
			waiters = f.waiters.Load()
		}
		s.flightMu.Unlock()
		if flights == 1 && waiters == n {
			break
		}
		if flights > 1 {
			t.Fatalf("identical requests split into %d flights", flights)
		}
		if time.Now().After(deadline) {
			t.Fatalf("stampede never converged: %d flights, %d waiters", flights, waiters)
		}
		time.Sleep(2 * time.Millisecond)
	}
	<-s.sem

	wg.Wait()
	close(replies)
	var first []byte
	for r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("stampede request: status %d: %s", r.status, r.body)
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Error("stampede responses diverged")
		}
	}

	var m Metrics
	s.mu.Lock()
	m = s.agg
	s.mu.Unlock()
	if m.DedupHits != n-1 {
		t.Errorf("dedup_hits = %d, want %d", m.DedupHits, n-1)
	}
	if m.RequestsOK != n {
		t.Errorf("requests_ok = %d, want %d (followers count like leaders)", m.RequestsOK, n)
	}
	if m.TranslationUnits != 1 {
		t.Errorf("translation_units = %d, want 1 (exactly one pipeline execution)", m.TranslationUnits)
	}
	if m.RequestsRejected != 0 || m.ShedQueueFull != 0 {
		t.Errorf("stampede shed load: rejected=%d queue_full=%d", m.RequestsRejected, m.ShedQueueFull)
	}
}

// Requests that are not identical must not share a flight.
func TestDistinctRequestsDoNotDedup(t *testing.T) {
	resetMemoryCaches()
	defer resetMemoryCaches()

	s, ts := newTestServer(t, Config{Concurrency: 2, QueueDepth: 8})
	src := figure2(t)
	var wg sync.WaitGroup
	for _, name := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(AnalyzeRequest{Name: name, Sources: map[string]string{"figure2.c": src}})
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			data, _ := readAllBody(resp)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d: %s", name, resp.StatusCode, data)
			}
		}()
	}
	wg.Wait()
	s.mu.Lock()
	dedup := s.agg.DedupHits
	s.mu.Unlock()
	if dedup != 0 {
		t.Errorf("dedup_hits = %d for distinct requests, want 0", dedup)
	}
}

// The Retry-After hint must be derived from observed load: queued
// scheduling waves times the mean analysis time, not a constant 1.
func TestRetryAfterTracksLoad(t *testing.T) {
	s := New(Config{Concurrency: 4})

	if got := s.retryAfterSecs(); got != 1 {
		t.Errorf("cold hint = %d, want 1 (no completed analyses yet)", got)
	}

	// Mean analysis time 2s (2 completed requests, 4s total wall).
	s.count(func(m *Metrics) {
		m.RequestsOK = 2
		m.AnalysisWallNS = (4 * time.Second).Nanoseconds()
	})
	if got := s.retryAfterSecs(); got != 2 {
		t.Errorf("idle hint = %d, want 2 (one wave at mean 2s)", got)
	}

	// 8 queued over concurrency 4 → 2 waves ahead + the running wave.
	s.queued.Store(8)
	if got := s.retryAfterSecs(); got != 6 {
		t.Errorf("loaded hint = %d, want 6 (3 waves × 2s)", got)
	}

	// Pathological mean clamps to 60 so the hint stays a backoff.
	s.count(func(m *Metrics) { m.AnalysisWallNS = (400 * time.Second).Nanoseconds() })
	if got := s.retryAfterSecs(); got != 60 {
		t.Errorf("pathological hint = %d, want clamp to 60", got)
	}
}

// End to end: a 429 carries the load-derived hint, not "1".
func TestRejectionCarriesLoadDerivedRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{Concurrency: 1, QueueDepth: 1})
	s.count(func(m *Metrics) {
		m.RequestsOK = 1
		m.AnalysisWallNS = (2 * time.Second).Nanoseconds()
	})
	s.sem <- struct{}{}
	s.queued.Store(1)
	defer func() { <-s.sem; s.queued.Store(0) }()

	resp, body := postAnalyze(t, ts.URL, AnalyzeRequest{
		Name:    "x",
		Sources: map[string]string{"x.c": "int main(void) { return 0; }\n"},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	// 1 queued / 1 worker + the running wave = 2 waves × mean 2s.
	if ra := resp.Header.Get("Retry-After"); ra != "4" {
		t.Errorf("Retry-After = %q, want 4 (2 waves at mean 2s)", ra)
	}
}

// A request whose estimated queue wait exceeds its own timeout is shed
// immediately instead of timing out in line.
func TestPredictiveShed(t *testing.T) {
	s, ts := newTestServer(t, Config{Concurrency: 1, QueueDepth: 100})
	s.count(func(m *Metrics) {
		m.RequestsOK = 1
		m.AnalysisWallNS = (10 * time.Second).Nanoseconds()
	})
	s.sem <- struct{}{}
	s.queued.Store(50)
	defer func() { <-s.sem; s.queued.Store(0) }()

	resp, body := postAnalyze(t, ts.URL, AnalyzeRequest{
		Name:    "x",
		Sources: map[string]string{"x.c": "int main(void) { return 0; }\n"},
		Options: AnalyzeOptions{TimeoutMS: 1000},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	s.mu.Lock()
	shed := s.agg.ShedPredicted
	s.mu.Unlock()
	if shed != 1 {
		t.Errorf("shed_predicted = %d, want 1", shed)
	}
}
