package daemon

// SARIF + policy surface of POST /v1/analyze: the ?format=sarif query
// (or options.format) must render SARIF with the sarif media type, the
// body must be byte-identical to the CLI SARIF writer, the format must
// participate in single-flight keying (a JSON and a SARIF request for
// the same system are different flights), and an unknown policy name is
// a 400.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"safeflow/internal/sarifschema"
	"safeflow/pkg/safeflow"
)

func jsonBody(t *testing.T, req AnalyzeRequest) ([]byte, error) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b, nil
}

func postRaw(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestAnalyzeSARIFFormat(t *testing.T) {
	resetMemoryCaches()
	t.Cleanup(resetMemoryCaches)
	_, ts := newTestServer(t, Config{Workers: 2})

	sources := map[string]string{"figure2.c": figure2(t)}
	req := AnalyzeRequest{Name: "figure2", Sources: sources}

	// Query parameter form.
	body, _ := jsonBody(t, req)
	resp, data := postRaw(t, ts.URL+"/v1/analyze?format=sarif", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sarif+json" {
		t.Errorf("Content-Type = %q, want application/sarif+json", ct)
	}
	if errs := sarifschema.ValidateSARIF(data); len(errs) != 0 {
		t.Fatalf("daemon SARIF does not validate: %v", errs)
	}

	// Byte-identical to the CLI writer.
	rep, err := safeflow.Analyze("figure2", sources, []string{"figure2.c"}, safeflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := safeflow.WriteReportSARIF(&want, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want.Bytes()) {
		t.Errorf("daemon SARIF diverged from the CLI writer:\n--- daemon ---\n%s\n--- cli ---\n%s", data, want.String())
	}

	// Body-option form must agree with the query form.
	req.Options.Format = "sarif"
	resp2, data2 := postAnalyze(t, ts.URL, req)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(data2, data) {
		t.Errorf("options.format=sarif diverged from ?format=sarif (status %d)", resp2.StatusCode)
	}

	// A plain JSON request for the same system must not replay SARIF
	// bytes (format participates in the single-flight key).
	req.Options.Format = ""
	resp3, data3 := postAnalyze(t, ts.URL, req)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("json request status = %d", resp3.StatusCode)
	}
	if ct := resp3.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	if bytes.Equal(data3, data) {
		t.Error("json and sarif responses are identical — format leaked across flights")
	}
}

func TestAnalyzeFormatAndPolicyValidation(t *testing.T) {
	resetMemoryCaches()
	t.Cleanup(resetMemoryCaches)
	_, ts := newTestServer(t, Config{Workers: 1})

	req := AnalyzeRequest{Name: "x", Sources: map[string]string{"x.c": "int x;"}}
	req.Options.Format = "yaml"
	resp, data := postAnalyze(t, ts.URL, req)
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(data, []byte("unknown format")) {
		t.Errorf("bad format: status = %d, body = %s", resp.StatusCode, data)
	}

	req.Options.Format = ""
	req.Options.Policy = "no-such-policy"
	resp, data = postAnalyze(t, ts.URL, req)
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(data, []byte("unknown policy")) {
		t.Errorf("bad policy: status = %d, body = %s", resp.StatusCode, data)
	}
}

func TestAnalyzePolicyOption(t *testing.T) {
	resetMemoryCaches()
	t.Cleanup(resetMemoryCaches)
	_, ts := newTestServer(t, Config{Workers: 1})

	src := map[string]string{"main.c": `
void serve()
{
    int pwd;
    pwd = getpass();
    log_msg(pwd);
}
`}
	req := AnalyzeRequest{Name: "credsys", Sources: src}
	req.Options.Policy = "credential-leak"
	resp, data := postAnalyze(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	if !bytes.Contains(data, []byte(`"cred-leak-log"`)) {
		t.Errorf("policy run lacks rule attribution: %s", data)
	}
	if got := resp.Header.Get("X-Safeflow-Exit"); got != "1" {
		t.Errorf("X-Safeflow-Exit = %q, want 1", got)
	}
}
