// Single-flight deduplication for POST /v1/analyze: when N identical
// requests are in flight at once — the cache-stampede shape, a fleet of
// CI jobs analyzing the same commit — exactly one runs the pipeline and
// every other request waits for that result and receives byte-identical
// response bytes. The pipeline's byte determinism is what makes this
// sound: the response the leader computes IS the response every
// follower would have computed.
//
// Followers hold no worker slot and no queue position, so a stampede of
// N identical requests costs one admission, not N — the dedup layer is
// itself a load shedder. The flight's analysis context is detached from
// any single client connection and reference-counted instead: it is
// cancelled only when every waiting client has disconnected, so a
// leader that gives up early does not fail the followers that still
// want the answer.

package daemon

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
)

// flightResult is one completed analysis response, replayable to any
// number of waiters.
type flightResult struct {
	status     int
	exit       string // X-Safeflow-Exit value; "" omits the header
	retryAfter string // Retry-After value; "" omits the header
	// contentType overrides the Content-Type header; "" means
	// application/json (error bodies and the default report format).
	contentType string
	body        []byte
}

// flight is one in-flight analyze execution.
type flight struct {
	done   chan struct{} // closed once res is set
	res    flightResult
	cancel context.CancelFunc
	// waiters counts clients (leader included) still wanting the
	// result; at zero the flight's context is cancelled. A flight with
	// zero waiters is dying and can no longer be joined.
	waiters atomic.Int64
}

// analyzeKey fingerprints a request for dedup. Every field that can
// influence the response bytes participates: json.Marshal renders
// struct fields in declaration order and map keys sorted, so two
// requests marshal equal iff they are the same request.
func analyzeKey(req *AnalyzeRequest) [sha256.Size]byte {
	b, err := json.Marshal(req)
	if err != nil {
		// Unmarshalable requests never get here (they failed decode);
		// treat a marshal failure as a never-matching key.
		return sha256.Sum256([]byte(err.Error()))
	}
	return sha256.Sum256(b)
}

// joinFlight returns the flight for key, creating it when none is
// joinable; leader reports whether the caller must run the analysis.
func (s *Server) joinFlight(key [sha256.Size]byte) (f *flight, leader bool) {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if f := s.flights[key]; f != nil {
		// Join unless the flight is dying (every waiter disconnected and
		// its context is being cancelled): a dying flight's result would
		// be a cancellation artifact, not an answer.
		for {
			w := f.waiters.Load()
			if w == 0 {
				break
			}
			if f.waiters.CompareAndSwap(w, w+1) {
				return f, false
			}
		}
	}
	f = &flight{done: make(chan struct{})}
	f.waiters.Store(1)
	if s.flights == nil {
		s.flights = make(map[[sha256.Size]byte]*flight)
	}
	s.flights[key] = f
	return f, true
}

// leaveFlight removes a completed flight from the index and publishes
// its result to every waiter.
func (s *Server) leaveFlight(key [sha256.Size]byte, f *flight, res flightResult) {
	s.flightMu.Lock()
	if s.flights[key] == f {
		delete(s.flights, key)
	}
	s.flightMu.Unlock()
	f.res = res
	close(f.done)
}

// dropWaiter records one waiter disconnecting before the flight
// finished; the last one out cancels the analysis.
func (f *flight) dropWaiter() {
	if f.waiters.Add(-1) == 0 && f.cancel != nil {
		f.cancel()
	}
}

// write replays a flight result onto one response.
func (res *flightResult) write(w http.ResponseWriter) {
	ct := res.contentType
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	if res.exit != "" {
		w.Header().Set("X-Safeflow-Exit", res.exit)
	}
	if res.retryAfter != "" {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// errorResult renders the {"error": ...} body jsonError would have
// written, as a replayable result.
func errorResult(status int, retryAfter string, msg string) flightResult {
	body, _ := json.Marshal(map[string]string{"error": msg})
	return flightResult{status: status, retryAfter: retryAfter, body: append(body, '\n')}
}

// okResult wraps a rendered report body.
func okResult(exit int, body []byte) flightResult {
	return flightResult{status: http.StatusOK, exit: strconv.Itoa(exit), body: body}
}

// countFlightStatus folds a replayed (or fresh) result into the
// request-class counters, so followers account like leaders.
func (s *Server) countFlightStatus(res *flightResult) {
	s.count(func(m *Metrics) {
		switch {
		case res.status == http.StatusOK:
			m.RequestsOK++
		case res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable:
			m.RequestsRejected++
		case res.status == http.StatusGatewayTimeout:
			m.RequestsTimeout++
		default:
			m.RequestsFailed++
		}
	})
}
