// The daemon's incremental-session surface: POST /v1/update keeps a
// system open across requests and re-analyzes only what each edit
// invalidated. The first request for a session id opens it (full
// pipeline, state captured); subsequent requests ship only the changed
// files and get back the patched report — byte-identical to what
// POST /v1/analyze would return for the full edited system. Sessions
// are evicted least-recently-used beyond Config.MaxSessions; a request
// for an evicted id transparently re-opens it (the response header
// X-Safeflow-Session says which happened, so clients that shipped only
// a delta can detect the eviction and resend the full tree).

package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"safeflow/pkg/safeflow"
)

// UpdateRequest is the body of POST /v1/update.
type UpdateRequest struct {
	// Session identifies the session (required). The first request for
	// an id opens the session and must carry the full source tree;
	// later requests carry only the changed files.
	Session string `json:"session"`
	// Name is the system name used in the report (required on open).
	Name string `json:"name,omitempty"`
	// Sources maps file names to contents: the full tree on open, the
	// changed/added files on update.
	Sources map[string]string `json:"sources,omitempty"`
	// CFiles lists the translation units on open; empty means every
	// ".c" key of Sources in sorted order. Ignored on updates (new .c
	// files in Sources join the unit list automatically).
	CFiles []string `json:"c_files,omitempty"`
	// Removed names files to delete from the tree (updates only).
	Removed []string `json:"removed,omitempty"`
	// Options tune the analysis. Fixed at open; on updates only Stats
	// (include the metrics snapshot) and TimeoutMS are honored.
	Options AnalyzeOptions `json:"options,omitempty"`
}

// sessEntry is one open session. The entry mutex serializes updates on
// the session (safeflow.Session also serializes internally; holding the
// entry lock additionally keeps lastUsed and the LRU order coherent).
type sessEntry struct {
	id      string
	sess    *safeflow.Session
	created time.Time
	// lastUsed is guarded by Server.sessMu (LRU scans read it).
	lastUsed time.Time
}

// lookupSession returns the live entry for id, or nil.
func (s *Server) lookupSession(id string) *sessEntry {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	e := s.sessions[id]
	if e != nil {
		e.lastUsed = time.Now()
	}
	return e
}

// storeSession registers a freshly opened session, evicting the least
// recently used entry when the store is full.
func (s *Server) storeSession(e *sessEntry) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	for len(s.sessions) >= s.cfg.MaxSessions {
		var oldest *sessEntry
		for _, cand := range s.sessions {
			if oldest == nil || cand.lastUsed.Before(oldest.lastUsed) {
				oldest = cand
			}
		}
		if oldest == nil {
			break
		}
		delete(s.sessions, oldest.id)
		s.count(func(m *Metrics) { m.IncrSessionEvictions++ })
	}
	e.lastUsed = time.Now()
	s.sessions[e.id] = e
}

// CloseSessions closes every open incremental session, waiting for any
// in-flight update to finish first (Session.Close blocks until the
// session is quiescent, so no session is ever torn down mid-update).
// It returns how many sessions it closed; when ctx expires first the
// remaining closes keep completing in the background and ctx.Err() is
// returned. The daemon calls this on drain, after the HTTP listener
// has stopped accepting work.
func (s *Server) CloseSessions(ctx context.Context) (int, error) {
	s.sessMu.Lock()
	entries := make([]*sessEntry, 0, len(s.sessions))
	for id, e := range s.sessions {
		delete(s.sessions, id)
		entries = append(entries, e)
	}
	s.sessMu.Unlock()
	done := make(chan struct{})
	go func() {
		for _, e := range entries {
			e.sess.Close()
		}
		close(done)
	}()
	select {
	case <-done:
		return len(entries), nil
	case <-ctx.Done():
		return len(entries), ctx.Err()
	}
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	s.count(func(m *Metrics) { m.RequestsTotal++ })
	if r.Method != http.MethodPost {
		s.count(func(m *Metrics) { m.RequestsBadInput++ })
		jsonError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		s.count(func(m *Metrics) { m.RequestsRejected++ })
		w.Header().Set("Retry-After", s.retryAfter())
		jsonError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req UpdateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.count(func(m *Metrics) { m.RequestsBadInput++ })
		jsonError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Session == "" {
		s.count(func(m *Metrics) { m.RequestsBadInput++ })
		jsonError(w, http.StatusBadRequest, "session is required")
		return
	}
	opts, timeout, err := s.resolveOptions(req.Options)
	if err != nil {
		s.count(func(m *Metrics) { m.RequestsBadInput++ })
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}

	entry := s.lookupSession(req.Session)
	if entry == nil {
		// Opening: the request must carry the complete system.
		if err := validateOpen(&req); err != nil {
			s.count(func(m *Metrics) { m.RequestsBadInput++ })
			jsonError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}

	release, status, reason := s.admit(r.Context(), timeout)
	if release == nil {
		s.count(func(m *Metrics) { m.RequestsRejected++ })
		s.countShed(reason)
		w.Header().Set("Retry-After", s.retryAfter())
		jsonError(w, status, "analysis queue full, retry later")
		return
	}
	defer release()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	var (
		rep    *safeflow.Report
		stats  safeflow.UpdateStats
		opened bool
	)
	start := time.Now()
	if entry == nil {
		opened = true
		cFiles := req.CFiles
		if len(cFiles) == 0 {
			for name := range req.Sources {
				if strings.HasSuffix(name, ".c") {
					cFiles = append(cFiles, name)
				}
			}
			sort.Strings(cFiles)
		}
		var sess *safeflow.Session
		sess, rep, err = safeflow.OpenContext(ctx, req.Name, req.Sources, cFiles, opts)
		if err == nil {
			s.storeSession(&sessEntry{id: req.Session, sess: sess, created: time.Now()})
		}
	} else {
		rep, stats, err = entry.sess.UpdateContext(ctx, req.Sources, req.Removed...)
	}
	elapsed := time.Since(start)
	if err != nil {
		if errors.Is(err, safeflow.ErrSessionClosed) {
			// The session was torn down (drain) between lookup and
			// update: the client should reopen against a live daemon.
			s.count(func(m *Metrics) { m.RequestsRejected++ })
			w.Header().Set("Retry-After", s.retryAfter())
			jsonError(w, http.StatusServiceUnavailable, "session closed; reopen with the full source tree")
			return
		}
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			s.count(func(m *Metrics) { m.RequestsTimeout++ })
			jsonError(w, http.StatusGatewayTimeout, "analysis aborted after %v: %v", timeout, err)
			return
		}
		s.count(func(m *Metrics) { m.RequestsFailed++ })
		jsonError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.aggregate(rep.Metrics)
	s.count(func(m *Metrics) {
		m.IncrUpdateNS += elapsed.Nanoseconds()
		if !opened {
			m.IncrFuncsInvalidated += int64(stats.FuncsInvalidated)
			m.IncrFuncsReused += int64(stats.FuncsReused)
			if !stats.Incremental {
				m.IncrFallbacks++
			}
		}
	})
	if !req.Options.Stats {
		rep.Metrics = nil
	}
	s.count(func(m *Metrics) { m.RequestsOK++ })
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Safeflow-Exit", strconv.Itoa(exitCode(rep, req.Options.Strict)))
	if opened {
		w.Header().Set("X-Safeflow-Session", "opened")
	} else {
		w.Header().Set("X-Safeflow-Session", "updated")
		w.Header().Set("X-Safeflow-Incremental", strconv.FormatBool(stats.Incremental))
		w.Header().Set("X-Safeflow-Funcs-Reused", strconv.Itoa(stats.FuncsReused))
	}
	if err := safeflow.WriteReportJSON(w, rep); err != nil {
		s.count(func(m *Metrics) { m.RequestsFailed++ })
	}
}

// validateOpen checks the first request of a session carries a full,
// inline system (sessions never read the daemon's filesystem).
func validateOpen(req *UpdateRequest) error {
	if req.Name == "" {
		return errors.New("name is required to open a session")
	}
	if len(req.Sources) == 0 {
		return errors.New("opening a session requires the full source tree in sources (was this session evicted?)")
	}
	if len(req.Removed) > 0 {
		return errors.New("removed is only meaningful on updates")
	}
	return nil
}
