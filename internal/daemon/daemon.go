// Package daemon implements safeflowd, the long-running SafeFlow
// analysis service: the full pipeline behind POST /v1/analyze, kept hot
// by the in-memory caches and the persistent disk cache shared with the
// CLI. One daemon process amortizes parse and summary work across every
// request — and across its own restarts — the way the cold CLI cannot.
//
// The service preserves the pipeline's two hard contracts (DESIGN.md
// §7): byte determinism — the JSON body returned for a request is
// byte-identical to `safeflow -json` on the same inputs, at every
// concurrency level and cache temperature — and degraded soundness — a
// degraded analysis still returns its (never-Clean) report, with the
// skipped units' diagnostics, exactly as the CLI would print it.
//
// Admission control is a fixed worker pool with a bounded queue: at most
// Concurrency analyses run at once, at most QueueDepth requests wait,
// and everything beyond that is rejected immediately with 429 and a
// Retry-After hint, so an overloaded daemon sheds load instead of
// accumulating unbounded work. Each request runs under its own deadline
// wired into AnalyzeContext, so a hung or oversized analysis cancels at
// the next unit boundary and frees its slot.
package daemon

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"safeflow/internal/diskcache"
	"safeflow/internal/metrics"
	"safeflow/internal/remotecache"
	"safeflow/pkg/safeflow"
)

// Config tunes the service.
type Config struct {
	// Cache, when non-nil, is the persistent cache every analysis reads
	// and writes (shared with CLI processes pointed at the same dir).
	Cache *diskcache.Store
	// Remote, when non-nil, is the tiered remote+local cache backend
	// analyses use instead of Cache alone (Cache is normally the tier's
	// local side and still feeds the /metricsz disk statistics). A
	// failing remote tier degrades to Cache behavior — never to an
	// error — and its breaker/retry counters appear in /metricsz.
	Remote *remotecache.Tiered
	// Concurrency bounds simultaneously running analyses. 0 means
	// runtime.GOMAXPROCS(0).
	Concurrency int
	// QueueDepth bounds requests waiting for a free slot; an arriving
	// request beyond this is rejected with 429. 0 means 2×Concurrency.
	QueueDepth int
	// DefaultTimeout applies to requests that do not set timeout_ms.
	// 0 means 60s.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout_ms. 0 means 5m.
	MaxTimeout time.Duration
	// Workers is the per-analysis worker count handed to the pipeline
	// when a request does not set options.workers. 0 means GOMAXPROCS.
	Workers int
	// AllowLocalPaths enables the "dir" and "paths" request forms, which
	// read the daemon's filesystem. Off, only inline "sources" requests
	// are accepted.
	AllowLocalPaths bool
	// MaxSessions bounds the incremental sessions held open for
	// POST /v1/update; opening one beyond the bound evicts the least
	// recently used. 0 means 8.
	MaxSessions int
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Concurrency
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	return c
}

// AnalyzeRequest is the body of POST /v1/analyze. Exactly one input form
// must be set: inline Sources (+ optional CFiles), a server-local Dir,
// or server-local Paths (the latter two only when the daemon runs with
// -local-paths).
type AnalyzeRequest struct {
	// Name is the system name used in the report (required).
	Name string `json:"name"`
	// Sources maps file names (as used by #include "...") to contents.
	Sources map[string]string `json:"sources,omitempty"`
	// CFiles lists the translation units to compile; empty means every
	// ".c" key of Sources, in sorted order.
	CFiles []string `json:"c_files,omitempty"`
	// Dir analyzes all .c files in a directory on the daemon's host.
	Dir string `json:"dir,omitempty"`
	// Paths analyzes the named .c files on the daemon's host.
	Paths []string `json:"paths,omitempty"`
	// Options tune the analysis; the zero value matches the CLI defaults
	// (subset alias analysis, recovering front end, shared worker pool).
	Options AnalyzeOptions `json:"options,omitempty"`
}

// AnalyzeOptions mirrors the safeflow CLI's flags.
type AnalyzeOptions struct {
	// Alias selects the alias analysis: "subset" (default) or "unify".
	Alias string `json:"alias,omitempty"`
	// Exponential switches phase 3 to the per-call-path ablation mode.
	Exponential bool `json:"exponential,omitempty"`
	// Roots names analysis entry functions (default: callerless).
	Roots []string `json:"roots,omitempty"`
	// Defines predefines preprocessor macros.
	Defines map[string]string `json:"defines,omitempty"`
	// Workers bounds this analysis's pipeline concurrency; 0 uses the
	// daemon's -workers setting. Reports are byte-identical regardless.
	Workers int `json:"workers,omitempty"`
	// Stats embeds the run-metrics snapshot in the report (the CLI's
	// -stats). Metrics are aggregated into /metricsz either way.
	Stats bool `json:"stats,omitempty"`
	// Strict restores fail-stop front-end behavior (the CLI's -strict).
	Strict bool `json:"strict,omitempty"`
	// TimeoutMS bounds this request's analysis; 0 uses the daemon
	// default, and values above the daemon's -max-timeout are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Format selects the response rendering: "" or "json" (the CLI's
	// -format json), or "sarif" for SARIF 2.1.0 (Content-Type
	// application/sarif+json). The `?format=` query parameter on
	// /v1/analyze sets the same field.
	Format string `json:"format,omitempty"`
	// Policy names a builtin taint policy (simplex-shm, credential-leak,
	// pii-to-log); "" runs the default simplex-shm policy. The policy
	// participates in single-flight dedup and in every cache tier's key.
	Policy string `json:"policy,omitempty"`
}

// Metrics is the /metricsz payload: request counters, admission gauges,
// aggregated run metrics across every completed analysis, and the disk
// store's own counters when a cache is attached.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	RequestsTotal    int64 `json:"requests_total"`
	RequestsOK       int64 `json:"requests_ok"`
	RequestsRejected int64 `json:"requests_rejected"` // 429 backpressure
	RequestsBadInput int64 `json:"requests_bad_input"`
	RequestsFailed   int64 `json:"requests_failed"`
	RequestsTimeout  int64 `json:"requests_timeout"`

	InFlight   int64 `json:"in_flight"`
	QueueDepth int64 `json:"queue_depth"`

	// Single-flight dedup: DedupHits counts requests served from
	// another identical request's in-flight analysis (a stampede of N
	// identical requests runs the pipeline once and records N−1 here).
	DedupHits int64 `json:"dedup_hits"`

	// Load-shedding detail under the RequestsRejected umbrella:
	// queue-full rejections versus predictive sheds (the estimated
	// queue wait already exceeded the request's own timeout).
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedPredicted int64 `json:"shed_predicted"`

	// Aggregated run-metrics counters summed over completed analyses.
	TranslationUnits      int64 `json:"translation_units"`
	UnitsSolved           int64 `json:"units_solved"`
	CacheHits             int64 `json:"cache_hits"`
	CacheMisses           int64 `json:"cache_misses"`
	FrontendCacheHits     int64 `json:"frontend_cache_hits"`
	FrontendCacheMisses   int64 `json:"frontend_cache_misses"`
	DiskCacheHits         int64 `json:"disk_cache_hits"`
	DiskCacheMisses       int64 `json:"disk_cache_misses"`
	CacheCorruptEvictions int64 `json:"cache_corrupt_evictions"`
	AnalysisWallNS        int64 `json:"analysis_wall_ns"`

	// Incremental-session counters: open sessions (gauge), cumulative
	// functions invalidated/reused across updates, updates that fell back
	// to from-scratch analysis, and cumulative update wall time.
	IncrSessions         int64 `json:"incr_sessions"`
	IncrSessionEvictions int64 `json:"incr_session_evictions"`
	IncrFuncsInvalidated int64 `json:"incr_funcs_invalidated"`
	IncrFuncsReused      int64 `json:"incr_funcs_reused"`
	IncrFallbacks        int64 `json:"incr_fallbacks"`
	IncrUpdateNS         int64 `json:"incr_update_ns"`

	DiskStore   *diskcache.Stats          `json:"disk_store,omitempty"`
	RemoteCache *metrics.RemoteCacheStats `json:"remote_cache,omitempty"`
}

// Server is one safeflowd instance.
type Server struct {
	cfg   Config
	start time.Time

	sem      chan struct{} // worker-pool slots
	queued   atomic.Int64  // requests waiting for a slot
	inFlight atomic.Int64
	draining atomic.Bool

	mu  sync.Mutex
	agg Metrics // counter fields only; gauges are derived on read

	flightMu sync.Mutex
	flights  map[[sha256.Size]byte]*flight

	sessMu   sync.Mutex
	sessions map[string]*sessEntry
}

// New builds a server; call Handler to mount it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		start:    time.Now(),
		sem:      make(chan struct{}, cfg.Concurrency),
		sessions: make(map[string]*sessEntry),
	}
}

// Handler returns the daemon's HTTP mux: POST /v1/analyze, GET
// /healthz, GET /metricsz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/update", s.handleUpdate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metricsz", s.handleMetricsz)
	return mux
}

// BeginDrain flips the server into draining mode: /healthz turns 503 so
// load balancers stop routing here, and new analyses are refused, while
// in-flight requests finish (the HTTP server's Shutdown handles the
// connection-level drain).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// jsonError writes a {"error": ...} body with the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return
	}
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	m := s.agg
	s.mu.Unlock()
	m.UptimeSeconds = time.Since(s.start).Seconds()
	m.Draining = s.draining.Load()
	m.InFlight = s.inFlight.Load()
	m.QueueDepth = s.queued.Load()
	s.sessMu.Lock()
	m.IncrSessions = int64(len(s.sessions))
	s.sessMu.Unlock()
	if s.cfg.Cache != nil {
		st := s.cfg.Cache.Snapshot()
		m.DiskStore = &st
	}
	if s.cfg.Remote != nil {
		rc := s.cfg.Remote.Snapshot()
		m.RemoteCache = &rc
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m)
}

func (s *Server) count(f func(*Metrics)) {
	s.mu.Lock()
	f(&s.agg)
	s.mu.Unlock()
}

// meanAnalysisSeconds is the observed mean analysis wall time across
// completed requests, or 0 when nothing has completed yet.
func (s *Server) meanAnalysisSeconds() float64 {
	s.mu.Lock()
	ok := s.agg.RequestsOK
	wall := s.agg.AnalysisWallNS
	s.mu.Unlock()
	if ok <= 0 || wall <= 0 {
		return 0
	}
	return float64(wall) / float64(ok) / float64(time.Second)
}

// retryAfterSecs derives the Retry-After hint from the load actually
// ahead of a new arrival: the queued requests form ceil(q/concurrency)
// scheduling waves, each lasting about one mean analysis, plus the wave
// running now. A cold daemon (no completed request yet) hints 1s.
// Clamped to [1, 60] so the hint stays a backoff, not a ban.
func (s *Server) retryAfterSecs() int {
	mean := s.meanAnalysisSeconds()
	if mean <= 0 {
		return 1
	}
	waves := float64(s.queued.Load())/float64(s.cfg.Concurrency) + 1
	secs := int(math.Ceil(waves * mean))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

func (s *Server) retryAfter() string { return fmt.Sprintf("%d", s.retryAfterSecs()) }

// shedStatus classifies one rejection for the shed counters.
type shedReason int

const (
	shedNone shedReason = iota
	shedQueueFull
	shedPredicted
)

// admit acquires a worker-pool slot, waiting in the bounded queue if
// the pool is busy. timeout is the request's analysis budget: a request
// whose estimated queue wait already exceeds it is shed immediately
// (predictive shedding — it would only time out in line and waste a
// queue position doing so). It returns a release function, or an HTTP
// status when the request cannot be admitted.
func (s *Server) admit(ctx context.Context, timeout time.Duration) (release func(), status int, reason shedReason) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0, shedNone
	default:
	}
	// Pool busy: shed if the line ahead is already longer than the
	// request's own deadline, otherwise take a queue position.
	if mean := s.meanAnalysisSeconds(); mean > 0 {
		waves := float64(s.queued.Load()) / float64(s.cfg.Concurrency)
		if time.Duration(waves*mean*float64(time.Second)) > timeout {
			return nil, http.StatusTooManyRequests, shedPredicted
		}
	}
	for {
		q := s.queued.Load()
		if q >= int64(s.cfg.QueueDepth) {
			return nil, http.StatusTooManyRequests, shedQueueFull
		}
		if s.queued.CompareAndSwap(q, q+1) {
			break
		}
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0, shedNone
	case <-ctx.Done():
		// Client went away or the request deadline passed while queued.
		return nil, http.StatusServiceUnavailable, shedNone
	}
}

// countShed folds one rejection into the shed-detail counters.
func (s *Server) countShed(reason shedReason) {
	s.count(func(m *Metrics) {
		switch reason {
		case shedQueueFull:
			m.ShedQueueFull++
		case shedPredicted:
			m.ShedPredicted++
		}
	})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.count(func(m *Metrics) { m.RequestsTotal++ })
	if r.Method != http.MethodPost {
		s.count(func(m *Metrics) { m.RequestsBadInput++ })
		jsonError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.draining.Load() {
		s.count(func(m *Metrics) { m.RequestsRejected++ })
		w.Header().Set("Retry-After", s.retryAfter())
		jsonError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req AnalyzeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.count(func(m *Metrics) { m.RequestsBadInput++ })
		jsonError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Fold the query parameter into the request BEFORE single-flight
	// keying: the format changes the response bytes, so two requests
	// differing only in ?format= must never share a flight.
	if qf := r.URL.Query().Get("format"); qf != "" {
		req.Options.Format = qf
	}
	opts, timeout, err := s.resolveOptions(req.Options)
	if err == nil {
		err = validateInput(&req, s.cfg.AllowLocalPaths)
	}
	if err != nil {
		s.count(func(m *Metrics) { m.RequestsBadInput++ })
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}

	key := analyzeKey(&req)
	f, leader := s.joinFlight(key)
	if !leader {
		// An identical request is already executing: wait for its
		// result and replay the exact bytes. No worker slot, no queue
		// position — the stampede costs one admission.
		s.count(func(m *Metrics) { m.DedupHits++ })
		select {
		case <-f.done:
			s.countFlightStatus(&f.res)
			f.res.write(w)
		case <-r.Context().Done():
			f.dropWaiter()
		}
		return
	}

	// Leader: run detached from any one connection. The flight context
	// cancels only when every client wanting this result is gone, so a
	// leader disconnect never fails the followers behind it.
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-r.Context().Done():
			f.dropWaiter()
		case <-watchDone:
		}
	}()
	res := s.runAnalyze(ctx, &req, opts, timeout)
	close(watchDone)
	s.leaveFlight(key, f, res)
	s.countFlightStatus(&res)
	res.write(w)
}

// runAnalyze admits and executes one analysis, rendering the complete
// response — status, headers, body bytes — as a replayable result.
func (s *Server) runAnalyze(ctx context.Context, req *AnalyzeRequest, opts safeflow.Options, timeout time.Duration) flightResult {
	release, status, reason := s.admit(ctx, timeout)
	if release == nil {
		s.countShed(reason)
		return errorResult(status, s.retryAfter(), "analysis queue full, retry later")
	}
	defer release()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	rep, err := s.analyze(ctx, req, opts)
	if err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			return errorResult(http.StatusGatewayTimeout, "",
				fmt.Sprintf("analysis aborted after %v: %v", timeout, err))
		}
		return errorResult(http.StatusUnprocessableEntity, "", err.Error())
	}
	s.aggregate(rep.Metrics)
	if !req.Options.Stats {
		// Metrics were collected for /metricsz aggregation only: drop
		// them so the body matches `safeflow -json` without -stats.
		rep.Metrics = nil
	}
	var buf bytes.Buffer
	contentType := "application/json"
	var werr error
	if req.Options.Format == "sarif" {
		contentType = "application/sarif+json"
		werr = safeflow.WriteReportSARIF(&buf, rep)
	} else {
		werr = safeflow.WriteReportJSON(&buf, rep)
	}
	if werr != nil {
		return errorResult(http.StatusInternalServerError, "", werr.Error())
	}
	res := okResult(exitCode(rep, req.Options.Strict), buf.Bytes())
	res.contentType = contentType
	return res
}

// resolveOptions maps the request options onto pipeline options, exactly
// as the CLI maps its flags (so daemon and CLI reports coincide).
func (s *Server) resolveOptions(ro AnalyzeOptions) (safeflow.Options, time.Duration, error) {
	opts := safeflow.Options{
		Exponential: ro.Exponential,
		Roots:       ro.Roots,
		Defines:     ro.Defines,
		Workers:     ro.Workers,
		Recover:     !ro.Strict,
		// Stats are always collected so /metricsz can aggregate; the
		// handler strips the snapshot unless the request asked for it.
		Stats:     true,
		DiskCache: nil,
	}
	switch {
	case s.cfg.Remote != nil:
		opts.DiskCache = s.cfg.Remote
	case s.cfg.Cache != nil:
		opts.DiskCache = s.cfg.Cache
	}
	if opts.Workers == 0 {
		opts.Workers = s.cfg.Workers
	}
	switch ro.Alias {
	case "", "subset":
		opts.PointsTo = safeflow.ModeSubset
	case "unify":
		opts.PointsTo = safeflow.ModeUnify
	default:
		return opts, 0, fmt.Errorf("unknown alias mode %q", ro.Alias)
	}
	switch ro.Format {
	case "", "json", "sarif":
	default:
		return opts, 0, fmt.Errorf("unknown format %q (want json or sarif)", ro.Format)
	}
	if ro.Policy != "" {
		pol, ok := safeflow.BuiltinPolicy(ro.Policy)
		if !ok {
			return opts, 0, fmt.Errorf("unknown policy %q (have: %s)", ro.Policy, strings.Join(safeflow.BuiltinPolicyNames(), ", "))
		}
		opts.Policy = pol
	}
	timeout := s.cfg.DefaultTimeout
	if ro.TimeoutMS > 0 {
		timeout = time.Duration(ro.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return opts, timeout, nil
}

// validateInput enforces the exactly-one-input-form rule.
func validateInput(req *AnalyzeRequest, allowLocal bool) error {
	if req.Name == "" {
		return errors.New("name is required")
	}
	forms := 0
	if len(req.Sources) > 0 {
		forms++
	}
	if req.Dir != "" {
		forms++
	}
	if len(req.Paths) > 0 {
		forms++
	}
	if forms != 1 {
		return errors.New("exactly one of sources, dir, or paths must be set")
	}
	if len(req.CFiles) > 0 && len(req.Sources) == 0 {
		return errors.New("c_files is only meaningful with inline sources")
	}
	if !allowLocal && (req.Dir != "" || len(req.Paths) > 0) {
		return errors.New("dir/paths requests are disabled (daemon runs without -local-paths)")
	}
	return nil
}

// analyze dispatches to the same public entry points the CLI uses.
func (s *Server) analyze(ctx context.Context, req *AnalyzeRequest, opts safeflow.Options) (*safeflow.Report, error) {
	switch {
	case req.Dir != "":
		return safeflow.AnalyzeDirContext(ctx, req.Name, req.Dir, opts)
	case len(req.Paths) > 0:
		return safeflow.AnalyzeFilesContext(ctx, req.Name, req.Paths, opts)
	default:
		cFiles := req.CFiles
		if len(cFiles) == 0 {
			for name := range req.Sources {
				if len(name) > 2 && name[len(name)-2:] == ".c" {
					cFiles = append(cFiles, name)
				}
			}
			sort.Strings(cFiles)
		}
		if len(cFiles) == 0 {
			return nil, errors.New("no .c files in sources")
		}
		return safeflow.AnalyzeContext(ctx, req.Name, req.Sources, cFiles, opts)
	}
}

// aggregate folds one run's metrics into the daemon-wide counters.
func (s *Server) aggregate(rm *metrics.RunMetrics) {
	if rm == nil {
		return
	}
	s.count(func(m *Metrics) {
		m.TranslationUnits += int64(rm.TranslationUnits)
		m.UnitsSolved += int64(rm.UnitsSolved)
		m.CacheHits += int64(rm.CacheHits)
		m.CacheMisses += int64(rm.CacheMisses)
		m.FrontendCacheHits += int64(rm.FrontendCacheHits)
		m.FrontendCacheMisses += int64(rm.FrontendCacheMisses)
		m.DiskCacheHits += int64(rm.DiskCacheHits)
		m.DiskCacheMisses += int64(rm.DiskCacheMisses)
		m.CacheCorruptEvictions += int64(rm.CacheCorruptEvictions)
		m.AnalysisWallNS += rm.WallNS
	})
}

// exitCode mirrors the CLI's exit-status mapping for the
// X-Safeflow-Exit response header: 0 clean, 1 findings, 3 degraded (or,
// under strict, a suppression directive naming an unknown rule id).
func exitCode(rep *safeflow.Report, strict bool) int {
	switch {
	case rep.Degraded:
		return 3
	case strict && len(rep.SuppressionIssues) > 0:
		return 3
	case rep.Clean():
		return 0
	}
	return 1
}
