package daemon

// Drain-time session teardown: CloseSessions must close every open
// incremental session (waiting out in-flight updates), and an update
// racing a close must get a clean 503 telling the client to reopen —
// never a torn session or a partial report.

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"safeflow/internal/corpus"
)

func TestCloseSessionsDrainsAllSessions(t *testing.T) {
	resetMemoryCaches()
	defer resetMemoryCaches()

	s, ts := newTestServer(t, Config{})
	for i, seed := range []int64{31, 32} {
		g := corpus.Generate(seed, corpus.GenConfig{Regions: 1, Monitors: 1, Stages: 2})
		resp, body := postUpdate(t, ts.URL, UpdateRequest{
			Session: "drain-" + string(rune('a'+i)), Name: g.Name,
			Sources: g.Sources, CFiles: g.CFiles,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("open %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	n, err := s.CloseSessions(context.Background())
	if err != nil || n != 2 {
		t.Fatalf("CloseSessions = %d, %v; want 2, nil", n, err)
	}
	s.sessMu.Lock()
	left := len(s.sessions)
	s.sessMu.Unlock()
	if left != 0 {
		t.Fatalf("%d sessions left open after CloseSessions", left)
	}

	// A delta against a closed (hence unknown) session id reads as an
	// eviction: the client must resend the full tree.
	resp, body := postUpdate(t, ts.URL, UpdateRequest{
		Session: "drain-a", Sources: map[string]string{"x.c": "int x;\n"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("delta after close: status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "open a session") {
		t.Errorf("delta after close: body %q does not tell the client to reopen", body)
	}

	// Idempotent: nothing left to close.
	if n, err := s.CloseSessions(context.Background()); err != nil || n != 0 {
		t.Fatalf("second CloseSessions = %d, %v; want 0, nil", n, err)
	}
}

// An update that loses the race with drain — entry looked up before the
// session was closed — must fail with 503 and a reopen hint, not tear
// state or hang.
func TestUpdateOnClosedSessionRejectsCleanly(t *testing.T) {
	resetMemoryCaches()
	defer resetMemoryCaches()

	s, ts := newTestServer(t, Config{})
	g := corpus.Generate(33, corpus.GenConfig{Regions: 1, Monitors: 1, Stages: 2})
	resp, body := postUpdate(t, ts.URL, UpdateRequest{
		Session: "racy", Name: g.Name, Sources: g.Sources, CFiles: g.CFiles,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open: status %d: %s", resp.StatusCode, body)
	}

	// Close the session out from under the store, as a drain racing an
	// in-flight handler would.
	s.sessMu.Lock()
	e := s.sessions["racy"]
	s.sessMu.Unlock()
	if e == nil {
		t.Fatal("session not stored")
	}
	e.sess.Close()

	file := g.CFiles[0]
	resp, body = postUpdate(t, ts.URL, UpdateRequest{
		Session: "racy", Sources: map[string]string{file: g.Sources[file] + "\n"},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("update on closed session: status %d, want 503: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "session closed") {
		t.Errorf("update on closed session: body %q does not say the session closed", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 for closed session missing Retry-After")
	}
}
