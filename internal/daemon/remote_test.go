package daemon

// The daemon's remote-tier wiring: with Config.Remote set, analyses
// must read and write through the tiered backend (not the bare local
// store), the response bytes must stay identical to the CLI, and the
// remote-cache counters must surface under /metricsz.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"safeflow/internal/diskcache"
	"safeflow/internal/remotecache"
	"safeflow/pkg/safeflow"
)

func TestRemoteTierCarriesAnalysisTraffic(t *testing.T) {
	resetMemoryCaches()
	defer resetMemoryCaches()

	serverStore, err := diskcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cacheSrv := httptest.NewServer(remotecache.NewServer(serverStore).Handler())
	defer cacheSrv.Close()
	client, err := remotecache.New(remotecache.Config{BaseURL: cacheSrv.URL})
	if err != nil {
		t.Fatal(err)
	}
	local, err := diskcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tiered := remotecache.NewTiered(client, local)

	_, ts := newTestServer(t, Config{Cache: local, Remote: tiered})

	src := figure2(t)
	sources := map[string]string{"figure2.c": src}
	want := cliJSON(t, "figure2", sources, []string{"figure2.c"}, safeflow.Options{})
	resetMemoryCaches() // cliJSON warmed the in-process caches

	req := AnalyzeRequest{Name: "figure2", Sources: sources}
	resp, got := postAnalyze(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Error("cold body through remote tier diverged from CLI JSON")
	}

	stats := tiered.Snapshot()
	if stats.RemotePuts == 0 {
		t.Fatalf("analysis wrote nothing to the remote tier: %+v", stats)
	}
	if serverStore.Len("parse") == 0 {
		t.Error("remote store holds no parse entries after a cold analysis")
	}

	// A fresh daemon replica sharing only the remote tier must hit it.
	local2, err := diskcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	client2, err := remotecache.New(remotecache.Config{BaseURL: cacheSrv.URL})
	if err != nil {
		t.Fatal(err)
	}
	tiered2 := remotecache.NewTiered(client2, local2)
	_, ts2 := newTestServer(t, Config{Cache: local2, Remote: tiered2})
	resetMemoryCaches()

	resp, got = postAnalyze(t, ts2.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replica: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Error("replica body diverged from CLI JSON")
	}
	if st := tiered2.Snapshot(); st.RemoteHits == 0 {
		t.Errorf("replica with a cold local tier recorded no remote hits: %+v", st)
	}

	// The counters must surface in /metricsz.
	mresp, err := http.Get(ts2.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.RemoteCache == nil {
		t.Fatal("/metricsz missing remote_cache block")
	}
	if m.RemoteCache.RemoteHits == 0 {
		t.Errorf("/metricsz remote_cache.remote_hits = 0: %+v", m.RemoteCache)
	}
}
