// Package sarifschema validates SARIF 2.1.0 logs against a vendored
// subset of the official JSON schema. The build environment has no
// network access, so instead of the 200KB upstream schema we vendor a
// trimmed schema covering exactly the object slice safeflow emits —
// every property name and type in it matches the official schema — and
// interpret it with a small JSON-Schema-subset checker.
//
// Supported keywords: type (single or list; "integer" requires an
// integral number), enum, properties, required, additionalProperties
// (boolean form), items, minItems, and $ref into #/definitions. That is
// the full vocabulary the vendored schema uses.
package sarifschema

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
)

//go:embed sarif-2.1.0-subset.json
var subsetSchema []byte

// Schema is a compiled schema document.
type Schema struct {
	root map[string]any
	defs map[string]any
}

// Compile parses a schema document.
func Compile(data []byte) (*Schema, error) {
	var root map[string]any
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, fmt.Errorf("sarifschema: parsing schema: %w", err)
	}
	s := &Schema{root: root, defs: map[string]any{}}
	if d, ok := root["definitions"].(map[string]any); ok {
		s.defs = d
	}
	return s, nil
}

// Subset returns the vendored SARIF 2.1.0 subset schema.
func Subset() *Schema {
	s, err := Compile(subsetSchema)
	if err != nil {
		panic(err) // embedded schema is validated by tests
	}
	return s
}

// Validate checks a decoded JSON document (as produced by
// json.Unmarshal into any) against the schema. It returns every
// violation found, each prefixed with the JSON path of the offending
// value; an empty slice means the document conforms.
func (s *Schema) Validate(doc any) []string {
	var errs []string
	s.validate("$", s.root, doc, &errs)
	return errs
}

// ValidateBytes parses raw JSON and validates it.
func (s *Schema) ValidateBytes(data []byte) []string {
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return []string{fmt.Sprintf("$: invalid JSON: %v", err)}
	}
	return s.Validate(doc)
}

// ValidateSARIF validates raw JSON against the vendored SARIF 2.1.0
// subset schema.
func ValidateSARIF(data []byte) []string {
	return Subset().ValidateBytes(data)
}

func (s *Schema) resolve(node map[string]any) (map[string]any, string) {
	ref, ok := node["$ref"].(string)
	if !ok {
		return node, ""
	}
	const prefix = "#/definitions/"
	if !strings.HasPrefix(ref, prefix) {
		return nil, fmt.Sprintf("unsupported $ref %q", ref)
	}
	name := strings.TrimPrefix(ref, prefix)
	target, ok := s.defs[name].(map[string]any)
	if !ok {
		return nil, fmt.Sprintf("$ref to undefined definition %q", name)
	}
	return target, ""
}

func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case []any:
		return "array"
	case map[string]any:
		return "object"
	}
	return reflect.TypeOf(v).String()
}

func typeMatches(want string, v any) bool {
	switch want {
	case "integer":
		f, ok := v.(float64)
		return ok && f == math.Trunc(f)
	case "number":
		_, ok := v.(float64)
		return ok
	default:
		return typeName(v) == want
	}
}

func (s *Schema) validate(path string, schema map[string]any, v any, errs *[]string) {
	schema, refErr := s.resolve(schema)
	if refErr != "" {
		*errs = append(*errs, path+": "+refErr)
		return
	}

	if t, ok := schema["type"]; ok {
		var wants []string
		switch tt := t.(type) {
		case string:
			wants = []string{tt}
		case []any:
			for _, w := range tt {
				if ws, ok := w.(string); ok {
					wants = append(wants, ws)
				}
			}
		}
		matched := false
		for _, w := range wants {
			if typeMatches(w, v) {
				matched = true
				break
			}
		}
		if !matched {
			*errs = append(*errs, fmt.Sprintf("%s: want type %s, got %s",
				path, strings.Join(wants, "|"), typeName(v)))
			return
		}
	}

	if enum, ok := schema["enum"].([]any); ok {
		matched := false
		for _, e := range enum {
			if reflect.DeepEqual(e, v) {
				matched = true
				break
			}
		}
		if !matched {
			*errs = append(*errs, fmt.Sprintf("%s: value %v not in enum %v", path, v, enum))
		}
	}

	if obj, ok := v.(map[string]any); ok {
		props, _ := schema["properties"].(map[string]any)
		if req, ok := schema["required"].([]any); ok {
			for _, r := range req {
				name, _ := r.(string)
				if _, present := obj[name]; !present {
					*errs = append(*errs, fmt.Sprintf("%s: missing required property %q", path, name))
				}
			}
		}
		addl := true
		if ap, ok := schema["additionalProperties"].(bool); ok {
			addl = ap
		}
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sub, known := props[k].(map[string]any)
			if !known {
				if !addl {
					*errs = append(*errs, fmt.Sprintf("%s: unknown property %q", path, k))
				}
				continue
			}
			s.validate(path+"."+k, sub, obj[k], errs)
		}
	}

	if arr, ok := v.([]any); ok {
		if min, ok := schema["minItems"].(float64); ok && float64(len(arr)) < min {
			*errs = append(*errs, fmt.Sprintf("%s: want at least %d item(s), got %d", path, int(min), len(arr)))
		}
		if items, ok := schema["items"].(map[string]any); ok {
			for i, el := range arr {
				s.validate(fmt.Sprintf("%s[%d]", path, i), items, el, errs)
			}
		}
	}
}
