package sarifschema

import (
	"strings"
	"testing"
)

const minimalLog = `{
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {"driver": {"name": "safeflow", "rules": [{"id": "r1", "shortDescription": {"text": "d"}}]}},
      "invocations": [{"executionSuccessful": true}],
      "results": [
        {
          "ruleId": "r1",
          "level": "error",
          "message": {"text": "m"},
          "locations": [{"physicalLocation": {"artifactLocation": {"uri": "a.c"}, "region": {"startLine": 3, "startColumn": 7}}}],
          "suppressions": [{"kind": "inSource", "justification": "why"}]
        }
      ],
      "properties": {"policy": "p", "anything": 1}
    }
  ]
}`

func TestSubsetCompiles(t *testing.T) {
	s := Subset()
	if s == nil {
		t.Fatal("nil subset schema")
	}
}

func TestValidateAccepts(t *testing.T) {
	if errs := ValidateSARIF([]byte(minimalLog)); len(errs) != 0 {
		t.Fatalf("minimal log rejected: %v", errs)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(string) string
		want string
	}{
		{"bad version", func(s string) string { return strings.Replace(s, `"2.1.0"`, `"9.9"`, 1) },
			"not in enum"},
		{"missing runs", func(s string) string {
			return `{"version": "2.1.0"}`
		}, `missing required property "runs"`},
		{"unknown property", func(s string) string {
			return strings.Replace(s, `"ruleId": "r1"`, `"ruleId": "r1", "madeUp": true`, 1)
		}, `unknown property "madeUp"`},
		{"wrong type", func(s string) string {
			return strings.Replace(s, `"startLine": 3`, `"startLine": "3"`, 1)
		}, "want type integer"},
		{"non-integral line", func(s string) string {
			return strings.Replace(s, `"startLine": 3`, `"startLine": 3.5`, 1)
		}, "want type integer"},
		{"bad suppression kind", func(s string) string {
			return strings.Replace(s, `"kind": "inSource"`, `"kind": "psychic"`, 1)
		}, "not in enum"},
		{"message not object", func(s string) string {
			return strings.Replace(s, `"message": {"text": "m"}`, `"message": "m"`, 1)
		}, "want type object"},
		{"invalid json", func(s string) string { return s[:20] }, "invalid JSON"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := ValidateSARIF([]byte(tc.mut(minimalLog)))
			if len(errs) == 0 {
				t.Fatal("accepted a nonconforming log")
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("no error containing %q in %v", tc.want, errs)
			}
		})
	}
}

func TestErrorsCarryPaths(t *testing.T) {
	bad := strings.Replace(minimalLog, `"startLine": 3`, `"startLine": "3"`, 1)
	errs := ValidateSARIF([]byte(bad))
	if len(errs) == 0 {
		t.Fatal("accepted")
	}
	if !strings.Contains(errs[0], "$.runs[0].results[0].locations[0].physicalLocation.region.startLine") {
		t.Errorf("error lacks a precise path: %q", errs[0])
	}
}
