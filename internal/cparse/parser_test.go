package cparse

import (
	"strings"
	"testing"

	"safeflow/internal/cast"
	"safeflow/internal/clex"
	"safeflow/internal/ctoken"
)

func parse(t *testing.T, src string) *cast.File {
	t.Helper()
	l := clex.New("t.c", src)
	toks := l.All()
	if errs := l.Errors(); len(errs) > 0 {
		t.Fatalf("lex: %v", errs)
	}
	p := New("t.c", toks)
	f, err := p.ParseFile()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func parseErr(t *testing.T, src string) error {
	t.Helper()
	l := clex.New("t.c", src)
	p := New("t.c", l.All())
	_, err := p.ParseFile()
	return err
}

func TestGlobalDecls(t *testing.T) {
	f := parse(t, `
int a;
double b = 1.5;
int c, d;
static long e;
extern int f;
char *s;
int arr[10];
int grid[2][3];
`)
	names := map[string]bool{}
	for _, d := range f.Decls {
		vd, ok := d.(*cast.VarDecl)
		if !ok {
			t.Fatalf("unexpected decl %T", d)
		}
		names[vd.Name] = true
	}
	for _, n := range []string{"a", "b", "c", "d", "e", "f", "s", "arr", "grid"} {
		if !names[n] {
			t.Errorf("missing global %q", n)
		}
	}
}

func TestNestedArrayType(t *testing.T) {
	f := parse(t, "int grid[2][3];")
	vd := f.Decls[0].(*cast.VarDecl)
	outer, ok := vd.Type.(*cast.ArrayType)
	if !ok {
		t.Fatalf("type = %T", vd.Type)
	}
	if v, _ := outer.Len.(*cast.IntLit); v == nil || v.Value != 2 {
		t.Errorf("outer len = %v, want 2", outer.Len)
	}
	inner, ok := outer.Elem.(*cast.ArrayType)
	if !ok {
		t.Fatalf("inner type = %T", outer.Elem)
	}
	if v, _ := inner.Len.(*cast.IntLit); v == nil || v.Value != 3 {
		t.Errorf("inner len = %v, want 3", inner.Len)
	}
}

func TestTypedefAndUse(t *testing.T) {
	f := parse(t, `
typedef struct { int x; int y; } Point;
Point origin;
Point *make(Point *src);
`)
	if _, ok := f.Decls[0].(*cast.TypedefDecl); !ok {
		t.Fatalf("decl 0 = %T", f.Decls[0])
	}
	vd, ok := f.Decls[1].(*cast.VarDecl)
	if !ok || vd.Name != "origin" {
		t.Fatalf("decl 1 = %#v", f.Decls[1])
	}
	if _, ok := vd.Type.(*cast.NamedType); !ok {
		t.Errorf("origin type = %T, want NamedType", vd.Type)
	}
	fd, ok := f.Decls[2].(*cast.FuncDecl)
	if !ok || fd.Name != "make" || fd.Body != nil {
		t.Fatalf("decl 2 = %#v", f.Decls[2])
	}
}

func TestFunctionDefinition(t *testing.T) {
	f := parse(t, `
int add(int a, int b)
{
	return a + b;
}
void nop(void) { }
int variadicDecl(char *fmt, ...);
`)
	add := f.Decls[0].(*cast.FuncDecl)
	if add.Name != "add" || add.Body == nil || len(add.Type.Params) != 2 {
		t.Fatalf("add = %#v", add)
	}
	nop := f.Decls[1].(*cast.FuncDecl)
	if len(nop.Type.Params) != 0 {
		t.Errorf("(void) params = %d", len(nop.Type.Params))
	}
	v := f.Decls[2].(*cast.FuncDecl)
	if !v.Type.Variadic {
		t.Errorf("variadic flag lost")
	}
}

func TestStatements(t *testing.T) {
	f := parse(t, `
int fn(int n)
{
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < n; i++) {
		if (i % 2 == 0) {
			acc += i;
		} else {
			continue;
		}
		while (acc > 100) {
			acc /= 2;
		}
		do {
			acc--;
		} while (acc < 0);
	}
	switch (n) {
	case 0:
		return 0;
	case 1:
	case 2:
		acc++;
		break;
	default:
		acc = -1;
	}
	goto out;
out:
	return acc;
}
`)
	fd := f.Decls[0].(*cast.FuncDecl)
	if fd.Body == nil {
		t.Fatal("no body")
	}
	// Walk for the switch and check clause merging.
	var sw *cast.SwitchStmt
	var walk func(s cast.Stmt)
	walk = func(s cast.Stmt) {
		switch x := s.(type) {
		case *cast.BlockStmt:
			for _, sub := range x.List {
				walk(sub)
			}
		case *cast.SwitchStmt:
			sw = x
		case *cast.ForStmt:
			walk(x.Body)
		case *cast.LabeledStmt:
			walk(x.Stmt)
		}
	}
	walk(fd.Body)
	if sw == nil {
		t.Fatal("switch not found")
	}
	if len(sw.Body) != 3 {
		t.Fatalf("switch clauses = %d, want 3", len(sw.Body))
	}
	if len(sw.Body[1].Values) != 2 {
		t.Errorf("merged case values = %d, want 2 (case 1: case 2:)", len(sw.Body[1].Values))
	}
	if sw.Body[0].Fallthrough {
		t.Errorf("case 0 ends with return; no fallthrough expected")
	}
}

func TestExpressionPrecedence(t *testing.T) {
	f := parse(t, "int x = 1 + 2 * 3;")
	vd := f.Decls[0].(*cast.VarDecl)
	add, ok := vd.Init.(*cast.BinaryExpr)
	if !ok || add.Op != ctoken.PLUS {
		t.Fatalf("top op = %#v", vd.Init)
	}
	mul, ok := add.Y.(*cast.BinaryExpr)
	if !ok || mul.Op != ctoken.STAR {
		t.Fatalf("rhs = %#v", add.Y)
	}
}

func TestAssignRightAssociative(t *testing.T) {
	f := parse(t, "void fn() { int a; int b; a = b = 1; }")
	fd := f.Decls[0].(*cast.FuncDecl)
	es := fd.Body.List[2].(*cast.ExprStmt)
	outer, ok := es.X.(*cast.AssignExpr)
	if !ok {
		t.Fatalf("stmt = %#v", es.X)
	}
	if _, ok := outer.RHS.(*cast.AssignExpr); !ok {
		t.Errorf("a = (b = 1) not right-associative: %#v", outer.RHS)
	}
}

func TestTernaryAndLogical(t *testing.T) {
	f := parse(t, "int fn(int a, int b) { return a && b ? a : b || a; }")
	fd := f.Decls[0].(*cast.FuncDecl)
	ret := fd.Body.List[0].(*cast.ReturnStmt)
	cond, ok := ret.X.(*cast.CondExpr)
	if !ok {
		t.Fatalf("return expr = %#v", ret.X)
	}
	if c, ok := cond.Cond.(*cast.BinaryExpr); !ok || c.Op != ctoken.LAND {
		t.Errorf("ternary condition = %#v", cond.Cond)
	}
	if e, ok := cond.Else.(*cast.BinaryExpr); !ok || e.Op != ctoken.LOR {
		t.Errorf("ternary else = %#v", cond.Else)
	}
}

func TestCastVsParen(t *testing.T) {
	f := parse(t, `
typedef struct { int v; } T;
void fn(void *p, int x)
{
	T *tp;
	int y;
	tp = (T *) p;
	y = (x) + 1;
}
`)
	fd := f.Decls[1].(*cast.FuncDecl)
	first := fd.Body.List[2].(*cast.ExprStmt).X.(*cast.AssignExpr)
	if _, ok := first.RHS.(*cast.CastExpr); !ok {
		t.Errorf("(T*)p parsed as %T, want CastExpr", first.RHS)
	}
	second := fd.Body.List[3].(*cast.ExprStmt).X.(*cast.AssignExpr)
	if _, ok := second.RHS.(*cast.BinaryExpr); !ok {
		t.Errorf("(x)+1 parsed as %T, want BinaryExpr", second.RHS)
	}
}

func TestSizeof(t *testing.T) {
	f := parse(t, `
typedef struct { int v; } T;
long a = sizeof(T);
long b = sizeof(int);
void fn(int x) { long c; c = sizeof x; }
`)
	a := f.Decls[1].(*cast.VarDecl).Init.(*cast.SizeofExpr)
	if a.Type == nil {
		t.Errorf("sizeof(T): no type")
	}
	b := f.Decls[2].(*cast.VarDecl).Init.(*cast.SizeofExpr)
	if b.Type == nil {
		t.Errorf("sizeof(int): no type")
	}
}

func TestMemberChains(t *testing.T) {
	f := parse(t, `
typedef struct { int v; } Inner;
typedef struct { Inner in; Inner *ptr; } Outer;
int fn(Outer *o) { return o->in.v + o->ptr->v; }
`)
	fd := f.Decls[2].(*cast.FuncDecl)
	ret := fd.Body.List[0].(*cast.ReturnStmt)
	bin := ret.X.(*cast.BinaryExpr)
	left := bin.X.(*cast.MemberExpr)
	if left.Name != "v" || left.Arrow {
		t.Errorf("left = %#v", left)
	}
	inner := left.X.(*cast.MemberExpr)
	if inner.Name != "in" || !inner.Arrow {
		t.Errorf("inner = %#v", inner)
	}
}

func TestAnnotationAttachment(t *testing.T) {
	f := parse(t, `
int monitor(int *p)
/***SafeFlow Annotation assume(core(p, 0, 8)) /***/
{
	/***SafeFlow Annotation assert(safe(x)) /***/
	return p[0];
}
`)
	fd := f.Decls[0].(*cast.FuncDecl)
	if len(fd.Annotations) != 1 {
		t.Fatalf("func annotations = %d, want 1", len(fd.Annotations))
	}
	as, ok := fd.Body.List[0].(*cast.AnnotatedStmt)
	if !ok {
		t.Fatalf("first stmt = %T, want AnnotatedStmt", fd.Body.List[0])
	}
	if len(as.Annotations) != 1 || !strings.Contains(as.Annotations[0].Body, "assert") {
		t.Errorf("stmt annotations = %#v", as.Annotations)
	}
}

func TestTrailingAnnotation(t *testing.T) {
	f := parse(t, `
void init()
{
	int x;
	x = 0;
	/***SafeFlow Annotation assume(shmvar(g, 8)) /***/
}
`)
	fd := f.Decls[0].(*cast.FuncDecl)
	last := fd.Body.List[len(fd.Body.List)-1]
	as, ok := last.(*cast.AnnotatedStmt)
	if !ok {
		t.Fatalf("last stmt = %T, want AnnotatedStmt", last)
	}
	if _, ok := as.Stmt.(*cast.EmptyStmt); !ok {
		t.Errorf("trailing annotation should wrap an empty statement, got %T", as.Stmt)
	}
}

func TestEnum(t *testing.T) {
	f := parse(t, `
enum Mode { IDLE, RUN = 5, STOP };
int m = RUN;
`)
	rd, ok := f.Decls[0].(*cast.RecordDecl)
	if !ok {
		t.Fatalf("decl 0 = %T", f.Decls[0])
	}
	et := rd.Type.(*cast.EnumType)
	if len(et.Members) != 3 || et.Members[1].Name != "RUN" {
		t.Errorf("enum members = %#v", et.Members)
	}
}

func TestInitializerLists(t *testing.T) {
	f := parse(t, `int a[3] = {1, 2, 3};`)
	vd := f.Decls[0].(*cast.VarDecl)
	call, ok := vd.Init.(*cast.CallExpr)
	if !ok {
		t.Fatalf("init = %T", vd.Init)
	}
	if id := call.Fun.(*cast.Ident); id.Name != "__initlist" || len(call.Args) != 3 {
		t.Errorf("init list = %#v", call)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"missing semi", "int a int b;", "expected"},
		{"bad expr", "int fn() { return +; }", "expected expression"},
		{"unclosed paren", "int fn() { return (1; }", "expected"},
		{"declaration declares nothing", "int;", "declares nothing"},
		{"case outside", "int fn(int n) { switch (n) { n++; } return 0; }", "before first case"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := parseErr(t, tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestErrorRecovery(t *testing.T) {
	// One bad declaration must not prevent later ones from parsing.
	l := clex.New("t.c", "int bad bad bad;\nint good;\n")
	p := New("t.c", l.All())
	f, err := p.ParseFile()
	if err == nil {
		t.Fatal("expected an error")
	}
	found := false
	for _, d := range f.Decls {
		if vd, ok := d.(*cast.VarDecl); ok && vd.Name == "good" {
			found = true
		}
	}
	if !found {
		t.Errorf("parser did not recover to parse the good declaration")
	}
}

func TestUnparen(t *testing.T) {
	f := parse(t, "int x = ((4));")
	vd := f.Decls[0].(*cast.VarDecl)
	if lit, ok := cast.Unparen(vd.Init).(*cast.IntLit); !ok || lit.Value != 4 {
		t.Errorf("Unparen = %#v", cast.Unparen(vd.Init))
	}
}
