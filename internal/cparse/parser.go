// Package cparse implements a recursive-descent parser for SafeFlow's C
// subset, producing cast trees.
//
// The parser performs the classic "lexer hack" internally: it tracks
// typedef names declared so far so that declarations can be distinguished
// from expressions. SafeFlow annotation tokens are attached to the nearest
// following function definition or statement; trailing annotations at the
// end of a block (the paper places shmvar/noncore post-conditions at the
// end of initializing functions) are attached to an empty statement.
package cparse

import (
	"fmt"
	"strconv"
	"strings"

	"safeflow/internal/cast"
	"safeflow/internal/ctoken"
)

// Error is a parse error at a position.
type Error struct {
	Pos ctoken.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a list of parse errors implementing error.
type ErrorList []*Error

// Error implements the error interface.
func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	var sb strings.Builder
	for i, e := range l {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(e.Error())
	}
	return sb.String()
}

// Parser parses a token stream into a cast.File.
type Parser struct {
	toks     []ctoken.Token
	pos      int
	typedefs map[string]bool
	errs     ErrorList
	fileName string
}

// New returns a parser over the given tokens (which must end with EOF).
func New(fileName string, toks []ctoken.Token) *Parser {
	return &Parser{
		toks:     toks,
		typedefs: make(map[string]bool),
		fileName: fileName,
	}
}

// maxErrors bounds error cascades.
const maxErrors = 50

// ParseFile parses the whole translation unit.
func (p *Parser) ParseFile() (*cast.File, error) {
	f := &cast.File{Name: p.fileName}
	for p.tok().Kind != ctoken.EOF && len(p.errs) < maxErrors {
		decls := p.parseExternalDecl()
		f.Decls = append(f.Decls, decls...)
	}
	if len(p.errs) > 0 {
		return f, p.errs
	}
	return f, nil
}

func (p *Parser) tok() ctoken.Token { return p.toks[p.pos] }

func (p *Parser) peek(n int) ctoken.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() ctoken.Token {
	t := p.toks[p.pos]
	if t.Kind != ctoken.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(pos ctoken.Pos, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (p *Parser) expect(k ctoken.Kind) ctoken.Token {
	t := p.tok()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		return ctoken.Token{Kind: k, Pos: t.Pos}
	}
	return p.next()
}

func (p *Parser) accept(k ctoken.Kind) bool {
	if p.tok().Kind == k {
		p.next()
		return true
	}
	return false
}

// sync skips tokens until a likely declaration/statement boundary.
func (p *Parser) sync() {
	depth := 0
	for {
		switch p.tok().Kind {
		case ctoken.EOF:
			return
		case ctoken.SEMI:
			p.next()
			if depth == 0 {
				return
			}
		case ctoken.LBRACE:
			depth++
			p.next()
		case ctoken.RBRACE:
			p.next()
			if depth == 0 {
				return
			}
			depth--
			if depth == 0 {
				return
			}
		default:
			p.next()
		}
	}
}

// ---------------------------------------------------------------------------
// Declarations

// startsTypeSpec reports whether the current token begins a type specifier.
func (p *Parser) startsTypeSpec() bool {
	switch p.tok().Kind {
	case ctoken.KwVoid, ctoken.KwChar, ctoken.KwShort, ctoken.KwInt, ctoken.KwLong,
		ctoken.KwFloat, ctoken.KwDouble, ctoken.KwSigned, ctoken.KwUnsigned,
		ctoken.KwStruct, ctoken.KwUnion, ctoken.KwEnum,
		ctoken.KwConst, ctoken.KwVolatile:
		return true
	case ctoken.IDENT:
		return p.typedefs[p.tok().Text]
	default:
		return false
	}
}

func (p *Parser) startsDecl() bool {
	switch p.tok().Kind {
	case ctoken.KwTypedef, ctoken.KwExtern, ctoken.KwStatic:
		return true
	}
	return p.startsTypeSpec()
}

// parseExternalDecl parses one top-level declaration; may return several
// cast.Decl values (comma-separated declarators) or attach annotations.
func (p *Parser) parseExternalDecl() []cast.Decl {
	var annots []cast.Annotation
	for p.tok().Kind == ctoken.ANNOTATION {
		t := p.next()
		annots = append(annots, cast.Annotation{AtPos: t.Pos, Body: t.Text})
	}

	if !p.startsDecl() {
		t := p.tok()
		p.errorf(t.Pos, "expected declaration, found %s", t)
		p.sync()
		return nil
	}

	storage, base := p.parseDeclSpecifiers()

	// Standalone record/enum definition: "struct S { ... };".
	if p.tok().Kind == ctoken.SEMI {
		p.next()
		switch bt := base.(type) {
		case *cast.StructType, *cast.EnumType:
			return []cast.Decl{&cast.RecordDecl{Type: bt}}
		default:
			p.errorf(base.Pos(), "declaration declares nothing")
			return nil
		}
	}

	var decls []cast.Decl
	for {
		name, namePos, typ := p.parseDeclarator(base)
		if name == "" {
			p.errorf(namePos, "expected declarator name")
			p.sync()
			return decls
		}

		if storage == cast.StorageTypedef {
			p.typedefs[name] = true
			decls = append(decls, &cast.TypedefDecl{NamePos: namePos, Name: name, Type: typ})
			if !p.accept(ctoken.COMMA) {
				p.expect(ctoken.SEMI)
				return decls
			}
			continue
		}

		if ft, ok := typ.(*cast.FuncType); ok {
			// Annotations may also appear between the declarator and the body
			// (Figure 2 places assume(core(...)) there).
			for p.tok().Kind == ctoken.ANNOTATION {
				t := p.next()
				annots = append(annots, cast.Annotation{AtPos: t.Pos, Body: t.Text})
			}
			fd := &cast.FuncDecl{
				NamePos:     namePos,
				Name:        name,
				Type:        ft,
				Storage:     storage,
				Annotations: annots,
			}
			if p.tok().Kind == ctoken.LBRACE {
				fd.Body = p.parseBlock()
				return append(decls, fd)
			}
			decls = append(decls, fd)
			if !p.accept(ctoken.COMMA) {
				p.expect(ctoken.SEMI)
				return decls
			}
			continue
		}

		vd := &cast.VarDecl{NamePos: namePos, Name: name, Type: typ, Storage: storage}
		if p.accept(ctoken.ASSIGN) {
			vd.Init = p.parseInitializer()
		}
		decls = append(decls, vd)
		if !p.accept(ctoken.COMMA) {
			p.expect(ctoken.SEMI)
			return decls
		}
	}
}

// parseDeclSpecifiers parses storage-class and type specifiers, returning
// the storage class and base type.
func (p *Parser) parseDeclSpecifiers() (cast.StorageClass, cast.TypeExpr) {
	storage := cast.StorageNone
	var baseWords []string
	var base cast.TypeExpr
	startPos := p.tok().Pos

	for {
		t := p.tok()
		switch t.Kind {
		case ctoken.KwTypedef:
			storage = cast.StorageTypedef
			p.next()
		case ctoken.KwExtern:
			storage = cast.StorageExtern
			p.next()
		case ctoken.KwStatic:
			storage = cast.StorageStatic
			p.next()
		case ctoken.KwConst, ctoken.KwVolatile:
			p.next() // qualifiers are accepted and dropped
		case ctoken.KwVoid, ctoken.KwChar, ctoken.KwShort, ctoken.KwInt, ctoken.KwLong,
			ctoken.KwFloat, ctoken.KwDouble, ctoken.KwSigned, ctoken.KwUnsigned:
			baseWords = append(baseWords, t.Text)
			p.next()
		case ctoken.KwStruct, ctoken.KwUnion:
			if base != nil || len(baseWords) > 0 {
				goto done
			}
			base = p.parseStructType(t.Kind == ctoken.KwUnion)
		case ctoken.KwEnum:
			if base != nil || len(baseWords) > 0 {
				goto done
			}
			base = p.parseEnumType()
		case ctoken.IDENT:
			if base == nil && len(baseWords) == 0 && p.typedefs[t.Text] {
				base = &cast.NamedType{NamePos: t.Pos, Name: t.Text}
				p.next()
				goto done
			}
			goto done
		default:
			goto done
		}
	}
done:
	if base == nil {
		if len(baseWords) == 0 {
			baseWords = []string{"int"} // implicit int for legacy code
		}
		base = &cast.BaseType{NamePos: startPos, Name: normalizeBase(baseWords)}
	}
	return storage, base
}

// normalizeBase canonicalizes multiword base type names.
func normalizeBase(words []string) string {
	hasUnsigned := false
	var core []string
	for _, w := range words {
		switch w {
		case "unsigned":
			hasUnsigned = true
		case "signed":
			// default
		default:
			core = append(core, w)
		}
	}
	name := strings.Join(core, " ")
	switch name {
	case "":
		name = "int"
	case "long long", "long long int", "long int":
		name = "long"
	case "short int":
		name = "short"
	}
	if hasUnsigned {
		return "unsigned " + name
	}
	return name
}

func (p *Parser) parseStructType(isUnion bool) *cast.StructType {
	kw := p.next() // struct/union
	st := &cast.StructType{Keyword: kw.Pos, IsUnion: isUnion}
	if p.tok().Kind == ctoken.IDENT {
		st.Tag = p.next().Text
	}
	if p.tok().Kind != ctoken.LBRACE {
		if st.Tag == "" {
			p.errorf(kw.Pos, "anonymous struct requires a body")
		}
		return st
	}
	p.next() // {
	st.Defined = true
	for p.tok().Kind != ctoken.RBRACE && p.tok().Kind != ctoken.EOF {
		_, base := p.parseDeclSpecifiers()
		for {
			name, namePos, typ := p.parseDeclarator(base)
			if name == "" {
				p.errorf(namePos, "expected field name")
				p.sync()
				break
			}
			st.Fields = append(st.Fields, &cast.FieldDecl{NamePos: namePos, Name: name, Type: typ})
			if !p.accept(ctoken.COMMA) {
				p.expect(ctoken.SEMI)
				break
			}
		}
	}
	p.expect(ctoken.RBRACE)
	return st
}

func (p *Parser) parseEnumType() *cast.EnumType {
	kw := p.next() // enum
	et := &cast.EnumType{Keyword: kw.Pos}
	if p.tok().Kind == ctoken.IDENT {
		et.Tag = p.next().Text
	}
	if p.tok().Kind != ctoken.LBRACE {
		return et
	}
	p.next()
	et.Defined = true
	for p.tok().Kind != ctoken.RBRACE && p.tok().Kind != ctoken.EOF {
		nameTok := p.expect(ctoken.IDENT)
		m := cast.EnumMember{NamePos: nameTok.Pos, Name: nameTok.Text}
		if p.accept(ctoken.ASSIGN) {
			m.Value = p.parseCondExpr()
		}
		et.Members = append(et.Members, m)
		if !p.accept(ctoken.COMMA) {
			break
		}
	}
	p.expect(ctoken.RBRACE)
	return et
}

// parseDeclarator parses pointer stars, a name, and array/function suffixes
// around the given base type. Abstract declarators (no name) are allowed —
// callers check the returned name when one is required.
func (p *Parser) parseDeclarator(base cast.TypeExpr) (name string, namePos ctoken.Pos, typ cast.TypeExpr) {
	typ = base
	for p.tok().Kind == ctoken.STAR {
		star := p.next()
		for p.tok().Kind == ctoken.KwConst || p.tok().Kind == ctoken.KwVolatile {
			p.next()
		}
		typ = &cast.PointerType{StarPos: star.Pos, Elem: typ}
	}
	namePos = p.tok().Pos
	if p.tok().Kind == ctoken.IDENT {
		t := p.next()
		name = t.Text
		namePos = t.Pos
	}

	// Suffixes: arrays bind to the declared name; a parameter list makes a
	// function type.
	if p.tok().Kind == ctoken.LPAREN {
		lp := p.next()
		params, variadic := p.parseParamList()
		p.expect(ctoken.RPAREN)
		typ = &cast.FuncType{LparenPos: lp.Pos, Result: typ, Params: params, Variadic: variadic}
		return name, namePos, typ
	}

	// Array suffixes: int a[2][3] parses outermost-first; build the type
	// inside-out so Elem nesting matches C semantics.
	var lens []cast.Expr
	var lbracks []ctoken.Pos
	for p.tok().Kind == ctoken.LBRACKET {
		lb := p.next()
		var n cast.Expr
		if p.tok().Kind != ctoken.RBRACKET {
			n = p.parseCondExpr()
		}
		p.expect(ctoken.RBRACKET)
		lens = append(lens, n)
		lbracks = append(lbracks, lb.Pos)
	}
	for i := len(lens) - 1; i >= 0; i-- {
		typ = &cast.ArrayType{LbrackPos: lbracks[i], Elem: typ, Len: lens[i]}
	}
	return name, namePos, typ
}

func (p *Parser) parseParamList() (params []*cast.ParamDecl, variadic bool) {
	if p.tok().Kind == ctoken.RPAREN {
		return nil, false
	}
	// "(void)" means no parameters.
	if p.tok().Kind == ctoken.KwVoid && p.peek(1).Kind == ctoken.RPAREN {
		p.next()
		return nil, false
	}
	for {
		if p.tok().Kind == ctoken.ELLIPSIS {
			p.next()
			return params, true
		}
		_, base := p.parseDeclSpecifiers()
		name, namePos, typ := p.parseDeclarator(base)
		// Array parameters decay to pointers.
		if at, ok := typ.(*cast.ArrayType); ok {
			typ = &cast.PointerType{StarPos: at.LbrackPos, Elem: at.Elem}
		}
		params = append(params, &cast.ParamDecl{NamePos: namePos, Name: name, Type: typ})
		if !p.accept(ctoken.COMMA) {
			return params, false
		}
	}
}

// parseInitializer parses a scalar initializer or a braced initializer
// list. Braced lists are represented as a CallExpr on the pseudo-ident
// "__initlist" so the semantic layer can treat them specially without a
// dedicated node.
func (p *Parser) parseInitializer() cast.Expr {
	if p.tok().Kind != ctoken.LBRACE {
		return p.parseAssignExpr()
	}
	lb := p.next()
	call := &cast.CallExpr{
		LparenPos: lb.Pos,
		Fun:       &cast.Ident{NamePos: lb.Pos, Name: "__initlist"},
	}
	for p.tok().Kind != ctoken.RBRACE && p.tok().Kind != ctoken.EOF {
		call.Args = append(call.Args, p.parseInitializer())
		if !p.accept(ctoken.COMMA) {
			break
		}
	}
	p.expect(ctoken.RBRACE)
	return call
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) parseBlock() *cast.BlockStmt {
	lb := p.expect(ctoken.LBRACE)
	blk := &cast.BlockStmt{LbracePos: lb.Pos}
	for p.tok().Kind != ctoken.RBRACE && p.tok().Kind != ctoken.EOF && len(p.errs) < maxErrors {
		blk.List = append(blk.List, p.parseStmt())
	}
	p.expect(ctoken.RBRACE)
	return blk
}

func (p *Parser) parseStmt() cast.Stmt {
	if p.tok().Kind == ctoken.ANNOTATION {
		var annots []cast.Annotation
		for p.tok().Kind == ctoken.ANNOTATION {
			t := p.next()
			annots = append(annots, cast.Annotation{AtPos: t.Pos, Body: t.Text})
		}
		// Trailing annotations before '}' become post-conditions attached to
		// an empty statement.
		if p.tok().Kind == ctoken.RBRACE {
			return &cast.AnnotatedStmt{
				Annotations: annots,
				Stmt:        &cast.EmptyStmt{SemiPos: annots[len(annots)-1].AtPos},
			}
		}
		return &cast.AnnotatedStmt{Annotations: annots, Stmt: p.parseStmt()}
	}

	t := p.tok()
	switch t.Kind {
	case ctoken.LBRACE:
		return p.parseBlock()
	case ctoken.SEMI:
		p.next()
		return &cast.EmptyStmt{SemiPos: t.Pos}
	case ctoken.KwIf:
		return p.parseIf()
	case ctoken.KwWhile:
		return p.parseWhile()
	case ctoken.KwDo:
		return p.parseDoWhile()
	case ctoken.KwFor:
		return p.parseFor()
	case ctoken.KwReturn:
		p.next()
		rs := &cast.ReturnStmt{RetPos: t.Pos}
		if p.tok().Kind != ctoken.SEMI {
			rs.X = p.parseExpr()
		}
		p.expect(ctoken.SEMI)
		return rs
	case ctoken.KwBreak:
		p.next()
		p.expect(ctoken.SEMI)
		return &cast.BreakStmt{KwPos: t.Pos}
	case ctoken.KwContinue:
		p.next()
		p.expect(ctoken.SEMI)
		return &cast.ContinueStmt{KwPos: t.Pos}
	case ctoken.KwSwitch:
		return p.parseSwitch()
	case ctoken.KwGoto:
		p.next()
		name := p.expect(ctoken.IDENT)
		p.expect(ctoken.SEMI)
		return &cast.GotoStmt{KwPos: t.Pos, Name: name.Text}
	case ctoken.IDENT:
		// Label: "name: stmt" — only when followed by a colon and the name
		// is not a typedef (a typedef can start a declaration).
		if p.peek(1).Kind == ctoken.COLON && !p.typedefs[t.Text] {
			p.next()
			p.next()
			return &cast.LabeledStmt{NamePos: t.Pos, Name: t.Text, Stmt: p.parseStmt()}
		}
	}

	if p.startsDecl() {
		return p.parseDeclStmt()
	}

	x := p.parseExpr()
	p.expect(ctoken.SEMI)
	return &cast.ExprStmt{X: x}
}

func (p *Parser) parseDeclStmt() cast.Stmt {
	storage, base := p.parseDeclSpecifiers()
	if storage == cast.StorageTypedef {
		name, namePos, typ := p.parseDeclarator(base)
		p.typedefs[name] = true
		p.expect(ctoken.SEMI)
		// Block-scope typedefs are rare; we record them globally, which is a
		// safe over-approximation for this subset.
		_ = namePos
		_ = typ
		return &cast.EmptyStmt{SemiPos: namePos}
	}
	ds := &cast.DeclStmt{}
	for {
		name, namePos, typ := p.parseDeclarator(base)
		if name == "" {
			p.errorf(namePos, "expected variable name in declaration")
			p.sync()
			return ds
		}
		vd := &cast.VarDecl{NamePos: namePos, Name: name, Type: typ, Storage: storage}
		if p.accept(ctoken.ASSIGN) {
			vd.Init = p.parseInitializer()
		}
		ds.Decls = append(ds.Decls, vd)
		if !p.accept(ctoken.COMMA) {
			p.expect(ctoken.SEMI)
			return ds
		}
	}
}

func (p *Parser) parseIf() cast.Stmt {
	kw := p.next()
	p.expect(ctoken.LPAREN)
	cond := p.parseExpr()
	p.expect(ctoken.RPAREN)
	then := p.parseStmt()
	var els cast.Stmt
	if p.accept(ctoken.KwElse) {
		els = p.parseStmt()
	}
	return &cast.IfStmt{IfPos: kw.Pos, Cond: cond, Then: then, Else: els}
}

func (p *Parser) parseWhile() cast.Stmt {
	kw := p.next()
	p.expect(ctoken.LPAREN)
	cond := p.parseExpr()
	p.expect(ctoken.RPAREN)
	body := p.parseStmt()
	return &cast.WhileStmt{WhilePos: kw.Pos, Cond: cond, Body: body}
}

func (p *Parser) parseDoWhile() cast.Stmt {
	kw := p.next()
	body := p.parseStmt()
	p.expect(ctoken.KwWhile)
	p.expect(ctoken.LPAREN)
	cond := p.parseExpr()
	p.expect(ctoken.RPAREN)
	p.expect(ctoken.SEMI)
	return &cast.DoWhileStmt{DoPos: kw.Pos, Body: body, Cond: cond}
}

func (p *Parser) parseFor() cast.Stmt {
	kw := p.next()
	p.expect(ctoken.LPAREN)
	fs := &cast.ForStmt{ForPos: kw.Pos}
	if p.tok().Kind != ctoken.SEMI {
		if p.startsDecl() {
			fs.Init = p.parseDeclStmt() // consumes the semicolon
		} else {
			x := p.parseExpr()
			fs.Init = &cast.ExprStmt{X: x}
			p.expect(ctoken.SEMI)
		}
	} else {
		p.next()
	}
	if p.tok().Kind != ctoken.SEMI {
		fs.Cond = p.parseExpr()
	}
	p.expect(ctoken.SEMI)
	if p.tok().Kind != ctoken.RPAREN {
		fs.Post = p.parseExpr()
	}
	p.expect(ctoken.RPAREN)
	fs.Body = p.parseStmt()
	return fs
}

func (p *Parser) parseSwitch() cast.Stmt {
	kw := p.next()
	p.expect(ctoken.LPAREN)
	tag := p.parseExpr()
	p.expect(ctoken.RPAREN)
	p.expect(ctoken.LBRACE)
	sw := &cast.SwitchStmt{SwitchPos: kw.Pos, Tag: tag}
	var cur *cast.CaseClause
	for p.tok().Kind != ctoken.RBRACE && p.tok().Kind != ctoken.EOF {
		switch p.tok().Kind {
		case ctoken.KwCase:
			c := p.next()
			v := p.parseCondExpr()
			p.expect(ctoken.COLON)
			if cur != nil && len(cur.Body) == 0 {
				// "case 1: case 2:" — merge values into one clause.
				cur.Values = append(cur.Values, v)
				continue
			}
			cur = &cast.CaseClause{CasePos: c.Pos, Values: []cast.Expr{v}}
			sw.Body = append(sw.Body, cur)
		case ctoken.KwDefault:
			c := p.next()
			p.expect(ctoken.COLON)
			cur = &cast.CaseClause{CasePos: c.Pos}
			sw.Body = append(sw.Body, cur)
		default:
			if cur == nil {
				p.errorf(p.tok().Pos, "statement before first case in switch")
				p.sync()
				continue
			}
			cur.Body = append(cur.Body, p.parseStmt())
		}
	}
	p.expect(ctoken.RBRACE)
	for _, c := range sw.Body {
		c.Fallthrough = !endsControlFlow(c.Body)
	}
	return sw
}

func endsControlFlow(body []cast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	switch body[len(body)-1].(type) {
	case *cast.BreakStmt, *cast.ReturnStmt, *cast.ContinueStmt, *cast.GotoStmt:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Expressions

// parseExpr parses a full expression (comma operator is not in the subset,
// so this is assignment level).
func (p *Parser) parseExpr() cast.Expr { return p.parseAssignExpr() }

func (p *Parser) parseAssignExpr() cast.Expr {
	lhs := p.parseCondExpr()
	t := p.tok()
	if t.Kind.IsAssign() {
		p.next()
		rhs := p.parseAssignExpr()
		return &cast.AssignExpr{OpPos: t.Pos, Op: t.Kind, LHS: lhs, RHS: rhs}
	}
	return lhs
}

func (p *Parser) parseCondExpr() cast.Expr {
	cond := p.parseBinaryExpr(1)
	if p.tok().Kind != ctoken.QUESTION {
		return cond
	}
	q := p.next()
	then := p.parseAssignExpr()
	p.expect(ctoken.COLON)
	els := p.parseCondExpr()
	return &cast.CondExpr{QPos: q.Pos, Cond: cond, Then: then, Else: els}
}

// binary operator precedence (C's, || lowest handled here).
func precedence(k ctoken.Kind) int {
	switch k {
	case ctoken.LOR:
		return 1
	case ctoken.LAND:
		return 2
	case ctoken.PIPE:
		return 3
	case ctoken.CARET:
		return 4
	case ctoken.AMP:
		return 5
	case ctoken.EQ, ctoken.NE:
		return 6
	case ctoken.LT, ctoken.GT, ctoken.LE, ctoken.GE:
		return 7
	case ctoken.SHL, ctoken.SHR:
		return 8
	case ctoken.PLUS, ctoken.MINUS:
		return 9
	case ctoken.STAR, ctoken.SLASH, ctoken.PERCENT:
		return 10
	default:
		return 0
	}
}

func (p *Parser) parseBinaryExpr(minPrec int) cast.Expr {
	lhs := p.parseUnaryExpr()
	for {
		t := p.tok()
		prec := precedence(t.Kind)
		if prec < minPrec || prec == 0 {
			return lhs
		}
		p.next()
		rhs := p.parseBinaryExpr(prec + 1)
		lhs = &cast.BinaryExpr{OpPos: t.Pos, Op: t.Kind, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnaryExpr() cast.Expr {
	t := p.tok()
	switch t.Kind {
	case ctoken.MINUS, ctoken.PLUS, ctoken.NOT, ctoken.TILDE, ctoken.STAR, ctoken.AMP:
		p.next()
		x := p.parseUnaryExpr()
		if t.Kind == ctoken.PLUS {
			return x // unary plus is a no-op
		}
		return &cast.UnaryExpr{OpPos: t.Pos, Op: t.Kind, X: x}
	case ctoken.INC, ctoken.DEC:
		p.next()
		x := p.parseUnaryExpr()
		return &cast.UnaryExpr{OpPos: t.Pos, Op: t.Kind, X: x}
	case ctoken.KwSizeof:
		p.next()
		if p.tok().Kind == ctoken.LPAREN && p.typeAfterLparen() {
			p.next()
			typ := p.parseTypeName()
			p.expect(ctoken.RPAREN)
			return &cast.SizeofExpr{KwPos: t.Pos, Type: typ}
		}
		x := p.parseUnaryExpr()
		return &cast.SizeofExpr{KwPos: t.Pos, X: x}
	case ctoken.LPAREN:
		if p.typeAfterLparen() {
			lp := p.next()
			typ := p.parseTypeName()
			p.expect(ctoken.RPAREN)
			x := p.parseUnaryExpr()
			return &cast.CastExpr{LparenPos: lp.Pos, Type: typ, X: x}
		}
	}
	return p.parsePostfixExpr()
}

// typeAfterLparen reports whether the token after the current '(' begins a
// type name (for casts and sizeof).
func (p *Parser) typeAfterLparen() bool {
	n := p.peek(1)
	switch n.Kind {
	case ctoken.KwVoid, ctoken.KwChar, ctoken.KwShort, ctoken.KwInt, ctoken.KwLong,
		ctoken.KwFloat, ctoken.KwDouble, ctoken.KwSigned, ctoken.KwUnsigned,
		ctoken.KwStruct, ctoken.KwUnion, ctoken.KwEnum, ctoken.KwConst, ctoken.KwVolatile:
		return true
	case ctoken.IDENT:
		return p.typedefs[n.Text]
	default:
		return false
	}
}

// parseTypeName parses a type-name (specifiers + abstract declarator).
func (p *Parser) parseTypeName() cast.TypeExpr {
	_, base := p.parseDeclSpecifiers()
	name, namePos, typ := p.parseDeclarator(base)
	if name != "" {
		p.errorf(namePos, "unexpected name %q in type", name)
	}
	return typ
}

func (p *Parser) parsePostfixExpr() cast.Expr {
	x := p.parsePrimaryExpr()
	for {
		t := p.tok()
		switch t.Kind {
		case ctoken.LPAREN:
			p.next()
			call := &cast.CallExpr{LparenPos: t.Pos, Fun: x}
			for p.tok().Kind != ctoken.RPAREN && p.tok().Kind != ctoken.EOF {
				call.Args = append(call.Args, p.parseAssignExpr())
				if !p.accept(ctoken.COMMA) {
					break
				}
			}
			p.expect(ctoken.RPAREN)
			x = call
		case ctoken.LBRACKET:
			p.next()
			idx := p.parseExpr()
			p.expect(ctoken.RBRACKET)
			x = &cast.IndexExpr{LbrackPos: t.Pos, X: x, Index: idx}
		case ctoken.DOT:
			p.next()
			name := p.expect(ctoken.IDENT)
			x = &cast.MemberExpr{DotPos: t.Pos, X: x, Name: name.Text}
		case ctoken.ARROW:
			p.next()
			name := p.expect(ctoken.IDENT)
			x = &cast.MemberExpr{DotPos: t.Pos, X: x, Name: name.Text, Arrow: true}
		case ctoken.INC, ctoken.DEC:
			p.next()
			x = &cast.PostfixExpr{OpPos: t.Pos, Op: t.Kind, X: x}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimaryExpr() cast.Expr {
	t := p.tok()
	switch t.Kind {
	case ctoken.IDENT:
		p.next()
		return &cast.Ident{NamePos: t.Pos, Name: t.Text}
	case ctoken.INTLIT:
		p.next()
		v, err := parseIntText(t.Text)
		if err != nil {
			p.errorf(t.Pos, "bad integer literal %q: %v", t.Text, err)
		}
		return &cast.IntLit{LitPos: t.Pos, Value: v, Text: t.Text}
	case ctoken.FLOATLIT:
		p.next()
		text := strings.TrimRight(t.Text, "fFlL")
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			p.errorf(t.Pos, "bad float literal %q: %v", t.Text, err)
		}
		return &cast.FloatLit{LitPos: t.Pos, Value: v, Text: t.Text}
	case ctoken.STRLIT:
		p.next()
		// Adjacent string literals concatenate.
		val := t.Text
		for p.tok().Kind == ctoken.STRLIT {
			val += p.next().Text
		}
		return &cast.StrLit{LitPos: t.Pos, Value: val}
	case ctoken.LPAREN:
		p.next()
		x := p.parseExpr()
		p.expect(ctoken.RPAREN)
		return &cast.ParenExpr{LparenPos: t.Pos, X: x}
	default:
		p.errorf(t.Pos, "expected expression, found %s", t)
		p.next()
		return &cast.IntLit{LitPos: t.Pos, Value: 0, Text: "0"}
	}
}

func parseIntText(text string) (int64, error) {
	s := strings.TrimRight(text, "uUlL")
	if s == "" {
		return 0, fmt.Errorf("empty literal")
	}
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseInt(s[2:], 16, 64)
	}
	if len(s) > 1 && s[0] == '0' {
		return strconv.ParseInt(s[1:], 8, 64)
	}
	return strconv.ParseInt(s, 10, 64)
}
