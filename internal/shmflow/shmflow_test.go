package shmflow

import (
	"strings"
	"testing"

	"safeflow/internal/callgraph"
	"safeflow/internal/frontend"
	"safeflow/internal/ir"
)

const preamble = `
typedef struct { double a; double b; int flag; int pad; } Region;

Region *primary;
Region *secondary;

void initComm()
/***SafeFlow Annotation shminit /***/
{
	void *base;
	base = shmat(shmget(1, 2 * sizeof(Region), 0), 0, 0);
	primary = (Region *) base;
	secondary = primary + 1;
	/***SafeFlow Annotation assume(shmvar(primary, sizeof(Region))) /***/
	/***SafeFlow Annotation assume(shmvar(secondary, sizeof(Region))) /***/
	/***SafeFlow Annotation assume(noncore(secondary)) /***/
}
`

func analyze(t *testing.T, src string) (*Result, *ir.Module) {
	t.Helper()
	res, err := frontend.CompileString("t", src, frontend.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cg := callgraph.New(res.Module)
	return Analyze(res.Module, cg), res.Module
}

func TestRegionDiscovery(t *testing.T) {
	sf, _ := analyze(t, preamble+`
int main() { return 0; }
`)
	if len(sf.Errors) != 0 {
		t.Fatalf("errors: %v", sf.Errors)
	}
	if len(sf.Regions) != 2 {
		t.Fatalf("regions = %v", sf.Regions)
	}
	p := sf.RegionByName["primary"]
	s := sf.RegionByName["secondary"]
	if p == nil || s == nil {
		t.Fatal("regions missing")
	}
	if p.Size != 24 || s.Size != 24 {
		t.Errorf("sizes = %d, %d, want 24", p.Size, s.Size)
	}
	if p.NonCore {
		t.Error("primary wrongly noncore")
	}
	if !s.NonCore {
		t.Error("secondary should be noncore")
	}
	if !sf.InitFuncs[initFunc(t, sf)] {
		t.Error("initComm not recorded as shminit")
	}
}

func initFunc(t *testing.T, sf *Result) *ir.Function {
	t.Helper()
	for f := range sf.InitFuncs {
		return f
	}
	t.Fatal("no init funcs")
	return nil
}

func TestDirectLoadFact(t *testing.T) {
	sf, m := analyze(t, preamble+`
double readA() { return primary->a; }
int main() { initComm(); return (int) readA(); }
`)
	f := m.FuncByName("readA")
	// The GEP computing &primary->a must carry the primary region at
	// offset 0.
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			g, ok := in.(*ir.GEP)
			if !ok {
				continue
			}
			fact := sf.FactOf(f, g)
			if fact.Empty() {
				continue
			}
			iv, ok := fact[sf.RegionByName["primary"]]
			if !ok {
				t.Errorf("GEP fact = %v, want primary", fact)
				continue
			}
			if iv.Unknown || iv.Lo != 0 {
				t.Errorf("offset = %v, want [0]", iv)
			}
			found = true
		}
	}
	if !found {
		t.Errorf("no shm fact on the field GEP:\n%s", f)
	}
}

func TestFieldOffsetTracking(t *testing.T) {
	sf, m := analyze(t, preamble+`
double readB() { return secondary->b; }
int main() { initComm(); return (int) readB(); }
`)
	f := m.FuncByName("readB")
	reg := sf.RegionByName["secondary"]
	foundOffset := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if g, ok := in.(*ir.GEP); ok {
				if iv, ok := sf.FactOf(f, g)[reg]; ok && !iv.Unknown && iv.Lo == 8 {
					foundOffset = true
				}
			}
		}
	}
	if !foundOffset {
		t.Errorf("field b offset 8 not tracked in:\n%s", f)
	}
}

func TestInterproceduralParamFact(t *testing.T) {
	sf, m := analyze(t, preamble+`
double helper(Region *r) { return r->a; }
int main()
{
	initComm();
	return (int) helper(primary) + (int) helper(secondary);
}
`)
	f := m.FuncByName("helper")
	fact := sf.FactOf(f, f.Params[0])
	if len(fact) != 2 {
		t.Fatalf("param fact = %v, want both regions (top-down join)", fact)
	}
}

func TestReturnValueFact(t *testing.T) {
	sf, m := analyze(t, preamble+`
Region *pick(int which)
{
	if (which) { return primary; }
	return secondary;
}
int main()
{
	Region *r;
	initComm();
	r = pick(1);
	return r->flag;
}
`)
	pick := m.FuncByName("pick")
	ret := sf.RetFacts[pick]
	if len(ret) != 2 {
		t.Fatalf("pick return fact = %v, want both regions", ret)
	}
	// And the fact flows to the call result in main.
	mainFn := m.FuncByName("main")
	foundCall := false
	for _, b := range mainFn.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && c.Callee == pick {
				if fact := sf.FactOf(mainFn, c); len(fact) == 2 {
					foundCall = true
				}
			}
		}
	}
	if !foundCall {
		t.Error("call-result fact missing (bottom-up propagation)")
	}
}

func TestPointerArithmeticUnknownIndex(t *testing.T) {
	sf, m := analyze(t, preamble+`
double readAt(int i)
{
	double *base;
	base = &primary->a;
	return *(base + i);
}
int main() { initComm(); return (int) readAt(1); }
`)
	f := m.FuncByName("readAt")
	foundUnknown := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if g, ok := in.(*ir.GEP); ok {
				if iv, ok := sf.FactOf(f, g)[sf.RegionByName["primary"]]; ok && iv.Unknown {
					foundUnknown = true
				}
			}
		}
	}
	if !foundUnknown {
		t.Errorf("variable-index GEP should have unknown interval:\n%s", f)
	}
}

func TestAnnotationErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{
			"unknown global",
			`void init()
/***SafeFlow Annotation shminit /***/
{
	/***SafeFlow Annotation assume(shmvar(ghost, 8)) /***/
}
int main() { return 0; }`,
			"no global pointer variable",
		},
		{
			"non-pointer global",
			`int counter;
void init()
/***SafeFlow Annotation shminit /***/
{
	/***SafeFlow Annotation assume(shmvar(counter, 8)) /***/
}
int main() { return 0; }`,
			"not a pointer",
		},
		{
			"duplicate region",
			`double *r;
void init()
/***SafeFlow Annotation shminit /***/
{
	/***SafeFlow Annotation assume(shmvar(r, 8)) /***/
	/***SafeFlow Annotation assume(shmvar(r, 16)) /***/
}
int main() { return 0; }`,
			"already declared",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			sf, _ := analyze(t, tc.src)
			if len(sf.Errors) == 0 {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(sf.Errors[0].Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", sf.Errors[0], tc.want)
			}
		})
	}
}

func TestIntervalOps(t *testing.T) {
	a := Exact(8)
	b := Exact(16)
	j := JoinInterval(a, b)
	if j.Lo != 8 || j.Hi != 16 || j.Unknown {
		t.Errorf("join = %v", j)
	}
	u := JoinInterval(a, Interval{Unknown: true})
	if !u.Unknown {
		t.Error("join with unknown must be unknown")
	}
	s := a.Shift(4, false)
	if s.Lo != 12 || s.Hi != 12 {
		t.Errorf("shift = %v", s)
	}
	if !a.Shift(0, true).Unknown {
		t.Error("unknown shift must poison")
	}
	if Exact(3).String() != "[3]" || (Interval{Unknown: true}).String() != "[?]" {
		t.Error("interval strings")
	}
}

func TestNoRegionsNoWork(t *testing.T) {
	sf, _ := analyze(t, `int main() { return 0; }`)
	if len(sf.Regions) != 0 || len(sf.Facts) != 0 {
		t.Errorf("unexpected analysis output without regions: %v", sf.Regions)
	}
}
