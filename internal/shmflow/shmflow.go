// Package shmflow implements phase 1 of the SafeFlow analysis (paper
// §3.3): discovery of shared-memory regions from annotated initializing
// functions, and interprocedural identification of every pointer value
// that may reference shared memory, with byte-offset intervals tracked for
// the core(ptr, offset, size) matching done in phase 3.
//
// Regions are named by the global pointer variables declared in shmvar
// post-conditions of shminit functions (Figure 3 of the paper). Pointer
// facts propagate sparsely inside each function (SSA def-use edges, join
// at phis = "shm if shm on some path") and interprocedurally along the
// call graph — bottom-up through return values and top-down through
// arguments — iterated over the SCC DAG until stable.
package shmflow

import (
	"fmt"
	"sort"

	"safeflow/internal/annot"
	"safeflow/internal/callgraph"
	"safeflow/internal/ctypes"
	"safeflow/internal/dataflow"
	"safeflow/internal/ir"
)

// Region is one shared-memory variable declared by shmvar(ptr, size).
type Region struct {
	Name    string // the global pointer variable naming the region
	Size    int64  // bytes
	NonCore bool   // assume(noncore(ptr)) was given
	Global  *ir.Global
	Init    *ir.Function // the shminit function that declared it
}

// String implements fmt.Stringer.
func (r *Region) String() string {
	kind := "core"
	if r.NonCore {
		kind = "noncore"
	}
	return fmt.Sprintf("%s[%d bytes, %s]", r.Name, r.Size, kind)
}

// Interval is a byte-offset range relative to a region base. Unknown means
// the offset could not be bounded statically.
type Interval struct {
	Lo, Hi  int64
	Unknown bool
}

// Exact returns the interval [o, o].
func Exact(o int64) Interval { return Interval{Lo: o, Hi: o} }

// JoinInterval merges two intervals.
func JoinInterval(a, b Interval) Interval {
	if a.Unknown || b.Unknown {
		return Interval{Unknown: true}
	}
	lo, hi := a.Lo, a.Hi
	if b.Lo < lo {
		lo = b.Lo
	}
	if b.Hi > hi {
		hi = b.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// Shift adds a byte delta (UnknownDelta yields Unknown).
func (iv Interval) Shift(delta int64, unknown bool) Interval {
	if iv.Unknown || unknown {
		return Interval{Unknown: true}
	}
	return Interval{Lo: iv.Lo + delta, Hi: iv.Hi + delta}
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	if iv.Unknown {
		return "[?]"
	}
	if iv.Lo == iv.Hi {
		return fmt.Sprintf("[%d]", iv.Lo)
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

// Fact is the shm-pointer fact of one SSA value: the regions it may point
// into and the offset interval per region. nil/empty = not a shm pointer.
type Fact map[*Region]Interval

// Empty reports whether the value is not a shared-memory pointer.
func (f Fact) Empty() bool { return len(f) == 0 }

// clone copies the fact.
func (f Fact) clone() Fact {
	if len(f) == 0 {
		return nil
	}
	out := make(Fact, len(f))
	for r, iv := range f {
		out[r] = iv
	}
	return out
}

// join merges two facts.
func joinFacts(a, b Fact) Fact {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	out := a.clone()
	for r, iv := range b {
		if prev, ok := out[r]; ok {
			out[r] = JoinInterval(prev, iv)
		} else {
			out[r] = iv
		}
	}
	return out
}

func equalFacts(a, b Fact) bool {
	if len(a) != len(b) {
		return false
	}
	for r, iv := range a {
		if b[r] != iv {
			return false
		}
	}
	return true
}

// lattice adapts Fact to the dataflow solver.
type lattice struct{}

func (lattice) Join(a, b Fact) Fact  { return joinFacts(a, b) }
func (lattice) Equal(a, b Fact) bool { return equalFacts(a, b) }
func (lattice) Bottom() Fact         { return nil }

// Result is the phase-1 output.
type Result struct {
	Regions      []*Region
	RegionByName map[string]*Region
	// InitFuncs are the shminit-annotated functions (excluded from phases
	// 2 and 3 per the paper).
	InitFuncs map[*ir.Function]bool
	// Facts holds, per defined non-init function, the dense fact table of
	// its last sparse solve (indexed by the function's value numbering).
	Facts map[*ir.Function]dataflow.Facts[Fact]
	// RetFacts holds the shm fact of each function's return value.
	RetFacts map[*ir.Function]Fact
	// Errors are annotation/malformation problems found during phase 1.
	Errors []error
}

// FactOf returns the fact of v inside fn.
func (r *Result) FactOf(fn *ir.Function, v ir.Value) Fact {
	return r.Facts[fn].Get(v)
}

// IsShmPointer reports whether v may point into shared memory in fn.
func (r *Result) IsShmPointer(fn *ir.Function, v ir.Value) bool {
	return !r.FactOf(fn, v).Empty()
}

// Analyze runs phase 1 over the module.
func Analyze(m *ir.Module, cg *callgraph.Graph) *Result {
	res := &Result{
		RegionByName: make(map[string]*Region),
		InitFuncs:    make(map[*ir.Function]bool),
		Facts:        make(map[*ir.Function]dataflow.Facts[Fact]),
		RetFacts:     make(map[*ir.Function]Fact),
	}
	res.discoverRegions(m)
	if len(res.Regions) == 0 {
		return res
	}
	res.propagate(m, cg)
	return res
}

// facts retrieves the function-level annotation bundle.
func facts(f *ir.Function) *annot.FuncFacts {
	if ff, ok := f.Facts.(*annot.FuncFacts); ok {
		return ff
	}
	return nil
}

// discoverRegions scans shminit functions for shmvar/noncore
// post-conditions and validates them.
func (r *Result) discoverRegions(m *ir.Module) {
	for _, f := range m.Funcs {
		ff := facts(f)
		if ff == nil || !ff.IsShmInit {
			continue
		}
		r.InitFuncs[f] = true
		for _, sv := range ff.ShmVars {
			g := m.GlobalByName(sv.Ptr)
			if g == nil {
				r.Errors = append(r.Errors, fmt.Errorf(
					"%s: shmvar(%s, %d): no global pointer variable %q",
					f.Name, sv.Ptr, sv.Size, sv.Ptr))
				continue
			}
			if !ctypes.IsPointer(g.Elem) {
				r.Errors = append(r.Errors, fmt.Errorf(
					"%s: shmvar(%s, %d): global %q is %s, not a pointer",
					f.Name, sv.Ptr, sv.Size, sv.Ptr, g.Elem))
				continue
			}
			if prev, dup := r.RegionByName[sv.Ptr]; dup {
				r.Errors = append(r.Errors, fmt.Errorf(
					"%s: shmvar(%s, %d): region already declared with size %d",
					f.Name, sv.Ptr, sv.Size, prev.Size))
				continue
			}
			reg := &Region{Name: sv.Ptr, Size: sv.Size, Global: g, Init: f}
			r.Regions = append(r.Regions, reg)
			r.RegionByName[sv.Ptr] = reg
		}
		for _, nc := range ff.NonCore {
			if reg, ok := r.RegionByName[nc.Name]; ok {
				reg.NonCore = true
			}
			// noncore on non-region names (socket descriptors, local
			// pointers in monitoring functions) is handled by phase 3.
		}
	}
	sort.Slice(r.Regions, func(i, j int) bool { return r.Regions[i].Name < r.Regions[j].Name })
}

// propagate runs the sparse intraprocedural solve per function plus the
// bottom-up/top-down interprocedural plumbing to a fixpoint.
func (r *Result) propagate(m *ir.Module, cg *callgraph.Graph) {
	// Cross-function boundary facts.
	paramFacts := make(map[*ir.Param]Fact)
	// One solver per function, reused across the interprocedural rounds so
	// the def-use index is built once and the fact buffers are recycled.
	solvers := make(map[*ir.Function]*fnSolver)

	dirty := make(map[*ir.Function]bool)
	var queue []*ir.Function
	push := func(f *ir.Function) {
		if f == nil || f.IsDecl || r.InitFuncs[f] || dirty[f] {
			return
		}
		dirty[f] = true
		queue = append(queue, f)
	}

	// Bottom-up seed order: callees first so return facts are available.
	for _, scc := range cg.BottomUp() {
		for _, f := range scc.Funcs {
			push(f)
		}
	}

	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		dirty[f] = false

		retChanged, callArgs := r.solveFunction(f, paramFacts, solvers)
		if retChanged {
			for _, caller := range cg.Callers[f] {
				push(caller)
			}
		}
		// Top-down: push argument facts into callee parameters.
		for callee, args := range callArgs {
			changed := false
			for i, fact := range args {
				if fact.Empty() || i >= len(callee.Params) {
					continue
				}
				p := callee.Params[i]
				merged := joinFacts(paramFacts[p], fact)
				if !equalFacts(merged, paramFacts[p]) {
					paramFacts[p] = merged
					changed = true
				}
			}
			if changed {
				push(callee)
			}
		}
	}
}

// fnSolver is the per-function solve state reused across rounds.
type fnSolver struct {
	solver *dataflow.ValueSolver[Fact]
	seeds  []dataflow.Seed[Fact]
}

// solveFunction runs the sparse solve for one function given current
// parameter facts; it records the final fact table, returns whether the
// function's return fact changed, and collects per-callee argument facts.
func (r *Result) solveFunction(f *ir.Function, paramFacts map[*ir.Param]Fact, solvers map[*ir.Function]*fnSolver) (retChanged bool, callArgs map[*ir.Function][]Fact) {
	st := solvers[f]
	if st == nil {
		st = &fnSolver{solver: &dataflow.ValueSolver[Fact]{
			Info:    dataflow.NewInfo(f),
			Lattice: lattice{},
			Transfer: func(in ir.Instr, get func(ir.Value) Fact) (Fact, bool) {
				return r.transfer(f, in, get)
			},
		}}
		solvers[f] = st
	}
	st.seeds = st.seeds[:0]
	for _, p := range f.Params {
		if fact := paramFacts[p]; !fact.Empty() {
			st.seeds = append(st.seeds, dataflow.Seed[Fact]{Val: p, Fact: fact})
		}
	}
	// The solver joins seeds into its fact table, so FactOf callers see the
	// parameter facts too.
	final := st.solver.Solve(st.seeds)
	r.Facts[f] = final

	// Return fact.
	var ret Fact
	for _, b := range f.Blocks {
		if rt, ok := b.Term().(*ir.Ret); ok && rt.X != nil {
			ret = joinFacts(ret, final.Get(rt.X))
		}
	}
	if !equalFacts(ret, r.RetFacts[f]) {
		r.RetFacts[f] = ret
		retChanged = true
	}

	// Argument facts per callee.
	callArgs = make(map[*ir.Function][]Fact)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			call, ok := in.(*ir.Call)
			if !ok || call.Callee.IsDecl || r.InitFuncs[call.Callee] {
				continue
			}
			args := callArgs[call.Callee]
			if args == nil {
				args = make([]Fact, len(call.Args))
			}
			for i, a := range call.Args {
				if i < len(args) {
					args[i] = joinFacts(args[i], final.Get(a))
				}
			}
			callArgs[call.Callee] = args
		}
	}
	return retChanged, callArgs
}

// transfer computes the shm fact of one instruction's result.
func (r *Result) transfer(f *ir.Function, in ir.Instr, get func(ir.Value) Fact) (Fact, bool) {
	switch x := in.(type) {
	case *ir.Load:
		// Loading a region's global pointer variable yields a base pointer.
		if g, ok := x.Addr.(*ir.Global); ok {
			if reg, isRegion := r.RegionByName[g.Name]; isRegion {
				return Fact{reg: Exact(0)}, true
			}
		}
		// Loading through a shm pointer yields shm *data*; a pointer-typed
		// load from shm is not itself a tracked shm pointer (P2 forbids
		// storing them there) — phase 3 taints it instead.
		return nil, true
	case *ir.GEP:
		base := get(x.Base)
		if base.Empty() {
			return nil, true
		}
		delta, unknown := gepByteDelta(x)
		out := make(Fact, len(base))
		for reg, iv := range base {
			out[reg] = iv.Shift(delta, unknown)
		}
		return out, true
	case *ir.Cast:
		switch x.Kind {
		case ir.Bitcast:
			return get(x.X).clone(), true
		case ir.IntToPtr, ir.PtrToInt:
			// P3 forbids these on shm pointers; restrict reports them. The
			// fact is propagated anyway so the violation site is precise.
			return get(x.X).clone(), true
		}
		return nil, true
	case *ir.Phi:
		var out Fact
		for _, e := range x.Edges {
			out = joinFacts(out, get(e.Val))
		}
		return out, true
	case *ir.Call:
		if x.Callee.IsDecl || r.InitFuncs[x.Callee] {
			return nil, true
		}
		return r.RetFacts[x.Callee].clone(), true
	default:
		return nil, false
	}
}

// gepByteDelta computes the static byte delta of a GEP (false when every
// index is constant).
func gepByteDelta(g *ir.GEP) (delta int64, unknown bool) {
	cur := g.Base.Type()
	for _, ix := range g.Indices {
		p, ok := cur.(*ctypes.Pointer)
		if !ok {
			return 0, true
		}
		if ix.Index == nil {
			st, ok := p.Elem.(*ctypes.Struct)
			if !ok || ix.Field >= len(st.Fields) {
				return 0, true
			}
			delta += st.Fields[ix.Field].Offset
			cur = &ctypes.Pointer{Elem: st.Fields[ix.Field].Type}
			continue
		}
		c, isConst := ix.Index.(*ir.ConstInt)
		if !isConst {
			return 0, true
		}
		if arr, isArr := p.Elem.(*ctypes.Array); isArr {
			delta += c.Val * arr.Elem.Size()
			cur = &ctypes.Pointer{Elem: arr.Elem}
			continue
		}
		delta += c.Val * p.Elem.Size()
	}
	return delta, false
}
