// Package diskcache is a content-addressed on-disk cache shared by every
// SafeFlow process on a machine: the CLI's warm starts, sfbench
// iterations, and the safeflowd daemon all read and write the same
// store, so a translation unit parsed (or a module solved) by one
// process is a hit for the next — across process restarts.
//
// The store is an accelerator, never a source of record. Every read
// verifies the entry against the SHA-256 of its payload recorded at
// store time; an entry that fails the check — torn write on a crashed
// filesystem, bit rot, a concurrent writer from a different build — is
// evicted and reported as corrupt so the caller recomputes (and
// re-stores) it. A damaged entry can cost time, never change a verdict,
// which is the same self-healing contract the in-memory caches already
// keep (DESIGN.md §7).
//
// Writes are atomic: each entry is written to a temp file in the same
// directory and renamed into place, so concurrent processes never
// observe a torn entry — they see either the old bytes, the new bytes,
// or a miss. Entries are namespaced (one directory per namespace, e.g.
// "parse" and "summary") and versioned: a caller bumps its namespace
// version whenever its payload encoding changes, and entries written
// under any other version are invalidated on read instead of being
// decoded by the wrong codec.
//
// The store is size-bounded: when the total payload bytes exceed the
// budget, the least-recently-used entries (by file mtime, refreshed on
// every hit) are evicted until the store fits again.
package diskcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// CacheBackend is the interface the analysis pipeline caches persist
// through. *Store implements it; tests substitute in-memory fakes.
//
// Get returns the payload stored under (ns, version, key). ok reports a
// hit; corrupt reports that an entry existed but failed its integrity
// check and was evicted (the caller should count it in run metrics as a
// corrupt eviction and recompute). A version mismatch is a plain miss:
// the stale entry is evicted silently.
//
// Put stores the payload. Failures are deliberately silent — a cache
// that cannot write degrades to a smaller cache, never to an error.
type CacheBackend interface {
	Get(ns string, version uint32, key [sha256.Size]byte) (data []byte, ok bool, corrupt bool)
	Put(ns string, version uint32, key [sha256.Size]byte, data []byte)
}

// Entry file layout (little-endian):
//
//	magic       [4]byte  "SFDC"
//	format      uint32   entryFormat
//	nsVersion   uint32   caller codec version
//	payloadLen  uint64
//	payloadSum  [32]byte sha256(payload)
//	payload     [payloadLen]byte
const (
	entryMagic  = "SFDC"
	entryFormat = 1
	headerSize  = 4 + 4 + 4 + 8 + sha256.Size
)

// DefaultMaxBytes is the store budget used when Open is given 0.
const DefaultMaxBytes = 256 << 20 // 256 MiB

// Stats is a point-in-time snapshot of the store's counters (process
// local: other processes sharing the directory keep their own).
type Stats struct {
	Hits             int64 `json:"hits"`
	Misses           int64 `json:"misses"`
	Puts             int64 `json:"puts"`
	CorruptEvictions int64 `json:"corrupt_evictions"`
	VersionEvictions int64 `json:"version_evictions"`
	LRUEvictions     int64 `json:"lru_evictions"`
	BytesInUse       int64 `json:"bytes_in_use"`
	Entries          int64 `json:"entries"`
}

// Store is a content-addressed, size-bounded, integrity-checked cache
// directory. Safe for concurrent use by multiple goroutines and — via
// atomic renames — by multiple processes.
type Store struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	bytes int64 // payload+header bytes currently on disk (best effort)
	count int64
	stats Stats
}

// Open creates (if needed) and opens the cache directory. maxBytes
// bounds the total size of the store; 0 means DefaultMaxBytes. The
// initial size accounting scans the directory once so a reopened store
// enforces its budget against pre-existing entries.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes}
	s.bytes, s.count = scanSize(dir)
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// scanSize totals the size and count of entry files under dir.
func scanSize(dir string) (bytes, count int64) {
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !isEntryName(filepath.Base(path)) {
			return nil
		}
		bytes += info.Size()
		count++
		return nil
	})
	return bytes, count
}

// isEntryName reports whether base looks like a finished entry (a hex
// key), as opposed to a temp file mid-write.
func isEntryName(base string) bool {
	if len(base) != 2*sha256.Size {
		return false
	}
	_, err := hex.DecodeString(base)
	return err == nil
}

func (s *Store) path(ns string, key [sha256.Size]byte) string {
	return filepath.Join(s.dir, ns, hex.EncodeToString(key[:]))
}

// Get implements CacheBackend.
func (s *Store) Get(ns string, version uint32, key [sha256.Size]byte) ([]byte, bool, bool) {
	path := s.path(ns, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		s.bump(func(st *Stats) { st.Misses++ })
		return nil, false, false
	}
	payload, status := decodeEntry(raw, version)
	switch status {
	case entryOK:
		// Refresh the LRU clock; best effort (another process may have
		// just evicted the file).
		now := time.Now()
		os.Chtimes(path, now, now)
		s.bump(func(st *Stats) { st.Hits++ })
		return payload, true, false
	case entryStale:
		s.remove(path, int64(len(raw)))
		s.bump(func(st *Stats) { st.Misses++; st.VersionEvictions++ })
		return nil, false, false
	default: // entryCorrupt
		s.remove(path, int64(len(raw)))
		s.bump(func(st *Stats) { st.Misses++; st.CorruptEvictions++ })
		return nil, false, true
	}
}

type entryStatus int

const (
	entryOK entryStatus = iota
	entryStale
	entryCorrupt
)

// decodeEntry validates one entry file against the expected namespace
// version and the payload checksum recorded at store time.
func decodeEntry(raw []byte, version uint32) ([]byte, entryStatus) {
	if len(raw) < headerSize || string(raw[:4]) != entryMagic {
		return nil, entryCorrupt
	}
	format := binary.LittleEndian.Uint32(raw[4:8])
	nsVersion := binary.LittleEndian.Uint32(raw[8:12])
	payloadLen := binary.LittleEndian.Uint64(raw[12:20])
	if format != entryFormat || nsVersion != version {
		return nil, entryStale
	}
	payload := raw[headerSize:]
	if uint64(len(payload)) != payloadLen {
		return nil, entryCorrupt
	}
	var want [sha256.Size]byte
	copy(want[:], raw[20:20+sha256.Size])
	if sha256.Sum256(payload) != want {
		return nil, entryCorrupt
	}
	return payload, entryOK
}

// Put implements CacheBackend. The write is atomic (temp file + rename
// within the namespace directory); any failure is swallowed — the entry
// is simply not cached.
func (s *Store) Put(ns string, version uint32, key [sha256.Size]byte, data []byte) {
	nsDir := filepath.Join(s.dir, ns)
	if err := os.MkdirAll(nsDir, 0o755); err != nil {
		return
	}
	buf := make([]byte, headerSize+len(data))
	copy(buf[:4], entryMagic)
	binary.LittleEndian.PutUint32(buf[4:8], entryFormat)
	binary.LittleEndian.PutUint32(buf[8:12], version)
	binary.LittleEndian.PutUint64(buf[12:20], uint64(len(data)))
	sum := sha256.Sum256(data)
	copy(buf[20:20+sha256.Size], sum[:])
	copy(buf[headerSize:], data)

	tmp, err := os.CreateTemp(nsDir, ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	final := s.path(ns, key)
	prev := int64(0)
	if fi, err := os.Stat(final); err == nil {
		prev = fi.Size()
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return
	}
	s.mu.Lock()
	s.bytes += int64(len(buf)) - prev
	if prev == 0 {
		s.count++
	}
	s.stats.Puts++
	s.mu.Unlock()
	s.evictOver()
}

// evictOver deletes least-recently-used entries (file mtime, refreshed
// on every Get) until the store is back under its byte budget.
func (s *Store) evictOver() {
	s.mu.Lock()
	over := s.bytes > s.maxBytes
	s.mu.Unlock()
	if !over {
		return
	}
	type ent struct {
		path  string
		size  int64
		mtime time.Time
	}
	var ents []ent
	filepath.Walk(s.dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !isEntryName(filepath.Base(path)) {
			return nil
		}
		ents = append(ents, ent{path, info.Size(), info.ModTime()})
		return nil
	})
	sort.Slice(ents, func(i, j int) bool {
		if !ents[i].mtime.Equal(ents[j].mtime) {
			return ents[i].mtime.Before(ents[j].mtime)
		}
		return ents[i].path < ents[j].path // stable tie-break
	})
	// Recompute from the scan (concurrent processes may have changed the
	// directory under us) and trim oldest-first.
	var total int64
	for _, e := range ents {
		total += e.size
	}
	evicted := int64(0)
	for _, e := range ents {
		if total <= s.maxBytes {
			break
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			evicted++
		}
	}
	s.mu.Lock()
	s.bytes = total
	s.count -= evicted
	if s.count < 0 {
		s.count = 0
	}
	s.stats.LRUEvictions += evicted
	s.mu.Unlock()
}

// remove deletes an evicted entry and updates the size accounting.
func (s *Store) remove(path string, size int64) {
	if os.Remove(path) == nil {
		s.mu.Lock()
		s.bytes -= size
		s.count--
		if s.bytes < 0 {
			s.bytes = 0
		}
		if s.count < 0 {
			s.count = 0
		}
		s.mu.Unlock()
	}
}

func (s *Store) bump(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Snapshot returns the store's current counters.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.BytesInUse = s.bytes
	st.Entries = s.count
	return st
}

// Len reports the number of finished entries currently on disk in ns
// (test hook; scans the directory).
func (s *Store) Len(ns string) int {
	entries, err := os.ReadDir(filepath.Join(s.dir, ns))
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && isEntryName(e.Name()) {
			n++
		}
	}
	return n
}

// Corrupt damages up to n entries in ns by flipping a payload byte in
// place, without refreshing the recorded checksum (test hook for the
// fault-injection harness). The next Get of a damaged entry must evict
// it and report corruption. Returns how many entries were damaged.
func (s *Store) Corrupt(ns string, n int) int {
	entries, err := os.ReadDir(filepath.Join(s.dir, ns))
	if err != nil {
		return 0
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && isEntryName(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // deterministic choice of victims
	corrupted := 0
	for _, name := range names {
		if corrupted >= n {
			break
		}
		path := filepath.Join(s.dir, ns, name)
		raw, err := os.ReadFile(path)
		if err != nil || len(raw) <= headerSize {
			continue
		}
		raw[headerSize] ^= 0xff
		if os.WriteFile(path, raw, 0o644) == nil {
			corrupted++
		}
	}
	return corrupted
}
