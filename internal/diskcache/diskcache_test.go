package diskcache

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func key(s string) [sha256.Size]byte { return sha256.Sum256([]byte(s)) }

func open(t *testing.T, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, 0)
	data := []byte("hello, cache")
	s.Put("parse", 1, key("k"), data)
	got, ok, corrupt := s.Get("parse", 1, key("k"))
	if !ok || corrupt {
		t.Fatalf("Get = ok:%v corrupt:%v, want hit", ok, corrupt)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("payload = %q, want %q", got, data)
	}
	if _, ok, _ := s.Get("parse", 1, key("missing")); ok {
		t.Fatal("miss reported as hit")
	}
	st := s.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNamespaceIsolation(t *testing.T) {
	s := open(t, 0)
	s.Put("parse", 1, key("k"), []byte("parse payload"))
	if _, ok, _ := s.Get("summary", 1, key("k")); ok {
		t.Fatal("namespaces not isolated")
	}
}

func TestVersionMismatchInvalidates(t *testing.T) {
	s := open(t, 0)
	s.Put("summary", 1, key("k"), []byte("v1 encoding"))
	// A reader with a newer codec version must not decode the old bytes:
	// the entry is evicted as stale, not reported as corrupt.
	_, ok, corrupt := s.Get("summary", 2, key("k"))
	if ok || corrupt {
		t.Fatalf("Get v2 = ok:%v corrupt:%v, want plain miss", ok, corrupt)
	}
	if got := s.Len("summary"); got != 0 {
		t.Fatalf("stale entry not evicted: %d entries left", got)
	}
	if st := s.Snapshot(); st.VersionEvictions != 1 {
		t.Fatalf("VersionEvictions = %d, want 1", st.VersionEvictions)
	}
	// And the old reader must not see the entry again either.
	if _, ok, _ := s.Get("summary", 1, key("k")); ok {
		t.Fatal("evicted entry still readable")
	}
}

func TestCorruptionEvictsAndReports(t *testing.T) {
	s := open(t, 0)
	s.Put("parse", 1, key("k"), []byte("some payload bytes"))
	if n := s.Corrupt("parse", 1); n != 1 {
		t.Fatalf("Corrupt = %d, want 1", n)
	}
	_, ok, corrupt := s.Get("parse", 1, key("k"))
	if ok || !corrupt {
		t.Fatalf("Get = ok:%v corrupt:%v, want corrupt eviction", ok, corrupt)
	}
	if got := s.Len("parse"); got != 0 {
		t.Fatalf("corrupt entry not evicted: %d entries left", got)
	}
	if st := s.Snapshot(); st.CorruptEvictions != 1 {
		t.Fatalf("CorruptEvictions = %d, want 1", st.CorruptEvictions)
	}
	// Recompute-and-restore heals the entry.
	s.Put("parse", 1, key("k"), []byte("some payload bytes"))
	if _, ok, _ := s.Get("parse", 1, key("k")); !ok {
		t.Fatal("restored entry not readable")
	}
}

func TestTruncatedEntryIsCorrupt(t *testing.T) {
	s := open(t, 0)
	s.Put("parse", 1, key("k"), []byte("a payload long enough to truncate"))
	path := filepath.Join(s.Dir(), "parse", fmt.Sprintf("%x", key("k")))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, corrupt := s.Get("parse", 1, key("k"))
	if ok || !corrupt {
		t.Fatalf("Get truncated = ok:%v corrupt:%v, want corrupt", ok, corrupt)
	}
}

func TestGarbageFileIsCorrupt(t *testing.T) {
	s := open(t, 0)
	path := filepath.Join(s.Dir(), "parse", fmt.Sprintf("%x", key("k")))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, corrupt := s.Get("parse", 1, key("k")); ok || !corrupt {
		t.Fatalf("garbage entry: ok:%v corrupt:%v, want corrupt", ok, corrupt)
	}
}

func TestLRUSizeBound(t *testing.T) {
	// Budget fits ~4 of the 1 KiB payloads (plus headers).
	s := open(t, 4*(1024+headerSize))
	payload := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 8; i++ {
		k := key(fmt.Sprintf("k%d", i))
		s.Put("parse", 1, k, payload)
		// Distinct mtimes so LRU order is well defined on coarse
		// filesystem clocks.
		path := filepath.Join(s.Dir(), "parse", fmt.Sprintf("%x", k))
		mt := time.Now().Add(time.Duration(i-8) * time.Minute)
		os.Chtimes(path, mt, mt)
	}
	s.Put("parse", 1, key("final"), payload)
	st := s.Snapshot()
	if st.BytesInUse > 4*(1024+headerSize) {
		t.Fatalf("store over budget: %d bytes", st.BytesInUse)
	}
	if st.LRUEvictions == 0 {
		t.Fatal("no LRU evictions recorded")
	}
	// The newest entry must have survived; the oldest must be gone.
	if _, ok, _ := s.Get("parse", 1, key("final")); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok, _ := s.Get("parse", 1, key("k0")); ok {
		t.Fatal("least recent entry survived")
	}
}

func TestReopenRecountsSize(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("parse", 1, key("a"), []byte("one"))
	s.Put("parse", 1, key("b"), []byte("two"))
	want := s.Snapshot().BytesInUse

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Snapshot()
	if st.BytesInUse != want || st.Entries != 2 {
		t.Fatalf("reopened store sees %d bytes / %d entries, want %d / 2",
			st.BytesInUse, st.Entries, want)
	}
	if _, ok, _ := s2.Get("parse", 1, key("a")); !ok {
		t.Fatal("reopened store misses prior entry")
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	s := open(t, 0)
	const (
		keys    = 16
		workers = 8
		rounds  = 50
	)
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i)}, 256+i)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % keys
				k := key(fmt.Sprintf("k%d", i))
				if (w+r)%2 == 0 {
					s.Put("parse", 1, k, payload(i))
					continue
				}
				got, ok, corrupt := s.Get("parse", 1, k)
				if corrupt {
					t.Errorf("reader saw corrupt entry for k%d", i)
					return
				}
				// A hit must be complete and correct — never torn.
				if ok && !bytes.Equal(got, payload(i)) {
					t.Errorf("reader saw torn entry for k%d: %d bytes", i, len(got))
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentProcessesSimulated shares one directory between two
// Store handles (what two safeflow processes do) and checks readers
// never see torn or mixed entries while both write.
func TestConcurrentProcessesSimulated(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := key("shared")
	a := bytes.Repeat([]byte("A"), 4096)
	b := bytes.Repeat([]byte("B"), 4096)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			s1.Put("parse", 1, k, a)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			s2.Put("parse", 1, k, b)
		}
	}()
	readErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			got, ok, corrupt := s2.Get("parse", 1, k)
			if corrupt {
				readErr <- fmt.Errorf("round %d: corrupt entry", i)
				return
			}
			if ok && !bytes.Equal(got, a) && !bytes.Equal(got, b) {
				readErr <- fmt.Errorf("round %d: torn entry (%d bytes)", i, len(got))
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}
}

// LRU eviction racing Get/Put traffic on the same keys, for -race runs:
// a store small enough that every writer triggers evictOver, hammered
// by readers and writers sharing one hot key set. The invariant is the
// atomic-entry contract under eviction pressure — every hit returns the
// exact stored bytes (no torn reads, no cross-key payloads, no spurious
// corruption), an evicted entry reads as a clean miss, and the store
// never exceeds its budget once the dust settles.
func TestLRUEvictionRacesGetPut(t *testing.T) {
	// Budget fits ~3 payloads, with 8 hot keys: eviction churns
	// constantly while readers chase the same entries.
	const payloadSize = 1024
	s := open(t, 3*(payloadSize+headerSize))

	const keys = 8
	payloads := make([][]byte, keys)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte('a' + i)}, payloadSize)
	}
	kid := func(i int) [sha256.Size]byte { return key(fmt.Sprintf("hot%d", i)) }

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Put("parse", 1, kid((i+w)%keys), payloads[(i+w)%keys])
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := (i + r) % keys
				data, ok, corrupt := s.Get("parse", 1, kid(idx))
				if corrupt {
					t.Error("racing eviction surfaced as corruption")
					return
				}
				if ok && !bytes.Equal(data, payloads[idx]) {
					t.Errorf("key %d returned wrong payload (len %d)", idx, len(data))
					return
				}
			}
		}(r)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	st := s.Snapshot()
	if st.LRUEvictions == 0 {
		t.Fatal("race exercised no LRU evictions")
	}
	if st.BytesInUse > 3*(payloadSize+headerSize) {
		t.Fatalf("store over budget after churn: %d bytes", st.BytesInUse)
	}
	// The store must still work after the churn.
	s.Put("parse", 1, kid(0), payloads[0])
	if data, ok, corrupt := s.Get("parse", 1, kid(0)); !ok || corrupt || !bytes.Equal(data, payloads[0]) {
		t.Fatalf("store broken after churn: ok=%v corrupt=%v", ok, corrupt)
	}
}
