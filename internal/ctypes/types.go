// Package ctypes models the type system of SafeFlow's C subset, including
// byte sizes and field offsets on a fixed ILP32-style embedded target
// (pointers are 4 bytes, long is 8 — matching the lab systems' layout
// assumptions; the concrete numbers only matter for shmvar size math and
// InitCheck, which are self-consistent).
package ctypes

import (
	"fmt"
	"strings"
)

// Type is a resolved C type.
type Type interface {
	// Size returns the size of the type in bytes.
	Size() int64
	// String renders the type in C-like syntax.
	String() string
	// Equal reports structural equality.
	Equal(Type) bool
}

// BasicKind identifies a builtin scalar type.
type BasicKind int

// Basic kinds. Enumeration starts at one so the zero value is invalid.
const (
	Void BasicKind = iota + 1
	Char
	UChar
	Short
	UShort
	Int
	UInt
	Long
	ULong
	Float
	Double
)

// Basic is a builtin scalar type.
type Basic struct {
	Kind BasicKind
}

var basicSizes = map[BasicKind]int64{
	Void:   0,
	Char:   1,
	UChar:  1,
	Short:  2,
	UShort: 2,
	Int:    4,
	UInt:   4,
	Long:   8,
	ULong:  8,
	Float:  4,
	Double: 8,
}

var basicNames = map[BasicKind]string{
	Void:   "void",
	Char:   "char",
	UChar:  "unsigned char",
	Short:  "short",
	UShort: "unsigned short",
	Int:    "int",
	UInt:   "unsigned int",
	Long:   "long",
	ULong:  "unsigned long",
	Float:  "float",
	Double: "double",
}

// Size implements Type.
func (b *Basic) Size() int64 { return basicSizes[b.Kind] }

// String implements Type.
func (b *Basic) String() string { return basicNames[b.Kind] }

// Equal implements Type.
func (b *Basic) Equal(o Type) bool {
	ob, ok := o.(*Basic)
	return ok && ob.Kind == b.Kind
}

// IsInteger reports whether the basic kind is an integer type.
func (b *Basic) IsInteger() bool {
	switch b.Kind {
	case Char, UChar, Short, UShort, Int, UInt, Long, ULong:
		return true
	}
	return false
}

// IsFloat reports whether the basic kind is a floating type.
func (b *Basic) IsFloat() bool { return b.Kind == Float || b.Kind == Double }

// IsSigned reports whether the integer kind is signed.
func (b *Basic) IsSigned() bool {
	switch b.Kind {
	case Char, Short, Int, Long:
		return true
	}
	return false
}

// Shared singletons for the basic types.
var (
	VoidType   = &Basic{Kind: Void}
	CharType   = &Basic{Kind: Char}
	UCharType  = &Basic{Kind: UChar}
	ShortType  = &Basic{Kind: Short}
	UShortType = &Basic{Kind: UShort}
	IntType    = &Basic{Kind: Int}
	UIntType   = &Basic{Kind: UInt}
	LongType   = &Basic{Kind: Long}
	ULongType  = &Basic{Kind: ULong}
	FloatType  = &Basic{Kind: Float}
	DoubleType = &Basic{Kind: Double}
)

// PointerSize is the byte size of all pointer types on the target.
const PointerSize = 4

// Pointer is a pointer type.
type Pointer struct {
	Elem Type
}

// Size implements Type.
func (p *Pointer) Size() int64 { return PointerSize }

// String implements Type.
func (p *Pointer) String() string { return p.Elem.String() + "*" }

// Equal implements Type.
func (p *Pointer) Equal(o Type) bool {
	op, ok := o.(*Pointer)
	return ok && p.Elem.Equal(op.Elem)
}

// Array is a constant-length array type.
type Array struct {
	Elem Type
	Len  int64
}

// Size implements Type.
func (a *Array) Size() int64 { return a.Elem.Size() * a.Len }

// String implements Type.
func (a *Array) String() string { return fmt.Sprintf("%s[%d]", a.Elem, a.Len) }

// Equal implements Type.
func (a *Array) Equal(o Type) bool {
	oa, ok := o.(*Array)
	return ok && a.Len == oa.Len && a.Elem.Equal(oa.Elem)
}

// Field is one struct member with its computed offset.
type Field struct {
	Name   string
	Type   Type
	Offset int64
}

// Struct is a struct or union type. Structs are nominal: two structs are
// equal only if they are the same declaration (same Tag and fields).
type Struct struct {
	Tag     string
	IsUnion bool
	Fields  []Field
	size    int64
}

// NewStruct lays out the fields (naturally aligned, matching the target's
// simple layout rules) and returns the struct type.
func NewStruct(tag string, isUnion bool, fields []Field) *Struct {
	s := &Struct{Tag: tag, IsUnion: isUnion}
	var off, maxAlign, maxSize int64
	maxAlign = 1
	for _, f := range fields {
		al := alignOf(f.Type)
		if al > maxAlign {
			maxAlign = al
		}
		if isUnion {
			f.Offset = 0
			if f.Type.Size() > maxSize {
				maxSize = f.Type.Size()
			}
		} else {
			off = roundUp(off, al)
			f.Offset = off
			off += f.Type.Size()
		}
		s.Fields = append(s.Fields, f)
	}
	if isUnion {
		s.size = roundUp(maxSize, maxAlign)
	} else {
		s.size = roundUp(off, maxAlign)
	}
	if s.size == 0 {
		s.size = 1
	}
	return s
}

func alignOf(t Type) int64 {
	switch tt := t.(type) {
	case *Basic:
		if sz := tt.Size(); sz > 0 {
			return sz
		}
		return 1
	case *Pointer:
		return PointerSize
	case *Array:
		return alignOf(tt.Elem)
	case *Struct:
		var a int64 = 1
		for _, f := range tt.Fields {
			if fa := alignOf(f.Type); fa > a {
				a = fa
			}
		}
		return a
	default:
		return 1
	}
}

func roundUp(n, a int64) int64 {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// Size implements Type.
func (s *Struct) Size() int64 { return s.size }

// String implements Type.
func (s *Struct) String() string {
	kw := "struct"
	if s.IsUnion {
		kw = "union"
	}
	if s.Tag != "" {
		return kw + " " + s.Tag
	}
	var names []string
	for _, f := range s.Fields {
		names = append(names, f.Name)
	}
	return kw + " {" + strings.Join(names, ",") + "}"
}

// Equal implements Type (nominal: pointer identity).
func (s *Struct) Equal(o Type) bool { return s == o }

// FieldByName returns the field with the given name.
func (s *Struct) FieldByName(name string) (Field, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Func is a function type.
type Func struct {
	Result   Type
	Params   []Type
	Variadic bool
}

// Size implements Type (functions are not objects; size 0).
func (f *Func) Size() int64 { return 0 }

// String implements Type.
func (f *Func) String() string {
	var ps []string
	for _, p := range f.Params {
		ps = append(ps, p.String())
	}
	if f.Variadic {
		ps = append(ps, "...")
	}
	return fmt.Sprintf("%s(%s)", f.Result, strings.Join(ps, ", "))
}

// Equal implements Type.
func (f *Func) Equal(o Type) bool {
	of, ok := o.(*Func)
	if !ok || len(f.Params) != len(of.Params) || f.Variadic != of.Variadic {
		return false
	}
	if !f.Result.Equal(of.Result) {
		return false
	}
	for i := range f.Params {
		if !f.Params[i].Equal(of.Params[i]) {
			return false
		}
	}
	return true
}

// IsPointer reports whether t is a pointer type.
func IsPointer(t Type) bool {
	_, ok := t.(*Pointer)
	return ok
}

// IsInteger reports whether t is an integer type.
func IsInteger(t Type) bool {
	b, ok := t.(*Basic)
	return ok && b.IsInteger()
}

// IsFloat reports whether t is a floating type.
func IsFloat(t Type) bool {
	b, ok := t.(*Basic)
	return ok && b.IsFloat()
}

// IsVoid reports whether t is void.
func IsVoid(t Type) bool {
	b, ok := t.(*Basic)
	return ok && b.Kind == Void
}

// IsScalar reports whether t is an integer, float, or pointer.
func IsScalar(t Type) bool { return IsInteger(t) || IsFloat(t) || IsPointer(t) }

// Deref returns the pointee of a pointer type, or nil.
func Deref(t Type) Type {
	if p, ok := t.(*Pointer); ok {
		return p.Elem
	}
	return nil
}

// Compatible reports whether two types are compatible for the purposes of
// SafeFlow's restriction P3 (casts between shared-memory pointer types).
// Identical types are compatible; a T* and void* are compatible in either
// direction (void* is the untyped allocation hole that shminit functions
// use); char* is compatible with any object pointer (byte access). All
// other pointer cross-casts are incompatible, as are pointer<->integer.
func Compatible(a, b Type) bool {
	if a.Equal(b) {
		return true
	}
	pa, aok := a.(*Pointer)
	pb, bok := b.(*Pointer)
	if aok && bok {
		if IsVoid(pa.Elem) || IsVoid(pb.Elem) {
			return true
		}
		if isCharish(pa.Elem) || isCharish(pb.Elem) {
			return true
		}
		return pa.Elem.Equal(pb.Elem)
	}
	return false
}

func isCharish(t Type) bool {
	b, ok := t.(*Basic)
	return ok && (b.Kind == Char || b.Kind == UChar)
}
