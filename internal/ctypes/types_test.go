package ctypes

import (
	"testing"
	"testing/quick"
)

func TestBasicSizes(t *testing.T) {
	tests := []struct {
		ty   Type
		size int64
	}{
		{CharType, 1}, {UCharType, 1},
		{ShortType, 2}, {UShortType, 2},
		{IntType, 4}, {UIntType, 4},
		{LongType, 8}, {ULongType, 8},
		{FloatType, 4}, {DoubleType, 8},
		{VoidType, 0},
		{&Pointer{Elem: DoubleType}, PointerSize},
		{&Array{Elem: IntType, Len: 10}, 40},
	}
	for _, tc := range tests {
		if got := tc.ty.Size(); got != tc.size {
			t.Errorf("%s size = %d, want %d", tc.ty, got, tc.size)
		}
	}
}

func TestStructLayout(t *testing.T) {
	// struct { char c; double d; int i; } — natural alignment:
	// c at 0, d at 8, i at 16, size rounded to 24.
	s := NewStruct("S", false, []Field{
		{Name: "c", Type: CharType},
		{Name: "d", Type: DoubleType},
		{Name: "i", Type: IntType},
	})
	wantOffsets := []int64{0, 8, 16}
	for i, f := range s.Fields {
		if f.Offset != wantOffsets[i] {
			t.Errorf("field %s offset = %d, want %d", f.Name, f.Offset, wantOffsets[i])
		}
	}
	if s.Size() != 24 {
		t.Errorf("size = %d, want 24", s.Size())
	}
}

func TestUnionLayout(t *testing.T) {
	u := NewStruct("U", true, []Field{
		{Name: "d", Type: DoubleType},
		{Name: "i", Type: IntType},
	})
	for _, f := range u.Fields {
		if f.Offset != 0 {
			t.Errorf("union field %s offset = %d, want 0", f.Name, f.Offset)
		}
	}
	if u.Size() != 8 {
		t.Errorf("union size = %d, want 8", u.Size())
	}
}

func TestPaperSHMDataLayout(t *testing.T) {
	// The corpus' SHMData: 4 doubles + 2 ints = 40 bytes.
	s := NewStruct("SHMData", false, []Field{
		{Name: "angle", Type: DoubleType},
		{Name: "track", Type: DoubleType},
		{Name: "angleVel", Type: DoubleType},
		{Name: "trackVel", Type: DoubleType},
		{Name: "seq", Type: IntType},
		{Name: "pad", Type: IntType},
	})
	if s.Size() != 40 {
		t.Errorf("SHMData size = %d, want 40", s.Size())
	}
	f, ok := s.FieldByName("angleVel")
	if !ok || f.Offset != 16 {
		t.Errorf("angleVel offset = %d, want 16", f.Offset)
	}
}

func TestEquality(t *testing.T) {
	p1 := &Pointer{Elem: IntType}
	p2 := &Pointer{Elem: IntType}
	if !p1.Equal(p2) {
		t.Error("structural pointer equality failed")
	}
	a1 := &Array{Elem: IntType, Len: 4}
	a2 := &Array{Elem: IntType, Len: 5}
	if a1.Equal(a2) {
		t.Error("arrays of different length compared equal")
	}
	s1 := NewStruct("S", false, []Field{{Name: "x", Type: IntType}})
	s2 := NewStruct("S", false, []Field{{Name: "x", Type: IntType}})
	if s1.Equal(s2) {
		t.Error("struct equality must be nominal (pointer identity)")
	}
	if !s1.Equal(s1) {
		t.Error("struct must equal itself")
	}
	f1 := &Func{Result: IntType, Params: []Type{DoubleType}}
	f2 := &Func{Result: IntType, Params: []Type{DoubleType}}
	f3 := &Func{Result: IntType, Params: []Type{DoubleType}, Variadic: true}
	if !f1.Equal(f2) || f1.Equal(f3) {
		t.Error("function type equality wrong")
	}
}

func TestPredicates(t *testing.T) {
	if !IsInteger(IntType) || IsInteger(DoubleType) || IsInteger(&Pointer{Elem: IntType}) {
		t.Error("IsInteger wrong")
	}
	if !IsFloat(FloatType) || IsFloat(IntType) {
		t.Error("IsFloat wrong")
	}
	if !IsPointer(&Pointer{Elem: VoidType}) || IsPointer(IntType) {
		t.Error("IsPointer wrong")
	}
	if !IsVoid(VoidType) || IsVoid(IntType) {
		t.Error("IsVoid wrong")
	}
	if !IsScalar(IntType) || !IsScalar(&Pointer{Elem: IntType}) || IsScalar(&Array{Elem: IntType, Len: 2}) {
		t.Error("IsScalar wrong")
	}
	if Deref(&Pointer{Elem: LongType}) != LongType {
		t.Error("Deref wrong")
	}
	if Deref(IntType) != nil {
		t.Error("Deref of non-pointer should be nil")
	}
}

func TestCompatible(t *testing.T) {
	s := NewStruct("S", false, []Field{{Name: "x", Type: IntType}})
	tt := NewStruct("T", false, []Field{{Name: "x", Type: IntType}})
	sp := &Pointer{Elem: s}
	tp := &Pointer{Elem: tt}
	vp := &Pointer{Elem: VoidType}
	cp := &Pointer{Elem: CharType}

	tests := []struct {
		a, b Type
		want bool
	}{
		{sp, sp, true},
		{sp, vp, true}, // void* is the untyped allocation hole
		{vp, sp, true},
		{sp, cp, true},  // byte access
		{sp, tp, false}, // distinct struct types are incompatible (P3)
		{sp, IntType, false},
		{IntType, sp, false},
	}
	for _, tc := range tests {
		if got := Compatible(tc.a, tc.b); got != tc.want {
			t.Errorf("Compatible(%s, %s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// Property: struct fields never overlap and stay within the struct size.
func TestQuickStructLayoutSound(t *testing.T) {
	mk := func(choice uint8) Type {
		switch choice % 5 {
		case 0:
			return CharType
		case 1:
			return ShortType
		case 2:
			return IntType
		case 3:
			return DoubleType
		default:
			return &Pointer{Elem: IntType}
		}
	}
	f := func(choices []uint8) bool {
		if len(choices) > 12 {
			choices = choices[:12]
		}
		var fields []Field
		for i, c := range choices {
			fields = append(fields, Field{Name: string(rune('a' + i)), Type: mk(c)})
		}
		s := NewStruct("Q", false, fields)
		var prevEnd int64
		for _, f := range s.Fields {
			if f.Offset < prevEnd {
				return false // overlap
			}
			if f.Offset%alignOf(f.Type) != 0 {
				return false // misaligned
			}
			prevEnd = f.Offset + f.Type.Size()
		}
		return prevEnd <= s.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
