package fuzzcamp

import (
	"context"
	"testing"

	"safeflow/internal/corpus"
)

// TestIncrementalOracleHoldsOnGenerated runs the incremental-equivalence
// oracle directly on generator-derived inputs: the session's patched
// reports must match from-scratch analysis byte for byte.
func TestIncrementalOracleHoldsOnGenerated(t *testing.T) {
	exec := testExec()
	for _, seed := range []int64{3, 17} {
		g := corpus.Generate(seed, corpus.GenConfig{})
		in := Input{Name: g.Name, Sources: g.Sources, CFiles: g.CFiles}
		v, err := exec.checkIncremental(context.Background(), in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v != nil {
			t.Errorf("seed %d: incremental oracle violated: %v", seed, v)
		}
	}
}

// TestIncrementalOracleSkipsEmptyInput: an input with no translation
// units has nothing to patch; the oracle must pass, not panic.
func TestIncrementalOracleSkipsEmptyInput(t *testing.T) {
	exec := testExec()
	v, err := exec.checkIncremental(context.Background(), Input{Name: "empty"})
	if err != nil || v != nil {
		t.Fatalf("empty input: violation=%v err=%v, want nil/nil", v, err)
	}
}
