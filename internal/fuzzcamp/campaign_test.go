package fuzzcamp

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// testExec is the executor configuration the package tests share:
// honest oracles, a tight interpreter budget.
func testExec() Executor { return Executor{MaxSteps: 500_000} }

// TestSeedInputsExecuteClean guards the campaign against oracle false
// positives: every generator-derived seed input must execute with no
// violation under the honest executor — otherwise the campaign would
// "find" bugs in a correct analyzer.
func TestSeedInputsExecuteClean(t *testing.T) {
	exec := testExec()
	for _, in := range SeedInputs(1, 4) {
		res, err := exec.Execute(context.Background(), in)
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if res.Violation != nil {
			t.Errorf("%s: honest executor reports violation: %v", in.Name, res.Violation)
		}
		if res.Sig == "" {
			t.Errorf("%s: empty coverage signature", in.Name)
		}
	}
}

// hashDir fingerprints a corpus directory's persisted entries.
func hashDir(t *testing.T, dir string) string {
	t.Helper()
	glob, err := filepath.Glob(filepath.Join(dir, "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(glob)
	h := sha256.New()
	for _, p := range glob {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%s:%d:", filepath.Base(p), len(data))
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// The acceptance-criteria determinism pin: the same seed and execution
// budget reproduce the same corpus evolution (byte-identical persisted
// corpus) and the same coverage counters, at any GOMAXPROCS.
func TestCampaignDeterministic(t *testing.T) {
	run := func(dir string) *Stats {
		stats, err := Run(context.Background(), Config{
			Seed:           7,
			CorpusDir:      dir,
			MaxExecs:       12,
			SeedCount:      3,
			MinimizeBudget: 20,
			Exec:           testExec(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	a, b := run(dirA), run(dirB)
	a.Elapsed, b.Elapsed = 0, 0
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Errorf("campaign stats differ across identical seeds:\n%+v\n%+v", a, b)
	}
	if ha, hb := hashDir(t, dirA), hashDir(t, dirB); ha != hb {
		t.Errorf("persisted corpus differs across identical seeds: %s vs %s", ha, hb)
	}
	if a.Execs != 12 {
		t.Errorf("Execs = %d, want 12", a.Execs)
	}
	if a.Signatures == 0 || a.CorpusSize == 0 {
		t.Errorf("no coverage recorded: %+v", a)
	}
}

// A persisted corpus re-seeds the next campaign: the second run loads
// the first run's entries and keeps evolving them.
func TestCampaignPersistsAndReloads(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seed: 3, CorpusDir: dir, MaxExecs: 6, SeedCount: 2,
		MinimizeBudget: 20, Exec: testExec()}
	first, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	persisted, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(persisted) == 0 {
		t.Fatal("first campaign persisted nothing")
	}
	second, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.SeedInputs != first.SeedInputs+len(persisted) {
		t.Errorf("second campaign seeded %d inputs, want %d (persisted %d + generator %d)",
			second.SeedInputs, first.SeedInputs+len(persisted), len(persisted), first.SeedInputs)
	}
}

// A campaign with no bound must refuse to start rather than run forever.
func TestCampaignRequiresBound(t *testing.T) {
	if _, err := Run(context.Background(), Config{Seed: 1}); err == nil {
		t.Fatal("unbounded campaign did not error")
	}
}

func TestQueueDeterministicWeightedChoice(t *testing.T) {
	mk := func() []string {
		q := NewQueue(rand.New(rand.NewSource(9)))
		for i := 0; i < 5; i++ {
			q.Add(Input{Name: fmt.Sprintf("e%d", i), Sources: map[string]string{"a.c": "x"}})
		}
		var picks []string
		for i := 0; i < 20; i++ {
			picks = append(picks, q.Choose().Name)
		}
		return picks
	}
	a, b := mk(), mk()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("queue choices differ across identical seeds:\n%v\n%v", a, b)
	}
	distinct := map[string]bool{}
	for _, p := range a {
		distinct[p] = true
	}
	if len(distinct) < 3 {
		t.Errorf("energy decay did not rotate the frontier: only %d distinct picks in %v", len(distinct), a)
	}
}

func TestMutatorDeterministicAndEffective(t *testing.T) {
	base := SeedInputs(1, 1)[0]
	donor := SeedInputs(2, 1)[0]
	mk := func() []string {
		m := NewMutator(rand.New(rand.NewSource(4)))
		var names []string
		changed := 0
		for i := 0; i < 25; i++ {
			out := m.Mutate(base, donor)
			names = append(names, out.Name)
			if out.Hash() != base.Hash() {
				changed++
			}
		}
		if changed < 15 {
			t.Errorf("only %d/25 mutants changed the input", changed)
		}
		return names
	}
	a, b := mk(), mk()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("mutation chains differ across identical seeds:\n%v\n%v", a, b)
	}
}

func TestMinimizeShrinksWhilePreservingViolation(t *testing.T) {
	in := Input{
		Name:    "m",
		Sources: map[string]string{"a.c": "keep\njunk1\njunk2\njunk3\nMAGIC\njunk4\njunk5\n"},
		CFiles:  []string{"a.c"},
	}
	check := func(_ context.Context, cand Input) (*Violation, error) {
		if len(cand.Sources["a.c"]) > 0 && containsLine(cand.Sources["a.c"], "MAGIC") {
			return &Violation{Oracle: "magic", Detail: "still magic"}, nil
		}
		return nil, nil
	}
	small := Minimize(context.Background(), in, "magic", 100, check)
	if !containsLine(small.Sources["a.c"], "MAGIC") {
		t.Fatal("minimizer lost the violation")
	}
	if len(small.Sources["a.c"]) >= len(in.Sources["a.c"]) {
		t.Errorf("minimizer did not shrink: %d -> %d bytes",
			len(in.Sources["a.c"]), len(small.Sources["a.c"]))
	}
}

func containsLine(src, want string) bool {
	for _, l := range splitLines(src) {
		if l == want {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}
