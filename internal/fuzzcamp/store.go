// On-disk persistence: the evolving corpus and the crasher archive.
//
// Corpus layout (one campaign directory):
//
//	<dir>/corpus/<hash12>.json   — one Input per file, content-addressed
//
// Crasher layout (testdata/crashers in this repository):
//
//	<dir>/<oracle>-<hash12>/crasher.json   — Crasher metadata + sources
//
// Entries are plain JSON with sorted keys (encoding/json sorts map
// keys), written atomically via rename, so a store is reproducible
// byte-for-byte from the inputs it holds and survives interrupted
// campaigns.

package fuzzcamp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CorpusStore persists the live corpus under dir. A zero-value store
// (empty dir) keeps the corpus in memory only.
type CorpusStore struct {
	dir string
}

// OpenCorpus opens (creating if needed) the corpus store under dir;
// dir == "" yields a memory-only store.
func OpenCorpus(dir string) (*CorpusStore, error) {
	if dir == "" {
		return &CorpusStore{}, nil
	}
	if err := os.MkdirAll(filepath.Join(dir, "corpus"), 0o755); err != nil {
		return nil, fmt.Errorf("fuzzcamp: corpus dir: %w", err)
	}
	return &CorpusStore{dir: dir}, nil
}

// Load returns every persisted input, sorted by content hash so a
// reloaded campaign seeds its queue in a deterministic order.
func (s *CorpusStore) Load() ([]Input, error) {
	if s.dir == "" {
		return nil, nil
	}
	glob, err := filepath.Glob(filepath.Join(s.dir, "corpus", "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(glob)
	var out []Input
	for _, path := range glob {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var in Input
		if err := json.Unmarshal(data, &in); err != nil {
			// A torn or hand-damaged entry must not kill the campaign:
			// skip it; the fuzzer will regrow the coverage it carried.
			continue
		}
		out = append(out, in)
	}
	return out, nil
}

// Save persists one input (no-op for memory-only stores).
func (s *CorpusStore) Save(in Input) error {
	if s.dir == "" {
		return nil
	}
	return writeJSONAtomic(filepath.Join(s.dir, "corpus", in.ShortHash()+".json"), in)
}

// Crasher is one minimized oracle-violating input plus the metadata
// needed to replay it.
type Crasher struct {
	Input
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
	// CampaignSeed is the -seed of the campaign that found it.
	CampaignSeed int64 `json:"campaign_seed"`
}

// Dir returns the crasher's directory name: oracle plus content hash,
// so re-finding the same minimized input is idempotent.
func (c Crasher) Dir() string { return fmt.Sprintf("%s-%s", c.Oracle, c.ShortHash()) }

// WriteCrasher persists the crasher under dir and returns its path.
func WriteCrasher(dir string, c Crasher) (string, error) {
	path := filepath.Join(dir, c.Dir())
	if err := os.MkdirAll(path, 0o755); err != nil {
		return "", err
	}
	if err := writeJSONAtomic(filepath.Join(path, "crasher.json"), c); err != nil {
		return "", err
	}
	// Also spell the sources out as plain files, for humans bisecting
	// the crasher; crasher.json stays the replay source of truth.
	for _, name := range c.Files() {
		if strings.ContainsAny(name, "/\\") {
			continue
		}
		if err := os.WriteFile(filepath.Join(path, name), []byte(c.Sources[name]), 0o644); err != nil {
			return "", err
		}
	}
	return path, nil
}

// LoadCrashers reads every crasher under dir, sorted by directory
// name. A missing dir is an empty archive.
func LoadCrashers(dir string) ([]Crasher, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []Crasher
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name(), "crasher.json"))
		if err != nil {
			return nil, fmt.Errorf("fuzzcamp: crasher %s: %w", e.Name(), err)
		}
		var c Crasher
		if err := json.Unmarshal(data, &c); err != nil {
			return nil, fmt.Errorf("fuzzcamp: crasher %s: %w", e.Name(), err)
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dir() < out[j].Dir() })
	return out, nil
}

func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
