package fuzzcamp

import (
	"context"
	"strings"
	"testing"
)

// The acceptance-criteria canary: a campaign pointed at an analyzer
// with a deliberately planted soundness bug (static data-flow errors
// at main.c sinks silently dropped) must find the bug, delta-minimize
// the triggering input, and persist a deterministic crasher that no
// longer reproduces under the honest analyzer — i.e. that passes
// TestCrasherRegressions once the bug is "fixed".
func TestCanaryFindsPlantedSoundnessBug(t *testing.T) {
	dir := t.TempDir()
	planted := Executor{MaxSteps: 500_000, Plant: PlantDropMainErrors}
	stats, err := Run(context.Background(), Config{
		Seed:           11,
		CrasherDir:     dir,
		MaxExecs:       40,
		MaxCrashers:    1,
		SeedCount:      3,
		MinimizeBudget: 60,
		Exec:           planted,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Crashers == 0 {
		t.Fatal("campaign did not find the planted soundness bug")
	}

	crashers, err := LoadCrashers(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(crashers) == 0 {
		t.Fatal("no crasher persisted")
	}
	c := crashers[0]
	if c.Oracle != OracleDynamic && c.Oracle != OracleDegraded {
		t.Errorf("crasher oracle = %q, want a soundness oracle", c.Oracle)
	}
	if !strings.HasPrefix(c.Dir(), c.Oracle) {
		t.Errorf("crasher dir %q does not carry its oracle", c.Dir())
	}

	// The minimized input must still reproduce under the planted
	// executor (the crasher is real and deterministic) ...
	v, err := Replay(context.Background(), c, planted)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Oracle != c.Oracle {
		t.Errorf("minimized crasher does not reproduce under the planted analyzer: %v", v)
	}
	// ... and must pass under the honest analyzer — the state the
	// regression suite replays forever after the bug is fixed.
	v, err = Replay(context.Background(), c, testExec())
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("minimized crasher still violates the honest analyzer: %v", v)
	}

	// Minimization must have actually shrunk the input relative to the
	// smallest seed system it can descend from.
	seedLines := 0
	for _, in := range SeedInputs(11, 3) {
		n := 0
		for _, f := range in.Files() {
			n += strings.Count(in.Sources[f], "\n")
		}
		if seedLines == 0 || n < seedLines {
			seedLines = n
		}
	}
	gotLines := 0
	for _, f := range c.Files() {
		gotLines += strings.Count(c.Sources[f], "\n")
	}
	if gotLines >= seedLines {
		t.Errorf("crasher not minimized: %d lines, smallest seed has %d", gotLines, seedLines)
	}
}
