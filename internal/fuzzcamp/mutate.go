// Mutation operators. Each operator is a small, targeted edit to one
// source file of an input — the campaign's counterpart to the
// syzkaller prog mutators, but over SafeFlow's annotated C subset:
// annotation edits (drop, duplicate, retarget, corrupt the coreness),
// shared-memory shape edits (region struct fields, sizeof arithmetic),
// call-structure edits (retarget monitor/stage calls, insert calls,
// splice function bodies across corpus entries), control-structure
// edits (flip comparisons, clone/delete statements), and raw
// robustness edits (truncation). Mutants need not compile: the
// recovering front end and the degraded-soundness oracle are part of
// the attack surface.
//
// All randomness comes from the Mutator's seeded rng, so a campaign
// replays exactly.

package fuzzcamp

import (
	"fmt"
	"math/rand"
	"strings"
)

// Mutator applies seeded mutation operators to inputs.
type Mutator struct {
	r *rand.Rand
}

// NewMutator returns a mutator driven by the given seeded rng (shared
// with the campaign so the whole loop replays from one seed).
func NewMutator(r *rand.Rand) *Mutator { return &Mutator{r: r} }

// op is one mutation operator: it edits the (file, lines) pair in
// place and reports whether it found anything to do.
type op struct {
	name  string
	apply func(m *Mutator, lines []string, splice Input) ([]string, bool)
}

var ops = []op{
	{"drop-annotation", (*Mutator).dropAnnotation},
	{"dup-annotation", (*Mutator).dupAnnotation},
	{"retarget-annotation", (*Mutator).retargetAnnotation},
	{"corrupt-coreness", (*Mutator).corruptCoreness},
	{"retarget-assert", (*Mutator).retargetAssert},
	{"shm-shape", (*Mutator).shmShape},
	{"retarget-call", (*Mutator).retargetCall},
	{"insert-stmt", (*Mutator).insertStmt},
	{"insert-kill", (*Mutator).insertKill},
	{"flip-compare", (*Mutator).flipCompare},
	{"tweak-number", (*Mutator).tweakNumber},
	{"clone-line", (*Mutator).cloneLine},
	{"delete-line", (*Mutator).deleteLine},
	{"splice-lines", (*Mutator).spliceLines},
	{"truncate", (*Mutator).truncate},
}

// Mutate returns a mutant of in: 1–3 operators applied to randomly
// chosen files, with splice (another corpus entry; may be the zero
// Input) as donor material for the splice operator. The mutant's name
// records its ancestry operator chain.
func (m *Mutator) Mutate(in Input, splice Input) Input {
	out := in.Clone()
	var applied []string
	rounds := 1 + m.r.Intn(3)
	for i := 0; i < rounds; i++ {
		files := out.Files()
		if len(files) == 0 {
			break
		}
		file := files[m.r.Intn(len(files))]
		o := ops[m.r.Intn(len(ops))]
		lines := strings.Split(out.Sources[file], "\n")
		mutated, ok := o.apply(m, lines, splice)
		if !ok {
			continue
		}
		out.Sources[file] = strings.Join(mutated, "\n")
		applied = append(applied, o.name)
	}
	if len(applied) > 0 {
		out.Name = fmt.Sprintf("%s+%s", in.Name, strings.Join(applied, "+"))
	}
	return out
}

// ---------------------------------------------------------------------------
// Annotation operators

// annotationLines returns the indices of SafeFlow annotation lines.
func annotationLines(lines []string) []int {
	var idx []int
	for i, l := range lines {
		if strings.Contains(l, "SafeFlow Annotation") {
			idx = append(idx, i)
		}
	}
	return idx
}

func (m *Mutator) dropAnnotation(lines []string, _ Input) ([]string, bool) {
	idx := annotationLines(lines)
	if len(idx) == 0 {
		return lines, false
	}
	i := idx[m.r.Intn(len(idx))]
	return append(lines[:i], lines[i+1:]...), true
}

func (m *Mutator) dupAnnotation(lines []string, _ Input) ([]string, bool) {
	idx := annotationLines(lines)
	if len(idx) == 0 {
		return lines, false
	}
	i := idx[m.r.Intn(len(idx))]
	out := append([]string(nil), lines[:i+1]...)
	out = append(out, lines[i])
	return append(out, lines[i+1:]...), true
}

// retargetAnnotation points an annotation at a different region
// variable, modelling an annotation that drifted from the code.
func (m *Mutator) retargetAnnotation(lines []string, _ Input) ([]string, bool) {
	idx := annotationLines(lines)
	if len(idx) == 0 {
		return lines, false
	}
	i := idx[m.r.Intn(len(idx))]
	from := fmt.Sprintf("reg%d", m.r.Intn(4))
	to := fmt.Sprintf("reg%d", m.r.Intn(4))
	if !strings.Contains(lines[i], from) {
		return lines, false
	}
	lines[i] = strings.Replace(lines[i], from, to, 1)
	return lines, true
}

// corruptCoreness rewrites core↔noncore inside an annotation. The
// arities differ, so one direction also yields a malformed annotation —
// both the semantic flip and the parse-error path are wanted.
func (m *Mutator) corruptCoreness(lines []string, _ Input) ([]string, bool) {
	idx := annotationLines(lines)
	if len(idx) == 0 {
		return lines, false
	}
	i := idx[m.r.Intn(len(idx))]
	switch {
	case strings.Contains(lines[i], "noncore("):
		lines[i] = strings.Replace(lines[i], "noncore(", "core(", 1)
	case strings.Contains(lines[i], "core("):
		lines[i] = strings.Replace(lines[i], "core(", "noncore(", 1)
	default:
		return lines, false
	}
	return lines, true
}

// retargetAssert renames the variable inside assert(safe(...)).
func (m *Mutator) retargetAssert(lines []string, _ Input) ([]string, bool) {
	for i, l := range lines {
		j := strings.Index(l, "assert(safe(")
		if j < 0 {
			continue
		}
		rest := l[j+len("assert(safe("):]
		k := strings.IndexByte(rest, ')')
		if k <= 0 {
			return lines, false
		}
		repl := []string{"u", "v", "t", "s", "x"}[m.r.Intn(5)]
		lines[i] = l[:j+len("assert(safe(")] + repl + rest[k:]
		return lines, true
	}
	return lines, false
}

// ---------------------------------------------------------------------------
// Shared-memory shape operators

// shmShape edits region-shape source: struct field lists and sizeof
// arithmetic, perturbing the layout the phase-1 analysis reasons about.
func (m *Mutator) shmShape(lines []string, _ Input) ([]string, bool) {
	for i, l := range lines {
		switch {
		case strings.Contains(l, "typedef struct") && m.r.Intn(2) == 0:
			lines[i] = strings.Replace(l, "{", "{ double extra; ", 1)
			return lines, true
		case strings.Contains(l, "sizeof(") && strings.Contains(l, "*"):
			lines[i] = strings.Replace(l, "sizeof(", fmt.Sprintf("%d + sizeof(", m.r.Intn(16)), 1)
			return lines, true
		}
	}
	return lines, false
}

// ---------------------------------------------------------------------------
// Call-structure operators

// retargetCall redirects a monitorN/stageN call to a different index,
// rewiring the callgraph (possibly into a missing definition).
func (m *Mutator) retargetCall(lines []string, _ Input) ([]string, bool) {
	prefix := []string{"monitor", "stage"}[m.r.Intn(2)]
	for i, l := range lines {
		j := strings.Index(l, prefix)
		if j < 0 || j+len(prefix) >= len(l) {
			continue
		}
		d := l[j+len(prefix)]
		if d < '0' || d > '9' {
			continue
		}
		lines[i] = l[:j+len(prefix)] + fmt.Sprint(m.r.Intn(6)) + l[j+len(prefix)+1:]
		return lines, true
	}
	return lines, false
}

// insertStmt plants a direct shared-memory read or a monitor round
// trip after a random statement line inside a function body.
func (m *Mutator) insertStmt(lines []string, _ Input) ([]string, bool) {
	stmts := []string{
		"    u = reg0->a;",
		"    t = reg%d->b + t;",
		"    s = monitor0(reg%d->a);",
		"    v = stage0(v);",
		"    reg%d->flag = 1;",
	}
	var at []int
	for i, l := range lines {
		if strings.HasSuffix(strings.TrimRight(l, " \t"), ";") && strings.HasPrefix(l, "    ") {
			at = append(at, i)
		}
	}
	if len(at) == 0 {
		return lines, false
	}
	i := at[m.r.Intn(len(at))]
	s := stmts[m.r.Intn(len(stmts))]
	if strings.Contains(s, "%d") {
		s = fmt.Sprintf(s, m.r.Intn(3))
	}
	out := append([]string(nil), lines[:i+1]...)
	out = append(out, s)
	return append(out, lines[i+1:]...), true
}

// insertKill plants the paper's defect class: a kill() whose pid comes
// straight from an unmonitored shared read.
func (m *Mutator) insertKill(lines []string, _ Input) ([]string, bool) {
	for i, l := range lines {
		if strings.Contains(l, "return 0;") {
			out := append([]string(nil), lines[:i]...)
			out = append(out, fmt.Sprintf("    kill(reg%d->flag, %d);", m.r.Intn(3), 1+m.r.Intn(30)))
			return append(out, lines[i:]...), true
		}
	}
	return lines, false
}

// ---------------------------------------------------------------------------
// Control-structure and raw-text operators

var compareSwap = strings.NewReplacer("<=", ">=", ">=", "<=")

func (m *Mutator) flipCompare(lines []string, _ Input) ([]string, bool) {
	for i, l := range lines {
		if !strings.Contains(l, "if (") {
			continue
		}
		switch {
		case strings.Contains(l, "<=") || strings.Contains(l, ">="):
			lines[i] = compareSwap.Replace(l)
		case strings.Contains(l, "!="):
			lines[i] = strings.Replace(l, "!=", "==", 1)
		case strings.Contains(l, "<"):
			lines[i] = strings.Replace(l, "<", ">", 1)
		case strings.Contains(l, ">"):
			lines[i] = strings.Replace(l, ">", "<", 1)
		default:
			continue
		}
		return lines, true
	}
	return lines, false
}

func (m *Mutator) tweakNumber(lines []string, _ Input) ([]string, bool) {
	for i, l := range lines {
		j := strings.IndexAny(l, "0123456789")
		if j < 0 || strings.Contains(l, "#") {
			continue
		}
		lines[i] = l[:j] + fmt.Sprint(m.r.Intn(100)) + l[j+1:]
		return lines, true
	}
	return lines, false
}

func (m *Mutator) cloneLine(lines []string, _ Input) ([]string, bool) {
	if len(lines) == 0 {
		return lines, false
	}
	i := m.r.Intn(len(lines))
	out := append([]string(nil), lines[:i+1]...)
	out = append(out, lines[i])
	return append(out, lines[i+1:]...), true
}

func (m *Mutator) deleteLine(lines []string, _ Input) ([]string, bool) {
	if len(lines) < 2 {
		return lines, false
	}
	i := m.r.Intn(len(lines))
	return append(lines[:i], lines[i+1:]...), true
}

// spliceLines copies a random run of lines from the same-named file of
// the splice partner (or any of its files when names differ) into a
// random position — cross-entry recombination.
func (m *Mutator) spliceLines(lines []string, splice Input) ([]string, bool) {
	files := splice.Files()
	if len(files) == 0 {
		return lines, false
	}
	donor := strings.Split(splice.Sources[files[m.r.Intn(len(files))]], "\n")
	if len(donor) == 0 {
		return lines, false
	}
	start := m.r.Intn(len(donor))
	end := start + 1 + m.r.Intn(6)
	if end > len(donor) {
		end = len(donor)
	}
	i := 0
	if len(lines) > 0 {
		i = m.r.Intn(len(lines))
	}
	out := append([]string(nil), lines[:i]...)
	out = append(out, donor[start:end]...)
	return append(out, lines[i:]...), true
}

func (m *Mutator) truncate(lines []string, _ Input) ([]string, bool) {
	if len(lines) < 4 {
		return lines, false
	}
	return lines[:len(lines)/2+m.r.Intn(len(lines)/2)], true
}
