package fuzzcamp

import (
	"context"
	"path/filepath"
	"testing"
)

// crashersDir is the repository's permanent crasher archive: every
// minimized input a campaign ever found lives here and is replayed by
// the tier-1 suite forever after.
var crashersDir = filepath.Join("..", "..", "testdata", "crashers")

// TestCrasherRegressions replays every archived crasher under the
// honest oracles. A failure means a previously-fixed bug (or a
// just-archived, not-yet-fixed one) reproduces: the input, its oracle,
// and its original detail are printed for one-command triage with
//
//	go run ./cmd/sffuzz -replay testdata/crashers/<dir>
func TestCrasherRegressions(t *testing.T) {
	crashers, err := LoadCrashers(crashersDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(crashers) == 0 {
		t.Skip("crasher archive is empty")
	}
	exec := testExec()
	for _, c := range crashers {
		c := c
		t.Run(c.Dir(), func(t *testing.T) {
			v, err := Replay(context.Background(), c, exec)
			if err != nil {
				t.Fatal(err)
			}
			if v != nil {
				t.Errorf("archived crasher reproduces: %v (originally: %s — replay with `go run ./cmd/sffuzz -replay testdata/crashers/%s`)",
					v, c.Detail, c.Dir())
			}
		})
	}
}
