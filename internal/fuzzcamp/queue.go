// The corpus queue: which input mutates next. The shape follows the
// syzkaller courier queues — entries carry an energy score, selection
// is a seeded weighted draw, and energy decays as an entry is
// scheduled so the frontier keeps rotating — but stays single-threaded:
// campaign determinism is an oracle here, so the scheduler must be a
// pure function of the seed.

package fuzzcamp

import "math/rand"

// queueEntry is one corpus member under scheduling.
type queueEntry struct {
	in     Input
	energy int // remaining scheduling weight (≥1 while queued)
	execs  int // times this entry has been chosen as a mutation base
}

// Queue is the weighted scheduling pool over the live corpus.
type Queue struct {
	r       *rand.Rand
	entries []*queueEntry
	total   int // sum of energies, maintained incrementally
}

// initialEnergy is the scheduling weight a fresh corpus entry starts
// with; it halves each time the entry is drawn, flooring at 1 so old
// entries stay reachable (splice partners) without dominating.
const initialEnergy = 16

// NewQueue returns an empty queue drawing from the given seeded rng.
func NewQueue(r *rand.Rand) *Queue { return &Queue{r: r} }

// Add enqueues a new corpus input at full energy.
func (q *Queue) Add(in Input) {
	q.entries = append(q.entries, &queueEntry{in: in, energy: initialEnergy})
	q.total += initialEnergy
}

// Len is the number of queued corpus entries.
func (q *Queue) Len() int { return len(q.entries) }

// Choose draws one entry with probability proportional to its energy
// and decays the winner. It returns the zero Input when the queue is
// empty.
func (q *Queue) Choose() Input {
	if len(q.entries) == 0 {
		return Input{}
	}
	n := q.r.Intn(q.total)
	for _, e := range q.entries {
		n -= e.energy
		if n < 0 {
			e.execs++
			if e.energy > 1 {
				q.total -= e.energy / 2
				e.energy -= e.energy / 2
			}
			return e.in
		}
	}
	return q.entries[len(q.entries)-1].in
}

// Splice draws a second, independent entry to serve as a splice
// partner (no energy decay: being copied from is free).
func (q *Queue) Splice() (Input, bool) {
	if len(q.entries) == 0 {
		return Input{}, false
	}
	return q.entries[q.r.Intn(len(q.entries))].in, true
}
