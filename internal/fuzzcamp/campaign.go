// The campaign loop: seed, choose, mutate, execute, triage. One
// sequential loop — the analyzer itself parallelizes inside an
// execution, and a sequential scheduler is what makes the whole
// campaign a pure function of (seed, executions), which the
// determinism acceptance test pins.

package fuzzcamp

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"
)

// Config shapes one campaign.
type Config struct {
	// Seed drives every random choice in the campaign (default 1).
	Seed int64
	// CorpusDir persists the evolving corpus across campaigns
	// ("" = memory only).
	CorpusDir string
	// CrasherDir receives minimized oracle-violating inputs
	// ("" = crashers are only counted, not persisted).
	CrasherDir string
	// Budget bounds wall-clock time (0 = unbounded). Wall-clock cutoffs
	// are inherently timing-dependent; use MaxExecs for bit-exact
	// reproducibility.
	Budget time.Duration
	// MaxExecs bounds the number of mutant executions (0 = unbounded;
	// at least one of Budget/MaxExecs must bound the run).
	MaxExecs int
	// SeedCount is the number of generator-derived seed inputs
	// (default 8). Extra seed systems (e.g. the embedded Table 1
	// corpus) can be appended via ExtraSeeds.
	SeedCount  int
	ExtraSeeds []Input
	// MinimizeBudget bounds executions spent shrinking one crasher
	// (default 300).
	MinimizeBudget int
	// MaxCrashers stops the campaign once this many distinct crashers
	// have been triaged (0 = keep going to the budget).
	MaxCrashers int
	// Exec configures the executor (worker counts, interpreter step
	// budget, canary plant).
	Exec Executor
	// Log, when non-nil, receives one-line progress events.
	Log io.Writer
}

// Stats is one campaign's summary. For a given (Seed, MaxExecs) pair
// every field is deterministic.
type Stats struct {
	Execs      int           `json:"execs"`        // mutant executions (seed executions excluded)
	SeedInputs int           `json:"seed_inputs"`  // inputs the queue started from
	CorpusSize int           `json:"corpus_size"`  // live corpus entries at exit
	Signatures int           `json:"signatures"`   // distinct coverage signatures reached
	NewCov     int           `json:"new_coverage"` // mutants that reached a new signature
	Crashers   int           `json:"crashers"`     // oracle violations found (after dedup)
	CrasherIDs []string      `json:"crasher_ids,omitempty"`
	Elapsed    time.Duration `json:"elapsed"` // wall clock (not deterministic)
}

// Run executes one campaign to its budget and returns its stats. Bugs
// found are persisted to Config.CrasherDir; the campaign itself only
// fails on environmental errors (I/O, cancellation).
func Run(ctx context.Context, cfg Config) (*Stats, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Budget <= 0 && cfg.MaxExecs <= 0 {
		return nil, fmt.Errorf("fuzzcamp: campaign needs a -budget or -execs bound")
	}
	start := time.Now()
	deadline := time.Time{}
	if cfg.Budget > 0 {
		deadline = start.Add(cfg.Budget)
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	store, err := OpenCorpus(cfg.CorpusDir)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	queue := NewQueue(r)
	mut := NewMutator(r)
	cov := NewCoverage()
	stats := &Stats{}

	// Seed the queue: persisted corpus first (hash-sorted), then the
	// generator seeds, then any extra systems. Every seed is executed
	// once so the coverage frontier and the crash oracles see it.
	persisted, err := store.Load()
	if err != nil {
		return nil, err
	}
	seeds := persisted
	seeds = append(seeds, SeedInputs(cfg.Seed, cfg.SeedCount)...)
	seeds = append(seeds, cfg.ExtraSeeds...)
	crasherSeen := map[string]bool{}
	for _, in := range seeds {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		res, err := cfg.Exec.Execute(ctx, in)
		if err != nil {
			return nil, err
		}
		stats.SeedInputs++
		if cov.Add(res.Sig) {
			queue.Add(in)
			if err := store.Save(in); err != nil {
				return nil, err
			}
		}
		if res.Violation != nil {
			if err := triage(ctx, cfg, in, res.Violation, stats, crasherSeen, logf); err != nil {
				return nil, err
			}
			if cfg.MaxCrashers > 0 && stats.Crashers >= cfg.MaxCrashers {
				break
			}
		}
	}
	logf("seeded: %d inputs, %d signatures, corpus %d", stats.SeedInputs, cov.Len(), queue.Len())

	// The mutation loop.
	for {
		if ctx.Err() != nil {
			break
		}
		if cfg.MaxExecs > 0 && stats.Execs >= cfg.MaxExecs {
			break
		}
		if cfg.MaxCrashers > 0 && stats.Crashers >= cfg.MaxCrashers {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		base := queue.Choose()
		if base.Sources == nil {
			break // every seed was rejected outright; nothing to mutate
		}
		splice, _ := queue.Splice()
		mutant := mut.Mutate(base, splice)
		res, err := cfg.Exec.Execute(ctx, mutant)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			return nil, err
		}
		stats.Execs++
		if cov.Add(res.Sig) {
			stats.NewCov++
			queue.Add(mutant)
			if err := store.Save(mutant); err != nil {
				return nil, err
			}
			logf("exec %d: new signature %q (corpus %d)", stats.Execs, res.Sig, queue.Len())
		}
		if res.Violation != nil {
			if err := triage(ctx, cfg, mutant, res.Violation, stats, crasherSeen, logf); err != nil {
				return nil, err
			}
			if cfg.MaxCrashers > 0 && stats.Crashers >= cfg.MaxCrashers {
				break
			}
		}
	}

	stats.CorpusSize = queue.Len()
	stats.Signatures = cov.Len()
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// triage minimizes a violating input, deduplicates it against crashers
// already found this campaign, and persists it.
func triage(ctx context.Context, cfg Config, in Input, v *Violation, stats *Stats,
	seen map[string]bool, logf func(string, ...any)) error {
	small := Minimize(ctx, in, v.Oracle, cfg.MinimizeBudget,
		func(ctx context.Context, cand Input) (*Violation, error) {
			res, err := cfg.Exec.Execute(ctx, cand)
			if err != nil {
				return nil, err
			}
			return res.Violation, nil
		})
	c := Crasher{Input: small, Oracle: v.Oracle, Detail: v.Detail, CampaignSeed: cfg.Seed}
	c.Name = fmt.Sprintf("crasher-%s", c.ShortHash())
	if seen[c.Dir()] {
		return nil
	}
	seen[c.Dir()] = true
	stats.Crashers++
	stats.CrasherIDs = append(stats.CrasherIDs, c.Dir())
	logf("CRASHER %s: %s", c.Dir(), v)
	if cfg.CrasherDir == "" {
		return nil
	}
	path, err := WriteCrasher(cfg.CrasherDir, c)
	if err != nil {
		return err
	}
	logf("  minimized input written to %s", path)
	return nil
}

// Replay re-executes one crasher under an honest executor and returns
// the violation if it still reproduces (nil = fixed / holding). The
// regression test and the CLI -replay path share this.
func Replay(ctx context.Context, c Crasher, exec Executor) (*Violation, error) {
	res, err := exec.Execute(ctx, c.Input)
	if err != nil {
		return nil, err
	}
	return res.Violation, nil
}
