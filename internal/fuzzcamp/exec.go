// The executor: run one input through the analyzer and check the three
// standing correctness oracles. Every run is configured for
// reproducibility — recovering mode, both in-memory caches disabled, no
// disk tier — so an input's verdicts, coverage signature, and any
// oracle violation are pure functions of its bytes.

package fuzzcamp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"safeflow/internal/callgraph"
	"safeflow/internal/core"
	"safeflow/internal/cpp"
	"safeflow/internal/ctoken"
	"safeflow/internal/diag"
	"safeflow/internal/faultinject"
	"safeflow/internal/frontend"
	"safeflow/internal/interp"
	"safeflow/internal/report"
	"safeflow/internal/shmflow"
)

// Oracle names a standing invariant the campaign enforces.
const (
	// OracleDeterminism: rendered text and JSON reports are
	// byte-identical at every worker count.
	OracleDeterminism = "determinism"
	// OracleDynamic: every critical sink that observes tainted data
	// under concrete execution appears in the static data-flow errors
	// (dynamic ⊆ static, the paper's soundness direction).
	OracleDynamic = "dynamic-subset-static"
	// OracleDegraded: under injected front-end faults the degraded run
	// stays sound — faulted units are diagnosed, the report never
	// claims clean, and surviving-unit tainted sinks stay flagged.
	OracleDegraded = "degraded-soundness"
	// OracleNoPanic: no input may drive any pipeline phase to a panic
	// (Report.Internal must stay empty in recovering mode).
	OracleNoPanic = "no-internal-panic"
	// OracleIncremental: a session update (incremental re-analysis of an
	// edited input) renders byte-identically to a from-scratch analysis
	// of the edited sources.
	OracleIncremental = "incremental-equivalence"
)

// Violation is one oracle failure on one input.
type Violation struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

// Error renders the violation.
func (v *Violation) Error() string { return fmt.Sprintf("%s: %s", v.Oracle, v.Detail) }

// Plant deliberately weakens the executor's oracles' view of the
// analyzer — the campaign's canary mechanism. A planted executor
// simulates a soundness bug without touching the analyzer itself, so
// tests can verify end-to-end that the campaign finds, minimizes, and
// persists a crasher for a real bug class.
type Plant int

const (
	// PlantNone is the honest executor.
	PlantNone Plant = iota
	// PlantDropMainErrors drops static data-flow errors positioned in
	// main.c before the dynamic-⊆-static comparison, simulating an
	// analyzer that silently loses error dependencies at the sink.
	PlantDropMainErrors
)

// ParsePlant maps a -plant flag value to a Plant.
func ParsePlant(s string) (Plant, error) {
	switch s {
	case "", "none":
		return PlantNone, nil
	case "drop-main-errors":
		return PlantDropMainErrors, nil
	}
	return PlantNone, fmt.Errorf("unknown plant %q (want none or drop-main-errors)", s)
}

// Executor runs inputs and checks oracles.
type Executor struct {
	// Workers are the worker counts compared by the determinism oracle
	// (default 1 and 2; the first is the signature/verdict run).
	Workers []int
	// MaxSteps bounds the taint-tracking interpretation of one input
	// (default 2,000,000; mutants may loop forever).
	MaxSteps int64
	// Plant weakens the oracles for canary runs (default PlantNone).
	Plant Plant
}

// execWorld is the interpreter environment for campaign inputs: a
// constant mid-range sensor, no actuator, no time.
type execWorld struct{}

func (execWorld) ReadSensor(ch int) float64 { return 0.5 }
func (execWorld) WriteDA(ch int, v float64) {}
func (execWorld) Wait(seconds float64)      {}

// ExecResult is one input's execution outcome.
type ExecResult struct {
	Sig       Signature  // coverage signature of the Workers[0] run
	Violation *Violation // nil when every oracle held
	Report    *core.Report
}

func (e *Executor) workers() []int {
	if len(e.Workers) == 0 {
		return []int{1, 2}
	}
	return e.Workers
}

func (e *Executor) maxSteps() int64 {
	if e.MaxSteps <= 0 {
		return 2_000_000
	}
	return e.MaxSteps
}

// analyze runs one recovering, cache-free analysis of the sources.
func analyze(ctx context.Context, in Input, sources map[string]string, workers int, stats bool) (*core.Report, error) {
	return core.AnalyzeSourcesContext(ctx, in.Name, cpp.MapSource(sources), in.CFiles, core.Options{
		Recover:           true,
		Workers:           workers,
		Stats:             stats,
		DisableCache:      true,
		DisableParseCache: true,
	})
}

// render produces the byte-exact forms the determinism oracle compares.
func render(rep *core.Report) (string, error) {
	var text, js strings.Builder
	report.Write(&text, rep)
	if err := report.WriteJSON(&js, rep); err != nil {
		return "", err
	}
	return text.String() + "\x00" + js.String(), nil
}

// Execute runs the input through the full oracle battery. A non-nil
// error means the campaign itself failed (cancellation, render
// failure), not that the input found a bug — bugs come back as
// ExecResult.Violation.
func (e *Executor) Execute(ctx context.Context, in Input) (*ExecResult, error) {
	// Primary run: verdicts, coverage signature, panic oracle.
	base, err := analyze(ctx, in, in.Sources, e.workers()[0], true)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// A structured front-end rejection (e.g. unreadable input) is a
		// legitimate analyzer answer: coarse signature, no violation.
		return &ExecResult{Sig: Signature("reject:" + errClass(err))}, nil
	}
	res := &ExecResult{Sig: SignatureOf(base), Report: base}
	if len(base.Internal) > 0 {
		res.Violation = &Violation{Oracle: OracleNoPanic,
			Detail: fmt.Sprintf("recovering run recorded internal errors: %v", base.Internal)}
		return res, nil
	}

	// Oracle 1: worker-count byte determinism of both rendered forms.
	// The metrics snapshot is execution-dependent by design (wall times,
	// goroutine peaks), so it is stripped before the byte comparison.
	noStats := *base
	noStats.Metrics = nil
	baseBytes, err := render(&noStats)
	if err != nil {
		return nil, err
	}
	for _, w := range e.workers()[1:] {
		rep, err := analyze(ctx, in, in.Sources, w, false)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			res.Violation = &Violation{Oracle: OracleDeterminism,
				Detail: fmt.Sprintf("workers=%d failed where workers=%d succeeded: %v", w, e.workers()[0], err)}
			return res, nil
		}
		rep.Metrics = nil // stats were only collected on the primary run
		b, err := render(rep)
		if err != nil {
			return nil, err
		}
		if b != baseBytes {
			res.Violation = &Violation{Oracle: OracleDeterminism,
				Detail: fmt.Sprintf("report bytes differ between workers=%d and workers=%d", e.workers()[0], w)}
			return res, nil
		}
	}

	// Oracle: incremental equivalence — patching a session must equal a
	// from-scratch analysis of the edited sources, byte for byte.
	if v, err := e.checkIncremental(ctx, in); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	} else if v != nil {
		res.Violation = v
		return res, nil
	}

	// Dynamic taint on strictly-compiling inputs (the interpreter needs
	// a complete module).
	var hot map[ctoken.Pos]bool
	if cres, cerr := frontend.Compile(in.Name, cpp.MapSource(in.Sources), in.CFiles,
		frontend.Options{DisableParseCache: true}); cerr == nil {
		m := interp.New(cres.Module, execWorld{})
		m.MaxSteps = e.maxSteps()
		tr := m.EnableTaint(shmflow.Analyze(cres.Module, callgraph.New(cres.Module)))
		_, _ = m.RunMain() // traps and step exhaustion leave valid partial evidence
		hot = map[ctoken.Pos]bool{}
		for pos, h := range tr.TaintedAsserts() {
			if h {
				hot[pos] = true
			}
		}
		for pos, h := range tr.TaintedKills() {
			if h {
				hot[pos] = true
			}
		}

		// Oracle 2: dynamic ⊆ static on the unfaulted program.
		if v := e.checkInclusion(hot, base, nil); v != nil {
			res.Violation = v
			return res, nil
		}
	}

	// Oracle 3: degraded soundness under an injected front-end fault,
	// seeded from the input's content hash so the whole check replays.
	eligible := degradableUnits(in)
	if len(eligible) == 0 {
		return res, nil
	}
	faulted, faults := faultinject.Mutate(in.hashSeed(), in.Sources, eligible, 1)
	drep, err := analyze(ctx, in, faulted, e.workers()[0], false)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return res, nil // structured rejection of the faulted variant: not our oracle
	}
	if len(drep.Internal) > 0 {
		res.Violation = &Violation{Oracle: OracleNoPanic,
			Detail: fmt.Sprintf("faulted run (faults %v) recorded internal errors: %v", faults, drep.Internal)}
		return res, nil
	}
	skipped := map[string]bool{}
	for _, u := range diag.Units(drep.Diagnostics) {
		skipped[u] = true
	}
	for _, f := range faults {
		if !skipped[f.Unit] {
			res.Violation = &Violation{Oracle: OracleDegraded,
				Detail: fmt.Sprintf("injected fault %s produced no diagnostic for its unit", f)}
			return res, nil
		}
	}
	if drep.Degraded && drep.Clean() {
		res.Violation = &Violation{Oracle: OracleDegraded, Detail: "degraded run claims clean"}
		return res, nil
	}
	if v := e.checkInclusion(hot, drep, skipped); v != nil {
		v.Oracle = OracleDegraded
		res.Violation = v
		return res, nil
	}
	return res, nil
}

// checkIncremental opens a session on the input, applies two edits — a
// trailing comment (pure frontend churn, nothing invalidated) and a new
// top-level function (module and callgraph change) — and requires every
// patched report to render byte-identically to a from-scratch analysis
// of the same edited sources. Inputs the session's fast path cannot
// represent fall back internally; equivalence must hold either way.
func (e *Executor) checkIncremental(ctx context.Context, in Input) (*Violation, error) {
	if len(in.CFiles) == 0 {
		return nil, nil
	}
	opts := core.Options{
		Recover:           true,
		Workers:           e.workers()[0],
		DisableCache:      true,
		DisableParseCache: true,
	}
	sess, _, err := core.OpenSession(ctx, in.Name, in.Sources, in.CFiles, opts)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, nil // structured rejection: nothing to compare
	}
	target := in.CFiles[0]
	cur := in.Clone()
	edits := []string{
		"\n/* incremental-oracle touch */\n",
		"\ndouble __incrProbe(double x)\n{\n    return x + 1.0;\n}\n",
	}
	for i, suffix := range edits {
		cur.Sources[target] += suffix
		rep, _, err := sess.Update(ctx, map[string]string{target: cur.Sources[target]})
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, nil
		}
		want, err := analyze(ctx, cur, cur.Sources, e.workers()[0], false)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, nil
		}
		repBytes, err := render(stripMetrics(rep))
		if err != nil {
			return nil, err
		}
		wantBytes, err := render(stripMetrics(want))
		if err != nil {
			return nil, err
		}
		if repBytes != wantBytes {
			return &Violation{Oracle: OracleIncremental,
				Detail: fmt.Sprintf("update %d: patched report differs from from-scratch analysis of the edited sources", i)}, nil
		}
	}
	return nil, nil
}

// stripMetrics clears the execution-dependent metrics snapshot before a
// byte comparison.
func stripMetrics(rep *core.Report) *core.Report {
	c := *rep
	c.Metrics = nil
	return &c
}

// checkInclusion enforces dynamic ⊆ static: every dynamically tainted
// sink (outside skipped units) must appear in the report's data-flow
// errors. The plant hook filters the static side to simulate a
// soundness bug.
func (e *Executor) checkInclusion(hot map[ctoken.Pos]bool, rep *core.Report, skipped map[string]bool) *Violation {
	if len(hot) == 0 {
		return nil
	}
	static := map[ctoken.Pos]bool{}
	for _, ed := range rep.ErrorsData {
		if e.Plant == PlantDropMainErrors && ed.Pos.File == "main.c" {
			continue
		}
		static[ed.Pos] = true
	}
	var missing []string
	for pos := range hot {
		if skipped[pos.File] || static[pos] {
			continue
		}
		missing = append(missing, pos.String())
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	return &Violation{Oracle: OracleDynamic,
		Detail: fmt.Sprintf("dynamically tainted sinks missing from static data-flow errors: %s",
			strings.Join(missing, ", "))}
}

// degradableUnits picks the translation units the degraded-soundness
// oracle may fault: compiled units that carry neither the shminit
// annotation (dropping it legitimately blinds the analysis) nor main
// (it holds the sinks the inclusion check needs).
func degradableUnits(in Input) []string {
	var out []string
	for _, f := range in.CFiles {
		src, ok := in.Sources[f]
		if !ok {
			continue
		}
		if strings.Contains(src, "shminit") || strings.Contains(src, "int main") {
			continue
		}
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// errClass coarsely buckets an analysis error for reject signatures.
func errClass(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, ':'); i > 0 {
		return s[:i]
	}
	if len(s) > 32 {
		s = s[:32]
	}
	return s
}
