// Package fuzzcamp is the coverage-guided mutation fuzzing campaign
// over the whole SafeFlow analyzer. It grows the one-shot seeded
// generator (internal/corpus) and fault-injection harness
// (internal/faultinject) into a syzkaller-style loop: a persistent
// corpus of generated C systems is evolved by splice/mutate operators
// over annotations, shared-memory shapes, call structure, and raw
// source text; mutants are prioritized by cheap coverage signals the
// analyzer already exports (internal/metrics phase counters plus report
// shape), and every execution checks the three standing correctness
// oracles:
//
//   - worker-count byte determinism of the rendered reports,
//   - dynamic taint ⊆ static errors (via internal/interp's tracker),
//   - degraded-verdict soundness under internal/faultinject faults.
//
// An input that violates an oracle is delta-minimized and written to a
// crasher directory (testdata/crashers in this repository), where
// TestCrasherRegressions replays it forever after.
//
// Everything in the package is deterministic given a campaign seed:
// the same seed and execution count reproduce the same corpus
// evolution, coverage counters, and crashers, at any GOMAXPROCS.
package fuzzcamp

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"safeflow/internal/corpus"
)

// Input is one fuzzing input: a complete multi-file C system in the
// form the analysis pipeline takes.
type Input struct {
	Name    string            `json:"name"`
	Sources map[string]string `json:"sources"`
	CFiles  []string          `json:"cfiles"`
}

// Clone deep-copies the input so mutators can edit freely.
func (in Input) Clone() Input {
	out := Input{Name: in.Name, Sources: make(map[string]string, len(in.Sources))}
	for k, v := range in.Sources {
		out.Sources[k] = v
	}
	out.CFiles = append([]string(nil), in.CFiles...)
	return out
}

// Files returns the input's file names sorted, so every iteration over
// the source map in the engine is deterministic.
func (in Input) Files() []string {
	names := make([]string, 0, len(in.Sources))
	for name := range in.Sources {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Hash is the input's content fingerprint: a deterministic digest over
// the sorted file set, the file contents, and the compile list. The
// corpus store keys entries on it, so two byte-identical systems are
// one corpus entry regardless of how they were produced.
func (in Input) Hash() string {
	h := sha256.New()
	for _, name := range in.Files() {
		fmt.Fprintf(h, "%d:%s;%d:", len(name), name, len(in.Sources[name]))
		h.Write([]byte(in.Sources[name]))
	}
	fmt.Fprintf(h, "|%s", strings.Join(in.CFiles, ","))
	return fmt.Sprintf("%x", h.Sum(nil))
}

// ShortHash is the 12-hex-digit prefix used in file and crasher names.
func (in Input) ShortHash() string { return in.Hash()[:12] }

// hashSeed derives a deterministic int64 (for seeding per-input
// injectors) from the content hash.
func (in Input) hashSeed() int64 {
	sum := sha256.Sum256([]byte(in.Hash()))
	return int64(binary.LittleEndian.Uint64(sum[:8]) &^ (1 << 63))
}

// FromGenerated adapts a corpus-generator system.
func FromGenerated(g corpus.Generated) Input {
	return Input{Name: g.Name, Sources: g.Sources, CFiles: g.CFiles}
}

// SeedInputs builds the campaign's deterministic seed set: n systems
// from the seeded corpus generator, with shapes cycling through small
// configurations so the initial coverage frontier is already diverse.
// The native Go fuzz targets (FuzzCompile, FuzzParseRecovery,
// FuzzAnnotationParse) seed from the same set, so `go test -fuzz` and
// sffuzz explore from a shared frontier.
func SeedInputs(seed int64, n int) []Input {
	if n <= 0 {
		n = 8
	}
	shapes := []corpus.GenConfig{
		{},
		{Regions: 1, Monitors: 1, Stages: 1, Depth: 1},
		{Regions: 3, Monitors: 2, Stages: 4, Depth: 2},
		{Regions: 2, Monitors: 4, Stages: 2, Depth: 3},
	}
	inputs := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		g := corpus.Generate(seed+int64(i), shapes[i%len(shapes)])
		in := FromGenerated(g)
		in.Name = fmt.Sprintf("seed-%d", seed+int64(i))
		inputs = append(inputs, in)
	}
	return inputs
}

// AnnotationBodies extracts every SafeFlow annotation body from the
// input's sources (the text between the annotation marker and the
// closing comment), for seeding the annotation-parser fuzz target.
func AnnotationBodies(in Input) []string {
	var bodies []string
	for _, name := range in.Files() {
		for _, line := range strings.Split(in.Sources[name], "\n") {
			i := strings.Index(line, "SafeFlow Annotation")
			if i < 0 {
				continue
			}
			body := line[i+len("SafeFlow Annotation"):]
			if j := strings.Index(body, "/***"); j >= 0 {
				body = body[:j]
			}
			body = strings.TrimSpace(body)
			if body != "" {
				bodies = append(bodies, body)
			}
		}
	}
	return bodies
}
