// Delta minimization of oracle-violating inputs. A crasher is only
// useful as a regression test if a human can read it, so before an
// input is persisted the minimizer shrinks it: per file, it tries
// removing runs of lines (halving the chunk size ddmin-style down to
// single lines) and keeps every removal under which the SAME oracle
// still fires. The search is greedy, bounded, and fully deterministic,
// so a campaign replay minimizes to the identical crasher.

package fuzzcamp

import (
	"context"
	"strings"
)

// Minimize shrinks in while check keeps reporting a violation of the
// same oracle. check must be deterministic; budget bounds the number
// of candidate executions (<=0 means the default 300).
func Minimize(ctx context.Context, in Input, want string, budget int,
	check func(context.Context, Input) (*Violation, error)) Input {
	if budget <= 0 {
		budget = 300
	}
	cur := in.Clone()
	still := func(candidate Input) bool {
		if budget <= 0 || ctx.Err() != nil {
			return false
		}
		budget--
		v, err := check(ctx, candidate)
		return err == nil && v != nil && v.Oracle == want
	}

	for _, file := range cur.Files() {
		lines := strings.Split(cur.Sources[file], "\n")
		for chunk := (len(lines) + 1) / 2; chunk >= 1; chunk /= 2 {
			for start := 0; start < len(lines); {
				end := start + chunk
				if end > len(lines) {
					end = len(lines)
				}
				candidate := cur.Clone()
				trimmed := append([]string(nil), lines[:start]...)
				trimmed = append(trimmed, lines[end:]...)
				candidate.Sources[file] = strings.Join(trimmed, "\n")
				if still(candidate) {
					cur = candidate
					lines = trimmed
					// keep start: the next chunk slid into place
				} else {
					start = end
				}
			}
			if budget <= 0 {
				return cur
			}
		}
	}
	return cur
}
