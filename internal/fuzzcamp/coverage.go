// Coverage signals. The campaign does not instrument the analyzer's
// binary; it reuses the cheap counters the pipeline already exports —
// internal/metrics phase-shape counters (translation units, SCCs,
// fixpoint rounds, units solved) plus the structural shape of the
// report (warnings, data/control errors, violations, annotation
// errors, diagnostics per front-end phase, degradation) — and treats
// each distinct bucketed tuple as one covered "analysis path". A
// mutant whose tuple is new lights up behavior no earlier input
// reached: a new SCC structure, a new fixpoint depth, a new
// diagnostic mix, a new verdict shape.
//
// Counters that grow with input size are log2-bucketed so the space
// of signatures stays small and a mutant must change analysis shape,
// not just add one more statement, to count as new coverage. All
// signals are taken from a Workers=1, cache-disabled run, so a
// signature is a deterministic function of the input bytes.

package fuzzcamp

import (
	"fmt"
	"sort"
	"strings"

	"safeflow/internal/core"
)

// Signature is one bucketed coverage tuple.
type Signature string

// bucket maps a non-negative counter to its log2 bucket (0, 1, 2, 4,
// 8, ... lower bounds), so e.g. 9..16 fixpoint rounds are one bucket.
func bucket(n int) int {
	if n <= 0 {
		return 0
	}
	b := 1
	for b < n {
		b <<= 1
	}
	return b
}

// SignatureOf derives the input's coverage signature from its
// Workers=1 analysis report (which must have been produced with
// Options.Stats so the metrics snapshot is present; a nil-metrics
// report contributes zeros for the phase counters).
func SignatureOf(rep *core.Report) Signature {
	var tus, sccs, rounds, solved int
	if rep.Metrics != nil {
		tus = rep.Metrics.TranslationUnits
		sccs = rep.Metrics.SCCs
		rounds = rep.Metrics.FixpointRounds
		solved = rep.Metrics.UnitsSolved
	}
	// Diagnostics bucketed per front-end phase: which recovery paths ran
	// matters more than how many entries each produced.
	phases := map[string]int{}
	for _, d := range rep.Diagnostics {
		phases[d.Phase]++
	}
	names := make([]string, 0, len(phases))
	for p := range phases {
		names = append(names, p)
	}
	sort.Strings(names)
	var diag strings.Builder
	for _, p := range names {
		fmt.Fprintf(&diag, "%s:%d,", p, bucket(phases[p]))
	}
	return Signature(fmt.Sprintf(
		"tu%d scc%d rd%d sv%d w%d ed%d ec%d vi%d ae%d rg%d dg%v in%d [%s]",
		tus, bucket(sccs), bucket(rounds), bucket(solved),
		bucket(len(rep.Warnings)), bucket(len(rep.ErrorsData)),
		bucket(len(rep.ErrorsControlOnly)), bucket(len(rep.Violations)),
		bucket(len(rep.AnnotationErrors)), bucket(len(rep.Regions)),
		rep.Degraded, len(rep.Internal), diag.String()))
}

// Coverage is the set of signatures the campaign has reached.
type Coverage struct {
	seen map[Signature]bool
	keys []Signature // insertion order, for deterministic reporting
}

// NewCoverage returns an empty coverage set.
func NewCoverage() *Coverage { return &Coverage{seen: map[Signature]bool{}} }

// Add records the signature; it reports whether it was new.
func (c *Coverage) Add(sig Signature) bool {
	if c.seen[sig] {
		return false
	}
	c.seen[sig] = true
	c.keys = append(c.keys, sig)
	return true
}

// Len is the number of distinct signatures reached.
func (c *Coverage) Len() int { return len(c.keys) }

// Signatures returns the reached signatures in the order they were
// first seen (deterministic for a deterministic campaign).
func (c *Coverage) Signatures() []Signature {
	return append([]Signature(nil), c.keys...)
}
