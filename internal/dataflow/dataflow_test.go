package dataflow

import (
	"testing"

	"safeflow/internal/ctypes"
	"safeflow/internal/ir"
)

// buildChain creates: entry with v0 = 1+0; v1 = v0+0; ...; ret.
func buildChain(n int) (*ir.Function, []*ir.BinOp) {
	fn := &ir.Function{Name: "chain", Sig: &ctypes.Func{Result: ctypes.IntType}}
	b := fn.NewBlock("entry")
	var ops []*ir.BinOp
	var prev ir.Value = &ir.ConstInt{Val: 1, Ty: ctypes.IntType}
	for i := 0; i < n; i++ {
		op := &ir.BinOp{Op: ir.Add, X: prev, Y: &ir.ConstInt{Ty: ctypes.IntType}, Ty: ctypes.IntType}
		b.Append(op)
		ops = append(ops, op)
		prev = op
	}
	ir.Terminate(b, &ir.Ret{X: prev})
	return fn, ops
}

func TestUsersIndex(t *testing.T) {
	fn, ops := buildChain(3)
	fi := NewInfo(fn)
	// ops[0] is used by ops[1].
	users := fi.UsersOf(ops[0])
	if len(users) != 1 || users[0] != ir.Instr(ops[1]) {
		t.Errorf("users of op0 = %v", users)
	}
	// The last op is used by the return.
	if len(fi.UsersOf(ops[2])) != 1 {
		t.Errorf("users of last op = %v", fi.UsersOf(ops[2]))
	}
}

func TestBoolPropagationChain(t *testing.T) {
	fn, ops := buildChain(5)
	solver := &ValueSolver[bool]{
		Info:    NewInfo(fn),
		Lattice: BoolLattice{},
		Transfer: func(in ir.Instr, get func(ir.Value) bool) (bool, bool) {
			op, ok := in.(*ir.BinOp)
			if !ok {
				return false, false
			}
			return get(op.X) || get(op.Y), true
		},
	}
	facts := solver.Solve([]Seed[bool]{{Val: ops[0], Fact: true}})
	for i, op := range ops {
		if !facts.Get(op) {
			t.Errorf("op %d not reached by propagation", i)
		}
	}
}

func TestPropagationThroughPhi(t *testing.T) {
	// entry branches to a and b; both feed a phi in merge.
	fn := &ir.Function{Name: "phi", Sig: &ctypes.Func{Result: ctypes.IntType}}
	entry := fn.NewBlock("entry")
	a := fn.NewBlock("a")
	bb := fn.NewBlock("b")
	merge := fn.NewBlock("merge")

	cond := &ir.Cmp{Op: ir.NE, X: &ir.ConstInt{Val: 1, Ty: ctypes.IntType}, Y: &ir.ConstInt{Ty: ctypes.IntType}}
	entry.Append(cond)
	ir.Terminate(entry, &ir.Br{Cond: cond, Then: a, Else: bb})

	seeded := &ir.BinOp{Op: ir.Add, X: &ir.ConstInt{Ty: ctypes.IntType}, Y: &ir.ConstInt{Ty: ctypes.IntType}, Ty: ctypes.IntType}
	a.Append(seeded)
	ir.Terminate(a, &ir.Br{Then: merge})
	clean := &ir.BinOp{Op: ir.Add, X: &ir.ConstInt{Ty: ctypes.IntType}, Y: &ir.ConstInt{Ty: ctypes.IntType}, Ty: ctypes.IntType}
	bb.Append(clean)
	ir.Terminate(bb, &ir.Br{Then: merge})

	phi := &ir.Phi{Edges: []ir.PhiEdge{{Val: seeded, Pred: a}, {Val: clean, Pred: bb}}, Ty: ctypes.IntType}
	phi.SetParentBlock(merge)
	merge.Instrs = append([]ir.Instr{phi}, merge.Instrs...)
	ir.Terminate(merge, &ir.Ret{X: phi})

	solver := &ValueSolver[bool]{
		Info:    NewInfo(fn),
		Lattice: BoolLattice{},
		Transfer: func(in ir.Instr, get func(ir.Value) bool) (bool, bool) {
			switch x := in.(type) {
			case *ir.BinOp:
				return get(x.X) || get(x.Y), true
			case *ir.Phi:
				out := false
				for _, e := range x.Edges {
					out = out || get(e.Val)
				}
				return out, true
			default:
				return false, false
			}
		},
	}
	facts := solver.Solve([]Seed[bool]{{Val: seeded, Fact: true}})
	if !facts.Get(phi) {
		t.Error("phi did not join the seeded fact ('unsafe on some path')")
	}
	if facts.Get(clean) {
		t.Error("clean op spuriously tainted")
	}
}

func TestExtraUses(t *testing.T) {
	// A value with no operand edge to the dependent instruction: only
	// ExtraUses can trigger its re-evaluation.
	fn := &ir.Function{Name: "x", Sig: &ctypes.Func{Result: ctypes.IntType}}
	b := fn.NewBlock("entry")
	src := &ir.BinOp{Op: ir.Add, X: &ir.ConstInt{Ty: ctypes.IntType}, Y: &ir.ConstInt{Ty: ctypes.IntType}, Ty: ctypes.IntType}
	b.Append(src)
	dep := &ir.BinOp{Op: ir.Add, X: &ir.ConstInt{Ty: ctypes.IntType}, Y: &ir.ConstInt{Ty: ctypes.IntType}, Ty: ctypes.IntType}
	b.Append(dep)
	ir.Terminate(b, &ir.Ret{X: dep})

	info := NewInfo(fn)
	extra := make([][]int32, info.NumValues)
	extra[ir.ValueNum(src)] = []int32{int32(ir.InstrIndex(dep))}

	solver := &ValueSolver[bool]{
		Info:    info,
		Lattice: BoolLattice{},
		Transfer: func(in ir.Instr, get func(ir.Value) bool) (bool, bool) {
			if in == ir.Instr(dep) {
				return get(src), true // non-operand dependency
			}
			if in == ir.Instr(src) {
				return true, true
			}
			return false, false
		},
		ExtraUses: extra,
	}
	facts := solver.Solve(nil)
	if !facts.Get(dep) {
		t.Error("extra-use dependency not propagated")
	}
}

func TestMonotoneTermination(t *testing.T) {
	// A loop of mutually-dependent values must terminate (finite lattice).
	fn := &ir.Function{Name: "loop", Sig: &ctypes.Func{Result: ctypes.IntType}}
	entry := fn.NewBlock("entry")
	header := fn.NewBlock("header")
	ir.Terminate(entry, &ir.Br{Then: header})

	phi := &ir.Phi{Ty: ctypes.IntType}
	phi.SetParentBlock(header)
	header.Instrs = append(header.Instrs, phi)
	inc := &ir.BinOp{Op: ir.Add, X: phi, Y: &ir.ConstInt{Val: 1, Ty: ctypes.IntType}, Ty: ctypes.IntType}
	header.Append(inc)
	phi.Edges = []ir.PhiEdge{
		{Val: &ir.ConstInt{Ty: ctypes.IntType}, Pred: entry},
		{Val: inc, Pred: header},
	}
	cond := &ir.Cmp{Op: ir.LT, X: inc, Y: &ir.ConstInt{Val: 10, Ty: ctypes.IntType}}
	header.Append(cond)
	exit := fn.NewBlock("exit")
	ir.Terminate(header, &ir.Br{Cond: cond, Then: header, Else: exit})
	ir.Terminate(exit, &ir.Ret{X: inc})

	solver := &ValueSolver[bool]{
		Info:    NewInfo(fn),
		Lattice: BoolLattice{},
		Transfer: func(in ir.Instr, get func(ir.Value) bool) (bool, bool) {
			switch x := in.(type) {
			case *ir.BinOp:
				return get(x.X) || get(x.Y), true
			case *ir.Phi:
				out := false
				for _, e := range x.Edges {
					out = out || get(e.Val)
				}
				return out, true
			default:
				return false, false
			}
		},
	}
	facts := solver.Solve([]Seed[bool]{{Val: phi, Fact: true}})
	if !facts.Get(inc) {
		t.Error("loop-carried fact lost")
	}
}

// TestSolverReuse checks that a solver's buffers reset cleanly between
// solves: a second solve with different seeds must not see facts from the
// first.
func TestSolverReuse(t *testing.T) {
	fn, ops := buildChain(4)
	solver := &ValueSolver[bool]{
		Info:    NewInfo(fn),
		Lattice: BoolLattice{},
		Transfer: func(in ir.Instr, get func(ir.Value) bool) (bool, bool) {
			op, ok := in.(*ir.BinOp)
			if !ok {
				return false, false
			}
			return get(op.X) || get(op.Y), true
		},
	}
	first := solver.Solve([]Seed[bool]{{Val: ops[0], Fact: true}})
	if !first.Get(ops[3]) {
		t.Fatal("first solve did not propagate")
	}
	second := solver.Solve([]Seed[bool]{{Val: ops[2], Fact: true}})
	if second.Get(ops[1]) {
		t.Error("second solve leaked facts from the first (ops[1] should be clean)")
	}
	if !second.Get(ops[3]) {
		t.Error("second solve did not propagate its own seed")
	}
}

// TestSolverAllocFree pins the steady-state allocation behavior: after the
// first solve warms the buffers, repeat solves of the same function
// allocate nothing.
func TestSolverAllocFree(t *testing.T) {
	fn, ops := buildChain(8)
	solver := &ValueSolver[bool]{
		Info:    NewInfo(fn),
		Lattice: BoolLattice{},
		Transfer: func(in ir.Instr, get func(ir.Value) bool) (bool, bool) {
			op, ok := in.(*ir.BinOp)
			if !ok {
				return false, false
			}
			return get(op.X) || get(op.Y), true
		},
	}
	seeds := []Seed[bool]{{Val: ops[0], Fact: true}}
	solver.Solve(seeds) // warm the buffers
	allocs := testing.AllocsPerRun(50, func() {
		solver.Solve(seeds)
	})
	if allocs > 0 {
		t.Errorf("steady-state solve allocates %v times per run, want 0", allocs)
	}
}
