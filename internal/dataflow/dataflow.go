// Package dataflow provides the sparse propagation machinery shared by
// SafeFlow's analyses: a def-use index over IR functions and a generic
// monotone worklist solver for facts attached to SSA values. Because the
// IR is in SSA form, sparse propagation along def-use edges gives the
// flow-sensitive results the paper's phase 1 (shared-memory pointer
// discovery) and phase 3 (unsafe-value flow) require, with merges at phis
// implementing the paper's "shm/unsafe if so on some path" join.
package dataflow

import (
	"safeflow/internal/ir"
)

// Users indexes, for every SSA value in a function, the instructions that
// use it as an operand.
type Users struct {
	m map[ir.Value][]ir.Instr
}

// NewUsers builds the def-use index for one function.
func NewUsers(f *ir.Function) *Users {
	u := &Users{m: make(map[ir.Value][]ir.Instr)}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, op := range in.Operands() {
				u.m[op] = append(u.m[op], in)
			}
		}
	}
	return u
}

// Of returns the instructions using v.
func (u *Users) Of(v ir.Value) []ir.Instr { return u.m[v] }

// Lattice describes the fact domain for the value solver.
type Lattice[T any] interface {
	// Join combines two facts (least upper bound).
	Join(a, b T) T
	// Equal reports whether two facts are the same lattice element.
	Equal(a, b T) bool
	// Bottom is the initial fact.
	Bottom() T
}

// ValueSolver propagates facts over a function's SSA values to a fixpoint.
type ValueSolver[T any] struct {
	Fn      *ir.Function
	Lattice Lattice[T]
	// Transfer computes the fact of an instruction's result from the facts
	// of its operands; get resolves the current fact of any value. The
	// second result is false when the instruction produces no fact (e.g.
	// stores, branches).
	Transfer func(in ir.Instr, get func(ir.Value) T) (T, bool)
	// ExtraUses declares non-operand dependencies: when the fact of a key
	// value changes, the listed instructions are re-evaluated too. Used
	// for control-dependence edges (a phi depends on the conditions of the
	// branches that select its incoming edge, which are not operands).
	ExtraUses map[ir.Value][]ir.Instr

	facts map[ir.Value]T
	users *Users
}

// Solve runs the propagation to a fixpoint, starting from the given seed
// facts, and returns the final fact map.
func (s *ValueSolver[T]) Solve(seeds map[ir.Value]T) map[ir.Value]T {
	s.facts = make(map[ir.Value]T, len(seeds))
	s.users = NewUsers(s.Fn)

	get := func(v ir.Value) T {
		if f, ok := s.facts[v]; ok {
			return f
		}
		return s.Lattice.Bottom()
	}

	var work []ir.Instr
	inWork := make(map[ir.Instr]bool)
	push := func(in ir.Instr) {
		if !inWork[in] {
			inWork[in] = true
			work = append(work, in)
		}
	}

	for v, f := range seeds {
		s.facts[v] = f
		for _, use := range s.users.Of(v) {
			push(use)
		}
		// Seeded instructions also re-derive their own fact.
		if in, ok := v.(ir.Instr); ok {
			push(in)
		}
	}
	// Evaluate every instruction once so constant/derived facts appear even
	// without seeds.
	for _, b := range s.Fn.Blocks {
		for _, in := range b.Instrs {
			push(in)
		}
	}

	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[in] = false

		newFact, produces := s.Transfer(in, get)
		if !produces {
			continue
		}
		v, isVal := in.(ir.Value)
		if !isVal {
			continue
		}
		old, had := s.facts[v]
		merged := newFact
		if had {
			merged = s.Lattice.Join(old, newFact)
		}
		if had && s.Lattice.Equal(old, merged) {
			continue
		}
		s.facts[v] = merged
		for _, use := range s.users.Of(v) {
			push(use)
		}
		for _, use := range s.ExtraUses[v] {
			push(use)
		}
	}
	return s.facts
}

// BoolLattice is the two-point lattice false ⊑ true used for may-facts
// ("may point to shared memory", "may be unsafe").
type BoolLattice struct{}

// Join implements Lattice.
func (BoolLattice) Join(a, b bool) bool { return a || b }

// Equal implements Lattice.
func (BoolLattice) Equal(a, b bool) bool { return a == b }

// Bottom implements Lattice.
func (BoolLattice) Bottom() bool { return false }
