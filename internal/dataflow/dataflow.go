// Package dataflow provides the sparse propagation machinery shared by
// SafeFlow's analyses: a def-use index over IR functions and a generic
// monotone worklist solver for facts attached to SSA values. Because the
// IR is in SSA form, sparse propagation along def-use edges gives the
// flow-sensitive results the paper's phase 1 (shared-memory pointer
// discovery) and phase 3 (unsafe-value flow) require, with merges at phis
// implementing the paper's "shm/unsafe if so on some path" join.
//
// Storage is dense: facts, worklist membership and def-use chains are
// slices indexed by the per-function value/instruction numbering of
// ir.NumberValues, so the solver allocates nothing on its hot path and a
// ValueSolver's buffers are reused across repeated Solve calls.
package dataflow

import (
	"safeflow/internal/ir"
)

// FnInfo is the per-function dense solver index: the instruction list in
// block order and the def-use chains mapping each numbered value to the
// indices of the instructions that use it as an operand. Built once per
// function and shared by every solve over it.
type FnInfo struct {
	Fn        *ir.Function
	Instrs    []ir.Instr // index = ir.InstrIndex
	NumValues int
	users     [][]int32 // value number → instruction indices
}

// NewInfo builds the dense index for one function, numbering the function
// first if it has never been numbered (hand-built test functions; the
// production pipeline numbers at lowering time).
func NewInfo(f *ir.Function) *FnInfo {
	if f.NumInstrs() == 0 {
		f.NumberValues()
	}
	fi := &FnInfo{
		Fn:        f,
		Instrs:    make([]ir.Instr, 0, f.NumInstrs()),
		NumValues: f.NumValues(),
		users:     make([][]int32, f.NumValues()),
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			idx := int32(len(fi.Instrs))
			fi.Instrs = append(fi.Instrs, in)
			for _, op := range in.Operands() {
				if n := ir.ValueNum(op); n >= 0 && n < fi.NumValues {
					fi.users[n] = append(fi.users[n], idx)
				}
			}
		}
	}
	return fi
}

// UsersOf returns the instructions using v as an operand (test/debug
// helper; the solver walks the index directly).
func (fi *FnInfo) UsersOf(v ir.Value) []ir.Instr {
	n := ir.ValueNum(v)
	if n < 0 || n >= len(fi.users) {
		return nil
	}
	out := make([]ir.Instr, len(fi.users[n]))
	for i, idx := range fi.users[n] {
		out[i] = fi.Instrs[idx]
	}
	return out
}

// Lattice describes the fact domain for the value solver. Join(Bottom, x)
// must equal x, and the zero value of T must be Bottom (the solver's
// dense tables rely on both).
type Lattice[T any] interface {
	// Join combines two facts (least upper bound).
	Join(a, b T) T
	// Equal reports whether two facts are the same lattice element.
	Equal(a, b T) bool
	// Bottom is the initial fact.
	Bottom() T
}

// Seed is one initial fact for a numbered value.
type Seed[T any] struct {
	Val  ir.Value
	Fact T
}

// Facts is the dense fact table produced by one solve, viewed through the
// function's value numbering. The zero Facts is valid and empty.
type Facts[T any] struct {
	info  *FnInfo
	facts []T
}

// Get returns the fact of v (the zero value of T — Bottom — for values
// outside the numbering or never reached).
func (f Facts[T]) Get(v ir.Value) T {
	if n := ir.ValueNum(v); n >= 0 && n < len(f.facts) {
		return f.facts[n]
	}
	var zero T
	return zero
}

// ValueSolver propagates facts over a function's SSA values to a fixpoint.
// Its internal buffers are reused across Solve calls, so a solver may be
// used for repeated solves of the same function; each Solve invalidates
// the Facts view returned by the previous one.
type ValueSolver[T any] struct {
	Info    *FnInfo
	Lattice Lattice[T]
	// Transfer computes the fact of an instruction's result from the facts
	// of its operands; get resolves the current fact of any value. The
	// second result is false when the instruction produces no fact (e.g.
	// stores, branches).
	Transfer func(in ir.Instr, get func(ir.Value) T) (T, bool)
	// ExtraUses declares non-operand dependencies, indexed by value number:
	// when the fact of value n changes, the instructions at the indices in
	// ExtraUses[n] are re-evaluated too. Used for control-dependence edges
	// (a phi depends on the conditions of the branches that select its
	// incoming edge, which are not operands).
	ExtraUses [][]int32

	facts  []T
	inWork []bool
	work   []int32
	getf   func(ir.Value) T // created once; escapes into Transfer calls
}

// Solve runs the propagation to a fixpoint, starting from the given seed
// facts, and returns the final fact table.
func (s *ValueSolver[T]) Solve(seeds []Seed[T]) Facts[T] {
	fi := s.Info
	bottom := s.Lattice.Bottom()

	if cap(s.facts) >= fi.NumValues {
		s.facts = s.facts[:fi.NumValues]
	} else {
		s.facts = make([]T, fi.NumValues)
	}
	for i := range s.facts {
		s.facts[i] = bottom
	}
	if cap(s.inWork) >= len(fi.Instrs) {
		s.inWork = s.inWork[:len(fi.Instrs)]
		for i := range s.inWork {
			s.inWork[i] = false
		}
	} else {
		s.inWork = make([]bool, len(fi.Instrs))
	}
	if s.work == nil {
		s.work = make([]int32, 0, len(fi.Instrs))
	}
	s.work = s.work[:0]

	if s.getf == nil {
		s.getf = func(v ir.Value) T {
			if n := ir.ValueNum(v); n >= 0 && n < len(s.facts) {
				return s.facts[n]
			}
			return s.Lattice.Bottom()
		}
	}
	get := s.getf
	push := func(idx int32) {
		if !s.inWork[idx] {
			s.inWork[idx] = true
			s.work = append(s.work, idx)
		}
	}

	for _, sd := range seeds {
		n := ir.ValueNum(sd.Val)
		if n < 0 || n >= len(s.facts) {
			continue
		}
		s.facts[n] = s.Lattice.Join(s.facts[n], sd.Fact)
		for _, use := range fi.users[n] {
			push(use)
		}
		// Seeded instructions also re-derive their own fact.
		if in, ok := sd.Val.(ir.Instr); ok {
			if ii := ir.InstrIndex(in); ii >= 0 && ii < len(s.inWork) {
				push(int32(ii))
			}
		}
	}
	// Evaluate every instruction once so constant/derived facts appear even
	// without seeds.
	for i := range fi.Instrs {
		push(int32(i))
	}

	for len(s.work) > 0 {
		idx := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		s.inWork[idx] = false
		in := fi.Instrs[idx]

		newFact, produces := s.Transfer(in, get)
		if !produces {
			continue
		}
		v, isVal := in.(ir.Value)
		if !isVal {
			continue
		}
		n := ir.ValueNum(v)
		if n < 0 || n >= len(s.facts) {
			continue
		}
		old := s.facts[n]
		merged := s.Lattice.Join(old, newFact)
		if s.Lattice.Equal(old, merged) {
			continue
		}
		s.facts[n] = merged
		for _, use := range fi.users[n] {
			push(use)
		}
		if n < len(s.ExtraUses) {
			for _, use := range s.ExtraUses[n] {
				push(use)
			}
		}
	}
	return Facts[T]{info: fi, facts: s.facts}
}

// BoolLattice is the two-point lattice false ⊑ true used for may-facts
// ("may point to shared memory", "may be unsafe").
type BoolLattice struct{}

// Join implements Lattice.
func (BoolLattice) Join(a, b bool) bool { return a || b }

// Equal implements Lattice.
func (BoolLattice) Equal(a, b bool) bool { return a == b }

// Bottom implements Lattice.
func (BoolLattice) Bottom() bool { return false }
