// JSON rendering of SafeFlow reports, for tooling that consumes analysis
// results programmatically (CI gates, dashboards).

package report

import (
	"encoding/json"
	"io"

	"safeflow/internal/core"
	"safeflow/internal/metrics"
	"safeflow/internal/vfg"
)

// JSONReport is the stable machine-readable form of a Report. The
// "metrics" key is present only when the analysis ran with
// Options.Stats; its shape is versioned by metrics.SchemaVersion.
type JSONReport struct {
	Name              string                 `json:"name"`
	LinesOfCode       int                    `json:"lines_of_code"`
	AnnotationLines   int                    `json:"annotation_lines"`
	Regions           []JSONRegion           `json:"regions"`
	InternalErrs      []string               `json:"internal_errors,omitempty"`
	Degraded          bool                   `json:"degraded,omitempty"`
	Diagnostics       []JSONDiagnostic       `json:"diagnostics,omitempty"`
	AnnotationErrs    []string               `json:"annotation_errors,omitempty"`
	Violations        []JSONViolation        `json:"violations,omitempty"`
	Warnings          []JSONWarning          `json:"warnings,omitempty"`
	Errors            []JSONError            `json:"errors,omitempty"`
	ControlReports    []JSONError            `json:"control_reports,omitempty"`
	Suppressed        []JSONSuppressed       `json:"suppressed,omitempty"`
	SuppressionIssues []JSONSuppressionIssue `json:"suppression_issues,omitempty"`
	Clean             bool                   `json:"clean"`
	Policy            *JSONPolicy            `json:"policy,omitempty"`
	Metrics           *metrics.RunMetrics    `json:"metrics,omitempty"`
}

// JSONPolicy identifies the taint policy a run analyzed under. Present
// only when the policy was explicitly configured, keeping default-run
// JSON byte-identical to historic output.
type JSONPolicy struct {
	Name        string         `json:"name"`
	Fingerprint string         `json:"fingerprint"`
	Rules       []JSONRuleMeta `json:"rules"`
}

// JSONRuleMeta is one policy rule's metadata.
type JSONRuleMeta struct {
	ID          string `json:"id"`
	Description string `json:"description"`
}

// JSONSuppressed is one audit-trail entry for a finding matched by an
// inline safeflow:ignore directive.
type JSONSuppressed struct {
	Rule   string `json:"rule"`
	Reason string `json:"reason,omitempty"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Kind   string `json:"kind"`
	Text   string `json:"text"`
}

// JSONSuppressionIssue is one directive the analysis could not honor.
type JSONSuppressionIssue struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Rule string `json:"rule,omitempty"`
	Msg  string `json:"msg"`
}

// JSONDiagnostic is one recovering-front-end failure: the translation
// unit skipped because of it, the failing phase, and the message.
type JSONDiagnostic struct {
	Unit  string `json:"unit"`
	Pos   string `json:"pos,omitempty"`
	Phase string `json:"phase"`
	Msg   string `json:"msg"`
}

// JSONRegion describes one shared-memory variable.
type JSONRegion struct {
	Name    string `json:"name"`
	Size    int64  `json:"size"`
	NonCore bool   `json:"noncore"`
}

// JSONViolation is one restriction violation.
type JSONViolation struct {
	Rule     string `json:"rule"`
	Function string `json:"function"`
	Pos      string `json:"pos"`
	Message  string `json:"message"`
}

// JSONWarning is one unmonitored non-core access (or, under a
// configured policy, a policy-source-tainted value). Rule is populated
// only for explicitly configured policies.
type JSONWarning struct {
	Pos      string `json:"pos"`
	Function string `json:"function"`
	Region   string `json:"region,omitempty"`
	Detail   string `json:"detail,omitempty"`
	Rule     string `json:"rule,omitempty"`
}

// JSONError is one critical-data dependency.
type JSONError struct {
	Pos         string       `json:"pos"`
	Function    string       `json:"function"`
	Var         string       `json:"var"`
	Rule        string       `json:"rule,omitempty"`
	ControlOnly bool         `json:"control_only"`
	Sources     []JSONSource `json:"sources"`
}

// JSONSource is one value-flow witness edge.
type JSONSource struct {
	Pos    string `json:"pos"`
	Region string `json:"region,omitempty"`
	Kind   string `json:"kind"` // data | control
}

// ToJSON converts a report to its machine-readable form.
func ToJSON(rep *core.Report) *JSONReport {
	out := &JSONReport{
		Name:            rep.Name,
		LinesOfCode:     rep.LinesOfCode,
		AnnotationLines: rep.AnnotationLines,
		Clean:           rep.Clean(),
	}
	for _, r := range rep.Regions {
		out.Regions = append(out.Regions, JSONRegion{Name: r.Name, Size: r.Size, NonCore: r.NonCore})
	}
	for _, e := range rep.Internal {
		out.InternalErrs = append(out.InternalErrs, e.Error())
	}
	out.Degraded = rep.Degraded
	for _, d := range rep.Diagnostics {
		jd := JSONDiagnostic{Unit: d.Unit, Phase: d.Phase, Msg: d.Msg}
		if d.Pos.IsValid() {
			jd.Pos = d.Pos.String()
		}
		out.Diagnostics = append(out.Diagnostics, jd)
	}
	for _, e := range rep.AnnotationErrors {
		out.AnnotationErrs = append(out.AnnotationErrs, e.Error())
	}
	out.Metrics = rep.Metrics
	for _, v := range rep.Violations {
		out.Violations = append(out.Violations, JSONViolation{
			Rule: string(v.Rule), Function: v.Fn.Name, Pos: v.Pos.String(), Message: v.Msg,
		})
	}
	for _, w := range rep.Warnings {
		jw := JSONWarning{Pos: w.Pos.String(), Function: w.FnName, Detail: w.Detail}
		if w.Region != nil {
			jw.Region = w.Region.Name
		}
		if rep.PolicyExplicit {
			jw.Rule = w.Rule
		}
		out.Warnings = append(out.Warnings, jw)
	}
	out.Errors = jsonErrors(rep.ErrorsData, rep.PolicyExplicit)
	out.ControlReports = jsonErrors(rep.ErrorsControlOnly, rep.PolicyExplicit)
	for _, sf := range rep.Suppressed {
		out.Suppressed = append(out.Suppressed, JSONSuppressed{
			Rule: sf.Rule, Reason: sf.Reason, File: sf.File, Line: sf.Line,
			Kind: sf.Kind, Text: sf.Text,
		})
	}
	for _, is := range rep.SuppressionIssues {
		out.SuppressionIssues = append(out.SuppressionIssues, JSONSuppressionIssue{
			File: is.File, Line: is.Line, Rule: is.Rule, Msg: is.Msg,
		})
	}
	if rep.PolicyExplicit {
		jp := &JSONPolicy{Name: rep.PolicyName, Fingerprint: rep.PolicyFingerprint}
		for _, r := range rep.PolicyRules {
			jp.Rules = append(jp.Rules, JSONRuleMeta{ID: r.ID, Description: r.Description})
		}
		out.Policy = jp
	}
	return out
}

func jsonErrors(errs []*vfg.ErrorDep, attributeRule bool) []JSONError {
	var out []JSONError
	for _, e := range errs {
		je := JSONError{
			Pos: e.Pos.String(), Function: e.FnName, Var: e.Var, ControlOnly: e.ControlOnly,
		}
		if attributeRule {
			je.Rule = e.Rule
		}
		for _, s := range e.SortedSources() {
			js := JSONSource{Pos: s.Pos.String(), Kind: e.Sources[s].String()}
			if s.Region != nil {
				js.Region = s.Region.Name
			}
			je.Sources = append(je.Sources, js)
		}
		out = append(out, je)
	}
	return out
}

// WriteJSON renders the report as indented JSON.
func WriteJSON(w io.Writer, rep *core.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSON(rep))
}
