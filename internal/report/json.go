// JSON rendering of SafeFlow reports, for tooling that consumes analysis
// results programmatically (CI gates, dashboards).

package report

import (
	"encoding/json"
	"io"

	"safeflow/internal/core"
	"safeflow/internal/metrics"
	"safeflow/internal/vfg"
)

// JSONReport is the stable machine-readable form of a Report. The
// "metrics" key is present only when the analysis ran with
// Options.Stats; its shape is versioned by metrics.SchemaVersion.
type JSONReport struct {
	Name            string              `json:"name"`
	LinesOfCode     int                 `json:"lines_of_code"`
	AnnotationLines int                 `json:"annotation_lines"`
	Regions         []JSONRegion        `json:"regions"`
	InternalErrs    []string            `json:"internal_errors,omitempty"`
	Degraded        bool                `json:"degraded,omitempty"`
	Diagnostics     []JSONDiagnostic    `json:"diagnostics,omitempty"`
	AnnotationErrs  []string            `json:"annotation_errors,omitempty"`
	Violations      []JSONViolation     `json:"violations,omitempty"`
	Warnings        []JSONWarning       `json:"warnings,omitempty"`
	Errors          []JSONError         `json:"errors,omitempty"`
	ControlReports  []JSONError         `json:"control_reports,omitempty"`
	Clean           bool                `json:"clean"`
	Metrics         *metrics.RunMetrics `json:"metrics,omitempty"`
}

// JSONDiagnostic is one recovering-front-end failure: the translation
// unit skipped because of it, the failing phase, and the message.
type JSONDiagnostic struct {
	Unit  string `json:"unit"`
	Pos   string `json:"pos,omitempty"`
	Phase string `json:"phase"`
	Msg   string `json:"msg"`
}

// JSONRegion describes one shared-memory variable.
type JSONRegion struct {
	Name    string `json:"name"`
	Size    int64  `json:"size"`
	NonCore bool   `json:"noncore"`
}

// JSONViolation is one restriction violation.
type JSONViolation struct {
	Rule     string `json:"rule"`
	Function string `json:"function"`
	Pos      string `json:"pos"`
	Message  string `json:"message"`
}

// JSONWarning is one unmonitored non-core access.
type JSONWarning struct {
	Pos      string `json:"pos"`
	Function string `json:"function"`
	Region   string `json:"region,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// JSONError is one critical-data dependency.
type JSONError struct {
	Pos         string       `json:"pos"`
	Function    string       `json:"function"`
	Var         string       `json:"var"`
	ControlOnly bool         `json:"control_only"`
	Sources     []JSONSource `json:"sources"`
}

// JSONSource is one value-flow witness edge.
type JSONSource struct {
	Pos    string `json:"pos"`
	Region string `json:"region,omitempty"`
	Kind   string `json:"kind"` // data | control
}

// ToJSON converts a report to its machine-readable form.
func ToJSON(rep *core.Report) *JSONReport {
	out := &JSONReport{
		Name:            rep.Name,
		LinesOfCode:     rep.LinesOfCode,
		AnnotationLines: rep.AnnotationLines,
		Clean:           rep.Clean(),
	}
	for _, r := range rep.Regions {
		out.Regions = append(out.Regions, JSONRegion{Name: r.Name, Size: r.Size, NonCore: r.NonCore})
	}
	for _, e := range rep.Internal {
		out.InternalErrs = append(out.InternalErrs, e.Error())
	}
	out.Degraded = rep.Degraded
	for _, d := range rep.Diagnostics {
		jd := JSONDiagnostic{Unit: d.Unit, Phase: d.Phase, Msg: d.Msg}
		if d.Pos.IsValid() {
			jd.Pos = d.Pos.String()
		}
		out.Diagnostics = append(out.Diagnostics, jd)
	}
	for _, e := range rep.AnnotationErrors {
		out.AnnotationErrs = append(out.AnnotationErrs, e.Error())
	}
	out.Metrics = rep.Metrics
	for _, v := range rep.Violations {
		out.Violations = append(out.Violations, JSONViolation{
			Rule: string(v.Rule), Function: v.Fn.Name, Pos: v.Pos.String(), Message: v.Msg,
		})
	}
	for _, w := range rep.Warnings {
		jw := JSONWarning{Pos: w.Pos.String(), Function: w.FnName, Detail: w.Detail}
		if w.Region != nil {
			jw.Region = w.Region.Name
		}
		out.Warnings = append(out.Warnings, jw)
	}
	out.Errors = jsonErrors(rep.ErrorsData)
	out.ControlReports = jsonErrors(rep.ErrorsControlOnly)
	return out
}

func jsonErrors(errs []*vfg.ErrorDep) []JSONError {
	var out []JSONError
	for _, e := range errs {
		je := JSONError{
			Pos: e.Pos.String(), Function: e.FnName, Var: e.Var, ControlOnly: e.ControlOnly,
		}
		for _, s := range e.SortedSources() {
			js := JSONSource{Pos: s.Pos.String(), Kind: e.Sources[s].String()}
			if s.Region != nil {
				js.Region = s.Region.Name
			}
			je.Sources = append(je.Sources, js)
		}
		out = append(out, je)
	}
	return out
}

// WriteJSON renders the report as indented JSON.
func WriteJSON(w io.Writer, rep *core.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSON(rep))
}
