// SARIF 2.1.0 rendering of SafeFlow reports, for code-scanning
// integrations (GitHub code scanning, CI policy gates). The output is
// byte-deterministic for a given report — field order is fixed by the
// struct definitions and every collection is emitted in the report's
// stable order — so golden-file diffs are meaningful at every worker
// count and cache temperature.

package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"safeflow/internal/core"
	"safeflow/internal/ctoken"
	"safeflow/internal/vfg"
)

// SARIFSchemaURI is the canonical SARIF 2.1.0 schema location recorded
// in the log's $schema key.
const SARIFSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"

// SARIFLog is the top-level SARIF 2.1.0 document.
type SARIFLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SARIFRun `json:"runs"`
}

// SARIFRun is one analysis run.
type SARIFRun struct {
	Tool        SARIFTool         `json:"tool"`
	Invocations []SARIFInvocation `json:"invocations"`
	Results     []SARIFResult     `json:"results"`
	Properties  map[string]any    `json:"properties,omitempty"`
}

// SARIFTool wraps the driver description.
type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

// SARIFDriver describes the analyzer and its rule metadata.
type SARIFDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []SARIFRule `json:"rules"`
}

// SARIFRule is one reporting rule's metadata.
type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
}

// SARIFMessage is SARIF's message object.
type SARIFMessage struct {
	Text string `json:"text"`
}

// SARIFInvocation records execution status and tool-level notifications
// (internal errors, degraded-mode diagnostics, suppression issues).
type SARIFInvocation struct {
	ExecutionSuccessful        bool                `json:"executionSuccessful"`
	ToolExecutionNotifications []SARIFNotification `json:"toolExecutionNotifications,omitempty"`
}

// SARIFNotification is one tool-level notification.
type SARIFNotification struct {
	Level   string       `json:"level"`
	Message SARIFMessage `json:"message"`
}

// SARIFResult is one finding.
type SARIFResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      SARIFMessage       `json:"message"`
	Locations    []SARIFLocation    `json:"locations,omitempty"`
	Suppressions []SARIFSuppression `json:"suppressions,omitempty"`
}

// SARIFLocation wraps a physical location.
type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

// SARIFPhysicalLocation names a file region.
type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           *SARIFRegion          `json:"region,omitempty"`
}

// SARIFArtifactLocation names a file.
type SARIFArtifactLocation struct {
	URI string `json:"uri"`
}

// SARIFRegion is a line/column range start.
type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIFSuppression records why a result is suppressed.
type SARIFSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// sarifLoc builds the single-element locations array for a position.
func sarifLoc(pos ctoken.Pos) []SARIFLocation {
	if !pos.IsValid() {
		return nil
	}
	return []SARIFLocation{{PhysicalLocation: SARIFPhysicalLocation{
		ArtifactLocation: SARIFArtifactLocation{URI: pos.File},
		Region:           &SARIFRegion{StartLine: pos.Line, StartColumn: pos.Col},
	}}}
}

// errorMessage renders an error with its value-flow witness, mirroring
// the text format's per-error block.
func errorMessage(e *vfg.ErrorDep) string {
	msg := e.String()
	for _, s := range e.SortedSources() {
		msg += fmt.Sprintf("\nvia %s flow from %s", e.Sources[s], s)
	}
	return msg
}

// ToSARIF converts a report to a SARIF 2.1.0 log. Unlike the text and
// JSON formats, SARIF always attributes findings to rule ids — it is a
// new format with no byte-compatibility constraint, and code-scanning
// consumers key everything off ruleId.
func ToSARIF(rep *core.Report) *SARIFLog {
	usedRules := map[string]string{} // id -> description
	ruleDesc := map[string]string{}
	for _, r := range rep.PolicyRules {
		ruleDesc[r.ID] = r.Description
	}
	use := func(id string) string {
		if id == "" {
			id = "unattributed"
		}
		if _, ok := usedRules[id]; !ok {
			desc := ruleDesc[id]
			if desc == "" {
				desc = id
			}
			usedRules[id] = desc
		}
		return id
	}

	var results []SARIFResult
	for _, e := range rep.AnnotationErrors {
		results = append(results, SARIFResult{
			RuleID:  use("annotation-error"),
			Level:   "error",
			Message: SARIFMessage{Text: e.Error()},
		})
	}
	for _, v := range rep.Violations {
		ruleDesc["restrict-"+string(v.Rule)] = "restriction violation (" + string(v.Rule) + ")"
		results = append(results, SARIFResult{
			RuleID:    use("restrict-" + string(v.Rule)),
			Level:     "error",
			Message:   SARIFMessage{Text: v.String()},
			Locations: sarifLoc(v.Pos),
		})
	}
	for _, e := range rep.ErrorsData {
		results = append(results, SARIFResult{
			RuleID:    use(e.Rule),
			Level:     "error",
			Message:   SARIFMessage{Text: errorMessage(e)},
			Locations: sarifLoc(e.Pos),
		})
	}
	for _, e := range rep.ErrorsControlOnly {
		results = append(results, SARIFResult{
			RuleID:    use(e.Rule),
			Level:     "warning",
			Message:   SARIFMessage{Text: errorMessage(e)},
			Locations: sarifLoc(e.Pos),
		})
	}
	for _, w := range rep.Warnings {
		results = append(results, SARIFResult{
			RuleID:    use(w.Rule),
			Level:     "note",
			Message:   SARIFMessage{Text: w.String()},
			Locations: sarifLoc(w.Pos),
		})
	}
	for _, sf := range rep.Suppressed {
		level := "error"
		switch sf.Kind {
		case "warning":
			level = "note"
		case "control-only":
			level = "warning"
		}
		justification := sf.Reason
		if justification == "" {
			justification = "(no reason given)"
		}
		results = append(results, SARIFResult{
			RuleID:  use(sf.Rule),
			Level:   level,
			Message: SARIFMessage{Text: sf.Text},
			Locations: []SARIFLocation{{PhysicalLocation: SARIFPhysicalLocation{
				ArtifactLocation: SARIFArtifactLocation{URI: sf.File},
				Region:           &SARIFRegion{StartLine: sf.Line},
			}}},
			Suppressions: []SARIFSuppression{{Kind: "inSource", Justification: justification}},
		})
	}

	var notes []SARIFNotification
	for _, e := range rep.Internal {
		notes = append(notes, SARIFNotification{Level: "error", Message: SARIFMessage{Text: e.Error()}})
	}
	for _, d := range rep.Diagnostics {
		notes = append(notes, SARIFNotification{Level: "warning", Message: SARIFMessage{Text: d.String()}})
	}
	for _, is := range rep.SuppressionIssues {
		notes = append(notes, SARIFNotification{Level: "error", Message: SARIFMessage{Text: is.String()}})
	}

	// Rules: every id in the active policy, plus any dynamic ids the
	// results used (restrict-*, annotation-error), sorted for stability.
	for _, r := range rep.PolicyRules {
		use(r.ID)
	}
	ids := make([]string, 0, len(usedRules))
	for id := range usedRules {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rules := make([]SARIFRule, 0, len(ids))
	for _, id := range ids {
		rules = append(rules, SARIFRule{ID: id, ShortDescription: SARIFMessage{Text: usedRules[id]}})
	}

	if results == nil {
		results = []SARIFResult{}
	}
	return &SARIFLog{
		Schema:  SARIFSchemaURI,
		Version: "2.1.0",
		Runs: []SARIFRun{{
			Tool: SARIFTool{Driver: SARIFDriver{
				Name:           "safeflow",
				InformationURI: "https://example.org/safeflow",
				Rules:          rules,
			}},
			Invocations: []SARIFInvocation{{
				ExecutionSuccessful:        len(rep.Internal) == 0 && !rep.Degraded,
				ToolExecutionNotifications: notes,
			}},
			Results: results,
			Properties: map[string]any{
				"policy":            rep.PolicyName,
				"policyFingerprint": rep.PolicyFingerprint,
				"degraded":          rep.Degraded,
				"system":            rep.Name,
			},
		}},
	}
}

// WriteSARIF renders the report as indented SARIF 2.1.0 JSON.
func WriteSARIF(w io.Writer, rep *core.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToSARIF(rep))
}
