// Package report renders SafeFlow analysis reports: per-diagnostic
// listings with their unsafe-source witnesses (the distilled value-flow
// graph evidence the paper's manual inspection step relies on), and the
// Table 1 summary rows the benchmark harness regenerates.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"safeflow/internal/core"
	"safeflow/internal/diag"
	"safeflow/internal/metrics"
	"safeflow/internal/vfg"
)

// Write renders the full report for one analyzed system.
func Write(w io.Writer, rep *core.Report) {
	fmt.Fprintf(w, "SafeFlow report for %s\n", rep.Name)
	fmt.Fprintf(w, "%s\n", strings.Repeat("=", 20+len(rep.Name)))
	fmt.Fprintf(w, "source lines: %d   annotation lines: %d\n", rep.LinesOfCode, rep.AnnotationLines)
	if rep.PolicyExplicit {
		fmt.Fprintf(w, "policy: %s (fingerprint %s)\n", rep.PolicyName, shortFingerprint(rep.PolicyFingerprint))
	}

	fmt.Fprintf(w, "\nShared-memory regions (%d):\n", len(rep.Regions))
	for _, r := range rep.Regions {
		fmt.Fprintf(w, "  %s\n", r)
	}

	if len(rep.Internal) > 0 {
		fmt.Fprintf(w, "\nInternal errors — isolated analysis crashes, results may be partial (%d):\n",
			len(rep.Internal))
		for _, e := range rep.Internal {
			fmt.Fprintf(w, "  %v\n", e)
		}
	}

	if len(rep.Diagnostics) > 0 {
		units := diag.Units(rep.Diagnostics)
		fmt.Fprintf(w, "\nDegraded analysis — %d translation unit(s) skipped (%s):\n",
			len(units), strings.Join(units, ", "))
		for _, d := range rep.Diagnostics {
			fmt.Fprintf(w, "  %s\n", d)
		}
	}

	if len(rep.AnnotationErrors) > 0 {
		fmt.Fprintf(w, "\nAnnotation errors (%d):\n", len(rep.AnnotationErrors))
		for _, e := range rep.AnnotationErrors {
			fmt.Fprintf(w, "  %v\n", e)
		}
	}

	if len(rep.Violations) > 0 {
		fmt.Fprintf(w, "\nRestriction violations (%d):\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Fprintf(w, "  %s\n", v)
		}
	}

	fmt.Fprintf(w, "\nWarnings — unmonitored non-core accesses (%d):\n", len(rep.Warnings))
	for _, s := range rep.Warnings {
		fmt.Fprintf(w, "  %s\n", s)
	}

	fmt.Fprintf(w, "\nError dependencies (%d):\n", len(rep.ErrorsData))
	for _, e := range rep.ErrorsData {
		writeError(w, e, rep.PolicyExplicit)
	}

	fmt.Fprintf(w, "\nControl-dependence reports — manual inspection required (%d):\n",
		len(rep.ErrorsControlOnly))
	for _, e := range rep.ErrorsControlOnly {
		writeError(w, e, rep.PolicyExplicit)
	}

	if len(rep.Suppressed) > 0 {
		fmt.Fprintf(w, "\nSuppressed findings — audit trail of safeflow:ignore directives (%d):\n",
			len(rep.Suppressed))
		for _, sf := range rep.Suppressed {
			reason := sf.Reason
			if reason == "" {
				reason = "(no reason given)"
			}
			fmt.Fprintf(w, "  %s:%d: [%s] %s suppressed: %s\n", sf.File, sf.Line, sf.Rule, sf.Kind, reason)
			fmt.Fprintf(w, "      was: %s\n", sf.Text)
		}
	}

	if len(rep.SuppressionIssues) > 0 {
		fmt.Fprintf(w, "\nSuppression issues — directives the analysis cannot honor (%d):\n",
			len(rep.SuppressionIssues))
		for _, is := range rep.SuppressionIssues {
			fmt.Fprintf(w, "  %s\n", is)
		}
	}

	switch {
	case rep.Clean():
		fmt.Fprintf(w, "\nsafe value flow verified: no unmonitored non-core value reaches critical data\n")
	case rep.Degraded:
		fmt.Fprintf(w, "\nanalysis DEGRADED: the skipped units above were not verified; verdicts for the surviving units treat calls into skipped definitions conservatively\n")
	}
}

// shortFingerprint truncates a policy fingerprint for the human-facing
// header line (the JSON and SARIF forms carry the full digest).
func shortFingerprint(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// writeError prints one error with its value-flow witness: the unsafe
// sources the critical data depends on and the dependency kind of each.
// Rule attribution is shown only for explicitly configured policies, so
// default-policy reports stay byte-identical to historic output.
func writeError(w io.Writer, e *vfg.ErrorDep, attributeRule bool) {
	if attributeRule {
		fmt.Fprintf(w, "  %s [rule %s]\n", e, e.Rule)
	} else {
		fmt.Fprintf(w, "  %s\n", e)
	}
	for _, s := range e.SortedSources() {
		kind := e.Sources[s]
		fmt.Fprintf(w, "      via %s flow from %s\n", kind, s)
	}
}

// WriteStats renders a run-metrics snapshot in the text format printed
// by `safeflow -stats` and `sfbench -stats`.
func WriteStats(w io.Writer, m *metrics.RunMetrics) {
	if m == nil {
		return
	}
	fmt.Fprintf(w, "\nRun metrics (schema v%d)\n", m.SchemaVersion)
	fmt.Fprintf(w, "  wall time: %v\n", time.Duration(m.WallNS))
	for _, p := range m.Phases {
		fmt.Fprintf(w, "    %-10s %v\n", p.Name, time.Duration(p.WallNS))
	}
	fmt.Fprintf(w, "  translation units: %d   callgraph SCCs: %d   fixpoint rounds: %d\n",
		m.TranslationUnits, m.SCCs, m.FixpointRounds)
	fmt.Fprintf(w, "  summaries solved: %d   cache hits/misses: %d/%d   peak goroutines: %d\n",
		m.UnitsSolved, m.CacheHits, m.CacheMisses, m.PeakGoroutines)
}

// Table1Header returns the header lines of the paper's Table 1.
func Table1Header() string {
	return fmt.Sprintf("%-17s %9s %11s %7s %9s %7s\n%s",
		"System", "LOC(core)", "Annot.lines", "Errors", "Warnings", "FalsePos",
		strings.Repeat("-", 66))
}

// Table1Row renders one system's row of Table 1.
func Table1Row(rep *core.Report) string {
	return fmt.Sprintf("%-17s %9d %11d %7d %9d %7d",
		rep.Name, rep.LinesOfCode, rep.AnnotationLines,
		len(rep.ErrorsData), len(rep.Warnings), len(rep.ErrorsControlOnly))
}

// WriteTable1 renders the whole table.
func WriteTable1(w io.Writer, reps []*core.Report) {
	fmt.Fprintln(w, Table1Header())
	for _, rep := range reps {
		fmt.Fprintln(w, Table1Row(rep))
	}
}
