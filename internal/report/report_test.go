package report

import (
	"os"
	"strings"
	"testing"

	"safeflow/internal/core"
	"safeflow/internal/cpp"
)

func figure2Report(t *testing.T) *core.Report {
	t.Helper()
	src, err := os.ReadFile("../../testdata/figure2.c")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.AnalyzeSources("figure2", cpp.MapSource{"main.c": string(src)}, []string{"main.c"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestWriteReportContents(t *testing.T) {
	rep := figure2Report(t)
	var sb strings.Builder
	Write(&sb, rep)
	out := sb.String()

	for _, want := range []string{
		"SafeFlow report for figure2",
		"Shared-memory regions (2)",
		"feedback[32 bytes, noncore]",
		"Warnings — unmonitored non-core accesses (3)",
		"Error dependencies (1)",
		`critical data "output"`,
		"via data flow from",
		"Control-dependence reports",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "safe value flow verified") {
		t.Error("defective system reported clean")
	}
}

func TestWriteCleanReport(t *testing.T) {
	rep, err := core.AnalyzeString("clean", `
int main() { return 0; }
`, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	Write(&sb, rep)
	if !strings.Contains(sb.String(), "safe value flow verified") {
		t.Errorf("clean system not reported clean:\n%s", sb.String())
	}
}

func TestTable1Rendering(t *testing.T) {
	rep := figure2Report(t)
	var sb strings.Builder
	WriteTable1(&sb, []*core.Report{rep})
	out := sb.String()
	if !strings.Contains(out, "System") || !strings.Contains(out, "figure2") {
		t.Errorf("table missing pieces:\n%s", out)
	}
	row := Table1Row(rep)
	fields := strings.Fields(row)
	// name, loc, annot, errors, warnings, falsepos
	if len(fields) != 6 {
		t.Fatalf("row fields = %v", fields)
	}
	if fields[3] != "1" || fields[4] != "3" {
		t.Errorf("row = %q, want 1 error / 3 warnings", row)
	}
}

func mustAnalyzeString(t *testing.T, src string) *core.Report {
	t.Helper()
	rep, err := core.AnalyzeString("t", src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}
