package report_test

import (
	"bytes"
	"runtime"
	"testing"

	"safeflow/internal/corpus"
	"safeflow/internal/report"
	"safeflow/internal/sarifschema"
	"safeflow/internal/vfg"
	"safeflow/pkg/safeflow"
)

// TestSARIFDeterminism pins the CI-facing invariant for the new format:
// the SARIF bytes are identical at every worker count and at every
// cache temperature. Each worker count is rendered cold (summary cache
// reset) and warm (second run over the populated cache) and every
// rendering must equal the first.
func TestSARIFDeterminism(t *testing.T) {
	sys := corpus.All()[0]
	src, err := sys.SourceMap()
	if err != nil {
		t.Fatal(err)
	}

	render := func(workers int) []byte {
		rep, err := safeflow.Analyze(sys.Name, src, sys.CFiles, safeflow.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteSARIF(&buf, rep); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	var want []byte
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		vfg.ResetSummaryCache()
		cold := render(workers)
		warm := render(workers)
		if want == nil {
			want = cold
			if errs := sarifschema.ValidateSARIF(want); len(errs) != 0 {
				t.Fatalf("SARIF does not validate: %v", errs)
			}
		}
		if !bytes.Equal(cold, want) {
			t.Errorf("workers=%d cold: SARIF bytes diverged", workers)
		}
		if !bytes.Equal(warm, want) {
			t.Errorf("workers=%d warm: SARIF bytes diverged", workers)
		}
	}
	vfg.ResetSummaryCache()
}

// TestSARIFSuppressionsAndPolicy locks the SARIF surface for a policy
// run: rule metadata present for every referenced rule, suppressed
// findings carry an inSource suppression with the justification, and
// suppression issues surface as error-level notifications.
func TestSARIFSuppressionsAndPolicy(t *testing.T) {
	pol, ok := safeflow.BuiltinPolicy("credential-leak")
	if !ok {
		t.Fatal("builtin credential-leak missing")
	}
	src := map[string]string{"main.c": `
void serve()
{
    int pwd;
    int tok;
    pwd = getpass();
    tok = read_secret();
    log_msg(pwd); // safeflow:ignore cred-leak-log reviewed in SEC-9
    log_msg(tok); // safeflow:ignore no-such-rule bogus
}
`}
	rep, err := safeflow.Analyze("s", src, []string{"main.c"}, safeflow.Options{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	log := report.ToSARIF(rep)
	run := log.Runs[0]

	var buf bytes.Buffer
	if err := report.WriteSARIF(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if errs := sarifschema.ValidateSARIF(buf.Bytes()); len(errs) != 0 {
		t.Fatalf("SARIF does not validate: %v", errs)
	}

	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, id := range []string{"cred-leak-log", "cred-leak-send", "cred-source-getpass", "assert-safe"} {
		if !ruleIDs[id] {
			t.Errorf("rules metadata missing %q (have %v)", id, ruleIDs)
		}
	}

	var suppressed, active int
	for _, res := range run.Results {
		if len(res.Suppressions) > 0 {
			suppressed++
			s := res.Suppressions[0]
			if s.Kind != "inSource" || s.Justification != "reviewed in SEC-9" {
				t.Errorf("suppression wrong: %+v", s)
			}
		} else if res.RuleID == "cred-leak-log" {
			active++
		}
	}
	if suppressed != 1 {
		t.Errorf("got %d suppressed results, want 1", suppressed)
	}
	if active != 1 {
		t.Errorf("the unknown-rule directive must not suppress: %d active cred-leak-log results, want 1", active)
	}

	foundIssue := false
	for _, n := range run.Invocations[0].ToolExecutionNotifications {
		if n.Level == "error" && bytes.Contains([]byte(n.Message.Text), []byte("no-such-rule")) {
			foundIssue = true
		}
	}
	if !foundIssue {
		t.Error("suppression issue not surfaced as an error notification")
	}
	if run.Properties["policy"] != "credential-leak" {
		t.Errorf("run.properties.policy = %v", run.Properties["policy"])
	}
}
