package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	rep := figure2Report(t)
	var sb strings.Builder
	if err := WriteJSON(&sb, rep); err != nil {
		t.Fatal(err)
	}
	var decoded JSONReport
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if decoded.Name != "figure2" || decoded.Clean {
		t.Errorf("decoded header = %+v", decoded)
	}
	if len(decoded.Regions) != 2 || len(decoded.Warnings) != 3 || len(decoded.Errors) != 1 {
		t.Errorf("counts: regions=%d warnings=%d errors=%d",
			len(decoded.Regions), len(decoded.Warnings), len(decoded.Errors))
	}
	e := decoded.Errors[0]
	if e.Var != "output" || e.ControlOnly || len(e.Sources) < 2 {
		t.Errorf("error = %+v", e)
	}
	dataEdges := 0
	for _, s := range e.Sources {
		if s.Region != "feedback" {
			t.Errorf("source region = %+v", s)
		}
		switch s.Kind {
		case "data":
			dataEdges++
		case "control":
		default:
			t.Errorf("source kind = %q", s.Kind)
		}
	}
	if dataEdges != 2 {
		t.Errorf("data witness edges = %d, want 2 (the computeSafety reads)", dataEdges)
	}
}

func TestJSONCleanReport(t *testing.T) {
	rep := mustAnalyzeString(t, "int main() { return 0; }")
	j := ToJSON(rep)
	if !j.Clean || len(j.Warnings) != 0 || len(j.Errors) != 0 {
		t.Errorf("clean JSON = %+v", j)
	}
}
