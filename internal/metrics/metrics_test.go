package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	done := c.Phase("frontend")
	done()
	c.SetTranslationUnits(4)
	c.SetPhase3(1, 2, 3, 4, 5)
	c.ObserveGoroutines()
	if m := c.Finish(); m != nil {
		t.Fatalf("nil collector produced a snapshot: %+v", m)
	}
}

func TestCollectorSnapshot(t *testing.T) {
	c := NewCollector()
	done := c.Phase("frontend")
	time.Sleep(time.Millisecond)
	done()
	done = c.Phase("vfg")
	done()
	c.SetTranslationUnits(4)
	c.SetPhase3(7, 2, 31, 5, 26)
	m := c.Finish()

	if m.SchemaVersion != SchemaVersion {
		t.Errorf("schema version = %d, want %d", m.SchemaVersion, SchemaVersion)
	}
	if len(m.Phases) != 2 || m.Phases[0].Name != "frontend" || m.Phases[1].Name != "vfg" {
		t.Fatalf("phases = %+v", m.Phases)
	}
	if m.Phases[0].WallNS <= 0 || m.WallNS < m.Phases[0].WallNS {
		t.Errorf("timings not monotone: phase=%d total=%d", m.Phases[0].WallNS, m.WallNS)
	}
	if m.TranslationUnits != 4 || m.SCCs != 7 || m.FixpointRounds != 2 ||
		m.UnitsSolved != 31 || m.CacheHits != 5 || m.CacheMisses != 26 {
		t.Errorf("counters = %+v", m)
	}
	if m.PeakGoroutines < 1 {
		t.Errorf("peak goroutines = %d", m.PeakGoroutines)
	}
	// The snapshot is detached from the collector.
	c.Phase("late")()
	if len(m.Phases) != 2 {
		t.Error("snapshot aliases the collector's phase slice")
	}
}

func TestCanonicalizeZeroesVolatileFields(t *testing.T) {
	c := NewCollector()
	c.Phase("frontend")()
	c.SetTranslationUnits(3)
	c.SetPhase3(7, 2, 31, 5, 26)
	m := c.Finish()
	m.Canonicalize()

	if m.WallNS != 0 || m.Phases[0].WallNS != 0 || m.PeakGoroutines != 0 ||
		m.CacheHits != 0 || m.CacheMisses != 0 || m.FixpointRounds != 0 || m.UnitsSolved != 0 {
		t.Errorf("volatile fields survived canonicalization: %+v", m)
	}
	if m.SchemaVersion != SchemaVersion || m.TranslationUnits != 3 || m.SCCs != 7 ||
		m.Phases[0].Name != "frontend" {
		t.Errorf("structural fields damaged: %+v", m)
	}
	// Nil-safe.
	var nilM *RunMetrics
	nilM.Canonicalize()
}

func TestConcurrentObservations(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.ObserveGoroutines()
			}
		}()
	}
	wg.Wait()
	if m := c.Finish(); m.PeakGoroutines < 2 {
		t.Errorf("peak goroutines = %d, want >= 2 under 8 observers", m.PeakGoroutines)
	}
}

func TestJSONFieldNames(t *testing.T) {
	m := &RunMetrics{SchemaVersion: SchemaVersion, Phases: []PhaseMetrics{{Name: "vfg"}}}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"schema_version", "wall_ns", "phases", "translation_units", "sccs",
		"fixpoint_rounds", "units_solved", "cache_hits", "cache_misses", "peak_goroutines",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("JSON key %q missing (schema break — bump SchemaVersion?)", key)
		}
	}
	if len(raw) != 10 {
		t.Errorf("JSON has %d keys, want 10: %v", len(raw), raw)
	}
}
