// Service-tier counters: the fleet-facing counterpart of RunMetrics.
// RunMetrics instruments one analysis; the types here instrument the
// long-lived processes around it — the remote-cache client's circuit
// breaker and retry discipline, the daemon's single-flight dedup and
// load shedding. They share this package so every metrics surface
// (/metricsz on safeflowd and sfcached, sfload reports) speaks one
// schema.

package metrics

// Circuit-breaker states as they appear in metrics snapshots. The
// breaker protects callers from a failing remote dependency: closed is
// normal operation, open short-circuits every call to the local
// fallback tier, and half-open admits one probe at a time to test
// recovery.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// RemoteCacheStats is a point-in-time snapshot of a remote-cache
// client's counters: tier outcomes (remote hits/misses, local fallback
// traffic), the retry/backoff discipline, and every circuit-breaker
// state transition since the client was built. Cumulative except for
// BreakerState, which is the state at snapshot time.
type RemoteCacheStats struct {
	// BreakerState is one of BreakerClosed, BreakerOpen, BreakerHalfOpen.
	BreakerState string `json:"breaker_state"`
	// Breaker transition counters: closed→open trips, open→half-open
	// probes admitted, half-open→closed recoveries. A half-open probe
	// that fails counts as another BreakerOpens.
	BreakerOpens     int64 `json:"breaker_opens"`
	BreakerHalfOpens int64 `json:"breaker_half_opens"`
	BreakerCloses    int64 `json:"breaker_closes"`

	// Remote-op outcomes. RemoteCorrupt counts payloads whose checksum
	// failed after every retry (treated as a miss, never decoded).
	RemoteHits    int64 `json:"remote_hits"`
	RemoteMisses  int64 `json:"remote_misses"`
	RemoteCorrupt int64 `json:"remote_corrupt"`
	RemotePuts    int64 `json:"remote_puts"`

	// Retries counts individual re-attempts after a failed attempt;
	// Failures counts ops that exhausted their attempts; ShortCircuits
	// counts ops skipped entirely because the breaker was open.
	Retries       int64 `json:"retries"`
	Failures      int64 `json:"failures"`
	ShortCircuits int64 `json:"short_circuits"`

	// Local fallback-tier outcomes observed by the tiered backend.
	LocalHits   int64 `json:"local_hits"`
	LocalMisses int64 `json:"local_misses"`
}
