// Package metrics instruments SafeFlow analysis runs: per-phase wall
// times, pipeline shape counters (translation units, SCCs, fixpoint
// rounds, summaries solved), summary-cache hit rates, and peak goroutine
// counts. A Collector is threaded through one run; its Finish snapshot is
// embedded in reports under the versioned "metrics" JSON key.
//
// All Collector methods are safe on a nil receiver, so instrumentation
// call sites need no guards when stats collection is off.
package metrics

import (
	"runtime"
	"sync"
	"time"
)

// SchemaVersion is the version of the RunMetrics JSON shape. It is
// embedded in every snapshot; consumers must check it before relying on
// the field set. Bump it whenever a field is removed or changes meaning
// (additions are backward compatible and do not bump it).
const SchemaVersion = 1

// PhaseMetrics is the timing of one pipeline phase.
type PhaseMetrics struct {
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
}

// RunMetrics is one analysis run's instrumentation snapshot. The
// structural fields (schema version, phase names, translation units,
// SCCs) are deterministic for a given input; everything else depends on
// scheduling, cache temperature, and the host — Canonicalize zeroes
// those for byte-stable comparisons.
type RunMetrics struct {
	SchemaVersion    int            `json:"schema_version"`
	WallNS           int64          `json:"wall_ns"`
	Phases           []PhaseMetrics `json:"phases"`
	TranslationUnits int            `json:"translation_units"`
	SCCs             int            `json:"sccs"`
	FixpointRounds   int            `json:"fixpoint_rounds"`
	UnitsSolved      int            `json:"units_solved"`
	CacheHits        int            `json:"cache_hits"`
	CacheMisses      int            `json:"cache_misses"`
	// Frontend parse-cache counters (omitted from JSON when zero so the
	// schema stays backward compatible with v1 consumers).
	FrontendCacheHits   int `json:"frontend_cache_hits,omitempty"`
	FrontendCacheMisses int `json:"frontend_cache_misses,omitempty"`
	// Disk-cache tier counters (omitted from JSON when zero): hits and
	// misses observed against the persistent content-addressed store that
	// backs the parse and summary caches across process restarts.
	DiskCacheHits   int `json:"disk_cache_hits,omitempty"`
	DiskCacheMisses int `json:"disk_cache_misses,omitempty"`
	// CacheCorruptEvictions counts cache entries (parse, summary, or
	// disk) whose integrity check failed on load: each was evicted and
	// recomputed instead of poisoning the run. Omitted from JSON when
	// zero.
	CacheCorruptEvictions int `json:"cache_corrupt_evictions,omitempty"`
	// Incremental re-analysis counters (set only on session updates;
	// omitted from JSON when zero): how many functions the dependency
	// graph invalidated versus reused, how many solved units were
	// replayed from the previous run's records, and how many verify
	// restarts the run needed.
	IncrFuncsInvalidated int `json:"incr_funcs_invalidated,omitempty"`
	IncrFuncsReused      int `json:"incr_funcs_reused,omitempty"`
	IncrUnitsReplayed    int `json:"incr_units_replayed,omitempty"`
	IncrRestarts         int `json:"incr_restarts,omitempty"`
	PeakGoroutines       int `json:"peak_goroutines"`
}

// Canonicalize zeroes every execution-dependent field — wall times, the
// scheduling-sensitive solve counters, cache temperature, and goroutine
// peaks — leaving only the fields that are deterministic functions of
// the analyzed input (schema version, phase list, translation units,
// SCC count). Two runs of the same input at any worker count and cache
// state canonicalize to identical values; determinism and golden tests
// rely on this.
func (m *RunMetrics) Canonicalize() {
	if m == nil {
		return
	}
	m.WallNS = 0
	for i := range m.Phases {
		m.Phases[i].WallNS = 0
	}
	m.FixpointRounds = 0
	m.UnitsSolved = 0
	m.CacheHits = 0
	m.CacheMisses = 0
	m.FrontendCacheHits = 0
	m.FrontendCacheMisses = 0
	m.DiskCacheHits = 0
	m.DiskCacheMisses = 0
	m.CacheCorruptEvictions = 0
	m.IncrFuncsInvalidated = 0
	m.IncrFuncsReused = 0
	m.IncrUnitsReplayed = 0
	m.IncrRestarts = 0
	m.PeakGoroutines = 0
}

// Collector accumulates one run's metrics. Phase timings are recorded
// sequentially by the pipeline driver; the counters and goroutine
// observations may arrive concurrently from worker goroutines.
type Collector struct {
	mu    sync.Mutex
	m     RunMetrics
	start time.Time
}

// NewCollector starts a collector for one run.
func NewCollector() *Collector {
	c := &Collector{start: time.Now()}
	c.m.SchemaVersion = SchemaVersion
	c.ObserveGoroutines()
	return c
}

// Phase records the start of a named phase and returns the function that
// records its end; phases appear in the snapshot in call order.
func (c *Collector) Phase(name string) (done func()) {
	if c == nil {
		return func() {}
	}
	c.ObserveGoroutines()
	start := time.Now()
	return func() {
		elapsed := time.Since(start).Nanoseconds()
		c.mu.Lock()
		c.m.Phases = append(c.m.Phases, PhaseMetrics{Name: name, WallNS: elapsed})
		c.mu.Unlock()
		c.ObserveGoroutines()
	}
}

// SetTranslationUnits records the number of translation units compiled.
func (c *Collector) SetTranslationUnits(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m.TranslationUnits = n
	c.mu.Unlock()
}

// SetPhase3 records the value-flow phase's shape counters.
func (c *Collector) SetPhase3(sccs, rounds, unitsSolved, cacheHits, cacheMisses int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m.SCCs = sccs
	c.m.FixpointRounds = rounds
	c.m.UnitsSolved = unitsSolved
	c.m.CacheHits = cacheHits
	c.m.CacheMisses = cacheMisses
	c.mu.Unlock()
}

// SetIncremental records the incremental re-analysis shape counters of
// a session update.
func (c *Collector) SetIncremental(funcsInvalidated, funcsReused, unitsReplayed, restarts int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m.IncrFuncsInvalidated = funcsInvalidated
	c.m.IncrFuncsReused = funcsReused
	c.m.IncrUnitsReplayed = unitsReplayed
	c.m.IncrRestarts = restarts
	c.mu.Unlock()
}

// AddFrontendCache accumulates parse-cache hit/miss counts; translation
// units report concurrently from the frontend worker pool.
func (c *Collector) AddFrontendCache(hits, misses int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m.FrontendCacheHits += hits
	c.m.FrontendCacheMisses += misses
	c.mu.Unlock()
}

// AddDiskCache accumulates persistent-cache hit/miss counts; the parse
// and summary caches report concurrently when a disk tier is attached.
func (c *Collector) AddDiskCache(hits, misses int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m.DiskCacheHits += hits
	c.m.DiskCacheMisses += misses
	c.mu.Unlock()
}

// AddCacheCorruptEvictions counts cache entries evicted because their
// integrity check failed on load; the caches report concurrently.
func (c *Collector) AddCacheCorruptEvictions(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m.CacheCorruptEvictions += n
	c.mu.Unlock()
}

// ObserveGoroutines samples the process goroutine count into the peak.
// Workers call it as they start so the peak reflects real concurrency.
func (c *Collector) ObserveGoroutines() {
	if c == nil {
		return
	}
	n := runtime.NumGoroutine()
	c.mu.Lock()
	if n > c.m.PeakGoroutines {
		c.m.PeakGoroutines = n
	}
	c.mu.Unlock()
}

// Finish closes the run and returns the snapshot. Nil-safe: a nil
// collector yields a nil snapshot (stats collection was off).
func (c *Collector) Finish() *RunMetrics {
	if c == nil {
		return nil
	}
	c.ObserveGoroutines()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.WallNS = time.Since(c.start).Nanoseconds()
	snap := c.m
	snap.Phases = append([]PhaseMetrics(nil), c.m.Phases...)
	return &snap
}
