// Package remotecache puts the diskcache.CacheBackend contract on the
// wire: a Client speaks a minimal content-addressed HTTP protocol to an
// sfcached server, so a fleet of safeflowd replicas shares one
// persistent store — a translation unit parsed (or a module summary
// solved) by any replica is a hit for every other.
//
// The remote tier inherits the cache discipline the local store already
// keeps (DESIGN.md §7): it is an accelerator, never a source of record.
// Every failure mode a network dependency adds — outage, slowness,
// corruption in transit — degrades to a miss, never to an error or a
// changed report. Concretely:
//
//   - every op runs under its own timeout, so a slow server costs
//     bounded latency, not a hung analysis;
//   - failed ops are retried a bounded number of times with
//     exponential backoff and full jitter, so transient faults heal
//     without synchronized retry storms;
//   - a circuit breaker counts consecutive failures and trips open on
//     sustained ones: while open, every op short-circuits straight to
//     the local tier, and after a cooldown a single half-open probe
//     tests recovery before traffic resumes;
//   - every payload is integrity-checked against the SHA-256 the
//     server recorded (carried in the sumHeader); a mismatch is
//     retried as a transient fault and, if it persists, reported as a
//     corrupt miss so the caller recomputes.
//
// Tiered composes the Client over a local CacheBackend (normally the
// process's diskcache.Store): reads try local first and fill it on a
// remote hit, writes go to both, and any remote misbehavior leaves
// exactly the local behavior — byte-identical reports, verified by the
// fault-injection harness.
package remotecache

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"safeflow/internal/diskcache"
	"safeflow/internal/metrics"
)

// Protocol: one entry per URL.
//
//	GET /v1/e/{ns}/{version}/{key}  200 payload (+ sumHeader) | 404 miss
//	PUT /v1/e/{ns}/{version}/{key}  204 stored; sumHeader, when sent,
//	                                is verified server-side so a body
//	                                corrupted in transit is rejected
//	                                (400) instead of stored
//
// ns is a short lowercase namespace ("parse", "summary"), version the
// caller's codec version, key the lowercase hex SHA-256 content key.
const sumHeader = "X-Safeflow-Sum"

// Config tunes a Client. The zero value of every field selects a
// production default.
type Config struct {
	// BaseURL locates the sfcached server, e.g. "http://10.0.0.7:8788".
	BaseURL string
	// OpTimeout bounds each individual HTTP attempt. Default 2s.
	OpTimeout time.Duration
	// MaxRetries is how many times a failed attempt is retried (so an op
	// makes at most MaxRetries+1 attempts). 0 means the default of 2;
	// negative disables retries.
	MaxRetries int
	// RetryBase and RetryMax shape the backoff: the delay before retry n
	// is drawn uniformly from [0, min(RetryBase·2ⁿ, RetryMax)] (full
	// jitter). Defaults 50ms and 1s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker open. Default 5.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe. Default 5s.
	Cooldown time.Duration
	// HalfOpenProbes is how many consecutive probe successes close the
	// breaker again. Default 1.
	HalfOpenProbes int
	// Transport overrides the HTTP transport (fault-injection hook).
	Transport http.RoundTripper
	// Sleep overrides the backoff sleep (test hook; nil = time.Sleep).
	Sleep func(time.Duration)
	// Jitter overrides the backoff draw (test hook; nil = uniform
	// [0, max) from math/rand).
	Jitter func(max time.Duration) time.Duration
}

func (c Config) withDefaults() Config {
	if c.OpTimeout <= 0 {
		c.OpTimeout = 2 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Jitter == nil {
		c.Jitter = defaultJitter
	}
	return c
}

var jitterMu sync.Mutex

// defaultJitter draws uniformly from [0, max). math/rand's global
// source is locked internally but rand.Int63n panics on 0.
func defaultJitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return time.Duration(rand.Int63n(int64(max)))
}

// Client implements diskcache.CacheBackend against an sfcached server.
// Safe for concurrent use. A Client never returns an error to the
// analysis: every failure is a miss.
type Client struct {
	cfg  Config
	base string
	http *http.Client
	br   *breaker

	remoteHits    atomic.Int64
	remoteMisses  atomic.Int64
	remoteCorrupt atomic.Int64
	remotePuts    atomic.Int64
	retries       atomic.Int64
	failures      atomic.Int64
	shortCircuits atomic.Int64
}

// New builds a client for cfg. The BaseURL is required; everything else
// defaults.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	base := strings.TrimSuffix(cfg.BaseURL, "/")
	if base == "" || (!strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://")) {
		return nil, fmt.Errorf("remotecache: base URL %q must be http(s)://host:port", cfg.BaseURL)
	}
	return &Client{
		cfg:  cfg,
		base: base,
		http: &http.Client{Transport: cfg.Transport},
		br:   newBreaker(cfg.FailureThreshold, cfg.Cooldown, cfg.HalfOpenProbes, nil),
	}, nil
}

func (c *Client) url(ns string, version uint32, key [sha256.Size]byte) string {
	return fmt.Sprintf("%s/v1/e/%s/%d/%s", c.base, ns, version, hex.EncodeToString(key[:]))
}

// opStatus is one attempt's classified outcome.
type opStatus int

const (
	opHit     opStatus = iota // 200 with verified payload / 204 stored
	opMiss                    // authoritative 404 — do not retry
	opFailure                 // transport error, 5xx, checksum mismatch — retry
)

// Get implements CacheBackend. A breaker-open short circuit, an
// exhausted retry budget, and an authoritative 404 all return a miss;
// corrupt is set only when the last failure was a checksum mismatch, so
// the caller counts the eviction and recomputes.
func (c *Client) Get(ns string, version uint32, key [sha256.Size]byte) (data []byte, ok bool, corrupt bool) {
	payload, status, corrupt := c.do(http.MethodGet, ns, version, key, nil)
	switch status {
	case opHit:
		c.remoteHits.Add(1)
		return payload, true, false
	case opMiss:
		c.remoteMisses.Add(1)
		return nil, false, false
	default:
		if corrupt {
			c.remoteCorrupt.Add(1)
		}
		return nil, false, corrupt
	}
}

// Put implements CacheBackend: best effort, silent on failure, same
// retry and breaker discipline as Get.
func (c *Client) Put(ns string, version uint32, key [sha256.Size]byte, data []byte) {
	if _, status, _ := c.do(http.MethodPut, ns, version, key, data); status == opHit {
		c.remotePuts.Add(1)
	}
}

// do runs one op — attempts with backoff under the breaker.
func (c *Client) do(method, ns string, version uint32, key [sha256.Size]byte, body []byte) (payload []byte, status opStatus, corrupt bool) {
	proceed, probe := c.br.allow()
	if !proceed {
		c.shortCircuits.Add(1)
		return nil, opFailure, false
	}
	for attempt := 0; ; attempt++ {
		payload, status, corrupt = c.attempt(method, ns, version, key, body)
		if status != opFailure {
			c.br.record(true, probe)
			return payload, status, false
		}
		if attempt >= c.cfg.MaxRetries {
			c.failures.Add(1)
			c.br.record(false, probe)
			return nil, opFailure, corrupt
		}
		c.retries.Add(1)
		c.cfg.Sleep(c.backoff(attempt))
	}
}

// backoff computes the full-jitter delay before retry attempt n.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.RetryBase << uint(attempt)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	return c.cfg.Jitter(d)
}

// attempt is one HTTP round trip under the per-op timeout.
func (c *Client) attempt(method, ns string, version uint32, key [sha256.Size]byte, body []byte) (payload []byte, status opStatus, corrupt bool) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.OpTimeout)
	defer cancel()
	var rd io.Reader
	if method == http.MethodPut {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(ns, version, key), rd)
	if err != nil {
		return nil, opFailure, false
	}
	if method == http.MethodPut {
		sum := sha256.Sum256(body)
		req.Header.Set(sumHeader, hex.EncodeToString(sum[:]))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, opFailure, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, opMiss, false
	case resp.StatusCode == http.StatusNoContent && method == http.MethodPut:
		return nil, opHit, false
	case resp.StatusCode == http.StatusOK && method == http.MethodGet:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, opFailure, false
		}
		// Verify against the server-recorded checksum; a mismatch is
		// corruption in transit (or a lying server) — never decode it.
		sum := sha256.Sum256(data)
		if resp.Header.Get(sumHeader) != hex.EncodeToString(sum[:]) {
			return nil, opFailure, true
		}
		return data, opHit, false
	default:
		return nil, opFailure, false
	}
}

// Snapshot returns the client's counters and breaker state.
func (c *Client) Snapshot() metrics.RemoteCacheStats {
	var st metrics.RemoteCacheStats
	c.br.snapshot(&st)
	st.RemoteHits = c.remoteHits.Load()
	st.RemoteMisses = c.remoteMisses.Load()
	st.RemoteCorrupt = c.remoteCorrupt.Load()
	st.RemotePuts = c.remotePuts.Load()
	st.Retries = c.retries.Load()
	st.Failures = c.failures.Load()
	st.ShortCircuits = c.shortCircuits.Load()
	return st
}

// Tiered is the production composition: local disk tier first, remote
// tier behind it. It implements diskcache.CacheBackend and is what
// safeflowd mounts as Options.DiskCache when -remote-cache is set.
type Tiered struct {
	remote *Client
	local  diskcache.CacheBackend // may be nil (remote-only)

	localHits   atomic.Int64
	localMisses atomic.Int64
}

// NewTiered composes the remote client over a local backend. local may
// be nil, leaving a remote-only cache (still never an error source).
func NewTiered(remote *Client, local diskcache.CacheBackend) *Tiered {
	return &Tiered{remote: remote, local: local}
}

// Get tries the local tier, then the remote; a remote hit back-fills
// the local tier so the fallback stays warm for the next breaker trip.
// corrupt aggregates both tiers' integrity failures (each tier already
// evicted its own bad entry).
func (t *Tiered) Get(ns string, version uint32, key [sha256.Size]byte) ([]byte, bool, bool) {
	var localCorrupt bool
	if t.local != nil {
		data, ok, corrupt := t.local.Get(ns, version, key)
		if ok {
			t.localHits.Add(1)
			return data, true, false
		}
		t.localMisses.Add(1)
		localCorrupt = corrupt
	}
	data, ok, remoteCorrupt := t.remote.Get(ns, version, key)
	if ok {
		if t.local != nil {
			t.local.Put(ns, version, key, data)
		}
		return data, true, localCorrupt
	}
	return nil, false, localCorrupt || remoteCorrupt
}

// Put writes through to both tiers; the local write lands first so the
// entry survives even when the remote tier is down.
func (t *Tiered) Put(ns string, version uint32, key [sha256.Size]byte, data []byte) {
	if t.local != nil {
		t.local.Put(ns, version, key, data)
	}
	t.remote.Put(ns, version, key, data)
}

// Snapshot merges the client counters with the tier's local-side view.
func (t *Tiered) Snapshot() metrics.RemoteCacheStats {
	st := t.remote.Snapshot()
	st.LocalHits = t.localHits.Load()
	st.LocalMisses = t.localMisses.Load()
	return st
}
