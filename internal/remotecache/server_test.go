package remotecache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func doReq(t *testing.T, h http.Handler, method, path string, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestServerEntryLifecycle(t *testing.T) {
	store := newStore(t)
	h := NewServer(store).Handler()
	keyHex := strings.Repeat("ab", sha256.Size)
	path := "/v1/e/parse/1/" + keyHex
	payload := []byte("entry payload")
	sum := sha256.Sum256(payload)

	if w := doReq(t, h, http.MethodGet, path, nil, nil); w.Code != http.StatusNotFound {
		t.Fatalf("cold GET: %d", w.Code)
	}
	put := doReq(t, h, http.MethodPut, path, payload,
		map[string]string{sumHeader: hex.EncodeToString(sum[:])})
	if put.Code != http.StatusNoContent {
		t.Fatalf("PUT: %d: %s", put.Code, put.Body)
	}
	got := doReq(t, h, http.MethodGet, path, nil, nil)
	if got.Code != http.StatusOK || !bytes.Equal(got.Body.Bytes(), payload) {
		t.Fatalf("GET: %d %q", got.Code, got.Body)
	}
	if got.Header().Get(sumHeader) != hex.EncodeToString(sum[:]) {
		t.Errorf("GET sum header = %q", got.Header().Get(sumHeader))
	}
	if store.Len("parse") != 1 {
		t.Errorf("store entries = %d", store.Len("parse"))
	}
}

func TestServerRejectsBadPathsAndChecksums(t *testing.T) {
	store := newStore(t)
	h := NewServer(store).Handler()
	keyHex := strings.Repeat("cd", sha256.Size)

	bad := []string{
		"/v1/e/Parse/1/" + keyHex,           // uppercase namespace
		"/v1/e/parse/x/" + keyHex,           // non-numeric version
		"/v1/e/parse/1/deadbeef",            // short key
		"/v1/e/parse/99999999999/" + keyHex, // version overflows uint32
	}
	for _, p := range bad {
		if w := doReq(t, h, http.MethodGet, p, nil, nil); w.Code != http.StatusBadRequest {
			t.Errorf("GET %s: %d, want 400", p, w.Code)
		}
	}

	// A PUT whose body does not match its declared checksum is refused
	// and nothing is stored.
	w := doReq(t, h, http.MethodPut, "/v1/e/parse/1/"+keyHex, []byte("torn body"),
		map[string]string{sumHeader: strings.Repeat("00", sha256.Size)})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("mismatched PUT: %d", w.Code)
	}
	if store.Len("parse") != 0 {
		t.Fatal("mismatched PUT was stored")
	}

	var st ServerStats
	mz := doReq(t, h, http.MethodGet, "/metricsz", nil, nil)
	if err := json.Unmarshal(mz.Body.Bytes(), &st); err != nil {
		t.Fatalf("metricsz: %v", err)
	}
	if st.BadRequests != int64(len(bad)) || st.PutRejected != 1 {
		t.Errorf("bad=%d rejected=%d, want %d/1", st.BadRequests, st.PutRejected, len(bad))
	}
}
