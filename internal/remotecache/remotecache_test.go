package remotecache

import (
	"bytes"
	"crypto/sha256"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"safeflow/internal/diskcache"
	"safeflow/internal/metrics"
)

// testConfig returns a config with no real sleeping and no jitter so
// retry behavior is deterministic and fast.
func testConfig(url string) Config {
	return Config{
		BaseURL: url,
		Sleep:   func(time.Duration) {},
		Jitter:  func(max time.Duration) time.Duration { return max },
	}
}

func newStore(t *testing.T) *diskcache.Store {
	t.Helper()
	st, err := diskcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func key(b byte) (k [sha256.Size]byte) {
	k[0] = b
	return k
}

func TestClientRoundTrip(t *testing.T) {
	srv := httptest.NewServer(NewServer(newStore(t)).Handler())
	defer srv.Close()
	c, err := New(testConfig(srv.URL))
	if err != nil {
		t.Fatal(err)
	}

	if _, ok, corrupt := c.Get("parse", 1, key(1)); ok || corrupt {
		t.Fatalf("cold get = (%v,%v), want miss", ok, corrupt)
	}
	payload := []byte("cached payload bytes")
	c.Put("parse", 1, key(1), payload)
	data, ok, corrupt := c.Get("parse", 1, key(1))
	if !ok || corrupt || !bytes.Equal(data, payload) {
		t.Fatalf("get after put = (%q,%v,%v)", data, ok, corrupt)
	}
	// A different version of the same key is a miss (the server-side
	// store evicts the stale entry).
	if _, ok, _ := c.Get("parse", 2, key(1)); ok {
		t.Fatal("version-mismatched get hit")
	}

	st := c.Snapshot()
	if st.RemoteHits != 1 || st.RemotePuts != 1 || st.RemoteMisses != 2 {
		t.Errorf("stats = %+v, want 1 hit, 1 put, 2 misses", st)
	}
	if st.BreakerState != metrics.BreakerClosed || st.Retries != 0 {
		t.Errorf("healthy path touched the failure machinery: %+v", st)
	}
}

// flakyTransport fails the first n round trips at the transport level,
// then forwards to base.
type flakyTransport struct {
	remaining atomic.Int64
	base      http.RoundTripper
	calls     atomic.Int64
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.calls.Add(1)
	if f.remaining.Add(-1) >= 0 {
		return nil, &net_OpError{}
	}
	return f.base.RoundTrip(req)
}

// net_OpError stands in for a transport failure without importing net.
type net_OpError struct{}

func (*net_OpError) Error() string { return "injected transport failure" }

func TestClientRetriesTransientFailure(t *testing.T) {
	srv := httptest.NewServer(NewServer(newStore(t)).Handler())
	defer srv.Close()
	ft := &flakyTransport{base: http.DefaultTransport}
	cfg := testConfig(srv.URL)
	cfg.Transport = ft
	cfg.MaxRetries = 2
	var slept []time.Duration
	cfg.Sleep = func(d time.Duration) { slept = append(slept, d) }
	cfg.RetryBase = 10 * time.Millisecond
	cfg.RetryMax = 15 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	c.Put("summary", 1, key(2), []byte("v"))
	ft.remaining.Store(2) // next two attempts fail, third succeeds
	data, ok, corrupt := c.Get("summary", 1, key(2))
	if !ok || corrupt || string(data) != "v" {
		t.Fatalf("retried get = (%q,%v,%v)", data, ok, corrupt)
	}
	st := c.Snapshot()
	if st.Retries != 2 || st.Failures != 0 {
		t.Errorf("retries=%d failures=%d, want 2/0", st.Retries, st.Failures)
	}
	// Jitter hook returns max, so the slept delays are the capped
	// exponential schedule itself: base, then min(2·base, max).
	want := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("backoff schedule = %v, want %v", slept, want)
	}
}

func TestClientOutageTripsBreakerAndRecovers(t *testing.T) {
	srv := httptest.NewServer(NewServer(newStore(t)).Handler())
	defer srv.Close()
	ft := &flakyTransport{base: http.DefaultTransport}
	cfg := testConfig(srv.URL)
	cfg.Transport = ft
	cfg.MaxRetries = -1 // one attempt per op
	cfg.FailureThreshold = 2
	cfg.Cooldown = 10 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ft.remaining.Store(1 << 30) // sustained outage
	for i := 0; i < 2; i++ {
		if _, ok, _ := c.Get("parse", 1, key(3)); ok {
			t.Fatal("outage get hit")
		}
	}
	st := c.Snapshot()
	if st.BreakerState != metrics.BreakerOpen || st.BreakerOpens != 1 {
		t.Fatalf("after outage: %+v", st)
	}

	// Open: ops short-circuit without touching the transport.
	before := ft.calls.Load()
	if _, ok, _ := c.Get("parse", 1, key(3)); ok {
		t.Fatal("short-circuited get hit")
	}
	if ft.calls.Load() != before {
		t.Fatal("open breaker still reached the transport")
	}
	if st := c.Snapshot(); st.ShortCircuits == 0 {
		t.Fatal("short circuit not counted")
	}

	// Recovery: outage ends, cooldown passes, one probe closes it.
	ft.remaining.Store(0)
	time.Sleep(15 * time.Millisecond)
	c.Put("parse", 1, key(3), []byte("healed"))
	st = c.Snapshot()
	if st.BreakerState != metrics.BreakerClosed || st.BreakerHalfOpens != 1 || st.BreakerCloses != 1 {
		t.Fatalf("after recovery: %+v", st)
	}
	if data, ok, _ := c.Get("parse", 1, key(3)); !ok || string(data) != "healed" {
		t.Fatalf("post-recovery get = (%q,%v)", data, ok)
	}
}

// corruptingTransport flips a byte in every GET response body, leaving
// the checksum header intact — corruption in transit.
type corruptingTransport struct{ base http.RoundTripper }

func (ct *corruptingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := ct.base.RoundTrip(req)
	if err != nil || req.Method != http.MethodGet || resp.StatusCode != http.StatusOK {
		return resp, err
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	b := buf.Bytes()
	if len(b) > 0 {
		b[0] ^= 0xff
	}
	resp.Body = readCloser{bytes.NewReader(b)}
	return resp, nil
}

type readCloser struct{ *bytes.Reader }

func (readCloser) Close() error { return nil }

func TestClientDetectsTransitCorruption(t *testing.T) {
	store := newStore(t)
	srv := httptest.NewServer(NewServer(store).Handler())
	defer srv.Close()
	cfg := testConfig(srv.URL)
	cfg.Transport = &corruptingTransport{base: http.DefaultTransport}
	cfg.MaxRetries = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("parse", 1, key(4), []byte("pristine"))
	data, ok, corrupt := c.Get("parse", 1, key(4))
	if ok || !corrupt || data != nil {
		t.Fatalf("corrupted get = (%q,%v,%v), want corrupt miss", data, ok, corrupt)
	}
	st := c.Snapshot()
	if st.RemoteCorrupt != 1 || st.Retries != 1 {
		t.Errorf("corrupt=%d retries=%d, want 1/1", st.RemoteCorrupt, st.Retries)
	}
	// The server-side entry itself is intact: a clean transport reads it.
	clean, err := New(testConfig(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	if data, ok, _ := clean.Get("parse", 1, key(4)); !ok || string(data) != "pristine" {
		t.Fatalf("entry damaged at rest: (%q,%v)", data, ok)
	}
}

func TestTieredLocalFirstAndBackfill(t *testing.T) {
	store := newStore(t)
	srv := httptest.NewServer(NewServer(store).Handler())
	defer srv.Close()
	ft := &flakyTransport{base: http.DefaultTransport}
	cfg := testConfig(srv.URL)
	cfg.Transport = ft
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	local := newStore(t)
	tiered := NewTiered(c, local)

	// Put writes through to both tiers.
	tiered.Put("parse", 1, key(5), []byte("both"))
	if n := local.Len("parse"); n != 1 {
		t.Fatalf("local entries after put: %d", n)
	}
	if n := store.Len("parse"); n != 1 {
		t.Fatalf("remote entries after put: %d", n)
	}

	// A local hit never touches the transport.
	before := ft.calls.Load()
	if data, ok, _ := tiered.Get("parse", 1, key(5)); !ok || string(data) != "both" {
		t.Fatalf("tiered get = (%q,%v)", data, ok)
	}
	if ft.calls.Load() != before {
		t.Error("local hit reached the remote")
	}

	// Remote-only entry: local miss, remote hit, local back-fill.
	c.Put("parse", 1, key(6), []byte("remote-only"))
	if data, ok, _ := tiered.Get("parse", 1, key(6)); !ok || string(data) != "remote-only" {
		t.Fatalf("remote-backed get = (%q,%v)", data, ok)
	}
	if n := local.Len("parse"); n != 2 {
		t.Fatalf("local entries after back-fill: %d", n)
	}
	// The refilled entry now serves without the remote.
	ft.remaining.Store(1 << 30)
	if data, ok, _ := tiered.Get("parse", 1, key(6)); !ok || string(data) != "remote-only" {
		t.Fatalf("back-filled get during outage = (%q,%v)", data, ok)
	}

	st := tiered.Snapshot()
	if st.LocalHits != 2 || st.LocalMisses != 1 {
		t.Errorf("local hits=%d misses=%d, want 2/1", st.LocalHits, st.LocalMisses)
	}
}

func TestNewRejectsBadURL(t *testing.T) {
	for _, u := range []string{"", "localhost:1", "ftp://x"} {
		if _, err := New(Config{BaseURL: u}); err == nil {
			t.Errorf("New(%q) accepted", u)
		}
	}
}
