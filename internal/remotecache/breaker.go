package remotecache

import (
	"sync"
	"time"

	"safeflow/internal/metrics"
)

// breaker is the client's circuit breaker. Closed, every remote op
// proceeds and consecutive failures are counted; at the failure
// threshold the breaker opens and every op short-circuits to the local
// tier for the cooldown interval. After the cooldown the next op is
// admitted as a half-open probe — exactly one at a time — and its
// outcome decides the next state: enough consecutive probe successes
// close the breaker, any probe failure reopens it for another cooldown.
//
// The breaker never makes an op fail: callers that are refused fall
// back to the local tier, so a tripped breaker converts remote latency
// into a local cache lookup.
type breaker struct {
	threshold int
	cooldown  time.Duration
	probes    int // half-open successes required to close

	now func() time.Time

	mu          sync.Mutex
	state       string // metrics.BreakerClosed / BreakerOpen / BreakerHalfOpen
	consecFails int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight
	probeOKs    int

	opens     int64
	halfOpens int64
	closes    int64
}

func newBreaker(threshold int, cooldown time.Duration, probes int, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		probes:    probes,
		now:       now,
		state:     metrics.BreakerClosed,
	}
}

// allow reports whether a remote op may proceed right now; probe is
// true when the op is the half-open trial whose outcome gates closing.
func (b *breaker) allow() (proceed, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case metrics.BreakerClosed:
		return true, false
	case metrics.BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = metrics.BreakerHalfOpen
		b.halfOpens++
		b.probing = true
		b.probeOKs = 0
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// record feeds one op's outcome back. probe must be the value allow
// returned for the op.
func (b *breaker) record(success, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	switch b.state {
	case metrics.BreakerClosed:
		if success {
			b.consecFails = 0
			return
		}
		b.consecFails++
		if b.consecFails >= b.threshold {
			b.trip()
		}
	case metrics.BreakerHalfOpen:
		if !probe {
			// An op admitted before the trip finished late; its outcome
			// must not decide the probe sequence.
			return
		}
		if !success {
			b.trip()
			return
		}
		b.probeOKs++
		if b.probeOKs >= b.probes {
			b.state = metrics.BreakerClosed
			b.consecFails = 0
			b.closes++
		}
	}
}

// trip moves to open and starts the cooldown clock. Caller holds mu.
func (b *breaker) trip() {
	b.state = metrics.BreakerOpen
	b.openedAt = b.now()
	b.consecFails = 0
	b.probeOKs = 0
	b.opens++
}

// snapshot fills the breaker fields of a stats snapshot.
func (b *breaker) snapshot(st *metrics.RemoteCacheStats) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st.BreakerState = b.state
	st.BreakerOpens = b.opens
	st.BreakerHalfOpens = b.halfOpens
	st.BreakerCloses = b.closes
}
