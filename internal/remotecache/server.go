package remotecache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync/atomic"
	"time"

	"safeflow/internal/diskcache"
)

// MaxEntryBytes bounds one cached payload on the wire; anything larger
// is refused rather than buffered (no real parse or summary entry comes
// close).
const MaxEntryBytes = 64 << 20

var nsPattern = regexp.MustCompile(`^[a-z][a-z0-9_-]{0,31}$`)

// ServerStats is sfcached's /metricsz payload.
type ServerStats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	Gets        int64 `json:"gets"`
	GetHits     int64 `json:"get_hits"`
	GetMisses   int64 `json:"get_misses"`
	Puts        int64 `json:"puts"`
	PutRejected int64 `json:"put_rejected"` // checksum mismatch / oversize
	BadRequests int64 `json:"bad_requests"`

	Store diskcache.Stats `json:"store"`
}

// Server serves the remote-cache protocol over a diskcache.Store: the
// process half of sfcached. The store carries all integrity discipline
// (checksums, atomic writes, LRU bounds); the server adds only the wire
// mapping and request counters.
type Server struct {
	store *diskcache.Store
	start time.Time

	gets        atomic.Int64
	getHits     atomic.Int64
	getMisses   atomic.Int64
	puts        atomic.Int64
	putRejected atomic.Int64
	badRequests atomic.Int64
}

// NewServer wraps store; mount Handler on an HTTP server.
func NewServer(store *diskcache.Store) *Server {
	return &Server{store: store, start: time.Now()}
}

// Handler returns the sfcached mux: the entry routes plus /healthz and
// /metricsz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/e/{ns}/{version}/{key}", s.handleGet)
	mux.HandleFunc("PUT /v1/e/{ns}/{version}/{key}", s.handlePut)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("{\"status\":\"ok\"}\n"))
	})
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	return mux
}

// entryPath validates and decodes the {ns}/{version}/{key} wildcards.
func (s *Server) entryPath(w http.ResponseWriter, r *http.Request) (ns string, version uint32, key [sha256.Size]byte, ok bool) {
	ns = r.PathValue("ns")
	v64, err := strconv.ParseUint(r.PathValue("version"), 10, 32)
	raw, kerr := hex.DecodeString(r.PathValue("key"))
	if !nsPattern.MatchString(ns) || err != nil || kerr != nil || len(raw) != sha256.Size {
		s.badRequests.Add(1)
		http.Error(w, "bad entry path", http.StatusBadRequest)
		return "", 0, key, false
	}
	copy(key[:], raw)
	return ns, uint32(v64), key, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	ns, version, key, ok := s.entryPath(w, r)
	if !ok {
		return
	}
	s.gets.Add(1)
	data, hit, _ := s.store.Get(ns, version, key)
	if !hit {
		// Misses and corrupt evictions both surface as 404: the store
		// already evicted and counted a bad entry, and the client's only
		// recovery is to recompute either way.
		s.getMisses.Add(1)
		http.NotFound(w, r)
		return
	}
	s.getHits.Add(1)
	sum := sha256.Sum256(data)
	w.Header().Set(sumHeader, hex.EncodeToString(sum[:]))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	ns, version, key, ok := s.entryPath(w, r)
	if !ok {
		return
	}
	s.puts.Add(1)
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxEntryBytes))
	if err != nil {
		s.putRejected.Add(1)
		http.Error(w, "body unreadable or over size bound", http.StatusBadRequest)
		return
	}
	// A client-supplied checksum lets us refuse bodies corrupted in
	// transit instead of storing them (the store would happily record a
	// checksum over the already-bad bytes).
	if want := r.Header.Get(sumHeader); want != "" {
		sum := sha256.Sum256(data)
		if want != hex.EncodeToString(sum[:]) {
			s.putRejected.Add(1)
			http.Error(w, "payload checksum mismatch", http.StatusBadRequest)
			return
		}
	}
	s.store.Put(ns, version, key, data)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	st := ServerStats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Gets:          s.gets.Load(),
		GetHits:       s.getHits.Load(),
		GetMisses:     s.getMisses.Load(),
		Puts:          s.puts.Load(),
		PutRejected:   s.putRejected.Load(),
		BadRequests:   s.badRequests.Load(),
		Store:         s.store.Snapshot(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}
