package remotecache

import (
	"testing"
	"time"

	"safeflow/internal/metrics"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(3, 5*time.Second, 1, clk.now)

	// Closed: ops proceed; failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		ok, probe := b.allow()
		if !ok || probe {
			t.Fatalf("closed allow #%d = (%v,%v)", i, ok, probe)
		}
		b.record(false, probe)
	}
	if got := state(b); got != metrics.BreakerClosed {
		t.Fatalf("after 2 failures: %s", got)
	}
	// A success resets the consecutive count.
	ok, probe := b.allow()
	b.record(true, probe)
	_ = ok
	for i := 0; i < 3; i++ {
		_, probe := b.allow()
		b.record(false, probe)
	}
	if got := state(b); got != metrics.BreakerOpen {
		t.Fatalf("after threshold failures: %s", got)
	}

	// Open: short-circuit until the cooldown elapses.
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker admitted an op inside the cooldown")
	}
	clk.advance(5 * time.Second)
	ok, probe = b.allow()
	if !ok || !probe {
		t.Fatalf("post-cooldown allow = (%v,%v), want probe", ok, probe)
	}
	if got := state(b); got != metrics.BreakerHalfOpen {
		t.Fatalf("post-cooldown state: %s", got)
	}
	// Half-open admits one probe at a time.
	if ok, _ := b.allow(); ok {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe failure reopens.
	b.record(false, probe)
	if got := state(b); got != metrics.BreakerOpen {
		t.Fatalf("after failed probe: %s", got)
	}

	// Recovery: cooldown, probe succeeds, breaker closes.
	clk.advance(5 * time.Second)
	_, probe = b.allow()
	b.record(true, probe)
	if got := state(b); got != metrics.BreakerClosed {
		t.Fatalf("after successful probe: %s", got)
	}

	var st metrics.RemoteCacheStats
	b.snapshot(&st)
	if st.BreakerOpens != 2 || st.BreakerHalfOpens != 2 || st.BreakerCloses != 1 {
		t.Errorf("transitions = opens %d half %d closes %d, want 2/2/1",
			st.BreakerOpens, st.BreakerHalfOpens, st.BreakerCloses)
	}
}

func TestBreakerHalfOpenNeedsAllProbes(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(1, time.Second, 2, clk.now)
	_, probe := b.allow()
	b.record(false, probe)
	clk.advance(time.Second)
	for i := 0; i < 2; i++ {
		ok, probe := b.allow()
		if !ok || !probe {
			t.Fatalf("probe %d not admitted", i)
		}
		b.record(true, probe)
		want := metrics.BreakerHalfOpen
		if i == 1 {
			want = metrics.BreakerClosed
		}
		if got := state(b); got != want {
			t.Fatalf("after probe %d: %s, want %s", i, got, want)
		}
	}
}

// TestBreakerLateResultIgnored pins the half-open rule: an op admitted
// while closed that completes after the trip must not close the breaker.
func TestBreakerLateResultIgnored(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(1, time.Second, 1, clk.now)
	okEarly, probeEarly := b.allow() // closed-era op, completes late
	if !okEarly || probeEarly {
		t.Fatal("setup")
	}
	_, p := b.allow()
	b.record(false, p) // trips open
	clk.advance(time.Second)
	if _, probe := b.allow(); !probe {
		t.Fatal("expected half-open probe")
	}
	b.record(true, probeEarly) // the stale success arrives
	if got := state(b); got != metrics.BreakerHalfOpen {
		t.Fatalf("stale success changed state to %s", got)
	}
}

func state(b *breaker) string {
	var st metrics.RemoteCacheStats
	b.snapshot(&st)
	return st.BreakerState
}
