// Package dyntaint implements the run-time alternative to SafeFlow that
// the paper's introduction argues against: tracking the core/non-core
// provenance of every value during execution and trapping unmonitored
// uses at the moment they happen. It exists to quantify the argument —
// the ablation benchmarks compare a control loop built on tracked values
// against the plain loop that static analysis makes safe for free.
package dyntaint

import (
	"fmt"

	"safeflow/internal/plant"
)

// Label is a provenance bitset.
type Label uint8

// Provenance labels.
const (
	// LabelNonCore marks values influenced by non-core components.
	LabelNonCore Label = 1 << iota
	// LabelUnmonitored marks non-core influence that has not passed a
	// monitor.
	LabelUnmonitored
)

// Tainted reports whether the label carries unmonitored non-core
// provenance.
func (l Label) Tainted() bool { return l&LabelUnmonitored != 0 }

// Value is a float64 with provenance.
type Value struct {
	V float64
	L Label
}

// Core wraps a core-produced float.
func Core(v float64) Value { return Value{V: v} }

// NonCore wraps a value read from a non-core component (unmonitored until
// a monitor clears it).
func NonCore(v float64) Value {
	return Value{V: v, L: LabelNonCore | LabelUnmonitored}
}

// Monitored marks the value as having passed a run-time monitor: the
// non-core provenance remains but is no longer unmonitored.
func (a Value) Monitored() Value {
	a.L &^= LabelUnmonitored
	return a
}

// Add returns a+b with joined provenance.
func Add(a, b Value) Value { return Value{V: a.V + b.V, L: a.L | b.L} }

// Sub returns a-b with joined provenance.
func Sub(a, b Value) Value { return Value{V: a.V - b.V, L: a.L | b.L} }

// Mul returns a*b with joined provenance.
func Mul(a, b Value) Value { return Value{V: a.V * b.V, L: a.L | b.L} }

// Scale returns k*a preserving provenance.
func Scale(k float64, a Value) Value { return Value{V: k * a.V, L: a.L} }

// ErrUnmonitored is reported when an unmonitored non-core value reaches a
// critical sink.
type ErrUnmonitored struct {
	Sink string
}

// Error implements the error interface.
func (e *ErrUnmonitored) Error() string {
	return fmt.Sprintf("dyntaint: unmonitored non-core value reached critical sink %q", e.Sink)
}

// CheckCritical enforces the safe-value-flow property at a critical sink
// (the run-time analogue of assert(safe(x))).
func CheckCritical(sink string, v Value) error {
	if v.L.Tainted() {
		return &ErrUnmonitored{Sink: sink}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Tracked control loop (for the ablation benchmark)

// TrackedLoop is a Simplex-style decision step implemented over tracked
// values: every arithmetic op pays the provenance bookkeeping.
type TrackedLoop struct {
	KSafe []float64
	P     plant.Mat
	Ad    plant.Mat
	Bd    plant.Mat
	C     float64
	UMax  float64
}

// Step computes one control period: safety output from core state,
// monitor check on the non-core proposal, critical-sink check on the
// dispatched output. Returns the output value.
func (l *TrackedLoop) Step(x []float64, noncoreU float64) (float64, error) {
	// Safety output: core-only arithmetic, tracked.
	safe := Core(0)
	for i, k := range l.KSafe {
		safe = Sub(safe, Scale(k, Core(x[i])))
	}

	// Monitor the non-core proposal.
	proposal := NonCore(noncoreU)
	u := safe
	if l.recoverable(x, proposal.V) {
		u = proposal.Monitored()
	}

	if err := CheckCritical("actuator", u); err != nil {
		return 0, err
	}
	return u.V, nil
}

func (l *TrackedLoop) recoverable(x []float64, u float64) bool {
	if u > l.UMax || u < -l.UMax || u != u {
		return false
	}
	xn := plant.VecAdd(l.Ad.MulVec(x), l.Bd.MulVec([]float64{u}))
	return l.P.Quad(xn) <= l.C
}

// PlainLoop is the identical decision step over raw float64s — what the
// statically-verified system runs (zero provenance overhead).
type PlainLoop struct {
	KSafe []float64
	P     plant.Mat
	Ad    plant.Mat
	Bd    plant.Mat
	C     float64
	UMax  float64
}

// Step computes one control period without provenance tracking.
func (l *PlainLoop) Step(x []float64, noncoreU float64) float64 {
	safe := 0.0
	for i, k := range l.KSafe {
		safe -= k * x[i]
	}
	u := safe
	if l.recoverable(x, noncoreU) {
		u = noncoreU
	}
	return u
}

func (l *PlainLoop) recoverable(x []float64, u float64) bool {
	if u > l.UMax || u < -l.UMax || u != u {
		return false
	}
	xn := plant.VecAdd(l.Ad.MulVec(x), l.Bd.MulVec([]float64{u}))
	return l.P.Quad(xn) <= l.C
}
