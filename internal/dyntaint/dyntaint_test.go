package dyntaint

import (
	"math"
	"strings"
	"testing"

	"safeflow/internal/plant"
)

func TestProvenancePropagation(t *testing.T) {
	a := Core(1.0)
	b := NonCore(2.0)
	sum := Add(a, b)
	if !sum.L.Tainted() {
		t.Error("core+noncore must be tainted")
	}
	if sum.V != 3.0 {
		t.Errorf("value = %v", sum.V)
	}
	prod := Mul(Core(2), Core(3))
	if prod.L.Tainted() || prod.V != 6 {
		t.Errorf("core*core = %+v", prod)
	}
	d := Sub(Scale(2, b), a)
	if !d.L.Tainted() || d.V != 3 {
		t.Errorf("scale/sub = %+v", d)
	}
}

func TestMonitoredClearsUnmonitoredOnly(t *testing.T) {
	v := NonCore(0.5).Monitored()
	if v.L.Tainted() {
		t.Error("monitored value still tainted")
	}
	if v.L&LabelNonCore == 0 {
		t.Error("non-core provenance must survive monitoring")
	}
}

func TestCheckCritical(t *testing.T) {
	if err := CheckCritical("actuator", Core(1)); err != nil {
		t.Errorf("core value rejected: %v", err)
	}
	err := CheckCritical("actuator", NonCore(1))
	if err == nil {
		t.Fatal("unmonitored value accepted at critical sink")
	}
	if !strings.Contains(err.Error(), "actuator") {
		t.Errorf("error = %v", err)
	}
	if err := CheckCritical("actuator", NonCore(1).Monitored()); err != nil {
		t.Errorf("monitored value rejected: %v", err)
	}
}

func loops(t *testing.T) (*PlainLoop, *TrackedLoop, []float64) {
	t.Helper()
	p := plant.DefaultPendulum()
	A, B := p.Linearize()
	ad, bd := plant.Discretize(A, B, 0.01)
	k, err := plant.DLQR(ad, bd, plant.Eye(4), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	kMat := plant.NewMat(1, 4)
	for j, v := range k {
		kMat.Set(0, j, v)
	}
	pl, err := plant.DLyap(ad.Sub(bd.Mul(kMat)), plant.Eye(4))
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.01, 0, 0.05, 0}
	c := pl.Quad(x) * 4
	return &PlainLoop{KSafe: k, P: pl, Ad: ad, Bd: bd, C: c, UMax: 20},
		&TrackedLoop{KSafe: k, P: pl, Ad: ad, Bd: bd, C: c, UMax: 20},
		x
}

func TestTrackedMatchesPlain(t *testing.T) {
	plain, tracked, x := loops(t)
	for _, proposal := range []float64{0, 0.3, -0.3, 5, -5, 100, math.NaN()} {
		want := plain.Step(x, proposal)
		got, err := tracked.Step(x, proposal)
		if err != nil {
			t.Fatalf("tracked step errored on %v: %v", proposal, err)
		}
		if got != want {
			t.Errorf("proposal %v: tracked %v != plain %v", proposal, got, want)
		}
	}
}

func TestTrackedRejectsUnmonitoredDispatch(t *testing.T) {
	// Corrupt the monitor so the proposal reaches the sink unmonitored:
	// simulate by constructing the value directly.
	u := NonCore(0.3)
	if err := CheckCritical("actuator", u); err == nil {
		t.Error("run-time tracking failed to trap the unmonitored dispatch")
	}
}

func TestMonitorRejectsOutOfEnvelope(t *testing.T) {
	plain, tracked, x := loops(t)
	// A huge proposal must fall back to the safety output in both loops.
	safeU := plain.Step(x, 1e9)
	trackedU, err := tracked.Step(x, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if trackedU != safeU {
		t.Errorf("fallback mismatch: %v vs %v", trackedU, safeU)
	}
	// And the fallback is the pure safety-controller output.
	want := 0.0
	for i, k := range plain.KSafe {
		want -= k * x[i]
	}
	if math.Abs(safeU-want) > 1e-12 {
		t.Errorf("fallback = %v, want safety output %v", safeU, want)
	}
}
