// Package diag defines the structured diagnostics of the recovering
// front end. Where the fail-stop pipeline aborts a whole system on the
// first lex/parse/typecheck error, the recovering pipeline records one
// Diagnostic per failure, skips the translation unit it is attributed
// to, and analyzes the rest — the diagnostics travel with the report so
// a degraded run states exactly which units were dropped and why.
package diag

import (
	"fmt"
	"sort"

	"safeflow/internal/ctoken"
)

// Phases a diagnostic can be attributed to, in pipeline order.
const (
	PhasePreprocess = "preprocess"
	PhaseLex        = "lex"
	PhaseParse      = "parse"
	PhaseTypecheck  = "typecheck"
	PhaseLower      = "lower"
	PhaseInternal   = "internal" // recovered panic while compiling the unit
)

// phaseRank orders phases for sorting; unknown phases sort last.
func phaseRank(p string) int {
	switch p {
	case PhasePreprocess:
		return 0
	case PhaseLex:
		return 1
	case PhaseParse:
		return 2
	case PhaseTypecheck:
		return 3
	case PhaseLower:
		return 4
	case PhaseInternal:
		return 5
	}
	return 6
}

// Diagnostic is one recorded front-end failure: the translation unit it
// caused to be skipped, the position of the failure (zero when the
// failure has no precise location, e.g. a missing include), the pipeline
// phase that rejected the unit, and the underlying message.
type Diagnostic struct {
	Unit  string
	Pos   ctoken.Pos
	Phase string
	Msg   string
}

// String implements fmt.Stringer.
func (d Diagnostic) String() string {
	if d.Pos.IsValid() {
		return fmt.Sprintf("%s: [%s] %s: %s", d.Unit, d.Phase, d.Pos, d.Msg)
	}
	return fmt.Sprintf("%s: [%s] %s", d.Unit, d.Phase, d.Msg)
}

// Less is the total order on diagnostics: unit, then phase (pipeline
// order), then position, then message — so sorted diagnostic lists are
// byte-identical regardless of worker count or discovery order.
func Less(a, b Diagnostic) bool {
	if a.Unit != b.Unit {
		return a.Unit < b.Unit
	}
	if ra, rb := phaseRank(a.Phase), phaseRank(b.Phase); ra != rb {
		return ra < rb
	}
	if a.Pos != b.Pos {
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Col < b.Pos.Col
	}
	return a.Msg < b.Msg
}

// Sort orders diagnostics by Less.
func Sort(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool { return Less(ds[i], ds[j]) })
}

// Units returns the sorted, deduplicated unit names the diagnostics are
// attributed to (the skipped translation units of a degraded run).
func Units(ds []Diagnostic) []string {
	seen := make(map[string]bool, len(ds))
	var out []string
	for _, d := range ds {
		if !seen[d.Unit] {
			seen[d.Unit] = true
			out = append(out, d.Unit)
		}
	}
	sort.Strings(out)
	return out
}
