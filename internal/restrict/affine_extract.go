// Affine extraction for the A2 checks: decomposing SSA integer values into
// affine expressions over symbolic atoms (loop induction phis, parameters,
// loads), recognizing induction patterns, and harvesting the branch
// conditions that dominate an access.

package restrict

import (
	"safeflow/internal/affine"
	"safeflow/internal/cfgraph"
	"safeflow/internal/ir"
)

// extractor maps SSA values to affine expressions over a per-function atom
// numbering.
type extractor struct {
	fn    *ir.Function
	atoms map[ir.Value]affine.Var
	memo  map[ir.Value]affineResult
	next  affine.Var
	// induction records init/step for atoms that are induction phis.
	induction map[affine.Var]inductionInfo
}

type inductionInfo struct {
	init int64
	step int64
}

type affineResult struct {
	expr affine.Expr
	ok   bool
}

func newExtractor(fn *ir.Function) *extractor {
	return &extractor{
		fn:        fn,
		atoms:     make(map[ir.Value]affine.Var),
		memo:      make(map[ir.Value]affineResult),
		induction: make(map[affine.Var]inductionInfo),
	}
}

func (e *extractor) atomFor(v ir.Value) affine.Var {
	if a, ok := e.atoms[v]; ok {
		return a
	}
	e.next++
	e.atoms[v] = e.next
	if phi, isPhi := v.(*ir.Phi); isPhi {
		if info, isInd := inductionPattern(phi); isInd {
			e.induction[e.next] = info
		}
	}
	return e.next
}

// affineOf decomposes v; ok is false when v is not affine over atoms.
func (e *extractor) affineOf(v ir.Value) (affine.Expr, bool) {
	if r, ok := e.memo[v]; ok {
		return r.expr, r.ok
	}
	// Pre-mark to cut cycles through phis: a self-referential value is its
	// own atom.
	e.memo[v] = affineResult{expr: affine.NewVarExpr(e.atomFor(v)), ok: true}
	expr, ok := e.decompose(v)
	e.memo[v] = affineResult{expr: expr, ok: ok}
	return expr, ok
}

func (e *extractor) decompose(v ir.Value) (affine.Expr, bool) {
	switch x := v.(type) {
	case *ir.ConstInt:
		return affine.NewExpr(x.Val), true
	case *ir.BinOp:
		switch x.Op {
		case ir.Add:
			a, ok1 := e.affineOf(x.X)
			b, ok2 := e.affineOf(x.Y)
			if ok1 && ok2 {
				return a.Add(b), true
			}
		case ir.Sub:
			a, ok1 := e.affineOf(x.X)
			b, ok2 := e.affineOf(x.Y)
			if ok1 && ok2 {
				return a.Sub(b), true
			}
		case ir.Mul:
			if c, isC := x.X.(*ir.ConstInt); isC {
				if b, ok := e.affineOf(x.Y); ok {
					return b.Scale(c.Val), true
				}
			}
			if c, isC := x.Y.(*ir.ConstInt); isC {
				if a, ok := e.affineOf(x.X); ok {
					return a.Scale(c.Val), true
				}
			}
		case ir.Shl:
			if c, isC := x.Y.(*ir.ConstInt); isC && c.Val >= 0 && c.Val < 31 {
				if a, ok := e.affineOf(x.X); ok {
					return a.Scale(int64(1) << uint(c.Val)), true
				}
			}
		}
		return affine.Expr{}, false
	case *ir.Cast:
		switch x.Kind {
		case ir.Ext, ir.Trunc:
			return e.affineOf(x.X)
		}
		return affine.NewVarExpr(e.atomFor(v)), true
	case *ir.Phi, *ir.Param, *ir.Load, *ir.Call, *ir.Cmp:
		return affine.NewVarExpr(e.atomFor(v)), true
	default:
		return affine.Expr{}, false
	}
}

// inductionConstraints adds the monotonicity facts of recognized induction
// variables: a positive step bounds the variable below by its initial
// value; a negative step bounds it above.
func (e *extractor) inductionConstraints(sys *affine.System) {
	for v, info := range e.induction {
		switch {
		case info.step > 0:
			sys.Add(affine.GE(affine.NewVarExpr(v), affine.NewExpr(info.init)))
		case info.step < 0:
			sys.Add(affine.LE(affine.NewVarExpr(v), affine.NewExpr(info.init)))
		}
	}
}

// inductionPattern matches phi(init const, phi±const) loops.
func inductionPattern(phi *ir.Phi) (inductionInfo, bool) {
	if len(phi.Edges) != 2 {
		return inductionInfo{}, false
	}
	match := func(initV, stepV ir.Value) (inductionInfo, bool) {
		init, isConst := initV.(*ir.ConstInt)
		if !isConst {
			return inductionInfo{}, false
		}
		bo, isBin := stepV.(*ir.BinOp)
		if !isBin {
			return inductionInfo{}, false
		}
		var step int64
		switch {
		case bo.Op == ir.Add && bo.X == ir.Value(phi):
			c, ok := bo.Y.(*ir.ConstInt)
			if !ok {
				return inductionInfo{}, false
			}
			step = c.Val
		case bo.Op == ir.Add && bo.Y == ir.Value(phi):
			c, ok := bo.X.(*ir.ConstInt)
			if !ok {
				return inductionInfo{}, false
			}
			step = c.Val
		case bo.Op == ir.Sub && bo.X == ir.Value(phi):
			c, ok := bo.Y.(*ir.ConstInt)
			if !ok {
				return inductionInfo{}, false
			}
			step = -c.Val
		default:
			return inductionInfo{}, false
		}
		return inductionInfo{init: init.Val, step: step}, true
	}
	if info, ok := match(phi.Edges[0].Val, phi.Edges[1].Val); ok {
		return info, true
	}
	return match(phi.Edges[1].Val, phi.Edges[0].Val)
}

// ---------------------------------------------------------------------------
// Dominating guards

// guardIndex finds, per block, the conditional branches whose outcome is
// pinned on every path to the block (via the dominator tree: an ancestor's
// branch constrains B when exactly one successor of the ancestor
// dominates B).
type guardIndex struct {
	dt *cfgraph.DomTree
}

func newGuardIndex(fn *ir.Function) *guardIndex {
	return &guardIndex{dt: cfgraph.NewDomTree(fn)}
}

// constraintsFor adds the affine constraints implied by the guards of
// block b to sys.
func (gi *guardIndex) constraintsFor(b *ir.Block, ext *extractor, sys *affine.System) {
	seen := make(map[*ir.Block]bool)
	cur := b
	for {
		d := gi.dt.IDom(cur)
		if d == nil || d == cur || seen[d] {
			return
		}
		seen[d] = true
		if br, ok := d.Term().(*ir.Br); ok && br.Cond != nil && br.Then != br.Else {
			thenDom := gi.dt.Dominates(br.Then, b)
			elseDom := gi.dt.Dominates(br.Else, b)
			if thenDom != elseDom {
				addCmpConstraint(br.Cond, thenDom, ext, sys)
			}
		}
		cur = d
	}
}

// addCmpConstraint turns "cmp taken/not-taken" into linear constraints
// when both operands are affine.
func addCmpConstraint(cond ir.Value, taken bool, ext *extractor, sys *affine.System) {
	cmp, ok := cond.(*ir.Cmp)
	if !ok {
		return
	}
	a, ok1 := ext.affineOf(cmp.X)
	b, ok2 := ext.affineOf(cmp.Y)
	if !ok1 || !ok2 {
		return
	}
	op := cmp.Op
	if !taken {
		op = negateCmp(op)
	}
	switch op {
	case ir.LT:
		sys.Add(affine.LT(a, b))
	case ir.LE:
		sys.Add(affine.LE(a, b))
	case ir.GT:
		sys.Add(affine.GT(a, b))
	case ir.GE:
		sys.Add(affine.GE(a, b))
	case ir.EQ:
		sys.Add(affine.EQ(a, b)...)
	case ir.NE:
		// A disjunction; no single linear constraint. Skip (sound: fewer
		// constraints only weakens infeasibility proofs).
	}
}

func negateCmp(op ir.CmpKind) ir.CmpKind {
	switch op {
	case ir.EQ:
		return ir.NE
	case ir.NE:
		return ir.EQ
	case ir.LT:
		return ir.GE
	case ir.LE:
		return ir.GT
	case ir.GT:
		return ir.LE
	case ir.GE:
		return ir.LT
	}
	return op
}
