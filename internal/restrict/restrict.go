// Package restrict implements phase 2 of the SafeFlow analysis: the
// language restrictions on shared-memory pointer usage (paper §3.2).
//
//	P1: shared memory is not deallocated before the end of main;
//	P2: shared-memory pointers are never aliased through memory (no
//	    address-taking, no stores of shm pointers, no rebasing the region
//	    globals outside initializing functions);
//	P3: no casts between incompatible shm pointer types and no
//	    pointer<->integer casts on shm pointers;
//	A1: constant indices into shm arrays are within bounds;
//	A2: variable (loop) indices into shm arrays are provably-affine and
//	    provably in bounds, checked by generating affine constraints from
//	    dominating guards and induction patterns and asking the
//	    Fourier–Motzkin solver (the Omega stand-in) for infeasibility of
//	    the out-of-bounds conditions.
//
// Initializing functions (shminit) are exempt, exactly as in the paper:
// untyped SysV allocation forces pointer casts and arithmetic there.
package restrict

import (
	"fmt"

	"safeflow/internal/affine"
	"safeflow/internal/ctoken"
	"safeflow/internal/ctypes"
	"safeflow/internal/ir"
	"safeflow/internal/shmflow"
)

// Rule identifies which restriction a violation breaks.
type Rule string

// Restriction rules.
const (
	RuleP1 Rule = "P1"
	RuleP2 Rule = "P2"
	RuleP3 Rule = "P3"
	RuleA1 Rule = "A1"
	RuleA2 Rule = "A2"
)

// Violation is one restriction violation.
type Violation struct {
	Rule Rule
	Fn   *ir.Function
	Pos  ctoken.Pos
	Msg  string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s: restriction %s violated in %s: %s", v.Pos, v.Rule, v.Fn.Name, v.Msg)
}

// Check runs all restriction checks over the module.
func Check(m *ir.Module, sf *shmflow.Result) []Violation {
	c := &checker{m: m, sf: sf}
	for _, f := range m.Funcs {
		if f.IsDecl || sf.InitFuncs[f] {
			continue
		}
		c.checkFunction(f)
	}
	return c.out
}

type checker struct {
	m   *ir.Module
	sf  *shmflow.Result
	out []Violation
}

func (c *checker) report(rule Rule, f *ir.Function, pos ctoken.Pos, format string, args ...any) {
	c.out = append(c.out, Violation{Rule: rule, Fn: f, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) isShm(f *ir.Function, v ir.Value) bool { return c.sf.IsShmPointer(f, v) }

func (c *checker) isRegionGlobal(v ir.Value) *shmflow.Region {
	g, ok := v.(*ir.Global)
	if !ok {
		return nil
	}
	return c.sf.RegionByName[g.Name]
}

func (c *checker) checkFunction(f *ir.Function) {
	var guards *guardIndex // built lazily; only array checks need it
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch x := in.(type) {
			case *ir.Call:
				c.checkCall(f, x)
			case *ir.Store:
				c.checkStore(f, x)
			case *ir.Cast:
				c.checkCast(f, x)
			case *ir.GEP:
				if c.needsArrayCheck(f, x) {
					if guards == nil {
						guards = newGuardIndex(f)
					}
					c.checkArrayAccess(f, x, guards)
				}
			}
			// P2(b): the address of a region global escaping into any use
			// other than load/store addressing.
			c.checkRegionGlobalEscape(f, in)
		}
	}
}

// ---------------------------------------------------------------------------
// P1: deallocation

var deallocFuncs = map[string]bool{"shmdt": true, "shmctl": true}

func (c *checker) checkCall(f *ir.Function, call *ir.Call) {
	if !deallocFuncs[call.Callee.Name] {
		return
	}
	involvesShm := false
	for _, a := range call.Args {
		if c.isShm(f, a) {
			involvesShm = true
		}
	}
	if call.Callee.Name == "shmctl" {
		// shmctl(id, IPC_RMID, ...) destroys the segment; the id is an int,
		// so flag every shmctl in the analyzed component conservatively.
		involvesShm = true
	}
	if !involvesShm {
		return
	}
	if f.Name == "main" && atFunctionEnd(call) {
		return // detaching at the end of main is the one permitted pattern
	}
	c.report(RuleP1, f, call.Pos(),
		"shared memory deallocated via %s before the end of main", call.Callee.Name)
}

// atFunctionEnd reports whether every instruction after call in its block
// is another deallocation or an exit, and the block ends in ret.
func atFunctionEnd(call *ir.Call) bool {
	b := call.Parent()
	seen := false
	for _, in := range b.Instrs {
		if in == call {
			seen = true
			continue
		}
		if !seen {
			continue
		}
		switch x := in.(type) {
		case *ir.Call:
			if !deallocFuncs[x.Callee.Name] && x.Callee.Name != "exit" {
				return false
			}
		case *ir.Ret:
			return true
		default:
			return false
		}
	}
	_, isRet := b.Term().(*ir.Ret)
	return isRet
}

// ---------------------------------------------------------------------------
// P2: aliasing through memory

func (c *checker) checkStore(f *ir.Function, st *ir.Store) {
	if c.isShm(f, st.Val) {
		c.report(RuleP2, f, st.Pos(),
			"pointer to shared memory stored to memory (aliasing shm pointers is disallowed)")
	}
	if reg := c.isRegionGlobal(st.Addr); reg != nil {
		c.report(RuleP2, f, st.Pos(),
			"shared-memory variable %q reassigned outside its initializing function", reg.Name)
	}
}

func (c *checker) checkRegionGlobalEscape(f *ir.Function, in ir.Instr) {
	for _, op := range in.Operands() {
		reg := c.isRegionGlobal(op)
		if reg == nil {
			continue
		}
		switch x := in.(type) {
		case *ir.Load:
			// Reading the region pointer is the intended use.
		case *ir.Store:
			// Handled by checkStore (Addr case); the Val case means the
			// *address* of the global escapes.
			if x.Val == op {
				c.report(RuleP2, f, in.Pos(),
					"address of shared-memory variable %q stored to memory", reg.Name)
			}
		default:
			c.report(RuleP2, f, in.Pos(),
				"address of shared-memory variable %q taken (used by %T)", reg.Name, in)
		}
	}
}

// ---------------------------------------------------------------------------
// P3: casts

func (c *checker) checkCast(f *ir.Function, x *ir.Cast) {
	if !c.isShm(f, x.X) {
		return
	}
	switch x.Kind {
	case ir.PtrToInt:
		c.report(RuleP3, f, x.Pos(), "pointer to shared memory cast to integer")
	case ir.Bitcast:
		if !ctypes.Compatible(x.X.Type(), x.To) {
			c.report(RuleP3, f, x.Pos(),
				"pointer to shared memory cast between incompatible types (%s to %s)",
				x.X.Type(), x.To)
		}
	}
}

// ---------------------------------------------------------------------------
// A1/A2: array indexing

// needsArrayCheck reports whether the GEP indexes shared memory with at
// least one element-index step (constant or not).
func (c *checker) needsArrayCheck(f *ir.Function, g *ir.GEP) bool {
	if !c.isShm(f, g.Base) {
		return false
	}
	for _, ix := range g.Indices {
		if ix.Index != nil {
			if ci, isConst := ix.Index.(*ir.ConstInt); !isConst || ci.Val != 0 {
				return true
			}
		}
	}
	return false
}

// checkArrayAccess verifies A1 (constant) and A2 (affine/loop) bounds for
// one shm GEP: the resulting byte range must stay within each region the
// base may reference, and inner array steps must stay within the array.
func (c *checker) checkArrayAccess(f *ir.Function, g *ir.GEP, guards *guardIndex) {
	ext := newExtractor(f)

	cur := g.Base.Type()
	for _, ix := range g.Indices {
		p, ok := cur.(*ctypes.Pointer)
		if !ok {
			return
		}
		switch {
		case ix.Index == nil:
			st, ok := p.Elem.(*ctypes.Struct)
			if !ok || ix.Field >= len(st.Fields) {
				return
			}
			cur = &ctypes.Pointer{Elem: st.Fields[ix.Field].Type}
		default:
			arr, isArr := p.Elem.(*ctypes.Array)
			var limit int64
			var elem ctypes.Type
			if isArr {
				limit = arr.Len
				elem = arr.Elem
				cur = &ctypes.Pointer{Elem: arr.Elem}
			} else {
				// Pointer-step into the region itself: bound by region size
				// in elements (checked per region below when exact).
				elem = p.Elem
				limit = -1
			}
			c.checkIndex(f, g, ix.Index, limit, elem, ext, guards)
		}
	}
}

// checkIndex checks 0 <= idx < limit. limit < 0 means "bounded by the
// smallest region size in elements".
func (c *checker) checkIndex(f *ir.Function, g *ir.GEP, idx ir.Value, limit int64, elem ctypes.Type, ext *extractor, guards *guardIndex) {
	if limit < 0 {
		lim := int64(-1)
		for reg := range c.sf.FactOf(f, g.Base) {
			n := reg.Size / max64(elem.Size(), 1)
			if lim < 0 || n < lim {
				lim = n
			}
		}
		if lim < 0 {
			return
		}
		limit = lim
	}

	if ci, isConst := idx.(*ir.ConstInt); isConst {
		if ci.Val < 0 || ci.Val >= limit {
			c.report(RuleA1, f, g.Pos(),
				"constant index %d outside shared-memory array bounds [0,%d)", ci.Val, limit)
		}
		return
	}

	// A2: the index must be affine over recognized atoms.
	expr, ok := ext.affineOf(idx)
	if !ok {
		c.report(RuleA2, f, g.Pos(),
			"shared-memory array index is not a provably-affine expression of loop variables")
		return
	}

	sys := &affine.System{}
	guards.constraintsFor(g.Parent(), ext, sys)
	ext.inductionConstraints(sys)

	under := sys.Clone()
	under.Add(affine.LE(expr, affine.NewExpr(-1))) // idx <= -1
	over := sys.Clone()
	over.Add(affine.GE(expr, affine.NewExpr(limit))) // idx >= limit

	if !under.Infeasible() {
		c.report(RuleA2, f, g.Pos(),
			"shared-memory array index not provably non-negative")
	}
	if !over.Infeasible() {
		c.report(RuleA2, f, g.Pos(),
			"shared-memory array index not provably below bound %d", limit)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
