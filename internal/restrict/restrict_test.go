package restrict

import (
	"strings"
	"testing"

	"safeflow/internal/callgraph"
	"safeflow/internal/frontend"
	"safeflow/internal/shmflow"
)

const preamble = `
typedef struct { double vals[8]; int n; int pad; } Buf;

Buf *shared;

void initComm()
/***SafeFlow Annotation shminit /***/
{
	void *base;
	base = shmat(shmget(1, sizeof(Buf), 0), 0, 0);
	shared = (Buf *) base;
	/***SafeFlow Annotation assume(shmvar(shared, sizeof(Buf))) /***/
	/***SafeFlow Annotation assume(noncore(shared)) /***/
}
`

func check(t *testing.T, src string) []Violation {
	t.Helper()
	res, err := frontend.CompileString("t", src, frontend.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cg := callgraph.New(res.Module)
	sf := shmflow.Analyze(res.Module, cg)
	if len(sf.Errors) > 0 {
		t.Fatalf("shmflow: %v", sf.Errors)
	}
	return Check(res.Module, sf)
}

func wantRule(t *testing.T, vs []Violation, rule Rule, substr string) {
	t.Helper()
	for _, v := range vs {
		if v.Rule == rule && strings.Contains(v.Msg, substr) {
			return
		}
	}
	t.Errorf("no %s violation containing %q in %v", rule, substr, vs)
}

func wantClean(t *testing.T, vs []Violation) {
	t.Helper()
	if len(vs) != 0 {
		t.Errorf("unexpected violations: %v", vs)
	}
}

func TestP1Deallocation(t *testing.T) {
	vs := check(t, preamble+`
void cleanup() { shmdt(shared); }
int main() { initComm(); cleanup(); return 0; }
`)
	wantRule(t, vs, RuleP1, "deallocated")
}

func TestP1EndOfMainAllowed(t *testing.T) {
	vs := check(t, preamble+`
int main()
{
	initComm();
	shmdt(shared);
	return 0;
}
`)
	wantClean(t, vs)
}

func TestP1EarlyInMainRejected(t *testing.T) {
	vs := check(t, preamble+`
int main()
{
	initComm();
	shmdt(shared);
	printf("still running\n");
	return 0;
}
`)
	wantRule(t, vs, RuleP1, "deallocated")
}

func TestP2StoreShmPointer(t *testing.T) {
	vs := check(t, preamble+`
Buf *stash;
void alias()
{
	Buf **pp;
	pp = &stash;
	*pp = shared;
}
int main() { initComm(); alias(); return 0; }
`)
	wantRule(t, vs, RuleP2, "stored to memory")
}

func TestP2RegionGlobalReassigned(t *testing.T) {
	vs := check(t, preamble+`
void rebase() { shared = shared + 1; }
int main() { initComm(); rebase(); return 0; }
`)
	wantRule(t, vs, RuleP2, "reassigned")
}

func TestP2AddressOfRegionGlobal(t *testing.T) {
	vs := check(t, preamble+`
void escape(Buf **out) { *out = *(&shared); }
int main()
{
	Buf *copy;
	initComm();
	escape(&copy);
	return 0;
}
`)
	if len(vs) == 0 {
		t.Errorf("taking the address of a region global must violate P2")
	}
}

func TestP3IncompatibleCast(t *testing.T) {
	vs := check(t, preamble+`
typedef struct { long words[5]; } Other;
long reinterpret()
{
	Other *o;
	o = (Other *) shared;
	return o->words[0];
}
int main() { initComm(); return (int) reinterpret(); }
`)
	wantRule(t, vs, RuleP3, "incompatible")
}

func TestP3PtrToInt(t *testing.T) {
	vs := check(t, preamble+`
long leak() { return (long) shared; }
int main() { initComm(); return (int) leak(); }
`)
	wantRule(t, vs, RuleP3, "cast to integer")
}

func TestP3VoidAndCharCastsAllowed(t *testing.T) {
	vs := check(t, preamble+`
void benign()
{
	void *v;
	char *c;
	v = (void *) shared;
	c = (char *) shared;
	memset(v, 0, 1);
	printf("%s", c);
}
int main() { initComm(); benign(); return 0; }
`)
	// Storing to v/c locals is fine (they are promoted scalars, but even
	// unpromoted: storing an shm pointer value is P2)... the casts
	// themselves are compatible, but the stores of shm-pointer values into
	// locals happen pre-promotion. After mem2reg no stores remain.
	for _, v := range vs {
		if v.Rule == RuleP3 {
			t.Errorf("benign cast flagged: %v", v)
		}
	}
}

func TestA1ConstantInBounds(t *testing.T) {
	vs := check(t, preamble+`
double readOk() { return shared->vals[3]; }
int main() { initComm(); return (int) readOk(); }
`)
	wantClean(t, vs)
}

func TestA1ConstantOutOfBounds(t *testing.T) {
	vs := check(t, preamble+`
double readBad() { return shared->vals[8]; }
int main() { initComm(); return (int) readBad(); }
`)
	wantRule(t, vs, RuleA1, "outside")
}

func TestA2GuardedLoopAccepted(t *testing.T) {
	vs := check(t, preamble+`
double sum()
{
	int i;
	double acc;
	acc = 0.0;
	for (i = 0; i < 8; i++) {
		acc += shared->vals[i];
	}
	return acc;
}
int main() { initComm(); return (int) sum(); }
`)
	wantClean(t, vs)
}

func TestA2LooseBoundRejected(t *testing.T) {
	vs := check(t, preamble+`
double sum()
{
	int i;
	double acc;
	acc = 0.0;
	for (i = 0; i < 9; i++) {
		acc += shared->vals[i];
	}
	return acc;
}
int main() { initComm(); return (int) sum(); }
`)
	wantRule(t, vs, RuleA2, "below bound")
}

func TestA2SymbolicBoundRejected(t *testing.T) {
	// The bound comes from shm data — not provably within the array.
	vs := check(t, preamble+`
double sum(int n)
{
	int i;
	double acc;
	acc = 0.0;
	for (i = 0; i < n; i++) {
		acc += shared->vals[i];
	}
	return acc;
}
int main() { initComm(); return (int) sum(8); }
`)
	wantRule(t, vs, RuleA2, "below bound")
}

func TestA2GuardedSymbolicAccepted(t *testing.T) {
	// A dominating guard n <= 8 makes the symbolic loop provable.
	vs := check(t, preamble+`
double sum(int n)
{
	int i;
	double acc;
	acc = 0.0;
	if (n > 8) {
		return 0.0;
	}
	for (i = 0; i < n; i++) {
		acc += shared->vals[i];
	}
	return acc;
}
int main() { initComm(); return (int) sum(8); }
`)
	wantClean(t, vs)
}

func TestA2NegativeStartRejected(t *testing.T) {
	vs := check(t, preamble+`
double sum()
{
	int i;
	double acc;
	acc = 0.0;
	for (i = -1; i < 8; i++) {
		acc += shared->vals[i];
	}
	return acc;
}
int main() { initComm(); return (int) sum(); }
`)
	wantRule(t, vs, RuleA2, "non-negative")
}

func TestA2NonAffineRejected(t *testing.T) {
	vs := check(t, preamble+`
double pick(int i)
{
	return shared->vals[i % 8];
}
int main() { initComm(); return (int) pick(11); }
`)
	wantRule(t, vs, RuleA2, "affine")
}

func TestA2AffineTransformAccepted(t *testing.T) {
	// vals[2*i + 1] for i in [0,3] touches 1,3,5,7 — provably in bounds.
	vs := check(t, preamble+`
double strided()
{
	int i;
	double acc;
	acc = 0.0;
	for (i = 0; i < 4; i++) {
		acc += shared->vals[2 * i + 1];
	}
	return acc;
}
int main() { initComm(); return (int) strided(); }
`)
	wantClean(t, vs)
}

func TestInitFunctionExempt(t *testing.T) {
	// All the pointer casts and arithmetic inside shminit must pass.
	vs := check(t, preamble+`
int main() { initComm(); return 0; }
`)
	wantClean(t, vs)
}

func TestViolationString(t *testing.T) {
	vs := check(t, preamble+`
long leak() { return (long) shared; }
int main() { initComm(); return (int) leak(); }
`)
	if len(vs) == 0 {
		t.Fatal("expected a violation")
	}
	s := vs[0].String()
	if !strings.Contains(s, "P3") || !strings.Contains(s, "leak") {
		t.Errorf("violation string = %q", s)
	}
}
