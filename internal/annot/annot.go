// Package annot parses the SafeFlow annotation language embedded in C
// comments. The grammar (paper §3.1, §3.2.1, §3.4.3) is:
//
//	annotation := "assume" "(" fact ")"
//	            | "assert" "(" "safe" "(" ident ")" ")"
//	            | "shminit"
//	fact       := "core" "(" ident "," size "," size ")"
//	            | "shmvar" "(" ident "," size ")"
//	            | "noncore" "(" ident ")"
//	size       := size "+" size | size "*" size | integer | "sizeof" "(" type-name ")"
//
// Size expressions are resolved to byte counts with a TypeSizer supplied by
// the caller (the semantic analyzer knows struct and typedef sizes).
package annot

import (
	"fmt"
	"strconv"
	"strings"
)

// TypeSizer resolves a type name appearing inside sizeof(...) to its byte
// size.
type TypeSizer interface {
	SizeofType(name string) (int64, bool)
}

// TypeSizerFunc adapts a function to the TypeSizer interface.
type TypeSizerFunc func(name string) (int64, bool)

// SizeofType implements TypeSizer.
func (f TypeSizerFunc) SizeofType(name string) (int64, bool) { return f(name) }

// Fact is one parsed annotation.
type Fact interface {
	fact()
	String() string
}

// CoreFact is assume(core(ptr, offset, size)): within the annotated
// monitoring function (and its callees), the shared-memory locations
// reachable from ptr in [offset, offset+size) may be treated as core.
type CoreFact struct {
	Ptr    string
	Offset int64
	Size   int64
}

// ShmInitFact marks an initializing function (shminit).
type ShmInitFact struct{}

// ShmVarFact is assume(shmvar(ptr, size)): a post-condition of an
// initializing function declaring ptr to name size bytes of shared memory.
type ShmVarFact struct {
	Ptr  string
	Size int64
}

// NonCoreFact is assume(noncore(x)): the shared-memory region named by
// pointer x — or, in the message-passing extension, the socket descriptor
// x — may be written by non-core components.
type NonCoreFact struct {
	Name string
}

// AssertSafeFact is assert(safe(x)): the local value x is critical data
// and must not depend on unmonitored non-core values.
type AssertSafeFact struct {
	Var string
}

func (*CoreFact) fact()       {}
func (*ShmInitFact) fact()    {}
func (*ShmVarFact) fact()     {}
func (*NonCoreFact) fact()    {}
func (*AssertSafeFact) fact() {}

// String implements Fact.
func (f *CoreFact) String() string {
	return fmt.Sprintf("assume(core(%s, %d, %d))", f.Ptr, f.Offset, f.Size)
}

// String implements Fact.
func (f *ShmInitFact) String() string { return "shminit" }

// String implements Fact.
func (f *ShmVarFact) String() string {
	return fmt.Sprintf("assume(shmvar(%s, %d))", f.Ptr, f.Size)
}

// String implements Fact.
func (f *NonCoreFact) String() string { return fmt.Sprintf("assume(noncore(%s))", f.Name) }

// String implements Fact.
func (f *AssertSafeFact) String() string { return fmt.Sprintf("assert(safe(%s))", f.Var) }

// Parse parses one annotation body (the text following the "SafeFlow
// Annotation" marker, possibly containing several ';'- or
// newline-separated annotations) and returns the facts.
func Parse(body string, sizer TypeSizer) ([]Fact, error) {
	var facts []Fact
	for _, piece := range splitAnnotations(body) {
		f, err := parseOne(piece, sizer)
		if err != nil {
			return nil, fmt.Errorf("annotation %q: %w", piece, err)
		}
		facts = append(facts, f)
	}
	if len(facts) == 0 {
		return nil, fmt.Errorf("empty annotation body")
	}
	return facts, nil
}

// splitAnnotations splits a body on ';' and newlines, dropping empties.
func splitAnnotations(body string) []string {
	var out []string
	for _, part := range strings.FieldsFunc(body, func(r rune) bool { return r == ';' || r == '\n' }) {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseOne(s string, sizer TypeSizer) (Fact, error) {
	p := &parser{src: s, sizer: sizer}
	f, err := p.annotation()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.off != len(p.src) {
		return nil, fmt.Errorf("trailing text %q", p.src[p.off:])
	}
	return f, nil
}

type parser struct {
	src   string
	off   int
	sizer TypeSizer
}

func (p *parser) skipSpace() {
	for p.off < len(p.src) {
		switch p.src[p.off] {
		case ' ', '\t', '\r', '\n':
			p.off++
		default:
			return
		}
	}
}

func (p *parser) word() string {
	p.skipSpace()
	start := p.off
	for p.off < len(p.src) && isWordByte(p.src[p.off]) {
		p.off++
	}
	return p.src[start:p.off]
}

func isWordByte(ch byte) bool {
	return ch == '_' || ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || ch >= '0' && ch <= '9'
}

func (p *parser) expect(ch byte) error {
	p.skipSpace()
	if p.off >= len(p.src) || p.src[p.off] != ch {
		return fmt.Errorf("expected %q at offset %d", string(ch), p.off)
	}
	p.off++
	return nil
}

func (p *parser) annotation() (Fact, error) {
	switch w := p.word(); w {
	case "assume":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		f, err := p.assumeFact()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return f, nil
	case "assert":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		if kw := p.word(); kw != "safe" {
			return nil, fmt.Errorf("assert supports only safe(...), got %q", kw)
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		name := p.word()
		if name == "" {
			return nil, fmt.Errorf("safe(...) requires a variable name")
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &AssertSafeFact{Var: name}, nil
	case "shminit":
		return &ShmInitFact{}, nil
	// The bare fact forms are accepted for convenience (the paper sometimes
	// writes noncore(shmptr) without the assume wrapper in running text).
	case "core", "shmvar", "noncore":
		p.off -= len(w)
		return p.assumeFact()
	default:
		return nil, fmt.Errorf("unknown annotation keyword %q", w)
	}
}

func (p *parser) assumeFact() (Fact, error) {
	switch w := p.word(); w {
	case "core":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		ptr := p.word()
		if ptr == "" {
			return nil, fmt.Errorf("core(...) requires a pointer name")
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		off, err := p.sizeExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		size, err := p.sizeExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if size <= 0 {
			return nil, fmt.Errorf("core(%s): size must be positive, got %d", ptr, size)
		}
		if off < 0 {
			return nil, fmt.Errorf("core(%s): offset must be non-negative, got %d", ptr, off)
		}
		return &CoreFact{Ptr: ptr, Offset: off, Size: size}, nil
	case "shmvar":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		ptr := p.word()
		if ptr == "" {
			return nil, fmt.Errorf("shmvar(...) requires a pointer name")
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		size, err := p.sizeExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if size <= 0 {
			return nil, fmt.Errorf("shmvar(%s): size must be positive, got %d", ptr, size)
		}
		return &ShmVarFact{Ptr: ptr, Size: size}, nil
	case "noncore":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		name := p.word()
		if name == "" {
			return nil, fmt.Errorf("noncore(...) requires a name")
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &NonCoreFact{Name: name}, nil
	default:
		return nil, fmt.Errorf("unknown assume fact %q", w)
	}
}

// sizeExpr := product ( '+' product )*
func (p *parser) sizeExpr() (int64, error) {
	v, err := p.product()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.off < len(p.src) && p.src[p.off] == '+' {
			p.off++
			w, err := p.product()
			if err != nil {
				return 0, err
			}
			v += w
			continue
		}
		return v, nil
	}
}

// product := atom ( '*' atom )*
func (p *parser) product() (int64, error) {
	v, err := p.atom()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.off < len(p.src) && p.src[p.off] == '*' {
			p.off++
			w, err := p.atom()
			if err != nil {
				return 0, err
			}
			v *= w
			continue
		}
		return v, nil
	}
}

func (p *parser) atom() (int64, error) {
	p.skipSpace()
	if p.off < len(p.src) && p.src[p.off] >= '0' && p.src[p.off] <= '9' {
		start := p.off
		for p.off < len(p.src) && p.src[p.off] >= '0' && p.src[p.off] <= '9' {
			p.off++
		}
		return strconv.ParseInt(p.src[start:p.off], 10, 64)
	}
	w := p.word()
	if w != "sizeof" {
		return 0, fmt.Errorf("expected integer or sizeof, got %q", w)
	}
	if err := p.expect('('); err != nil {
		return 0, err
	}
	// Type names may include "struct X" or trailing '*' (pointer sizes).
	p.skipSpace()
	name := p.word()
	if name == "struct" || name == "union" || name == "unsigned" {
		name = name + " " + p.word()
	}
	stars := 0
	for {
		p.skipSpace()
		if p.off < len(p.src) && p.src[p.off] == '*' {
			stars++
			p.off++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return 0, err
	}
	if stars > 0 {
		return 4, nil // pointer size on the target (ctypes.PointerSize)
	}
	if p.sizer != nil {
		if sz, ok := p.sizer.SizeofType(name); ok {
			return sz, nil
		}
	}
	return 0, fmt.Errorf("unknown type %q in sizeof", name)
}

// ---------------------------------------------------------------------------
// Function-level fact bundles

// FuncFacts aggregates the annotation facts attached to one function.
type FuncFacts struct {
	IsShmInit bool
	Core      []*CoreFact
	ShmVars   []*ShmVarFact
	NonCore   []*NonCoreFact
}

// Empty reports whether no facts are present.
func (f *FuncFacts) Empty() bool {
	return f == nil || (!f.IsShmInit && len(f.Core) == 0 && len(f.ShmVars) == 0 && len(f.NonCore) == 0)
}

// Collect sorts parsed facts into a FuncFacts bundle. AssertSafeFact is
// statement-level and rejected here.
func Collect(facts []Fact) (*FuncFacts, error) {
	ff := &FuncFacts{}
	for _, f := range facts {
		switch x := f.(type) {
		case *ShmInitFact:
			ff.IsShmInit = true
		case *CoreFact:
			ff.Core = append(ff.Core, x)
		case *ShmVarFact:
			ff.ShmVars = append(ff.ShmVars, x)
		case *NonCoreFact:
			ff.NonCore = append(ff.NonCore, x)
		case *AssertSafeFact:
			return nil, fmt.Errorf("assert(safe(%s)) must precede a statement, not annotate a function", x.Var)
		}
	}
	return ff, nil
}
