package annot

import (
	"strings"
	"testing"
)

type sizer map[string]int64

func (s sizer) SizeofType(name string) (int64, bool) {
	v, ok := s[name]
	return v, ok
}

var testSizer = sizer{"SHMData": 40, "SHMCmd": 24, "double": 8, "int": 4}

func parseOneFact(t *testing.T, body string) Fact {
	t.Helper()
	facts, err := Parse(body, testSizer)
	if err != nil {
		t.Fatalf("Parse(%q): %v", body, err)
	}
	if len(facts) != 1 {
		t.Fatalf("Parse(%q) = %d facts, want 1", body, len(facts))
	}
	return facts[0]
}

func TestParseCore(t *testing.T) {
	tests := []struct {
		body         string
		ptr          string
		offset, size int64
	}{
		{"assume(core(noncoreCtrl, 0, sizeof(SHMData)))", "noncoreCtrl", 0, 40},
		{"assume(core(p, 8, 16))", "p", 8, 16},
		{"assume(core(p, sizeof(double), 2*sizeof(double)))", "p", 8, 16},
		{"assume(core(p, 0, sizeof(SHMData)+sizeof(SHMCmd)))", "p", 0, 64},
		{"core(p, 0, 8)", "p", 0, 8}, // bare form accepted
	}
	for _, tc := range tests {
		t.Run(tc.body, func(t *testing.T) {
			f, ok := parseOneFact(t, tc.body).(*CoreFact)
			if !ok {
				t.Fatalf("fact = %T", parseOneFact(t, tc.body))
			}
			if f.Ptr != tc.ptr || f.Offset != tc.offset || f.Size != tc.size {
				t.Errorf("got %+v, want {%s %d %d}", f, tc.ptr, tc.offset, tc.size)
			}
		})
	}
}

func TestParseShmVar(t *testing.T) {
	f, ok := parseOneFact(t, "assume(shmvar(feedback, sizeof(SHMData)))").(*ShmVarFact)
	if !ok || f.Ptr != "feedback" || f.Size != 40 {
		t.Errorf("got %#v", f)
	}
	// Pointer sizeof.
	g := parseOneFact(t, "assume(shmvar(tbl, 4*sizeof(int*)))").(*ShmVarFact)
	if g.Size != 16 {
		t.Errorf("pointer sizeof: size = %d, want 16", g.Size)
	}
	// struct keyword form.
	s := sizer{"struct Data": 32}
	facts, err := Parse("assume(shmvar(d, sizeof(struct Data)))", s)
	if err != nil {
		t.Fatalf("struct sizeof: %v", err)
	}
	if facts[0].(*ShmVarFact).Size != 32 {
		t.Errorf("struct sizeof: %+v", facts[0])
	}
}

func TestParseNonCoreAndInit(t *testing.T) {
	if f, ok := parseOneFact(t, "assume(noncore(feedback))").(*NonCoreFact); !ok || f.Name != "feedback" {
		t.Errorf("noncore: %#v", f)
	}
	if _, ok := parseOneFact(t, "shminit").(*ShmInitFact); !ok {
		t.Error("shminit not recognized")
	}
}

func TestParseAssert(t *testing.T) {
	f, ok := parseOneFact(t, "assert(safe(output))").(*AssertSafeFact)
	if !ok || f.Var != "output" {
		t.Errorf("assert: %#v", f)
	}
}

func TestParseMultiple(t *testing.T) {
	facts, err := Parse("assume(noncore(a)); assume(noncore(b))\nassume(shmvar(c, 8))", testSizer)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 3 {
		t.Fatalf("facts = %d, want 3", len(facts))
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		body string
		want string
	}{
		{"", "empty"},
		{"assume(bogus(x))", "unknown assume fact"},
		{"frobnicate(x)", "unknown annotation keyword"},
		{"assert(sound(x))", "assert supports only safe"},
		{"assume(core(p, 0, sizeof(Mystery)))", "unknown type"},
		{"assume(core(p, 0, 0))", "size must be positive"},
		{"assume(core(p, 0, 8)) trailing", "trailing text"},
		{"assume(shmvar(, 8))", "requires a pointer name"},
		{"assume(core(p, -4, 8))", "expected integer or sizeof"},
		{"assert(safe())", "requires a variable name"},
	}
	for _, tc := range tests {
		t.Run(tc.body, func(t *testing.T) {
			_, err := Parse(tc.body, testSizer)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCollect(t *testing.T) {
	facts, err := Parse("shminit", testSizer)
	if err != nil {
		t.Fatal(err)
	}
	more, err := Parse("assume(shmvar(a, 8)); assume(noncore(a)); assume(core(b, 0, 8))", testSizer)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := Collect(append(facts, more...))
	if err != nil {
		t.Fatal(err)
	}
	if !ff.IsShmInit || len(ff.ShmVars) != 1 || len(ff.NonCore) != 1 || len(ff.Core) != 1 {
		t.Errorf("collected = %#v", ff)
	}
	if ff.Empty() {
		t.Error("Empty() on populated facts")
	}

	// assert is statement-level: Collect must reject it.
	bad, err := Parse("assert(safe(x))", testSizer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(bad); err == nil {
		t.Error("Collect accepted a statement-level assert")
	}

	var empty *FuncFacts
	if !empty.Empty() {
		t.Error("nil FuncFacts should be Empty")
	}
}

func TestFactStrings(t *testing.T) {
	tests := []struct {
		fact Fact
		want string
	}{
		{&CoreFact{Ptr: "p", Offset: 0, Size: 8}, "assume(core(p, 0, 8))"},
		{&ShmVarFact{Ptr: "g", Size: 40}, "assume(shmvar(g, 40))"},
		{&NonCoreFact{Name: "g"}, "assume(noncore(g))"},
		{&AssertSafeFact{Var: "u"}, "assert(safe(u))"},
		{&ShmInitFact{}, "shminit"},
	}
	for _, tc := range tests {
		if got := tc.fact.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
