package annot_test

import (
	"strings"
	"testing"

	"safeflow/internal/annot"
	"safeflow/internal/fuzzcamp"
)

// fuzzSizer resolves a couple of plausible type names and rejects the
// rest, so both TypeSizer outcomes are reachable from fuzz inputs.
var fuzzSizer = annot.TypeSizerFunc(func(name string) (int64, bool) {
	switch name {
	case "SHMData", "double":
		return 40, true
	}
	return 0, false
})

// FuzzAnnotationParse feeds arbitrary annotation bodies to the parser.
// Malformed input must come back as an error, never a panic, and
// accepted input must yield at least one fact.
func FuzzAnnotationParse(f *testing.F) {
	// Annotation bodies harvested from the sffuzz campaign's seed
	// systems, so the native fuzzer and the mutation campaign share a
	// frontier.
	for _, in := range fuzzcamp.SeedInputs(1, 4) {
		for _, body := range fuzzcamp.AnnotationBodies(in) {
			f.Add(body)
		}
	}
	for _, seed := range []string{
		"shminit",
		"assume(shmvar(feedback, sizeof(SHMData)))",
		"assume(noncore(feedback))",
		"assume(core(nc, 0, sizeof(SHMData)))",
		"assume(core(buf, 8, 16 + 4 * 2))",
		"assert(safe(output))",
		"assume(shmvar(a, 1)); assume(noncore(a))",
		"assume(shmvar(a, 1))\nassume(noncore(a))",
		"assume(core(x, sizeof(Unknown), 4))",
		"assume(",
		"assert(safe())",
		"core(x, 0, 4)",
		";;;",
		"",
		"assume(shmvar(p, sizeof(SHMData) * 2 + 1))",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, body string) {
		facts, err := annot.Parse(body, fuzzSizer)
		if err != nil {
			return
		}
		for _, fact := range facts {
			if fact == nil {
				t.Fatalf("nil fact for %q", body)
			}
			if strings.TrimSpace(fact.String()) == "" {
				t.Fatalf("empty rendering for %q", body)
			}
		}
	})
}
