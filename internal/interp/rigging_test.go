package interp

import (
	"encoding/binary"
	"math"
	"testing"

	"safeflow/internal/corpus"
	"safeflow/internal/frontend"
)

// gsxWorld runs the Generic Simplex core with quiet sensors. When rig is
// set, it plays the paper's feedback-rigging attack: in the unlock window
// after the core publishes its sensor feedback, the "non-core process"
// overwrites the shared copy — the value the defective computeSafeOutput
// re-reads into the safety output.
type gsxWorld struct {
	m       *Machine
	rig     bool
	rigged  bool
	outputs []float64
}

const (
	gsxSHMKey    = 4661
	gsxFbState0  = 0
	riggedState0 = 0.75
)

func (w *gsxWorld) ReadSensor(int) float64 { return 0 } // plant at rest
func (w *gsxWorld) WriteDA(ch int, v float64) {
	if ch == 0 {
		w.outputs = append(w.outputs, v)
	}
}
func (w *gsxWorld) Wait(float64) {}
func (w *gsxWorld) OnLock(int)   {}

func (w *gsxWorld) OnUnlock(int) {
	if !w.rig {
		return
	}
	seg := w.m.Segment(gsxSHMKey)
	if seg == nil {
		return
	}
	// Overwrite the published feedback with a hand-crafted value — the
	// interleaving the core wrongly assumes cannot happen.
	binary.LittleEndian.PutUint64(seg[gsxFbState0:], math.Float64bits(riggedState0))
	w.rigged = true
}

func runGSX(t *testing.T, rig bool) *gsxWorld {
	t.Helper()
	sys := corpus.GenericSimplex()
	src, err := sys.Sources()
	if err != nil {
		t.Fatal(err)
	}
	res, err := frontend.Compile(sys.Name, src, sys.CFiles, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := &gsxWorld{rig: rig}
	m := New(res.Module, w)
	w.m = m
	code, err := m.RunMain()
	if err != nil {
		t.Fatalf("gsx trapped: %v (last output: %v)", err, tailOf(m.Output))
	}
	if code != 0 {
		t.Fatalf("gsx exit = %d", code)
	}
	return w
}

// TestGenericSimplexFeedbackRiggingExecutes demonstrates dynamically the
// defect SafeFlow reports statically for this system: with a quiet plant
// the core's safety output should be zero, but a non-core process rigging
// the shared feedback copy drives the actuator — the core "used" its own
// published value without monitoring it.
func TestGenericSimplexFeedbackRiggingExecutes(t *testing.T) {
	baseline := runGSX(t, false)
	attacked := runGSX(t, true)
	if !attacked.rigged {
		t.Fatal("harness never rigged the feedback")
	}
	if len(baseline.outputs) == 0 || len(attacked.outputs) == 0 {
		t.Fatal("no actuator outputs recorded")
	}

	maxAbs := func(vals []float64) float64 {
		m := 0.0
		for _, v := range vals {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		return m
	}
	if b := maxAbs(baseline.outputs); b > 1e-9 {
		t.Errorf("baseline output should be zero on a quiet plant, got %g", b)
	}
	if a := maxAbs(attacked.outputs); a < 0.1 {
		t.Errorf("rigged feedback failed to influence the critical output (max |u| = %g)", a)
	}
}
